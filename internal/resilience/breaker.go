// Package resilience provides the client-side fault-tolerance layer of
// the serving stack: a retrying HTTP client with capped exponential
// backoff and jitter, Retry-After honoring, deadline-budget propagation,
// and a per-replica circuit breaker. cmd/dlsload drives fleets through
// it and cmd/dlsctl probes replica health with it.
package resilience

import (
	"sync"
	"time"

	"repro/dls"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes requests through, counting consecutive
	// failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen short-circuits every request until the cooldown
	// elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single probe request; its outcome decides
	// between closing and re-opening.
	BreakerHalfOpen
)

// String names the state for reports and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-replica circuit breaker. Closed, it counts
// consecutive failures; at the threshold it opens and short-circuits
// requests for a cooldown, then admits one probe at a time (half-open).
// A successful probe closes it, a failed probe re-opens it. All methods
// are safe for concurrent use; time comes from the injected dls.Clock so
// tests drive transitions deterministically.
type Breaker struct {
	mu        sync.Mutex
	clock     dls.Clock
	threshold int
	cooldown  time.Duration

	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool

	opens, halfOpens, closes, shortCircuits uint64
}

// BreakerStats is a snapshot of one breaker's transition counters.
type BreakerStats struct {
	// State is the position at snapshot time.
	State BreakerState `json:"state"`
	// Opens counts closed/half-open -> open transitions.
	Opens uint64 `json:"opens"`
	// HalfOpens counts open -> half-open transitions (cooldown expiry).
	HalfOpens uint64 `json:"half_opens"`
	// Closes counts half-open -> closed transitions: each one is a
	// completed open -> half-open -> close recovery cycle.
	Closes uint64 `json:"closes"`
	// ShortCircuits counts requests rejected without touching the
	// replica.
	ShortCircuits uint64 `json:"short_circuits"`
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures and probes again after cooldown. threshold <= 0 disables the
// breaker: Allow always admits and Report never transitions.
func NewBreaker(threshold int, cooldown time.Duration, clock dls.Clock) *Breaker {
	if clock == nil {
		clock = dls.SystemClock()
	}
	return &Breaker{clock: clock, threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a request may proceed. In the open state it
// transitions to half-open once the cooldown has elapsed; in half-open
// only one probe is in flight at a time. Every Allow() == true MUST be
// followed by exactly one Report with the request's outcome.
func (b *Breaker) Allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clock.Now().Sub(b.openedAt) < b.cooldown {
			b.shortCircuits++
			return false
		}
		b.state = BreakerHalfOpen
		b.halfOpens++
		b.probing = true
		return true
	default: // BreakerHalfOpen
		if b.probing {
			b.shortCircuits++
			return false
		}
		b.probing = true
		return true
	}
}

// Report feeds back the outcome of a request admitted by Allow.
func (b *Breaker) Report(success bool) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if success {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.threshold {
			b.open()
		}
	case BreakerHalfOpen:
		b.probing = false
		if success {
			b.state = BreakerClosed
			b.failures = 0
			b.closes++
		} else {
			b.open()
		}
	default:
		// A late Report after another goroutine's probe already re-opened
		// the breaker: the failure is stale, drop it.
	}
}

// open transitions to the open state; callers hold b.mu.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.clock.Now()
	b.failures = 0
	b.probing = false
	b.opens++
}

// State returns the current position, applying the open -> half-open
// cooldown transition lazily (so observers see half-open once the
// cooldown elapsed even if no request has probed yet).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.clock.Now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Stats snapshots the transition counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:         b.state,
		Opens:         b.opens,
		HalfOpens:     b.halfOpens,
		Closes:        b.closes,
		ShortCircuits: b.shortCircuits,
	}
}
