package resilience

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/dls"
	"repro/internal/obs"
)

// ErrNoReplica is returned (possibly after retries) when every replica's
// circuit breaker short-circuits the request.
var ErrNoReplica = errors.New("resilience: all replica breakers open")

// Config parameterises a Client. Zero values take the documented
// defaults.
type Config struct {
	// Replicas are the base URLs of the fleet, e.g.
	// "http://127.0.0.1:8080". At least one is required.
	Replicas []string
	// MaxRetries bounds retry attempts beyond the first try (default 3;
	// negative disables retries).
	MaxRetries int
	// BaseBackoff is the first retry delay (default 25ms); each retry
	// doubles it up to MaxBackoff (default 1s). A server Retry-After
	// overrides the exponential schedule, still capped at MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter spreads every delay uniformly over [1-Jitter, 1+Jitter]
	// (default 0.2; negative disables jitter).
	Jitter float64
	// Seed seeds the jitter RNG, making retry schedules reproducible.
	Seed int64
	// BreakerThreshold is the consecutive-failure count that opens a
	// replica's breaker (default 5; negative disables the breakers).
	// BreakerCooldown is the open -> half-open delay (default 500ms).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// AttemptTimeout bounds each individual attempt, body read included
	// (default 10s). Ignored when HTTPClient is supplied.
	AttemptTimeout time.Duration
	// Clock supplies time for backoff sleeps and breaker cooldowns
	// (default the system clock).
	Clock dls.Clock
	// HTTPClient overrides the underlying transport (tests).
	HTTPClient *http.Client
}

// Stats is a snapshot of a Client's activity, aggregated over all
// replicas.
type Stats struct {
	// Attempts counts HTTP attempts actually sent (first tries plus
	// retries); Retries counts the re-sends alone.
	Attempts uint64 `json:"attempts"`
	Retries  uint64 `json:"retries"`
	// Backoffs counts backoff sleeps and BackoffTotal their summed
	// duration; RetryAfterHonored counts the sleeps whose delay came from
	// a server Retry-After header instead of the exponential schedule.
	Backoffs          uint64        `json:"backoffs"`
	BackoffTotal      time.Duration `json:"backoff_total_ns"`
	RetryAfterHonored uint64        `json:"retry_after_honored"`
	// ShortCircuits counts attempts rejected locally because every
	// breaker was open.
	ShortCircuits uint64 `json:"short_circuits"`
	// BreakerOpens/HalfOpens/Closes sum the per-replica breaker
	// transitions; Closes is the number of completed
	// open -> half-open -> close recovery cycles.
	BreakerOpens     uint64 `json:"breaker_opens"`
	BreakerHalfOpens uint64 `json:"breaker_half_opens"`
	BreakerCloses    uint64 `json:"breaker_closes"`
	// Breakers holds the per-replica snapshots, indexed like
	// Config.Replicas.
	Breakers []BreakerStats `json:"breakers,omitempty"`
}

// Client is a fleet-aware retrying HTTP client: round-robin replica
// selection skipping open breakers, capped exponential backoff with
// jitter, Retry-After honoring, and deadline-budget propagation — a
// retry is attempted only if its backoff still fits inside the caller's
// context deadline, and each attempt carries the remaining budget in
// X-Timeout so the server never works past it.
type Client struct {
	cfg      Config
	clock    dls.Clock
	http     *http.Client
	breakers []*Breaker
	next     atomic.Uint64

	rngMu sync.Mutex
	rng   *rand.Rand

	attempts, retries, backoffs, retryAfter, shortCircuits atomic.Uint64
	backoffNanos                                           atomic.Int64
}

// New builds a Client over cfg.Replicas.
func New(cfg Config) (*Client, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("resilience: no replicas configured")
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 25 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = time.Second
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.2
	} else if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 500 * time.Millisecond
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 10 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = dls.SystemClock()
	}
	c := &Client{
		cfg:   cfg,
		clock: cfg.Clock,
		http:  cfg.HTTPClient,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	if c.http == nil {
		c.http = &http.Client{Timeout: cfg.AttemptTimeout}
	}
	c.breakers = make([]*Breaker, len(cfg.Replicas))
	for i := range c.breakers {
		c.breakers[i] = NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock)
	}
	return c, nil
}

// Replicas returns the configured base URLs.
func (c *Client) Replicas() []string { return c.cfg.Replicas }

// Breaker exposes the breaker of replica i (for tests and fleet status).
func (c *Client) Breaker(i int) *Breaker { return c.breakers[i] }

// Stats snapshots the client's counters.
func (c *Client) Stats() Stats {
	st := Stats{
		Attempts:          c.attempts.Load(),
		Retries:           c.retries.Load(),
		Backoffs:          c.backoffs.Load(),
		BackoffTotal:      time.Duration(c.backoffNanos.Load()),
		RetryAfterHonored: c.retryAfter.Load(),
		ShortCircuits:     c.shortCircuits.Load(),
	}
	st.Breakers = make([]BreakerStats, len(c.breakers))
	for i, b := range c.breakers {
		bs := b.Stats()
		st.Breakers[i] = bs
		st.BreakerOpens += bs.Opens
		st.BreakerHalfOpens += bs.HalfOpens
		st.BreakerCloses += bs.Closes
	}
	return st
}

// retryable classifies an attempt outcome: transport errors, 5xx and 429
// are retryable; 2xx and other 4xx are final.
func retryable(resp *http.Response, err error) bool {
	if err != nil {
		return true
	}
	return resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests
}

// Do sends one logical request (method + path + body) to the fleet,
// retrying transient failures with backoff. The final attempt's response
// is returned unread — the caller owns resp.Body. The body is replayed
// from the byte slice on every attempt. Non-retryable responses
// (including 4xx other than 429) return immediately with err == nil.
func (c *Client) Do(ctx context.Context, method, path string, body []byte, header http.Header) (*http.Response, error) {
	var lastErr error
	traced := obs.Enabled(ctx)
	for attempt := 0; ; attempt++ {
		t0 := obs.Now(ctx)
		resp, err, idx, admitted := c.attempt(ctx, method, path, body, header)
		if traced {
			c.recordHop(ctx, t0, attempt, idx, resp, err, admitted)
		}
		if admitted {
			if !retryable(resp, err) {
				return resp, err
			}
		}
		if err != nil {
			lastErr = err
		}
		if attempt >= c.cfg.MaxRetries {
			// Out of retries: surface whatever we have.
			if admitted {
				return resp, err
			}
			if lastErr == nil {
				lastErr = ErrNoReplica
			}
			return nil, lastErr
		}
		delay, fromServer := c.delay(attempt, resp)
		if deadline, ok := ctx.Deadline(); ok {
			if c.clock.Now().Add(delay).After(deadline) {
				// The backoff would overshoot the caller's budget: this
				// attempt is final.
				if admitted {
					return resp, err
				}
				if lastErr == nil {
					lastErr = ErrNoReplica
				}
				return nil, lastErr
			}
		}
		if resp != nil {
			drain(resp)
		}
		if !c.sleep(ctx, delay, fromServer) {
			if lastErr == nil {
				lastErr = ctx.Err()
			}
			return nil, lastErr
		}
		c.retries.Add(1)
	}
}

// attempt sends the request to the next replica whose breaker admits it.
// admitted reports whether any replica accepted the attempt; when false,
// resp and err describe the short-circuit. idx is the replica tried
// (-1 on short-circuit), for the hop stage annotation.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, header http.Header) (resp *http.Response, err error, idx int, admitted bool) {
	idx, br := c.pick()
	if br == nil {
		c.shortCircuits.Add(1)
		return nil, ErrNoReplica, -1, false
	}
	req, err := http.NewRequestWithContext(ctx, method, c.cfg.Replicas[idx]+path, bytes.NewReader(body))
	if err != nil {
		br.Report(true) // a malformed request is not the replica's fault
		return nil, err, idx, true
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	if len(body) > 0 && req.Header.Get("Content-Type") == "" {
		req.Header.Set("Content-Type", "application/json")
	}
	// Trace propagation: carry the caller's trace id across the wire with
	// a fresh span id per attempt, so the server-side trace of every retry
	// and breaker hop chains into the one client trace.
	if tp, ok := obs.OutgoingTraceparent(ctx); ok {
		req.Header.Set(obs.TraceparentHeader, tp)
	}
	// Deadline-budget propagation: tell the server how much of the
	// caller's budget remains, so the fleet never works past it.
	if deadline, ok := ctx.Deadline(); ok {
		if remaining := deadline.Sub(c.clock.Now()); remaining > 0 {
			req.Header.Set("X-Timeout", remaining.String())
		} else {
			br.Report(true)
			return nil, context.DeadlineExceeded, idx, true
		}
	}
	c.attempts.Add(1)
	resp, err = c.http.Do(req)
	// Breaker success means "the replica answered": any response — even a
	// 429 shed or a 4xx rejection — proves liveness; only transport
	// errors and 5xx count against the breaker.
	br.Report(err == nil && resp.StatusCode < 500)
	return resp, err, idx, true
}

// recordHop records one depth-0 "hop" stage on the caller's trace: the
// attempt number, the replica tried, and how it ended (status, transport
// error, or a local breaker short-circuit).
func (c *Client) recordHop(ctx context.Context, t0 time.Time, attempt, replica int, resp *http.Response, err error, admitted bool) {
	attrs := []obs.Attr{obs.Int("attempt", attempt), obs.Int("replica", replica)}
	switch {
	case !admitted:
		attrs = append(attrs, obs.Bool("short_circuit", true))
	case err != nil:
		attrs = append(attrs, obs.String("error", err.Error()))
	default:
		attrs = append(attrs, obs.Int("status", resp.StatusCode))
	}
	obs.StageAt(ctx, 0, "hop", t0, obs.Now(ctx), attrs...)
}

// pick selects the next replica round-robin, skipping replicas whose
// breaker refuses the request. Returns (-1, nil) when every breaker
// short-circuits.
func (c *Client) pick() (int, *Breaker) {
	n := uint64(len(c.breakers))
	start := c.next.Add(1) - 1
	for i := uint64(0); i < n; i++ {
		idx := int((start + i) % n)
		if c.breakers[idx].Allow() {
			return idx, c.breakers[idx]
		}
	}
	return -1, nil
}

// delay computes the backoff before retry number attempt (0-based),
// honoring the server's Retry-After when resp carries one. fromServer
// reports whether the delay came from the header.
func (c *Client) delay(attempt int, resp *http.Response) (time.Duration, bool) {
	d := c.cfg.BaseBackoff << uint(attempt)
	if d <= 0 || d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	fromServer := false
	if resp != nil {
		if ra := parseRetryAfter(resp.Header.Get("Retry-After")); ra > 0 {
			d = ra
			if d > c.cfg.MaxBackoff {
				d = c.cfg.MaxBackoff
			}
			fromServer = true
		}
	}
	if j := c.cfg.Jitter; j > 0 {
		c.rngMu.Lock()
		f := 1 + j*(2*c.rng.Float64()-1)
		c.rngMu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d, fromServer
}

// sleep waits delay on the clock, aborting early when ctx is done. It
// reports whether the full delay elapsed.
func (c *Client) sleep(ctx context.Context, delay time.Duration, fromServer bool) bool {
	c.backoffs.Add(1)
	c.backoffNanos.Add(int64(delay))
	if fromServer {
		c.retryAfter.Add(1)
	}
	t := c.clock.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C():
		return true
	case <-ctx.Done():
		return false
	}
}

// parseRetryAfter reads a Retry-After value in seconds — dlsd emits
// fractional seconds ("0.050"), the standard allows integers.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.ParseFloat(v, 64)
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs * float64(time.Second))
}

// drain discards and closes a response body so the transport connection
// can be reused by the next attempt.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// Get is a convenience wrapper for body-less GETs.
func (c *Client) Get(ctx context.Context, path string) (*http.Response, error) {
	return c.Do(ctx, http.MethodGet, path, nil, nil)
}

// CheckHealth GETs path on a single absolute base URL with this client's
// transport (no breaker, no retry) and returns an error unless the
// response is 200. Supervisor probers use it per-address.
func CheckHealth(ctx context.Context, httpClient *http.Client, base, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return err
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("resilience: %s%s: status %d", base, path, resp.StatusCode)
	}
	return nil
}
