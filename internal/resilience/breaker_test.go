package resilience

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestBreakerLifecycle(t *testing.T) {
	clk := sim.NewClock()
	b := NewBreaker(3, time.Second, clk)

	if b.State() != BreakerClosed {
		t.Fatalf("initial state = %v, want closed", b.State())
	}
	// Failures below the threshold keep it closed; a success resets.
	b.Allow()
	b.Report(false)
	b.Allow()
	b.Report(false)
	b.Allow()
	b.Report(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after reset = %v, want closed", b.State())
	}

	// Threshold consecutive failures open it.
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("Allow refused while closed (i=%d)", i)
		}
		b.Report(false)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("Allow admitted while open")
	}

	// Cooldown elapses: half-open admits exactly one probe.
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("Allow refused after cooldown")
	}
	if b.Allow() {
		t.Fatal("second probe admitted while one is in flight")
	}
	// Failed probe re-opens.
	b.Report(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}

	// Second cooldown, successful probe closes: one full cycle.
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("Allow refused after second cooldown")
	}
	b.Report(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}

	st := b.Stats()
	if st.Opens != 2 || st.HalfOpens != 2 || st.Closes != 1 {
		t.Fatalf("stats = %+v, want opens=2 halfOpens=2 closes=1", st)
	}
	if st.ShortCircuits == 0 {
		t.Fatalf("stats = %+v, want short circuits > 0", st)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(0, time.Second, sim.NewClock())
	for i := 0; i < 100; i++ {
		if !b.Allow() {
			t.Fatal("disabled breaker refused a request")
		}
		b.Report(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("disabled breaker state = %v, want closed", b.State())
	}
}

func TestBreakerConcurrent(t *testing.T) {
	clk := sim.NewClock()
	b := NewBreaker(5, time.Millisecond, clk)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				if b.Allow() {
					b.Report(i%3 != 0)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	b.Stats() // must not race
}
