package resilience

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestTracePropagatesAcrossRetries pins the cross-hop tracing contract:
// a failing-then-healthy fleet produces ONE client trace whose "hop"
// stages record every attempt, and every server — including the failing
// ones — receives a Traceparent header carrying the client's trace id
// with a fresh span id per attempt.
func TestTracePropagatesAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	var seen []string // traceparent header of every server-side arrival
	var calls atomic.Int64
	handler := func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get(obs.TraceparentHeader))
		mu.Unlock()
		if calls.Add(1) <= 2 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		io.WriteString(w, "ok")
	}
	srv := httptest.NewServer(http.HandlerFunc(handler))
	defer srv.Close()

	cfg := testConfig(srv.URL)
	cfg.BreakerThreshold = -1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder(obs.RecorderConfig{})
	tr := rec.StartTrace("dlsload", "", "")
	ctx := obs.ContextWithTrace(context.Background(), tr)

	resp, err := c.Do(ctx, http.MethodGet, "/", nil, nil)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	resp.Body.Close()
	d := rec.Finish(tr)

	// One trace, one hop stage per attempt.
	var hops []obs.StageData
	for _, st := range d.Stages {
		if st.Name == "hop" {
			hops = append(hops, st)
		}
	}
	if len(hops) != 3 {
		t.Fatalf("trace has %d hop stages, want 3 (2 failures + success): %+v", len(hops), d.Stages)
	}
	findAttr := func(st obs.StageData, key string) string {
		for _, a := range st.Attrs {
			if a.Key == key {
				return a.Value
			}
		}
		return ""
	}
	for i, hop := range hops {
		if hop.Depth != 0 {
			t.Errorf("hop %d at depth %d, want 0", i, hop.Depth)
		}
		wantStatus := "500"
		if i == 2 {
			wantStatus = "200"
		}
		if got := findAttr(hop, "status"); got != wantStatus {
			t.Errorf("hop %d status attr = %q, want %q", i, got, wantStatus)
		}
	}

	// Every server-side arrival carried the client's trace id with a
	// fresh span per attempt.
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 {
		t.Fatalf("server saw %d requests, want 3", len(seen))
	}
	spans := make(map[string]bool)
	for i, tp := range seen {
		id, span, ok := obs.ParseTraceparent(tp)
		if !ok {
			t.Fatalf("attempt %d carried unparseable traceparent %q", i, tp)
		}
		if id != tr.ID() {
			t.Errorf("attempt %d trace id = %q, want client's %q", i, id, tr.ID())
		}
		if spans[span] {
			t.Errorf("attempt %d reused span id %q", i, span)
		}
		spans[span] = true
	}
}

// TestTraceRecordsBreakerShortCircuit: when every breaker is open, the
// failed attempt still becomes a hop stage marked short_circuit, so dead
// time is attributed rather than invisible.
func TestTraceRecordsBreakerShortCircuit(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	cfg := testConfig(srv.URL)
	cfg.BreakerThreshold = 1 // first failure opens the breaker
	cfg.BreakerCooldown = time.Hour
	cfg.MaxRetries = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder(obs.RecorderConfig{})
	tr := rec.StartTrace("dlsload", "", "")
	ctx := obs.ContextWithTrace(context.Background(), tr)
	if _, err := c.Do(ctx, http.MethodGet, "/", nil, nil); err == nil {
		t.Fatal("Do succeeded against an open fleet")
	}
	d := rec.Finish(tr)

	var statuses, shorts int
	for _, st := range d.Stages {
		if st.Name != "hop" {
			continue
		}
		for _, a := range st.Attrs {
			switch a.Key {
			case "status":
				statuses++
			case "short_circuit":
				shorts++
				for _, b := range st.Attrs {
					if b.Key == "replica" && b.Value != "-1" {
						t.Errorf("short-circuit hop names replica %s, want -1", b.Value)
					}
				}
			}
		}
	}
	if statuses != 1 || shorts != 2 {
		t.Fatalf("hops = %d real + %d short-circuited, want 1 + 2: %+v", statuses, shorts, d.Stages)
	}
}

// TestUntracedContextAddsNoHeader: with no trace on the context the
// client must not invent a Traceparent header.
func TestUntracedContextAddsNoHeader(t *testing.T) {
	var got atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(obs.TraceparentHeader))
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	c, err := New(testConfig(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Get(context.Background(), "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v, _ := got.Load().(string); v != "" {
		t.Fatalf("untraced request carried Traceparent %q", v)
	}
}
