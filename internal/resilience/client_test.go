package resilience

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// testConfig returns a Config with fast real-time backoffs for
// httptest-driven tests.
func testConfig(urls ...string) Config {
	return Config{
		Replicas:         urls,
		MaxRetries:       3,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       5 * time.Millisecond,
		Jitter:           -1,
		BreakerThreshold: 2,
		BreakerCooldown:  5 * time.Millisecond,
		AttemptTimeout:   2 * time.Second,
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	cfg := testConfig(srv.URL)
	cfg.BreakerThreshold = -1 // isolate the retry path
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Get(context.Background(), "/")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "ok" {
		t.Fatalf("body = %q, want ok", body)
	}
	st := c.Stats()
	if st.Attempts != 3 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want 3 attempts / 2 retries", st)
	}
}

func TestClientBoundedRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	cfg := testConfig(srv.URL)
	cfg.BreakerThreshold = -1 // isolate the retry cap
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Get(context.Background(), "/")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := calls.Load(); got != 4 { // 1 try + MaxRetries
		t.Fatalf("server saw %d calls, want 4", got)
	}
}

func TestClientNonRetryableReturnsImmediately(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad request", http.StatusUnprocessableEntity)
	}))
	defer srv.Close()

	c, err := New(testConfig(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Get(context.Background(), "/")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity || calls.Load() != 1 {
		t.Fatalf("status=%d calls=%d, want 422 after exactly 1 call", resp.StatusCode, calls.Load())
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0.002")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	c, err := New(testConfig(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Get(context.Background(), "/")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if st := c.Stats(); st.RetryAfterHonored != 1 {
		t.Fatalf("stats = %+v, want RetryAfterHonored = 1", st)
	}
}

func TestClientDeadlineBudget(t *testing.T) {
	var sawTimeout atomic.Bool
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if r.Header.Get("X-Timeout") != "" {
			sawTimeout.Store(true)
		}
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	cfg := testConfig(srv.URL)
	cfg.BaseBackoff = 200 * time.Millisecond // overshoots the 50ms budget
	cfg.MaxBackoff = 200 * time.Millisecond
	cfg.BreakerThreshold = -1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	resp, err := c.Get(ctx, "/")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	resp.Body.Close()
	// The first backoff would bust the deadline, so the client stops
	// after one attempt instead of sleeping past the budget.
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry past the deadline)", got)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("Do took %v, want well under the backoff", elapsed)
	}
	if !sawTimeout.Load() {
		t.Fatal("attempt did not carry X-Timeout budget header")
	}
}

func TestClientBreakerShortCircuitsAndRecovers(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if fail.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	cfg := testConfig(srv.URL)
	cfg.MaxRetries = 0
	cfg.BreakerCooldown = 100 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Two failures open the breaker (threshold 2).
	for i := 0; i < 2; i++ {
		if resp, err := c.Get(ctx, "/"); err == nil {
			resp.Body.Close()
		}
	}
	if st := c.Breaker(0).State(); st != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", st)
	}
	// While open, requests short-circuit without touching the server.
	before := calls.Load()
	if _, err := c.Get(ctx, "/"); err == nil {
		t.Fatal("expected short-circuit error while breaker open")
	}
	if calls.Load() != before {
		t.Fatal("open breaker let a request through")
	}
	// After the cooldown the half-open probe succeeds and closes it.
	fail.Store(false)
	time.Sleep(2 * cfg.BreakerCooldown)
	resp, err := c.Get(ctx, "/")
	if err != nil {
		t.Fatalf("Get after cooldown: %v", err)
	}
	resp.Body.Close()
	st := c.Stats()
	if st.BreakerOpens < 1 || st.BreakerHalfOpens < 1 || st.BreakerCloses < 1 {
		t.Fatalf("stats = %+v, want a full open -> half-open -> close cycle", st)
	}
}

func TestClientRoundRobinSkipsOpenBreaker(t *testing.T) {
	var okCalls atomic.Int64
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		okCalls.Add(1)
		io.WriteString(w, "ok")
	}))
	defer ok.Close()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	bad.Close() // hard connection failures

	cfg := testConfig(bad.URL, ok.URL)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		resp, err := c.Get(ctx, "/")
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("Get %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if okCalls.Load() < 10 {
		t.Fatalf("healthy replica saw %d calls, want >= 10", okCalls.Load())
	}
	// The dead replica's breaker must have opened after 2 failures.
	if st := c.Breaker(0).Stats(); st.Opens == 0 {
		t.Fatalf("dead replica breaker stats = %+v, want at least one open", st)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"0.050", 50 * time.Millisecond},
		{"2", 2 * time.Second},
		{"-1", 0},
		{"soon", 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
