// Package schedule represents one-round divisible-load schedules on star
// platforms and verifies their feasibility under the one-port and two-port
// communication models.
//
// Following Section 2.2 of RR-5738, a schedule is canonically described by
// a send permutation σ1, a return permutation σ2, the per-worker loads α,
// and the horizon T. Event dates are derived, not stored: initial messages
// are sent back-to-back starting at t = 0 in σ1 order, return messages are
// received back-to-back ending at t = T in σ2 order, each worker computes
// immediately after its reception, and the slack between computation end
// and return start is the worker's idle time x_i ≥ 0.
//
// The feasibility checker re-derives all event dates and verifies every
// model constraint from scratch, so code that constructs schedules (linear
// programs, closed forms, transformations) never certifies itself.
package schedule

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/numeric"
	"repro/internal/platform"
)

// Model selects the communication model under which a schedule is checked.
type Model int

// Communication models of the paper.
const (
	// OnePort: the master is involved in at most one transfer (send or
	// receive) at any instant.
	OnePort Model = iota
	// TwoPort: the master may send to one worker and simultaneously receive
	// from another worker.
	TwoPort
)

// String names the model.
func (m Model) String() string {
	switch m {
	case OnePort:
		return "one-port"
	case TwoPort:
		return "two-port"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Schedule is a one-round divisible-load schedule in canonical form. Alpha
// is indexed by worker index of the underlying platform and covers all
// workers (zero for the non-enrolled). SendOrder and ReturnOrder list the
// enrolled workers — those traversed by the master's communication
// sequence; they must contain the same set of indices.
type Schedule struct {
	// SendOrder is σ1: the order in which the master sends initial data.
	SendOrder platform.Order
	// ReturnOrder is σ2: the order in which the master receives results.
	ReturnOrder platform.Order
	// Alpha[i] is the load (in divisible load units) assigned to worker i.
	Alpha []float64
	// T is the schedule horizon. The paper normalises T = 1 when maximising
	// throughput; scaled schedules (see ScaledToLoad) carry their real
	// makespan here.
	T float64
}

// Throughput returns the number of load units processed per unit time,
// ρ = Σα / T.
func (s *Schedule) Throughput() float64 {
	return s.TotalLoad() / s.T
}

// TotalLoad returns Σα.
func (s *Schedule) TotalLoad() float64 {
	sum := 0.0
	for _, a := range s.Alpha {
		sum += a
	}
	return sum
}

// Participants returns the worker indices with strictly positive load, in
// send order.
func (s *Schedule) Participants() []int {
	var out []int
	for _, i := range s.SendOrder {
		if s.Alpha[i] > 0 {
			out = append(out, i)
		}
	}
	return out
}

// IsFIFO reports whether σ2 equals σ1.
func (s *Schedule) IsFIFO() bool {
	if len(s.SendOrder) != len(s.ReturnOrder) {
		return false
	}
	for i := range s.SendOrder {
		if s.SendOrder[i] != s.ReturnOrder[i] {
			return false
		}
	}
	return true
}

// IsLIFO reports whether σ2 is the reverse of σ1.
func (s *Schedule) IsLIFO() bool {
	n := len(s.SendOrder)
	if n != len(s.ReturnOrder) {
		return false
	}
	for i := range s.SendOrder {
		if s.SendOrder[i] != s.ReturnOrder[n-1-i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	return &Schedule{
		SendOrder:   s.SendOrder.Clone(),
		ReturnOrder: s.ReturnOrder.Clone(),
		Alpha:       append([]float64(nil), s.Alpha...),
		T:           s.T,
	}
}

// ScaledToLoad returns a copy of the schedule rescaled so that the total
// load equals total (in absolute load units). By linearity of the cost
// model this preserves feasibility; the new horizon is total/ρ.
func (s *Schedule) ScaledToLoad(total float64) *Schedule {
	cur := s.TotalLoad()
	if cur <= 0 {
		panic("schedule: cannot scale a schedule with zero total load")
	}
	f := total / cur
	out := s.Clone()
	for i := range out.Alpha {
		out.Alpha[i] *= f
	}
	out.T *= f
	return out
}

// Flipped returns the time-reversed schedule: sends become returns and vice
// versa. It is the image of the Section 3 "mirror" argument: a feasible
// schedule for platform P with horizon T flips into a feasible schedule for
// P.Mirror() with the same loads, where the new σ1 is the old σ2 reversed
// and the new σ2 is the old σ1 reversed.
func (s *Schedule) Flipped() *Schedule {
	return &Schedule{
		SendOrder:   s.ReturnOrder.Reverse(),
		ReturnOrder: s.SendOrder.Reverse(),
		Alpha:       append([]float64(nil), s.Alpha...),
		T:           s.T,
	}
}

// WorkerTimeline holds the derived event dates of one enrolled worker.
type WorkerTimeline struct {
	Worker      int     // worker index into the platform
	SendStart   float64 // master starts sending input data
	SendEnd     float64 // worker has all input data; computation starts
	CompEnd     float64 // computation finishes
	Idle        float64 // x_i: wait between computation end and return start
	ReturnStart float64 // worker starts sending results
	ReturnEnd   float64 // master has all results
}

// Timeline derives the event dates of the schedule on platform p, in send
// order. It does not check feasibility; negative idle times and overlapping
// master communications are surfaced by Check.
func (s *Schedule) Timeline(p *platform.Platform) []WorkerTimeline {
	tl := make([]WorkerTimeline, len(s.SendOrder))
	// Forward communications, back-to-back from t = 0.
	t := 0.0
	pos := make(map[int]int, len(s.SendOrder)) // worker -> position in tl
	for k, i := range s.SendOrder {
		w := p.Workers[i]
		dur := s.Alpha[i] * w.C
		tl[k] = WorkerTimeline{Worker: i, SendStart: t, SendEnd: t + dur}
		tl[k].CompEnd = tl[k].SendEnd + s.Alpha[i]*w.W
		t += dur
		pos[i] = k
	}
	// Return communications, back-to-back ending at t = T.
	total := 0.0
	for _, i := range s.ReturnOrder {
		total += s.Alpha[i] * p.Workers[i].D
	}
	t = s.T - total
	for _, i := range s.ReturnOrder {
		k := pos[i]
		dur := s.Alpha[i] * p.Workers[i].D
		tl[k].ReturnStart = t
		tl[k].ReturnEnd = t + dur
		tl[k].Idle = tl[k].ReturnStart - tl[k].CompEnd
		t += dur
	}
	return tl
}

// String renders the schedule compactly.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule T=%.6g ρ=%.6g σ1=%v σ2=%v α=[", s.T, s.Throughput(), s.SendOrder, s.ReturnOrder)
	for i, a := range s.Alpha {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.6g", a)
	}
	b.WriteString("]")
	return b.String()
}

// relTol is the relative tolerance used by the feasibility checker;
// schedules typically come out of float64 linear programming. See
// internal/numeric for how it relates to the solver tolerances.
const relTol = numeric.CheckTol

func leq(a, b, scale float64) bool { return a <= b+relTol*(1+math.Abs(scale)) }

// Check verifies that the schedule is feasible on platform p under the
// given model. It returns nil if every constraint holds (within a relative
// tolerance) and a descriptive error for the first violation found.
//
// Checked constraints:
//   - structural: orders are permutations of the same enrolled set, every
//     positive-load worker is enrolled, loads are non-negative and finite;
//   - per worker: computation starts after reception, the return message
//     starts after computation ends (idle ≥ 0), all events fit in [0, T];
//   - master port: under OnePort all transfer intervals (sends and returns)
//     are pairwise disjoint; under TwoPort sends are pairwise disjoint and
//     returns are pairwise disjoint.
func (s *Schedule) Check(p *platform.Platform, model Model) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if len(s.Alpha) != p.P() {
		return fmt.Errorf("schedule: Alpha has %d entries for %d workers", len(s.Alpha), p.P())
	}
	if s.T <= 0 || math.IsNaN(s.T) || math.IsInf(s.T, 0) {
		return fmt.Errorf("schedule: horizon T = %g must be positive and finite", s.T)
	}
	for i, a := range s.Alpha {
		if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
			return fmt.Errorf("schedule: alpha[%d] = %g must be finite and >= 0", i, a)
		}
	}
	// Orders: valid subsets, same set.
	inSend := make(map[int]bool, len(s.SendOrder))
	for _, i := range s.SendOrder {
		if i < 0 || i >= p.P() {
			return fmt.Errorf("schedule: send order references worker %d outside platform", i)
		}
		if inSend[i] {
			return fmt.Errorf("schedule: worker %d appears twice in send order", i)
		}
		inSend[i] = true
	}
	inReturn := make(map[int]bool, len(s.ReturnOrder))
	for _, i := range s.ReturnOrder {
		if i < 0 || i >= p.P() {
			return fmt.Errorf("schedule: return order references worker %d outside platform", i)
		}
		if inReturn[i] {
			return fmt.Errorf("schedule: worker %d appears twice in return order", i)
		}
		inReturn[i] = true
	}
	if len(inSend) != len(inReturn) {
		return fmt.Errorf("schedule: send order has %d workers, return order %d", len(inSend), len(inReturn))
	}
	for i := range inSend {
		if !inReturn[i] {
			return fmt.Errorf("schedule: worker %d in send order but not in return order", i)
		}
	}
	for i, a := range s.Alpha {
		if a > 0 && !inSend[i] {
			return fmt.Errorf("schedule: worker %d has load %g but is not enrolled in the orders", i, a)
		}
	}

	tl := s.Timeline(p)
	for _, wt := range tl {
		w := p.Workers[wt.Worker]
		name := w.Name
		if !leq(0, wt.SendStart, s.T) {
			return fmt.Errorf("schedule: %s send starts at %g < 0", name, wt.SendStart)
		}
		if !leq(wt.CompEnd, wt.ReturnStart, s.T) {
			return fmt.Errorf("schedule: %s return starts at %g before computation ends at %g (idle %g < 0)",
				name, wt.ReturnStart, wt.CompEnd, wt.Idle)
		}
		if !leq(wt.ReturnEnd, s.T, s.T) {
			return fmt.Errorf("schedule: %s return ends at %g after horizon %g", name, wt.ReturnEnd, s.T)
		}
	}

	// Master-port constraints via interval disjointness.
	type interval struct {
		start, end float64
		kind       string
		worker     int
	}
	var sends, returns []interval
	for _, wt := range tl {
		if wt.SendEnd > wt.SendStart {
			sends = append(sends, interval{wt.SendStart, wt.SendEnd, "send", wt.Worker})
		}
		if wt.ReturnEnd > wt.ReturnStart {
			returns = append(returns, interval{wt.ReturnStart, wt.ReturnEnd, "return", wt.Worker})
		}
	}
	overlap := func(a, b interval) bool {
		return a.start < b.end-relTol*(1+s.T) && b.start < a.end-relTol*(1+s.T)
	}
	checkDisjoint := func(xs []interval) error {
		for i := 0; i < len(xs); i++ {
			for j := i + 1; j < len(xs); j++ {
				if overlap(xs[i], xs[j]) {
					return fmt.Errorf("schedule: master port conflict: %s to/from worker %d [%g,%g] overlaps %s of worker %d [%g,%g]",
						xs[i].kind, xs[i].worker, xs[i].start, xs[i].end,
						xs[j].kind, xs[j].worker, xs[j].start, xs[j].end)
				}
			}
		}
		return nil
	}
	switch model {
	case OnePort:
		all := append(append([]interval(nil), sends...), returns...)
		if err := checkDisjoint(all); err != nil {
			return err
		}
	case TwoPort:
		if err := checkDisjoint(sends); err != nil {
			return err
		}
		if err := checkDisjoint(returns); err != nil {
			return err
		}
	default:
		return fmt.Errorf("schedule: unknown model %v", model)
	}
	return nil
}
