package schedule

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/platform"
)

// twoWorkerPlatform: P1 (c=0.1, w=0.2, d=0.05), P2 (c=0.2, w=0.1, d=0.1).
func twoWorkerPlatform() *platform.Platform {
	return platform.New(
		platform.Worker{C: 0.1, W: 0.2, D: 0.05},
		platform.Worker{C: 0.2, W: 0.1, D: 0.1},
	)
}

// feasibleFIFO builds a small hand-checked FIFO schedule on the two-worker
// platform: α = (1, 1), T = 1.
//
//	sends: P1 [0, 0.1], P2 [0.1, 0.3]
//	compute: P1 [0.1, 0.3], P2 [0.3, 0.4]
//	returns (ALAP, ending at 1): P1 [0.85, 0.9], P2 [0.9, 1.0]
//	idle: x1 = 0.55, x2 = 0.5 — all constraints met.
func feasibleFIFO() *Schedule {
	return &Schedule{
		SendOrder:   platform.Order{0, 1},
		ReturnOrder: platform.Order{0, 1},
		Alpha:       []float64{1, 1},
		T:           1,
	}
}

func TestTimelineDerivation(t *testing.T) {
	p := twoWorkerPlatform()
	s := feasibleFIFO()
	tl := s.Timeline(p)
	if len(tl) != 2 {
		t.Fatalf("timeline has %d entries", len(tl))
	}
	want := []WorkerTimeline{
		{Worker: 0, SendStart: 0, SendEnd: 0.1, CompEnd: 0.3, Idle: 0.55, ReturnStart: 0.85, ReturnEnd: 0.9},
		{Worker: 1, SendStart: 0.1, SendEnd: 0.3, CompEnd: 0.4, Idle: 0.5, ReturnStart: 0.9, ReturnEnd: 1.0},
	}
	for k, w := range want {
		got := tl[k]
		for _, c := range []struct {
			name     string
			got, exp float64
		}{
			{"SendStart", got.SendStart, w.SendStart},
			{"SendEnd", got.SendEnd, w.SendEnd},
			{"CompEnd", got.CompEnd, w.CompEnd},
			{"Idle", got.Idle, w.Idle},
			{"ReturnStart", got.ReturnStart, w.ReturnStart},
			{"ReturnEnd", got.ReturnEnd, w.ReturnEnd},
		} {
			if math.Abs(c.got-c.exp) > 1e-12 {
				t.Errorf("worker %d %s = %g, want %g", k, c.name, c.got, c.exp)
			}
		}
	}
}

func TestCheckAcceptsFeasible(t *testing.T) {
	p := twoWorkerPlatform()
	s := feasibleFIFO()
	if err := s.Check(p, OnePort); err != nil {
		t.Errorf("one-port check failed: %v", err)
	}
	if err := s.Check(p, TwoPort); err != nil {
		t.Errorf("two-port check failed: %v", err)
	}
}

func TestCheckRejectsOnePortOverlap(t *testing.T) {
	// Near-zero compute so per-worker constraints hold, but the return
	// block [0.4, 1] overlaps the send block [0, 0.6]:
	//   sends: P1 [0, 0.3], P2 [0.3, 0.6]
	//   returns (ALAP): P1 [0.4, 0.7] — overlaps P2's send — P2 [0.7, 1].
	p := platform.New(
		platform.Worker{C: 0.3, W: 0.01, D: 0.3},
		platform.Worker{C: 0.3, W: 0.01, D: 0.3},
	)
	s := &Schedule{
		SendOrder:   platform.Order{0, 1},
		ReturnOrder: platform.Order{0, 1},
		Alpha:       []float64{1, 1},
		T:           1,
	}
	err := s.Check(p, OnePort)
	if err == nil {
		t.Fatal("one-port check must reject overlapping master transfers")
	}
	if !strings.Contains(err.Error(), "master port conflict") {
		t.Errorf("unexpected error: %v", err)
	}
	// The same schedule is valid under the two-port model.
	if err := s.Check(p, TwoPort); err != nil {
		t.Errorf("two-port check must accept it: %v", err)
	}
}

func TestCheckRejectsNegativeIdle(t *testing.T) {
	// One worker with compute longer than the horizon leaves negative idle.
	p := platform.New(platform.Worker{C: 0.1, W: 2, D: 0.05})
	s := &Schedule{
		SendOrder:   platform.Order{0},
		ReturnOrder: platform.Order{0},
		Alpha:       []float64{1},
		T:           1,
	}
	err := s.Check(p, OnePort)
	if err == nil || !strings.Contains(err.Error(), "before computation ends") {
		t.Errorf("want negative-idle violation, got %v", err)
	}
}

func TestCheckStructuralErrors(t *testing.T) {
	p := twoWorkerPlatform()
	base := feasibleFIFO()

	cases := []struct {
		name   string
		mutate func(*Schedule)
		want   string
	}{
		{"alpha length", func(s *Schedule) { s.Alpha = []float64{1} }, "entries for"},
		{"negative alpha", func(s *Schedule) { s.Alpha[0] = -1 }, ">= 0"},
		{"nan alpha", func(s *Schedule) { s.Alpha[0] = math.NaN() }, "finite"},
		{"bad T", func(s *Schedule) { s.T = 0 }, "horizon"},
		{"dup send", func(s *Schedule) { s.SendOrder = platform.Order{0, 0} }, "twice in send"},
		{"dup return", func(s *Schedule) { s.ReturnOrder = platform.Order{1, 1} }, "twice in return"},
		{"out of range", func(s *Schedule) { s.SendOrder = platform.Order{0, 7} }, "outside platform"},
		{"set mismatch", func(s *Schedule) {
			s.SendOrder = platform.Order{0}
			s.ReturnOrder = platform.Order{1}
		}, "not in return order"},
		{"loaded but not enrolled", func(s *Schedule) {
			s.SendOrder = platform.Order{0}
			s.ReturnOrder = platform.Order{0}
		}, "not enrolled"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base.Clone()
			tc.mutate(s)
			err := s.Check(p, OnePort)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestCheckUnknownModel(t *testing.T) {
	p := twoWorkerPlatform()
	if err := feasibleFIFO().Check(p, Model(9)); err == nil {
		t.Error("unknown model must be rejected")
	}
	if Model(9).String() == "" || OnePort.String() != "one-port" || TwoPort.String() != "two-port" {
		t.Error("Model.String mismatch")
	}
}

func TestTwoPortAcceptsSendReturnOverlap(t *testing.T) {
	// A schedule where sends overlap returns in time is fine under
	// two-port but not one-port. P1 heavy send, P2's return early.
	p := platform.New(
		platform.Worker{C: 0.4, W: 0.1, D: 0.2},
		platform.Worker{C: 0.1, W: 0.1, D: 0.4},
	)
	s := &Schedule{
		SendOrder:   platform.Order{1, 0},
		ReturnOrder: platform.Order{1, 0},
		Alpha:       []float64{1, 1},
		T:           1,
	}
	// sends: P2 [0,0.1], P1 [0.1,0.5]; returns ALAP: total 0.6 → start 0.4:
	// P2 [0.4,0.8], P1 [0.8,1]. P2 return [0.4,0.8] overlaps P1 send
	// [0.1,0.5].
	if err := s.Check(p, OnePort); err == nil {
		t.Error("one-port must reject send/return overlap")
	}
	if err := s.Check(p, TwoPort); err != nil {
		t.Errorf("two-port must accept send/return overlap: %v", err)
	}
}

func TestThroughputAndParticipants(t *testing.T) {
	s := feasibleFIFO()
	if got := s.TotalLoad(); got != 2 {
		t.Errorf("TotalLoad = %g", got)
	}
	if got := s.Throughput(); got != 2 {
		t.Errorf("Throughput = %g", got)
	}
	s.Alpha[0] = 0
	parts := s.Participants()
	if len(parts) != 1 || parts[0] != 1 {
		t.Errorf("Participants = %v, want [1]", parts)
	}
}

func TestFIFOLIFOPredicates(t *testing.T) {
	fifo := feasibleFIFO()
	if !fifo.IsFIFO() || fifo.IsLIFO() && len(fifo.SendOrder) > 1 {
		t.Error("feasibleFIFO must be FIFO and not LIFO")
	}
	lifo := &Schedule{
		SendOrder:   platform.Order{0, 1},
		ReturnOrder: platform.Order{1, 0},
		Alpha:       []float64{1, 1},
		T:           1,
	}
	if lifo.IsFIFO() || !lifo.IsLIFO() {
		t.Error("reverse-order schedule must be LIFO")
	}
	// Mismatched lengths.
	bad := &Schedule{SendOrder: platform.Order{0, 1}, ReturnOrder: platform.Order{0}}
	if bad.IsFIFO() || bad.IsLIFO() {
		t.Error("length-mismatched orders are neither FIFO nor LIFO")
	}
	// Single worker: both.
	one := &Schedule{SendOrder: platform.Order{0}, ReturnOrder: platform.Order{0}}
	if !one.IsFIFO() || !one.IsLIFO() {
		t.Error("single-worker schedule is both FIFO and LIFO")
	}
}

func TestScaledToLoad(t *testing.T) {
	p := twoWorkerPlatform()
	s := feasibleFIFO() // total load 2, T = 1
	big := s.ScaledToLoad(1000)
	if math.Abs(big.TotalLoad()-1000) > 1e-9 {
		t.Errorf("TotalLoad = %g, want 1000", big.TotalLoad())
	}
	if math.Abs(big.T-500) > 1e-9 {
		t.Errorf("T = %g, want 500", big.T)
	}
	// Scaling preserves feasibility (linearity).
	if err := big.Check(p, OnePort); err != nil {
		t.Errorf("scaled schedule infeasible: %v", err)
	}
	// Throughput invariant under scaling.
	if math.Abs(big.Throughput()-s.Throughput()) > 1e-9 {
		t.Errorf("throughput changed: %g → %g", s.Throughput(), big.Throughput())
	}
	defer func() {
		if recover() == nil {
			t.Error("scaling an empty schedule must panic")
		}
	}()
	(&Schedule{Alpha: []float64{0}, T: 1}).ScaledToLoad(10)
}

func TestFlippedFeasibleOnMirror(t *testing.T) {
	// Time reversal: a feasible one-port schedule flips into a feasible
	// one-port schedule on the mirrored platform (c ↔ d).
	p := twoWorkerPlatform()
	s := feasibleFIFO()
	f := s.Flipped()
	if err := f.Check(p.Mirror(), OnePort); err != nil {
		t.Errorf("flipped schedule infeasible on mirror: %v", err)
	}
	if math.Abs(f.Throughput()-s.Throughput()) > 1e-12 {
		t.Error("flip must preserve throughput")
	}
	// Flip twice = identity on orders.
	ff := f.Flipped()
	for i := range s.SendOrder {
		if ff.SendOrder[i] != s.SendOrder[i] || ff.ReturnOrder[i] != s.ReturnOrder[i] {
			t.Error("double flip must restore orders")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := feasibleFIFO()
	c := s.Clone()
	c.Alpha[0] = 42
	c.SendOrder[0] = 1
	if s.Alpha[0] == 42 || s.SendOrder[0] == 1 {
		t.Error("Clone aliases the original")
	}
}

func TestStringRendering(t *testing.T) {
	s := feasibleFIFO()
	out := s.String()
	for _, want := range []string{"T=1", "σ1=", "σ2=", "α=["} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q: %s", want, out)
		}
	}
}

// TestQuickFlipInvariant: for random feasible schedules, flipping onto the
// mirror platform preserves feasibility and throughput. Schedules are
// generated conservatively (tiny loads) so they are always feasible.
func TestQuickFlipInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		ws := make([]platform.Worker, n)
		for i := range ws {
			ws[i] = platform.Worker{
				C: 0.01 + rng.Float64()*0.05,
				W: 0.01 + rng.Float64()*0.2,
				D: 0.01 + rng.Float64()*0.05,
			}
		}
		p := platform.New(ws...)
		perm := rng.Perm(n)
		s := &Schedule{
			SendOrder:   platform.Order(perm),
			ReturnOrder: platform.Order(rng.Perm(n)),
			Alpha:       make([]float64, n),
			T:           1,
		}
		for i := range s.Alpha {
			s.Alpha[i] = rng.Float64() // small enough on this platform
		}
		if err := s.Check(p, OnePort); err != nil {
			// Not all random combinations are feasible; skip those.
			return true
		}
		fl := s.Flipped()
		if err := fl.Check(p.Mirror(), OnePort); err != nil {
			t.Logf("flip broke feasibility: %v", err)
			return false
		}
		return math.Abs(fl.Throughput()-s.Throughput()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickTimelineConsistency: derived timelines always satisfy basic
// accounting identities regardless of feasibility.
func TestQuickTimelineConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		ws := make([]platform.Worker, n)
		for i := range ws {
			ws[i] = platform.Worker{C: 0.1 + rng.Float64(), W: 0.1 + rng.Float64(), D: 0.1 + rng.Float64()}
		}
		p := platform.New(ws...)
		s := &Schedule{
			SendOrder:   platform.Order(rng.Perm(n)),
			ReturnOrder: platform.Order(rng.Perm(n)),
			Alpha:       make([]float64, n),
			T:           1 + rng.Float64()*10,
		}
		for i := range s.Alpha {
			s.Alpha[i] = rng.Float64() * 3
		}
		tl := s.Timeline(p)
		// Sends tile [0, Σαc] in order; returns tile [T-Σαd, T].
		sumC, sumD := 0.0, 0.0
		for _, i := range s.SendOrder {
			sumC += s.Alpha[i] * p.Workers[i].C
			sumD += s.Alpha[i] * p.Workers[i].D
		}
		var lastSendEnd, lastReturnEnd float64
		for _, wt := range tl {
			w := p.Workers[wt.Worker]
			if math.Abs((wt.SendEnd-wt.SendStart)-s.Alpha[wt.Worker]*w.C) > 1e-9 {
				return false
			}
			if math.Abs((wt.ReturnEnd-wt.ReturnStart)-s.Alpha[wt.Worker]*w.D) > 1e-9 {
				return false
			}
			if math.Abs((wt.CompEnd-wt.SendEnd)-s.Alpha[wt.Worker]*w.W) > 1e-9 {
				return false
			}
			if wt.SendEnd > lastSendEnd {
				lastSendEnd = wt.SendEnd
			}
			if wt.ReturnEnd > lastReturnEnd {
				lastReturnEnd = wt.ReturnEnd
			}
		}
		return math.Abs(lastSendEnd-sumC) < 1e-9 && math.Abs(lastReturnEnd-s.T) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTimeline(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 64
	ws := make([]platform.Worker, n)
	for i := range ws {
		ws[i] = platform.Worker{C: 0.1 + rng.Float64(), W: rng.Float64(), D: rng.Float64()}
	}
	p := platform.New(ws...)
	s := &Schedule{
		SendOrder:   platform.Order(rng.Perm(n)),
		ReturnOrder: platform.Order(rng.Perm(n)),
		Alpha:       make([]float64, n),
		T:           100,
	}
	for i := range s.Alpha {
		s.Alpha[i] = rng.Float64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Timeline(p)
	}
}

func BenchmarkCheckOnePort(b *testing.B) {
	p := twoWorkerPlatform()
	s := feasibleFIFO()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Check(p, OnePort); err != nil {
			b.Fatal(err)
		}
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := feasibleFIFO()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.T != s.T || len(back.Alpha) != len(s.Alpha) {
		t.Fatalf("round trip changed schedule: %+v", back)
	}
	for i := range s.Alpha {
		if back.Alpha[i] != s.Alpha[i] {
			t.Errorf("alpha[%d] changed", i)
		}
	}
	for i := range s.SendOrder {
		if back.SendOrder[i] != s.SendOrder[i] || back.ReturnOrder[i] != s.ReturnOrder[i] {
			t.Errorf("orders changed")
		}
	}
	// The deserialized schedule still checks out.
	if err := back.Check(twoWorkerPlatform(), OnePort); err != nil {
		t.Errorf("deserialized schedule infeasible: %v", err)
	}
}
