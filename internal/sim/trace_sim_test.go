package sim

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestRunTracingDeterministic extends the determinism property to traced
// runs: with Config.Trace on, stage timestamps come from the virtual
// clock and trace ids from the sequential arrival counter, so the report
// — now including the Tracing aggregates — stays byte-identical across
// identically seeded runs.
func TestRunTracingDeterministic(t *testing.T) {
	run := func() ([]byte, []byte) {
		t.Helper()
		var log bytes.Buffer
		rep, err := Run(Config{
			Seed:        11,
			MaxArrivals: 10000,
			Process:     burstProcess(),
			Trace:       true,
			Log:         &log,
		})
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return log.Bytes(), js
	}
	log1, rep1 := run()
	log2, rep2 := run()
	if !bytes.Equal(log1, log2) {
		t.Fatal("event logs differ between identically seeded traced runs")
	}
	if !bytes.Equal(rep1, rep2) {
		t.Fatalf("traced reports differ between identically seeded runs:\n%s\n%s", rep1, rep2)
	}
	if !bytes.Contains(rep1, []byte(`"tracing"`)) {
		t.Fatal("traced report carries no tracing section")
	}
}

// TestRunTracingAccounting checks the virtual-time trace aggregates: every
// answered arrival is traced, the batcher stages appear with sane virtual
// durations, and untraced runs omit the section entirely.
func TestRunTracingAccounting(t *testing.T) {
	cfg := Config{Seed: 3, MaxArrivals: 5000, Process: &Poisson{Rate: 8000}, Trace: true}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every arrival is answered somewhere — completion, shed, or crash —
	// and each answer finishes its trace.
	if rep.Traces != rep.Arrivals {
		t.Errorf("Traces = %d, want every arrival (%d)", rep.Traces, rep.Arrivals)
	}
	for _, stage := range []string{"queue_wait", "window_wait", "solve"} {
		agg := rep.Tracing[stage]
		if agg == nil {
			t.Fatalf("stage %q missing from tracing section: %v", stage, rep.Tracing)
		}
		if agg.Count <= 0 || agg.TotalNS < 0 || agg.MaxNS < agg.TotalNS/agg.Count {
			t.Errorf("stage %q aggregate inconsistent: %+v", stage, agg)
		}
	}
	// The solve stage spans the virtual service time, which the cost
	// model keeps strictly positive.
	if solve := rep.Tracing["solve"]; solve.TotalNS <= 0 {
		t.Errorf("solve stage total = %d ns, want > 0 virtual time", solve.TotalNS)
	}
	// Completed arrivals' solve stages are bounded by the run's horizon.
	if max := rep.Tracing["solve"].MaxNS; max > int64(time.Duration(rep.VirtualSeconds*float64(time.Second))) {
		t.Errorf("solve max %dns exceeds the whole virtual run", max)
	}

	cfg.Trace = false
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Traces != 0 || plain.Tracing != nil {
		t.Errorf("untraced run reports tracing: traces=%d tracing=%v", plain.Traces, plain.Tracing)
	}
}
