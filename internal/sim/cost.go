package sim

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"
)

// CostDist is a solve-latency distribution specified by its quantiles —
// the shape internal/stats.Histogram and the dlsload report expose, so a
// model calibrates directly from a measured run. Samples interpolate the
// quantile curve piecewise (linear below P50, between the pinned
// quantiles, and a mild power tail beyond P99 capped at 10×P99).
type CostDist struct {
	P50 time.Duration `json:"p50"`
	P90 time.Duration `json:"p90"`
	P99 time.Duration `json:"p99"`
}

// Sample draws one latency.
func (d CostDist) Sample(rng *rand.Rand) time.Duration {
	u := rng.Float64()
	switch {
	case u <= 0.5:
		return time.Duration(float64(d.P50) * u / 0.5)
	case u <= 0.9:
		f := (u - 0.5) / 0.4
		return d.P50 + time.Duration(f*float64(d.P90-d.P50))
	case u <= 0.99:
		f := (u - 0.9) / 0.09
		return d.P90 + time.Duration(f*float64(d.P99-d.P90))
	default:
		// Tail: P99 · (0.01/(1-u))^½, capped at 10× P99.
		t := time.Duration(float64(d.P99) * math.Sqrt(0.01/(1-u)))
		if max := 10 * d.P99; t > max {
			t = max
		}
		return t
	}
}

func (d CostDist) valid() bool {
	return d.P50 > 0 && d.P90 >= d.P50 && d.P99 >= d.P90
}

// CostModel maps window composition to virtual service time. Per-group
// (deduplicated problem) costs are drawn per kind; a window of n groups
// solved over Parallelism engine workers takes
//
//	PerWindow + max(Σ costs / Parallelism, max cost)
//
// the standard makespan lower bound for list scheduling, which matches
// how SolveBatch fans deduplicated groups over the solver pool. The
// defaults are calibrated from the PR 5 reference-container measurements
// (chain solves single-digit µs through the SoA prepass, p = 7
// exhaustive searches ~1–3 ms).
type CostModel struct {
	// PerWindow is the fixed dispatch overhead of one flushed window.
	PerWindow time.Duration `json:"per_window"`
	// Kinds are the per-kind group-cost distributions.
	Kinds map[string]CostDist `json:"kinds"`
	// Parallelism is the engine worker-pool width a window fans over.
	Parallelism int `json:"parallelism"`
}

// DefaultCostModel is the built-in calibration.
func DefaultCostModel() CostModel {
	return CostModel{
		PerWindow:   20 * time.Microsecond,
		Parallelism: 8,
		Kinds: map[string]CostDist{
			"chain":  {P50: 8 * time.Microsecond, P90: 15 * time.Microsecond, P99: 40 * time.Microsecond},
			"search": {P50: 1200 * time.Microsecond, P90: 2500 * time.Microsecond, P99: 6 * time.Millisecond},
		},
	}
}

// dist returns the distribution for kind, falling back to "chain".
func (m CostModel) dist(kind string) CostDist {
	if d, ok := m.Kinds[kind]; ok && d.valid() {
		return d
	}
	if d, ok := m.Kinds["chain"]; ok && d.valid() {
		return d
	}
	return CostDist{P50: 10 * time.Microsecond, P90: 20 * time.Microsecond, P99: 50 * time.Microsecond}
}

// WindowCost models the service time of a window whose deduplicated
// groups have the given kinds. Costs are sampled in slice order from
// rng, so callers that build the kind list deterministically get
// deterministic service times.
func (m CostModel) WindowCost(rng *rand.Rand, kinds []string) time.Duration {
	if len(kinds) == 0 {
		return m.PerWindow
	}
	p := m.Parallelism
	if p < 1 {
		p = 1
	}
	var sum, max time.Duration
	for _, kind := range kinds {
		c := m.dist(kind).Sample(rng)
		sum += c
		if c > max {
			max = c
		}
	}
	span := sum / time.Duration(p)
	if max > span {
		span = max
	}
	return m.PerWindow + span
}

// calibrationFile is the JSON schema of -calibrate: a cost model, with
// durations as Go duration strings ("8us", "1.2ms").
type calibrationFile struct {
	PerWindow   string `json:"per_window"`
	Parallelism int    `json:"parallelism"`
	Kinds       map[string]struct {
		P50 string `json:"p50"`
		P90 string `json:"p90"`
		P99 string `json:"p99"`
	} `json:"kinds"`
}

// LoadCostModel reads a calibration JSON file (see calibrationFile; the
// BENCH.md simulation section documents how to produce one from a real
// dlsd run's latency histogram). Missing fields keep their defaults.
func LoadCostModel(path string) (CostModel, error) {
	m := DefaultCostModel()
	data, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	var cf calibrationFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return m, fmt.Errorf("sim: calibration %s: %w", path, err)
	}
	parse := func(s string) (time.Duration, error) {
		if s == "" {
			return 0, nil
		}
		return time.ParseDuration(s)
	}
	if d, err := parse(cf.PerWindow); err != nil {
		return m, fmt.Errorf("sim: calibration per_window: %w", err)
	} else if d > 0 {
		m.PerWindow = d
	}
	if cf.Parallelism > 0 {
		m.Parallelism = cf.Parallelism
	}
	for kind, q := range cf.Kinds {
		p50, err1 := parse(q.P50)
		p90, err2 := parse(q.P90)
		p99, err3 := parse(q.P99)
		if err1 != nil || err2 != nil || err3 != nil {
			return m, fmt.Errorf("sim: calibration kind %q: bad duration", kind)
		}
		d := CostDist{P50: p50, P90: p90, P99: p99}
		if !d.valid() {
			return m, fmt.Errorf("sim: calibration kind %q: want 0 < p50 <= p90 <= p99", kind)
		}
		m.Kinds[kind] = d
	}
	return m, nil
}
