package sim

import (
	"bufio"
	"container/heap"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/dls"
	"repro/internal/obs"
)

// Config parameterizes one simulation run. Zero values take the defaults
// documented per field; exactly the randomness reachable from Seed is
// used, so a (Config, Seed) pair is a reproducible experiment.
type Config struct {
	// Seed seeds the run's single random stream.
	Seed int64
	// Horizon bounds virtual time: no arrival is generated after it.
	Horizon time.Duration
	// MaxArrivals bounds the number of generated arrivals (0: only
	// Horizon bounds the run). At least one of the two must be set.
	MaxArrivals int
	// Process generates the arrival sequence. Required.
	Process Process

	// Classes are the SLO classes offered, with Shares their relative
	// traffic fractions (normalized; zero Shares means uniform). Default:
	// dls.DefaultSLOClasses with shares 0.3 / 0.5 / 0.2.
	Classes []dls.SLOClass
	Shares  []float64

	// Platforms is the size of the hot problem pool: distinct platforms,
	// each contributing one chain-kind and one search-kind request.
	// Smaller pools mean more duplicate collapse per window. Default 32.
	Platforms int
	// P is the worker count of each generated platform. Default 6.
	P int
	// SearchShare is the fraction of arrivals that are search-kind
	// (exhaustive-order solves, ~100× a chain solve). Default 0.1.
	SearchShare float64
	// ZipfS skews platform popularity (s > 1: rand.Zipf; else uniform).
	// Default 1.1 — a hot head like a production key distribution.
	ZipfS float64
	// Cost is the virtual service-time model. Default DefaultCostModel.
	Cost CostModel

	// Window, WindowSize, QueueCap and Drain configure the batcher
	// (BatcherConfig MaxDelay / MaxSize / QueueCap / Workers). Defaults
	// 2ms / 64 / 1024 / 2 — dlsd's defaults.
	Window     time.Duration
	WindowSize int
	QueueCap   int
	Drain      int
	// Adaptive, when set, enables the adaptive admission policy.
	Adaptive *dls.AdaptiveConfig

	// Failures injects replica crashes (see Failure and ParseFailures):
	// in-flight windows fail with ErrReplicaCrashed, arrivals during the
	// downtime are lost, and service resumes at At+Down.
	Failures []Failure

	// Log, when set, receives the JSONL event log (arrive / shed / flush
	// / done lines in virtual-time order — byte-identical across runs of
	// the same seeded config).
	Log io.Writer

	// Trace runs every admitted arrival under an internal/obs trace on
	// the virtual clock: stage timestamps are virtual times, trace ids are
	// the sequential arrival ids, and the Report gains a Tracing section
	// aggregating per-stage totals — all pure functions of the Config, so
	// traced runs stay byte-deterministic.
	Trace bool
}

func (cfg Config) withDefaults() Config {
	if len(cfg.Classes) == 0 {
		cfg.Classes = dls.DefaultSLOClasses()
		cfg.Shares = []float64{0.3, 0.5, 0.2}
	}
	if len(cfg.Shares) != len(cfg.Classes) {
		cfg.Shares = make([]float64, len(cfg.Classes))
		for i := range cfg.Shares {
			cfg.Shares[i] = 1
		}
	}
	if cfg.Platforms <= 0 {
		cfg.Platforms = 32
	}
	if cfg.P <= 0 {
		cfg.P = 6
	}
	if cfg.SearchShare < 0 {
		cfg.SearchShare = 0
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.1
	}
	if len(cfg.Cost.Kinds) == 0 {
		cfg.Cost = DefaultCostModel()
	}
	if cfg.Window <= 0 {
		cfg.Window = 2 * time.Millisecond
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 64
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	if cfg.Drain <= 0 {
		cfg.Drain = 2
	}
	return cfg
}

// Report is the outcome of a run. Everything marshalled to JSON is a
// pure function of the Config (including Seed) — wall-clock measurements
// ride along unexported from the JSON so CI can compare reports
// byte-for-byte across runs.
type Report struct {
	Scenario       string                  `json:"scenario,omitempty"`
	Seed           int64                   `json:"seed"`
	Mode           string                  `json:"mode"` // "fixed" | "adaptive"
	WindowMS       float64                 `json:"window_ms"`
	WindowSize     int                     `json:"window_size"`
	QueueCap       int                     `json:"queue_cap"`
	Drain          int                     `json:"drain"`
	VirtualSeconds float64                 `json:"virtual_seconds"`
	Arrivals       int64                   `json:"arrivals"`
	Completed      int64                   `json:"completed"`
	Shed           int64                   `json:"shed"`
	ShedSLO        int64                   `json:"shed_slo"`
	Violations     int64                   `json:"violations"`
	Windows        int64                   `json:"windows"`
	AvgWindowFill  float64                 `json:"avg_window_fill"`
	CollapseRatio  float64                 `json:"collapse_ratio"` // requests per dedup group
	Crashes        int64                   `json:"crashes,omitempty"`
	CrashFailed    int64                   `json:"crash_failed,omitempty"` // in-flight requests failed by crashes
	CrashLost      int64                   `json:"crash_lost,omitempty"`   // arrivals lost while the replica was down
	Classes        map[string]*ClassReport `json:"classes"`
	WindowTrace    []WindowSample          `json:"window_trace,omitempty"`
	Events         int64                   `json:"events"`
	// Traces counts finished request traces and Tracing aggregates their
	// stages by name (Config.Trace; virtual-time durations, deterministic).
	Traces  int64                `json:"traces,omitempty"`
	Tracing map[string]*StageAgg `json:"tracing,omitempty"`

	// WallSeconds is how long the run took in real time. Excluded from
	// the JSON: it would break byte-identical determinism.
	WallSeconds float64 `json:"-"`
}

// ClassReport is the per-SLO-class outcome.
type ClassReport struct {
	Arrivals   int64   `json:"arrivals"`
	Completed  int64   `json:"completed"`
	Shed       int64   `json:"shed"`
	ShedSLO    int64   `json:"shed_slo"`
	Failed     int64   `json:"failed,omitempty"` // crash-failed in-flight + arrivals lost to downtime
	Violations int64   `json:"violations"`
	ShedRate   float64 `json:"shed_rate"`
	P50MS      float64 `json:"p50_ms"`
	P90MS      float64 `json:"p90_ms"`
	P99MS      float64 `json:"p99_ms"`
	MaxMS      float64 `json:"max_ms"`
}

// StageAgg aggregates one trace stage across a run: how often it was
// recorded, its total virtual duration and its maximum.
type StageAgg struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	MaxNS   int64 `json:"max_ns"`
}

// WindowSample is one decimated point of the window-size trace.
type WindowSample struct {
	TNanos  int64 `json:"t"`
	Size    int   `json:"n"`
	Groups  int   `json:"g"`
	Backlog int   `json:"backlog"` // windows flushed or queued, not yet completed
	DelayNS int64 `json:"delay_ns"`
}

// arrivalMeta links a batcher submission back to its arrival record; it
// rides on the submission as its tag.
type arrivalMeta struct {
	id    int64
	at    time.Time
	class string
	kind  string
	pb    int
	trace *obs.Trace // Config.Trace: finished where the arrival is answered
}

// event is one scheduled occurrence on the virtual timeline. seq breaks
// time ties in schedule order, which makes the event order — and hence
// the whole run — deterministic.
type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// job is one flushed window awaiting (or in) virtual service. failed is
// set when an injected crash already answered the window, so the stale
// finishService event recognizes itself and does nothing.
type job struct {
	win    *dls.Window
	kinds  []string
	failed bool
}

type classAcc struct {
	arrivals, completed, shed, shedSLO, failed, violations int64
	lat                                                    []time.Duration
}

// simulator is the single-threaded event-loop state.
type simulator struct {
	cfg    Config
	clock  *Clock
	rng    *rand.Rand
	zipf   *rand.Zipf
	events eventHeap
	seq    uint64
	err    error

	solver *dls.Solver
	b      *dls.Batcher

	chainReqs  []dls.Request
	searchReqs []dls.Request

	shareCum []float64

	winGen          int64
	expiryScheduled int64

	busy      int
	ready     []*job
	readyHead int
	inService []*job

	down                            bool
	crashes, crashFailed, crashLost int64

	nextID      int64
	generated   int
	lastArrival time.Time
	horizonEnd  time.Time

	perClass map[string]*classAcc

	flushes, sizeSum, groupSum int64
	trace                      []WindowSample
	traceStride, flushIdx      int64

	log        *bufio.Writer
	eventCount int64

	rec      *obs.Recorder // Config.Trace: recorder on the virtual clock
	traced   int64
	stageAgg map[string]*StageAgg
}

// Run executes one simulation.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Process == nil {
		return nil, errors.New("sim: Config.Process is required")
	}
	if cfg.Horizon <= 0 && cfg.MaxArrivals <= 0 {
		return nil, errors.New("sim: set Config.Horizon or Config.MaxArrivals")
	}
	solver, err := dls.NewSolver()
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	s := &simulator{
		cfg:             cfg,
		clock:           NewClock(),
		rng:             rand.New(rand.NewSource(cfg.Seed)),
		solver:          solver,
		expiryScheduled: -1,
		traceStride:     1,
		perClass:        make(map[string]*classAcc, len(cfg.Classes)),
	}
	if cfg.ZipfS > 1 && cfg.Platforms > 1 {
		s.zipf = rand.NewZipf(s.rng, cfg.ZipfS, 1, uint64(cfg.Platforms-1))
	}
	if cfg.Log != nil {
		s.log = bufio.NewWriterSize(cfg.Log, 1<<16)
	}
	for _, c := range cfg.Classes {
		s.perClass[c.Name] = &classAcc{}
	}
	if cfg.Trace {
		s.rec = obs.NewRecorder(obs.RecorderConfig{Now: s.clock.Now})
		s.stageAgg = make(map[string]*StageAgg)
	}
	s.buildPool()
	s.buildShares()

	s.b = solver.NewBatcher(dls.BatcherConfig{
		MaxDelay: cfg.Window,
		MaxSize:  cfg.WindowSize,
		QueueCap: cfg.QueueCap,
		Workers:  cfg.Drain,
		Clock:    s.clock,
		Classes:  cfg.Classes,
		Adaptive: cfg.Adaptive,
		OnWindow: s.onWindow,
		OnShed:   s.onShed,
	})
	defer s.b.Close()

	if cfg.Horizon > 0 {
		s.horizonEnd = Epoch.Add(cfg.Horizon)
	} else {
		s.horizonEnd = Epoch.Add(1<<62 - 1)
	}
	s.lastArrival = Epoch

	start := time.Now()
	s.scheduleNextArrival()
	for _, f := range cfg.Failures {
		f := f
		s.schedule(Epoch.Add(f.At), func() { s.crash(f.Down) })
	}
	for len(s.events) > 0 && s.err == nil {
		ev := heap.Pop(&s.events).(*event)
		s.clock.AdvanceTo(ev.at)
		ev.fn()
		s.eventCount++
	}
	if s.err != nil {
		return nil, s.err
	}
	// Flush whatever window is still open (arrivals can end before its
	// expiry event fires usefully — ExpireWindow is a no-op when empty).
	s.b.ExpireWindow()
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*event)
		s.clock.AdvanceTo(ev.at)
		ev.fn()
		s.eventCount++
	}
	if s.log != nil {
		if err := s.log.Flush(); err != nil && s.err == nil {
			s.err = fmt.Errorf("sim: event log: %w", err)
		}
	}
	if s.err != nil {
		return nil, s.err
	}
	rep := s.report()
	rep.WallSeconds = time.Since(start).Seconds()
	return rep, nil
}

// buildPool draws the hot problem pool: Platforms random platforms, each
// prebuilt into one chain request (INC_C, the closed-form path) and one
// exhaustive-search request. Reusing the built Request values makes
// same-(platform, kind) arrivals literally identical requests, so the
// batcher's dedup collapses them exactly as it would in dlsd.
func (s *simulator) buildPool() {
	s.chainReqs = make([]dls.Request, s.cfg.Platforms)
	s.searchReqs = make([]dls.Request, s.cfg.Platforms)
	for i := 0; i < s.cfg.Platforms; i++ {
		plat := dls.RandomSpeeds(s.rng, s.cfg.P, dls.Heterogeneous).Platform(dls.DefaultApp(100))
		s.chainReqs[i] = dls.Request{Platform: plat, Strategy: dls.StrategyIncC, Load: 1000}
		s.searchReqs[i] = dls.Request{Platform: plat, Strategy: dls.StrategyFIFOExhaustive}
	}
}

func (s *simulator) buildShares() {
	s.shareCum = make([]float64, len(s.cfg.Shares))
	var sum float64
	for _, w := range s.cfg.Shares {
		if w < 0 {
			w = 0
		}
		sum += w
	}
	if sum <= 0 {
		sum = float64(len(s.cfg.Shares))
	}
	acc := 0.0
	for i, w := range s.cfg.Shares {
		if w < 0 {
			w = 0
		}
		acc += w / sum
		s.shareCum[i] = acc
	}
	s.shareCum[len(s.shareCum)-1] = 1
}

func (s *simulator) schedule(at time.Time, fn func()) {
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fn: fn})
}

// scheduleNextArrival draws the next inter-arrival gap and schedules the
// arrival, unless the horizon or arrival budget is exhausted. Generation
// happens at fire time of the previous arrival, so all randomness stays
// on one stream in one deterministic order.
func (s *simulator) scheduleNextArrival() {
	if s.cfg.MaxArrivals > 0 && s.generated >= s.cfg.MaxArrivals {
		return
	}
	arr, ok := s.cfg.Process.Next(s.rng)
	if !ok {
		return
	}
	at := s.lastArrival.Add(arr.Gap)
	if at.After(s.horizonEnd) {
		return
	}
	s.lastArrival = at
	s.generated++
	s.schedule(at, func() {
		s.admit(arr)
		s.scheduleNextArrival()
	})
}

// admit injects one arrival into the batcher.
func (s *simulator) admit(arr Arrival) {
	now := s.clock.Now()
	pb := arr.Platform
	if pb < 0 || pb >= s.cfg.Platforms {
		pb = s.drawPlatform()
	}
	kind := arr.Kind
	if kind == "" {
		kind = "chain"
		if s.rng.Float64() < s.cfg.SearchShare {
			kind = "search"
		}
	}
	class := arr.Class
	if class == "" {
		class = s.drawClass()
	}
	req := s.chainReqs[pb]
	if kind == "search" {
		req = s.searchReqs[pb]
	}
	s.nextID++
	meta := &arrivalMeta{id: s.nextID, at: now, class: class, kind: kind, pb: pb}
	if acc := s.perClass[class]; acc != nil {
		acc.arrivals++
	}
	if s.down {
		// The replica is dark: the arrival never reaches admission
		// (connection refused) and is lost.
		s.crashLost++
		if acc := s.perClass[class]; acc != nil {
			acc.failed++
		}
		s.logf(`{"t":%d,"e":"lost","id":%d,"class":%q}`+"\n", s.tns(now), meta.id, class)
		return
	}
	s.logf(`{"t":%d,"e":"arrive","id":%d,"class":%q,"kind":%q,"pb":%d}`+"\n",
		s.tns(now), meta.id, class, kind, pb)
	ctx := context.Background()
	if s.rec != nil {
		// Deterministic trace id: the sequential arrival id, zero-padded
		// to the 32-hex traceparent shape (no randomness in traced runs).
		meta.trace = s.rec.StartTrace(kind, fmt.Sprintf("%032x", uint64(meta.id)), "")
		ctx = obs.ContextWithTrace(ctx, meta.trace)
	}
	if _, err := s.b.Offer(ctx, req, class, meta); err != nil {
		s.err = fmt.Errorf("sim: offer: %w", err)
		return
	}
	s.armExpiry()
}

// armExpiry schedules the window-expiry event for the currently filling
// window, once per window generation. Stale events (their window already
// flushed by size) recognize themselves by generation and do nothing.
func (s *simulator) armExpiry() {
	dl, ok := s.b.WindowDeadline()
	if !ok || s.expiryScheduled == s.winGen {
		return
	}
	gen := s.winGen
	s.expiryScheduled = gen
	s.schedule(dl, func() {
		if gen == s.winGen {
			s.b.ExpireWindow()
		}
	})
}

func (s *simulator) drawPlatform() int {
	if s.zipf != nil {
		return int(s.zipf.Uint64())
	}
	if s.cfg.Platforms == 1 {
		return 0
	}
	return s.rng.Intn(s.cfg.Platforms)
}

func (s *simulator) drawClass() string {
	u := s.rng.Float64()
	for i, cum := range s.shareCum {
		if u < cum {
			return s.cfg.Classes[i].Name
		}
	}
	return s.cfg.Classes[len(s.cfg.Classes)-1].Name
}

// onShed observes every shed, at admission or at flush, via the
// batcher's hook.
func (s *simulator) onShed(class string, tag any, err error) {
	slo := errors.Is(err, dls.ErrSLOUnmeetable)
	acc := s.perClass[class]
	if acc == nil {
		acc = &classAcc{}
		s.perClass[class] = acc
	}
	acc.shed++
	if slo {
		acc.shedSLO++
	}
	id := int64(0)
	if m, ok := tag.(*arrivalMeta); ok {
		id = m.id
		m.trace.Annotate(obs.Bool("shed", true))
		s.finishTrace(m)
	}
	s.logf(`{"t":%d,"e":"shed","id":%d,"class":%q,"slo":%t}`+"\n",
		s.tns(s.clock.Now()), id, class, slo)
}

// onWindow receives each flushed window from the batcher and routes it
// into the Drain-bounded virtual service stage.
func (s *simulator) onWindow(w *dls.Window) {
	s.winGen++
	if s.down {
		// The crash flushed the filling window (or a stale expiry fired
		// during the blackout): everything in it dies with the replica.
		s.failWindow(w)
		return
	}
	s.flushes++
	s.sizeSum += int64(w.Size())
	s.groupSum += int64(w.Groups())
	s.sampleWindow(w)

	j := &job{win: w, kinds: s.windowKinds(w)}
	backlog := s.busy + (len(s.ready) - s.readyHead)
	s.logf(`{"t":%d,"e":"flush","n":%d,"g":%d,"backlog":%d}`+"\n",
		s.tns(w.FlushedAt()), w.Size(), w.Groups(), backlog)
	if s.busy < s.cfg.Drain {
		s.startService(j)
	} else {
		s.ready = append(s.ready, j)
	}
}

// windowKinds lists the window's deduplicated (platform, kind) groups in
// first-seen order — the unit the cost model prices.
func (s *simulator) windowKinds(w *dls.Window) []string {
	seen := make(map[int]struct{}, w.Size())
	kinds := make([]string, 0, w.Size())
	for i := 0; i < w.Size(); i++ {
		m, ok := w.Tag(i).(*arrivalMeta)
		if !ok {
			kinds = append(kinds, "chain")
			continue
		}
		key := m.pb << 1
		if m.kind == "search" {
			key |= 1
		}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		kinds = append(kinds, m.kind)
	}
	return kinds
}

func (s *simulator) startService(j *job) {
	s.busy++
	s.inService = append(s.inService, j)
	cost := s.cfg.Cost.WindowCost(s.rng, j.kinds)
	s.schedule(s.clock.Now().Add(cost), func() { s.finishService(j, cost) })
}

// crash fires one injected replica failure: every window in service or
// queued fails with ErrReplicaCrashed, the filling window is flushed
// into the same fate, and arrivals are lost until the restart fires
// `down` later. A crash while already down is ignored (the blackout in
// progress already covers it).
func (s *simulator) crash(down time.Duration) {
	if s.down {
		return
	}
	now := s.clock.Now()
	s.down = true
	s.crashes++
	s.logf(`{"t":%d,"e":"crash","down":%d}`+"\n", s.tns(now), int64(down))
	for _, j := range s.inService {
		j.failed = true
		s.failWindow(j.win)
	}
	s.inService = s.inService[:0]
	s.busy = 0
	for i := s.readyHead; i < len(s.ready); i++ {
		s.failWindow(s.ready[i].win)
	}
	s.ready = s.ready[:0]
	s.readyHead = 0
	s.b.ExpireWindow() // the filling window fails via the down-path in onWindow
	s.schedule(now.Add(down), s.restore)
}

func (s *simulator) restore() {
	s.down = false
	s.logf(`{"t":%d,"e":"restore"}`+"\n", s.tns(s.clock.Now()))
}

// failWindow answers every submission of w with ErrReplicaCrashed.
func (s *simulator) failWindow(w *dls.Window) {
	errs := make([]error, w.Size())
	for i := range errs {
		errs[i] = ErrReplicaCrashed
	}
	if err := w.Complete(nil, errs); err != nil {
		s.err = fmt.Errorf("sim: %w", err)
		return
	}
	for i := 0; i < w.Size(); i++ {
		if m, ok := w.Tag(i).(*arrivalMeta); ok {
			if acc := s.perClass[m.class]; acc != nil {
				acc.failed++
			}
			m.trace.Annotate(obs.String("error", ErrReplicaCrashed.Error()))
			s.finishTrace(m)
		}
	}
	s.crashFailed += int64(w.Size())
	s.logf(`{"t":%d,"e":"crash-fail","n":%d}`+"\n", s.tns(s.clock.Now()), w.Size())
}

func (s *simulator) finishService(j *job, cost time.Duration) {
	if j.failed {
		// A crash already answered this window; busy/ready were reset.
		return
	}
	for i, sj := range s.inService {
		if sj == j {
			s.inService[i] = s.inService[len(s.inService)-1]
			s.inService = s.inService[:len(s.inService)-1]
			break
		}
	}
	now := s.clock.Now()
	w := j.win
	if err := w.Complete(nil, nil); err != nil {
		s.err = fmt.Errorf("sim: %w", err)
		return
	}
	for i := 0; i < w.Size(); i++ {
		m, ok := w.Tag(i).(*arrivalMeta)
		if !ok {
			continue
		}
		s.finishTrace(m)
		acc := s.perClass[m.class]
		if acc == nil {
			continue
		}
		acc.completed++
		acc.lat = append(acc.lat, now.Sub(m.at))
		if dl := w.Deadline(i); !dl.IsZero() && now.After(dl) {
			acc.violations++
		}
	}
	s.logf(`{"t":%d,"e":"done","n":%d,"svc":%d}`+"\n", s.tns(now), w.Size(), int64(cost))
	s.busy--
	if s.readyHead < len(s.ready) {
		next := s.ready[s.readyHead]
		s.ready[s.readyHead] = nil
		s.readyHead++
		if s.readyHead == len(s.ready) {
			s.ready = s.ready[:0]
			s.readyHead = 0
		}
		s.startService(next)
	}
}

// sampleWindow records the window-size trace, decimating by powers of
// two so the trace stays bounded (≤ 512 samples) and deterministic.
func (s *simulator) sampleWindow(w *dls.Window) {
	if s.flushIdx%s.traceStride == 0 {
		delay := s.cfg.Window
		if st, ok := s.b.AdaptiveState(); ok {
			delay = st.WindowDelay
		}
		s.trace = append(s.trace, WindowSample{
			TNanos:  s.tns(w.FlushedAt()),
			Size:    w.Size(),
			Groups:  w.Groups(),
			Backlog: s.busy + (len(s.ready) - s.readyHead),
			DelayNS: int64(delay),
		})
		if len(s.trace) == 512 {
			keep := s.trace[:0]
			for i := 0; i < len(s.trace); i += 2 {
				keep = append(keep, s.trace[i])
			}
			s.trace = keep
			s.traceStride *= 2
		}
	}
	s.flushIdx++
}

// finishTrace seals one arrival's trace into the recorder and folds its
// stages into the per-stage aggregates for the Report. Events fire in
// deterministic virtual-time order, so the aggregates are a pure
// function of the Config.
func (s *simulator) finishTrace(m *arrivalMeta) {
	if s.rec == nil || m.trace == nil {
		return
	}
	d := s.rec.Finish(m.trace)
	m.trace = nil
	s.traced++
	for _, st := range d.Stages {
		agg := s.stageAgg[st.Name]
		if agg == nil {
			agg = &StageAgg{}
			s.stageAgg[st.Name] = agg
		}
		agg.Count++
		agg.TotalNS += st.DurationNS
		if st.DurationNS > agg.MaxNS {
			agg.MaxNS = st.DurationNS
		}
	}
}

func (s *simulator) tns(t time.Time) int64 { return t.Sub(Epoch).Nanoseconds() }

func (s *simulator) logf(format string, args ...any) {
	if s.log == nil {
		return
	}
	if _, err := fmt.Fprintf(s.log, format, args...); err != nil && s.err == nil {
		s.err = fmt.Errorf("sim: event log: %w", err)
	}
}

func (s *simulator) report() *Report {
	mode := "fixed"
	if s.cfg.Adaptive != nil {
		mode = "adaptive"
	}
	rep := &Report{
		Seed:           s.cfg.Seed,
		Mode:           mode,
		WindowMS:       float64(s.cfg.Window) / float64(time.Millisecond),
		WindowSize:     s.cfg.WindowSize,
		QueueCap:       s.cfg.QueueCap,
		Drain:          s.cfg.Drain,
		VirtualSeconds: s.clock.Now().Sub(Epoch).Seconds(),
		Windows:        s.flushes,
		Crashes:        s.crashes,
		CrashFailed:    s.crashFailed,
		CrashLost:      s.crashLost,
		Classes:        make(map[string]*ClassReport, len(s.perClass)),
		WindowTrace:    s.trace,
		Events:         s.eventCount,
		Traces:         s.traced,
		Tracing:        s.stageAgg,
	}
	if s.flushes > 0 {
		rep.AvgWindowFill = float64(s.sizeSum) / float64(s.flushes)
	}
	if s.groupSum > 0 {
		rep.CollapseRatio = float64(s.sizeSum) / float64(s.groupSum)
	}
	names := make([]string, 0, len(s.perClass))
	for name := range s.perClass {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		acc := s.perClass[name]
		cr := &ClassReport{
			Arrivals:   acc.arrivals,
			Completed:  acc.completed,
			Shed:       acc.shed,
			ShedSLO:    acc.shedSLO,
			Failed:     acc.failed,
			Violations: acc.violations,
		}
		if acc.arrivals > 0 {
			cr.ShedRate = float64(acc.shed) / float64(acc.arrivals)
		}
		if len(acc.lat) > 0 {
			sort.Slice(acc.lat, func(i, j int) bool { return acc.lat[i] < acc.lat[j] })
			cr.P50MS = latPctMS(acc.lat, 0.50)
			cr.P90MS = latPctMS(acc.lat, 0.90)
			cr.P99MS = latPctMS(acc.lat, 0.99)
			cr.MaxMS = float64(acc.lat[len(acc.lat)-1]) / float64(time.Millisecond)
		}
		rep.Classes[name] = cr
		rep.Arrivals += acc.arrivals
		rep.Completed += acc.completed
		rep.Shed += acc.shed
		rep.ShedSLO += acc.shedSLO
		rep.Violations += acc.violations
	}
	return rep
}

// latPctMS is the nearest-rank percentile of a sorted latency slice, in
// milliseconds.
func latPctMS(sorted []time.Duration, q float64) float64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
