package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestClockAdvanceFiresInOrder(t *testing.T) {
	c := NewClock()
	var order []string
	c.AfterFunc(2*time.Millisecond, func() { order = append(order, "b") })
	c.AfterFunc(time.Millisecond, func() { order = append(order, "a") })
	c.AfterFunc(2*time.Millisecond, func() { order = append(order, "c") }) // ties break by registration
	c.Advance(3 * time.Millisecond)
	if got := len(order); got != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("fire order %v, want [a b c]", order)
	}
	if !c.Now().Equal(Epoch.Add(3 * time.Millisecond)) {
		t.Errorf("Now = %v, want Epoch+3ms", c.Now())
	}
	// Moving backwards is a no-op.
	c.AdvanceTo(Epoch)
	if !c.Now().Equal(Epoch.Add(3 * time.Millisecond)) {
		t.Errorf("AdvanceTo the past moved time to %v", c.Now())
	}
}

func TestClockTimerChannelAndStop(t *testing.T) {
	c := NewClock()
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
		t.Fatal("timer fired before Advance")
	default:
	}
	stopped := c.NewTimer(time.Millisecond)
	if !stopped.Stop() {
		t.Fatal("Stop on a pending timer reported false")
	}
	if stopped.Stop() {
		t.Fatal("second Stop reported true")
	}
	c.Advance(time.Millisecond)
	select {
	case at := <-tm.C():
		if !at.Equal(Epoch.Add(time.Millisecond)) {
			t.Errorf("tick at %v, want Epoch+1ms", at)
		}
	default:
		t.Fatal("timer did not fire at its due time")
	}
	select {
	case <-stopped.C():
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestClockNextTimer(t *testing.T) {
	c := NewClock()
	if _, ok := c.NextTimer(); ok {
		t.Fatal("idle clock reported a pending timer")
	}
	c.NewTimer(5 * time.Millisecond)
	early := c.NewTimer(2 * time.Millisecond)
	if at, ok := c.NextTimer(); !ok || !at.Equal(Epoch.Add(2*time.Millisecond)) {
		t.Fatalf("NextTimer = %v, %t; want Epoch+2ms", at, ok)
	}
	early.Stop()
	if at, ok := c.NextTimer(); !ok || !at.Equal(Epoch.Add(5*time.Millisecond)) {
		t.Fatalf("NextTimer after Stop = %v, %t; want Epoch+5ms", at, ok)
	}
}

func TestClockContextDeadline(t *testing.T) {
	c := NewClock()
	ctx, cancel := c.ContextWithDeadline(context.Background(), Epoch.Add(time.Millisecond))
	defer cancel()
	if ctx.Err() != nil {
		t.Fatalf("context done before its deadline: %v", ctx.Err())
	}
	if dl, ok := ctx.Deadline(); !ok || !dl.Equal(Epoch.Add(time.Millisecond)) {
		t.Errorf("Deadline = %v, %t", dl, ok)
	}
	c.Advance(time.Millisecond)
	select {
	case <-ctx.Done():
	default:
		t.Fatal("context not done at its deadline")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Errorf("Err = %v, want DeadlineExceeded", ctx.Err())
	}

	// A deadline at or before now expires immediately.
	expired, cancel2 := c.ContextWithDeadline(context.Background(), Epoch)
	defer cancel2()
	if !errors.Is(expired.Err(), context.DeadlineExceeded) {
		t.Errorf("already-passed deadline Err = %v", expired.Err())
	}

	// Cancel before the deadline wins and stays won.
	ctx3, cancel3 := c.ContextWithDeadline(context.Background(), c.Now().Add(time.Hour))
	cancel3()
	if !errors.Is(ctx3.Err(), context.Canceled) {
		t.Errorf("cancelled context Err = %v", ctx3.Err())
	}
	c.Advance(2 * time.Hour)
	if !errors.Is(ctx3.Err(), context.Canceled) {
		t.Errorf("cancelled context flipped to %v at its old deadline", ctx3.Err())
	}
}

func TestClockWaitTimers(t *testing.T) {
	c := NewClock()
	if c.WaitTimers(1, 20*time.Millisecond) {
		t.Fatal("WaitTimers reported timers on an idle clock")
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		c.NewTimer(time.Second)
	}()
	if !c.WaitTimers(1, 5*time.Second) {
		t.Fatal("WaitTimers missed a timer armed from another goroutine")
	}
}
