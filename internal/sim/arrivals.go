package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Arrival is one generated arrival: the gap since the previous arrival,
// plus optional workload hints (empty means "let the mix decide") used
// by trace replay to reproduce a captured run exactly.
type Arrival struct {
	Gap      time.Duration
	Class    string
	Kind     string
	Platform int // pool index hint; -1 = unset
}

// Process generates an arrival sequence. Next returns the next arrival
// or ok = false when the source is exhausted (finite traces; the
// synthetic processes never exhaust). Implementations draw all
// randomness from the passed rng, in a fixed order, so a seeded run is
// deterministic.
type Process interface {
	Next(rng *rand.Rand) (Arrival, bool)
}

// Poisson is a homogeneous Poisson arrival process: exponential
// inter-arrival gaps at Rate arrivals per second.
type Poisson struct {
	Rate float64
}

func (p *Poisson) Next(rng *rand.Rand) (Arrival, bool) {
	gap := time.Duration(rng.ExpFloat64() / p.Rate * float64(time.Second))
	return Arrival{Gap: gap, Platform: -1}, true
}

// MMPP is a two-state Markov-modulated Poisson process — the classic
// bursty-traffic model: arrivals are Poisson at BaseRate, except during
// exponentially distributed burst episodes when they are Poisson at
// BurstRate. Sojourn times in the base and burst states are exponential
// with means MeanBase and MeanBurst.
type MMPP struct {
	BaseRate, BurstRate float64
	MeanBase, MeanBurst time.Duration

	burst   bool
	sojourn time.Duration // remaining time in the current state
}

func (m *MMPP) Next(rng *rand.Rand) (Arrival, bool) {
	gap := time.Duration(0)
	for {
		if m.sojourn <= 0 {
			// Enter (or re-enter) a state with a fresh exponential sojourn.
			mean := m.MeanBase
			if m.burst {
				mean = m.MeanBurst
			}
			m.sojourn = time.Duration(rng.ExpFloat64() * float64(mean))
		}
		rate := m.BaseRate
		if m.burst {
			rate = m.BurstRate
		}
		g := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if g <= m.sojourn {
			m.sojourn -= g
			return Arrival{Gap: gap + g, Platform: -1}, true
		}
		// The state ends before the next arrival: burn the remaining
		// sojourn and resample in the other state (memorylessness makes
		// discarding the overshoot exact).
		gap += m.sojourn
		m.sojourn = 0
		m.burst = !m.burst
	}
}

// Pareto generates heavy-tailed inter-arrival gaps: gap = Scale ·
// U^(-1/Alpha), the Pareto(Scale, Alpha) distribution. Alpha in (1, 2]
// gives finite mean but infinite variance — long silences punctuated by
// dense clusters. Mean gap = Scale · Alpha/(Alpha-1).
type Pareto struct {
	Scale time.Duration
	Alpha float64
}

func (p *Pareto) Next(rng *rand.Rand) (Arrival, bool) {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	gap := time.Duration(float64(p.Scale) * math.Pow(u, -1/p.Alpha))
	// Cap pathological draws at 10⁶× the scale so a single sample cannot
	// swallow the whole horizon.
	if max := p.Scale * 1e6; gap > max {
		gap = max
	}
	return Arrival{Gap: gap, Platform: -1}, true
}

// Diurnal is a nonhomogeneous Poisson process whose rate ramps
// sinusoidally between Low and High over Period — a compressed
// day/night cycle: rate(t) = Low + (High-Low) · (1 - cos(2πt/Period))/2.
type Diurnal struct {
	Low, High float64
	Period    time.Duration

	t time.Duration // elapsed virtual time within the process
}

func (d *Diurnal) Next(rng *rand.Rand) (Arrival, bool) {
	// Piecewise-constant approximation: sample at the instantaneous rate,
	// which is accurate while gaps are short against Period.
	phase := float64(d.t%d.Period) / float64(d.Period)
	rate := d.Low + (d.High-d.Low)*(1-math.Cos(2*math.Pi*phase))/2
	if rate < 1e-9 {
		rate = 1e-9
	}
	gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
	d.t += gap
	return Arrival{Gap: gap, Platform: -1}, true
}

// Trace replays a captured arrival trace (see TraceEvent; the JSONL
// format cmd/dlsload -capture writes).
type Trace struct {
	Events []TraceEvent

	i    int
	prev time.Duration
}

func (t *Trace) Next(_ *rand.Rand) (Arrival, bool) {
	if t.i >= len(t.Events) {
		return Arrival{}, false
	}
	ev := t.Events[t.i]
	t.i++
	at := time.Duration(ev.TNanos)
	gap := at - t.prev
	if gap < 0 {
		gap = 0
	}
	t.prev = at
	pb := ev.Platform
	if pb == 0 && ev.Kind == "" && ev.Class == "" {
		pb = -1
	}
	return Arrival{Gap: gap, Class: ev.Class, Kind: ev.Kind, Platform: pb}, true
}

// processFor builds the named arrival process with scenario parameters.
func processFor(name string, base, peak float64) (Process, error) {
	switch name {
	case "poisson":
		return &Poisson{Rate: base}, nil
	case "mmpp":
		return &MMPP{BaseRate: base, BurstRate: peak, MeanBase: 400 * time.Millisecond, MeanBurst: 60 * time.Millisecond}, nil
	case "pareto":
		// Scale so the mean rate is base: mean gap = Scale·α/(α-1).
		alpha := 1.5
		scale := time.Duration(float64(time.Second) / base * (alpha - 1) / alpha)
		return &Pareto{Scale: scale, Alpha: alpha}, nil
	case "diurnal":
		return &Diurnal{Low: base, High: peak, Period: 10 * time.Second}, nil
	default:
		return nil, fmt.Errorf("sim: unknown arrival process %q", name)
	}
}
