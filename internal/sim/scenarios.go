package sim

import (
	"fmt"
	"os"
	"sort"
	"time"
)

// Scenario is a named traffic experiment: an arrival process with tuned
// rates sized against the default cost model's service capacity, so the
// named scenarios mean the same thing across PRs (BENCH.md documents the
// CI gates pinned to them).
type Scenario struct {
	Name string
	// Describe is a one-line summary for -list output.
	Describe string
	// Build constructs the arrival process. TracePath is only used by the
	// "trace" scenario.
	Build func(tracePath string) (Process, error)
}

// Capacity anchor: the default cost model serves a 64-request window of
// mostly-chain groups in roughly 100–300µs over Drain=2 lanes, i.e. a
// few hundred thousand collapsed requests/s when windows run full, but
// only ~5–10k/s when every request solves alone. The scenarios straddle
// that band: "steady" sits comfortably inside it, "burst" alternates
// idle with episodes well above it, "overload" pins the offered rate
// above sustainable throughput for the whole horizon.
var scenarios = []Scenario{
	{
		Name:     "steady",
		Describe: "homogeneous Poisson at a comfortable 8k req/s",
		Build: func(string) (Process, error) {
			return &Poisson{Rate: 8000}, nil
		},
	},
	{
		Name:     "burst",
		Describe: "Markov-modulated: 2k req/s base, 60k req/s bursts (~60ms episodes)",
		Build: func(string) (Process, error) {
			return &MMPP{
				BaseRate:  2000,
				BurstRate: 60000,
				MeanBase:  400 * time.Millisecond,
				MeanBurst: 60 * time.Millisecond,
			}, nil
		},
	},
	{
		Name:     "diurnal",
		Describe: "sinusoidal ramp 1k→30k req/s over a compressed 10s day",
		Build: func(string) (Process, error) {
			return &Diurnal{Low: 1000, High: 30000, Period: 10 * time.Second}, nil
		},
	},
	{
		Name:     "overload",
		Describe: "sustained Poisson at 80k req/s, far beyond capacity",
		Build: func(string) (Process, error) {
			return &Poisson{Rate: 80000}, nil
		},
	},
	{
		Name:     "heavytail",
		Describe: "Pareto(α=1.5) gaps, 10k req/s mean — silences and clusters",
		Build: func(string) (Process, error) {
			return processFor("pareto", 10000, 0)
		},
	},
	{
		Name:     "trace",
		Describe: "replay a captured JSONL trace (see dlsload -capture)",
		Build: func(tracePath string) (Process, error) {
			if tracePath == "" {
				return nil, fmt.Errorf("sim: the trace scenario needs -trace <file>")
			}
			f, err := os.Open(tracePath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			events, err := ReadTrace(f)
			if err != nil {
				return nil, err
			}
			if len(events) == 0 {
				return nil, fmt.Errorf("sim: trace %s is empty", tracePath)
			}
			return &Trace{Events: events}, nil
		},
	},
}

// Scenarios lists the scenario names in stable order.
func Scenarios() []string {
	names := make([]string, len(scenarios))
	for i, sc := range scenarios {
		names[i] = sc.Name
	}
	sort.Strings(names)
	return names
}

// ScenarioByName finds a scenario.
func ScenarioByName(name string) (Scenario, error) {
	for _, sc := range scenarios {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("sim: unknown scenario %q (have %v)", name, Scenarios())
}
