package sim

import (
	"bytes"
	"encoding/json"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/dls"
)

func burstProcess() *MMPP {
	return &MMPP{BaseRate: 2000, BurstRate: 60000, MeanBase: 400 * time.Millisecond, MeanBurst: 60 * time.Millisecond}
}

// TestRunDeterminism is the property the whole simulator hangs off:
// same seed + same config ⇒ byte-identical event log and report.
func TestRunDeterminism(t *testing.T) {
	run := func(seed int64) ([]byte, []byte) {
		t.Helper()
		var log bytes.Buffer
		rep, err := Run(Config{
			Seed:        seed,
			MaxArrivals: 20000,
			Process:     burstProcess(),
			Adaptive:    &dls.AdaptiveConfig{},
			Log:         &log,
		})
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return log.Bytes(), js
	}
	log1, rep1 := run(7)
	log2, rep2 := run(7)
	if len(log1) == 0 {
		t.Fatal("empty event log")
	}
	if !bytes.Equal(log1, log2) {
		t.Fatal("event logs differ between identically seeded runs")
	}
	if !bytes.Equal(rep1, rep2) {
		t.Fatalf("reports differ between identically seeded runs:\n%s\n%s", rep1, rep2)
	}
	// A different seed is a different experiment.
	_, rep3 := run(8)
	if bytes.Equal(rep1, rep3) {
		t.Fatal("different seeds produced identical reports")
	}
}

func TestRunReportAccounting(t *testing.T) {
	rep, err := Run(Config{Seed: 1, MaxArrivals: 5000, Process: &Poisson{Rate: 8000}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "fixed" {
		t.Errorf("Mode = %q, want fixed", rep.Mode)
	}
	if rep.Arrivals != 5000 {
		t.Errorf("Arrivals = %d, want 5000", rep.Arrivals)
	}
	// Every arrival is either shed or completed — nothing leaks.
	if rep.Completed+rep.Shed != rep.Arrivals {
		t.Errorf("completed %d + shed %d != arrivals %d", rep.Completed, rep.Shed, rep.Arrivals)
	}
	if rep.Windows <= 0 || rep.AvgWindowFill <= 0 || rep.CollapseRatio < 1 {
		t.Errorf("window stats: windows=%d fill=%g collapse=%g", rep.Windows, rep.AvgWindowFill, rep.CollapseRatio)
	}
	if rep.VirtualSeconds <= 0 || rep.Events <= int64(rep.Arrivals) {
		t.Errorf("virtual_seconds=%g events=%d", rep.VirtualSeconds, rep.Events)
	}
	var arrivals, completed, shed int64
	for name, cr := range rep.Classes {
		arrivals += cr.Arrivals
		completed += cr.Completed
		shed += cr.Shed
		if cr.Completed > 0 && !(cr.P50MS <= cr.P90MS && cr.P90MS <= cr.P99MS && cr.P99MS <= cr.MaxMS) {
			t.Errorf("class %s percentiles out of order: %+v", name, cr)
		}
	}
	if arrivals != rep.Arrivals || completed != rep.Completed || shed != rep.Shed {
		t.Errorf("per-class sums %d/%d/%d != totals %d/%d/%d",
			arrivals, completed, shed, rep.Arrivals, rep.Completed, rep.Shed)
	}
	for _, name := range []string{"tight", "standard", "batch"} {
		if rep.Classes[name] == nil {
			t.Errorf("default class %q missing from report", name)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{MaxArrivals: 10}); err == nil {
		t.Error("Run without a Process was accepted")
	}
	if _, err := Run(Config{Process: &Poisson{Rate: 1}}); err == nil {
		t.Error("Run without Horizon or MaxArrivals was accepted")
	}
}

// TestAdaptiveBeatsFixedOnBurst is the design claim behind the adaptive
// admission policy, checked in-process at reduced scale (the CI
// sim-smoke job enforces it at full scale through cmd/dlssim): under
// bursty traffic the adaptive window must cut the tight class's P99
// without shedding more overall.
func TestAdaptiveBeatsFixedOnBurst(t *testing.T) {
	base := Config{Seed: 42, MaxArrivals: 100000}
	fixedCfg := base
	fixedCfg.Process = burstProcess()
	fixed, err := Run(fixedCfg)
	if err != nil {
		t.Fatal(err)
	}
	adaptCfg := base
	adaptCfg.Process = burstProcess()
	adaptCfg.Adaptive = &dls.AdaptiveConfig{}
	adapt, err := Run(adaptCfg)
	if err != nil {
		t.Fatal(err)
	}

	ft, at := fixed.Classes["tight"], adapt.Classes["tight"]
	if ft == nil || at == nil || ft.Completed == 0 || at.Completed == 0 {
		t.Fatalf("tight class missing completions: fixed=%+v adaptive=%+v", ft, at)
	}
	if at.P99MS >= ft.P99MS {
		t.Errorf("adaptive tight P99 %.3fms not below fixed %.3fms", at.P99MS, ft.P99MS)
	}
	shedRate := func(r *Report) float64 { return float64(r.Shed) / float64(r.Arrivals) }
	if shedRate(adapt) > shedRate(fixed) {
		t.Errorf("adaptive shed rate %.4f above fixed %.4f", shedRate(adapt), shedRate(fixed))
	}
}

// hashWriter folds the event log into an FNV hash so the million-arrival
// run can compare logs without holding hundreds of MB.
type hashWriter struct {
	h uint64
	n int64
}

func newHashWriter() *hashWriter { return &hashWriter{} }

func (w *hashWriter) Write(p []byte) (int, error) {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(w.h >> (8 * i))
	}
	h.Write(b[:])
	h.Write(p)
	w.h = h.Sum64()
	w.n += int64(len(p))
	return len(p), nil
}

// TestRunMillionArrivals pins the acceptance bar: ≥10⁶ virtual arrivals
// through the real Batcher in well under 60s of wall clock, with a
// deterministic event log (hash-compared across two runs).
func TestRunMillionArrivals(t *testing.T) {
	if testing.Short() {
		t.Skip("million-arrival run skipped with -short")
	}
	run := func() (*Report, *hashWriter) {
		t.Helper()
		hw := newHashWriter()
		rep, err := Run(Config{
			Seed:        1,
			MaxArrivals: 1_000_000,
			Process:     burstProcess(),
			Adaptive:    &dls.AdaptiveConfig{},
			Log:         hw,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep, hw
	}
	rep1, hw1 := run()
	if rep1.Arrivals != 1_000_000 {
		t.Fatalf("arrivals = %d, want 1e6", rep1.Arrivals)
	}
	if rep1.WallSeconds >= 60 {
		t.Fatalf("1e6 arrivals took %.1fs wall, want < 60s", rep1.WallSeconds)
	}
	rep2, hw2 := run()
	if hw1.n == 0 || hw1.n != hw2.n || hw1.h != hw2.h {
		t.Fatalf("event logs diverged: %d/%x vs %d/%x bytes/hash", hw1.n, hw1.h, hw2.n, hw2.h)
	}
	js1, _ := json.Marshal(rep1)
	js2, _ := json.Marshal(rep2)
	if !bytes.Equal(js1, js2) {
		t.Fatal("reports diverged across identically seeded 1e6-arrival runs")
	}
}

func TestScenarios(t *testing.T) {
	names := Scenarios()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Scenarios() not sorted: %v", names)
	}
	for _, want := range []string{"steady", "burst", "diurnal", "overload", "heavytail", "trace"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("scenario %q missing from %v", want, names)
		}
	}
	sc, err := ScenarioByName("burst")
	if err != nil {
		t.Fatal(err)
	}
	if p, err := sc.Build(""); err != nil {
		t.Errorf("burst Build: %v", err)
	} else if _, ok := p.(*MMPP); !ok {
		t.Errorf("burst process is %T, want *MMPP", p)
	}
	if _, err := ScenarioByName("nope"); err == nil {
		t.Error("unknown scenario accepted")
	}

	// The trace scenario needs a path, and replays what it reads.
	tsc, err := ScenarioByName("trace")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tsc.Build(""); err == nil {
		t.Error("trace scenario accepted an empty path")
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	events := []TraceEvent{
		{TNanos: 0, Class: "tight", Kind: "chain", Platform: 3},
		{TNanos: 1500, Kind: "search", Platform: 1},
		{TNanos: 4000},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := tsc.Build(path)
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := p.(*Trace)
	if !ok || len(tr.Events) != 3 {
		t.Fatalf("trace process = %T with %d events", p, len(tr.Events))
	}
}

func TestTraceRoundTripAndReplay(t *testing.T) {
	events := []TraceEvent{
		{TNanos: 0, Class: "tight", Kind: "chain", Platform: 3},
		{TNanos: 1500, Kind: "search", Platform: 1},
		{TNanos: 1500, Class: "batch"},
		{TNanos: 9000},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip: got %+v, want %+v", got, events)
	}

	// Backwards arrival times are rejected; blank lines are skipped.
	if _, err := ReadTrace(strings.NewReader("{\"t\":5}\n{\"t\":3}\n")); err == nil {
		t.Error("backwards trace accepted")
	}
	two, err := ReadTrace(strings.NewReader("{\"t\":1}\n\n{\"t\":2}\n"))
	if err != nil || len(two) != 2 {
		t.Errorf("blank-line trace: %v, %v", two, err)
	}

	// Replay yields delta gaps with hints preserved; empty events leave
	// the platform hint unset (-1).
	tr := &Trace{Events: events}
	rng := rand.New(rand.NewSource(1))
	wantGaps := []time.Duration{0, 1500, 0, 7500}
	for i, wg := range wantGaps {
		arr, ok := tr.Next(rng)
		if !ok {
			t.Fatalf("trace exhausted at %d", i)
		}
		if arr.Gap != wg {
			t.Errorf("arrival %d gap = %v, want %v", i, arr.Gap, wg)
		}
	}
	if _, ok := tr.Next(rng); ok {
		t.Error("trace did not exhaust")
	}
	tr = &Trace{Events: events}
	first, _ := tr.Next(rng)
	if first.Class != "tight" || first.Kind != "chain" || first.Platform != 3 {
		t.Errorf("hints lost: %+v", first)
	}
	tr.Next(rng)
	tr.Next(rng)
	last, _ := tr.Next(rng)
	if last.Platform != -1 {
		t.Errorf("hint-less event platform = %d, want -1", last.Platform)
	}
}

func TestArrivalProcesses(t *testing.T) {
	const n = 20000
	mean := func(p Process) time.Duration {
		rng := rand.New(rand.NewSource(3))
		var sum time.Duration
		for i := 0; i < n; i++ {
			arr, ok := p.Next(rng)
			if !ok {
				t.Fatal("synthetic process exhausted")
			}
			if arr.Gap < 0 {
				t.Fatalf("negative gap %v", arr.Gap)
			}
			sum += arr.Gap
		}
		return sum / n
	}

	// Poisson: mean gap ≈ 1/rate.
	if m := mean(&Poisson{Rate: 1000}); m < 900*time.Microsecond || m > 1100*time.Microsecond {
		t.Errorf("Poisson(1000) mean gap = %v, want ≈1ms", m)
	}
	// MMPP: mean between the burst gap and the base gap.
	mm, err := processFor("mmpp", 2000, 60000)
	if err != nil {
		t.Fatal(err)
	}
	if m := mean(mm); m <= time.Second/60000 || m >= time.Second/2000 {
		t.Errorf("MMPP mean gap = %v, want between burst and base gaps", m)
	}
	// Pareto: every gap at least Scale, heavy but finite mean.
	pp, err := processFor("pareto", 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	scale := pp.(*Pareto).Scale
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		arr, _ := pp.Next(rng)
		if arr.Gap < scale {
			t.Fatalf("Pareto gap %v below scale %v", arr.Gap, scale)
		}
	}
	// Diurnal: rate oscillates but gaps stay sane.
	dd, err := processFor("diurnal", 1000, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if m := mean(dd); m <= 0 {
		t.Errorf("Diurnal mean gap = %v", m)
	}
	if _, err := processFor("warp", 1, 1); err == nil {
		t.Error("unknown process name accepted")
	}
}

func TestCostModel(t *testing.T) {
	d := CostDist{P50: time.Millisecond, P90: 2 * time.Millisecond, P99: 5 * time.Millisecond}
	rng := rand.New(rand.NewSource(5))
	const n = 20000
	var below50, below90, below99 int
	for i := 0; i < n; i++ {
		s := d.Sample(rng)
		if s < 0 || s > 10*d.P99 {
			t.Fatalf("sample %v outside (0, 10·P99]", s)
		}
		if s <= d.P50 {
			below50++
		}
		if s <= d.P90 {
			below90++
		}
		if s <= d.P99 {
			below99++
		}
	}
	check := func(got int, want, tol float64, q string) {
		if f := float64(got) / n; f < want-tol || f > want+tol {
			t.Errorf("fraction below %s = %.3f, want %.2f±%.2f", q, f, want, tol)
		}
	}
	check(below50, 0.50, 0.02, "P50")
	check(below90, 0.90, 0.02, "P90")
	check(below99, 0.99, 0.01, "P99")

	m := DefaultCostModel()
	if c := m.WindowCost(rng, nil); c != m.PerWindow {
		t.Errorf("empty window cost = %v, want PerWindow %v", c, m.PerWindow)
	}
	if c := m.WindowCost(rng, []string{"chain"}); c <= m.PerWindow {
		t.Errorf("one-group window cost = %v, want > PerWindow", c)
	}
	// Search groups are orders of magnitude dearer than chain groups.
	var chainSum, searchSum time.Duration
	for i := 0; i < 1000; i++ {
		chainSum += m.WindowCost(rng, []string{"chain"})
		searchSum += m.WindowCost(rng, []string{"search"})
	}
	if searchSum < 10*chainSum {
		t.Errorf("search windows (%v total) not ≫ chain windows (%v total)", searchSum, chainSum)
	}
	// Unknown kinds fall back instead of exploding.
	if c := m.WindowCost(rng, []string{"mystery"}); c <= m.PerWindow {
		t.Errorf("unknown-kind window cost = %v", c)
	}
}

func TestLoadCostModel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cal.json")
	body := `{"per_window":"50us","parallelism":4,"kinds":{"chain":{"p50":"10us","p90":"20us","p99":"80us"}}}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadCostModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.PerWindow != 50*time.Microsecond || m.Parallelism != 4 {
		t.Errorf("calibration not applied: %+v", m)
	}
	if d := m.Kinds["chain"]; d.P99 != 80*time.Microsecond {
		t.Errorf("chain dist = %+v", d)
	}
	// Untouched kinds keep their defaults.
	if d := m.Kinds["search"]; d != DefaultCostModel().Kinds["search"] {
		t.Errorf("search dist overwritten: %+v", d)
	}

	if _, err := LoadCostModel(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing calibration file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"kinds":{"chain":{"p50":"5ms","p90":"1ms","p99":"9ms"}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCostModel(bad); err == nil {
		t.Error("out-of-order quantiles accepted")
	}
}
