package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestParseFailures(t *testing.T) {
	got, err := ParseFailures(" 10s:1s , 3s:500ms ")
	if err != nil {
		t.Fatal(err)
	}
	want := []Failure{
		{At: 3 * time.Second, Down: 500 * time.Millisecond},
		{At: 10 * time.Second, Down: time.Second},
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ParseFailures = %v, want sorted %v", got, want)
	}
	if got, err := ParseFailures(""); err != nil || got != nil {
		t.Errorf("empty schedule: %v, %v; want nil, nil", got, err)
	}
	for _, bad := range []string{"3s", "x:1s", "3s:y", "-1s:1s", "3s:0s"} {
		if _, err := ParseFailures(bad); err == nil {
			t.Errorf("ParseFailures(%q) accepted", bad)
		}
	}
}

// TestRunWithFailures drives a steady arrival stream through two
// injected crashes and checks the crash accounting: every arrival ends
// up exactly one of completed / shed / crash-failed / lost, and the
// blackout loses arrivals while in-flight windows die with the replica.
func TestRunWithFailures(t *testing.T) {
	var log bytes.Buffer
	rep, err := Run(Config{
		Seed:        3,
		MaxArrivals: 20000,
		Process:     &Poisson{Rate: 8000},
		Failures: []Failure{
			{At: 500 * time.Millisecond, Down: 300 * time.Millisecond},
			{At: 1500 * time.Millisecond, Down: 200 * time.Millisecond},
		},
		Log: &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes != 2 {
		t.Errorf("Crashes = %d, want 2", rep.Crashes)
	}
	if rep.CrashLost == 0 {
		t.Error("no arrivals lost despite 500ms of downtime under an 8k/s stream")
	}
	if rep.CrashFailed == 0 {
		t.Error("no in-flight requests failed despite crashes under load")
	}
	// Conservation: completed + shed + failed covers every arrival.
	var failed int64
	for _, cr := range rep.Classes {
		failed += cr.Failed
	}
	if failed != rep.CrashFailed+rep.CrashLost {
		t.Errorf("per-class failed %d != crash_failed %d + crash_lost %d",
			failed, rep.CrashFailed, rep.CrashLost)
	}
	if got := rep.Completed + rep.Shed + failed; got != rep.Arrivals {
		t.Errorf("completed %d + shed %d + failed %d = %d, want arrivals %d",
			rep.Completed, rep.Shed, failed, got, rep.Arrivals)
	}
	// Service resumed after each blackout.
	if rep.Completed == 0 {
		t.Error("nothing completed despite service resuming between crashes")
	}
	logStr := log.String()
	for _, ev := range []string{`"e":"crash"`, `"e":"crash-fail"`, `"e":"lost"`, `"e":"restore"`} {
		if !strings.Contains(logStr, ev) {
			t.Errorf("event log missing %s", ev)
		}
	}
}

// TestRunFailuresDeterministic: the crash schedule is part of the
// experiment — same seed + same failures means byte-identical logs and
// reports.
func TestRunFailuresDeterministic(t *testing.T) {
	run := func() ([]byte, []byte) {
		t.Helper()
		var log bytes.Buffer
		rep, err := Run(Config{
			Seed:        11,
			MaxArrivals: 10000,
			Process:     burstProcess(),
			Failures:    []Failure{{At: 200 * time.Millisecond, Down: 100 * time.Millisecond}},
			Log:         &log,
		})
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return log.Bytes(), js
	}
	log1, rep1 := run()
	log2, rep2 := run()
	if !bytes.Equal(log1, log2) {
		t.Fatal("event logs differ between identically seeded failure runs")
	}
	if !bytes.Equal(rep1, rep2) {
		t.Fatalf("reports differ between identically seeded failure runs:\n%s\n%s", rep1, rep2)
	}
}

// TestRunOverlappingFailureIgnored: a crash during an ongoing blackout
// is swallowed — only the first counts, and only its restore fires.
func TestRunOverlappingFailureIgnored(t *testing.T) {
	rep, err := Run(Config{
		Seed:        5,
		MaxArrivals: 5000,
		Process:     &Poisson{Rate: 8000},
		Failures: []Failure{
			{At: 100 * time.Millisecond, Down: 400 * time.Millisecond},
			{At: 200 * time.Millisecond, Down: 10 * time.Second}, // inside the first blackout
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes != 1 {
		t.Errorf("Crashes = %d, want 1 (overlapping crash ignored)", rep.Crashes)
	}
	if rep.Completed == 0 {
		t.Error("nothing completed: the ignored crash's downtime leaked into the run")
	}
}
