package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// ErrReplicaCrashed answers every request that was in flight — flushed
// into a window but not yet completed — when an injected replica
// failure fired.
var ErrReplicaCrashed = errors.New("sim: replica crashed mid-window")

// Failure is one injected replica crash: at virtual time At the
// simulated batcher/replica dies — every in-service and queued window
// fails with ErrReplicaCrashed, the filling window is flushed and fails
// too, and arrivals are lost until the replica restarts Down later.
type Failure struct {
	At   time.Duration `json:"at"`
	Down time.Duration `json:"down"`
}

// ParseFailures parses a failure schedule of the form
// "at:down[,at:down...]", e.g. "3s:500ms,10s:1s". Entries are returned
// sorted by At. A crash that fires while the replica is already down is
// ignored at run time.
func ParseFailures(s string) ([]Failure, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []Failure
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		at, down, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("sim: failure %q: want at:down (e.g. 3s:500ms)", part)
		}
		f := Failure{}
		var err error
		if f.At, err = time.ParseDuration(strings.TrimSpace(at)); err != nil {
			return nil, fmt.Errorf("sim: failure %q: bad crash time: %w", part, err)
		}
		if f.Down, err = time.ParseDuration(strings.TrimSpace(down)); err != nil {
			return nil, fmt.Errorf("sim: failure %q: bad downtime: %w", part, err)
		}
		if f.At < 0 || f.Down <= 0 {
			return nil, fmt.Errorf("sim: failure %q: crash time must be >= 0 and downtime > 0", part)
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}
