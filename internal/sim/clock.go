// Package sim is a deterministic discrete-event traffic simulator over
// the real dls admission machinery: it replays arrival processes
// (Poisson, Markov-modulated bursts, Pareto heavy tails, captured
// traces) against a dls.Batcher running in synchronous mode under a
// virtual clock, with solve latency drawn from a calibrated cost model —
// so queueing behaviour at millions-of-users scale (window dynamics,
// shedding, SLO violations, the adaptive admission policy) is explored
// in seconds of wall clock. Same seed + scenario ⇒ byte-identical event
// log and report.
package sim

import (
	"container/heap"
	"context"
	"sync"
	"time"

	"repro/dls"
)

// Epoch is where virtual time starts: an arbitrary fixed instant so
// reports and event logs are reproducible across runs and machines.
var Epoch = time.Unix(0, 0).UTC()

// Clock is a virtual dls.Clock: time only moves when Advance is called,
// and timers fire synchronously — in (time, registration) order — from
// inside Advance. It is safe for concurrent use, so it can also drive
// the goroutine-mode Batcher in tests (see WaitTimers); the simulator's
// single-threaded event loop uses it purely as a settable now.
type Clock struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	timers timerHeap
	armed  *sync.Cond // broadcast on every arm/disarm, for WaitTimers
}

// NewClock returns a virtual clock reading Epoch.
func NewClock() *Clock {
	c := &Clock{now: Epoch}
	c.armed = sync.NewCond(&c.mu)
	return c
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves virtual time forward by d, firing every timer due on the
// way in (time, registration) order. Timer functions (AfterFunc,
// deadline-context expiries) run synchronously on the caller's
// goroutine; channel timers have their tick delivered before Advance
// returns.
func (c *Clock) Advance(d time.Duration) { c.AdvanceTo(c.Now().Add(d)) }

// AdvanceTo moves virtual time forward to t (no-op if t is in the past).
func (c *Clock) AdvanceTo(t time.Time) {
	c.mu.Lock()
	for len(c.timers) > 0 && !c.timers[0].at.After(t) {
		vt := heap.Pop(&c.timers).(*vtimer)
		if vt.stopped {
			continue
		}
		vt.stopped = true
		c.now = vt.at
		c.armed.Broadcast()
		c.mu.Unlock()
		vt.fire(vt.at)
		c.mu.Lock()
	}
	if t.After(c.now) {
		c.now = t
	}
	c.mu.Unlock()
}

// NextTimer returns the due time of the earliest pending timer.
func (c *Clock) NextTimer() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.timers) > 0 {
		if c.timers[0].stopped {
			heap.Pop(&c.timers)
			continue
		}
		return c.timers[0].at, true
	}
	return time.Time{}, false
}

// WaitTimers blocks until at least n timers are pending or the (real)
// timeout elapses, reporting whether the count was reached. It is the
// synchronization hook tests need when the goroutine-mode Batcher runs
// on a virtual clock: wait for the collector to arm the window timer,
// then Advance deterministically.
func (c *Clock) WaitTimers(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	wake := time.AfterFunc(timeout, func() {
		c.mu.Lock()
		c.armed.Broadcast()
		c.mu.Unlock()
	})
	defer wake.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.pendingLocked() < n {
		if time.Now().After(deadline) {
			return false
		}
		c.armed.Wait()
	}
	return true
}

func (c *Clock) pendingLocked() int {
	n := 0
	for _, vt := range c.timers {
		if !vt.stopped {
			n++
		}
	}
	return n
}

// arm registers a timer at the given virtual time. Timers due now or in
// the past still wait for the next Advance — virtual time never moves on
// its own.
func (c *Clock) arm(at time.Time, ch chan time.Time, fn func()) *vtimer {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	vt := &vtimer{at: at, seq: c.seq, ch: ch, fn: fn}
	heap.Push(&c.timers, vt)
	c.armed.Broadcast()
	return vt
}

// NewTimer implements dls.Clock.
func (c *Clock) NewTimer(d time.Duration) dls.Timer {
	ch := make(chan time.Time, 1)
	vt := c.arm(c.Now().Add(d), ch, nil)
	return &virtualTimer{c: c, vt: vt}
}

// AfterFunc implements dls.Clock; fn runs synchronously from Advance.
func (c *Clock) AfterFunc(d time.Duration, fn func()) dls.Timer {
	vt := c.arm(c.Now().Add(d), nil, fn)
	return &virtualTimer{c: c, vt: vt}
}

// ContextWithDeadline implements dls.Clock: the context is done with
// context.DeadlineExceeded when virtual time reaches the deadline.
func (c *Clock) ContextWithDeadline(parent context.Context, deadline time.Time) (context.Context, context.CancelFunc) {
	ctx, expire, cancel := dls.NewDeadlineContext(parent, deadline)
	if !deadline.After(c.Now()) {
		expire()
		return ctx, cancel
	}
	vt := c.arm(deadline, nil, expire)
	return ctx, func() {
		c.stop(vt)
		cancel()
	}
}

func (c *Clock) stop(vt *vtimer) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	was := !vt.stopped
	vt.stopped = true
	if was {
		c.armed.Broadcast()
	}
	return was
}

// vtimer is one pending virtual timer.
type vtimer struct {
	at      time.Time
	seq     uint64
	index   int
	stopped bool
	ch      chan time.Time
	fn      func()
}

func (vt *vtimer) fire(at time.Time) {
	if vt.fn != nil {
		vt.fn()
		return
	}
	select {
	case vt.ch <- at:
	default:
	}
}

// virtualTimer adapts a vtimer to dls.Timer.
type virtualTimer struct {
	c  *Clock
	vt *vtimer
}

func (t *virtualTimer) C() <-chan time.Time { return t.vt.ch }
func (t *virtualTimer) Stop() bool          { return t.c.stop(t.vt) }

// timerHeap orders pending timers by (time, registration sequence), so
// simultaneous timers fire in the order they were armed — the property
// the determinism tests pin.
type timerHeap []*vtimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *timerHeap) Push(x any) {
	vt := x.(*vtimer)
	vt.index = len(*h)
	*h = append(*h, vt)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	vt := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return vt
}
