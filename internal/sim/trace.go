package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TraceEvent is one arrival of a captured (or synthesized) trace, in the
// JSONL trace format shared between cmd/dlsload (-capture writes it from
// a real load run) and the simulator (the "trace" arrival process
// replays it): one JSON object per line, ordered by TNanos.
type TraceEvent struct {
	// TNanos is the arrival offset from the start of the capture, in
	// nanoseconds.
	TNanos int64 `json:"t"`
	// Class is the SLO class the request was sent under ("" = none).
	Class string `json:"class,omitempty"`
	// Kind is the workload kind ("chain", "search", or a strategy name).
	Kind string `json:"kind,omitempty"`
	// Platform identifies the platform within the generating pool, so
	// replay reproduces the duplicate structure of the capture.
	Platform int `json:"pb,omitempty"`
}

// WriteTrace writes events as JSONL.
func WriteTrace(w io.Writer, events []TraceEvent) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL trace, validating that arrival offsets are
// non-decreasing.
func ReadTrace(r io.Reader) ([]TraceEvent, error) {
	var out []TraceEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev TraceEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("sim: trace line %d: %w", line, err)
		}
		if n := len(out); n > 0 && ev.TNanos < out[n-1].TNanos {
			return nil, fmt.Errorf("sim: trace line %d: arrival time went backwards (%d < %d)", line, ev.TNanos, out[n-1].TNanos)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
