package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/platform"
	"repro/internal/schedule"
)

func TestTwoPortFIFOSortedOptimal(t *testing.T) {
	// The companion-paper ordering (non-decreasing c) must match the
	// exhaustive best over all two-port FIFO orders.
	rng := rand.New(rand.NewSource(300))
	for trial := 0; trial < 10; trial++ {
		p := randomStar(rng, 5, 0.15+0.8*rng.Float64())
		opt, err := OptimalFIFOTwoPort(p, Float64)
		if err != nil {
			t.Fatal(err)
		}
		best, order, err := BestFIFOExhaustive(p, schedule.TwoPort, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(opt.Throughput(), best.Throughput()) {
			t.Errorf("trial %d: sorted two-port FIFO %g != exhaustive best %g (order %v)",
				trial, opt.Throughput(), best.Throughput(), order)
		}
	}
}

func TestTwoPortLIFOEqualsOnePortLIFO(t *testing.T) {
	// Every LIFO schedule obeys the one-port model, so the optima agree.
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 10; trial++ {
		p := randomStar(rng, 5, 0.2+0.7*rng.Float64())
		one, err := OptimalLIFO(p, Float64)
		if err != nil {
			t.Fatal(err)
		}
		two, err := OptimalLIFOTwoPort(p, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(one.Throughput(), two.Throughput()) {
			t.Errorf("trial %d: one-port LIFO %g != two-port LIFO %g",
				trial, one.Throughput(), two.Throughput())
		}
	}
}

func TestOnePortPenaltyAtLeastOne(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	for trial := 0; trial < 10; trial++ {
		p := randomStar(rng, 6, 0.5)
		ratio, err := OnePortPenalty(p, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio < 1-tol {
			t.Errorf("trial %d: penalty %g < 1 — two-port worse than one-port", trial, ratio)
		}
		// The two-port advantage is bounded by 2: it can at most overlap
		// the entire send and return phases.
		if ratio > 2+tol {
			t.Errorf("trial %d: penalty %g > 2 — exceeds the overlap bound", trial, ratio)
		}
	}
}

func TestOnePortPenaltyCommBoundRegime(t *testing.T) {
	// With negligible compute on a z = 1 bus, the two-port FIFO throughput
	// is ρ̃ = (p/(p+1))/d while one-port is pinned at 1/(2d): the penalty is
	// 2p/(p+1) and approaches 2 as workers are added. With p = 20 it is
	// 40/21 ≈ 1.905.
	ws := make([]float64, 20)
	for i := range ws {
		ws[i] = 1e-9
	}
	p := platform.NewBus(0.3, 0.3, ws...)
	ratio, err := OnePortPenalty(p, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1.85 || ratio > 2+tol {
		t.Errorf("comm-bound z=1 penalty = %g, want ≈ 40/21", ratio)
	}
}

func TestOnePortPenaltyErrors(t *testing.T) {
	if _, err := OnePortPenalty(platform.New(), Float64); err == nil {
		t.Error("invalid platform must be rejected")
	}
	if _, err := OptimalFIFOTwoPort(platform.New(), Float64); err == nil {
		t.Error("invalid platform must be rejected")
	}
	if _, err := OptimalLIFOTwoPort(platform.New(), Float64); err == nil {
		t.Error("invalid platform must be rejected")
	}
}

// TestQuickTwoPortSandwich: one-port FIFO ≤ two-port FIFO ≤ the two-port
// bus bound when the platform is a bus.
func TestQuickTwoPortSandwich(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomBus(rng, 1+rng.Intn(5), true)
		one, err := OptimalFIFO(p, Float64)
		if err != nil {
			return false
		}
		two, err := OptimalFIFOTwoPort(p, Float64)
		if err != nil {
			return false
		}
		rho2, err := BusTwoPortFIFOThroughput(p)
		if err != nil {
			return false
		}
		return one.Throughput() <= two.Throughput()+tol &&
			approxEq(two.Throughput(), rho2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
