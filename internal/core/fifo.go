package core

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// OptimalFIFO computes an optimal one-port FIFO schedule on a star platform
// with a common ratio z = d_i/c_i, implementing Theorem 1 and Proposition 1:
//
//   - z < 1: enroll all workers sorted by non-decreasing c_i, solve the FIFO
//     scenario; zero loads give the resource selection.
//   - z > 1: solve the mirrored platform (c ↔ d, whose ratio is 1/z < 1) and
//     flip the resulting schedule in time; initial messages then go out in
//     non-increasing c_i order, as stated in Section 3.
//   - z = 1: any ordering is optimal; non-decreasing c_i is used for
//     determinism.
//
// The returned schedule has horizon T = 1 and throughput equal to the
// optimal FIFO throughput ρ*. It returns ErrNoCommonZ when the platform has
// no common z.
func OptimalFIFO(p *platform.Platform, arith Arith) (*schedule.Schedule, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, err
	}
	return OptimalFIFOEval(p, mode)
}

// OptimalFIFOEval is OptimalFIFO with an explicit evaluation backend.
func OptimalFIFOEval(p *platform.Platform, mode eval.Mode) (*schedule.Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	z, ok := p.Z()
	if !ok {
		return nil, ErrNoCommonZ
	}
	if z <= 1 {
		order := p.ByC()
		return SolveScenarioEval(p, order, order, schedule.OnePort, mode)
	}
	// z > 1: time-reversal reduction. The mirror has ratio 1/z < 1; its
	// non-decreasing-c order is the original's non-decreasing-d order.
	mirror := p.Mirror()
	order := mirror.ByC()
	ms, err := SolveScenarioEval(mirror, order, order, schedule.OnePort, mode)
	if err != nil {
		return nil, err
	}
	s := ms.Flipped()
	if err := s.Check(p, schedule.OnePort); err != nil {
		return nil, fmt.Errorf("core: internal error: flipped z>1 schedule fails verification: %w", err)
	}
	return s, nil
}

// FIFOWithOrder computes the optimal loads for the FIFO schedule that
// enrolls the given workers in the given send (and, FIFO, return) order.
// Unlike OptimalFIFO it does not require a common z and does not reorder.
func FIFOWithOrder(p *platform.Platform, order platform.Order, model schedule.Model, arith Arith) (*schedule.Schedule, error) {
	return SolveScenario(p, order, order, model, arith)
}

// OptimalLIFO computes the optimal one-port LIFO schedule. Per the
// companion results quoted in Section 5 (the optimal two-port LIFO schedule
// of [7, 8] involves all processors sorted by non-decreasing c_i and is
// automatically a one-port schedule, every LIFO schedule being one-port
// feasible), it enrolls all workers by non-decreasing c_i and lets the
// evaluator fix the loads; zero-load workers are pruned.
func OptimalLIFO(p *platform.Platform, arith Arith) (*schedule.Schedule, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, err
	}
	return OptimalLIFOEval(p, mode)
}

// OptimalLIFOEval is OptimalLIFO with an explicit evaluation backend.
func OptimalLIFOEval(p *platform.Platform, mode eval.Mode) (*schedule.Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	order := p.ByC()
	return SolveScenarioEval(p, order, order.Reverse(), schedule.OnePort, mode)
}

// LIFOWithOrder computes the optimal loads for the LIFO schedule whose send
// order is the given order (results return in reverse order).
func LIFOWithOrder(p *platform.Platform, order platform.Order, model schedule.Model, arith Arith) (*schedule.Schedule, error) {
	return SolveScenario(p, order, order.Reverse(), model, arith)
}

// The Section 5 heuristics. Each enrolls all workers in a fixed order and
// lets the scenario evaluator compute loads (and deselect workers).

// IncC is the INC_C heuristic: a FIFO schedule ordered by non-decreasing
// c_i (fastest-communicating workers first). By Theorem 1 this is optimal
// among one-port FIFO schedules whenever z ≤ 1.
func IncC(p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, error) {
	order := p.ByC()
	return SolveScenario(p, order, order, model, arith)
}

// IncW is the INC_W heuristic: a FIFO schedule ordered by non-decreasing
// w_i (fastest-computing workers first). The paper uses it as the
// strawman showing that ordering by computation speed is suboptimal.
func IncW(p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, error) {
	order := p.ByW()
	return SolveScenario(p, order, order, model, arith)
}

// DecC is a FIFO schedule ordered by non-increasing c_i: the optimal FIFO
// send order when z > 1 (Section 3's mirror argument).
func DecC(p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, error) {
	order := p.ByCDesc()
	return SolveScenario(p, order, order, model, arith)
}

// MakespanForLoad converts a throughput-form schedule (T = 1, ρ = Σα) into
// the time needed to process `load` units: by linearity, load/ρ.
func MakespanForLoad(s *schedule.Schedule, load float64) float64 {
	return load / s.Throughput()
}
