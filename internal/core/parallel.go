package core

import (
	"context"
	"runtime"
	"sync"
)

// This file is the work-stealing search pool behind the exhaustive order
// searches: the permutation space is addressed by SJT rank (see sjt.go),
// split into contiguous per-worker blocks, and — for the pair search,
// whose per-rank subtrees are wildly uneven — rebalanced by steal-half.
// Every worker shares one incumbent (atomic float64-bits CAS) and keeps a
// local (throughput, lex-min orders) best; the drivers merge the locals
// under the same rule, which together with the strictly-worse prune rule
// makes the result byte-identical to the serial search for every worker
// count and interleaving (see searchCore).

// searchParallelismKey carries the worker count of the order-space
// searches through a context.
type searchParallelismKey struct{}

// ContextWithSearchParallelism returns a context that tells the exhaustive
// order-space searches how many workers to use: n ≤ 0 means one worker per
// CPU (GOMAXPROCS), n == 1 the serial path. Searches under a context
// without the value run serially. The search result is byte-identical for
// every setting; only wall-clock time changes.
func ContextWithSearchParallelism(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, searchParallelismKey{}, n)
}

// searchParallelism resolves the worker count for a search context.
func searchParallelism(ctx context.Context) int {
	n, ok := ctx.Value(searchParallelismKey{}).(int)
	if !ok {
		return 1
	}
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// collectSearchErr reduces per-worker errors: the worker that actually hit
// a failure (a done context, an evaluation error) reports it, workers that
// merely observed the stop flag report errSearchStopped. Preferring the
// real error keeps ctx.Err() semantics identical to the serial search.
func collectSearchErr(ctx context.Context, errs []error) error {
	stopped := false
	for _, err := range errs {
		if err == nil {
			continue
		}
		if err != errSearchStopped {
			return err
		}
		stopped = true
	}
	if stopped {
		if err := ctx.Err(); err != nil {
			return err
		}
		return errSearchStopped
	}
	return nil
}

// runRangePool partitions [0, total) ranks into one contiguous block per
// worker and runs fn on each block — the static split of the FIFO/LIFO
// sweeps, whose per-rank cost is uniform enough that stealing would only
// break the incremental sweep state. Worker bests merge into winner.
func runRangePool(ctx context.Context, winner *searchCore, total int64, fn func(core *searchCore, lo, hi int64) error) error {
	workers := searchParallelism(ctx)
	if int64(workers) > total {
		workers = int(total)
	}
	if workers <= 1 {
		core := newSearchWorker(ctx, winner.inc)
		if err := fn(core, 0, total); err != nil {
			return err
		}
		mergeWorkers(winner, []*searchCore{core})
		return nil
	}
	cores := make([]*searchCore, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		core := newSearchWorker(ctx, winner.inc)
		cores[w] = core
		lo := total * int64(w) / int64(workers)
		hi := total * int64(w+1) / int64(workers)
		wg.Add(1)
		go func(w int, lo, hi int64) {
			defer wg.Done()
			if err := fn(core, lo, hi); err != nil {
				winner.inc.stop.Store(true)
				errs[w] = err
			}
		}(w, lo, hi)
	}
	wg.Wait()
	if err := collectSearchErr(ctx, errs); err != nil {
		return err
	}
	mergeWorkers(winner, cores)
	return nil
}

// rankDeque is one worker's share of the rank space: a contiguous interval
// the owner pops from the front and thieves halve from the back. A mutex
// is plenty — the owner locks once per send order (whose subtree costs
// orders of magnitude more than the lock) and thieves only show up when
// their own interval ran dry.
type rankDeque struct {
	mu     sync.Mutex
	lo, hi int64
}

// pop takes the next rank from the front of the owner's interval.
func (d *rankDeque) pop() (int64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.lo >= d.hi {
		return 0, false
	}
	r := d.lo
	d.lo++
	return r, true
}

// stealHalf removes and returns the upper half of the interval (victims
// keep the lower half, preserving their front-pop locality). Intervals of
// fewer than two ranks are not worth fighting the owner over.
func (d *rankDeque) stealHalf() (lo, hi int64, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n := d.hi - d.lo; n >= 2 {
		mid := d.hi - n/2
		lo, hi, ok = mid, d.hi, true
		d.hi = mid
	}
	return
}

// install refills the owner's (drained) interval with a stolen one.
func (d *rankDeque) install(lo, hi int64) {
	d.mu.Lock()
	d.lo, d.hi = lo, hi
	d.mu.Unlock()
}

// runStealingPool deals [0, total) ranks to per-worker deques and runs fn
// per worker with a next() source that drains the worker's own deque and
// then steals half of a victim's remainder, scanning victims round-robin
// from its right neighbour. Ranks never re-enter a deque once handed out,
// so a worker that finds every deque empty is done. Worker bests merge
// into winner.
func runStealingPool(ctx context.Context, winner *searchCore, total int64, fn func(core *searchCore, next func() (int64, bool)) error) error {
	workers := searchParallelism(ctx)
	if int64(workers) > total {
		workers = int(total)
	}
	if workers < 1 {
		workers = 1
	}
	deques := make([]rankDeque, workers)
	for w := range deques {
		deques[w].lo = total * int64(w) / int64(workers)
		deques[w].hi = total * int64(w+1) / int64(workers)
	}
	next := func(id int) func() (int64, bool) {
		return func() (int64, bool) {
			if r, ok := deques[id].pop(); ok {
				return r, true
			}
			for k := 1; k < workers; k++ {
				victim := (id + k) % workers
				if lo, hi, ok := deques[victim].stealHalf(); ok {
					if lo+1 < hi {
						deques[id].install(lo+1, hi)
					}
					return lo, true
				}
			}
			return 0, false
		}
	}
	if workers == 1 {
		core := newSearchWorker(ctx, winner.inc)
		if err := fn(core, next(0)); err != nil {
			return err
		}
		mergeWorkers(winner, []*searchCore{core})
		return nil
	}
	cores := make([]*searchCore, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		core := newSearchWorker(ctx, winner.inc)
		cores[w] = core
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := fn(core, next(w)); err != nil {
				winner.inc.stop.Store(true)
				errs[w] = err
			}
		}(w)
	}
	wg.Wait()
	if err := collectSearchErr(ctx, errs); err != nil {
		return err
	}
	mergeWorkers(winner, cores)
	return nil
}
