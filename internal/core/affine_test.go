package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/platform"
	"repro/internal/schedule"
)

func TestAffineZeroReducesToLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for trial := 0; trial < 10; trial++ {
		p := randomStar(rng, 4, 0.5)
		order := p.ByC()
		linear, err := SolveScenario(p, order, order, schedule.OnePort, Float64)
		if err != nil {
			t.Fatal(err)
		}
		affine, err := SolveScenarioAffine(p, ZeroAffine(4), order, order, schedule.OnePort, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if !affine.Feasible {
			t.Fatal("zero affine must be feasible")
		}
		if !approxEq(linear.Throughput(), affine.Throughput) {
			t.Errorf("trial %d: linear %g != zero-affine %g", trial, linear.Throughput(), affine.Throughput)
		}
	}
}

func TestAffineLatencyReducesThroughput(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	p := randomStar(rng, 4, 0.5)
	order := p.ByC()
	prev := math.Inf(1)
	// Keep Σ(In+Out) below the horizon: 4 workers × 1.5·lat ≤ 0.9.
	for _, lat := range []float64{0, 0.01, 0.05, 0.1, 0.15} {
		aff := ZeroAffine(4)
		for i := range aff.In {
			aff.In[i], aff.Out[i] = lat, lat/2
		}
		res, err := SolveScenarioAffine(p, aff, order, order, schedule.OnePort, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Fatalf("latency %g should still be feasible", lat)
		}
		if res.Throughput > prev+tol {
			t.Errorf("latency %g: throughput %g increased over %g", lat, res.Throughput, prev)
		}
		prev = res.Throughput
	}
}

func TestAffineInfeasibleWhenConstantsExceedHorizon(t *testing.T) {
	p := platform.New(
		platform.Worker{C: 0.1, W: 0.1, D: 0.05},
		platform.Worker{C: 0.1, W: 0.1, D: 0.05},
	)
	aff := ZeroAffine(2)
	aff.In[0], aff.In[1] = 0.6, 0.6 // 1.2 of fixed port time > 1
	order := platform.Identity(2)
	res, err := SolveScenarioAffine(p, aff, order, order, schedule.OnePort, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Errorf("scenario with 1.2 time units of fixed cost must be infeasible, got ρ=%g", res.Throughput)
	}
}

func TestAffineResourceSelectionShrinksWithLatency(t *testing.T) {
	// With per-message latency, enrolling everyone becomes wasteful: the
	// best achievable throughput decreases, and at extreme latency the
	// optimal subset is strictly smaller than the platform.
	rng := rand.New(rand.NewSource(202))
	p := randomStar(rng, 6, 0.5)
	solve := func(lat float64) (float64, int) {
		aff := ZeroAffine(6)
		for i := range aff.In {
			aff.In[i], aff.Out[i] = lat, lat/2
		}
		best, err := BestFIFOAffine(p, aff, Float64)
		if err != nil {
			t.Fatal(err)
		}
		return best.Throughput, len(best.Send)
	}
	rho0, n0 := solve(0)
	rhoMid, _ := solve(0.12)
	rhoHi, nHi := solve(0.3)
	if !(rho0+tol >= rhoMid && rhoMid+tol >= rhoHi) {
		t.Errorf("best throughput not monotone in latency: %g, %g, %g", rho0, rhoMid, rhoHi)
	}
	if nHi > n0 {
		t.Errorf("enrolled set grew with latency: %d → %d", n0, nHi)
	}
	if nHi >= 6 {
		t.Errorf("extreme latency still enrolls all %d workers", nHi)
	}
}

func TestAffineBestSubsetBeatsFullEnrollment(t *testing.T) {
	// Construct a platform where enrolling the second worker costs more in
	// fixed port time than the work it contributes.
	p := platform.New(
		platform.Worker{C: 0.05, W: 0.1, D: 0.025},
		platform.Worker{C: 0.3, W: 2.5, D: 0.15},
	)
	aff := ZeroAffine(2)
	aff.In[1], aff.Out[1] = 0.3, 0.3
	best, err := BestFIFOAffine(p, aff, Float64)
	if err != nil {
		t.Fatal(err)
	}
	full, err := SolveScenarioAffine(p, aff, p.ByC(), p.ByC(), schedule.OnePort, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if full.Feasible && full.Throughput > best.Throughput+tol {
		t.Errorf("subset search %g worse than full enrollment %g", best.Throughput, full.Throughput)
	}
	if len(best.Send) != 1 || best.Send[0] != 0 {
		t.Errorf("expected only worker 0 enrolled, got %v", best.Send)
	}
}

func TestAffineValidation(t *testing.T) {
	p := platform.New(platform.Worker{C: 1, W: 1, D: 0.5})
	short := Affine{In: []float64{0}, Out: []float64{0}, Comp: nil}
	if _, err := ScenarioLPAffine(p, short, platform.Identity(1), platform.Identity(1), schedule.OnePort); err == nil {
		t.Error("mismatched affine dimensions must be rejected")
	}
	neg := ZeroAffine(1)
	neg.In[0] = -1
	if _, err := ScenarioLPAffine(p, neg, platform.Identity(1), platform.Identity(1), schedule.OnePort); err == nil {
		t.Error("negative latency must be rejected")
	}
	nan := ZeroAffine(1)
	nan.Comp[0] = math.NaN()
	if _, err := SolveScenarioAffine(p, nan, platform.Identity(1), platform.Identity(1), schedule.OnePort, Float64); err == nil {
		t.Error("NaN overhead must be rejected")
	}
	if _, err := SolveScenarioAffine(p, ZeroAffine(1), platform.Identity(1), platform.Identity(1), schedule.OnePort, Arith(9)); err == nil {
		t.Error("unknown arithmetic must be rejected")
	}
	big := randomStar(rand.New(rand.NewSource(203)), maxAffineSubsets+1, 0.5)
	if _, err := BestFIFOAffine(big, ZeroAffine(maxAffineSubsets+1), Float64); err == nil {
		t.Error("oversized affine search must be rejected")
	}
	if _, err := BestFIFOAffine(platform.New(), Affine{}, Float64); err == nil {
		t.Error("invalid platform must be rejected")
	}
	mismatch := ZeroAffine(2)
	if _, err := BestFIFOAffine(p, mismatch, Float64); err == nil {
		t.Error("dimension mismatch must be rejected in BestFIFOAffine")
	}
}

func TestAffineTwoPortModel(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	p := randomStar(rng, 3, 0.5)
	aff := ZeroAffine(3)
	for i := range aff.In {
		aff.In[i] = 0.02
	}
	order := p.ByC()
	one, err := SolveScenarioAffine(p, aff, order, order, schedule.OnePort, Float64)
	if err != nil {
		t.Fatal(err)
	}
	two, err := SolveScenarioAffine(p, aff, order, order, schedule.TwoPort, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if one.Throughput > two.Throughput+tol {
		t.Errorf("one-port %g beats two-port %g under affine costs", one.Throughput, two.Throughput)
	}
	if _, err := SolveScenarioAffine(p, aff, order, order, schedule.Model(7), Float64); err == nil {
		t.Error("unknown model must be rejected")
	}
}

// TestQuickAffineMonotoneInLatency: adding latency never increases the
// scenario throughput (for a fixed enrolled set and order).
func TestQuickAffineMonotoneInLatency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		p := randomStar(rng, n, 0.2+0.7*rng.Float64())
		order := p.ByC()
		lo := ZeroAffine(n)
		hi := ZeroAffine(n)
		for i := 0; i < n; i++ {
			lo.In[i] = rng.Float64() * 0.05
			lo.Out[i] = rng.Float64() * 0.05
			lo.Comp[i] = rng.Float64() * 0.05
			hi.In[i] = lo.In[i] + rng.Float64()*0.05
			hi.Out[i] = lo.Out[i] + rng.Float64()*0.05
			hi.Comp[i] = lo.Comp[i] + rng.Float64()*0.05
		}
		a, err := SolveScenarioAffine(p, lo, order, order, schedule.OnePort, Float64)
		if err != nil {
			return false
		}
		b, err := SolveScenarioAffine(p, hi, order, order, schedule.OnePort, Float64)
		if err != nil {
			return false
		}
		if !a.Feasible {
			return true // hi can only be more infeasible
		}
		if !b.Feasible {
			return true
		}
		return b.Throughput <= a.Throughput+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBestFIFOAffine8(b *testing.B) {
	rng := rand.New(rand.NewSource(205))
	p := randomStar(rng, 8, 0.5)
	aff := ZeroAffine(8)
	for i := range aff.In {
		aff.In[i] = 0.01
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BestFIFOAffine(p, aff, Float64); err != nil {
			b.Fatal(err)
		}
	}
}
