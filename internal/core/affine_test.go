package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/platform"
	"repro/internal/schedule"
)

func TestAffineZeroReducesToLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for trial := 0; trial < 10; trial++ {
		p := randomStar(rng, 4, 0.5)
		order := p.ByC()
		linear, err := SolveScenario(p, order, order, schedule.OnePort, Float64)
		if err != nil {
			t.Fatal(err)
		}
		affine, err := SolveScenarioAffine(p, ZeroAffine(4), order, order, schedule.OnePort, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if !affine.Feasible {
			t.Fatal("zero affine must be feasible")
		}
		if !approxEq(linear.Throughput(), affine.Throughput) {
			t.Errorf("trial %d: linear %g != zero-affine %g", trial, linear.Throughput(), affine.Throughput)
		}
	}
}

func TestAffineLatencyReducesThroughput(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	p := randomStar(rng, 4, 0.5)
	order := p.ByC()
	prev := math.Inf(1)
	// Keep Σ(In+Out) below the horizon: 4 workers × 1.5·lat ≤ 0.9.
	for _, lat := range []float64{0, 0.01, 0.05, 0.1, 0.15} {
		aff := ZeroAffine(4)
		for i := range aff.In {
			aff.In[i], aff.Out[i] = lat, lat/2
		}
		res, err := SolveScenarioAffine(p, aff, order, order, schedule.OnePort, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Fatalf("latency %g should still be feasible", lat)
		}
		if res.Throughput > prev+tol {
			t.Errorf("latency %g: throughput %g increased over %g", lat, res.Throughput, prev)
		}
		prev = res.Throughput
	}
}

func TestAffineInfeasibleWhenConstantsExceedHorizon(t *testing.T) {
	p := platform.New(
		platform.Worker{C: 0.1, W: 0.1, D: 0.05},
		platform.Worker{C: 0.1, W: 0.1, D: 0.05},
	)
	aff := ZeroAffine(2)
	aff.In[0], aff.In[1] = 0.6, 0.6 // 1.2 of fixed port time > 1
	order := platform.Identity(2)
	res, err := SolveScenarioAffine(p, aff, order, order, schedule.OnePort, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Errorf("scenario with 1.2 time units of fixed cost must be infeasible, got ρ=%g", res.Throughput)
	}
}

func TestAffineResourceSelectionShrinksWithLatency(t *testing.T) {
	// With per-message latency, enrolling everyone becomes wasteful: the
	// best achievable throughput decreases, and at extreme latency the
	// optimal subset is strictly smaller than the platform.
	rng := rand.New(rand.NewSource(202))
	p := randomStar(rng, 6, 0.5)
	solve := func(lat float64) (float64, int) {
		aff := ZeroAffine(6)
		for i := range aff.In {
			aff.In[i], aff.Out[i] = lat, lat/2
		}
		best, err := BestFIFOAffine(p, aff, Float64)
		if err != nil {
			t.Fatal(err)
		}
		return best.Throughput, len(best.Send)
	}
	rho0, n0 := solve(0)
	rhoMid, _ := solve(0.12)
	rhoHi, nHi := solve(0.3)
	if !(rho0+tol >= rhoMid && rhoMid+tol >= rhoHi) {
		t.Errorf("best throughput not monotone in latency: %g, %g, %g", rho0, rhoMid, rhoHi)
	}
	if nHi > n0 {
		t.Errorf("enrolled set grew with latency: %d → %d", n0, nHi)
	}
	if nHi >= 6 {
		t.Errorf("extreme latency still enrolls all %d workers", nHi)
	}
}

func TestAffineBestSubsetBeatsFullEnrollment(t *testing.T) {
	// Construct a platform where enrolling the second worker costs more in
	// fixed port time than the work it contributes.
	p := platform.New(
		platform.Worker{C: 0.05, W: 0.1, D: 0.025},
		platform.Worker{C: 0.3, W: 2.5, D: 0.15},
	)
	aff := ZeroAffine(2)
	aff.In[1], aff.Out[1] = 0.3, 0.3
	best, err := BestFIFOAffine(p, aff, Float64)
	if err != nil {
		t.Fatal(err)
	}
	full, err := SolveScenarioAffine(p, aff, p.ByC(), p.ByC(), schedule.OnePort, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if full.Feasible && full.Throughput > best.Throughput+tol {
		t.Errorf("subset search %g worse than full enrollment %g", best.Throughput, full.Throughput)
	}
	if len(best.Send) != 1 || best.Send[0] != 0 {
		t.Errorf("expected only worker 0 enrolled, got %v", best.Send)
	}
}

func TestAffineValidation(t *testing.T) {
	p := platform.New(platform.Worker{C: 1, W: 1, D: 0.5})
	short := Affine{In: []float64{0}, Out: []float64{0}, Comp: nil}
	if _, err := ScenarioLPAffine(p, short, platform.Identity(1), platform.Identity(1), schedule.OnePort); err == nil {
		t.Error("mismatched affine dimensions must be rejected")
	}
	neg := ZeroAffine(1)
	neg.In[0] = -1
	if _, err := ScenarioLPAffine(p, neg, platform.Identity(1), platform.Identity(1), schedule.OnePort); err == nil {
		t.Error("negative latency must be rejected")
	}
	nan := ZeroAffine(1)
	nan.Comp[0] = math.NaN()
	if _, err := SolveScenarioAffine(p, nan, platform.Identity(1), platform.Identity(1), schedule.OnePort, Float64); err == nil {
		t.Error("NaN overhead must be rejected")
	}
	if _, err := SolveScenarioAffine(p, ZeroAffine(1), platform.Identity(1), platform.Identity(1), schedule.OnePort, Arith(9)); err == nil {
		t.Error("unknown arithmetic must be rejected")
	}
	big := randomStar(rand.New(rand.NewSource(203)), maxAffineSubsets+1, 0.5)
	if _, err := BestFIFOAffine(big, ZeroAffine(maxAffineSubsets+1), Float64); err == nil {
		t.Error("oversized affine search must be rejected")
	}
	if _, err := BestFIFOAffine(platform.New(), Affine{}, Float64); err == nil {
		t.Error("invalid platform must be rejected")
	}
	mismatch := ZeroAffine(2)
	if _, err := BestFIFOAffine(p, mismatch, Float64); err == nil {
		t.Error("dimension mismatch must be rejected in BestFIFOAffine")
	}
}

func TestAffineTwoPortModel(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	p := randomStar(rng, 3, 0.5)
	aff := ZeroAffine(3)
	for i := range aff.In {
		aff.In[i] = 0.02
	}
	order := p.ByC()
	one, err := SolveScenarioAffine(p, aff, order, order, schedule.OnePort, Float64)
	if err != nil {
		t.Fatal(err)
	}
	two, err := SolveScenarioAffine(p, aff, order, order, schedule.TwoPort, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if one.Throughput > two.Throughput+tol {
		t.Errorf("one-port %g beats two-port %g under affine costs", one.Throughput, two.Throughput)
	}
	if _, err := SolveScenarioAffine(p, aff, order, order, schedule.Model(7), Float64); err == nil {
		t.Error("unknown model must be rejected")
	}
}

// TestQuickAffineMonotoneInLatency: adding latency never increases the
// scenario throughput (for a fixed enrolled set and order).
func TestQuickAffineMonotoneInLatency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		p := randomStar(rng, n, 0.2+0.7*rng.Float64())
		order := p.ByC()
		lo := ZeroAffine(n)
		hi := ZeroAffine(n)
		for i := 0; i < n; i++ {
			lo.In[i] = rng.Float64() * 0.05
			lo.Out[i] = rng.Float64() * 0.05
			lo.Comp[i] = rng.Float64() * 0.05
			hi.In[i] = lo.In[i] + rng.Float64()*0.05
			hi.Out[i] = lo.Out[i] + rng.Float64()*0.05
			hi.Comp[i] = lo.Comp[i] + rng.Float64()*0.05
		}
		a, err := SolveScenarioAffine(p, lo, order, order, schedule.OnePort, Float64)
		if err != nil {
			return false
		}
		b, err := SolveScenarioAffine(p, hi, order, order, schedule.OnePort, Float64)
		if err != nil {
			return false
		}
		if !a.Feasible {
			return true // hi can only be more infeasible
		}
		if !b.Feasible {
			return true
		}
		return b.Throughput <= a.Throughput+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomAffine draws fixed costs of a scale that makes resource selection
// genuinely bite: some subsets infeasible, some workers not worth their
// latency.
func randomAffine(rng *rand.Rand, n int, scale float64) Affine {
	aff := ZeroAffine(n)
	for i := 0; i < n; i++ {
		aff.In[i] = scale * rng.Float64()
		aff.Out[i] = scale * rng.Float64() / 2
		aff.Comp[i] = scale * rng.Float64() / 2
	}
	return aff
}

// TestAffineBBAgreesWithFlat pins the branch-and-bound byte-identical to
// the flat loop — same winning subset/order, same throughput bits, same
// load bits — on 240 random platforms across sizes and cost regimes,
// serial and parallel.
func TestAffineBBAgreesWithFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(206))
	ctxSerial := context.Background()
	ctxPar := ContextWithSearchParallelism(context.Background(), 4)
	for trial := 0; trial < 240; trial++ {
		n := 1 + rng.Intn(9)
		p := randomStar(rng, n, 0.2+0.6*rng.Float64())
		scale := []float64{0, 0.02, 0.1, 0.4}[trial%4]
		aff := randomAffine(rng, n, scale)

		flat, err := BestFIFOAffineAlgo(ctxSerial, p, aff, Float64, AffineFlat)
		if err != nil {
			t.Fatal(err)
		}
		for _, ctx := range []context.Context{ctxSerial, ctxPar} {
			bb, err := BestFIFOAffineAlgo(ctx, p, aff, Float64, AffineBB)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(bb.Throughput) != math.Float64bits(flat.Throughput) {
				t.Fatalf("trial %d (n=%d scale=%g): bb ρ=%x flat ρ=%x",
					trial, n, scale, math.Float64bits(bb.Throughput), math.Float64bits(flat.Throughput))
			}
			if bb.Feasible != flat.Feasible || len(bb.Send) != len(flat.Send) {
				t.Fatalf("trial %d: bb (%v, %v) vs flat (%v, %v)",
					trial, bb.Feasible, bb.Send, flat.Feasible, flat.Send)
			}
			for k := range bb.Send {
				if bb.Send[k] != flat.Send[k] || bb.Return[k] != flat.Return[k] {
					t.Fatalf("trial %d: bb order %v/%v, flat %v/%v",
						trial, bb.Send, bb.Return, flat.Send, flat.Return)
				}
			}
			for i := range bb.Alpha {
				if math.Float64bits(bb.Alpha[i]) != math.Float64bits(flat.Alpha[i]) {
					t.Fatalf("trial %d worker %d: bb α bits %x, flat %x",
						trial, i, math.Float64bits(bb.Alpha[i]), math.Float64bits(flat.Alpha[i]))
				}
			}
		}
	}
}

// TestAffineBBPrunes asserts the bound actually fires: on a latency-heavy
// 12-worker platform the branch-and-bound must evaluate at most half of
// the 2^12−1 subsets the flat loop pays for.
func TestAffineBBPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	p := randomStar(rng, 12, 0.5)
	aff := randomAffine(rng, 12, 0.08)
	before := AffineStatsSnapshot()
	if _, err := BestFIFOAffineAlgo(context.Background(), p, aff, Float64, AffineBB); err != nil {
		t.Fatal(err)
	}
	after := AffineStatsSnapshot()
	leaves := after.LeavesEvaluated - before.LeavesEvaluated
	pruned := after.SubtreesPruned - before.SubtreesPruned
	total := uint64(1<<12 - 1)
	t.Logf("leaves=%d/%d pruned-subtrees=%d bound-solves=%d",
		leaves, total, pruned, after.BoundSolves-before.BoundSolves)
	if leaves > total/2 {
		t.Errorf("branch-and-bound evaluated %d of %d subsets; want <= 50%%", leaves, total)
	}
	if pruned == 0 {
		t.Error("no subtrees pruned on a latency-heavy platform")
	}
}

// TestAffineAlgoValidation covers the algorithm selector's edges.
func TestAffineAlgoValidation(t *testing.T) {
	p := platform.New(platform.Worker{C: 1, W: 1, D: 0.5})
	if _, err := BestFIFOAffineAlgo(context.Background(), p, ZeroAffine(1), Float64, AffineAlgo(9)); err == nil {
		t.Error("unknown algorithm must be rejected")
	}
	if _, err := BestFIFOAffineAlgo(context.Background(), p, ZeroAffine(1), Exact, AffineBB); err == nil {
		t.Error("forced BB under Exact must be rejected")
	}
	res, err := BestFIFOAffineAlgo(context.Background(), p, ZeroAffine(1), Exact, AffineAuto)
	if err != nil || !res.Feasible {
		t.Errorf("exact auto search failed: %v %+v", err, res)
	}
	for algo, want := range map[AffineAlgo]string{AffineAuto: "auto", AffineBB: "bb", AffineFlat: "flat", AffineAlgo(9): "AffineAlgo(9)"} {
		if algo.String() != want {
			t.Errorf("AffineAlgo(%d).String() = %q, want %q", int(algo), algo.String(), want)
		}
	}
}

// TestAffineCancellation checks both paths abort on a cancelled context.
func TestAffineCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(208))
	p := randomStar(rng, 10, 0.5)
	aff := randomAffine(rng, 10, 0.02)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []AffineAlgo{AffineFlat, AffineBB} {
		if _, err := BestFIFOAffineAlgo(ctx, p, aff, Float64, algo); err != context.Canceled {
			t.Errorf("%v: err = %v, want context.Canceled", algo, err)
		}
	}
}

func BenchmarkBestFIFOAffine8(b *testing.B) {
	rng := rand.New(rand.NewSource(205))
	p := randomStar(rng, 8, 0.5)
	aff := ZeroAffine(8)
	for i := range aff.In {
		aff.In[i] = 0.01
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BestFIFOAffine(p, aff, Float64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBestFIFOAffine12 compares the flat 2^12 loop against the
// branch-and-bound on the CI reference platform; the bench gate requires
// bb ≥ 5× faster with identical winners (the reported rho metrics must
// match to the last digit) and ≥ 50% of the subset lattice pruned.
func BenchmarkBestFIFOAffine12(b *testing.B) {
	rng := rand.New(rand.NewSource(207))
	p := randomStar(rng, 12, 0.5)
	aff := randomAffine(rng, 12, 0.08)
	for _, algo := range []AffineAlgo{AffineFlat, AffineBB} {
		b.Run(algo.String(), func(b *testing.B) {
			b.ReportAllocs()
			before := AffineStatsSnapshot()
			var res *AffineResult
			for i := 0; i < b.N; i++ {
				r, err := BestFIFOAffineAlgo(context.Background(), p, aff, Float64, algo)
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			b.ReportMetric(res.Throughput, "rho")
			if algo == AffineBB {
				after := AffineStatsSnapshot()
				leaves := float64(after.LeavesEvaluated-before.LeavesEvaluated) / float64(b.N)
				pruned := float64(after.SubtreesPruned-before.SubtreesPruned) / float64(b.N)
				b.ReportMetric(leaves, "leaves/op")
				b.ReportMetric(pruned, "pruned-subtrees/op")
				b.ReportMetric(1-leaves/float64(1<<12-1), "pruned-frac")
			}
		})
	}
}

// BenchmarkBestFIFOAffine16 exercises the lifted cap: 2^16 subsets are
// flat-loop territory measured in minutes, but the branch-and-bound keeps
// the search inside the CI bench timeout.
func BenchmarkBestFIFOAffine16(b *testing.B) {
	rng := rand.New(rand.NewSource(209))
	p := randomStar(rng, 16, 0.5)
	aff := randomAffine(rng, 16, 0.06)
	b.ReportAllocs()
	var res *AffineResult
	for i := 0; i < b.N; i++ {
		r, err := BestFIFOAffineAlgo(context.Background(), p, aff, Float64, AffineBB)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.Throughput, "rho")
}
