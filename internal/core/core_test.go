package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/lp"
	"repro/internal/platform"
	"repro/internal/schedule"
)

const tol = 1e-7

func approxEq(a, b float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

// randomStar returns a random star platform with a common z and costs in a
// moderate range. comm/comp speeds follow the paper's 1..10 integers.
func randomStar(rng *rand.Rand, p int, z float64) *platform.Platform {
	ws := make([]platform.Worker, p)
	for i := range ws {
		c := 0.02 + 0.2*rng.Float64()
		w := 0.05 + 0.5*rng.Float64()
		ws[i] = platform.Worker{C: c, W: w, D: z * c}
	}
	return platform.New(ws...)
}

func TestSingleWorkerClosedForm(t *testing.T) {
	// One worker: ρ = 1/(c+w+d) (its row dominates the port constraint).
	p := platform.New(platform.Worker{C: 0.2, W: 0.5, D: 0.1})
	s, err := OptimalFIFO(p, Float64)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / (0.2 + 0.5 + 0.1)
	if !approxEq(s.Throughput(), want) {
		t.Errorf("throughput = %g, want %g", s.Throughput(), want)
	}
	if len(s.Participants()) != 1 {
		t.Errorf("participants = %v", s.Participants())
	}
}

func TestSingleWorkerCommBound(t *testing.T) {
	// Tiny compute: the port constraint cannot bind with one worker
	// (row = c+w+d ≥ c+d), so ρ = 1/(c+w+d) still.
	p := platform.New(platform.Worker{C: 0.4, W: 1e-6, D: 0.2})
	s, err := OptimalFIFO(p, Float64)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / (0.4 + 1e-6 + 0.2)
	if !approxEq(s.Throughput(), want) {
		t.Errorf("throughput = %g, want %g", s.Throughput(), want)
	}
}

func TestTwoWorkerHandComputed(t *testing.T) {
	// Symmetric workers: c = 0.1, w = 0.4, d = 0.05. FIFO order (P1, P2).
	// With both rows and the port far from binding, rows are tight:
	//   row1: α1(c+w) + α1 d + α2 d = 1  →  0.55 α1 + 0.05 α2 = 1
	//   row2: α1 c + α2(c+w+d) = 1      →  0.10 α1 + 0.55 α2 = 1
	// Solving: α1 = 1.66048..., α2 = 1.516245...; check via LP.
	p := platform.New(
		platform.Worker{C: 0.1, W: 0.4, D: 0.05},
		platform.Worker{C: 0.1, W: 0.4, D: 0.05},
	)
	s, err := OptimalFIFO(p, Float64)
	if err != nil {
		t.Fatal(err)
	}
	// Solve the 2x2 system directly.
	// 0.55 a + 0.05 b = 1 ; 0.10 a + 0.55 b = 1
	det := 0.55*0.55 - 0.05*0.10
	a := (1*0.55 - 0.05*1) / det
	b := (0.55*1 - 1*0.10) / det
	if !approxEq(s.Alpha[0], a) || !approxEq(s.Alpha[1], b) {
		t.Errorf("alphas = (%g, %g), want (%g, %g)", s.Alpha[0], s.Alpha[1], a, b)
	}
	if !approxEq(s.Throughput(), a+b) {
		t.Errorf("throughput = %g, want %g", s.Throughput(), a+b)
	}
	// Port must not be binding here: Σα(c+d) = 0.15(a+b) < 1.
	if 0.15*(a+b) >= 1 {
		t.Fatalf("test construction wrong: port binding")
	}
}

func TestScenarioLPShape(t *testing.T) {
	p := randomStar(rand.New(rand.NewSource(1)), 5, 0.5)
	order := p.ByC()
	prob, err := ScenarioLP(p, order, order, schedule.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	if prob.NumVars() != 5 {
		t.Errorf("NumVars = %d, want 5", prob.NumVars())
	}
	if prob.NumRows() != 6 { // 5 worker rows + 1 port row
		t.Errorf("NumRows = %d, want 6", prob.NumRows())
	}
	prob2, err := ScenarioLP(p, order, order, schedule.TwoPort)
	if err != nil {
		t.Fatal(err)
	}
	if prob2.NumRows() != 7 { // 5 worker rows + 2 port rows
		t.Errorf("two-port NumRows = %d, want 7", prob2.NumRows())
	}
}

func TestScenarioLPValidation(t *testing.T) {
	p := randomStar(rand.New(rand.NewSource(2)), 3, 0.5)
	id := platform.Identity(3)
	cases := []struct {
		name      string
		send, ret platform.Order
		model     schedule.Model
	}{
		{"empty", platform.Order{}, platform.Order{}, schedule.OnePort},
		{"dup send", platform.Order{0, 0, 1}, id, schedule.OnePort},
		{"dup ret", id, platform.Order{0, 0, 1}, schedule.OnePort},
		{"out of range", platform.Order{0, 1, 7}, id, schedule.OnePort},
		{"length mismatch", platform.Order{0, 1}, id, schedule.OnePort},
		{"set mismatch", platform.Order{0, 1}, platform.Order{0, 2}, schedule.OnePort},
		{"bad model", id, id, schedule.Model(9)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ScenarioLP(p, tc.send, tc.ret, tc.model); err == nil {
				t.Error("want error")
			}
		})
	}
	bad := platform.New(platform.Worker{C: -1, W: 1, D: 1})
	if _, err := ScenarioLP(bad, platform.Order{0}, platform.Order{0}, schedule.OnePort); err == nil {
		t.Error("invalid platform must be rejected")
	}
}

func TestSolveScenarioBadArith(t *testing.T) {
	p := randomStar(rand.New(rand.NewSource(3)), 2, 0.5)
	o := platform.Identity(2)
	if _, err := SolveScenario(p, o, o, schedule.OnePort, Arith(42)); err == nil {
		t.Error("unknown arithmetic must be rejected")
	}
	if Float64.String() != "float64" || Exact.String() != "exact" || Arith(9).String() == "" {
		t.Error("Arith.String mismatch")
	}
}

func TestOptimalFIFOSendOrderSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := randomStar(rng, 7, 0.5)
	s, err := OptimalFIFO(p, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsFIFO() {
		t.Fatal("OptimalFIFO must return a FIFO schedule")
	}
	for k := 1; k < len(s.SendOrder); k++ {
		a, b := s.SendOrder[k-1], s.SendOrder[k]
		if p.Workers[a].C > p.Workers[b].C+1e-15 {
			t.Errorf("send order not sorted by c: %v", s.SendOrder)
		}
	}
	if err := s.Check(p, schedule.OnePort); err != nil {
		t.Errorf("schedule infeasible: %v", err)
	}
}

func TestOptimalFIFOZGreaterOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomStar(rng, 6, 2.5) // z = 2.5 > 1
	s, err := OptimalFIFO(p, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Check(p, schedule.OnePort); err != nil {
		t.Fatalf("schedule infeasible: %v", err)
	}
	// Section 3: initial messages in non-increasing c order.
	for k := 1; k < len(s.SendOrder); k++ {
		a, b := s.SendOrder[k-1], s.SendOrder[k]
		if p.Workers[a].C < p.Workers[b].C-1e-15 {
			t.Errorf("z>1 send order not sorted by non-increasing c: %v", s.SendOrder)
		}
	}
	// Mirror symmetry: the optimal throughput on the mirror platform is the
	// same (time reversal is an involution).
	m, err := OptimalFIFO(p.Mirror(), Float64)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(s.Throughput(), m.Throughput()) {
		t.Errorf("mirror throughput %g != %g", m.Throughput(), s.Throughput())
	}
}

func TestOptimalFIFONoCommonZ(t *testing.T) {
	p := platform.New(
		platform.Worker{C: 1, W: 1, D: 0.5},
		platform.Worker{C: 1, W: 1, D: 0.9},
	)
	if _, err := OptimalFIFO(p, Float64); err != ErrNoCommonZ {
		t.Errorf("want ErrNoCommonZ, got %v", err)
	}
}

func TestOptimalFIFOInvalidPlatform(t *testing.T) {
	if _, err := OptimalFIFO(platform.New(), Float64); err == nil {
		t.Error("empty platform must be rejected")
	}
	if _, err := OptimalLIFO(platform.New(), Float64); err == nil {
		t.Error("empty platform must be rejected by OptimalLIFO")
	}
}

func TestHeuristicsReturnVerifiedSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := randomStar(rng, 6, 0.5)
	for _, tc := range []struct {
		name string
		run  func() (*schedule.Schedule, error)
	}{
		{"IncC", func() (*schedule.Schedule, error) { return IncC(p, schedule.OnePort, Float64) }},
		{"IncW", func() (*schedule.Schedule, error) { return IncW(p, schedule.OnePort, Float64) }},
		{"DecC", func() (*schedule.Schedule, error) { return DecC(p, schedule.OnePort, Float64) }},
		{"OptimalLIFO", func() (*schedule.Schedule, error) { return OptimalLIFO(p, Float64) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Check(p, schedule.OnePort); err != nil {
				t.Errorf("infeasible: %v", err)
			}
			if s.Throughput() <= 0 {
				t.Error("throughput must be positive")
			}
		})
	}
}

func TestIncCEqualsOptimalFIFOWhenZBelowOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		p := randomStar(rng, 5, 0.3+0.5*rng.Float64())
		opt, err := OptimalFIFO(p, Float64)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := IncC(p, schedule.OnePort, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(opt.Throughput(), inc.Throughput()) {
			t.Errorf("trial %d: OptimalFIFO %g != IncC %g", trial, opt.Throughput(), inc.Throughput())
		}
	}
}

func TestLIFOOnePortConstraintRedundant(t *testing.T) {
	// Every LIFO schedule naturally obeys the one-port model (Section 2.2):
	// the LIFO optimum must be identical under both models.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		p := randomStar(rng, 4, 0.2+rng.Float64())
		order := p.ByC()
		one, err := LIFOWithOrder(p, order, schedule.OnePort, Float64)
		if err != nil {
			t.Fatal(err)
		}
		two, err := LIFOWithOrder(p, order, schedule.TwoPort, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(one.Throughput(), two.Throughput()) {
			t.Errorf("trial %d: LIFO one-port %g != two-port %g",
				trial, one.Throughput(), two.Throughput())
		}
		if !one.IsLIFO() {
			t.Error("LIFOWithOrder must return a LIFO schedule")
		}
	}
}

func TestTwoPortAtLeastOnePort(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		p := randomStar(rng, 5, 0.5)
		order := p.ByC()
		one, err := SolveScenario(p, order, order, schedule.OnePort, Float64)
		if err != nil {
			t.Fatal(err)
		}
		two, err := SolveScenario(p, order, order, schedule.TwoPort, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if one.Throughput() > two.Throughput()+tol {
			t.Errorf("trial %d: one-port %g exceeds two-port %g", trial, one.Throughput(), two.Throughput())
		}
	}
}

func TestOnePortCommunicationBound(t *testing.T) {
	// ρ(c̄+d̄) ≤ 1: total port occupation cannot exceed the horizon.
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		p := randomStar(rng, 6, 0.5)
		s, err := OptimalFIFO(p, Float64)
		if err != nil {
			t.Fatal(err)
		}
		occ := 0.0
		for i, a := range s.Alpha {
			occ += a * (p.Workers[i].C + p.Workers[i].D)
		}
		if occ > 1+tol {
			t.Errorf("trial %d: port occupation %g > 1", trial, occ)
		}
	}
}

func TestIdleOnlyAtLastParticipant(t *testing.T) {
	// Lemma 2 + Theorem 1: with strictly increasing c_i (generic random
	// platforms), any optimal FIFO solution has idle time only at the last
	// participating worker.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		p := randomStar(rng, 6, 0.5)
		s, err := OptimalFIFO(p, Exact)
		if err != nil {
			t.Fatal(err)
		}
		tl := s.Timeline(p)
		parts := s.Participants()
		last := parts[len(parts)-1]
		for _, wt := range tl {
			if s.Alpha[wt.Worker] == 0 || wt.Worker == last {
				continue
			}
			if wt.Idle > 1e-6 {
				t.Errorf("trial %d: worker %d (not last) has idle %g\nschedule: %v",
					trial, wt.Worker, wt.Idle, s)
			}
		}
	}
}

func TestMakespanForLoad(t *testing.T) {
	p := platform.New(platform.Worker{C: 0.2, W: 0.5, D: 0.1})
	s, err := OptimalFIFO(p, Float64)
	if err != nil {
		t.Fatal(err)
	}
	// ρ = 1/0.8 → 1000 units take 800 time units.
	if got := MakespanForLoad(s, 1000); !approxEq(got, 800) {
		t.Errorf("makespan = %g, want 800", got)
	}
}

func TestExactThroughputString(t *testing.T) {
	p := platform.New(platform.Worker{C: 0.25, W: 0.5, D: 0.25})
	o := platform.Identity(1)
	f, s, err := ExactThroughput(p, o, o, schedule.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	// ρ = 1/(0.25+0.5+0.25) = 1 exactly.
	if f != 1 || s != "1" {
		t.Errorf("ExactThroughput = (%g, %q), want (1, \"1\")", f, s)
	}
	if _, _, err := ExactThroughput(p, platform.Order{}, platform.Order{}, schedule.OnePort); err == nil {
		t.Error("invalid order must be rejected")
	}
}

func TestSolveScenarioPrunesZeroLoads(t *testing.T) {
	// A worker with absurd communication cost gets zero load and must be
	// pruned from the orders.
	p := platform.New(
		platform.Worker{C: 0.05, W: 0.1, D: 0.025},
		platform.Worker{C: 1e6, W: 0.1, D: 5e5},
	)
	order := p.ByC()
	s, err := SolveScenario(p, order, order, schedule.OnePort, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Participants()) != 1 || s.Participants()[0] != 0 {
		t.Errorf("participants = %v, want [0]", s.Participants())
	}
	for _, i := range s.SendOrder {
		if s.Alpha[i] == 0 {
			t.Error("zero-load worker left in send order")
		}
	}
}

func TestLPStatusStringsCovered(t *testing.T) {
	// Exercise lp statuses through core so the mapping stays stable.
	if lp.Optimal.String() != "optimal" {
		t.Error("unexpected lp status name")
	}
}

func TestErrNoCommonZMessage(t *testing.T) {
	if !strings.Contains(ErrNoCommonZ.Error(), "Theorem 1") {
		t.Error("ErrNoCommonZ should point the user at alternatives")
	}
}

func BenchmarkOptimalFIFO11Workers(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	p := randomStar(rng, 11, 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalFIFO(p, Float64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalFIFOExact11Workers(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	p := randomStar(rng, 11, 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalFIFO(p, Exact); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalLIFO11Workers(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	p := randomStar(rng, 11, 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalLIFO(p, Float64); err != nil {
			b.Fatal(err)
		}
	}
}
