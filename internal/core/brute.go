package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// Limits on the exhaustive searches: p! scenario evaluations for FIFO/LIFO
// order search, (p!)² return-order nodes for permutation pairs. The order
// limit keeps worst cases around a few million tiny evaluations; the pair
// limit rose from 5 to 7 when the branch-and-bound recursion over return
// orders replaced the flat inner loop — the prefix bound cuts whole σ2
// subtrees, so the explored node count stays far below the (p!)² ceiling —
// and from 7 to 8 (with the order limit moving 8 → 9) when the
// work-stealing pool spread the searches over all cores and the incremental
// factorisation cut the per-node bound to O(q²). Exact-rational pair
// searches keep the historical cap: they run the flat loop with seeding and
// pruning disabled (float64 bounds cannot certify exact comparisons), so
// (7!)² exact simplex solves would take days where the fail-fast error
// takes microseconds.
const (
	maxExhaustiveOrder     = 9
	maxExhaustivePair      = 8
	maxExhaustivePairExact = 5 // ExactRational: unpruned flat loop only
)

// pruneSlack is the relative safety margin of the searches' upper-bound
// pruning: a subtree (or inner loop) is pruned only when its bound is
// WORSE than the incumbent by more than this relative slack,
// bound·(1+pruneSlack) < incumbent. The strict direction matters for the
// parallel search's byte-identity guarantee: a subtree containing an
// optimum-achieving leaf has bound ≥ ρ* ≥ incumbent and therefore can
// never satisfy the prune test, REGARDLESS of how the shared incumbent
// happened to rise — so the set of surviving optima (and with the lex-min
// tie rule, the winner) does not depend on worker interleaving. The slack
// is wide enough (1e-9 ≫ the incremental factorisation's refinement-
// guarded drift) that bound noise cannot flip the test either.
const pruneSlack = 1e-9

// screenSlack derives the incumbent handed to the sweeps' dual screening
// (eval.Sweep.ThroughputBound): the searches pass incumbent·(1-screenSlack)
// so an order that exactly TIES the shared best is never screened — its
// exact optimum is always computed, keeping the lex-min tie resolution
// deterministic under any worker interleaving. Screened orders report a
// value capped at the screening incumbent, i.e. strictly below the shared
// best, so they can never become a winner either.
const screenSlack = 1e-11

// ctxPollMask throttles context polling in the search cores' hot loops:
// the context is checked every ctxPollMask+1 nodes, bounding the
// cancellation latency to a few microseconds of chain evaluations while
// keeping the per-node cost free of the atomic loads ctx.Err() performs.
const ctxPollMask = 0x3f

// disablePairSeeding switches off the batched FIFO/LIFO incumbent seeding
// of the pair searches. It exists for tests — the seeding property tests
// compare pruning counts with and without seeds, and the cancellation test
// steers a deadline into the recursion itself — and is not part of the
// package API.
var disablePairSeeding bool

// PairStats is a snapshot of the pair searches' cumulative
// instrumentation, kept as process-global atomics (searches may run
// concurrently; each search accumulates locally and flushes once). The
// counters make the branch-and-bound's effectiveness observable — the
// bench CI job fails if SubtreesPruned stops advancing on the reference
// platform, i.e. if the bound silently stopped firing.
type PairStats struct {
	// OuterPruned counts send orders whose entire return-order tree was
	// skipped: the flat search's SendBound prunes and the B&B's root-node
	// bound prunes land here.
	OuterPruned uint64
	// NodesExpanded counts branch-and-bound nodes whose children were
	// generated (including the per-σ1 roots).
	NodesExpanded uint64
	// SubtreesPruned counts children cut by the return-prefix bound —
	// whole subtrees of return orders discarded without evaluation
	// (leaves pruned at full depth count too).
	SubtreesPruned uint64
	// LeavesEvaluated counts complete return orders whose throughput was
	// actually computed (certified bound or fallback evaluation).
	LeavesEvaluated uint64
}

var (
	pairOuterPruned    atomic.Uint64
	pairNodesExpanded  atomic.Uint64
	pairSubtreesPruned atomic.Uint64
	pairLeavesEval     atomic.Uint64
)

// PairStatsSnapshot returns the cumulative pair-search counters. Callers
// interested in one search (benchmarks, the CI pruning gate) subtract two
// snapshots.
func PairStatsSnapshot() PairStats {
	return PairStats{
		OuterPruned:     pairOuterPruned.Load(),
		NodesExpanded:   pairNodesExpanded.Load(),
		SubtreesPruned:  pairSubtreesPruned.Load(),
		LeavesEvaluated: pairLeavesEval.Load(),
	}
}

// PairAlgo selects how the pair search explores the return-order space of
// each send order.
type PairAlgo int

const (
	// PairAuto picks the branch-and-bound recursion for every float64
	// backend and the flat double loop under ExactRational (whose exact
	// comparisons the float64 bounds cannot certify).
	PairAuto PairAlgo = iota
	// PairBB forces the branch-and-bound recursion over σ2 prefixes.
	PairBB
	// PairFlat forces the flat p!×p! double loop (the PR 3 search,
	// retained for agreement testing and as the exact-arithmetic path).
	PairFlat
)

// String names the algorithm ("auto", "bb", "flat").
func (a PairAlgo) String() string {
	switch a {
	case PairAuto:
		return "auto"
	case PairBB:
		return "bb"
	case PairFlat:
		return "flat"
	}
	return fmt.Sprintf("PairAlgo(%d)", int(a))
}

// forEachPermutation invokes fn with every permutation of {0..n-1},
// enumerated by the Steinhaus–Johnson–Trotter algorithm: each emitted
// order differs from its predecessor by exactly one transposition of
// ADJACENT positions. fn receives the left index of that transposition —
// the new order swapped positions (swapped, swapped+1) of the previous
// one — or -1 on the first call, which emits the identity. The adjacency
// contract is what makes incremental re-evaluation possible (eval.Sweep
// re-derives only the chain state the swap invalidated) and is pinned by
// a property test.
//
// The slice passed to fn is reused and mutated in place between calls: fn
// must copy it if it escapes the callback (Clone an Order, never retain
// the argument).
func forEachPermutation(n int, fn func(perm []int, swapped int) error) error {
	perm := make([]int, n)
	pos := make([]int, n) // pos[v]: current index of value v
	dir := make([]int, n) // dir[v]: direction v moves (±1)
	for i := range perm {
		perm[i], pos[i], dir[i] = i, i, -1
	}
	if err := fn(perm, -1); err != nil {
		return err
	}
	for {
		left, ok := sjtStep(n, perm, pos, dir)
		if !ok {
			return nil // no mobile value: all n! permutations emitted
		}
		if err := fn(perm, left); err != nil {
			return err
		}
	}
}

// incumbent is the state one search's workers share: the best known
// throughput as atomic float64 bits (throughputs are positive, so the IEEE
// bit patterns order exactly like the values and a CAS-max loop suffices)
// and the cooperative stop flag of the cancellation protocol — the first
// worker that observes a done context (or fails) raises it, and every
// other worker sees it at its next throttled poll.
type incumbent struct {
	bits atomic.Uint64
	stop atomic.Bool
}

// load returns the shared best throughput (0 before the first offer).
func (inc *incumbent) load() float64 {
	return math.Float64frombits(inc.bits.Load())
}

// raise lifts the shared best to rho if it improves it.
func (inc *incumbent) raise(rho float64) {
	if rho <= 0 {
		return
	}
	b := math.Float64bits(rho)
	for {
		cur := inc.bits.Load()
		if cur >= b || inc.bits.CompareAndSwap(cur, b) {
			return
		}
	}
}

// errSearchStopped is the sentinel a worker returns when it quits because
// ANOTHER worker raised the stop flag: the real error (a done context, an
// evaluation failure) travels up from the worker that hit it, and the
// drivers drop the sentinels in favour of it.
var errSearchStopped = errors.New("core: search stopped by another worker")

// searchCore is one worker's view of an order-space search: its private
// poll counter and local best (send, return, throughput) plus the shared
// incumbent every worker prunes against. The FIFO/LIFO order searches are
// depth-1 instances — every SJT emission is a leaf offered directly —
// while the pair searches thread the same core through the σ1 enumeration
// and (for the branch-and-bound) every node of the return-order recursion,
// which is what makes a WithTimeout deadline abort a deep subtree promptly
// instead of waiting for the next outer permutation.
//
// Ties are resolved lexicographically: among leaves of equal throughput
// the worker keeps the lexicographically smallest (send, return) pair, and
// the drivers merge worker bests under the same rule. Combined with the
// strictly-worse prune rule (see pruneSlack) this makes the search result
// a pure function of the platform — byte-identical across worker counts
// and interleavings.
type searchCore struct {
	ctx     context.Context
	inc     *incumbent
	iter    int
	bestRho float64
	best    platform.Order // winning send order
	bestRet platform.Order // winning return order (nil when implied)
}

func newSearchCore(ctx context.Context) *searchCore {
	return newSearchWorker(ctx, &incumbent{})
}

// newSearchWorker is a worker-view core over a shared incumbent.
func newSearchWorker(ctx context.Context, inc *incumbent) *searchCore {
	return &searchCore{ctx: ctx, inc: inc, bestRho: -1}
}

// poll checks the stop flag and the context every ctxPollMask+1 calls.
// Every node of every search calls it on its own counter, so cancellation
// latency is bounded by a few dozen chain evaluations anywhere in the tree
// of every worker.
func (s *searchCore) poll() error {
	if s.iter&ctxPollMask == 0 {
		if err := s.ctx.Err(); err != nil {
			s.inc.stop.Store(true)
			return err
		}
		if s.inc.stop.Load() {
			return errSearchStopped
		}
	}
	s.iter++
	return nil
}

// prunable reports whether a subtree bound is strictly worse than the
// shared incumbent (see pruneSlack for why strictness is load-bearing).
// No worker prunes before the first incumbent exists.
func (s *searchCore) prunable(bound float64) bool {
	g := s.inc.load()
	return g > 0 && bound*(1+pruneSlack) < g
}

// screen returns the incumbent to hand to the sweeps' dual screening: a
// hair below the shared best, so exact ties are never screened out (see
// screenSlack).
func (s *searchCore) screen() float64 {
	g := s.inc.load()
	if g <= 0 {
		return -1
	}
	return g * (1 - screenSlack)
}

// offer installs a leaf as the worker's local best when it improves it —
// strictly better throughput, or an exact tie with a lexicographically
// smaller (send, return) pair — cloning the live enumeration slices, and
// lifts the shared incumbent. ret may be nil for searches whose return
// order is implied by the send order (FIFO/LIFO).
func (s *searchCore) offer(rho float64, send, ret platform.Order) {
	if rho < s.bestRho {
		return
	}
	if rho == s.bestRho && !ordersLess(send, ret, s.best, s.bestRet) {
		return
	}
	s.bestRho = rho
	s.best = append(s.best[:0], send...)
	s.bestRet = append(s.bestRet[:0], ret...)
	s.inc.raise(rho)
}

// ordersLess is the lexicographic tie rule: send order first, return order
// second. The permutation searches always compare equal-length sends; the
// affine subset search compares enrolled sets of different sizes, so sends
// compare element-wise up to the shorter length with a strict prefix
// ordering before its extensions.
func ordersLess(aSend, aRet, bSend, bRet platform.Order) bool {
	for i := range aSend {
		if i >= len(bSend) {
			return false // bSend is a strict prefix of aSend
		}
		if aSend[i] != bSend[i] {
			return aSend[i] < bSend[i]
		}
	}
	if len(aSend) < len(bSend) {
		return true
	}
	for i := range aRet {
		if i >= len(bRet) || aRet[i] != bRet[i] {
			return i >= len(bRet) || aRet[i] < bRet[i]
		}
	}
	return false
}

// mergeWorkers folds worker-local bests into dst under the same
// (throughput, lex) rule the workers applied locally, making the final
// winner independent of which worker found it.
func mergeWorkers(dst *searchCore, workers []*searchCore) {
	for _, w := range workers {
		if w == nil || w.bestRho < dst.bestRho {
			continue
		}
		if w.bestRho > dst.bestRho || ordersLess(w.best, w.bestRet, dst.best, dst.bestRet) {
			dst.bestRho, dst.best, dst.bestRet = w.bestRho, w.best, w.bestRet
		}
	}
}

// BestFIFOExhaustive tries every FIFO send order over all workers,
// evaluating the scenario for each, and returns the best schedule together
// with the winning order. It is the optimality oracle used to validate
// Theorem 1 on small platforms, and the fallback when the platform has no
// common z.
func BestFIFOExhaustive(p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, nil, err
	}
	return BestFIFOExhaustiveEval(context.Background(), p, model, mode)
}

// BestFIFOExhaustiveContext is BestFIFOExhaustive with cancellation: the
// factorial search aborts with ctx.Err() as soon as the context is done.
func BestFIFOExhaustiveContext(ctx context.Context, p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, nil, err
	}
	return BestFIFOExhaustiveEval(ctx, p, model, mode)
}

// BestFIFOExhaustiveEval is the cancellable FIFO order search with an
// explicit evaluation backend.
func BestFIFOExhaustiveEval(ctx context.Context, p *platform.Platform, model schedule.Model, mode eval.Mode) (*schedule.Schedule, platform.Order, error) {
	return bestOrderExhaustive(ctx, p, model, mode, false)
}

// BestLIFOExhaustive tries every LIFO send order (results in reverse).
func BestLIFOExhaustive(p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, nil, err
	}
	return BestLIFOExhaustiveEval(context.Background(), p, model, mode)
}

// BestLIFOExhaustiveContext is BestLIFOExhaustive with cancellation.
func BestLIFOExhaustiveContext(ctx context.Context, p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, nil, err
	}
	return BestLIFOExhaustiveEval(ctx, p, model, mode)
}

// BestLIFOExhaustiveEval is the cancellable LIFO order search with an
// explicit evaluation backend.
func BestLIFOExhaustiveEval(ctx context.Context, p *platform.Platform, model schedule.Model, mode eval.Mode) (*schedule.Schedule, platform.Order, error) {
	return bestOrderExhaustive(ctx, p, model, mode, true)
}

// bestOrderExhaustive enumerates all p! send orders — the depth-1 instance
// of the search core: every SJT emission is a leaf offered straight to the
// incumbent. Under the Auto backend the Steinhaus–Johnson–Trotter
// enumeration drives an incremental eval.Sweep: each adjacent
// transposition re-derives only the invalidated prefix/suffix state of the
// FIFO/LIFO load-and-dual chains (O(p−i) after a swap at position i
// instead of O(p) from scratch), and a permutation is handed to the full
// tiered pipeline only when the chain certificate fails (port-bound or
// resource-selecting optima). Other backends — and the certificate
// failures — evaluate through the raw throughput fast path of one pooled
// eval session. Only the winning order is re-evaluated through the
// verified schedule-producing path.
func bestOrderExhaustive(ctx context.Context, p *platform.Platform, model schedule.Model, mode eval.Mode, lifo bool) (*schedule.Schedule, platform.Order, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	n := p.P()
	if n > maxExhaustiveOrder {
		return nil, nil, fmt.Errorf("core: exhaustive order search limited to %d workers, platform has %d", maxExhaustiveOrder, n)
	}
	winner := newSearchCore(ctx)
	run := func(core *searchCore, lo, hi int64) error {
		return sweepRange(core, p, model, mode, lifo, lo, hi)
	}
	traced := obs.Enabled(ctx)
	t0 := obs.Now(ctx)
	if err := runRangePool(ctx, winner, factorial(n), run); err != nil {
		return nil, nil, err
	}
	if traced {
		kind := "fifo-order"
		if lifo {
			kind = "lifo-order"
		}
		backend := mode.String()
		if mode == eval.Auto {
			backend = "sweep"
		}
		obs.StageAt(ctx, 1, "search", t0, obs.Now(ctx),
			obs.String("kind", kind),
			obs.Int("workers", searchParallelism(ctx)),
			obs.Int64("orders", factorial(n)),
			obs.String("backend", backend))
	}
	sess := eval.GetSession()
	defer sess.Release()
	bestOrder := winner.best
	sc := eval.Scenario{Platform: p, Model: model, Send: bestOrder}
	if lifo {
		sc.Return = bestOrder.Reverse()
	} else {
		sc.Return = bestOrder
	}
	evalStart := obs.Now(ctx)
	best, err := sess.Evaluate(sc, mode)
	if err != nil {
		return nil, nil, err
	}
	if traced {
		recordEvalBackend(ctx, sess, mode, evalStart)
	}
	return best, bestOrder, nil
}

// sweepRange runs one worker's contiguous permutation-rank range of the
// FIFO/LIFO order search: under the Auto backend an incremental eval.Sweep
// rides the SJT transpositions of the range (the range opener rebuilds the
// chains from scratch, exactly like the full enumeration's identity
// emission), other backends evaluate each order through one pooled
// session. Sweep values are pure functions of the order — Delta recomputes
// everything downstream of a transposition from unchanged prefix state —
// so a range-partitioned search scores every order bit-identically to the
// serial one.
func sweepRange(core *searchCore, p *platform.Platform, model schedule.Model, mode eval.Mode, lifo bool, lo, hi int64) error {
	n := p.P()
	sess := eval.GetSession()
	defer sess.Release()
	sc := eval.Scenario{Platform: p, Model: model}
	reversed := make(platform.Order, n) // scratch for the LIFO return order
	var sweep *eval.Sweep
	useSweep := mode == eval.Auto
	return forEachPermutationRange(n, lo, hi, func(perm []int, swapped int) error {
		if err := core.poll(); err != nil {
			return err
		}
		if useSweep {
			if swapped < 0 {
				var err error
				if sweep, err = eval.NewSweep(p, perm, model, lifo); err != nil {
					return err
				}
			} else {
				sweep.Delta(swapped)
			}
			// ThroughputBound may return a certified upper bound instead of
			// the exact optimum when the cached dual multipliers prove this
			// order cannot beat the screening incumbent; the screen sits
			// strictly below the shared best (see screenSlack), so a pruned
			// order's capped value can never win and an exact tie is always
			// computed exactly.
			if rho, ok := sweep.ThroughputBound(core.screen()); ok {
				core.offer(rho, platform.Order(perm), nil)
				return nil
			}
			// Certificate failure: this permutation's optimum is not the
			// all-tight chain; evaluate it through the full tiers below.
		}
		sc.Send = perm
		if lifo {
			for k, v := range perm {
				reversed[n-1-k] = v
			}
			sc.Return = reversed
		} else {
			sc.Return = perm
		}
		rho, err := sess.ThroughputTrusted(sc, mode)
		if err != nil {
			return err
		}
		core.offer(rho, platform.Order(perm), nil)
		return nil
	})
}

// PairResult is the outcome of the general permutation-pair search.
type PairResult struct {
	Schedule *schedule.Schedule
	Send     platform.Order
	Return   platform.Order
}

// BestPairExhaustive searches every (σ1, σ2) permutation pair over all
// workers — the general scheduling problem whose complexity the paper
// leaves open (and conjectures NP-hard). Limited to small platforms; used
// to probe how far the optimal FIFO/LIFO schedules sit from the
// unrestricted optimum.
func BestPairExhaustive(p *platform.Platform, model schedule.Model, arith Arith) (*PairResult, error) {
	return BestPairExhaustiveContext(context.Background(), p, model, arith)
}

// BestPairExhaustiveContext is BestPairExhaustive with cancellation: the
// search polls the context throughout — including inside the return-order
// recursion — and aborts with ctx.Err() once it is done.
func BestPairExhaustiveContext(ctx context.Context, p *platform.Platform, model schedule.Model, arith Arith) (*PairResult, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, err
	}
	return BestPairExhaustiveEval(ctx, p, model, mode)
}

// BestPairExhaustiveEval is the cancellable pair search with an explicit
// evaluation backend, exploring with the default algorithm (PairAuto:
// branch-and-bound for float64 backends, the flat loop under
// ExactRational).
func BestPairExhaustiveEval(ctx context.Context, p *platform.Platform, model schedule.Model, mode eval.Mode) (*PairResult, error) {
	return BestPairExhaustiveAlgo(ctx, p, model, mode, PairAuto)
}

// BestPairExhaustiveAlgo is the pair search with an explicit exploration
// algorithm. Both algorithms share the incumbent seeding (the FIFO and
// LIFO return orders of every send permutation, batch-evaluated up front
// in structure-of-arrays lockstep, raise the incumbent before any
// exploration) and agree on the reported optimum to floating-point noise;
// they differ in how the p! return orders of a send order are covered:
//
//   - PairFlat evaluates every return order against the shared send-prefix
//     system (eval.Session.FixedSend), skipping whole inner loops whose
//     send-order relaxation (eval.Session.SendBound) cannot beat the
//     incumbent;
//   - PairBB explores return orders as a tree, committing the last
//     returner first, and discards every subtree whose prefix relaxation
//     (eval.ReturnPrefix) cannot beat the incumbent — pruning WITHIN inner
//     loops, which is what lifts the worker ceiling from 5 to 7.
//
// Seeding and pruning are disabled under ExactRational, where the seeds
// and the bounds (float64 computations) could not certify exact
// comparisons; PairBB is rejected there for the same reason.
func BestPairExhaustiveAlgo(ctx context.Context, p *platform.Platform, model schedule.Model, mode eval.Mode, algo PairAlgo) (*PairResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.P()
	if n > maxExhaustivePair {
		return nil, fmt.Errorf("core: exhaustive pair search limited to %d workers, platform has %d", maxExhaustivePair, n)
	}
	if mode == eval.ExactRational && n > maxExhaustivePairExact {
		return nil, fmt.Errorf("core: exact-rational pair search limited to %d workers (no pruning certifies exact comparisons), platform has %d", maxExhaustivePairExact, n)
	}
	switch algo {
	case PairAuto:
		if mode == eval.ExactRational {
			algo = PairFlat
		} else {
			algo = PairBB
		}
	case PairBB:
		if mode == eval.ExactRational {
			return nil, fmt.Errorf("core: pair-bb requires a float64 evaluation backend (the prefix bounds cannot certify exact-rational comparisons); use pair-flat with exact")
		}
	case PairFlat:
		// Always available.
	default:
		return nil, fmt.Errorf("core: unknown pair-search algorithm %v", algo)
	}
	sess := eval.GetSession()
	defer sess.Release()
	winner := newSearchCore(ctx)
	prune := mode != eval.ExactRational
	// The pair counters are process-global, so under concurrent solves the
	// snapshot delta may include another search's nodes; the annotation is a
	// magnitude indicator, not an exact per-request count.
	traced := obs.Enabled(ctx)
	t0 := obs.Now(ctx)
	var before PairStats
	if traced {
		before = PairStatsSnapshot()
	}
	if err := seedPairIncumbent(ctx, winner, p, model, n, prune && !disablePairSeeding); err != nil {
		return nil, err
	}
	var err error
	if algo == PairBB {
		err = pairSearchBB(ctx, winner, p, model, mode, n)
	} else {
		err = pairSearchFlat(winner, sess, p, model, mode, n, prune)
	}
	if err != nil {
		return nil, err
	}
	if traced {
		after := PairStatsSnapshot()
		obs.StageAt(ctx, 1, "search", t0, obs.Now(ctx),
			obs.String("kind", "pair"),
			obs.String("algo", algo.String()),
			obs.Int("workers", searchParallelism(ctx)),
			obs.Uint64("nodes", after.NodesExpanded-before.NodesExpanded),
			obs.Uint64("pruned", after.SubtreesPruned-before.SubtreesPruned),
			obs.Uint64("outer_pruned", after.OuterPruned-before.OuterPruned),
			obs.Uint64("leaves", after.LeavesEvaluated-before.LeavesEvaluated))
	}
	bestSend, bestRet := winner.best, winner.bestRet
	evalStart := obs.Now(ctx)
	best, err := sess.Evaluate(eval.Scenario{Platform: p, Send: bestSend, Return: bestRet, Model: model}, mode)
	if err != nil {
		return nil, err
	}
	if traced {
		recordEvalBackend(ctx, sess, mode, evalStart)
	}
	return &PairResult{Schedule: best, Send: bestSend, Return: bestRet}, nil
}

// pairSearchFlat is the flat double loop: for each send order the
// send-prefix half of the tight system is assembled once
// (eval.Session.FixedSend) and shared by all p! return orders, and a send
// order whose return-order-independent relaxation (eval.Session.SendBound)
// cannot beat the incumbent skips its entire inner loop.
func pairSearchFlat(core *searchCore, sess *eval.Session, p *platform.Platform, model schedule.Model, mode eval.Mode, n int, prune bool) error {
	return forEachPermutation(n, func(sendPerm []int, _ int) error {
		if err := core.ctx.Err(); err != nil {
			return err
		}
		send := platform.Order(sendPerm)
		if prune && core.bestRho > 0 {
			bound, err := sess.SendBound(p, send, model)
			if err != nil {
				return err
			}
			if core.prunable(bound) {
				pairOuterPruned.Add(1)
				return nil // no σ2 under this σ1 can beat the incumbent
			}
		}
		fixed, err := sess.FixedSend(p, send, model, mode)
		if err != nil {
			return err
		}
		return forEachPermutation(n, func(retPerm []int, _ int) error {
			if err := core.poll(); err != nil {
				return err
			}
			rho, err := fixed.Throughput(retPerm)
			if err != nil {
				return err
			}
			core.offer(rho, send, platform.Order(retPerm))
			return nil
		})
	})
}

// pairSearchBB drives the branch-and-bound over the work-stealing pool:
// send orders are tasks identified by their SJT rank, initially dealt to
// the workers as contiguous blocks; each worker runs a pruned prefix
// recursion over return orders per send order with its own pooled session
// and ReturnPrefix, pruning against the shared incumbent. Counter flushes
// happen exactly once per worker, including on cancellation.
func pairSearchBB(ctx context.Context, winner *searchCore, p *platform.Platform, model schedule.Model, mode eval.Mode, n int) error {
	run := func(core *searchCore, next func() (int64, bool)) error {
		sess := eval.GetSession()
		defer sess.Release()
		rp, err := sess.NewReturnPrefix(p, model, mode)
		if err != nil {
			return err
		}
		bb := &pairBB{core: core, rp: rp, q: n}
		defer bb.flush()
		perm := make([]int, n)
		pos := make([]int, n)
		dir := make([]int, n)
		for {
			rank, ok := next()
			if !ok {
				return nil
			}
			sjtUnrank(n, rank, perm, pos, dir)
			if err := bb.searchSend(platform.Order(perm)); err != nil {
				return err
			}
		}
	}
	return runStealingPool(ctx, winner, factorial(n), run)
}

// pairBB is one branch-and-bound run: the shared search core, the eval
// prefix state and locally accumulated counters (flushed to the global
// atomics once per search).
type pairBB struct {
	core *searchCore
	rp   *eval.ReturnPrefix
	send platform.Order
	q    int

	outerPruned, nodes, pruned, leaves uint64
}

func (b *pairBB) flush() {
	pairOuterPruned.Add(b.outerPruned)
	pairNodesExpanded.Add(b.nodes)
	pairSubtreesPruned.Add(b.pruned)
	pairLeavesEval.Add(b.leaves)
}

// searchSend explores the return-order tree of one send order: root bound,
// then the pruned prefix recursion. A send order whose root relaxation —
// the same one SendBound solves as an LP, here one triangular system —
// cannot beat the incumbent skips its whole tree.
func (b *pairBB) searchSend(send platform.Order) error {
	if err := b.core.poll(); err != nil {
		return err
	}
	b.send = send
	if err := b.rp.Reset(send); err != nil {
		return err
	}
	bound := math.Inf(1)
	if bd, _, ok := b.rp.Bound(); ok {
		if b.core.prunable(bd) {
			b.outerPruned++
			return nil
		}
		bound = bd
	}
	b.nodes++
	return b.searchNode(bound)
}

// searchNode expands one node: every still-open worker is committed in
// turn to the deepest open return position, bounded, and either pruned
// (the whole subtree of return orders sharing that prefix is discarded),
// recursed into, or — at full depth — evaluated and offered to the
// incumbent. bound is the tightest certified bound along the path; a node
// whose own bound fails to compute inherits it (admissible by the bound's
// monotonicity in prefix length).
func (b *pairBB) searchNode(bound float64) error {
	if err := b.core.poll(); err != nil {
		return err
	}
	for pos := 0; pos < b.q; pos++ {
		if !b.rp.Open(pos) {
			continue
		}
		b.rp.Push(pos)
		nb := bound
		cb, exact, ok := b.rp.Bound()
		if ok && cb < nb {
			nb = cb
		}
		leaf := b.rp.Depth() == b.q
		switch {
		case b.core.prunable(nb):
			b.pruned++
		case leaf:
			b.leaves++
			rho := cb
			if !(ok && exact) {
				var err error
				if rho, err = b.rp.LeafThroughput(); err != nil {
					b.rp.Pop()
					return err
				}
			}
			b.core.offer(rho, b.send, b.rp.ReturnOrder())
		default:
			b.nodes++
			if err := b.searchNode(nb); err != nil {
				b.rp.Pop()
				return err
			}
		}
		b.rp.Pop()
	}
	return nil
}

// seedPairIncumbent batch-evaluates the FIFO and LIFO scenarios of every
// send permutation in enumeration order (the structure-of-arrays chains
// run 8 permutations per lockstep chunk) and raises the incumbent to the
// best certified seed before any exploration starts: every seed is an
// achieved throughput of a scenario inside the search space, so the very
// first send order's bound is already checked against a near-optimal
// incumbent. Lanes whose chain certificate fails simply contribute no seed
// — the exploration covers those return orders anyway, so seeding never
// affects the search result, only how early the bounds allow pruning. The
// enumeration polls ctx so a deadline cannot hide inside the seeding
// phase.
func seedPairIncumbent(ctx context.Context, core *searchCore, p *platform.Platform, model schedule.Model, n int, enabled bool) error {
	if !enabled {
		return nil
	}
	fifo, err := eval.NewBatch(model, false, n)
	if err != nil {
		return err
	}
	lifo, err := eval.NewBatch(model, true, n)
	if err != nil {
		return err
	}
	iter := 0
	err = forEachPermutation(n, func(perm []int, _ int) error {
		if iter&ctxPollMask == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		iter++
		if err := fifo.Add(p, perm); err != nil {
			return err
		}
		return lifo.Add(p, perm)
	})
	if err != nil {
		return err
	}
	fifo.Run()
	lifo.Run()
	for k := 0; k < fifo.Len(); k++ {
		if rho, ok := fifo.Throughput(k); ok && rho > core.bestRho {
			sc := fifo.Scenario(k)
			core.offer(rho, sc.Send, sc.Send)
		}
		if rho, ok := lifo.Throughput(k); ok && rho > core.bestRho {
			sc := lifo.Scenario(k)
			core.offer(rho, sc.Send, sc.Send.Reverse())
		}
	}
	return nil
}
