package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/eval"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// Limits on the exhaustive searches: p! scenario evaluations for FIFO/LIFO
// order search, (p!)² return-order nodes for permutation pairs. The order
// limit keeps worst cases around a few hundred thousand tiny evaluations;
// the pair limit rose from 5 to 7 when the branch-and-bound recursion over
// return orders replaced the flat inner loop — the prefix bound cuts whole
// σ2 subtrees, so the explored node count stays far below the (p!)²
// ceiling. Exact-rational pair searches keep the historical cap: they run
// the flat loop with seeding and pruning disabled (float64 bounds cannot
// certify exact comparisons), so (7!)² exact simplex solves would take
// days where the fail-fast error takes microseconds.
const (
	maxExhaustiveOrder     = 8
	maxExhaustivePair      = 7
	maxExhaustivePairExact = 5 // ExactRational: unpruned flat loop only
)

// pruneMargin is the relative safety margin of the pair search's
// upper-bound pruning: a subtree (or inner loop) is skipped only when its
// bound cannot beat the incumbent by more than floating-point noise, so
// pruning never changes the reported optimum beyond ~1e-12 relative.
const pruneMargin = 1e-12

// ctxPollMask throttles context polling in the search cores' hot loops:
// the context is checked every ctxPollMask+1 nodes, bounding the
// cancellation latency to a few microseconds of chain evaluations while
// keeping the per-node cost free of the atomic loads ctx.Err() performs.
const ctxPollMask = 0x3f

// disablePairSeeding switches off the batched FIFO/LIFO incumbent seeding
// of the pair searches. It exists for tests — the seeding property tests
// compare pruning counts with and without seeds, and the cancellation test
// steers a deadline into the recursion itself — and is not part of the
// package API.
var disablePairSeeding bool

// PairStats is a snapshot of the pair searches' cumulative
// instrumentation, kept as process-global atomics (searches may run
// concurrently; each search accumulates locally and flushes once). The
// counters make the branch-and-bound's effectiveness observable — the
// bench CI job fails if SubtreesPruned stops advancing on the reference
// platform, i.e. if the bound silently stopped firing.
type PairStats struct {
	// OuterPruned counts send orders whose entire return-order tree was
	// skipped: the flat search's SendBound prunes and the B&B's root-node
	// bound prunes land here.
	OuterPruned uint64
	// NodesExpanded counts branch-and-bound nodes whose children were
	// generated (including the per-σ1 roots).
	NodesExpanded uint64
	// SubtreesPruned counts children cut by the return-prefix bound —
	// whole subtrees of return orders discarded without evaluation
	// (leaves pruned at full depth count too).
	SubtreesPruned uint64
	// LeavesEvaluated counts complete return orders whose throughput was
	// actually computed (certified bound or fallback evaluation).
	LeavesEvaluated uint64
}

var (
	pairOuterPruned    atomic.Uint64
	pairNodesExpanded  atomic.Uint64
	pairSubtreesPruned atomic.Uint64
	pairLeavesEval     atomic.Uint64
)

// PairStatsSnapshot returns the cumulative pair-search counters. Callers
// interested in one search (benchmarks, the CI pruning gate) subtract two
// snapshots.
func PairStatsSnapshot() PairStats {
	return PairStats{
		OuterPruned:     pairOuterPruned.Load(),
		NodesExpanded:   pairNodesExpanded.Load(),
		SubtreesPruned:  pairSubtreesPruned.Load(),
		LeavesEvaluated: pairLeavesEval.Load(),
	}
}

// PairAlgo selects how the pair search explores the return-order space of
// each send order.
type PairAlgo int

const (
	// PairAuto picks the branch-and-bound recursion for every float64
	// backend and the flat double loop under ExactRational (whose exact
	// comparisons the float64 bounds cannot certify).
	PairAuto PairAlgo = iota
	// PairBB forces the branch-and-bound recursion over σ2 prefixes.
	PairBB
	// PairFlat forces the flat p!×p! double loop (the PR 3 search,
	// retained for agreement testing and as the exact-arithmetic path).
	PairFlat
)

// String names the algorithm ("auto", "bb", "flat").
func (a PairAlgo) String() string {
	switch a {
	case PairAuto:
		return "auto"
	case PairBB:
		return "bb"
	case PairFlat:
		return "flat"
	}
	return fmt.Sprintf("PairAlgo(%d)", int(a))
}

// forEachPermutation invokes fn with every permutation of {0..n-1},
// enumerated by the Steinhaus–Johnson–Trotter algorithm: each emitted
// order differs from its predecessor by exactly one transposition of
// ADJACENT positions. fn receives the left index of that transposition —
// the new order swapped positions (swapped, swapped+1) of the previous
// one — or -1 on the first call, which emits the identity. The adjacency
// contract is what makes incremental re-evaluation possible (eval.Sweep
// re-derives only the chain state the swap invalidated) and is pinned by
// a property test.
//
// The slice passed to fn is reused and mutated in place between calls: fn
// must copy it if it escapes the callback (Clone an Order, never retain
// the argument).
func forEachPermutation(n int, fn func(perm []int, swapped int) error) error {
	perm := make([]int, n)
	pos := make([]int, n) // pos[v]: current index of value v
	dir := make([]int, n) // dir[v]: direction v moves (±1)
	for i := range perm {
		perm[i], pos[i], dir[i] = i, i, -1
	}
	if err := fn(perm, -1); err != nil {
		return err
	}
	for {
		// Largest mobile value: the biggest v whose neighbour in dir[v]
		// exists and is smaller.
		v := -1
		for val := n - 1; val >= 0; val-- {
			k := pos[val]
			if t := k + dir[val]; t >= 0 && t < n && perm[t] < val {
				v = val
				break
			}
		}
		if v < 0 {
			return nil // no mobile value: all n! permutations emitted
		}
		k := pos[v]
		t := k + dir[v]
		perm[k], perm[t] = perm[t], perm[k]
		pos[v], pos[perm[k]] = t, k
		for val := v + 1; val < n; val++ {
			dir[val] = -dir[val]
		}
		left := k
		if t < k {
			left = t
		}
		if err := fn(perm, left); err != nil {
			return err
		}
	}
}

// searchCore is the node state shared by every order-space search in this
// package: throttled cancellation and incumbent tracking. The FIFO/LIFO
// order searches are depth-1 instances — every SJT emission is a leaf
// offered directly — while the pair searches thread the same core through
// the σ1 enumeration and (for the branch-and-bound) every node of the
// return-order recursion, which is what makes a WithTimeout deadline abort
// a deep subtree promptly instead of waiting for the next outer
// permutation.
type searchCore struct {
	ctx     context.Context
	iter    int
	bestRho float64
	best    platform.Order // winning send order
	bestRet platform.Order // winning return order (nil when implied)
}

func newSearchCore(ctx context.Context) *searchCore {
	return &searchCore{ctx: ctx, bestRho: -1}
}

// poll checks the context every ctxPollMask+1 calls. Every node of every
// search calls it, so cancellation latency is bounded by a few dozen chain
// evaluations anywhere in the tree.
func (s *searchCore) poll() error {
	if s.iter&ctxPollMask == 0 {
		if err := s.ctx.Err(); err != nil {
			return err
		}
	}
	s.iter++
	return nil
}

// prunable reports whether a subtree bound cannot beat the incumbent (with
// the pruning safety margin). Searches never prune before the first
// incumbent exists.
func (s *searchCore) prunable(bound float64) bool {
	return s.bestRho > 0 && bound <= s.bestRho*(1+pruneMargin)
}

// offer installs a strictly better leaf as the incumbent, cloning the live
// enumeration slices. ret may be nil for searches whose return order is
// implied by the send order (FIFO/LIFO).
func (s *searchCore) offer(rho float64, send, ret platform.Order) {
	if rho > s.bestRho {
		s.bestRho = rho
		s.best = send.Clone()
		s.bestRet = ret.Clone()
	}
}

// BestFIFOExhaustive tries every FIFO send order over all workers,
// evaluating the scenario for each, and returns the best schedule together
// with the winning order. It is the optimality oracle used to validate
// Theorem 1 on small platforms, and the fallback when the platform has no
// common z.
func BestFIFOExhaustive(p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, nil, err
	}
	return BestFIFOExhaustiveEval(context.Background(), p, model, mode)
}

// BestFIFOExhaustiveContext is BestFIFOExhaustive with cancellation: the
// factorial search aborts with ctx.Err() as soon as the context is done.
func BestFIFOExhaustiveContext(ctx context.Context, p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, nil, err
	}
	return BestFIFOExhaustiveEval(ctx, p, model, mode)
}

// BestFIFOExhaustiveEval is the cancellable FIFO order search with an
// explicit evaluation backend.
func BestFIFOExhaustiveEval(ctx context.Context, p *platform.Platform, model schedule.Model, mode eval.Mode) (*schedule.Schedule, platform.Order, error) {
	return bestOrderExhaustive(ctx, p, model, mode, false)
}

// BestLIFOExhaustive tries every LIFO send order (results in reverse).
func BestLIFOExhaustive(p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, nil, err
	}
	return BestLIFOExhaustiveEval(context.Background(), p, model, mode)
}

// BestLIFOExhaustiveContext is BestLIFOExhaustive with cancellation.
func BestLIFOExhaustiveContext(ctx context.Context, p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, nil, err
	}
	return BestLIFOExhaustiveEval(ctx, p, model, mode)
}

// BestLIFOExhaustiveEval is the cancellable LIFO order search with an
// explicit evaluation backend.
func BestLIFOExhaustiveEval(ctx context.Context, p *platform.Platform, model schedule.Model, mode eval.Mode) (*schedule.Schedule, platform.Order, error) {
	return bestOrderExhaustive(ctx, p, model, mode, true)
}

// bestOrderExhaustive enumerates all p! send orders — the depth-1 instance
// of the search core: every SJT emission is a leaf offered straight to the
// incumbent. Under the Auto backend the Steinhaus–Johnson–Trotter
// enumeration drives an incremental eval.Sweep: each adjacent
// transposition re-derives only the invalidated prefix/suffix state of the
// FIFO/LIFO load-and-dual chains (O(p−i) after a swap at position i
// instead of O(p) from scratch), and a permutation is handed to the full
// tiered pipeline only when the chain certificate fails (port-bound or
// resource-selecting optima). Other backends — and the certificate
// failures — evaluate through the raw throughput fast path of one pooled
// eval session. Only the winning order is re-evaluated through the
// verified schedule-producing path.
func bestOrderExhaustive(ctx context.Context, p *platform.Platform, model schedule.Model, mode eval.Mode, lifo bool) (*schedule.Schedule, platform.Order, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	n := p.P()
	if n > maxExhaustiveOrder {
		return nil, nil, fmt.Errorf("core: exhaustive order search limited to %d workers, platform has %d", maxExhaustiveOrder, n)
	}
	sess := eval.GetSession()
	defer sess.Release()
	sc := eval.Scenario{Platform: p, Model: model}
	reversed := make(platform.Order, n) // scratch for the LIFO return order
	core := newSearchCore(ctx)
	var sweep *eval.Sweep
	useSweep := mode == eval.Auto
	err := forEachPermutation(n, func(perm []int, swapped int) error {
		if err := core.poll(); err != nil {
			return err
		}
		if useSweep {
			if swapped < 0 {
				var err error
				if sweep, err = eval.NewSweep(p, perm, model, lifo); err != nil {
					return err
				}
			} else {
				sweep.Delta(swapped)
			}
			// ThroughputBound may return a certified upper bound (≤ the
			// incumbent) instead of the exact optimum when the cached dual
			// multipliers prove this order cannot beat the incumbent;
			// either way a pruned order never becomes the winner.
			if rho, ok := sweep.ThroughputBound(core.bestRho); ok {
				core.offer(rho, platform.Order(perm), nil)
				return nil
			}
			// Certificate failure: this permutation's optimum is not the
			// all-tight chain; evaluate it through the full tiers below.
		}
		sc.Send = perm
		if lifo {
			for k, v := range perm {
				reversed[n-1-k] = v
			}
			sc.Return = reversed
		} else {
			sc.Return = perm
		}
		rho, err := sess.ThroughputTrusted(sc, mode)
		if err != nil {
			return err
		}
		core.offer(rho, platform.Order(perm), nil)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	bestOrder := core.best
	sc.Send = bestOrder
	if lifo {
		sc.Return = bestOrder.Reverse()
	} else {
		sc.Return = bestOrder
	}
	best, err := sess.Evaluate(sc, mode)
	if err != nil {
		return nil, nil, err
	}
	return best, bestOrder, nil
}

// PairResult is the outcome of the general permutation-pair search.
type PairResult struct {
	Schedule *schedule.Schedule
	Send     platform.Order
	Return   platform.Order
}

// BestPairExhaustive searches every (σ1, σ2) permutation pair over all
// workers — the general scheduling problem whose complexity the paper
// leaves open (and conjectures NP-hard). Limited to small platforms; used
// to probe how far the optimal FIFO/LIFO schedules sit from the
// unrestricted optimum.
func BestPairExhaustive(p *platform.Platform, model schedule.Model, arith Arith) (*PairResult, error) {
	return BestPairExhaustiveContext(context.Background(), p, model, arith)
}

// BestPairExhaustiveContext is BestPairExhaustive with cancellation: the
// search polls the context throughout — including inside the return-order
// recursion — and aborts with ctx.Err() once it is done.
func BestPairExhaustiveContext(ctx context.Context, p *platform.Platform, model schedule.Model, arith Arith) (*PairResult, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, err
	}
	return BestPairExhaustiveEval(ctx, p, model, mode)
}

// BestPairExhaustiveEval is the cancellable pair search with an explicit
// evaluation backend, exploring with the default algorithm (PairAuto:
// branch-and-bound for float64 backends, the flat loop under
// ExactRational).
func BestPairExhaustiveEval(ctx context.Context, p *platform.Platform, model schedule.Model, mode eval.Mode) (*PairResult, error) {
	return BestPairExhaustiveAlgo(ctx, p, model, mode, PairAuto)
}

// BestPairExhaustiveAlgo is the pair search with an explicit exploration
// algorithm. Both algorithms share the incumbent seeding (the FIFO and
// LIFO return orders of every send permutation, batch-evaluated up front
// in structure-of-arrays lockstep, raise the incumbent before any
// exploration) and agree on the reported optimum to floating-point noise;
// they differ in how the p! return orders of a send order are covered:
//
//   - PairFlat evaluates every return order against the shared send-prefix
//     system (eval.Session.FixedSend), skipping whole inner loops whose
//     send-order relaxation (eval.Session.SendBound) cannot beat the
//     incumbent;
//   - PairBB explores return orders as a tree, committing the last
//     returner first, and discards every subtree whose prefix relaxation
//     (eval.ReturnPrefix) cannot beat the incumbent — pruning WITHIN inner
//     loops, which is what lifts the worker ceiling from 5 to 7.
//
// Seeding and pruning are disabled under ExactRational, where the seeds
// and the bounds (float64 computations) could not certify exact
// comparisons; PairBB is rejected there for the same reason.
func BestPairExhaustiveAlgo(ctx context.Context, p *platform.Platform, model schedule.Model, mode eval.Mode, algo PairAlgo) (*PairResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.P()
	if n > maxExhaustivePair {
		return nil, fmt.Errorf("core: exhaustive pair search limited to %d workers, platform has %d", maxExhaustivePair, n)
	}
	if mode == eval.ExactRational && n > maxExhaustivePairExact {
		return nil, fmt.Errorf("core: exact-rational pair search limited to %d workers (no pruning certifies exact comparisons), platform has %d", maxExhaustivePairExact, n)
	}
	switch algo {
	case PairAuto:
		if mode == eval.ExactRational {
			algo = PairFlat
		} else {
			algo = PairBB
		}
	case PairBB:
		if mode == eval.ExactRational {
			return nil, fmt.Errorf("core: pair-bb requires a float64 evaluation backend (the prefix bounds cannot certify exact-rational comparisons); use pair-flat with exact")
		}
	case PairFlat:
		// Always available.
	default:
		return nil, fmt.Errorf("core: unknown pair-search algorithm %v", algo)
	}
	sess := eval.GetSession()
	defer sess.Release()
	core := newSearchCore(ctx)
	prune := mode != eval.ExactRational
	if err := seedPairIncumbent(ctx, core, p, model, n, prune && !disablePairSeeding); err != nil {
		return nil, err
	}
	var err error
	if algo == PairBB {
		err = pairSearchBB(core, sess, p, model, mode, n)
	} else {
		err = pairSearchFlat(core, sess, p, model, mode, n, prune)
	}
	if err != nil {
		return nil, err
	}
	bestSend, bestRet := core.best, core.bestRet
	best, err := sess.Evaluate(eval.Scenario{Platform: p, Send: bestSend, Return: bestRet, Model: model}, mode)
	if err != nil {
		return nil, err
	}
	return &PairResult{Schedule: best, Send: bestSend, Return: bestRet}, nil
}

// pairSearchFlat is the flat double loop: for each send order the
// send-prefix half of the tight system is assembled once
// (eval.Session.FixedSend) and shared by all p! return orders, and a send
// order whose return-order-independent relaxation (eval.Session.SendBound)
// cannot beat the incumbent skips its entire inner loop.
func pairSearchFlat(core *searchCore, sess *eval.Session, p *platform.Platform, model schedule.Model, mode eval.Mode, n int, prune bool) error {
	return forEachPermutation(n, func(sendPerm []int, _ int) error {
		if err := core.ctx.Err(); err != nil {
			return err
		}
		send := platform.Order(sendPerm)
		if prune && core.bestRho > 0 {
			bound, err := sess.SendBound(p, send, model)
			if err != nil {
				return err
			}
			if core.prunable(bound) {
				pairOuterPruned.Add(1)
				return nil // no σ2 under this σ1 can beat the incumbent
			}
		}
		fixed, err := sess.FixedSend(p, send, model, mode)
		if err != nil {
			return err
		}
		return forEachPermutation(n, func(retPerm []int, _ int) error {
			if err := core.poll(); err != nil {
				return err
			}
			rho, err := fixed.Throughput(retPerm)
			if err != nil {
				return err
			}
			core.offer(rho, send, platform.Order(retPerm))
			return nil
		})
	})
}

// pairSearchBB drives the branch-and-bound: the outer SJT enumeration over
// send orders, a pruned prefix recursion over return orders within each.
// Counter flushes happen exactly once, including on cancellation.
func pairSearchBB(core *searchCore, sess *eval.Session, p *platform.Platform, model schedule.Model, mode eval.Mode, n int) error {
	rp, err := sess.NewReturnPrefix(p, model, mode)
	if err != nil {
		return err
	}
	bb := &pairBB{core: core, rp: rp, q: n}
	defer bb.flush()
	return forEachPermutation(n, func(sendPerm []int, _ int) error {
		if err := core.poll(); err != nil {
			return err
		}
		bb.send = platform.Order(sendPerm)
		if err := rp.Reset(bb.send); err != nil {
			return err
		}
		// Root bound: the same relaxation SendBound solves as an LP, here
		// one triangular system. A send order that cannot beat the
		// incumbent skips its whole return-order tree.
		bound := math.Inf(1)
		if b, _, ok := rp.Bound(); ok {
			if core.prunable(b) {
				bb.outerPruned++
				return nil
			}
			bound = b
		}
		bb.nodes++
		return bb.searchNode(bound)
	})
}

// pairBB is one branch-and-bound run: the shared search core, the eval
// prefix state and locally accumulated counters (flushed to the global
// atomics once per search).
type pairBB struct {
	core *searchCore
	rp   *eval.ReturnPrefix
	send platform.Order
	q    int

	outerPruned, nodes, pruned, leaves uint64
}

func (b *pairBB) flush() {
	pairOuterPruned.Add(b.outerPruned)
	pairNodesExpanded.Add(b.nodes)
	pairSubtreesPruned.Add(b.pruned)
	pairLeavesEval.Add(b.leaves)
}

// searchNode expands one node: every still-open worker is committed in
// turn to the deepest open return position, bounded, and either pruned
// (the whole subtree of return orders sharing that prefix is discarded),
// recursed into, or — at full depth — evaluated and offered to the
// incumbent. bound is the tightest certified bound along the path; a node
// whose own bound fails to compute inherits it (admissible by the bound's
// monotonicity in prefix length).
func (b *pairBB) searchNode(bound float64) error {
	if err := b.core.poll(); err != nil {
		return err
	}
	for pos := 0; pos < b.q; pos++ {
		if !b.rp.Open(pos) {
			continue
		}
		b.rp.Push(pos)
		nb := bound
		cb, exact, ok := b.rp.Bound()
		if ok && cb < nb {
			nb = cb
		}
		leaf := b.rp.Depth() == b.q
		switch {
		case b.core.prunable(nb):
			b.pruned++
		case leaf:
			b.leaves++
			rho := cb
			if !(ok && exact) {
				var err error
				if rho, err = b.rp.LeafThroughput(); err != nil {
					b.rp.Pop()
					return err
				}
			}
			b.core.offer(rho, b.send, b.rp.ReturnOrder())
		default:
			b.nodes++
			if err := b.searchNode(nb); err != nil {
				b.rp.Pop()
				return err
			}
		}
		b.rp.Pop()
	}
	return nil
}

// seedPairIncumbent batch-evaluates the FIFO and LIFO scenarios of every
// send permutation in enumeration order (the structure-of-arrays chains
// run 8 permutations per lockstep chunk) and raises the incumbent to the
// best certified seed before any exploration starts: every seed is an
// achieved throughput of a scenario inside the search space, so the very
// first send order's bound is already checked against a near-optimal
// incumbent. Lanes whose chain certificate fails simply contribute no seed
// — the exploration covers those return orders anyway, so seeding never
// affects the search result, only how early the bounds allow pruning. The
// enumeration polls ctx so a deadline cannot hide inside the seeding
// phase.
func seedPairIncumbent(ctx context.Context, core *searchCore, p *platform.Platform, model schedule.Model, n int, enabled bool) error {
	if !enabled {
		return nil
	}
	fifo, err := eval.NewBatch(model, false, n)
	if err != nil {
		return err
	}
	lifo, err := eval.NewBatch(model, true, n)
	if err != nil {
		return err
	}
	iter := 0
	err = forEachPermutation(n, func(perm []int, _ int) error {
		if iter&ctxPollMask == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		iter++
		if err := fifo.Add(p, perm); err != nil {
			return err
		}
		return lifo.Add(p, perm)
	})
	if err != nil {
		return err
	}
	fifo.Run()
	lifo.Run()
	for k := 0; k < fifo.Len(); k++ {
		if rho, ok := fifo.Throughput(k); ok && rho > core.bestRho {
			sc := fifo.Scenario(k)
			core.offer(rho, sc.Send, sc.Send)
		}
		if rho, ok := lifo.Throughput(k); ok && rho > core.bestRho {
			sc := lifo.Scenario(k)
			core.offer(rho, sc.Send, sc.Send.Reverse())
		}
	}
	return nil
}
