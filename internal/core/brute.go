package core

import (
	"context"
	"fmt"

	"repro/internal/eval"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// Limits on the exhaustive searches: p! scenario evaluations for FIFO/LIFO
// order search, (p!)² for permutation pairs. The limits keep worst cases
// around a few hundred thousand tiny evaluations.
const (
	maxExhaustiveOrder = 8
	maxExhaustivePair  = 5
)

// pruneMargin is the relative safety margin of the pair search's
// upper-bound pruning: an inner loop is skipped only when its send-order
// bound cannot beat the incumbent by more than floating-point noise, so
// pruning never changes the reported optimum beyond ~1e-12 relative.
const pruneMargin = 1e-12

// forEachPermutation invokes fn with every permutation of {0..n-1}. The
// slice passed to fn is reused; fn must copy it if it escapes. Heap's
// algorithm, iterative.
func forEachPermutation(n int, fn func([]int) error) error {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	c := make([]int, n)
	if err := fn(perm); err != nil {
		return err
	}
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			if err := fn(perm); err != nil {
				return err
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
	return nil
}

// BestFIFOExhaustive tries every FIFO send order over all workers,
// evaluating the scenario for each, and returns the best schedule together
// with the winning order. It is the optimality oracle used to validate
// Theorem 1 on small platforms, and the fallback when the platform has no
// common z.
func BestFIFOExhaustive(p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, nil, err
	}
	return BestFIFOExhaustiveEval(context.Background(), p, model, mode)
}

// BestFIFOExhaustiveContext is BestFIFOExhaustive with cancellation: the
// factorial search aborts with ctx.Err() as soon as the context is done.
func BestFIFOExhaustiveContext(ctx context.Context, p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, nil, err
	}
	return BestFIFOExhaustiveEval(ctx, p, model, mode)
}

// BestFIFOExhaustiveEval is the cancellable FIFO order search with an
// explicit evaluation backend.
func BestFIFOExhaustiveEval(ctx context.Context, p *platform.Platform, model schedule.Model, mode eval.Mode) (*schedule.Schedule, platform.Order, error) {
	return bestOrderExhaustive(ctx, p, model, mode, false)
}

// BestLIFOExhaustive tries every LIFO send order (results in reverse).
func BestLIFOExhaustive(p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, nil, err
	}
	return BestLIFOExhaustiveEval(context.Background(), p, model, mode)
}

// BestLIFOExhaustiveContext is BestLIFOExhaustive with cancellation.
func BestLIFOExhaustiveContext(ctx context.Context, p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, nil, err
	}
	return BestLIFOExhaustiveEval(ctx, p, model, mode)
}

// BestLIFOExhaustiveEval is the cancellable LIFO order search with an
// explicit evaluation backend.
func BestLIFOExhaustiveEval(ctx context.Context, p *platform.Platform, model schedule.Model, mode eval.Mode) (*schedule.Schedule, platform.Order, error) {
	return bestOrderExhaustive(ctx, p, model, mode, true)
}

// bestOrderExhaustive enumerates all p! send orders. Each candidate is
// evaluated through the raw throughput fast path of one pooled eval
// session (closed-form chains for the FIFO/LIFO shapes, simplex only when
// a certificate fails); only the winning order is re-evaluated through the
// verified schedule-producing path.
func bestOrderExhaustive(ctx context.Context, p *platform.Platform, model schedule.Model, mode eval.Mode, lifo bool) (*schedule.Schedule, platform.Order, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	n := p.P()
	if n > maxExhaustiveOrder {
		return nil, nil, fmt.Errorf("core: exhaustive order search limited to %d workers, platform has %d", maxExhaustiveOrder, n)
	}
	sess := eval.GetSession()
	defer sess.Release()
	sc := eval.Scenario{Platform: p, Model: model}
	reversed := make(platform.Order, n) // scratch for the LIFO return order
	bestRho := -1.0
	var bestOrder platform.Order
	err := forEachPermutation(n, func(perm []int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		sc.Send = perm
		if lifo {
			for k, v := range perm {
				reversed[n-1-k] = v
			}
			sc.Return = reversed
		} else {
			sc.Return = perm
		}
		rho, err := sess.ThroughputTrusted(sc, mode)
		if err != nil {
			return err
		}
		if rho > bestRho {
			bestRho = rho
			bestOrder = platform.Order(perm).Clone()
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sc.Send = bestOrder
	if lifo {
		sc.Return = bestOrder.Reverse()
	} else {
		sc.Return = bestOrder
	}
	best, err := sess.Evaluate(sc, mode)
	if err != nil {
		return nil, nil, err
	}
	return best, bestOrder, nil
}

// PairResult is the outcome of the general permutation-pair search.
type PairResult struct {
	Schedule *schedule.Schedule
	Send     platform.Order
	Return   platform.Order
}

// BestPairExhaustive searches every (σ1, σ2) permutation pair over all
// workers — the general scheduling problem whose complexity the paper
// leaves open (and conjectures NP-hard). Limited to very small platforms;
// used to probe how far the optimal FIFO/LIFO schedules sit from the
// unrestricted optimum.
func BestPairExhaustive(p *platform.Platform, model schedule.Model, arith Arith) (*PairResult, error) {
	return BestPairExhaustiveContext(context.Background(), p, model, arith)
}

// BestPairExhaustiveContext is BestPairExhaustive with cancellation: the
// (p!)² search checks the context between evaluations and aborts with
// ctx.Err() once it is done.
func BestPairExhaustiveContext(ctx context.Context, p *platform.Platform, model schedule.Model, arith Arith) (*PairResult, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, err
	}
	return BestPairExhaustiveEval(ctx, p, model, mode)
}

// BestPairExhaustiveEval is the cancellable pair search with an explicit
// evaluation backend. Two structural optimisations keep the (p!)² loop
// from re-deriving shared work:
//
//   - per-prefix reuse: for each send order the send-prefix half of the
//     tight system is assembled once (eval.Session.FixedSend) and shared
//     by all p! return orders;
//   - upper-bound pruning: before entering an inner loop, the send order's
//     return-order-independent relaxation (eval.Session.SendBound) is
//     compared against the incumbent — a send order whose bound cannot
//     beat the best throughput found so far skips its entire inner loop.
//
// Pruning is disabled under ExactRational, where the bound (a float64 LP)
// could not certify exact comparisons.
func BestPairExhaustiveEval(ctx context.Context, p *platform.Platform, model schedule.Model, mode eval.Mode) (*PairResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.P()
	if n > maxExhaustivePair {
		return nil, fmt.Errorf("core: exhaustive pair search limited to %d workers, platform has %d", maxExhaustivePair, n)
	}
	sess := eval.GetSession()
	defer sess.Release()
	bestRho := -1.0
	var bestSend, bestRet platform.Order
	prune := mode != eval.ExactRational
	err := forEachPermutation(n, func(sendPerm []int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		send := platform.Order(sendPerm)
		if prune && bestRho > 0 {
			bound, err := sess.SendBound(p, send, model)
			if err != nil {
				return err
			}
			if bound <= bestRho*(1+pruneMargin) {
				return nil // no σ2 under this σ1 can beat the incumbent
			}
		}
		fixed, err := sess.FixedSend(p, send, model, mode)
		if err != nil {
			return err
		}
		return forEachPermutation(n, func(retPerm []int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			rho, err := fixed.Throughput(retPerm)
			if err != nil {
				return err
			}
			if rho > bestRho {
				bestRho = rho
				bestSend = send.Clone()
				bestRet = platform.Order(retPerm).Clone()
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	best, err := sess.Evaluate(eval.Scenario{Platform: p, Send: bestSend, Return: bestRet, Model: model}, mode)
	if err != nil {
		return nil, err
	}
	return &PairResult{Schedule: best, Send: bestSend, Return: bestRet}, nil
}
