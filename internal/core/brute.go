package core

import (
	"context"
	"fmt"

	"repro/internal/platform"
	"repro/internal/schedule"
)

// Limits on the exhaustive searches: p! scenario LPs for FIFO/LIFO order
// search, (p!)² for permutation pairs. The limits keep worst cases around a
// few hundred thousand tiny LP solves.
const (
	maxExhaustiveOrder = 8
	maxExhaustivePair  = 5
)

// forEachPermutation invokes fn with every permutation of {0..n-1}. The
// slice passed to fn is reused; fn must copy it if it escapes. Heap's
// algorithm, iterative.
func forEachPermutation(n int, fn func([]int) error) error {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	c := make([]int, n)
	if err := fn(perm); err != nil {
		return err
	}
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			if err := fn(perm); err != nil {
				return err
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
	return nil
}

// BestFIFOExhaustive tries every FIFO send order over all workers, solving
// the scenario LP for each, and returns the best schedule together with the
// winning order. It is the optimality oracle used to validate Theorem 1 on
// small platforms, and the fallback when the platform has no common z.
func BestFIFOExhaustive(p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	return bestOrderExhaustive(context.Background(), p, model, arith, false)
}

// BestFIFOExhaustiveContext is BestFIFOExhaustive with cancellation: the
// factorial search aborts with ctx.Err() as soon as the context is done.
func BestFIFOExhaustiveContext(ctx context.Context, p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	return bestOrderExhaustive(ctx, p, model, arith, false)
}

// BestLIFOExhaustive tries every LIFO send order (results in reverse).
func BestLIFOExhaustive(p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	return bestOrderExhaustive(context.Background(), p, model, arith, true)
}

// BestLIFOExhaustiveContext is BestLIFOExhaustive with cancellation.
func BestLIFOExhaustiveContext(ctx context.Context, p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	return bestOrderExhaustive(ctx, p, model, arith, true)
}

func bestOrderExhaustive(ctx context.Context, p *platform.Platform, model schedule.Model, arith Arith, lifo bool) (*schedule.Schedule, platform.Order, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	n := p.P()
	if n > maxExhaustiveOrder {
		return nil, nil, fmt.Errorf("core: exhaustive order search limited to %d workers, platform has %d", maxExhaustiveOrder, n)
	}
	var best *schedule.Schedule
	var bestOrder platform.Order
	err := forEachPermutation(n, func(perm []int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		send := platform.Order(perm).Clone()
		ret := send
		if lifo {
			ret = send.Reverse()
		}
		s, err := SolveScenario(p, send, ret, model, arith)
		if err != nil {
			return err
		}
		if best == nil || s.Throughput() > best.Throughput() {
			best = s
			bestOrder = send
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return best, bestOrder, nil
}

// PairResult is the outcome of the general permutation-pair search.
type PairResult struct {
	Schedule *schedule.Schedule
	Send     platform.Order
	Return   platform.Order
}

// BestPairExhaustive searches every (σ1, σ2) permutation pair over all
// workers — the general scheduling problem whose complexity the paper
// leaves open (and conjectures NP-hard). Limited to very small platforms;
// used to probe how far the optimal FIFO/LIFO schedules sit from the
// unrestricted optimum.
func BestPairExhaustive(p *platform.Platform, model schedule.Model, arith Arith) (*PairResult, error) {
	return BestPairExhaustiveContext(context.Background(), p, model, arith)
}

// BestPairExhaustiveContext is BestPairExhaustive with cancellation: the
// (p!)² search checks the context between scenario LPs and aborts with
// ctx.Err() once it is done.
func BestPairExhaustiveContext(ctx context.Context, p *platform.Platform, model schedule.Model, arith Arith) (*PairResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.P()
	if n > maxExhaustivePair {
		return nil, fmt.Errorf("core: exhaustive pair search limited to %d workers, platform has %d", maxExhaustivePair, n)
	}
	var best *PairResult
	err := forEachPermutation(n, func(sendPerm []int) error {
		send := platform.Order(sendPerm).Clone()
		return forEachPermutation(n, func(retPerm []int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			ret := platform.Order(retPerm).Clone()
			s, err := SolveScenario(p, send, ret, model, arith)
			if err != nil {
				return err
			}
			if best == nil || s.Throughput() > best.Schedule.Throughput() {
				best = &PairResult{Schedule: s, Send: send, Return: ret}
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return best, nil
}
