package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/eval"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// Limits on the exhaustive searches: p! scenario evaluations for FIFO/LIFO
// order search, (p!)² for permutation pairs. The limits keep worst cases
// around a few hundred thousand tiny evaluations.
const (
	maxExhaustiveOrder = 8
	maxExhaustivePair  = 5
)

// pruneMargin is the relative safety margin of the pair search's
// upper-bound pruning: an inner loop is skipped only when its send-order
// bound cannot beat the incumbent by more than floating-point noise, so
// pruning never changes the reported optimum beyond ~1e-12 relative.
const pruneMargin = 1e-12

// ctxPollMask throttles context polling in the order search's inner loop:
// the context is checked every ctxPollMask+1 permutations, bounding the
// cancellation latency to a few microseconds of chain evaluations while
// keeping the per-permutation cost free of the atomic loads ctx.Err()
// performs.
const ctxPollMask = 0x3f

// Pair-search instrumentation. pairPrunedInner counts inner loops skipped
// whole by the send-bound pruning (cumulative across searches; atomic, as
// searches may run concurrently). disablePairSeeding switches off the
// batched FIFO/LIFO incumbent seeding. Both exist for tests — the seeding
// property tests compare pruning counts with and without seeds — and are
// not part of the package API.
var (
	pairPrunedInner    atomic.Uint64
	disablePairSeeding bool
)

// forEachPermutation invokes fn with every permutation of {0..n-1},
// enumerated by the Steinhaus–Johnson–Trotter algorithm: each emitted
// order differs from its predecessor by exactly one transposition of
// ADJACENT positions. fn receives the left index of that transposition —
// the new order swapped positions (swapped, swapped+1) of the previous
// one — or -1 on the first call, which emits the identity. The adjacency
// contract is what makes incremental re-evaluation possible (eval.Sweep
// re-derives only the chain state the swap invalidated) and is pinned by
// a property test.
//
// The slice passed to fn is reused and mutated in place between calls: fn
// must copy it if it escapes the callback (Clone an Order, never retain
// the argument).
func forEachPermutation(n int, fn func(perm []int, swapped int) error) error {
	perm := make([]int, n)
	pos := make([]int, n) // pos[v]: current index of value v
	dir := make([]int, n) // dir[v]: direction v moves (±1)
	for i := range perm {
		perm[i], pos[i], dir[i] = i, i, -1
	}
	if err := fn(perm, -1); err != nil {
		return err
	}
	for {
		// Largest mobile value: the biggest v whose neighbour in dir[v]
		// exists and is smaller.
		v := -1
		for val := n - 1; val >= 0; val-- {
			k := pos[val]
			if t := k + dir[val]; t >= 0 && t < n && perm[t] < val {
				v = val
				break
			}
		}
		if v < 0 {
			return nil // no mobile value: all n! permutations emitted
		}
		k := pos[v]
		t := k + dir[v]
		perm[k], perm[t] = perm[t], perm[k]
		pos[v], pos[perm[k]] = t, k
		for val := v + 1; val < n; val++ {
			dir[val] = -dir[val]
		}
		left := k
		if t < k {
			left = t
		}
		if err := fn(perm, left); err != nil {
			return err
		}
	}
}

// BestFIFOExhaustive tries every FIFO send order over all workers,
// evaluating the scenario for each, and returns the best schedule together
// with the winning order. It is the optimality oracle used to validate
// Theorem 1 on small platforms, and the fallback when the platform has no
// common z.
func BestFIFOExhaustive(p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, nil, err
	}
	return BestFIFOExhaustiveEval(context.Background(), p, model, mode)
}

// BestFIFOExhaustiveContext is BestFIFOExhaustive with cancellation: the
// factorial search aborts with ctx.Err() as soon as the context is done.
func BestFIFOExhaustiveContext(ctx context.Context, p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, nil, err
	}
	return BestFIFOExhaustiveEval(ctx, p, model, mode)
}

// BestFIFOExhaustiveEval is the cancellable FIFO order search with an
// explicit evaluation backend.
func BestFIFOExhaustiveEval(ctx context.Context, p *platform.Platform, model schedule.Model, mode eval.Mode) (*schedule.Schedule, platform.Order, error) {
	return bestOrderExhaustive(ctx, p, model, mode, false)
}

// BestLIFOExhaustive tries every LIFO send order (results in reverse).
func BestLIFOExhaustive(p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, nil, err
	}
	return BestLIFOExhaustiveEval(context.Background(), p, model, mode)
}

// BestLIFOExhaustiveContext is BestLIFOExhaustive with cancellation.
func BestLIFOExhaustiveContext(ctx context.Context, p *platform.Platform, model schedule.Model, arith Arith) (*schedule.Schedule, platform.Order, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, nil, err
	}
	return BestLIFOExhaustiveEval(ctx, p, model, mode)
}

// BestLIFOExhaustiveEval is the cancellable LIFO order search with an
// explicit evaluation backend.
func BestLIFOExhaustiveEval(ctx context.Context, p *platform.Platform, model schedule.Model, mode eval.Mode) (*schedule.Schedule, platform.Order, error) {
	return bestOrderExhaustive(ctx, p, model, mode, true)
}

// bestOrderExhaustive enumerates all p! send orders. Under the Auto
// backend the Steinhaus–Johnson–Trotter enumeration drives an incremental
// eval.Sweep: each adjacent transposition re-derives only the invalidated
// prefix/suffix state of the FIFO/LIFO load-and-dual chains (O(p−i) after
// a swap at position i instead of O(p) from scratch), and a permutation is
// handed to the full tiered pipeline only when the chain certificate
// fails (port-bound or resource-selecting optima). Other backends — and
// the certificate failures — evaluate through the raw throughput fast
// path of one pooled eval session. Only the winning order is re-evaluated
// through the verified schedule-producing path.
func bestOrderExhaustive(ctx context.Context, p *platform.Platform, model schedule.Model, mode eval.Mode, lifo bool) (*schedule.Schedule, platform.Order, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	n := p.P()
	if n > maxExhaustiveOrder {
		return nil, nil, fmt.Errorf("core: exhaustive order search limited to %d workers, platform has %d", maxExhaustiveOrder, n)
	}
	sess := eval.GetSession()
	defer sess.Release()
	sc := eval.Scenario{Platform: p, Model: model}
	reversed := make(platform.Order, n) // scratch for the LIFO return order
	bestRho := -1.0
	var bestOrder platform.Order
	var sweep *eval.Sweep
	useSweep := mode == eval.Auto
	iter := 0
	err := forEachPermutation(n, func(perm []int, swapped int) error {
		if iter&ctxPollMask == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		iter++
		if useSweep {
			if swapped < 0 {
				var err error
				if sweep, err = eval.NewSweep(p, perm, model, lifo); err != nil {
					return err
				}
			} else {
				sweep.Delta(swapped)
			}
			// ThroughputBound may return a certified upper bound (≤ bestRho)
			// instead of the exact optimum when the cached dual multipliers
			// prove this order cannot beat the incumbent; either way a
			// pruned order never becomes the winner.
			if rho, ok := sweep.ThroughputBound(bestRho); ok {
				if rho > bestRho {
					bestRho = rho
					bestOrder = platform.Order(perm).Clone()
				}
				return nil
			}
			// Certificate failure: this permutation's optimum is not the
			// all-tight chain; evaluate it through the full tiers below.
		}
		sc.Send = perm
		if lifo {
			for k, v := range perm {
				reversed[n-1-k] = v
			}
			sc.Return = reversed
		} else {
			sc.Return = perm
		}
		rho, err := sess.ThroughputTrusted(sc, mode)
		if err != nil {
			return err
		}
		if rho > bestRho {
			bestRho = rho
			bestOrder = platform.Order(perm).Clone()
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sc.Send = bestOrder
	if lifo {
		sc.Return = bestOrder.Reverse()
	} else {
		sc.Return = bestOrder
	}
	best, err := sess.Evaluate(sc, mode)
	if err != nil {
		return nil, nil, err
	}
	return best, bestOrder, nil
}

// PairResult is the outcome of the general permutation-pair search.
type PairResult struct {
	Schedule *schedule.Schedule
	Send     platform.Order
	Return   platform.Order
}

// BestPairExhaustive searches every (σ1, σ2) permutation pair over all
// workers — the general scheduling problem whose complexity the paper
// leaves open (and conjectures NP-hard). Limited to very small platforms;
// used to probe how far the optimal FIFO/LIFO schedules sit from the
// unrestricted optimum.
func BestPairExhaustive(p *platform.Platform, model schedule.Model, arith Arith) (*PairResult, error) {
	return BestPairExhaustiveContext(context.Background(), p, model, arith)
}

// BestPairExhaustiveContext is BestPairExhaustive with cancellation: the
// (p!)² search checks the context between evaluations and aborts with
// ctx.Err() once it is done.
func BestPairExhaustiveContext(ctx context.Context, p *platform.Platform, model schedule.Model, arith Arith) (*PairResult, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, err
	}
	return BestPairExhaustiveEval(ctx, p, model, mode)
}

// BestPairExhaustiveEval is the cancellable pair search with an explicit
// evaluation backend. Three structural optimisations keep the (p!)² loop
// from re-deriving shared work:
//
//   - incumbent seeding: before the outer loop starts, the FIFO and LIFO
//     return orders of every send permutation — the two return orders
//     with O(p) closed-form chains — are evaluated up front by a
//     structure-of-arrays eval.Batch in lockstep; each send permutation's
//     certified seeds raise the incumbent before its inner loop runs, so
//     the bound below can prune from the very first send order;
//   - per-prefix reuse: for each send order the send-prefix half of the
//     tight system is assembled once (eval.Session.FixedSend) and shared
//     by all p! return orders;
//   - upper-bound pruning: before entering an inner loop, the send order's
//     return-order-independent relaxation (eval.Session.SendBound) is
//     compared against the incumbent — a send order whose bound cannot
//     beat the best throughput found so far skips its entire inner loop.
//
// Seeding and pruning are disabled under ExactRational, where the seeds
// and the bound (float64 computations) could not certify exact
// comparisons.
func BestPairExhaustiveEval(ctx context.Context, p *platform.Platform, model schedule.Model, mode eval.Mode) (*PairResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.P()
	if n > maxExhaustivePair {
		return nil, fmt.Errorf("core: exhaustive pair search limited to %d workers, platform has %d", maxExhaustivePair, n)
	}
	sess := eval.GetSession()
	defer sess.Release()
	bestRho := -1.0
	var bestSend, bestRet platform.Order
	prune := mode != eval.ExactRational
	fifoSeeds, lifoSeeds, err := pairSeeds(p, model, n, prune && !disablePairSeeding)
	if err != nil {
		return nil, err
	}
	if fifoSeeds != nil {
		// Raise the incumbent to the best certified seed before the outer
		// loop starts: every seed is an achieved throughput of a scenario
		// inside the search space, so the very first send order's bound is
		// already checked against a near-optimal incumbent.
		for k := 0; k < fifoSeeds.Len(); k++ {
			if rho, ok := fifoSeeds.Throughput(k); ok && rho > bestRho {
				bestRho = rho
				bestSend = fifoSeeds.Scenario(k).Send.Clone()
				bestRet = bestSend
			}
			if rho, ok := lifoSeeds.Throughput(k); ok && rho > bestRho {
				bestRho = rho
				bestSend = lifoSeeds.Scenario(k).Send.Clone()
				bestRet = bestSend.Reverse()
			}
		}
	}
	err = forEachPermutation(n, func(sendPerm []int, _ int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		send := platform.Order(sendPerm)
		if prune && bestRho > 0 {
			bound, err := sess.SendBound(p, send, model)
			if err != nil {
				return err
			}
			if bound <= bestRho*(1+pruneMargin) {
				pairPrunedInner.Add(1)
				return nil // no σ2 under this σ1 can beat the incumbent
			}
		}
		fixed, err := sess.FixedSend(p, send, model, mode)
		if err != nil {
			return err
		}
		return forEachPermutation(n, func(retPerm []int, _ int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			rho, err := fixed.Throughput(retPerm)
			if err != nil {
				return err
			}
			if rho > bestRho {
				bestRho = rho
				bestSend = send.Clone()
				bestRet = platform.Order(retPerm).Clone()
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	best, err := sess.Evaluate(eval.Scenario{Platform: p, Send: bestSend, Return: bestRet, Model: model}, mode)
	if err != nil {
		return nil, err
	}
	return &PairResult{Schedule: best, Send: bestSend, Return: bestRet}, nil
}

// pairSeeds batch-evaluates the FIFO and LIFO scenarios of every send
// permutation in enumeration order (the structure-of-arrays chains run
// 8 permutations per lockstep chunk). Lanes whose chain certificate fails
// simply contribute no seed — the inner loops evaluate those return
// orders anyway, so seeding never affects the search result, only how
// early the incumbent allows pruning. Returns nil batches when seeding is
// disabled.
func pairSeeds(p *platform.Platform, model schedule.Model, n int, enabled bool) (fifo, lifo *eval.Batch, err error) {
	if !enabled {
		return nil, nil, nil
	}
	if fifo, err = eval.NewBatch(model, false, n); err != nil {
		return nil, nil, err
	}
	if lifo, err = eval.NewBatch(model, true, n); err != nil {
		return nil, nil, err
	}
	err = forEachPermutation(n, func(perm []int, _ int) error {
		if err := fifo.Add(p, perm); err != nil {
			return err
		}
		return lifo.Add(p, perm)
	})
	if err != nil {
		return nil, nil, err
	}
	fifo.Run()
	lifo.Run()
	return fifo, lifo, nil
}
