package core

import (
	"repro/internal/eval"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// This file exposes the companion-paper results (Beaumont, Marchal,
// Robert, "Scheduling divisible loads with return messages on
// heterogeneous master-worker platforms", HiPC 2005 / LIP RR-2005-21) used
// as baselines in Section 4 and Section 5: the two-port model, where the
// master may send to one worker while receiving from another.
//
// The companion paper characterises the optimal two-port FIFO and LIFO
// schedules with workers sorted by non-decreasing c. This module follows
// that ordering and, like the one-port path, delegates the loads to the
// scenario LP; the ordering claim is cross-checked against exhaustive
// search over all orders in the theory tests.

// OptimalFIFOTwoPort computes the optimal two-port FIFO schedule: all
// workers considered in non-decreasing c order, loads (and resource
// selection) by the scenario evaluator under the two-port model.
func OptimalFIFOTwoPort(p *platform.Platform, arith Arith) (*schedule.Schedule, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, err
	}
	return OptimalFIFOTwoPortEval(p, mode)
}

// OptimalFIFOTwoPortEval is OptimalFIFOTwoPort with an explicit
// evaluation backend.
func OptimalFIFOTwoPortEval(p *platform.Platform, mode eval.Mode) (*schedule.Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	order := p.ByC()
	return SolveScenarioEval(p, order, order, schedule.TwoPort, mode)
}

// OptimalLIFOTwoPort computes the optimal two-port LIFO schedule in
// non-decreasing c order. As the paper notes in Section 5, every LIFO
// schedule already obeys the one-port model, so this equals OptimalLIFO;
// it is exposed for symmetry with the companion-paper baselines.
func OptimalLIFOTwoPort(p *platform.Platform, arith Arith) (*schedule.Schedule, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, err
	}
	return OptimalLIFOTwoPortEval(p, mode)
}

// OptimalLIFOTwoPortEval is OptimalLIFOTwoPort with an explicit
// evaluation backend.
func OptimalLIFOTwoPortEval(p *platform.Platform, mode eval.Mode) (*schedule.Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	order := p.ByC()
	return SolveScenarioEval(p, order, order.Reverse(), schedule.TwoPort, mode)
}

// OnePortPenalty quantifies the cost of the one-port restriction for FIFO
// scheduling on a platform: the ratio ρ_two-port / ρ_one-port ≥ 1. It is
// the headline comparison between this paper and its companion.
func OnePortPenalty(p *platform.Platform, arith Arith) (float64, error) {
	one, err := IncC(p, schedule.OnePort, arith)
	if err != nil {
		return 0, err
	}
	two, err := OptimalFIFOTwoPort(p, arith)
	if err != nil {
		return 0, err
	}
	return two.Throughput() / one.Throughput(), nil
}
