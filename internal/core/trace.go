package core

import (
	"context"
	"time"

	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// Tracing hooks: when a trace rides the context (internal/obs), the
// scenario evaluations and searches record their stage of the request's
// latency decomposition — which eval tier actually answered
// ("eval-backend": closed-form / direct / simplex / exact, fallback
// taken) and what the order-space search did ("search": worker count,
// nodes expanded, subtrees pruned). With no trace on the context every
// hook is a no-op costing one context lookup.

// evaluateTraced evaluates sc on a pooled session and records the
// eval-backend stage attributing the tier that produced the answer.
func evaluateTraced(ctx context.Context, sc eval.Scenario, mode eval.Mode) (*schedule.Schedule, error) {
	if !obs.Enabled(ctx) {
		return eval.Evaluate(sc, mode)
	}
	sess := eval.GetSession()
	defer sess.Release()
	t0 := obs.Now(ctx)
	s, err := sess.Evaluate(sc, mode)
	recordEvalBackend(ctx, sess, mode, t0)
	return s, err
}

// recordEvalBackend records one eval-backend stage from the session's
// last-backend attribution, bracketed by t0 and the context time source.
func recordEvalBackend(ctx context.Context, sess *eval.Session, mode eval.Mode, t0 time.Time) {
	backend, fallback := sess.Backend()
	obs.StageAt(ctx, 1, "eval-backend", t0, obs.Now(ctx),
		obs.String("mode", mode.String()),
		obs.String("backend", backend),
		obs.Bool("fallback", fallback))
}

// SolveScenarioEvalContext is SolveScenarioEval with tracing: when a
// trace rides ctx, the evaluation records an "eval-backend" stage naming
// the tier that actually produced the answer. The computation is
// identical to SolveScenarioEval.
func SolveScenarioEvalContext(ctx context.Context, p *platform.Platform, send, ret platform.Order, model schedule.Model, mode eval.Mode) (*schedule.Schedule, error) {
	return evaluateTraced(ctx, eval.Scenario{Platform: p, Send: send, Return: ret, Model: model}, mode)
}
