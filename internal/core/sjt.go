package core

// Steinhaus–Johnson–Trotter enumeration, factored so the parallel search
// pool can hand each worker a CONTIGUOUS RANGE of permutation ranks and
// still honour the adjacent-transposition contract inside the range: the
// emission sequence of forEachPermutationRange(n, lo, hi) is exactly
// emissions lo..hi-1 of forEachPermutation(n), with the first emission
// reported as swapped == -1 (a range opener rebuilds its sweep state from
// scratch, like the full enumeration's identity emission).
//
// The resume state at an arbitrary rank comes from the mixed-radix
// structure of SJT: write the rank in the factorial-like digit chain
// r_{n-1} = rank, r_{k-1} = ⌊r_k/(k+1)⌋, and let i_k = r_k mod (k+1).
// Value k has then made i_k steps of its current sweep through the
// arrangement of the values below it, and the values below it have moved
// r_{k-1} times in total — each move of a smaller value flips k's
// direction, so k sweeps leftward when r_{k-1} is even (insertion slot
// k - i_k) and rightward when odd (slot i_k). The insertion recursion
// rebuilds the permutation in O(n²); the property test in sjt_test.go pins
// range-concatenation equality against the full enumeration for n ≤ 8.

// factorial returns n! (n ≤ 20 fits int64; the search caps keep n ≤ 9).
func factorial(n int) int64 {
	f := int64(1)
	for k := 2; k <= n; k++ {
		f *= int64(k)
	}
	return f
}

// sjtUnrank reconstructs the full SJT loop state — the permutation, the
// value→index table and the per-value directions — as it stands when the
// enumeration has emitted `rank` (0-based: rank 0 is the identity). The
// three slices must have length n.
func sjtUnrank(n int, rank int64, perm, pos, dir []int) {
	// Digit chain, top value down: digits[k] = r_k mod (k+1) and
	// moves[k] = r_{k-1} (total moves of values below k).
	perm = perm[:n]
	if n == 0 {
		return
	}
	perm[0] = 0
	dir[0] = -1
	r := rank
	type kd struct{ steps, below int64 }
	var chain [16]kd
	for k := n - 1; k >= 1; k-- {
		chain[k] = kd{steps: r % int64(k+1), below: r / int64(k+1)}
		r /= int64(k + 1)
	}
	length := 1
	for k := 1; k < n; k++ {
		steps, below := chain[k].steps, chain[k].below
		slot := int(steps)
		if below%2 == 0 {
			slot = k - int(steps) // leftward sweep: started at the right end
			dir[k] = -1
		} else {
			dir[k] = 1
		}
		copy(perm[slot+1:length+1], perm[slot:length])
		perm[slot] = k
		length++
	}
	for i, v := range perm {
		pos[v] = i
	}
}

// sjtStep advances the SJT state by one transposition: it moves the largest
// mobile value one step in its direction, flips the directions of all
// larger values, and returns the left index of the swapped adjacent pair.
// ok == false means the enumeration is exhausted (no mobile value).
func sjtStep(n int, perm, pos, dir []int) (left int, ok bool) {
	v := -1
	for val := n - 1; val >= 0; val-- {
		k := pos[val]
		if t := k + dir[val]; t >= 0 && t < n && perm[t] < val {
			v = val
			break
		}
	}
	if v < 0 {
		return 0, false
	}
	k := pos[v]
	t := k + dir[v]
	perm[k], perm[t] = perm[t], perm[k]
	pos[v], pos[perm[k]] = t, k
	for val := v + 1; val < n; val++ {
		dir[val] = -dir[val]
	}
	if t < k {
		return t, true
	}
	return k, true
}

// forEachPermutationRange invokes fn with emissions lo..hi-1 (by rank) of
// the SJT enumeration of {0..n-1}. The first call reports swapped == -1;
// every later call reports the left index of the adjacent transposition
// that produced it, exactly as the full enumeration would. The slice passed
// to fn is reused and mutated between calls (clone to retain).
func forEachPermutationRange(n int, lo, hi int64, fn func(perm []int, swapped int) error) error {
	if lo >= hi {
		return nil
	}
	perm := make([]int, n)
	pos := make([]int, n)
	dir := make([]int, n)
	sjtUnrank(n, lo, perm, pos, dir)
	if err := fn(perm, -1); err != nil {
		return err
	}
	for r := lo + 1; r < hi; r++ {
		left, ok := sjtStep(n, perm, pos, dir)
		if !ok {
			return nil
		}
		if err := fn(perm, left); err != nil {
			return err
		}
	}
	return nil
}
