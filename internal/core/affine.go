package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/eval"
	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// This file extends the scenario linear programs to the affine cost model
// discussed in the paper's related-work section: each message pays a fixed
// start-up latency on top of the linear term, and each enrolled worker may
// pay a fixed computation overhead,
//
//	send to Pi:    Lin_i  + α_i·c_i
//	compute on Pi: O_i    + α_i·w_i
//	return from Pi: Lout_i + α_i·d_i.
//
// With the orders fixed the program remains linear (the constants move to
// the right-hand sides), but resource selection becomes the hard part: an
// enrolled worker consumes its latencies even with α = 0, and the paper
// cites Legrand, Yang and Casanova for the NP-hardness of the affine
// star problem. BestFIFOAffine therefore enumerates participant subsets.

// Affine holds the per-worker fixed costs of the affine model, aligned
// with the platform's worker indices. Zero values reduce the model to the
// paper's linear one.
type Affine struct {
	// In is the start-up latency of the initial (master→worker) message.
	In []float64
	// Out is the start-up latency of the result (worker→master) message.
	Out []float64
	// Comp is the fixed computation overhead.
	Comp []float64
}

// ZeroAffine returns an all-zero affine extension for p workers.
func ZeroAffine(p int) Affine {
	return Affine{In: make([]float64, p), Out: make([]float64, p), Comp: make([]float64, p)}
}

// validate checks dimensions and signs against a platform.
func (a Affine) validate(p *platform.Platform) error {
	n := p.P()
	if len(a.In) != n || len(a.Out) != n || len(a.Comp) != n {
		return fmt.Errorf("core: affine extension has (%d, %d, %d) entries for %d workers",
			len(a.In), len(a.Out), len(a.Comp), n)
	}
	for i := 0; i < n; i++ {
		for _, v := range []float64{a.In[i], a.Out[i], a.Comp[i]} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: affine cost %g of worker %d must be finite and >= 0", v, i)
			}
		}
	}
	return nil
}

// ScenarioLPAffine builds the affine-model linear program for a fixed
// scenario. The enrolled set is exactly the workers in send; their fixed
// costs are charged whether or not the optimal α is positive.
func ScenarioLPAffine(p *platform.Platform, aff Affine, send, ret platform.Order, model schedule.Model) (*lp.Problem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := aff.validate(p); err != nil {
		return nil, err
	}
	if err := eval.ValidOrderPair(p.P(), send, ret); err != nil {
		return nil, err
	}
	q := len(send)
	prob := lp.NewMaximize()
	varOf := make(map[int]int, q)
	for _, i := range send {
		varOf[i] = prob.AddVar(fmt.Sprintf("alpha_%s", p.Workers[i].Name), 1)
	}
	retPos := make(map[int]int, q)
	for k, i := range ret {
		retPos[i] = k
	}
	for s, i := range send {
		coefs := make([]lp.Coef, 0, 2*q)
		fixed := aff.Comp[i]
		for _, j := range send[:s+1] {
			coefs = append(coefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].C})
			fixed += aff.In[j]
		}
		coefs = append(coefs, lp.Coef{Var: varOf[i], Value: p.Workers[i].W})
		for _, j := range ret[retPos[i]:] {
			coefs = append(coefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].D})
			fixed += aff.Out[j]
		}
		prob.AddConstraint(fmt.Sprintf("worker_%s", p.Workers[i].Name), coefs, lp.LE, 1-fixed)
	}
	switch model {
	case schedule.OnePort:
		coefs := make([]lp.Coef, 0, 2*q)
		fixed := 0.0
		for _, j := range send {
			coefs = append(coefs,
				lp.Coef{Var: varOf[j], Value: p.Workers[j].C},
				lp.Coef{Var: varOf[j], Value: p.Workers[j].D})
			fixed += aff.In[j] + aff.Out[j]
		}
		prob.AddConstraint("one_port", coefs, lp.LE, 1-fixed)
	case schedule.TwoPort:
		sendCoefs := make([]lp.Coef, 0, q)
		retCoefs := make([]lp.Coef, 0, q)
		fixedIn, fixedOut := 0.0, 0.0
		for _, j := range send {
			sendCoefs = append(sendCoefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].C})
			retCoefs = append(retCoefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].D})
			fixedIn += aff.In[j]
			fixedOut += aff.Out[j]
		}
		prob.AddConstraint("send_port", sendCoefs, lp.LE, 1-fixedIn)
		prob.AddConstraint("recv_port", retCoefs, lp.LE, 1-fixedOut)
	default:
		return nil, fmt.Errorf("core: unknown model %v", model)
	}
	return prob, nil
}

// AffineResult is the outcome of an affine-model solve: the loads and
// throughput of one scenario. No Schedule is produced because the canonical
// timeline of package schedule is linear-model only.
type AffineResult struct {
	// Send and Return are the scenario orders (enrolled workers only).
	Send, Return platform.Order
	// Alpha are the optimal loads, indexed like the platform workers.
	Alpha []float64
	// Throughput is Σα for horizon 1.
	Throughput float64
	// Feasible is false when the fixed costs alone exceed the horizon, in
	// which case the scenario can process no load at all.
	Feasible bool
}

// SolveScenarioAffine computes the optimal loads of an affine-model
// scenario. Unlike the linear model, zero-α workers are NOT pruned: their
// fixed costs have already been charged by enrolling them, so the caller
// (and BestFIFOAffine) must treat the enrolled set as given.
func SolveScenarioAffine(p *platform.Platform, aff Affine, send, ret platform.Order, model schedule.Model, arith Arith) (*AffineResult, error) {
	prob, err := ScenarioLPAffine(p, aff, send, ret, model)
	if err != nil {
		return nil, err
	}
	var x []float64
	var status lp.Status
	switch arith {
	case Float64:
		sol, err := prob.Solve()
		if err != nil {
			return nil, err
		}
		status, x = sol.Status, sol.X
	case Exact:
		sol, err := prob.SolveExact()
		if err != nil {
			return nil, err
		}
		status = sol.Status
		if status == lp.Optimal {
			_, x = sol.Float()
		}
	default:
		return nil, fmt.Errorf("core: unknown arithmetic %v", arith)
	}
	res := &AffineResult{Send: send.Clone(), Return: ret.Clone(), Alpha: make([]float64, p.P())}
	if status == lp.Infeasible {
		// The fixed costs alone exceed the horizon.
		return res, nil
	}
	if status != lp.Optimal {
		return nil, fmt.Errorf("core: affine scenario LP terminated %v (internal error)", status)
	}
	res.Feasible = true
	for k, i := range send {
		if x[k] > 0 {
			res.Alpha[i] = x[k]
			res.Throughput += x[k]
		}
	}
	return res, nil
}

// maxAffineSubsets bounds the 2^p subset search of BestFIFOAffine. The cap
// rose from 16 to 20 when the branch-and-bound lattice search replaced the
// flat mask loop: the drop-the-fixed-costs bound prunes whole half-lattices,
// so the explored subset count stays far below 2^p on float64 backends.
// Exact-rational searches still run the unpruned flat loop (float bounds
// cannot certify exact comparisons) and pay the full 2^p exact solves.
const maxAffineSubsets = 20

// AffineAlgo selects how BestFIFOAffine explores the participant-subset
// lattice.
type AffineAlgo int

const (
	// AffineAuto picks the branch-and-bound lattice search for float64
	// arithmetic and the flat subset loop under Exact (whose exact
	// comparisons the float64 bounds cannot certify).
	AffineAuto AffineAlgo = iota
	// AffineBB forces the branch-and-bound over include/exclude decisions.
	AffineBB
	// AffineFlat forces the flat 2^p mask loop (the original search,
	// retained for agreement testing and as the exact-arithmetic path).
	AffineFlat
)

// String names the algorithm ("auto", "bb", "flat").
func (a AffineAlgo) String() string {
	switch a {
	case AffineAuto:
		return "auto"
	case AffineBB:
		return "bb"
	case AffineFlat:
		return "flat"
	default:
		return fmt.Sprintf("AffineAlgo(%d)", int(a))
	}
}

// AffineStats is a snapshot of the affine subset searches' cumulative
// instrumentation, kept as process-global atomics like PairStats (searches
// may run concurrently; each worker accumulates locally and flushes once).
// The counters make the lattice branch-and-bound's effectiveness
// observable — the bench CI job fails if the pruned fraction collapses on
// the reference platform.
type AffineStats struct {
	// NodesExpanded counts interior lattice nodes whose include/exclude
	// children were generated.
	NodesExpanded uint64
	// SubtreesPruned counts exclude-edges (and bound-inheriting interior
	// nodes) cut against the incumbent — whole half-lattices of subsets
	// discarded without evaluation.
	SubtreesPruned uint64
	// LeavesEvaluated counts complete subsets whose scenario LP was
	// actually solved. The flat loop counts every non-empty mask here.
	LeavesEvaluated uint64
	// BoundSolves counts relaxation LPs solved on exclude edges.
	BoundSolves uint64
}

var (
	affineNodesExpanded  atomic.Uint64
	affineSubtreesPruned atomic.Uint64
	affineLeavesEval     atomic.Uint64
	affineBoundSolves    atomic.Uint64
)

// AffineStatsSnapshot returns the cumulative affine-search counters.
// Callers interested in one search subtract two snapshots.
func AffineStatsSnapshot() AffineStats {
	return AffineStats{
		NodesExpanded:   affineNodesExpanded.Load(),
		SubtreesPruned:  affineSubtreesPruned.Load(),
		LeavesEvaluated: affineLeavesEval.Load(),
		BoundSolves:     affineBoundSolves.Load(),
	}
}

// BestFIFOAffine searches for the best one-port FIFO schedule under the
// affine model: workers are kept in non-decreasing-c order (the linear
// model's Theorem 1 order, a heuristic here) and the participant subsets
// are searched exhaustively, since with fixed costs the optimal enrolled
// set is no longer given by the LP's support — the problem the paper cites
// as NP-hard. Limited to p ≤ 20.
func BestFIFOAffine(p *platform.Platform, aff Affine, arith Arith) (*AffineResult, error) {
	return BestFIFOAffineContext(context.Background(), p, aff, arith)
}

// BestFIFOAffineContext is BestFIFOAffine with cancellation and — through
// ContextWithSearchParallelism — a parallel lattice search. It runs
// AffineAuto: branch-and-bound for float64, the flat loop for Exact.
func BestFIFOAffineContext(ctx context.Context, p *platform.Platform, aff Affine, arith Arith) (*AffineResult, error) {
	return BestFIFOAffineAlgo(ctx, p, aff, arith, AffineAuto)
}

// BestFIFOAffineAlgo is BestFIFOAffineContext with an explicit search
// algorithm, for agreement tests and benchmarks. Both algorithms share the
// scenario LP formulation and the (throughput, lex-min order) tie rule, so
// they return byte-identical winners.
func BestFIFOAffineAlgo(ctx context.Context, p *platform.Platform, aff Affine, arith Arith, algo AffineAlgo) (*AffineResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := aff.validate(p); err != nil {
		return nil, err
	}
	n := p.P()
	if n > maxAffineSubsets {
		return nil, fmt.Errorf("core: affine subset search limited to %d workers, platform has %d", maxAffineSubsets, n)
	}
	switch algo {
	case AffineAuto:
		if arith == Exact {
			algo = AffineFlat
		} else {
			algo = AffineBB
		}
	case AffineBB:
		if arith == Exact {
			return nil, fmt.Errorf("core: affine branch-and-bound needs float64 arithmetic (float bounds cannot certify exact comparisons)")
		}
	case AffineFlat:
		// Always available.
	default:
		return nil, fmt.Errorf("core: unknown affine-search algorithm %v", algo)
	}
	winner := newSearchCore(ctx)
	sorted := p.ByC()
	// As with the pair counters, the deltas are against process-global
	// atomics and so approximate under concurrent solves.
	traced := obs.Enabled(ctx)
	t0 := obs.Now(ctx)
	var before AffineStats
	if traced {
		before = AffineStatsSnapshot()
	}
	var err error
	if algo == AffineBB {
		err = affineSearchBB(ctx, winner, p, aff, sorted)
	} else {
		err = affineSearchFlat(winner, p, aff, arith, sorted)
	}
	if err != nil {
		return nil, err
	}
	if traced {
		after := AffineStatsSnapshot()
		obs.StageAt(ctx, 1, "search", t0, obs.Now(ctx),
			obs.String("kind", "affine-subset"),
			obs.String("algo", algo.String()),
			obs.Int("workers", searchParallelism(ctx)),
			obs.Uint64("nodes", after.NodesExpanded-before.NodesExpanded),
			obs.Uint64("pruned", after.SubtreesPruned-before.SubtreesPruned),
			obs.Uint64("leaves", after.LeavesEvaluated-before.LeavesEvaluated),
			obs.Uint64("bound_solves", after.BoundSolves-before.BoundSolves))
	}
	if len(winner.best) == 0 {
		// Even single workers cannot start within the horizon.
		return &AffineResult{Alpha: make([]float64, n)}, nil
	}
	return SolveScenarioAffine(p, aff, winner.best, winner.best, schedule.OnePort, arith)
}

// affineOnePortLP builds the one-port FIFO affine LP over the candidate
// order without diagnostic names (names never influence the simplex, so
// the rows pivot bitwise-identically to ScenarioLPAffine's). charged
// selects the workers whose fixed costs are billed: nil bills every
// candidate — the exact scenario LP of the subset — while the
// branch-and-bound bills only the already-included workers, leaving the
// undecided candidates' linear terms free. That relaxation is an upper
// bound over every completion S of the included set: extending S's optimum
// by zeros satisfies each candidate row (undecided rows charge no fixed
// cost, so their RHS dominates the one-port row S satisfies), and included
// rows only gain RHS as fixed costs are dropped.
func affineOnePortLP(p *platform.Platform, aff Affine, order platform.Order, charged []bool) *lp.Problem {
	q := len(order)
	prob := lp.NewMaximize()
	for range order {
		prob.AddVar("", 1)
	}
	bill := func(i int) bool { return charged == nil || charged[i] }
	coefs := make([]lp.Coef, 0, 2*q+1)
	for s, i := range order {
		coefs = coefs[:0]
		fixed := 0.0
		if bill(i) {
			fixed = aff.Comp[i]
		}
		for k, j := range order[:s+1] {
			coefs = append(coefs, lp.Coef{Var: k, Value: p.Workers[j].C})
			if bill(j) {
				fixed += aff.In[j]
			}
		}
		coefs = append(coefs, lp.Coef{Var: s, Value: p.Workers[i].W})
		for k, j := range order[s:] {
			coefs = append(coefs, lp.Coef{Var: s + k, Value: p.Workers[j].D})
			if bill(j) {
				fixed += aff.Out[j]
			}
		}
		prob.AddConstraint("", coefs, lp.LE, 1-fixed)
	}
	coefs = coefs[:0]
	fixed := 0.0
	for k, j := range order {
		coefs = append(coefs,
			lp.Coef{Var: k, Value: p.Workers[j].C},
			lp.Coef{Var: k, Value: p.Workers[j].D})
		if bill(j) {
			fixed += aff.In[j] + aff.Out[j]
		}
	}
	prob.AddConstraint("", coefs, lp.LE, 1-fixed)
	return prob
}

// solveAffineRho solves a subset's scenario LP and returns its throughput
// under the same Σ x[k]>0 accumulation SolveScenarioAffine uses, so the
// search comparisons match the value the winner's final re-solve reports.
func solveAffineRho(prob *lp.Problem, arith Arith, q int) (float64, bool, error) {
	var x []float64
	var status lp.Status
	switch arith {
	case Float64:
		sol, err := prob.Solve()
		if err != nil {
			return 0, false, err
		}
		status, x = sol.Status, sol.X
	case Exact:
		sol, err := prob.SolveExact()
		if err != nil {
			return 0, false, err
		}
		status = sol.Status
		if status == lp.Optimal {
			_, x = sol.Float()
		}
	default:
		return 0, false, fmt.Errorf("core: unknown arithmetic %v", arith)
	}
	if status == lp.Infeasible {
		return 0, false, nil
	}
	if status != lp.Optimal {
		return 0, false, fmt.Errorf("core: affine scenario LP terminated %v (internal error)", status)
	}
	rho := 0.0
	for k := 0; k < q; k++ {
		if x[k] > 0 {
			rho += x[k]
		}
	}
	return rho, true, nil
}

// affineSearchFlat is the flat 2^p loop: every non-empty mask ascending,
// one scenario LP each, feasible results offered to the core under the
// shared tie rule. The order scratch is reused across masks and the
// context is polled on the core's throttled counter.
func affineSearchFlat(core *searchCore, p *platform.Platform, aff Affine, arith Arith, sorted platform.Order) error {
	n := p.P()
	order := make(platform.Order, 0, n)
	for mask := 1; mask < 1<<n; mask++ {
		if err := core.poll(); err != nil {
			return err
		}
		order = order[:0]
		for _, i := range sorted {
			if mask&(1<<i) != 0 {
				order = append(order, i)
			}
		}
		rho, feasible, err := solveAffineRho(affineOnePortLP(p, aff, order, nil), arith, len(order))
		if err != nil {
			return err
		}
		affineLeavesEval.Add(1)
		if feasible {
			core.offer(rho, order, nil)
		}
	}
	return nil
}

// affineSearchBB drives the lattice branch-and-bound over the
// work-stealing pool: the include/exclude decisions of the first depth
// workers (in c order) index 2^depth prefix tasks dealt to the workers by
// rank; each worker replays its rank's decisions — recomputing the
// exclude-edge bounds, so a hopeless prefix is dropped without descending —
// and then recurses include-first below the prefix, pruning against the
// shared incumbent. Counter flushes happen once per worker.
func affineSearchBB(ctx context.Context, winner *searchCore, p *platform.Platform, aff Affine, sorted platform.Order) error {
	n := len(sorted)
	depth := 0
	for depth < n-1 && 1<<depth < 4*searchParallelism(ctx) {
		depth++
	}
	total := int64(1) << depth
	run := func(core *searchCore, next func() (int64, bool)) error {
		bb := &affineBB{
			core: core, p: p, aff: aff, sorted: sorted, n: n,
			included: make(platform.Order, 0, n),
			cand:     make(platform.Order, 0, n),
			charged:  make([]bool, p.P()),
		}
		defer bb.flush()
		for {
			rank, ok := next()
			if !ok {
				return nil
			}
			if err := bb.searchPrefix(rank, depth); err != nil {
				return err
			}
		}
	}
	return runStealingPool(ctx, winner, total, run)
}

// affineBB is one worker's branch-and-bound state: the shared search core,
// the live include stack, bound scratch, and locally accumulated counters
// (flushed to the global atomics once per search).
type affineBB struct {
	core   *searchCore
	p      *platform.Platform
	aff    Affine
	sorted platform.Order
	n      int

	included platform.Order // live include stack, a subsequence of sorted
	cand     platform.Order // bound scratch: included ++ undecided tail
	charged  []bool         // bound scratch, indexed by worker

	nodes, pruned, leaves, boundSolves uint64
}

func (b *affineBB) flush() {
	affineNodesExpanded.Add(b.nodes)
	affineSubtreesPruned.Add(b.pruned)
	affineLeavesEval.Add(b.leaves)
	affineBoundSolves.Add(b.boundSolves)
}

// searchPrefix replays rank's include (bit 0) / exclude (bit 1) decisions
// for the first depth workers, then recurses below. Exclude decisions
// recompute the completion bound exactly like the recursion would, so a
// rank whose prefix is already hopeless against the incumbent is dropped
// here — each surviving rank enters dfs with the tightest bound seen on
// its path.
func (b *affineBB) searchPrefix(rank int64, depth int) error {
	if err := b.core.poll(); err != nil {
		return err
	}
	b.included = b.included[:0]
	bound := math.Inf(1)
	for t := 0; t < depth; t++ {
		if rank&(1<<uint(t)) == 0 {
			b.included = append(b.included, b.sorted[t])
			continue
		}
		nb, feasible, err := b.bound(t + 1)
		if err != nil {
			return err
		}
		if nb > bound {
			nb = bound
		}
		if !feasible || b.core.prunable(nb) {
			b.pruned++
			return nil
		}
		bound = nb
	}
	return b.dfs(depth, bound)
}

// dfs explores the lattice below the current include stack. The include
// child inherits the parent bound unchanged (its completions are a subset
// of the parent's, and the charged set only grows, so the parent's
// relaxation still dominates); only exclude edges — where the candidate
// set actually shrinks — pay a bound LP, capped at the parent bound so the
// path bound is monotone under float noise. An infeasible bound proves
// every completion infeasible and prunes the subtree outright.
func (b *affineBB) dfs(depth int, parentBound float64) error {
	if err := b.core.poll(); err != nil {
		return err
	}
	if b.core.prunable(parentBound) {
		b.pruned++
		return nil
	}
	if depth == b.n {
		if len(b.included) == 0 {
			return nil
		}
		b.leaves++
		rho, feasible, err := solveAffineRho(
			affineOnePortLP(b.p, b.aff, b.included, nil), Float64, len(b.included))
		if err != nil {
			return err
		}
		if feasible {
			b.core.offer(rho, b.included, nil)
		}
		return nil
	}
	b.nodes++
	b.included = append(b.included, b.sorted[depth])
	if err := b.dfs(depth+1, parentBound); err != nil {
		return err
	}
	b.included = b.included[:len(b.included)-1]
	bound, feasible, err := b.bound(depth + 1)
	if err != nil {
		return err
	}
	if bound > parentBound {
		bound = parentBound
	}
	if !feasible || b.core.prunable(bound) {
		b.pruned++
		return nil
	}
	return b.dfs(depth+1, bound)
}

// bound solves the exclude-edge relaxation: the affine LP over the
// included workers plus every undecided worker from position from on,
// charging only the included workers' fixed costs (see affineOnePortLP for
// the admissibility argument). An empty candidate set means the only
// completion is the empty subset, which the search skips anyway.
func (b *affineBB) bound(from int) (float64, bool, error) {
	b.cand = append(b.cand[:0], b.included...)
	b.cand = append(b.cand, b.sorted[from:]...)
	if len(b.cand) == 0 {
		return 0, false, nil
	}
	b.boundSolves++
	for i := range b.charged {
		b.charged[i] = false
	}
	for _, i := range b.included {
		b.charged[i] = true
	}
	sol, err := affineOnePortLP(b.p, b.aff, b.cand, b.charged).Solve()
	if err != nil {
		return 0, false, err
	}
	if sol.Status == lp.Infeasible {
		return 0, false, nil
	}
	if sol.Status != lp.Optimal {
		return 0, false, fmt.Errorf("core: affine bound LP terminated %v (internal error)", sol.Status)
	}
	return sol.Objective, true, nil
}
