package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/eval"
	"repro/internal/lp"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// This file extends the scenario linear programs to the affine cost model
// discussed in the paper's related-work section: each message pays a fixed
// start-up latency on top of the linear term, and each enrolled worker may
// pay a fixed computation overhead,
//
//	send to Pi:    Lin_i  + α_i·c_i
//	compute on Pi: O_i    + α_i·w_i
//	return from Pi: Lout_i + α_i·d_i.
//
// With the orders fixed the program remains linear (the constants move to
// the right-hand sides), but resource selection becomes the hard part: an
// enrolled worker consumes its latencies even with α = 0, and the paper
// cites Legrand, Yang and Casanova for the NP-hardness of the affine
// star problem. BestFIFOAffine therefore enumerates participant subsets.

// Affine holds the per-worker fixed costs of the affine model, aligned
// with the platform's worker indices. Zero values reduce the model to the
// paper's linear one.
type Affine struct {
	// In is the start-up latency of the initial (master→worker) message.
	In []float64
	// Out is the start-up latency of the result (worker→master) message.
	Out []float64
	// Comp is the fixed computation overhead.
	Comp []float64
}

// ZeroAffine returns an all-zero affine extension for p workers.
func ZeroAffine(p int) Affine {
	return Affine{In: make([]float64, p), Out: make([]float64, p), Comp: make([]float64, p)}
}

// validate checks dimensions and signs against a platform.
func (a Affine) validate(p *platform.Platform) error {
	n := p.P()
	if len(a.In) != n || len(a.Out) != n || len(a.Comp) != n {
		return fmt.Errorf("core: affine extension has (%d, %d, %d) entries for %d workers",
			len(a.In), len(a.Out), len(a.Comp), n)
	}
	for i := 0; i < n; i++ {
		for _, v := range []float64{a.In[i], a.Out[i], a.Comp[i]} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: affine cost %g of worker %d must be finite and >= 0", v, i)
			}
		}
	}
	return nil
}

// ScenarioLPAffine builds the affine-model linear program for a fixed
// scenario. The enrolled set is exactly the workers in send; their fixed
// costs are charged whether or not the optimal α is positive.
func ScenarioLPAffine(p *platform.Platform, aff Affine, send, ret platform.Order, model schedule.Model) (*lp.Problem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := aff.validate(p); err != nil {
		return nil, err
	}
	if err := eval.ValidOrderPair(p.P(), send, ret); err != nil {
		return nil, err
	}
	q := len(send)
	prob := lp.NewMaximize()
	varOf := make(map[int]int, q)
	for _, i := range send {
		varOf[i] = prob.AddVar(fmt.Sprintf("alpha_%s", p.Workers[i].Name), 1)
	}
	retPos := make(map[int]int, q)
	for k, i := range ret {
		retPos[i] = k
	}
	for s, i := range send {
		coefs := make([]lp.Coef, 0, 2*q)
		fixed := aff.Comp[i]
		for _, j := range send[:s+1] {
			coefs = append(coefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].C})
			fixed += aff.In[j]
		}
		coefs = append(coefs, lp.Coef{Var: varOf[i], Value: p.Workers[i].W})
		for _, j := range ret[retPos[i]:] {
			coefs = append(coefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].D})
			fixed += aff.Out[j]
		}
		prob.AddConstraint(fmt.Sprintf("worker_%s", p.Workers[i].Name), coefs, lp.LE, 1-fixed)
	}
	switch model {
	case schedule.OnePort:
		coefs := make([]lp.Coef, 0, 2*q)
		fixed := 0.0
		for _, j := range send {
			coefs = append(coefs,
				lp.Coef{Var: varOf[j], Value: p.Workers[j].C},
				lp.Coef{Var: varOf[j], Value: p.Workers[j].D})
			fixed += aff.In[j] + aff.Out[j]
		}
		prob.AddConstraint("one_port", coefs, lp.LE, 1-fixed)
	case schedule.TwoPort:
		sendCoefs := make([]lp.Coef, 0, q)
		retCoefs := make([]lp.Coef, 0, q)
		fixedIn, fixedOut := 0.0, 0.0
		for _, j := range send {
			sendCoefs = append(sendCoefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].C})
			retCoefs = append(retCoefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].D})
			fixedIn += aff.In[j]
			fixedOut += aff.Out[j]
		}
		prob.AddConstraint("send_port", sendCoefs, lp.LE, 1-fixedIn)
		prob.AddConstraint("recv_port", retCoefs, lp.LE, 1-fixedOut)
	default:
		return nil, fmt.Errorf("core: unknown model %v", model)
	}
	return prob, nil
}

// AffineResult is the outcome of an affine-model solve: the loads and
// throughput of one scenario. No Schedule is produced because the canonical
// timeline of package schedule is linear-model only.
type AffineResult struct {
	// Send and Return are the scenario orders (enrolled workers only).
	Send, Return platform.Order
	// Alpha are the optimal loads, indexed like the platform workers.
	Alpha []float64
	// Throughput is Σα for horizon 1.
	Throughput float64
	// Feasible is false when the fixed costs alone exceed the horizon, in
	// which case the scenario can process no load at all.
	Feasible bool
}

// SolveScenarioAffine computes the optimal loads of an affine-model
// scenario. Unlike the linear model, zero-α workers are NOT pruned: their
// fixed costs have already been charged by enrolling them, so the caller
// (and BestFIFOAffine) must treat the enrolled set as given.
func SolveScenarioAffine(p *platform.Platform, aff Affine, send, ret platform.Order, model schedule.Model, arith Arith) (*AffineResult, error) {
	prob, err := ScenarioLPAffine(p, aff, send, ret, model)
	if err != nil {
		return nil, err
	}
	var x []float64
	var status lp.Status
	switch arith {
	case Float64:
		sol, err := prob.Solve()
		if err != nil {
			return nil, err
		}
		status, x = sol.Status, sol.X
	case Exact:
		sol, err := prob.SolveExact()
		if err != nil {
			return nil, err
		}
		status = sol.Status
		if status == lp.Optimal {
			_, x = sol.Float()
		}
	default:
		return nil, fmt.Errorf("core: unknown arithmetic %v", arith)
	}
	res := &AffineResult{Send: send.Clone(), Return: ret.Clone(), Alpha: make([]float64, p.P())}
	if status == lp.Infeasible {
		// The fixed costs alone exceed the horizon.
		return res, nil
	}
	if status != lp.Optimal {
		return nil, fmt.Errorf("core: affine scenario LP terminated %v (internal error)", status)
	}
	res.Feasible = true
	for k, i := range send {
		if x[k] > 0 {
			res.Alpha[i] = x[k]
			res.Throughput += x[k]
		}
	}
	return res, nil
}

// maxAffineSubsets bounds the 2^p subset enumeration of BestFIFOAffine.
const maxAffineSubsets = 16

// BestFIFOAffine searches for the best one-port FIFO schedule under the
// affine model: workers are kept in non-decreasing-c order (the linear
// model's Theorem 1 order, a heuristic here) and every participant subset
// is enumerated, since with fixed costs the optimal enrolled set is no
// longer given by the LP's support — the problem the paper cites as
// NP-hard. Limited to p ≤ 16.
func BestFIFOAffine(p *platform.Platform, aff Affine, arith Arith) (*AffineResult, error) {
	return BestFIFOAffineContext(context.Background(), p, aff, arith)
}

// BestFIFOAffineContext is BestFIFOAffine with cancellation: the 2^p subset
// enumeration checks the context between scenario LPs and aborts with
// ctx.Err() once it is done.
func BestFIFOAffineContext(ctx context.Context, p *platform.Platform, aff Affine, arith Arith) (*AffineResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := aff.validate(p); err != nil {
		return nil, err
	}
	n := p.P()
	if n > maxAffineSubsets {
		return nil, fmt.Errorf("core: affine subset search limited to %d workers, platform has %d", maxAffineSubsets, n)
	}
	sorted := p.ByC()
	var best *AffineResult
	for mask := 1; mask < 1<<n; mask++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var order platform.Order
		for _, i := range sorted {
			if mask&(1<<i) != 0 {
				order = append(order, i)
			}
		}
		res, err := SolveScenarioAffine(p, aff, order, order, schedule.OnePort, arith)
		if err != nil {
			return nil, err
		}
		if !res.Feasible {
			continue
		}
		if best == nil || res.Throughput > best.Throughput {
			best = res
		}
	}
	if best == nil {
		// Even single workers cannot start within the horizon.
		return &AffineResult{Alpha: make([]float64, n)}, nil
	}
	return best, nil
}
