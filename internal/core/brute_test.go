package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// TestForEachPermutationAdjacentTranspositions pins the generator's
// contract: every emitted order differs from its predecessor by exactly
// one ADJACENT transposition, the reported index names it, all n! orders
// are distinct, and the first emission is the identity with index -1.
// The incremental sweep's O(p−i) updates are only sound under exactly
// this contract.
func TestForEachPermutationAdjacentTranspositions(t *testing.T) {
	factorial := func(n int) int {
		f := 1
		for i := 2; i <= n; i++ {
			f *= i
		}
		return f
	}
	for n := 1; n <= 7; n++ {
		var prev []int
		seen := make(map[string]bool)
		count := 0
		err := forEachPermutation(n, func(perm []int, swapped int) error {
			count++
			key := fmt.Sprint(perm)
			if seen[key] {
				return fmt.Errorf("permutation %v emitted twice", perm)
			}
			seen[key] = true
			if prev == nil {
				if swapped != -1 {
					return fmt.Errorf("first emission reported swap index %d, want -1", swapped)
				}
				for i, v := range perm {
					if v != i {
						return fmt.Errorf("first emission %v is not the identity", perm)
					}
				}
			} else {
				if swapped < 0 || swapped+1 >= n {
					return fmt.Errorf("swap index %d out of range for n=%d", swapped, n)
				}
				diff := 0
				for i := range perm {
					if perm[i] != prev[i] {
						diff++
					}
				}
				if diff != 2 ||
					perm[swapped] != prev[swapped+1] || perm[swapped+1] != prev[swapped] {
					return fmt.Errorf("emission %v does not differ from %v by the adjacent transposition (%d, %d)",
						perm, prev, swapped, swapped+1)
				}
			}
			prev = append(prev[:0], perm...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != factorial(n) {
			t.Fatalf("n=%d: emitted %d permutations, want %d", n, count, factorial(n))
		}
	}
}

// TestForEachPermutationSliceReuse documents (and pins) the aliasing
// hazard: the slice passed to the callback is mutated between calls, so
// retaining it observes later permutations.
func TestForEachPermutationSliceReuse(t *testing.T) {
	var retained []int
	first := ""
	if err := forEachPermutation(4, func(perm []int, _ int) error {
		if retained == nil {
			retained = perm // deliberately aliased, violating the contract
			first = fmt.Sprint(perm)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(retained) == first {
		t.Fatal("retained slice did not change — the documented reuse hazard no longer holds, update the docs")
	}
}

// randomPairPlatform draws a small heterogeneous platform for the pair
// search tests.
func randomPairPlatform(rng *rand.Rand, n int) *platform.Platform {
	ws := make([]platform.Worker, n)
	for i := range ws {
		ws[i] = platform.Worker{
			C: 0.02 + 0.2*rng.Float64(),
			W: 0.05 + 0.5*rng.Float64(),
			D: 0.01 + 0.3*rng.Float64(),
		}
	}
	return platform.New(ws...)
}

// TestPairSeedsNeverExceedOptimum validates the incumbent seeding: every
// certified FIFO/LIFO seed is an achieved throughput of a scenario inside
// the pair-search space, so the seeded incumbent can never exceed the true
// pair optimum — seeding an unachievable incumbent would silently prune
// winning send orders.
func TestPairSeedsNeverExceedOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(2)
		p := randomPairPlatform(rng, n)
		core := newSearchCore(t.Context())
		if err := seedPairIncumbent(t.Context(), core, p, schedule.OnePort, n, true); err != nil {
			t.Fatal(err)
		}
		maxSeed := core.bestRho
		pr, err := BestPairExhaustive(p, schedule.OnePort, Float64)
		if err != nil {
			t.Fatal(err)
		}
		opt := pr.Schedule.Throughput()
		if maxSeed > opt*(1+1e-9) {
			t.Fatalf("trial %d: seeded incumbent %.12g exceeds the pair optimum %.12g", trial, maxSeed, opt)
		}
		// The seed's claimed orders must actually achieve the claimed
		// throughput (the incumbent is an achieved point, not a bound).
		rho, err := eval.NewSession().Throughput(eval.Scenario{
			Platform: p, Send: core.best, Return: core.bestRet, Model: schedule.OnePort,
		}, eval.Simplex)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxSeed - rho; d > 1e-9*(1+rho) || d < -1e-9*(1+rho) {
			t.Fatalf("trial %d: seed claims %.12g but its scenario evaluates to %.12g", trial, maxSeed, rho)
		}
	}
}

// TestPairSeedingIncreasesPruning runs the flat pair search with and
// without incumbent seeding on 50 random platforms, via the package test
// hooks: the result must be identical either way, per-platform pruning
// must never decrease with seeds, and across the sample seeding must prune
// strictly more inner loops (the whole point of evaluating the two chain
// scenarios first). The flat algorithm is pinned because its inner-loop
// prunes are monotone in the incumbent; the branch-and-bound trades many
// deep cuts for fewer shallow ones, so its seeding property is a work
// bound instead (see TestPairBBSeedingReducesWork).
func TestPairSeedingIncreasesPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(654))
	totalSeeded, totalUnseeded := uint64(0), uint64(0)
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(2)
		p := randomPairPlatform(rng, n)

		run := func(disable bool) (*PairResult, uint64) {
			disablePairSeeding = disable
			defer func() { disablePairSeeding = false }()
			before := PairStatsSnapshot()
			pr, err := BestPairExhaustiveAlgo(t.Context(), p, schedule.OnePort, eval.Auto, PairFlat)
			if err != nil {
				t.Fatal(err)
			}
			after := PairStatsSnapshot()
			return pr, after.OuterPruned - before.OuterPruned
		}
		seeded, prunedSeeded := run(false)
		unseeded, prunedUnseeded := run(true)

		if s, u := seeded.Schedule.Throughput(), unseeded.Schedule.Throughput(); s != u {
			t.Fatalf("trial %d: seeding changed the optimum: %.17g != %.17g", trial, s, u)
		}
		if prunedSeeded < prunedUnseeded {
			t.Fatalf("trial %d: seeding reduced pruning: %d < %d", trial, prunedSeeded, prunedUnseeded)
		}
		totalSeeded += prunedSeeded
		totalUnseeded += prunedUnseeded
	}
	if totalSeeded <= totalUnseeded {
		t.Fatalf("seeding did not increase pruning across the sample: %d (seeded) vs %d (unseeded)",
			totalSeeded, totalUnseeded)
	}
}

// TestPairBBSeedingReducesWork is the branch-and-bound counterpart of the
// seeding test: the optimum must be identical with and without seeds, and
// across the sample the seeded searches must expand strictly fewer nodes
// and evaluate strictly fewer leaves — the incumbent from the batch seeds
// lets the prefix bound cut subtrees from the very first send order.
func TestPairBBSeedingReducesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(655))
	var seededWork, unseededWork uint64
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(2)
		p := randomPairPlatform(rng, n)

		run := func(disable bool) (*PairResult, uint64) {
			disablePairSeeding = disable
			defer func() { disablePairSeeding = false }()
			before := PairStatsSnapshot()
			pr, err := BestPairExhaustiveAlgo(t.Context(), p, schedule.OnePort, eval.Auto, PairBB)
			if err != nil {
				t.Fatal(err)
			}
			after := PairStatsSnapshot()
			return pr, (after.NodesExpanded - before.NodesExpanded) + (after.LeavesEvaluated - before.LeavesEvaluated)
		}
		seeded, workSeeded := run(false)
		unseeded, workUnseeded := run(true)
		if s, u := seeded.Schedule.Throughput(), unseeded.Schedule.Throughput(); s != u {
			t.Fatalf("trial %d: seeding changed the optimum: %.17g != %.17g", trial, s, u)
		}
		seededWork += workSeeded
		unseededWork += workUnseeded
	}
	if seededWork >= unseededWork {
		t.Fatalf("seeding did not reduce branch-and-bound work across the sample: %d (seeded) vs %d (unseeded)",
			seededWork, unseededWork)
	}
}

// TestPairBBAgreesWithFlat pins the branch-and-bound pair search against
// the flat double loop: on random platforms across models the two must
// agree on the optimal throughput, the derived makespan and the winning
// schedule's canonicalised loads to 1e-9, and — whenever the optimum is
// not a floating-point tie — on the winning (σ1, σ2) pair itself. Both
// algorithms prune with a 1e-12 relative margin, so two pairs within that
// margin of each other are legitimately interchangeable winners; in that
// case the loads of both reported schedules must still agree.
func TestPairBBAgreesWithFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	const load = 1000.0
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(3)
		p := randomPairPlatform(rng, n)
		model := schedule.OnePort
		if trial%5 == 4 {
			model = schedule.TwoPort
		}
		bb, err := BestPairExhaustiveAlgo(t.Context(), p, model, eval.Auto, PairBB)
		if err != nil {
			t.Fatal(err)
		}
		flat, err := BestPairExhaustiveAlgo(t.Context(), p, model, eval.Auto, PairFlat)
		if err != nil {
			t.Fatal(err)
		}
		rb, rf := bb.Schedule.Throughput(), flat.Schedule.Throughput()
		tol := 1e-9 * (1 + rb + rf)
		if d := rb - rf; d > tol || d < -tol {
			t.Fatalf("trial %d: bb throughput %.12g != flat %.12g\n%s", trial, rb, rf, p)
		}
		if d := load/rb - load/rf; d > 1e-9*(1+load/rb) || d < -1e-9*(1+load/rb) {
			t.Fatalf("trial %d: makespan disagreement: bb %.12g != flat %.12g", trial, load/rb, load/rf)
		}
		sameOrders := fmt.Sprint(bb.Send) == fmt.Sprint(flat.Send) && fmt.Sprint(bb.Return) == fmt.Sprint(flat.Return)
		if !sameOrders {
			// A tie within the pruning margin: both pairs must achieve the
			// same optimum (re-evaluated through the simplex to decouple the
			// check from the search's own arithmetic).
			sess := eval.NewSession()
			vb, err := sess.Throughput(eval.Scenario{Platform: p, Send: bb.Send, Return: bb.Return, Model: model}, eval.Simplex)
			if err != nil {
				t.Fatal(err)
			}
			vf, err := sess.Throughput(eval.Scenario{Platform: p, Send: flat.Send, Return: flat.Return, Model: model}, eval.Simplex)
			if err != nil {
				t.Fatal(err)
			}
			if d := vb - vf; d > tol || d < -tol {
				t.Fatalf("trial %d: winners differ beyond a tie: bb (σ1=%v σ2=%v)=%.12g, flat (σ1=%v σ2=%v)=%.12g",
					trial, bb.Send, bb.Return, vb, flat.Send, flat.Return, vf)
			}
		}
		// Canonicalised loads (Evaluate pins degenerate optima to the
		// lex-min vertex) of the two reported schedules.
		for i := range bb.Schedule.Alpha {
			a, b := bb.Schedule.Alpha[i], flat.Schedule.Alpha[i]
			if !sameOrders {
				continue // tie winners may enroll different workers
			}
			if d := a - b; d > 1e-9*(1+a+b) || d < -1e-9*(1+a+b) {
				t.Fatalf("trial %d: load of worker %d: bb %.12g != flat %.12g", trial, i, a, b)
			}
		}
	}
}

// TestPairBBCancellationInsideRecursion pins the cancellation granularity
// satellite: a deadline far shorter than the p = 7 search must surface as
// ctx.Err() promptly, with the expiry landing inside the return-order
// recursion (seeding is disabled so the deadline cannot be absorbed by the
// seeding phase, and the incumbent therefore starts unseeded, keeping the
// early subtrees deep).
func TestPairBBCancellationInsideRecursion(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	p := randomPairPlatform(rng, 7)
	disablePairSeeding = true
	defer func() { disablePairSeeding = false }()
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Microsecond)
	defer cancel()
	start := time.Now()
	_, err := BestPairExhaustiveAlgo(ctx, p, schedule.OnePort, eval.Auto, PairBB)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected context.DeadlineExceeded, got %v (after %v)", err, elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, the recursion is not polling the context", elapsed)
	}
}

// TestPairBBRejectsExact pins the algorithm/backend compatibility rule:
// the float64 prefix bounds cannot certify exact-rational comparisons.
func TestPairBBRejectsExact(t *testing.T) {
	p := randomPairPlatform(rand.New(rand.NewSource(1)), 3)
	if _, err := BestPairExhaustiveAlgo(t.Context(), p, schedule.OnePort, eval.ExactRational, PairBB); err == nil {
		t.Fatal("pair-bb accepted the exact-rational backend")
	}
	// PairAuto must route exact requests to the flat loop instead.
	if _, err := BestPairExhaustiveAlgo(t.Context(), p, schedule.OnePort, eval.ExactRational, PairAuto); err != nil {
		t.Fatalf("PairAuto with exact backend: %v", err)
	}
}

// TestSweepSearchAgreesAcrossBackends pins the incremental order search at
// the strategy level: the Auto (sweep-driven) search must agree with the
// simplex-only search on the winning throughput for FIFO and LIFO.
func TestSweepSearchAgreesAcrossBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(987))
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(3)
		p := randomPairPlatform(rng, n)
		for _, lifo := range []bool{false, true} {
			search := BestFIFOExhaustiveEval
			if lifo {
				search = BestLIFOExhaustiveEval
			}
			auto, _, err := search(t.Context(), p, schedule.OnePort, eval.Auto)
			if err != nil {
				t.Fatal(err)
			}
			simplex, _, err := search(t.Context(), p, schedule.OnePort, eval.Simplex)
			if err != nil {
				t.Fatal(err)
			}
			a, s := auto.Throughput(), simplex.Throughput()
			if diff := a - s; diff > 1e-9*(1+a+s) || diff < -1e-9*(1+a+s) {
				t.Fatalf("trial %d lifo=%v: auto search %.12g != simplex search %.12g", trial, lifo, a, s)
			}
		}
	}
}
