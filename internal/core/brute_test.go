package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/eval"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// TestForEachPermutationAdjacentTranspositions pins the generator's
// contract: every emitted order differs from its predecessor by exactly
// one ADJACENT transposition, the reported index names it, all n! orders
// are distinct, and the first emission is the identity with index -1.
// The incremental sweep's O(p−i) updates are only sound under exactly
// this contract.
func TestForEachPermutationAdjacentTranspositions(t *testing.T) {
	factorial := func(n int) int {
		f := 1
		for i := 2; i <= n; i++ {
			f *= i
		}
		return f
	}
	for n := 1; n <= 7; n++ {
		var prev []int
		seen := make(map[string]bool)
		count := 0
		err := forEachPermutation(n, func(perm []int, swapped int) error {
			count++
			key := fmt.Sprint(perm)
			if seen[key] {
				return fmt.Errorf("permutation %v emitted twice", perm)
			}
			seen[key] = true
			if prev == nil {
				if swapped != -1 {
					return fmt.Errorf("first emission reported swap index %d, want -1", swapped)
				}
				for i, v := range perm {
					if v != i {
						return fmt.Errorf("first emission %v is not the identity", perm)
					}
				}
			} else {
				if swapped < 0 || swapped+1 >= n {
					return fmt.Errorf("swap index %d out of range for n=%d", swapped, n)
				}
				diff := 0
				for i := range perm {
					if perm[i] != prev[i] {
						diff++
					}
				}
				if diff != 2 ||
					perm[swapped] != prev[swapped+1] || perm[swapped+1] != prev[swapped] {
					return fmt.Errorf("emission %v does not differ from %v by the adjacent transposition (%d, %d)",
						perm, prev, swapped, swapped+1)
				}
			}
			prev = append(prev[:0], perm...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != factorial(n) {
			t.Fatalf("n=%d: emitted %d permutations, want %d", n, count, factorial(n))
		}
	}
}

// TestForEachPermutationSliceReuse documents (and pins) the aliasing
// hazard: the slice passed to the callback is mutated between calls, so
// retaining it observes later permutations.
func TestForEachPermutationSliceReuse(t *testing.T) {
	var retained []int
	first := ""
	if err := forEachPermutation(4, func(perm []int, _ int) error {
		if retained == nil {
			retained = perm // deliberately aliased, violating the contract
			first = fmt.Sprint(perm)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(retained) == first {
		t.Fatal("retained slice did not change — the documented reuse hazard no longer holds, update the docs")
	}
}

// randomPairPlatform draws a small heterogeneous platform for the pair
// search tests.
func randomPairPlatform(rng *rand.Rand, n int) *platform.Platform {
	ws := make([]platform.Worker, n)
	for i := range ws {
		ws[i] = platform.Worker{
			C: 0.02 + 0.2*rng.Float64(),
			W: 0.05 + 0.5*rng.Float64(),
			D: 0.01 + 0.3*rng.Float64(),
		}
	}
	return platform.New(ws...)
}

// TestPairSeedsNeverExceedOptimum validates the incumbent seeding: every
// certified FIFO/LIFO seed is an achieved throughput of a scenario inside
// the pair-search space, so the maximum seed can never exceed the true
// pair optimum — seeding an unachievable incumbent would silently prune
// winning send orders.
func TestPairSeedsNeverExceedOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(2)
		p := randomPairPlatform(rng, n)
		fifo, lifo, err := pairSeeds(p, schedule.OnePort, n, true)
		if err != nil {
			t.Fatal(err)
		}
		maxSeed := -1.0
		for k := 0; k < fifo.Len(); k++ {
			if rho, ok := fifo.Throughput(k); ok && rho > maxSeed {
				maxSeed = rho
			}
			if rho, ok := lifo.Throughput(k); ok && rho > maxSeed {
				maxSeed = rho
			}
		}
		pr, err := BestPairExhaustive(p, schedule.OnePort, Float64)
		if err != nil {
			t.Fatal(err)
		}
		opt := pr.Schedule.Throughput()
		if maxSeed > opt*(1+1e-9) {
			t.Fatalf("trial %d: seeded incumbent %.12g exceeds the pair optimum %.12g", trial, maxSeed, opt)
		}
	}
}

// TestPairSeedingIncreasesPruning runs the pair search with and without
// incumbent seeding on 50 random platforms, via the package test hooks:
// the result must be identical either way, per-platform pruning must
// never decrease with seeds, and across the sample seeding must prune
// strictly more inner loops (the whole point of evaluating the two chain
// scenarios first).
func TestPairSeedingIncreasesPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(654))
	totalSeeded, totalUnseeded := uint64(0), uint64(0)
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(2)
		p := randomPairPlatform(rng, n)

		run := func(disable bool) (*PairResult, uint64) {
			disablePairSeeding = disable
			defer func() { disablePairSeeding = false }()
			before := pairPrunedInner.Load()
			pr, err := BestPairExhaustive(p, schedule.OnePort, Float64)
			if err != nil {
				t.Fatal(err)
			}
			return pr, pairPrunedInner.Load() - before
		}
		seeded, prunedSeeded := run(false)
		unseeded, prunedUnseeded := run(true)

		if s, u := seeded.Schedule.Throughput(), unseeded.Schedule.Throughput(); s != u {
			t.Fatalf("trial %d: seeding changed the optimum: %.17g != %.17g", trial, s, u)
		}
		if prunedSeeded < prunedUnseeded {
			t.Fatalf("trial %d: seeding reduced pruning: %d < %d", trial, prunedSeeded, prunedUnseeded)
		}
		totalSeeded += prunedSeeded
		totalUnseeded += prunedUnseeded
	}
	if totalSeeded <= totalUnseeded {
		t.Fatalf("seeding did not increase pruning across the sample: %d (seeded) vs %d (unseeded)",
			totalSeeded, totalUnseeded)
	}
}

// TestSweepSearchAgreesAcrossBackends pins the incremental order search at
// the strategy level: the Auto (sweep-driven) search must agree with the
// simplex-only search on the winning throughput for FIFO and LIFO.
func TestSweepSearchAgreesAcrossBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(987))
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(3)
		p := randomPairPlatform(rng, n)
		for _, lifo := range []bool{false, true} {
			search := BestFIFOExhaustiveEval
			if lifo {
				search = BestLIFOExhaustiveEval
			}
			auto, _, err := search(t.Context(), p, schedule.OnePort, eval.Auto)
			if err != nil {
				t.Fatal(err)
			}
			simplex, _, err := search(t.Context(), p, schedule.OnePort, eval.Simplex)
			if err != nil {
				t.Fatal(err)
			}
			a, s := auto.Throughput(), simplex.Throughput()
			if diff := a - s; diff > 1e-9*(1+a+s) || diff < -1e-9*(1+a+s) {
				t.Fatalf("trial %d lifo=%v: auto search %.12g != simplex search %.12g", trial, lifo, a, s)
			}
		}
	}
}
