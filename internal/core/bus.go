package core

import (
	"fmt"
	"math"
	"math/big"

	"repro/internal/platform"
	"repro/internal/schedule"
)

// ErrNotBus is returned by the closed-form bus routines when the platform's
// links are not identical.
var ErrNotBus = fmt.Errorf("core: platform is not a bus (links differ)")

// BusU computes the u_i sequence of Theorem 2 for a bus platform with
// communication costs c (forward) and d (return) and computation costs ws
// in worker order:
//
//	u_i = 1/(d+w_i) · Π_{j ≤ i} (d+w_j)/(c+w_j).
//
// Σu_i is invariant under permutations of the workers (all FIFO orderings
// are equivalent on a bus, cf. Adler, Gong and Rosenberg), a property the
// tests verify.
func BusU(c, d float64, ws []float64) []float64 {
	u := make([]float64, len(ws))
	prod := 1.0
	for i, w := range ws {
		prod *= (d + w) / (c + w)
		u[i] = prod / (d + w)
	}
	return u
}

// BusTwoPortFIFOThroughput returns ρ̃ = Σu / (1 + d·Σu), the optimal FIFO
// throughput on a bus under the two-port model (from the companion paper
// [7, 8]; it is the second operand of Theorem 2's min).
func BusTwoPortFIFOThroughput(p *platform.Platform) (float64, error) {
	c, d, ws, err := busParams(p)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, u := range BusU(c, d, ws) {
		sum += u
	}
	return sum / (1 + d*sum), nil
}

// BusFIFOThroughput returns the optimal one-port FIFO throughput on a bus
// platform (Theorem 2):
//
//	ρ_opt = min{ 1/(c+d),  Σu_i/(1 + d·Σu_i) }.
func BusFIFOThroughput(p *platform.Platform) (float64, error) {
	rho2, err := BusTwoPortFIFOThroughput(p)
	if err != nil {
		return 0, err
	}
	c, d, _, _ := busParams(p)
	return math.Min(1/(c+d), rho2), nil
}

// BusFIFOSchedule constructs an optimal one-port FIFO schedule on a bus
// platform, following the constructive proof of Theorem 2: start from the
// optimal two-port FIFO schedule α_i = u_i/(1 + d·Σu) (all workers
// enrolled, no idle time) and, if its throughput exceeds the one-port
// communication bound 1/(c+d), scale every load by 1/(ρ̃·(c+d)); the scaled
// schedule saturates the master port and introduces the uniform gap of the
// proof as idle time before each return message.
func BusFIFOSchedule(p *platform.Platform) (*schedule.Schedule, error) {
	c, d, ws, err := busParams(p)
	if err != nil {
		return nil, err
	}
	u := BusU(c, d, ws)
	sum := 0.0
	for _, ui := range u {
		sum += ui
	}
	rho2 := sum / (1 + d*sum)
	alpha := make([]float64, len(ws))
	for i, ui := range u {
		alpha[i] = ui / (1 + d*sum)
	}
	if bound := 1 / (c + d); rho2 > bound {
		scale := 1 / (rho2 * (c + d))
		for i := range alpha {
			alpha[i] *= scale
		}
	}
	order := platform.Identity(p.P())
	s := &schedule.Schedule{
		SendOrder:   order,
		ReturnOrder: order.Clone(),
		Alpha:       alpha,
		T:           1,
	}
	if err := s.Check(p, schedule.OnePort); err != nil {
		return nil, fmt.Errorf("core: internal error: Theorem 2 construction fails verification: %w", err)
	}
	return s, nil
}

// BusLIFOThroughput returns the throughput of the fully-tight LIFO schedule
// on a bus in the given worker order: all per-worker constraints are
// equalities, giving the recurrence
//
//	α_1 = 1/(c+d+w_1),   α_{i+1} = α_i · w_i/(c+d+w_{i+1}),
//
// whose sum the tests cross-validate against the LIFO linear program.
func BusLIFOThroughput(p *platform.Platform) (float64, error) {
	c, d, ws, err := busParams(p)
	if err != nil {
		return 0, err
	}
	rho := 0.0
	prev := 0.0
	for i, w := range ws {
		var a float64
		if i == 0 {
			a = 1 / (c + d + w)
		} else {
			a = prev * ws[i-1] / (c + d + w)
		}
		rho += a
		prev = a
	}
	return rho, nil
}

// busParams extracts (c, d, ws) after validating that p is a bus.
func busParams(p *platform.Platform) (c, d float64, ws []float64, err error) {
	if err := p.Validate(); err != nil {
		return 0, 0, nil, err
	}
	if !p.IsBus() {
		return 0, 0, nil, ErrNotBus
	}
	c, d = p.Workers[0].C, p.Workers[0].D
	ws = make([]float64, p.P())
	for i, w := range p.Workers {
		ws[i] = w.W
	}
	return c, d, ws, nil
}

// ExactBusFIFOThroughput evaluates Theorem 2's closed form in exact
// rational arithmetic over the platform's float64 parameters (each float64
// converts to a rational exactly). Tests compare it to the exact LP optimum
// with Cmp, i.e. as a true identity.
func ExactBusFIFOThroughput(p *platform.Platform) (*big.Rat, error) {
	c64, d64, ws64, err := busParams(p)
	if err != nil {
		return nil, err
	}
	c := new(big.Rat).SetFloat64(c64)
	d := new(big.Rat).SetFloat64(d64)

	sum := new(big.Rat)
	prod := new(big.Rat).SetInt64(1)
	num := new(big.Rat)
	den := new(big.Rat)
	for _, wf := range ws64 {
		w := new(big.Rat).SetFloat64(wf)
		num.Add(d, w) // d + w
		den.Add(c, w) // c + w
		prod.Mul(prod, num)
		prod.Quo(prod, den)
		ui := new(big.Rat).Quo(prod, num) // prod / (d+w)
		sum.Add(sum, ui)
	}
	// ρ̃ = sum / (1 + d·sum)
	rho2 := new(big.Rat).Mul(d, sum)
	rho2.Add(rho2, big.NewRat(1, 1))
	rho2.Quo(new(big.Rat).Set(sum), rho2)
	// bound = 1 / (c+d)
	bound := new(big.Rat).Add(c, d)
	bound.Inv(bound)
	if rho2.Cmp(bound) < 0 {
		return rho2, nil
	}
	return bound, nil
}
