package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// scheduleBits flattens a schedule into its float64 bit patterns so two
// schedules can be compared for BYTE identity, not mere numerical
// closeness — the contract of the parallel searches is that worker count
// and steal interleaving change wall-clock time and nothing else.
func scheduleBits(s *schedule.Schedule) []uint64 {
	out := []uint64{math.Float64bits(s.T)}
	for _, a := range s.Alpha {
		out = append(out, math.Float64bits(a))
	}
	return out
}

func bitsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func ordersEqual(a, b platform.Order) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelSearchMatchesSerialByteIdentical is the agreement suite the
// issue pins: across 240 random platforms, the pair branch-and-bound and
// the FIFO/LIFO sweeps must return byte-identical results — the same
// orders, the same load vector bit patterns, the same horizon bits — at
// 2, 4 and 8 workers as the serial search does, on every platform.
func TestParallelSearchMatchesSerialByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7171))
	const trials = 240
	workerCounts := []int{2, 4, 8}
	for trial := 0; trial < trials; trial++ {
		// Pair search: sizes 3-5 keep 240 trials fast while still giving
		// every worker count ranks to steal (5! = 120 send orders).
		n := 3 + trial%3
		p := randomPairPlatform(rng, n)
		serial, err := BestPairExhaustiveAlgo(context.Background(), p, schedule.OnePort, eval.Auto, PairBB)
		if err != nil {
			t.Fatal(err)
		}
		sBits := scheduleBits(serial.Schedule)
		for _, w := range workerCounts {
			ctx := ContextWithSearchParallelism(context.Background(), w)
			got, err := BestPairExhaustiveAlgo(ctx, p, schedule.OnePort, eval.Auto, PairBB)
			if err != nil {
				t.Fatal(err)
			}
			if !ordersEqual(got.Send, serial.Send) || !ordersEqual(got.Return, serial.Return) {
				t.Fatalf("trial %d workers %d: pair search returned (σ1=%v σ2=%v), serial has (σ1=%v σ2=%v)\n%s",
					trial, w, got.Send, got.Return, serial.Send, serial.Return, p)
			}
			if !bitsEqual(scheduleBits(got.Schedule), sBits) {
				t.Fatalf("trial %d workers %d: pair schedule diverges bitwise from serial\nparallel: T=%x α=%v\nserial:   T=%x α=%v\n%s",
					trial, w, math.Float64bits(got.Schedule.T), got.Schedule.Alpha,
					math.Float64bits(serial.Schedule.T), serial.Schedule.Alpha, p)
			}
		}

		// Order sweeps: sizes 3-6, FIFO on even trials, LIFO on odd.
		n = 3 + trial%4
		p = randomPairPlatform(rng, n)
		lifo := trial%2 == 1
		search := BestFIFOExhaustiveEval
		if lifo {
			search = BestLIFOExhaustiveEval
		}
		serialSched, serialOrder, err := search(context.Background(), p, schedule.OnePort, eval.Auto)
		if err != nil {
			t.Fatal(err)
		}
		sBits = scheduleBits(serialSched)
		for _, w := range workerCounts {
			ctx := ContextWithSearchParallelism(context.Background(), w)
			gotSched, gotOrder, err := search(ctx, p, schedule.OnePort, eval.Auto)
			if err != nil {
				t.Fatal(err)
			}
			if !ordersEqual(gotOrder, serialOrder) {
				t.Fatalf("trial %d workers %d lifo=%v: sweep returned σ=%v, serial has σ=%v\n%s",
					trial, w, lifo, gotOrder, serialOrder, p)
			}
			if !bitsEqual(scheduleBits(gotSched), sBits) {
				t.Fatalf("trial %d workers %d lifo=%v: sweep schedule diverges bitwise from serial\nparallel: T=%x α=%v\nserial:   T=%x α=%v\n%s",
					trial, w, lifo, math.Float64bits(gotSched.T), gotSched.Alpha,
					math.Float64bits(serialSched.T), serialSched.Alpha, p)
			}
		}
	}
}

// TestStealingPoolCoversEveryRankOnce is the steal-storm stress test: many
// workers over a small rank space with near-zero per-rank work, so the
// deques drain instantly and the run is dominated by concurrent
// steal-half traffic. Every rank must be delivered exactly once per run.
// The -race CI job runs this test and makes the steal/install/pop locking
// discipline part of the checked surface.
func TestStealingPoolCoversEveryRankOnce(t *testing.T) {
	const (
		workers = 16
		total   = int64(1000)
		rounds  = 50
	)
	ctx := ContextWithSearchParallelism(context.Background(), workers)
	for round := 0; round < rounds; round++ {
		var mu sync.Mutex
		seen := make(map[int64]int, total)
		winner := newSearchCore(ctx)
		err := runStealingPool(ctx, winner, total, func(core *searchCore, next func() (int64, bool)) error {
			local := make([]int64, 0, 64)
			for {
				r, ok := next()
				if !ok {
					break
				}
				local = append(local, r)
			}
			mu.Lock()
			for _, r := range local {
				seen[r]++
			}
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(seen)) != total {
			t.Fatalf("round %d: %d of %d ranks delivered", round, len(seen), total)
		}
		for r, c := range seen {
			if c != 1 {
				t.Fatalf("round %d: rank %d delivered %d times", round, r, c)
			}
		}
	}
}

// TestParallelPairSearchCancellation pins the parallel cancellation
// satellite: with 4 workers on a p = 7 search far larger than its 500µs
// deadline, the first worker to observe the expired context must stop the
// whole pool through the shared flag, and the pool must surface
// context.DeadlineExceeded — not the internal stop sentinel — promptly.
func TestParallelPairSearchCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	p := randomPairPlatform(rng, 7)
	disablePairSeeding = true
	defer func() { disablePairSeeding = false }()
	ctx, cancel := context.WithTimeout(ContextWithSearchParallelism(context.Background(), 4), 500*time.Microsecond)
	defer cancel()
	start := time.Now()
	_, err := BestPairExhaustiveAlgo(ctx, p, schedule.OnePort, eval.Auto, PairBB)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected context.DeadlineExceeded, got %v (after %v)", err, elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, the workers are not sharing the stop flag", elapsed)
	}
}

// TestRankDequeStealHalf pins the deque arithmetic: the thief takes the
// upper half (rounded down), the victim keeps the front, singleton
// intervals are not stealable.
func TestRankDequeStealHalf(t *testing.T) {
	d := &rankDeque{lo: 10, hi: 20}
	lo, hi, ok := d.stealHalf()
	if !ok || lo != 15 || hi != 20 {
		t.Fatalf("stealHalf of [10,20) = [%d,%d) ok=%v, want [15,20) true", lo, hi, ok)
	}
	if d.lo != 10 || d.hi != 15 {
		t.Fatalf("victim keeps [%d,%d), want [10,15)", d.lo, d.hi)
	}
	d.install(7, 8)
	if _, _, ok := d.stealHalf(); ok {
		t.Fatal("stole from a singleton interval")
	}
	if r, ok := d.pop(); !ok || r != 7 {
		t.Fatalf("pop = %d,%v want 7,true", r, ok)
	}
	if _, ok := d.pop(); ok {
		t.Fatal("pop from an empty deque succeeded")
	}
}
