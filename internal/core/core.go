// Package core implements the scheduling theory of RR-5738: fixed
// communication scenarios (Section 2.3), the optimal one-port FIFO
// schedule on a star (Theorem 1 and Proposition 1), the optimal one-port
// LIFO schedule, the closed-form optimal FIFO throughput on a bus
// (Theorem 2) with its constructive two-port→one-port transformation, the
// INC_C / INC_W heuristics of Section 5, and exhaustive searches used as
// optimality oracles on small platforms.
//
// All scenario evaluation is delegated to the internal/eval pipeline: a
// tiered evaluator that uses closed-form load recurrences and a direct
// tight-system solver where their optimality certificates hold, and the
// simplex (float64 or exact rational) otherwise. Entry points accept
// either an Arith (the historical float64/exact switch) or, in their
// *Eval variants, an explicit eval.Mode selecting the backend.
package core

import (
	"errors"
	"fmt"

	"repro/internal/eval"
	"repro/internal/lp"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// Arith selects the arithmetic used by the scenario evaluator.
type Arith int

// Arithmetic modes.
const (
	// Float64 evaluates scenarios with the tiered float64 pipeline
	// (closed form / direct tight system / float64 simplex).
	Float64 Arith = iota
	// Exact evaluates them with the exact rational simplex.
	Exact
)

// String names the arithmetic mode.
func (a Arith) String() string {
	switch a {
	case Float64:
		return "float64"
	case Exact:
		return "exact"
	}
	return fmt.Sprintf("Arith(%d)", int(a))
}

// evalMode maps the historical Arith switch onto an eval.Mode: Float64
// defers to the tiered Auto pipeline, Exact forces the rational simplex.
func evalMode(arith Arith) (eval.Mode, error) {
	switch arith {
	case Float64:
		return eval.Auto, nil
	case Exact:
		return eval.ExactRational, nil
	default:
		return 0, fmt.Errorf("core: unknown arithmetic %v", arith)
	}
}

// ErrNoCommonZ is returned by OptimalFIFO when the platform has no common
// return/forward ratio z = d_i/c_i, in which case Theorem 1 does not apply.
var ErrNoCommonZ = errors.New("core: platform has no common ratio z = d/c; Theorem 1 does not apply (use BestFIFOExhaustive or SolveScenario)")

// ScenarioLP builds the linear program of Section 2.3 for a fixed
// scenario. It delegates to the eval pipeline, the single place that
// constructs these programs; callers needing the raw LP (exact identity
// tests, diagnostics) go through here.
func ScenarioLP(p *platform.Platform, send, ret platform.Order, model schedule.Model) (*lp.Problem, error) {
	return eval.ScenarioLP(eval.Scenario{Platform: p, Send: send, Return: ret, Model: model})
}

// SolveScenario computes the optimal loads for a fixed scenario and returns
// the resulting schedule with horizon T = 1. Workers that receive zero load
// in the optimum are pruned from the schedule's orders, implementing the
// paper's resource selection (Proposition 1). The schedule is verified
// against the feasibility checker before being returned.
func SolveScenario(p *platform.Platform, send, ret platform.Order, model schedule.Model, arith Arith) (*schedule.Schedule, error) {
	mode, err := evalMode(arith)
	if err != nil {
		return nil, err
	}
	return SolveScenarioEval(p, send, ret, model, mode)
}

// SolveScenarioEval is SolveScenario with an explicit evaluation backend.
func SolveScenarioEval(p *platform.Platform, send, ret platform.Order, model schedule.Model, mode eval.Mode) (*schedule.Schedule, error) {
	return eval.Evaluate(eval.Scenario{Platform: p, Send: send, Return: ret, Model: model}, mode)
}

// ExactThroughput solves the scenario LP in rational arithmetic and returns
// the exact optimal throughput as a string "num/den" together with its
// float64 value. It is used by tests that verify closed forms as exact
// identities.
func ExactThroughput(p *platform.Platform, send, ret platform.Order, model schedule.Model) (float64, string, error) {
	return eval.ExactObjective(eval.Scenario{Platform: p, Send: send, Return: ret, Model: model})
}
