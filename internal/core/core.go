// Package core implements the scheduling theory of RR-5738: linear programs
// for fixed communication scenarios (Section 2.3), the optimal one-port
// FIFO schedule on a star (Theorem 1 and Proposition 1), the optimal
// one-port LIFO schedule, the closed-form optimal FIFO throughput on a bus
// (Theorem 2) with its constructive two-port→one-port transformation, the
// INC_C / INC_W heuristics of Section 5, and exhaustive searches used as
// optimality oracles on small platforms.
//
// All entry points can run either in float64 arithmetic (fast; used by the
// benchmarks and the experiment harness) or in exact rational arithmetic
// (math/big.Rat; used by the tests to verify theorems as identities).
package core

import (
	"errors"
	"fmt"

	"repro/internal/lp"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// Arith selects the arithmetic used by the linear-programming solver.
type Arith int

// Arithmetic modes.
const (
	// Float64 solves the scheduling LPs with the float64 simplex.
	Float64 Arith = iota
	// Exact solves them with the exact rational simplex.
	Exact
)

// String names the arithmetic mode.
func (a Arith) String() string {
	switch a {
	case Float64:
		return "float64"
	case Exact:
		return "exact"
	}
	return fmt.Sprintf("Arith(%d)", int(a))
}

// ErrNoCommonZ is returned by OptimalFIFO when the platform has no common
// return/forward ratio z = d_i/c_i, in which case Theorem 1 does not apply.
var ErrNoCommonZ = errors.New("core: platform has no common ratio z = d/c; Theorem 1 does not apply (use BestFIFOExhaustive or SolveScenario)")

// ScenarioLP builds the linear program of Section 2.3 for a fixed scenario:
// the workers enrolled are exactly those listed in send (which must contain
// the same set as ret), data messages are sent back-to-back in send order
// starting at t = 0, result messages are received back-to-back in ret order
// ending at t = 1.
//
// Variables are the loads α of the enrolled workers, in send-order
// position. For the enrolled worker at send position s and return position
// r the per-worker constraint reads
//
//	Σ_{send pos ≤ s} α_j·c_j  +  α_i·w_i  +  Σ_{ret pos ≥ r} α_j·d_j  ≤  1,
//
// the idle time x_i being the slack of the row (equation (2a) of the paper
// with x_i eliminated). The port constraints are
//
//	one-port:  Σ α_j·c_j + Σ α_j·d_j ≤ 1            (2b)
//	two-port:  Σ α_j·c_j ≤ 1  and  Σ α_j·d_j ≤ 1.
//
// The objective maximises the throughput ρ = Σ α_j.
func ScenarioLP(p *platform.Platform, send, ret platform.Order, model schedule.Model) (*lp.Problem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := validOrderPair(p.P(), send, ret); err != nil {
		return nil, err
	}
	q := len(send)
	prob := lp.NewMaximize()
	// varOf[workerIndex] = LP variable of that worker's load.
	varOf := make(map[int]int, q)
	for _, i := range send {
		varOf[i] = prob.AddVar(fmt.Sprintf("alpha_%s", p.Workers[i].Name), 1)
	}
	retPos := make(map[int]int, q)
	for k, i := range ret {
		retPos[i] = k
	}
	// Per-worker constraints.
	for s, i := range send {
		coefs := make([]lp.Coef, 0, 2*q)
		for _, j := range send[:s+1] {
			coefs = append(coefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].C})
		}
		coefs = append(coefs, lp.Coef{Var: varOf[i], Value: p.Workers[i].W})
		for _, j := range ret[retPos[i]:] {
			coefs = append(coefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].D})
		}
		prob.AddConstraint(fmt.Sprintf("worker_%s", p.Workers[i].Name), coefs, lp.LE, 1)
	}
	// Port constraints.
	switch model {
	case schedule.OnePort:
		// C and D stay separate terms so the exact solver accumulates the
		// row without float64 rounding of c+d.
		coefs := make([]lp.Coef, 0, 2*q)
		for _, j := range send {
			coefs = append(coefs,
				lp.Coef{Var: varOf[j], Value: p.Workers[j].C},
				lp.Coef{Var: varOf[j], Value: p.Workers[j].D})
		}
		prob.AddConstraint("one_port", coefs, lp.LE, 1)
	case schedule.TwoPort:
		sendCoefs := make([]lp.Coef, 0, q)
		retCoefs := make([]lp.Coef, 0, q)
		for _, j := range send {
			sendCoefs = append(sendCoefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].C})
			retCoefs = append(retCoefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].D})
		}
		prob.AddConstraint("send_port", sendCoefs, lp.LE, 1)
		prob.AddConstraint("recv_port", retCoefs, lp.LE, 1)
	default:
		return nil, fmt.Errorf("core: unknown model %v", model)
	}
	return prob, nil
}

func validOrderPair(n int, send, ret platform.Order) error {
	inSend := make(map[int]bool, len(send))
	for _, i := range send {
		if i < 0 || i >= n {
			return fmt.Errorf("core: order references worker %d outside platform of %d workers", i, n)
		}
		if inSend[i] {
			return fmt.Errorf("core: worker %d appears twice in send order", i)
		}
		inSend[i] = true
	}
	if len(send) == 0 {
		return fmt.Errorf("core: empty send order")
	}
	if len(ret) != len(send) {
		return fmt.Errorf("core: send order has %d workers, return order %d", len(send), len(ret))
	}
	seen := make(map[int]bool, len(ret))
	for _, i := range ret {
		if seen[i] {
			return fmt.Errorf("core: worker %d appears twice in return order", i)
		}
		seen[i] = true
		if !inSend[i] {
			return fmt.Errorf("core: worker %d in return order but not in send order", i)
		}
	}
	return nil
}

// SolveScenario computes the optimal loads for a fixed scenario and returns
// the resulting schedule with horizon T = 1. Workers that receive zero load
// in the LP optimum are pruned from the schedule's orders, implementing the
// paper's resource selection (Proposition 1). The schedule is verified
// against the feasibility checker before being returned.
func SolveScenario(p *platform.Platform, send, ret platform.Order, model schedule.Model, arith Arith) (*schedule.Schedule, error) {
	prob, err := ScenarioLP(p, send, ret, model)
	if err != nil {
		return nil, err
	}
	var x []float64
	var status lp.Status
	switch arith {
	case Float64:
		sol, err := prob.Solve()
		if err != nil {
			return nil, err
		}
		status, x = sol.Status, sol.X
	case Exact:
		sol, err := prob.SolveExact()
		if err != nil {
			return nil, err
		}
		status = sol.Status
		if status == lp.Optimal {
			_, x = sol.Float()
		}
	default:
		return nil, fmt.Errorf("core: unknown arithmetic %v", arith)
	}
	if status != lp.Optimal {
		// The scheduling LPs are always feasible (α = 0) and bounded (the
		// port constraint caps Σα), so any other status is an internal bug.
		return nil, fmt.Errorf("core: scenario LP terminated %v (internal error)", status)
	}
	s := &schedule.Schedule{
		Alpha: make([]float64, p.P()),
		T:     1,
	}
	for k, i := range send {
		s.Alpha[i] = x[k]
	}
	// Prune zero-load workers from both orders (resource selection).
	const loadEps = 1e-12
	for _, i := range send {
		if s.Alpha[i] <= loadEps {
			s.Alpha[i] = 0
			continue
		}
		s.SendOrder = append(s.SendOrder, i)
	}
	for _, i := range ret {
		if s.Alpha[i] > 0 {
			s.ReturnOrder = append(s.ReturnOrder, i)
		}
	}
	if len(s.SendOrder) == 0 {
		return nil, fmt.Errorf("core: LP assigned zero load to every worker (degenerate platform?)")
	}
	if err := s.Check(p, model); err != nil {
		return nil, fmt.Errorf("core: internal error: computed schedule fails verification: %w", err)
	}
	return s, nil
}

// ExactThroughput solves the scenario LP in rational arithmetic and returns
// the exact optimal throughput as a string "num/den" together with its
// float64 value. It is used by tests that verify closed forms as exact
// identities.
func ExactThroughput(p *platform.Platform, send, ret platform.Order, model schedule.Model) (float64, string, error) {
	prob, err := ScenarioLP(p, send, ret, model)
	if err != nil {
		return 0, "", err
	}
	sol, err := prob.SolveExact()
	if err != nil {
		return 0, "", err
	}
	if sol.Status != lp.Optimal {
		return 0, "", fmt.Errorf("core: scenario LP terminated %v", sol.Status)
	}
	f, _ := sol.Objective.Float64()
	return f, sol.Objective.RatString(), nil
}
