package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// emission is one (permutation, swapped) pair of an SJT enumeration.
type emission struct {
	perm    string
	swapped int
}

func collectFull(t *testing.T, n int) []emission {
	t.Helper()
	var out []emission
	err := forEachPermutation(n, func(perm []int, swapped int) error {
		out = append(out, emission{fmt.Sprint(perm), swapped})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestForEachPermutationRangeMatchesFull pins the contract the parallel
// searches rely on: for ANY partition of [0, n!) into contiguous rank
// ranges, concatenating the range enumerations reproduces the full SJT
// enumeration — the same permutations at the same ranks, and the same
// adjacent-transposition indices except at range openers (swapped == -1,
// where a worker rebuilds its sweep state from scratch).
func TestForEachPermutationRangeMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for n := 1; n <= 8; n++ {
		full := collectFull(t, n)
		total := factorial(n)
		if int64(len(full)) != total {
			t.Fatalf("n=%d: full enumeration emitted %d of %d permutations", n, len(full), total)
		}
		// A handful of random partitions plus the edge splits.
		for trial := 0; trial < 5; trial++ {
			var cuts []int64
			switch trial {
			case 0: // one range
				cuts = []int64{0, total}
			case 1: // singleton ranges (every emission a range opener)
				for r := int64(0); r <= total; r++ {
					cuts = append(cuts, r)
				}
			default:
				cuts = []int64{0}
				for r := int64(1); r < total; r++ {
					if rng.Intn(4) == 0 {
						cuts = append(cuts, r)
					}
				}
				cuts = append(cuts, total)
			}
			rank := int64(0)
			for c := 0; c+1 < len(cuts); c++ {
				lo, hi := cuts[c], cuts[c+1]
				first := true
				err := forEachPermutationRange(n, lo, hi, func(perm []int, swapped int) error {
					want := full[rank]
					if got := fmt.Sprint(perm); got != want.perm {
						t.Fatalf("n=%d rank=%d range [%d,%d): got perm %s, full enumeration has %s", n, rank, lo, hi, got, want.perm)
					}
					if first {
						if swapped != -1 {
							t.Fatalf("n=%d rank=%d: range opener reported swapped=%d, want -1", n, rank, swapped)
						}
					} else if swapped != want.swapped {
						t.Fatalf("n=%d rank=%d: swapped=%d, full enumeration has %d", n, rank, swapped, want.swapped)
					}
					first = false
					rank++
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			if rank != total {
				t.Fatalf("n=%d: partition covered %d of %d ranks", n, rank, total)
			}
		}
	}
}

// TestSJTUnrankResumesDirections pins the direction reconstruction: the
// state unranked at rank r must step to exactly the same successor the
// full enumeration produces, for every r (covered implicitly above via the
// singleton partition, and explicitly here at n = 7 for a larger stride).
func TestSJTUnrankResumesDirections(t *testing.T) {
	const n = 7
	full := collectFull(t, n)
	perm := make([]int, n)
	pos := make([]int, n)
	dir := make([]int, n)
	for r := int64(0); r < factorial(n)-1; r += 97 {
		sjtUnrank(n, r, perm, pos, dir)
		if got := fmt.Sprint(perm); got != full[r].perm {
			t.Fatalf("rank %d: unranked %s, want %s", r, got, full[r].perm)
		}
		left, ok := sjtStep(n, perm, pos, dir)
		if !ok {
			t.Fatalf("rank %d: no mobile value before the last rank", r)
		}
		if got, want := fmt.Sprint(perm), full[r+1].perm; got != want {
			t.Fatalf("rank %d: stepped to %s, want %s", r, got, want)
		}
		if left != full[r+1].swapped {
			t.Fatalf("rank %d: step swapped %d, want %d", r, left, full[r+1].swapped)
		}
	}
}
