package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/platform"
	"repro/internal/schedule"
)

// randomBus returns a bus platform with random c, d (common) and per-worker
// w. When zBelowOne, d < c.
func randomBus(rng *rand.Rand, p int, zBelowOne bool) *platform.Platform {
	c := 0.02 + 0.2*rng.Float64()
	var d float64
	if zBelowOne {
		d = c * (0.1 + 0.8*rng.Float64())
	} else {
		d = c * (1.1 + 2*rng.Float64())
	}
	ws := make([]float64, p)
	for i := range ws {
		ws[i] = 0.05 + 0.5*rng.Float64()
	}
	return platform.NewBus(c, d, ws...)
}

// --- Theorem 1: sorted-by-c is optimal among all FIFO orders -------------

func TestTheorem1AgainstExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 12; trial++ {
		p := randomStar(rng, 5, 0.2+0.7*rng.Float64())
		opt, err := OptimalFIFO(p, Float64)
		if err != nil {
			t.Fatal(err)
		}
		best, order, err := BestFIFOExhaustive(p, schedule.OnePort, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if best.Throughput() > opt.Throughput()+tol {
			t.Errorf("trial %d: exhaustive found better FIFO order %v: %g > %g\n%s",
				trial, order, best.Throughput(), opt.Throughput(), p)
		}
		if !approxEq(best.Throughput(), opt.Throughput()) {
			t.Errorf("trial %d: OptimalFIFO %g below exhaustive best %g",
				trial, opt.Throughput(), best.Throughput())
		}
	}
}

func TestTheorem1AgainstExhaustiveZGreaterOne(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 8; trial++ {
		p := randomStar(rng, 4, 1.2+2*rng.Float64())
		opt, err := OptimalFIFO(p, Float64)
		if err != nil {
			t.Fatal(err)
		}
		best, _, err := BestFIFOExhaustive(p, schedule.OnePort, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(best.Throughput(), opt.Throughput()) {
			t.Errorf("trial %d (z>1): OptimalFIFO %g != exhaustive best %g",
				trial, opt.Throughput(), best.Throughput())
		}
	}
}

func TestZEqualsOneOrderIrrelevant(t *testing.T) {
	// Section 3: when z = 1 (c_i = d_i) the ordering of participating
	// workers has no importance — every full order gives the same optimum.
	rng := rand.New(rand.NewSource(102))
	p := randomStar(rng, 4, 1.0)
	ref, err := OptimalFIFO(p, Float64)
	if err != nil {
		t.Fatal(err)
	}
	err = nil
	count := 0
	forEach := func(perm []int, _ int) error {
		order := platform.Order(perm).Clone()
		s, err := FIFOWithOrder(p, order, schedule.OnePort, Float64)
		if err != nil {
			return err
		}
		if !approxEq(s.Throughput(), ref.Throughput()) {
			t.Errorf("order %v: throughput %g != %g", order, s.Throughput(), ref.Throughput())
		}
		count++
		return nil
	}
	if err := forEachPermutation(4, forEach); err != nil {
		t.Fatal(err)
	}
	if count != 24 {
		t.Fatalf("visited %d permutations, want 24", count)
	}
}

// --- Lemma 1: at most one participant has idle time ----------------------

func TestLemma1AtMostOneIdle(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 15; trial++ {
		p := randomStar(rng, 5, 0.5)
		s, err := OptimalFIFO(p, Exact)
		if err != nil {
			t.Fatal(err)
		}
		idleCount := 0
		for _, wt := range s.Timeline(p) {
			if s.Alpha[wt.Worker] > 0 && wt.Idle > 1e-6 {
				idleCount++
			}
		}
		if idleCount > 1 {
			t.Errorf("trial %d: %d participants idle (Lemma 1 allows 1)\n%v", trial, idleCount, s)
		}
	}
}

// --- Theorem 2: bus closed form ------------------------------------------

func TestTheorem2MatchesLP(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 20; trial++ {
		p := randomBus(rng, 1+rng.Intn(7), true)
		closed, err := BusFIFOThroughput(p)
		if err != nil {
			t.Fatal(err)
		}
		s, err := OptimalFIFO(p, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(closed, s.Throughput()) {
			t.Errorf("trial %d: closed form %g != LP optimum %g\n%s",
				trial, closed, s.Throughput(), p)
		}
	}
}

func TestTheorem2ExactIdentity(t *testing.T) {
	// The closed form and the LP optimum must agree *exactly* in rational
	// arithmetic — a strong joint test of the simplex and the formula.
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 6; trial++ {
		p := randomBus(rng, 1+rng.Intn(5), true)
		closed, err := ExactBusFIFOThroughput(p)
		if err != nil {
			t.Fatal(err)
		}
		order := platform.Identity(p.P())
		prob, err := ScenarioLP(p, order, order, schedule.OnePort)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := prob.SolveExact()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Objective.Cmp(closed) != 0 {
			t.Errorf("trial %d: exact closed form %s != exact LP %s\n%s",
				trial, closed.RatString(), sol.Objective.RatString(), p)
		}
	}
}

func TestTheorem2ScheduleConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	for trial := 0; trial < 20; trial++ {
		p := randomBus(rng, 1+rng.Intn(7), true)
		s, err := BusFIFOSchedule(p) // verified one-port internally
		if err != nil {
			t.Fatal(err)
		}
		closed, err := BusFIFOThroughput(p)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(s.Throughput(), closed) {
			t.Errorf("trial %d: constructed throughput %g != closed form %g",
				trial, s.Throughput(), closed)
		}
		// Theorem 2: all processors are enrolled in the optimal solution.
		if got := len(s.Participants()); got != p.P() {
			t.Errorf("trial %d: %d of %d workers enrolled", trial, got, p.P())
		}
	}
}

func TestTheorem2CommBoundRegime(t *testing.T) {
	// With negligible compute the two-port throughput exceeds 1/(c+d) and
	// the one-port optimum must saturate the port: ρ = 1/(c+d).
	p := platform.NewBus(0.3, 0.15, 1e-9, 1e-9, 1e-9)
	rho, err := BusFIFOThroughput(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(rho, 1/0.45) {
		t.Errorf("rho = %g, want 1/(c+d) = %g", rho, 1/0.45)
	}
	s, err := BusFIFOSchedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(s.Throughput(), 1/0.45) {
		t.Errorf("constructed rho = %g, want %g", s.Throughput(), 1/0.45)
	}
	// In this regime every worker has a positive gap before its return.
	for _, wt := range s.Timeline(p) {
		if wt.Idle <= 0 {
			t.Errorf("worker %d: expected positive idle gap, got %g", wt.Worker, wt.Idle)
		}
	}
}

func TestBusUOrderInvariance(t *testing.T) {
	// Σu_i is permutation invariant (all FIFO orderings equivalent on a
	// bus, Adler-Gong-Rosenberg).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		c := 0.05 + rng.Float64()*0.3
		d := c * (0.1 + 0.8*rng.Float64())
		ws := make([]float64, n)
		for i := range ws {
			ws[i] = 0.05 + rng.Float64()
		}
		sum := func(xs []float64) float64 {
			s := 0.0
			for _, x := range xs {
				s += x
			}
			return s
		}
		ref := sum(BusU(c, d, ws))
		perm := rng.Perm(n)
		shuffled := make([]float64, n)
		for i, j := range perm {
			shuffled[i] = ws[j]
		}
		got := sum(BusU(c, d, shuffled))
		return math.Abs(ref-got) <= 1e-9*(1+ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBusRoutinesRejectNonBus(t *testing.T) {
	star := platform.New(
		platform.Worker{C: 1, W: 1, D: 0.5},
		platform.Worker{C: 2, W: 1, D: 1},
	)
	if _, err := BusFIFOThroughput(star); err != ErrNotBus {
		t.Errorf("BusFIFOThroughput: want ErrNotBus, got %v", err)
	}
	if _, err := BusFIFOSchedule(star); err != ErrNotBus {
		t.Errorf("BusFIFOSchedule: want ErrNotBus, got %v", err)
	}
	if _, err := BusLIFOThroughput(star); err != ErrNotBus {
		t.Errorf("BusLIFOThroughput: want ErrNotBus, got %v", err)
	}
	if _, err := ExactBusFIFOThroughput(star); err != ErrNotBus {
		t.Errorf("ExactBusFIFOThroughput: want ErrNotBus, got %v", err)
	}
	if _, err := BusFIFOThroughput(platform.New()); err == nil {
		t.Error("empty platform must be rejected")
	}
}

// --- FIFO dominance on buses ----------------------------------------------

// TestBusFIFODominatesAllPairs verifies, in exact arithmetic, the
// Adler-Gong-Rosenberg property the paper cites: on a bus, the optimal FIFO
// schedule is optimal among ALL permutation pairs (σ1, σ2) — in particular
// it dominates every LIFO schedule. This pins down the model behaviour
// behind the Figure 10 deviation recorded in EXPERIMENTS.md.
func TestBusFIFODominatesAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	for trial := 0; trial < 4; trial++ {
		p := randomBus(rng, 3, true)
		fifo, err := OptimalFIFO(p, Exact)
		if err != nil {
			t.Fatal(err)
		}
		pair, err := BestPairExhaustive(p, schedule.OnePort, Exact)
		if err != nil {
			t.Fatal(err)
		}
		if pair.Schedule.Throughput() > fifo.Throughput()+1e-9 {
			t.Errorf("trial %d: pair (%v, %v) beats FIFO on a bus: %g > %g",
				trial, pair.Send, pair.Return, pair.Schedule.Throughput(), fifo.Throughput())
		}
		lifo, err := OptimalLIFO(p, Exact)
		if err != nil {
			t.Fatal(err)
		}
		if lifo.Throughput() > fifo.Throughput()+1e-9 {
			t.Errorf("trial %d: LIFO %g beats FIFO %g on a bus", trial, lifo.Throughput(), fifo.Throughput())
		}
	}
}

// TestStarLIFOCanBeatFIFO documents the heterogeneous counterpart: on star
// platforms there are instances where the optimal LIFO schedule strictly
// beats the optimal FIFO schedule (the paper's Figure 12 prose), so neither
// discipline dominates in general.
func TestStarLIFOCanBeatFIFO(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	found := false
	for trial := 0; trial < 30 && !found; trial++ {
		ws := make([]platform.Worker, 3)
		z := 0.2 + 0.6*rng.Float64()
		for i := range ws {
			c := 0.02 + 0.2*rng.Float64()
			ws[i] = platform.Worker{C: c, W: 0.2 + 0.8*rng.Float64(), D: z * c}
		}
		p := platform.New(ws...)
		fifo, err := OptimalFIFO(p, Float64)
		if err != nil {
			t.Fatal(err)
		}
		lifo, err := OptimalLIFO(p, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if lifo.Throughput() > fifo.Throughput()*(1+1e-6) {
			found = true
		}
	}
	if !found {
		t.Error("no star instance found where LIFO beats FIFO; the Figure 12 regime is gone")
	}
}

// --- LIFO bus closed form -------------------------------------------------

func TestBusLIFOClosedFormMatchesLP(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 15; trial++ {
		p := randomBus(rng, 1+rng.Intn(6), true)
		closed, err := BusLIFOThroughput(p)
		if err != nil {
			t.Fatal(err)
		}
		order := platform.Identity(p.P())
		s, err := LIFOWithOrder(p, order, schedule.OnePort, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(closed, s.Throughput()) {
			t.Errorf("trial %d: LIFO closed form %g != LP %g\n%s",
				trial, closed, s.Throughput(), p)
		}
	}
}

// --- FIFO vs LIFO vs unrestricted pairs ----------------------------------

func TestBestPairDominatesFixedDisciplines(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	for trial := 0; trial < 5; trial++ {
		p := randomStar(rng, 3, 0.5)
		pair, err := BestPairExhaustive(p, schedule.OnePort, Float64)
		if err != nil {
			t.Fatal(err)
		}
		fifo, err := OptimalFIFO(p, Float64)
		if err != nil {
			t.Fatal(err)
		}
		lifo, err := OptimalLIFO(p, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if fifo.Throughput() > pair.Schedule.Throughput()+tol {
			t.Errorf("trial %d: FIFO %g beats unrestricted best %g",
				trial, fifo.Throughput(), pair.Schedule.Throughput())
		}
		if lifo.Throughput() > pair.Schedule.Throughput()+tol {
			t.Errorf("trial %d: LIFO %g beats unrestricted best %g",
				trial, lifo.Throughput(), pair.Schedule.Throughput())
		}
	}
}

func TestBestLIFOExhaustiveMatchesOptimalLIFO(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 8; trial++ {
		p := randomStar(rng, 4, 0.2+0.7*rng.Float64())
		opt, err := OptimalLIFO(p, Float64)
		if err != nil {
			t.Fatal(err)
		}
		best, order, err := BestLIFOExhaustive(p, schedule.OnePort, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(best.Throughput(), opt.Throughput()) {
			t.Errorf("trial %d: OptimalLIFO %g != exhaustive LIFO best %g (order %v)",
				trial, opt.Throughput(), best.Throughput(), order)
		}
	}
}

// --- Exhaustive search machinery ------------------------------------------

func TestForEachPermutationCounts(t *testing.T) {
	for n, want := range map[int]int{1: 1, 2: 2, 3: 6, 4: 24} {
		count := 0
		seen := map[string]bool{}
		err := forEachPermutation(n, func(perm []int, _ int) error {
			count++
			key := ""
			for _, v := range perm {
				key += string(rune('0' + v))
			}
			seen[key] = true
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != want || len(seen) != want {
			t.Errorf("n=%d: %d permutations (%d unique), want %d", n, count, len(seen), want)
		}
	}
}

func TestExhaustiveLimits(t *testing.T) {
	big := randomStar(rand.New(rand.NewSource(110)), maxExhaustiveOrder+1, 0.5)
	if _, _, err := BestFIFOExhaustive(big, schedule.OnePort, Float64); err == nil {
		t.Error("exhaustive FIFO must refuse oversized platforms")
	}
	med := randomStar(rand.New(rand.NewSource(111)), maxExhaustivePair+1, 0.5)
	if _, err := BestPairExhaustive(med, schedule.OnePort, Float64); err == nil {
		t.Error("exhaustive pair search must refuse oversized platforms")
	}
	// Exact arithmetic keeps the historical cap: the flat loop runs
	// unpruned there, so the branch-and-bound's larger ceiling must not
	// admit a days-long (p!)² exact simplex enumeration.
	exactBig := randomStar(rand.New(rand.NewSource(112)), maxExhaustivePairExact+1, 0.5)
	if _, err := BestPairExhaustive(exactBig, schedule.OnePort, Exact); err == nil {
		t.Error("exact-rational pair search must refuse platforms beyond the unpruned cap")
	}
	if _, _, err := BestFIFOExhaustive(platform.New(), schedule.OnePort, Float64); err == nil {
		t.Error("invalid platform must be rejected")
	}
	if _, err := BestPairExhaustive(platform.New(), schedule.OnePort, Float64); err == nil {
		t.Error("invalid platform must be rejected")
	}
}

// --- Resource selection (Proposition 1, Section 5.3.4) --------------------

func TestResourceSelectionDropsHopelessWorker(t *testing.T) {
	// Three fast workers and one with pathological communication: the LP
	// must enroll only the three (cf. Figure 14(a) where worker 4 with
	// x = 1 is never used).
	app := platform.DefaultApp(400)
	p := platform.Fig14Speeds(1).Platform(app)
	s, err := OptimalFIFO(p, Float64)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range s.Participants() {
		if i == 3 {
			t.Errorf("slow worker 4 enrolled with load %g; Figure 14(a) expects it unused", s.Alpha[3])
		}
	}
	if len(s.Participants()) == 0 {
		t.Error("no participants")
	}
}

func TestResourceSelectionKeepsUsefulWorker(t *testing.T) {
	// With x = 3 the fourth worker becomes (mildly) useful: Figure 14(b).
	app := platform.DefaultApp(400)
	p := platform.Fig14Speeds(3).Platform(app)
	s, err := OptimalFIFO(p, Float64)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, i := range s.Participants() {
		if i == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("worker 4 (x=3) not enrolled; participants = %v, alphas = %v",
			s.Participants(), s.Alpha)
	}
}

// --- Cross-arithmetic agreement -------------------------------------------

func TestQuickFloatMatchesExactOnScenarios(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomStar(rng, 1+rng.Intn(5), 0.1+0.8*rng.Float64())
		order := p.ByC()
		fs, err := SolveScenario(p, order, order, schedule.OnePort, Float64)
		if err != nil {
			t.Logf("float: %v", err)
			return false
		}
		es, err := SolveScenario(p, order, order, schedule.OnePort, Exact)
		if err != nil {
			t.Logf("exact: %v", err)
			return false
		}
		return approxEq(fs.Throughput(), es.Throughput())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBusClosedForm(b *testing.B) {
	rng := rand.New(rand.NewSource(30))
	p := randomBus(rng, 11, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BusFIFOThroughput(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBestFIFOExhaustive5(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	p := randomStar(rng, 5, 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := BestFIFOExhaustive(p, schedule.OnePort, Float64); err != nil {
			b.Fatal(err)
		}
	}
}
