package server

import (
	"context"
	"net/http"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Request tracing: when Config.Trace is set the server starts one
// internal/obs trace per solve request (one per slot for batch bodies),
// threads it through the admission batcher and engine via the context,
// and finishes it into the recorder behind GET /debug/requests. Stage
// durations additionally feed the dlsd_stage_latency_seconds histograms
// on /metrics, and every traced response carries its trace id in the
// X-Trace-Id header so clients (dlsload) can look up their own slowest
// requests.

// TraceIDHeader carries the trace id back to the client on traced
// responses.
const TraceIDHeader = "X-Trace-Id"

// initTracing builds the recorder and stage-histogram store; no-op
// unless cfg.Trace is set.
func (s *Server) initTracing() {
	if !s.cfg.Trace {
		return
	}
	now := time.Now
	if s.cfg.Clock != nil {
		now = s.cfg.Clock.Now
	}
	s.rec = obs.NewRecorder(obs.RecorderConfig{
		Ring:            s.cfg.TraceRing,
		SlowestPerRoute: s.cfg.TraceSlowest,
		Now:             now,
	})
	s.stageHist = make(map[string]*stats.Histogram)
}

// Recorder exposes the trace recorder (nil when tracing is off) so
// embedding servers can mount or inspect it.
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// traceRequest starts a trace for one solve submission, adopting the
// trace id of an incoming traceparent header (so fleet-client retries
// chain into the caller's trace) and stamping the id onto the response
// when w is non-nil (batch slots pass nil: their goroutines must not
// touch the shared response header). The returned finish seals the trace
// into the recorder and the stage histograms; it must be called exactly
// once, after the solve settled but before the handler returns. With
// tracing off, ctx is returned unchanged and finish is a no-op.
func (s *Server) traceRequest(ctx context.Context, r *http.Request, w http.ResponseWriter, route string) (context.Context, func(error)) {
	if s.rec == nil {
		return ctx, func(error) {}
	}
	var id, parent string
	if tid, span, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
		id, parent = tid, span
	}
	t := s.rec.StartTrace(route, id, parent)
	if w != nil {
		w.Header().Set(TraceIDHeader, t.ID())
	}
	return obs.ContextWithTrace(ctx, t), func(err error) {
		if err != nil {
			t.Annotate(obs.String("error", err.Error()))
		}
		s.observeStages(s.rec.Finish(t))
	}
}

// observeStages folds one finished trace into the per-stage latency
// histograms behind dlsd_stage_latency_seconds.
func (s *Server) observeStages(d obs.TraceData) {
	s.stageMu.Lock()
	for _, st := range d.Stages {
		h := s.stageHist[st.Name]
		if h == nil {
			h = stats.NewHistogram(stats.LatencyBounds()...)
			s.stageHist[st.Name] = h
		}
		h.Observe(time.Duration(st.DurationNS).Seconds())
	}
	s.stageMu.Unlock()
}

// writeStageMetrics emits the per-stage latency histograms, one labelled
// series per stage name, in sorted order for a stable exposition.
func (s *Server) writeStageMetrics(m *stats.MetricWriter) {
	if s.rec == nil {
		return
	}
	s.stageMu.Lock()
	names := make([]string, 0, len(s.stageHist))
	for name := range s.stageHist {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m.Histogram("dlsd_stage_latency_seconds", "Latency of traced request stages (see /debug/requests).",
			s.stageHist[name], stats.Label{Key: "stage", Value: name})
	}
	s.stageMu.Unlock()
}
