package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/dls"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Config configures a Server. The zero value of every knob picks a
// production-shaped default.
type Config struct {
	// Solver is the shared engine. Required.
	Solver *dls.Solver
	// Window is the admission window: a solve request waits at most this
	// long for company before its window is flushed as one SolveBatch.
	// 0 disables micro-batching (every request solves on its own).
	// Default 2ms.
	Window time.Duration
	// WindowSize flushes a window early once it holds this many requests.
	// Default 64.
	WindowSize int
	// QueueCap bounds the admission queue; requests beyond it are shed
	// with 429. Default 1024.
	QueueCap int
	// Workers bounds how many flushed windows solve concurrently.
	// Default 2.
	Workers int
	// RetryAfter is the advisory delay stamped on 429 responses before
	// the server has observed any window flushes; once traffic flows, the
	// advisory is derived from the observed drain rate (queue depth over
	// recent flush size × flush interval) instead. Default 50ms.
	RetryAfter time.Duration
	// Clock injects the time source for the admission batcher (tests and
	// simulation; nil = the system clock).
	Clock dls.Clock
	// Classes are the SLO classes accepted via the X-SLO-Class header.
	// Default: dls.DefaultSLOClasses.
	Classes []dls.SLOClass
	// Adaptive, when set, runs the adaptive SLO-aware admission policy
	// instead of the fixed Window/WindowSize.
	Adaptive *dls.AdaptiveConfig
	// MaxBatch caps the request count of one /v1/solve/batch call.
	// Default 1024.
	MaxBatch int
	// MaxBody caps request body sizes in bytes. Default 8 MiB.
	MaxBody int64
	// NoBatchWindow marks Window = 0 as deliberate (the zero Config value
	// otherwise means "use the default window").
	NoBatchWindow bool
	// Trace enables per-request tracing: every solve request carries an
	// internal/obs trace through the batcher, engine, eval backends and
	// searches; finished traces land in the ring + slowest-exemplar store
	// behind GET /debug/requests, feed the dlsd_stage_latency_seconds
	// histograms, and stamp X-Trace-Id on responses.
	Trace bool
	// TraceRing sizes the recent-trace ring buffer (default 256).
	TraceRing int
	// TraceSlowest sizes the per-route slowest-exemplar lists (default 8).
	TraceSlowest int
	// Log, when set, receives one structured line per solve submission:
	// a server-local request sequence number, the route, the latency, and
	// (with Trace on) the trace id. Successes log at Debug, failures at
	// Warn. Nil disables request logging.
	Log *slog.Logger
}

// withDefaults fills the zero fields.
func (cfg Config) withDefaults() Config {
	if cfg.Window == 0 && !cfg.NoBatchWindow {
		cfg.Window = 2 * time.Millisecond
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 64
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 50 * time.Millisecond
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 8 << 20
	}
	return cfg
}

// Server serves a dls.Solver over HTTP. Create with New, mount as an
// http.Handler, Close on shutdown (drains in-flight windows).
type Server struct {
	cfg     Config
	solver  *dls.Solver
	batcher *dls.Batcher
	mux     *http.ServeMux
	start   time.Time
	log     *slog.Logger  // Config.Log; nil = no request logging
	reqSeq  atomic.Uint64 // request ids for log correlation

	latency     *stats.Histogram      // end-to-end latency of successful solves, seconds
	windowSizes *stats.Histogram      // flushed admission-window sizes
	codes       stats.CounterMap[int] // HTTP responses by status code

	// Tracing (Config.Trace; see trace.go). rec is nil when tracing is off.
	rec       *obs.Recorder
	stageMu   sync.Mutex
	stageHist map[string]*stats.Histogram // per-stage latency, seconds

	// Flush-rate tracking behind the drain-rate-derived Retry-After.
	flushMu       sync.Mutex
	lastFlushAt   time.Time
	flushInterval float64 // EWMA of seconds between flushes
	flushSize     float64 // EWMA of flushed window sizes
}

// New builds a Server over cfg.Solver.
func New(cfg Config) (*Server, error) {
	if cfg.Solver == nil {
		return nil, fmt.Errorf("server: Config.Solver is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		solver:      cfg.Solver,
		log:         cfg.Log,
		start:       time.Now(),
		latency:     stats.NewHistogram(stats.LatencyBounds()...),
		windowSizes: stats.NewHistogram(stats.SizeBounds()...),
	}
	s.batcher = cfg.Solver.NewBatcher(dls.BatcherConfig{
		MaxDelay: cfg.Window,
		MaxSize:  cfg.WindowSize,
		QueueCap: cfg.QueueCap,
		Workers:  cfg.Workers,
		Clock:    cfg.Clock,
		Classes:  cfg.Classes,
		Adaptive: cfg.Adaptive,
		OnFlush:  s.observeFlush,
	})
	s.initTracing()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/solve/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/strategies", s.handleStrategies)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.rec != nil {
		s.mux.Handle("GET /debug/requests", s.rec.Handler())
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(&countingWriter{ResponseWriter: w, server: s}, r)
}

// Close drains the micro-batcher: every admitted request is answered
// before Close returns. Call after the HTTP listener has stopped
// accepting (http.Server.Shutdown), so no new submissions race the drain.
func (s *Server) Close() {
	s.batcher.Close()
}

// countingWriter counts response codes for /metrics.
type countingWriter struct {
	http.ResponseWriter
	server *Server
	wrote  bool
}

func (cw *countingWriter) WriteHeader(code int) {
	if !cw.wrote {
		cw.wrote = true
		cw.server.codes.Add(code, 1)
	}
	cw.ResponseWriter.WriteHeader(code)
}

func (cw *countingWriter) Write(b []byte) (int, error) {
	if !cw.wrote {
		cw.wrote = true
		cw.server.codes.Add(http.StatusOK, 1)
	}
	return cw.ResponseWriter.Write(b)
}

// writeJSON writes a JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone = nothing to do
}

// writeError writes an ErrorResponse.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// requestContext derives the solve context: the HTTP request context,
// bounded by the X-Timeout header when present.
func requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	ctx := r.Context()
	header := r.Header.Get("X-Timeout")
	if header == "" {
		return ctx, func() {}, nil
	}
	d, err := time.ParseDuration(header)
	if err != nil || d <= 0 {
		return nil, nil, fmt.Errorf("invalid X-Timeout %q: want a positive Go duration like 250ms", header)
	}
	ctx, cancel := context.WithTimeout(ctx, d)
	return ctx, cancel, nil
}

// solveStatus maps a solve error to an HTTP status.
func (s *Server) solveStatus(err error) int {
	switch {
	case errors.Is(err, dls.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, dls.ErrBatcherClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; 499 in the nginx tradition.
		return 499
	default:
		// Unsolvable request (unknown strategy, no common z, order shape):
		// the request was understood but cannot be satisfied.
		return http.StatusUnprocessableEntity
	}
}

// observeFlush records each flushed window for /metrics and for the
// drain-rate estimate behind Retry-After. Called from the collector
// goroutine; the mutex is held only for a few arithmetic operations.
func (s *Server) observeFlush(n int) {
	s.windowSizes.Observe(float64(n))
	now := s.now()
	s.flushMu.Lock()
	const alpha = 0.2
	if !s.lastFlushAt.IsZero() {
		iv := now.Sub(s.lastFlushAt).Seconds()
		if s.flushInterval == 0 {
			s.flushInterval = iv
		} else {
			s.flushInterval += alpha * (iv - s.flushInterval)
		}
	}
	s.lastFlushAt = now
	if s.flushSize == 0 {
		s.flushSize = float64(n)
	} else {
		s.flushSize += alpha * (float64(n) - s.flushSize)
	}
	s.flushMu.Unlock()
}

func (s *Server) now() time.Time {
	if s.cfg.Clock != nil {
		return s.cfg.Clock.Now()
	}
	return time.Now()
}

// retryAfter derives the 429 advisory delay from the observed drain
// rate: the queued requests fill queueDepth/flushSize windows, and the
// batcher has been flushing one window every flushInterval — so that
// many intervals (plus one for the retry itself) is when capacity
// plausibly frees up. Before any flush is observed (cold start, or
// batching disabled) it falls back to the configured constant.
func (s *Server) retryAfter() time.Duration {
	s.flushMu.Lock()
	iv, size := s.flushInterval, s.flushSize
	s.flushMu.Unlock()
	if iv <= 0 || size < 1 {
		return s.cfg.RetryAfter
	}
	depth := float64(s.batcher.Stats().QueueDepth)
	ra := time.Duration((depth/size + 1) * iv * float64(time.Second))
	if min := time.Millisecond; ra < min {
		ra = min
	}
	if max := 5 * time.Second; ra > max {
		ra = max
	}
	return ra
}

// writeSolveError answers a failed solve, stamping Retry-After on sheds.
func (s *Server) writeSolveError(w http.ResponseWriter, err error) {
	status := s.solveStatus(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.FormatFloat(s.retryAfter().Seconds(), 'f', 3, 64))
	}
	writeError(w, status, "%s", err)
}

// handleSolve answers POST /v1/solve.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req dls.Request
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %s", err)
		return
	}
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%s", err)
		return
	}
	defer cancel()
	begin := time.Now()
	ctx, finishTrace := s.traceRequest(ctx, r, w, "/v1/solve")
	res, err := s.batcher.SubmitSLO(ctx, req, r.Header.Get("X-SLO-Class"))
	finishTrace(err)
	s.logRequest(ctx, "/v1/solve", begin, err)
	if err != nil {
		if errors.Is(err, dls.ErrUnknownClass) {
			writeError(w, http.StatusBadRequest, "%s", err)
			return
		}
		// Failed and shed submissions stay out of the latency histogram:
		// near-instant 429s during overload would otherwise drag the
		// percentiles down exactly when latency matters most.
		s.writeSolveError(w, err)
		return
	}
	s.latency.Observe(time.Since(begin).Seconds())
	writeJSON(w, http.StatusOK, resultResponse(res))
}

// handleBatch answers POST /v1/solve/batch: every request of the body is
// submitted to the admission batcher concurrently, so the batch shares
// windows (and the SoA prepass) with whatever else is in flight. Slots
// that fail keep their error message; if the whole batch was shed the
// response is a single 429.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var batch BatchRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	if err := json.NewDecoder(body).Decode(&batch); err != nil {
		writeError(w, http.StatusBadRequest, "decoding batch: %s", err)
		return
	}
	if len(batch.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(batch.Requests) > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, "batch of %d requests exceeds the %d cap", len(batch.Requests), s.cfg.MaxBatch)
		return
	}
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%s", err)
		return
	}
	defer cancel()
	class := r.Header.Get("X-SLO-Class")
	if _, err := s.batcher.Class(class); err != nil {
		writeError(w, http.StatusBadRequest, "%s", err)
		return
	}
	begin := time.Now()
	results := make([]*dls.Result, len(batch.Requests))
	errs := make([]error, len(batch.Requests))
	var wg sync.WaitGroup
	for i, req := range batch.Requests {
		wg.Add(1)
		go func(i int, req dls.Request) {
			defer wg.Done()
			// Each batch slot is its own trace: slots land in different
			// admission windows and dedup groups, so their stage timelines
			// genuinely differ. No response writer — the goroutines must
			// not race on the shared header.
			sctx, finishTrace := s.traceRequest(ctx, r, nil, "/v1/solve/batch")
			results[i], errs[i] = s.batcher.SubmitSLO(sctx, req, class)
			finishTrace(errs[i])
			s.logRequest(sctx, "/v1/solve/batch", begin, errs[i])
		}(i, req)
	}
	wg.Wait()

	resp := BatchResponse{Results: make([]*SolveResponse, len(results))}
	allShed, anyErr, anyOK := true, false, false
	for i, res := range results {
		if errs[i] != nil {
			anyErr = true
			if !errors.Is(errs[i], dls.ErrOverloaded) {
				allShed = false
			}
			continue
		}
		allShed, anyOK = false, true
		resp.Results[i] = resultResponse(res)
	}
	if anyOK {
		s.latency.Observe(time.Since(begin).Seconds())
	}
	if anyErr {
		if allShed {
			w.Header().Set("Retry-After", strconv.FormatFloat(s.cfg.RetryAfter.Seconds(), 'f', 3, 64))
			writeError(w, http.StatusTooManyRequests, "batch shed: admission queue full")
			return
		}
		resp.Errors = make([]string, len(results))
		for i, err := range errs {
			if err != nil {
				resp.Errors[i] = err.Error()
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// logRequest emits one structured line per solve submission (Config.Log):
// request sequence number, route, latency, trace id when tracing is on.
func (s *Server) logRequest(ctx context.Context, route string, begin time.Time, err error) {
	if s.log == nil {
		return
	}
	attrs := make([]any, 0, 6)
	attrs = append(attrs,
		slog.Uint64("req", s.reqSeq.Add(1)),
		slog.String("route", route),
		slog.Duration("dur", time.Since(begin)))
	if ts := obs.Traces(ctx); len(ts) > 0 {
		attrs = append(attrs, slog.String("trace", ts[0].ID()))
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()), slog.Int("status", s.solveStatus(err)))
		s.log.Warn("solve failed", attrs...)
		return
	}
	s.log.Debug("solve", attrs...)
}

// handleStrategies answers GET /v1/strategies.
func (s *Server) handleStrategies(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StrategiesResponse{Strategies: dls.Strategies()})
}

// handleHealthz answers GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
