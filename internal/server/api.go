// Package server is the dlsd serving subsystem: an HTTP/JSON surface over
// one shared dls.Solver whose core is an admission-window micro-batcher —
// concurrent solve requests queue into a bounded window and are flushed as
// a single SolveBatch call, so chain-shaped traffic collapses into the
// engine's structure-of-arrays prepass and duplicate requests dedupe
// against each other instead of solving one by one.
//
// Endpoints:
//
//	POST /v1/solve        one request (the wire form of dls.Request)
//	POST /v1/solve/batch  {"requests": [...]} solved as one admission group
//	GET  /v1/strategies   the strategy registry
//	GET  /healthz         liveness
//	GET  /metrics         Prometheus text format
//
// Per-request deadlines propagate from the X-Timeout header (a Go
// duration, e.g. "250ms") into the request context and through the
// batcher into the batch solve. When the admission queue is full the
// server sheds load with 429 and a Retry-After header instead of queueing
// unboundedly.
package server

import (
	"repro/dls"
)

// BatchRequest is the body of POST /v1/solve/batch.
type BatchRequest struct {
	Requests []dls.Request `json:"requests"`
}

// SolveResponse is the wire form of one solved request.
type SolveResponse struct {
	Strategy   string    `json:"strategy"`
	Model      string    `json:"model"`
	Arith      string    `json:"arith"`
	Eval       string    `json:"eval"`
	Throughput float64   `json:"throughput"`
	Makespan   float64   `json:"makespan,omitempty"`
	Cached     bool      `json:"cached,omitempty"`
	Send       []int     `json:"send,omitempty"`
	Return     []int     `json:"return,omitempty"`
	Alpha      []float64 `json:"alpha,omitempty"`
	// Degraded marks a deadline-driven downgrade: the solver answered
	// with the closed-form DegradedTo strategy instead of running the
	// requested exhaustive search (see dls.WithDegradation).
	Degraded   bool   `json:"degraded,omitempty"`
	DegradedTo string `json:"degraded_to,omitempty"`
}

// BatchResponse answers POST /v1/solve/batch: Results[i] answers
// Requests[i], with Errors[i] holding its failure message when the slot is
// null. Errors is omitted when every request succeeded.
type BatchResponse struct {
	Results []*SolveResponse `json:"results"`
	Errors  []string         `json:"errors,omitempty"`
}

// StrategiesResponse answers GET /v1/strategies.
type StrategiesResponse struct {
	Strategies []string `json:"strategies"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// resultResponse converts an engine result to the wire form. Floats pass
// through encoding/json's shortest-round-trip formatting, so a client
// decoding the response recovers bit-identical values.
func resultResponse(res *dls.Result) *SolveResponse {
	out := &SolveResponse{
		Strategy:   res.Strategy,
		Model:      dls.ModelName(res.Model),
		Arith:      dls.ArithName(res.Arith),
		Eval:       res.Eval.String(),
		Throughput: res.Throughput,
		Makespan:   res.Makespan,
		Cached:     res.Cached,
		Send:       res.Send,
		Return:     res.Return,
		Degraded:   res.Degraded,
		DegradedTo: res.DegradedTo,
	}
	switch {
	case res.Schedule != nil:
		out.Alpha = res.Schedule.Alpha
	case res.Affine != nil:
		out.Alpha = res.Affine.Alpha
	}
	return out
}
