package server

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosHeader marks responses whose failure was injected by the chaos
// middleware rather than produced by the server: load generators use it
// to separate injected faults from real ones when computing
// availability.
const ChaosHeader = "X-Chaos"

// ChaosConfig parameterises the fault-injection middleware. All fault
// draws come from one seeded RNG, so a fixed request sequence sees a
// fixed fault sequence.
type ChaosConfig struct {
	// Seed seeds the fault RNG.
	Seed int64
	// ErrorRate is the probability of answering 503 without touching the
	// handler; the response carries "X-Chaos: error".
	ErrorRate float64
	// LatencyRate is the probability of sleeping Latency before the
	// handler runs ("X-Chaos: latency"). Latency defaults to 20ms.
	LatencyRate float64
	Latency     time.Duration
	// DropRate is the probability of aborting the connection mid-request
	// (the client sees a transport error, not an HTTP status).
	DropRate float64
	// SlowRate is the probability of a slow-loris body read: the request
	// body is consumed one byte at a time with SlowPause between bytes
	// (default 1ms) before the handler runs.
	SlowRate  float64
	SlowPause time.Duration
	// DownEvery/DownFor, when both positive, blackout the data plane
	// periodically: for DownFor out of every DownEvery, every request is
	// answered 503 ("X-Chaos: down"). The deterministic schedule
	// guarantees circuit breakers see sustained failure runs.
	DownEvery time.Duration
	DownFor   time.Duration
	// CrashAfter, when positive, invokes OnCrash after that many
	// data-plane requests — dlsd wires it to os.Exit so supervisors can
	// be exercised end to end.
	CrashAfter int64
	OnCrash    func()
}

// Enabled reports whether any fault is configured.
func (c ChaosConfig) Enabled() bool {
	return c.ErrorRate > 0 || c.LatencyRate > 0 || c.DropRate > 0 || c.SlowRate > 0 ||
		(c.DownEvery > 0 && c.DownFor > 0) || c.CrashAfter > 0
}

// ChaosStats counts injected faults.
type ChaosStats struct {
	Requests  uint64 `json:"requests"`
	Errors    uint64 `json:"errors"`
	Latencies uint64 `json:"latencies"`
	Drops     uint64 `json:"drops"`
	SlowReads uint64 `json:"slow_reads"`
	Blackouts uint64 `json:"blackouts"`
}

// Chaos is the fault-injection middleware: it wraps a handler and
// deterministically injects latency, 5xx errors, connection drops and
// slow-loris reads per ChaosConfig. Control-plane paths (/healthz,
// /metrics) are exempt so supervision keeps working while the data
// plane burns.
type Chaos struct {
	cfg   ChaosConfig
	next  http.Handler
	start time.Time

	rngMu sync.Mutex
	rng   *rand.Rand

	requests, errors, latencies, drops, slowReads, blackouts atomic.Uint64
	crashed                                                  atomic.Bool
}

// NewChaos wraps next with fault injection.
func NewChaos(cfg ChaosConfig, next http.Handler) *Chaos {
	if cfg.Latency <= 0 {
		cfg.Latency = 20 * time.Millisecond
	}
	if cfg.SlowPause <= 0 {
		cfg.SlowPause = time.Millisecond
	}
	return &Chaos{
		cfg:   cfg,
		next:  next,
		start: time.Now(),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Stats snapshots the injected-fault counters.
func (c *Chaos) Stats() ChaosStats {
	return ChaosStats{
		Requests:  c.requests.Load(),
		Errors:    c.errors.Load(),
		Latencies: c.latencies.Load(),
		Drops:     c.drops.Load(),
		SlowReads: c.slowReads.Load(),
		Blackouts: c.blackouts.Load(),
	}
}

// draw pulls one fault decision per category from the seeded RNG. A
// fixed number of uniforms per request keeps the fault schedule a pure
// function of (seed, request index) regardless of which faults fire.
func (c *Chaos) draw() (errF, latF, dropF, slowF bool) {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	u1, u2, u3, u4 := c.rng.Float64(), c.rng.Float64(), c.rng.Float64(), c.rng.Float64()
	return u1 < c.cfg.ErrorRate, u2 < c.cfg.LatencyRate, u3 < c.cfg.DropRate, u4 < c.cfg.SlowRate
}

// blackedOut reports whether the periodic DownEvery/DownFor blackout is
// currently active.
func (c *Chaos) blackedOut() bool {
	if c.cfg.DownEvery <= 0 || c.cfg.DownFor <= 0 {
		return false
	}
	phase := time.Since(c.start) % c.cfg.DownEvery
	return phase < c.cfg.DownFor
}

func (c *Chaos) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// The control plane stays honest: health probes and metrics scrapes
	// bypass injection so supervisors observe the real process.
	if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
		c.next.ServeHTTP(w, r)
		return
	}
	n := c.requests.Add(1)
	if c.cfg.CrashAfter > 0 && int64(n) == c.cfg.CrashAfter && c.cfg.OnCrash != nil {
		if c.crashed.CompareAndSwap(false, true) {
			c.cfg.OnCrash()
		}
	}
	if c.blackedOut() {
		c.blackouts.Add(1)
		w.Header().Set(ChaosHeader, "down")
		w.Header().Set("Retry-After", "0.050")
		http.Error(w, "chaos: replica blacked out", http.StatusServiceUnavailable)
		return
	}
	errF, latF, dropF, slowF := c.draw()
	if dropF {
		c.drops.Add(1)
		// Abort the connection without writing a response: the client
		// sees io.ErrUnexpectedEOF / ECONNRESET, exercising the
		// transport-error retry path.
		panic(http.ErrAbortHandler)
	}
	if latF {
		c.latencies.Add(1)
		time.Sleep(c.cfg.Latency)
	}
	if errF {
		c.errors.Add(1)
		w.Header().Set(ChaosHeader, "error")
		http.Error(w, "chaos: injected error", http.StatusServiceUnavailable)
		return
	}
	if slowF && r.Body != nil && r.ContentLength != 0 {
		c.slowReads.Add(1)
		body, err := slurpSlowly(r.Body, c.cfg.SlowPause)
		if err != nil {
			http.Error(w, "chaos: body read failed", http.StatusBadRequest)
			return
		}
		r.Body = io.NopCloser(body)
	}
	c.next.ServeHTTP(w, r)
}

// slurpSlowly consumes rc one byte at a time with a pause between
// bytes, emulating a slow client from the handler's point of view, and
// returns the buffered body. The read is capped so chaos cannot be used
// to buffer unbounded bodies.
func slurpSlowly(rc io.ReadCloser, pause time.Duration) (io.Reader, error) {
	defer rc.Close()
	const cap = 1 << 20
	var buf []byte
	one := make([]byte, 1)
	// Pause every stride bytes (pausing per byte would stall large
	// bodies for minutes); the first bytes always pause so the slow path
	// is observable even for tiny bodies.
	const stride = 256
	for i := 0; len(buf) < cap; i++ {
		n, err := rc.Read(one)
		if n > 0 {
			buf = append(buf, one[0])
			if i < 4 || i%stride == 0 {
				time.Sleep(pause)
			}
		}
		if err == io.EOF {
			return bytes.NewReader(buf), nil
		}
		if err != nil {
			return nil, err
		}
	}
	return bytes.NewReader(buf), nil
}
