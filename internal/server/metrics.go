package server

import (
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/stats"
)

// className labels the zero (unnamed, best-effort) class for metrics.
func className(name string) string {
	if name == "" {
		return "none"
	}
	return name
}

// handleMetrics answers GET /metrics in the Prometheus text exposition
// format: engine counters (cache, solves, prepass collapses), admission
// state (queue depth, window fill, window sizes, sheds) and HTTP-level
// series (codes, solve latency). See the README metrics glossary.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m := stats.NewMetricWriter(w)

	m.Gauge("dlsd_uptime_seconds", "Seconds since the server started.", time.Since(s.start).Seconds())

	// HTTP surface.
	codes := s.codes.Snapshot()
	keys := make([]int, 0, len(codes))
	for code := range codes {
		keys = append(keys, code)
	}
	sort.Ints(keys)
	for _, code := range keys {
		m.Counter("dlsd_http_requests_total", "HTTP responses by status code.",
			codes[code], stats.Label{Key: "code", Value: strconv.Itoa(code)})
	}
	m.Histogram("dlsd_solve_latency_seconds", "End-to-end latency of successful solves (admission wait + solve).", s.latency)
	s.writeStageMetrics(m)

	// Admission micro-batcher.
	bs := s.batcher.Stats()
	m.Gauge("dlsd_queue_depth", "Admitted requests waiting to join a window.", float64(bs.QueueDepth))
	m.Gauge("dlsd_window_fill", "Requests in the currently filling window.", float64(bs.WindowFill))
	m.Histogram("dlsd_window_size", "Flushed admission-window sizes.", s.windowSizes)
	m.Gauge("dlsd_retry_after_seconds", "Current drain-rate-derived Retry-After advisory for 429s.", s.retryAfter().Seconds())
	if as, ok := s.batcher.AdaptiveState(); ok {
		m.Gauge("dlsd_adaptive_window_delay_seconds", "Most recent adaptive admission-window delay.", as.WindowDelay.Seconds())
		m.Gauge("dlsd_adaptive_window_size", "Most recent adaptive early-flush threshold.", float64(as.WindowSize))
		m.Gauge("dlsd_adaptive_backlog_windows", "Flushed-but-uncompleted windows.", float64(as.BacklogWindows))
		m.Gauge("dlsd_adaptive_groups_per_window", "EWMA of dedup groups per window.", as.GroupsPerWindow)
		m.Gauge("dlsd_adaptive_group_cost_seconds", "Median per-group solve-cost estimate.", as.GroupCostP50.Seconds())
	}

	// Engine counters.
	st := s.solver.Stats()
	m.Counter("dlsd_windows_total", "Admission windows flushed.", st.Windows)
	m.Counter("dlsd_batched_windows_total", "Windows that collapsed >= 2 requests into one batch solve.", st.BatchedWindows)
	m.Counter("dlsd_batched_requests_total", "Requests that travelled in multi-request windows.", st.BatchedRequests)
	m.Counter("dlsd_shed_total", "Submissions shed because the admission queue was full.", st.Shed)
	m.Counter("dlsd_shed_slo_total", "Submissions shed because their SLO deadline was unmeetable.", st.ShedSLO)
	shedClasses := make([]string, 0, len(st.ShedByClass))
	for name := range st.ShedByClass {
		shedClasses = append(shedClasses, name)
	}
	sort.Strings(shedClasses)
	for _, name := range shedClasses {
		m.Counter("dlsd_shed_by_class_total", "Shed submissions by SLO class.",
			st.ShedByClass[name], stats.Label{Key: "class", Value: className(name)})
	}
	violClasses := make([]string, 0, len(st.ViolationsByClass))
	for name := range st.ViolationsByClass {
		violClasses = append(violClasses, name)
	}
	sort.Strings(violClasses)
	for _, name := range violClasses {
		m.Counter("dlsd_slo_violations_total", "Completed solves that missed their class deadline.",
			st.ViolationsByClass[name], stats.Label{Key: "class", Value: className(name)})
	}
	m.Counter("dlsd_prepass_groups_total", "Distinct problems answered by the SoA chain prepass.", st.PrepassGroups)
	m.Counter("dlsd_prepass_requests_total", "Requests answered by the SoA chain prepass.", st.PrepassRequests)
	m.Counter("dlsd_cache_hits_total", "Result-cache hits.", st.Hits)
	m.Counter("dlsd_cache_misses_total", "Result-cache misses.", st.Misses)
	m.Counter("dlsd_cache_evictions_total", "Result-cache LRU evictions.", st.Evictions)
	if lookups := st.Hits + st.Misses; lookups > 0 {
		m.Gauge("dlsd_cache_hit_ratio", "Hits / lookups since start.", float64(st.Hits)/float64(lookups))
	}
	m.Counter("dlsd_degraded_total", "Solves answered by a closed-form heuristic instead of the requested exhaustive search.", st.Degraded)
	degradedTo := make([]string, 0, len(st.DegradedByStrategy))
	for name := range st.DegradedByStrategy {
		degradedTo = append(degradedTo, name)
	}
	sort.Strings(degradedTo)
	for _, name := range degradedTo {
		m.Counter("dlsd_degraded_to_total", "Degraded solves by the heuristic actually used.",
			st.DegradedByStrategy[name], stats.Label{Key: "strategy", Value: name})
	}
	m.Counter("dlsd_solves_total", "Strategy executions (cache/dedup-answered requests excluded).", st.Solves)
	strategies := make([]string, 0, len(st.SolvesByStrategy))
	for name := range st.SolvesByStrategy {
		strategies = append(strategies, name)
	}
	sort.Strings(strategies)
	for _, name := range strategies {
		m.Counter("dlsd_strategy_solves_total", "Strategy executions by strategy.",
			st.SolvesByStrategy[name], stats.Label{Key: "strategy", Value: name})
	}
	m.Counter("dlsd_pair_search_outer_pruned_total", "Send orders whose whole return-order tree was pruned at the root.", st.PairSearch.OuterPruned)
	m.Counter("dlsd_pair_search_nodes_expanded_total", "Pair branch-and-bound nodes expanded.", st.PairSearch.NodesExpanded)
	m.Counter("dlsd_pair_search_subtrees_pruned_total", "Return-order subtrees cut by the prefix bound.", st.PairSearch.SubtreesPruned)
	m.Counter("dlsd_pair_search_leaves_evaluated_total", "Complete return orders evaluated by the pair search.", st.PairSearch.LeavesEvaluated)
	m.Counter("dlsd_affine_search_nodes_expanded_total", "Affine subset-lattice branch-and-bound nodes expanded.", st.AffineSearch.NodesExpanded)
	m.Counter("dlsd_affine_search_subtrees_pruned_total", "Affine subset half-lattices cut against the incumbent.", st.AffineSearch.SubtreesPruned)
	m.Counter("dlsd_affine_search_leaves_evaluated_total", "Participant subsets whose affine scenario LP was solved.", st.AffineSearch.LeavesEvaluated)
	m.Counter("dlsd_affine_search_bound_solves_total", "Affine relaxation LPs solved on exclude edges.", st.AffineSearch.BoundSolves)
}
