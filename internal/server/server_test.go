package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/dls"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Solver == nil {
		solver, err := dls.NewSolver(dls.WithCache(256), dls.WithParallelism(4))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Solver = solver
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// testRequests builds a served workload mixing chain-shaped and general
// requests over random platforms.
func testRequests(rng *rand.Rand, platforms int) []dls.Request {
	var reqs []dls.Request
	for i := 0; i < platforms; i++ {
		p := dls.RandomSpeeds(rng, 6, dls.Heterogeneous).Platform(dls.DefaultApp(100))
		reqs = append(reqs,
			dls.Request{Platform: p, Strategy: dls.StrategyIncC, Load: 500},
			dls.Request{Platform: p, Strategy: dls.StrategyIncW},
			dls.Request{Platform: p, Strategy: dls.StrategyLIFO},
			dls.Request{Platform: p, Strategy: dls.StrategyFIFOOrder, Send: p.ByW()},
			dls.Request{Platform: p, Strategy: dls.StrategyFIFOExhaustive},
		)
	}
	return reqs
}

// TestServeSolveAgreement pins the acceptance criterion: results served
// through the HTTP layer (admission window, batcher, JSON round trip) are
// byte-identical to direct Solver.Solve for the same requests — float64
// survives encoding/json's shortest-round-trip form exactly.
func TestServeSolveAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	reqs := testRequests(rng, 4)
	_, ts := newTestServer(t, Config{Window: 20 * time.Millisecond, WindowSize: 8})

	// Serve concurrently so admission windows actually batch.
	served := make([]*SolveResponse, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req dls.Request) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/solve", req, nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			var out SolveResponse
			if err := json.Unmarshal(body, &out); err != nil {
				t.Errorf("request %d: decoding response: %v", i, err)
				return
			}
			served[i] = &out
		}(i, req)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	solo, err := dls.NewSolver()
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		want, err := solo.Solve(context.Background(), req)
		if err != nil {
			t.Fatalf("direct solve %d: %v", i, err)
		}
		got := served[i]
		if got.Throughput != want.Throughput {
			t.Errorf("request %d (%s): served throughput %.17g != direct %.17g", i, req.Strategy, got.Throughput, want.Throughput)
		}
		if got.Makespan != want.Makespan {
			t.Errorf("request %d: served makespan %.17g != direct %.17g", i, got.Makespan, want.Makespan)
		}
		for w := range want.Schedule.Alpha {
			if got.Alpha[w] != want.Schedule.Alpha[w] {
				t.Errorf("request %d (%s): alpha[%d] served %.17g != direct %.17g",
					i, req.Strategy, w, got.Alpha[w], want.Schedule.Alpha[w])
			}
		}
		if got.Strategy != req.Strategy {
			t.Errorf("request %d: strategy echoed as %q", i, got.Strategy)
		}
	}
}

// TestServeBatchEndpoint: /v1/solve/batch answers aligned slots and
// reports per-slot errors without failing the whole batch.
func TestServeBatchEndpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(4243))
	p := dls.RandomSpeeds(rng, 6, dls.Heterogeneous).Platform(dls.DefaultApp(100))
	noZ := dls.NewPlatform(
		dls.Worker{C: 0.1, W: 0.5, D: 0.05},
		dls.Worker{C: 0.2, W: 0.3, D: 0.2},
	)
	_, ts := newTestServer(t, Config{})
	batch := BatchRequest{Requests: []dls.Request{
		{Platform: p, Strategy: dls.StrategyIncC},
		{Platform: noZ, Strategy: dls.StrategyFIFO}, // fails: no common z
		{Platform: p, Strategy: dls.StrategyIncC},   // duplicate of slot 0
	}}
	resp, body := postJSON(t, ts.URL+"/v1/solve/batch", batch, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d result slots, want 3", len(out.Results))
	}
	if out.Results[0] == nil || out.Results[2] == nil {
		t.Fatal("successful slots are null")
	}
	if out.Results[1] != nil {
		t.Error("failed slot carries a result")
	}
	if len(out.Errors) != 3 || !strings.Contains(out.Errors[1], "common ratio") {
		t.Errorf("slot error not reported: %q", out.Errors)
	}
	if out.Results[0].Throughput != out.Results[2].Throughput {
		t.Error("duplicate slots disagree")
	}
}

// TestServeDeadline: an X-Timeout too small for the strategy surfaces as
// 504, not as a hung request.
func TestServeDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(4244))
	p := dls.RandomSpeeds(rng, 7, dls.Heterogeneous).Platform(dls.DefaultApp(100))
	_, ts := newTestServer(t, Config{Window: time.Millisecond})
	req := dls.Request{Platform: p, Strategy: dls.StrategyPairExhaustive}
	resp, body := postJSON(t, ts.URL+"/v1/solve", req, map[string]string{"X-Timeout": "1ms"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	// A malformed header is the caller's bug.
	resp, _ = postJSON(t, ts.URL+"/v1/solve", req, map[string]string{"X-Timeout": "fast"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed X-Timeout: status %d, want 400", resp.StatusCode)
	}
}

// TestServeSheds: with a wedged solver and a tiny queue the server
// answers 429 with a Retry-After header instead of queueing.
func TestServeSheds(t *testing.T) {
	solver, err := dls.NewSolver(dls.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	registerServerBlockStrategy()
	_, ts := newTestServer(t, Config{
		Solver: solver, Window: time.Millisecond, WindowSize: 1, QueueCap: 1, Workers: 1,
	})
	rng := rand.New(rand.NewSource(4245))
	p := dls.RandomSpeeds(rng, 4, dls.Heterogeneous).Platform(dls.DefaultApp(100))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	sheds := make(chan struct{}, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, _ := json.Marshal(dls.Request{Platform: p, Strategy: "server-test-block"})
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(data))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return // cancelled at teardown
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				sheds <- struct{}{}
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(sheds) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()
	if len(sheds) == 0 {
		t.Fatal("no request was shed with a wedged queue")
	}
}

var registerServerBlockStrategy = sync.OnceFunc(func() {
	err := dls.RegisterStrategy("server-test-block", func(ctx context.Context, _ dls.Request) (*dls.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		panic(err)
	}
})

// TestServeMetricsAndStrategies: the discovery and observability
// endpoints expose the registry and the micro-batching counters.
func TestServeMetricsAndStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(4246))
	srv, ts := newTestServer(t, Config{Window: 50 * time.Millisecond, WindowSize: 16})

	resp, body := func() (*http.Response, []byte) {
		r, err := http.Get(ts.URL + "/v1/strategies")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		b, _ := io.ReadAll(r.Body)
		return r, b
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("strategies: status %d", resp.StatusCode)
	}
	var strategies StrategiesResponse
	if err := json.Unmarshal(body, &strategies); err != nil {
		t.Fatal(err)
	}
	if len(strategies.Strategies) < 14 {
		t.Errorf("registry lists %d strategies", len(strategies.Strategies))
	}

	if r, err := http.Get(ts.URL + "/healthz"); err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", r, err)
	} else {
		r.Body.Close()
	}

	// Drive concurrent chain-shaped traffic so windows batch and the
	// prepass fires, then check the counters surface in /metrics.
	var wg sync.WaitGroup
	for _, req := range testRequests(rng, 3) {
		wg.Add(1)
		go func(req dls.Request) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/solve", req, nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("solve: status %d: %s", resp.StatusCode, body)
			}
		}(req)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	metrics, _ := io.ReadAll(r.Body)
	text := string(metrics)
	for _, want := range []string{
		"dlsd_http_requests_total{code=\"200\"}",
		"dlsd_solve_latency_seconds_bucket",
		"dlsd_windows_total",
		"dlsd_batched_windows_total",
		"dlsd_queue_depth",
		"dlsd_solves_total",
		"dlsd_strategy_solves_total{strategy=\"inc-c\"}",
		"dlsd_prepass_groups_total",
		"dlsd_cache_hits_total",
		"dlsd_pair_search_nodes_expanded_total",
		"dlsd_pair_search_subtrees_pruned_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	st := srv.solver.Stats()
	if st.Windows == 0 {
		t.Error("no admission window flushed")
	}
	if st.BatchedWindows == 0 {
		t.Error("no window batched >= 2 concurrent requests")
	}
	if st.PrepassGroups == 0 {
		t.Error("served chain traffic never took the SoA prepass")
	}
}

// TestServeCloseDrains: Close answers a request still waiting in the
// admission window before returning, and later submissions get 503.
func TestServeCloseDrains(t *testing.T) {
	rng := rand.New(rand.NewSource(4247))
	p := dls.RandomSpeeds(rng, 5, dls.Heterogeneous).Platform(dls.DefaultApp(100))
	solver, err := dls.NewSolver()
	if err != nil {
		t.Fatal(err)
	}
	// An hour-long window: only Close's drain can flush the request.
	srv, errNew := New(Config{Solver: solver, Window: time.Hour, WindowSize: 1 << 20})
	if errNew != nil {
		t.Fatal(errNew)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	done := make(chan *SolveResponse, 1)
	go func() {
		resp, body := postJSON(t, ts.URL+"/v1/solve", dls.Request{Platform: p, Strategy: dls.StrategyIncC}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("drained request: status %d: %s", resp.StatusCode, body)
			done <- nil
			return
		}
		var out SolveResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Error(err)
		}
		done <- &out
	}()
	// Wait for the request to reach the window, then drain.
	deadline := time.Now().Add(10 * time.Second)
	for srv.batcher.Stats().WindowFill+srv.batcher.Stats().QueueDepth == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	srv.Close()
	select {
	case out := <-done:
		if out == nil {
			t.Fatal("in-flight request failed during drain")
		}
		if out.Throughput <= 0 {
			t.Error("drained request got no result")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not answer the in-flight request")
	}
	resp, _ := postJSON(t, ts.URL+"/v1/solve", dls.Request{Platform: p, Strategy: dls.StrategyIncC}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain request: status %d, want 503", resp.StatusCode)
	}
	fmt.Fprint(io.Discard, "")
}
