package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			body, _ := io.ReadAll(r.Body)
			if len(body) > 0 {
				w.Write(body)
				return
			}
		}
		io.WriteString(w, "ok")
	})
}

func TestChaosDeterministicSchedule(t *testing.T) {
	run := func() []int {
		c := NewChaos(ChaosConfig{Seed: 42, ErrorRate: 0.3}, okHandler())
		codes := make([]int, 0, 50)
		for i := 0; i < 50; i++ {
			rec := httptest.NewRecorder()
			c.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/solve", nil))
			codes = append(codes, rec.Code)
		}
		return codes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault schedule diverged at request %d: %d vs %d", i, a[i], b[i])
		}
	}
	saw503 := false
	for _, code := range a {
		if code == http.StatusServiceUnavailable {
			saw503 = true
		}
	}
	if !saw503 {
		t.Fatal("30% error rate injected no 503 in 50 requests")
	}
}

func TestChaosMarksInjectedFaults(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 1, ErrorRate: 1}, okHandler())
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/solve", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("code = %d, want 503", rec.Code)
	}
	if rec.Header().Get(ChaosHeader) != "error" {
		t.Fatalf("X-Chaos = %q, want error", rec.Header().Get(ChaosHeader))
	}
	if st := c.Stats(); st.Errors != 1 || st.Requests != 1 {
		t.Fatalf("stats = %+v, want 1 request / 1 error", st)
	}
}

func TestChaosExemptsControlPlane(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 1, ErrorRate: 1, DropRate: 1}, okHandler())
	for _, path := range []string{"/healthz", "/metrics"} {
		rec := httptest.NewRecorder()
		c.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: code = %d, want 200 (control plane must bypass chaos)", path, rec.Code)
		}
	}
	if st := c.Stats(); st.Requests != 0 {
		t.Fatalf("control-plane requests counted as data plane: %+v", st)
	}
}

func TestChaosConnectionDrop(t *testing.T) {
	srv := httptest.NewServer(NewChaos(ChaosConfig{Seed: 1, DropRate: 1}, okHandler()))
	defer srv.Close()
	_, err := srv.Client().Get(srv.URL + "/v1/solve")
	if err == nil {
		t.Fatal("dropped connection produced a response, want transport error")
	}
}

func TestChaosLatency(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 1, LatencyRate: 1, Latency: 30 * time.Millisecond}, okHandler())
	start := time.Now()
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/solve", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d, want 200 (latency injection must not fail the request)", rec.Code)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("request took %v, want >= 30ms injected latency", elapsed)
	}
	if st := c.Stats(); st.Latencies != 1 {
		t.Fatalf("stats = %+v, want 1 latency injection", st)
	}
}

func TestChaosSlowLorisPreservesBody(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 1, SlowRate: 1, SlowPause: 100 * time.Microsecond}, okHandler())
	body := strings.Repeat("x", 600)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/solve", strings.NewReader(body))
	c.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d, want 200", rec.Code)
	}
	if got := rec.Body.String(); got != body {
		t.Fatalf("handler saw %d bytes, want the full %d-byte body intact", len(got), len(body))
	}
	if st := c.Stats(); st.SlowReads != 1 {
		t.Fatalf("stats = %+v, want 1 slow read", st)
	}
}

func TestChaosBlackout(t *testing.T) {
	// DownFor == DownEvery: permanently blacked out.
	c := NewChaos(ChaosConfig{Seed: 1, DownEvery: time.Hour, DownFor: time.Hour}, okHandler())
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/solve", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("code = %d, want 503 during blackout", rec.Code)
	}
	if rec.Header().Get(ChaosHeader) != "down" {
		t.Fatalf("X-Chaos = %q, want down", rec.Header().Get(ChaosHeader))
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("blackout response missing Retry-After")
	}
}

func TestChaosCrashAfter(t *testing.T) {
	var crashed atomic.Int64
	c := NewChaos(ChaosConfig{Seed: 1, CrashAfter: 3, OnCrash: func() { crashed.Add(1) }}, okHandler())
	for i := 0; i < 5; i++ {
		rec := httptest.NewRecorder()
		c.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/solve", nil))
	}
	if got := crashed.Load(); got != 1 {
		t.Fatalf("OnCrash fired %d times, want exactly once at request 3", got)
	}
}

func TestChaosDisabledByDefault(t *testing.T) {
	if (ChaosConfig{}).Enabled() {
		t.Fatal("zero ChaosConfig reports enabled")
	}
	if !(ChaosConfig{ErrorRate: 0.01}).Enabled() {
		t.Fatal("error-rate config reports disabled")
	}
}
