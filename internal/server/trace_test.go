package server

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/dls"
	"repro/internal/obs"
)

// getDebugRequests fetches and decodes GET /debug/requests.
func getDebugRequests(t *testing.T, base, query string) obs.DebugResponse {
	t.Helper()
	resp, err := http.Get(base + "/debug/requests" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/requests: status %d", resp.StatusCode)
	}
	var out obs.DebugResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTraceEndToEnd pins the acceptance criterion: a traced exhaustive
// solve decomposes into named stages — queue_wait, window_wait and solve
// partitioning the timeline, eval-backend and search attributing the
// solve — visible under /debug/requests with the depth-0 stages summing
// to the end-to-end duration within 5%, and per-stage histograms on
// /metrics.
func TestTraceEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := dls.RandomSpeeds(rng, 6, dls.Heterogeneous).Platform(dls.DefaultApp(100))
	req := dls.Request{Platform: p, Strategy: dls.StrategyFIFOExhaustive}
	_, ts := newTestServer(t, Config{Window: 20 * time.Millisecond, WindowSize: 8, Trace: true})

	resp, _ := postJSON(t, ts.URL+"/v1/solve", req, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	tid := resp.Header.Get(TraceIDHeader)
	if tid == "" {
		t.Fatal("traced response carries no X-Trace-Id")
	}

	debug := getDebugRequests(t, ts.URL, "?route=/v1/solve")
	if debug.Total != 1 || len(debug.Recent) != 1 {
		t.Fatalf("debug = total %d, recent %d; want 1, 1", debug.Total, len(debug.Recent))
	}
	d := debug.Recent[0]
	if d.ID != tid {
		t.Fatalf("recorded trace id %q != X-Trace-Id %q", d.ID, tid)
	}

	stages := make(map[string]obs.StageData, len(d.Stages))
	for _, st := range d.Stages {
		stages[st.Name] = st
	}
	for _, name := range []string{"queue_wait", "window_wait", "solve", "strategy", "eval-backend", "search"} {
		if _, found := stages[name]; !found {
			t.Errorf("stage %q missing from trace (got %v)", name, stageNames(d))
		}
	}
	if len(d.Stages) < 5 {
		t.Fatalf("traced solve has %d stages, want >= 5", len(d.Stages))
	}
	for _, name := range []string{"queue_wait", "window_wait", "solve"} {
		if depth := stages[name].Depth; depth != 0 {
			t.Errorf("stage %q at depth %d, want 0", name, depth)
		}
	}
	for _, name := range []string{"strategy", "eval-backend", "search"} {
		if depth := stages[name].Depth; depth != 1 {
			t.Errorf("stage %q at depth %d, want 1", name, depth)
		}
	}

	// The depth-0 stages partition the request timeline: their sum must
	// reproduce the end-to-end duration to within 5% (handler overhead).
	sum, total := d.StageSum(), time.Duration(d.DurationNS)
	if diff := total - sum; diff < 0 || diff > total/20 {
		t.Errorf("depth-0 stage sum %v vs end-to-end %v: off by %v (> 5%%)", sum, total, diff)
	}

	if got := d.Attr("strategy"); got != string(dls.StrategyFIFOExhaustive) {
		t.Errorf("strategy attr = %q, want %q", got, dls.StrategyFIFOExhaustive)
	}
	if d.Attr("cache") != "miss" {
		t.Errorf("cache attr = %q, want miss", d.Attr("cache"))
	}

	// Slowest exemplars carry the same trace.
	if slow := debug.Slowest["/v1/solve"]; len(slow) != 1 || slow[0].ID != tid {
		t.Errorf("slowest exemplars = %+v, want the one trace", debug.Slowest)
	}

	// Per-stage histograms surface on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(body)
	for _, stage := range []string{"queue_wait", "window_wait", "solve", "search"} {
		series := `dlsd_stage_latency_seconds_count{stage="` + stage + `"}`
		if !strings.Contains(metrics, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
}

func stageNames(d obs.TraceData) []string {
	names := make([]string, len(d.Stages))
	for i, st := range d.Stages {
		names[i] = st.Name
	}
	return names
}

// TestTraceAdoptsTraceparent: an incoming traceparent header pins the
// trace id (retries across a fleet chain into the caller's trace).
func TestTraceAdoptsTraceparent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := dls.RandomSpeeds(rng, 4, dls.Heterogeneous).Platform(dls.DefaultApp(100))
	req := dls.Request{Platform: p, Strategy: dls.StrategyLIFO}
	_, ts := newTestServer(t, Config{Window: 2 * time.Millisecond, Trace: true})

	wantID, span := obs.NewTraceID(), obs.NewSpanID()
	resp, _ := postJSON(t, ts.URL+"/v1/solve", req, map[string]string{
		obs.TraceparentHeader: obs.FormatTraceparent(wantID, span),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(TraceIDHeader); got != wantID {
		t.Fatalf("X-Trace-Id = %q, want adopted %q", got, wantID)
	}
	debug := getDebugRequests(t, ts.URL, "")
	if len(debug.Recent) != 1 || debug.Recent[0].ID != wantID || debug.Recent[0].Parent != span {
		t.Fatalf("recorded trace = %+v, want id %q parent %q", debug.Recent, wantID, span)
	}

	// Malformed traceparent: minted id instead, request still succeeds.
	resp, _ = postJSON(t, ts.URL+"/v1/solve", req, map[string]string{
		obs.TraceparentHeader: "00-bogus-bogus-01",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve with malformed traceparent: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(TraceIDHeader); got == "" || got == wantID {
		t.Fatalf("malformed traceparent produced trace id %q", got)
	}
}

// TestTraceBatchSlots: every slot of a /v1/solve/batch body is its own
// trace under the batch route.
func TestTraceBatchSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var reqs []dls.Request
	for i := 0; i < 3; i++ {
		p := dls.RandomSpeeds(rng, 4, dls.Heterogeneous).Platform(dls.DefaultApp(100))
		reqs = append(reqs, dls.Request{Platform: p, Strategy: dls.StrategyIncC, Load: 500})
	}
	_, ts := newTestServer(t, Config{Window: 5 * time.Millisecond, WindowSize: 8, Trace: true})

	resp, _ := postJSON(t, ts.URL+"/v1/solve/batch", BatchRequest{Requests: reqs}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	debug := getDebugRequests(t, ts.URL, "?route=/v1/solve/batch")
	if debug.Total != uint64(len(reqs)) || len(debug.Recent) != len(reqs) {
		t.Fatalf("batch traces = total %d, recent %d; want %d", debug.Total, len(debug.Recent), len(reqs))
	}
	seen := make(map[string]bool)
	for _, d := range debug.Recent {
		if seen[d.ID] {
			t.Fatalf("duplicate trace id %q across batch slots", d.ID)
		}
		seen[d.ID] = true
		if d.StageSum() <= 0 {
			t.Errorf("slot trace %s has no depth-0 stages: %v", d.ID, stageNames(d))
		}
	}
}

// TestTraceDisabled: with Trace off there is no header, no endpoint, no
// per-stage series.
func TestTraceDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := dls.RandomSpeeds(rng, 4, dls.Heterogeneous).Platform(dls.DefaultApp(100))
	req := dls.Request{Platform: p, Strategy: dls.StrategyLIFO}
	_, ts := newTestServer(t, Config{Window: 2 * time.Millisecond})

	resp, _ := postJSON(t, ts.URL+"/v1/solve", req, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(TraceIDHeader); got != "" {
		t.Fatalf("untraced response carries X-Trace-Id %q", got)
	}
	dresp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/requests with tracing off: status %d, want 404", dresp.StatusCode)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if strings.Contains(string(body), "dlsd_stage_latency_seconds") {
		t.Fatal("/metrics exposes stage histograms with tracing off")
	}
}
