// Package rounding implements the integer rounding policy of Section 5 of
// RR-5738: the linear program produces rational loads α_i, but the
// application must ship whole matrices. Every load is rounded down, and the
// K leftover units are handed out one each to the first K workers of the
// send permutation σ1.
package rounding

import (
	"fmt"
	"math"
)

// Distribute rounds the fractional loads alphas (indexed like the platform
// workers) to integers summing exactly to total, following the paper's
// policy: floor every α_i, then give one extra unit to each of the first K
// workers in order, where K = total - Σ floor(α_i).
//
// The fractional loads are first rescaled so that Σα = total (the LP's
// throughput-form schedule has Σα = ρ, not M). Workers outside order (zero
// load) stay at zero. An error is returned if total < 0, if order references
// out-of-range workers, or if K exceeds the number of enrolled workers
// (cannot happen for rescaled inputs, but is guarded against rounding
// pathologies).
func Distribute(alphas []float64, order []int, total int) ([]int, error) {
	if total < 0 {
		return nil, fmt.Errorf("rounding: total %d must be >= 0", total)
	}
	sum := 0.0
	for _, i := range order {
		if i < 0 || i >= len(alphas) {
			return nil, fmt.Errorf("rounding: order references worker %d outside %d loads", i, len(alphas))
		}
		if alphas[i] < 0 || math.IsNaN(alphas[i]) || math.IsInf(alphas[i], 0) {
			return nil, fmt.Errorf("rounding: load %g of worker %d must be finite and >= 0", alphas[i], i)
		}
		sum += alphas[i]
	}
	counts := make([]int, len(alphas))
	if total == 0 {
		return counts, nil
	}
	if sum <= 0 {
		return nil, fmt.Errorf("rounding: enrolled workers carry zero total load")
	}
	scale := float64(total) / sum
	assigned := 0
	for _, i := range order {
		counts[i] = int(math.Floor(alphas[i] * scale))
		assigned += counts[i]
	}
	k := total - assigned
	if k < 0 || k > len(order) {
		return nil, fmt.Errorf("rounding: leftover %d outside [0, %d] (internal error)", k, len(order))
	}
	for j := 0; j < k; j++ {
		counts[order[j]]++
	}
	return counts, nil
}
