package rounding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPaperExample(t *testing.T) {
	// Section 5: α = (200.4, 300.2, 139.8, 359.6), M = 1000 → K = 2 and the
	// first two workers of σ1 get one extra: (201, 301, 139, 359).
	alphas := []float64{200.4, 300.2, 139.8, 359.6}
	order := []int{0, 1, 2, 3}
	got, err := Distribute(alphas, order, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{201, 301, 139, 359}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("counts = %v, want %v", got, want)
			break
		}
	}
}

func TestPaperExamplePermutedOrder(t *testing.T) {
	// The extra units follow the *send order*, not the index order.
	alphas := []float64{200.4, 300.2, 139.8, 359.6}
	order := []int{3, 2, 1, 0}
	got, err := Distribute(alphas, order, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// floors: 359, 139, 300, 200 → K = 2 → first two of σ1 (workers 3, 2).
	want := []int{200, 300, 140, 360}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("counts = %v, want %v", got, want)
			break
		}
	}
}

func TestRescalesThroughputForm(t *testing.T) {
	// A throughput-form schedule (Σα = ρ = 2.5) distributed over M = 10:
	// proportions preserved.
	alphas := []float64{1.5, 1.0}
	got, err := Distribute(alphas, []int{0, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got[0]+got[1] != 10 {
		t.Fatalf("sum = %d", got[0]+got[1])
	}
	if got[0] != 6 || got[1] != 4 {
		t.Errorf("counts = %v, want [6 4]", got)
	}
}

func TestZeroTotal(t *testing.T) {
	got, err := Distribute([]float64{1, 2}, []int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("counts = %v, want zeros", got)
	}
}

func TestNonParticipantsStayZero(t *testing.T) {
	alphas := []float64{2, 0, 3}
	got, err := Distribute(alphas, []int{0, 2}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 0 {
		t.Errorf("non-participant got load: %v", got)
	}
	if got[0]+got[2] != 100 {
		t.Errorf("sum = %d", got[0]+got[2])
	}
}

func TestErrors(t *testing.T) {
	if _, err := Distribute([]float64{1}, []int{0}, -1); err == nil {
		t.Error("negative total must fail")
	}
	if _, err := Distribute([]float64{1}, []int{5}, 10); err == nil {
		t.Error("out-of-range order must fail")
	}
	if _, err := Distribute([]float64{0}, []int{0}, 10); err == nil {
		t.Error("zero-mass loads must fail")
	}
	if _, err := Distribute([]float64{-1}, []int{0}, 10); err == nil {
		t.Error("negative load must fail")
	}
	if _, err := Distribute([]float64{math.NaN()}, []int{0}, 10); err == nil {
		t.Error("NaN load must fail")
	}
}

// TestQuickConservation: counts always sum to total, are non-negative, and
// deviate from the exact proportional share by less than 1 (before top-up)
// plus the top-up unit.
func TestQuickConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		alphas := make([]float64, n)
		var order []int
		for i := range alphas {
			if rng.Intn(4) == 0 {
				continue // leave a few non-participants
			}
			alphas[i] = rng.Float64() * 10
			if alphas[i] > 0 {
				order = append(order, i)
			}
		}
		if len(order) == 0 {
			alphas[0] = 1
			order = []int{0}
		}
		total := rng.Intn(10000)
		counts, err := Distribute(alphas, order, total)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		sum := 0
		mass := 0.0
		for _, i := range order {
			mass += alphas[i]
		}
		for i, c := range counts {
			if c < 0 {
				return false
			}
			sum += c
			// Fair share bound: |c - α·M/Σα| ≤ 1.
			share := 0.0
			if contains(order, i) {
				share = alphas[i] / mass * float64(total)
			}
			if math.Abs(float64(c)-share) > 1+1e-6 {
				t.Logf("seed %d: worker %d count %d vs share %g", seed, i, c, share)
				return false
			}
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
