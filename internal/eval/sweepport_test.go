package eval

import (
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/schedule"
)

// portBoundTwinPlatform builds the port-vertex regression platform: the
// repeated-cost construction (four (c, d) link pairs, each shared by two
// workers differing only in computation speed) with fast workers and
// d-heavy links, so the one-port constraint binds on strict subsets and
// the optimum is a port-tight vertex whose slack row — and whose choice
// between twins — flips as the sweep's transpositions reorder the ranks.
// Seed 23 is pinned because its descents are never degenerate and its
// fallbacks are exactly the two shapes the fast path targets: a slack-row
// shift on the cached enrolled set, and a twin substitution.
func portBoundTwinPlatform(seed int64) *platform.Platform {
	rng := rand.New(rand.NewSource(seed))
	base := make([]platform.Worker, 4)
	for i := range base {
		base[i] = platform.Worker{
			C: 0.04 + 0.08*rng.Float64(),
			D: 0.08 + 0.15*rng.Float64(),
		}
	}
	ws := make([]platform.Worker, 8)
	for i := range ws {
		ws[i] = base[i%4]
		ws[i].W = 0.02 + 0.07*rng.Float64()
	}
	return platform.New(ws...)
}

// sweepAllPerms runs the full p = 8 sweep on p8 with the port-vertex fast
// path toggled, returning every permutation's throughput and the final
// counters.
func sweepAllPerms(t testing.TB, p8 *platform.Platform, disable bool) ([]float64, SweepStats) {
	disablePortFastPath = disable
	defer func() { disablePortFastPath = false }()
	rhos := make([]float64, 0, 40320)
	var sw *Sweep
	sjtWalk(8, 1<<30, func(perm []int, swapped int) {
		if swapped < 0 {
			var err error
			if sw, err = NewSweep(p8, perm, schedule.OnePort, false); err != nil {
				t.Fatal(err)
			}
		} else {
			sw.Delta(swapped)
		}
		rho, ok := sw.Throughput()
		if !ok {
			t.Fatalf("perm %v: fell back past the chain search", perm)
		}
		rhos = append(rhos, rho)
	})
	return rhos, sw.Stats()
}

// TestSweepPortVertexFastPath is the regression test of the port-vertex
// fast path: on the port-bound repeated-cost platform the O(1)-screened
// vertex rescan plus the twin-substitution rescue must cut the sweep's
// chain-search fallbacks at least in half, while every permutation's
// throughput stays in agreement with the descent-only sweep (both sides
// return KKT-certified LP optima, so any drift is a soundness bug, not a
// tolerance artefact).
func TestSweepPortVertexFastPath(t *testing.T) {
	p := portBoundTwinPlatform(23)
	slow, slowStats := sweepAllPerms(t, p, true)
	fast, fastStats := sweepAllPerms(t, p, false)
	for i := range slow {
		if !agreeEq(slow[i], fast[i]) {
			t.Fatalf("permutation %d: fast path %.12g != descent-only %.12g", i, fast[i], slow[i])
		}
	}
	if fastStats.PortHits == 0 {
		t.Fatal("the port-vertex scan certified nothing; the fast path is dead code on its regression platform")
	}
	if slowStats.Fallbacks == 0 {
		t.Fatal("the pinned platform no longer defeats the warm re-solve; pick a new regression seed")
	}
	if 2*fastStats.Fallbacks > slowStats.Fallbacks {
		t.Fatalf("fast path cut descent fallbacks %d -> %d: less than the required 50%%",
			slowStats.Fallbacks, fastStats.Fallbacks)
	}
	t.Logf("fallbacks %d -> %d over 40320 permutations (%d scans, %d hits, %d rows screened)",
		slowStats.Fallbacks, fastStats.Fallbacks,
		fastStats.PortScans, fastStats.PortHits, fastStats.PortScreened)
}

// TestSweepPortVertexAllocationFree pins the fast path's allocation
// discipline: the scans run on preallocated sweep scratch, so the full
// p = 8 sweep on the port-bound twin platform stays allocation-free
// beyond setup and amortised session-buffer growth.
func TestSweepPortVertexAllocationFree(t *testing.T) {
	p := portBoundTwinPlatform(23)
	allocs := testing.AllocsPerRun(1, func() {
		var sw *Sweep
		sjtWalk(8, 1<<30, func(perm []int, swapped int) {
			if swapped < 0 {
				var err error
				if sw, err = NewSweep(p, perm, schedule.OnePort, false); err != nil {
					t.Fatal(err)
				}
				return
			}
			sw.Delta(swapped)
			if _, ok := sw.Throughput(); !ok {
				t.Fatal("fell back past the chain search")
			}
		})
	})
	if allocs > 200 {
		t.Fatalf("p = 8 sweep allocated %.0f times (> 200): a per-permutation allocation crept into the fast path", allocs)
	}
}

// BenchmarkSweepPortVertex times the full p = 8 port-bound twin sweep with
// the port-vertex fast path on and off — the wall-clock counterpart of the
// fallback-counter regression test.
func BenchmarkSweepPortVertex(b *testing.B) {
	p := portBoundTwinPlatform(23)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"fastpath", false}, {"descent", true}} {
		b.Run(mode.name, func(b *testing.B) {
			disablePortFastPath = mode.disable
			defer func() { disablePortFastPath = false }()
			for i := 0; i < b.N; i++ {
				var sw *Sweep
				sjtWalk(8, 1<<30, func(perm []int, swapped int) {
					if swapped < 0 {
						var err error
						if sw, err = NewSweep(p, perm, schedule.OnePort, false); err != nil {
							b.Fatal(err)
						}
						return
					}
					sw.Delta(swapped)
					if _, ok := sw.Throughput(); !ok {
						b.Fatal("fell back past the chain search")
					}
				})
			}
		})
	}
}
