package eval

import (
	"fmt"
	"math"

	"repro/internal/eval/kern"
	"repro/internal/numeric"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// batchWidth is the lane count of one lockstep chunk. Eight float64 lanes
// fill two AVX2 registers (or one AVX-512 register); the position-step
// loops live in internal/eval/kern, which dispatches between a pure-Go
// reference, a hand-unrolled variant, and AVX2 assembly — all bitwise
// identical.
const batchWidth = kern.Width

// Batch evaluates many same-size FIFO or LIFO scenarios in lockstep. The
// scenarios' platform columns are laid out structure-of-arrays — for every
// send position one contiguous row of per-lane worker constants — and the
// closed-form load and dual chains run across all lanes of a chunk at each
// position step (auto-chunked batchWidth wide). Each lane carries the full
// KKT certificate of the all-rows-tight chain candidate, so a certified
// lane's throughput and loads are exactly the scenario's LP optimum (the
// value the tiered Auto pipeline produces); uncertified lanes — port
// overruns, resource selection, degenerate closures — must be re-evaluated
// individually through the full pipeline.
//
// The exhaustive pair search uses a Batch to seed its incumbent (the
// FIFO/LIFO return orders of every send permutation, evaluated up front),
// and dls.SolveBatch uses one to collapse chain-shaped requests of the same
// size into lockstep sweeps. A Batch is not safe for concurrent use.
type Batch struct {
	model schedule.Model
	lifo  bool
	q     int

	sends []int // lane-major: lane l's send order at [l*q : (l+1)*q]
	plats []*platform.Platform

	// Per-lane outputs, filled by Run.
	rho   []float64
	ok    []bool
	loads []float64 // lane-major normalised loads by send position

	// Chunk scratch: position-major, lane-minor columns of width batchWidth.
	c, d, w, cw, wd, g, dc, invCW, invWD, invCWD []float64
	chP, chU, chV                                []float64
	sp, sc, sd, pu, pv, t, denom                 []float64
	laneOK                                       []bool

	stamp    []int // duplicate-detection scratch for Add
	stampGen int

	// costCache memoises the derived per-worker constants per platform:
	// the gather stage would otherwise redo three divisions per worker per
	// lane on every Run. Platforms are immutable by convention, so entries
	// stay valid across Reset; the cache is dropped wholesale if it grows
	// past costCacheMax distinct platforms.
	costCache map[*platform.Platform][]workerCosts
}

const costCacheMax = 64

func (b *Batch) platformCosts(p *platform.Platform) []workerCosts {
	if wcs, ok := b.costCache[p]; ok {
		return wcs
	}
	if b.costCache == nil || len(b.costCache) >= costCacheMax {
		b.costCache = make(map[*platform.Platform][]workerCosts)
	}
	wcs := make([]workerCosts, p.P())
	for i := range wcs {
		wcs[i] = deriveCosts(p.Workers[i])
	}
	b.costCache[p] = wcs
	return wcs
}

// NewBatch prepares a batch of scenarios enrolling q workers each: FIFO
// (σ2 = σ1) when lifo is false, LIFO (σ2 = reverse σ1) when true.
func NewBatch(model schedule.Model, lifo bool, q int) (*Batch, error) {
	if model != schedule.OnePort && model != schedule.TwoPort {
		return nil, fmt.Errorf("eval: unknown model %v", model)
	}
	if q < 1 {
		return nil, fmt.Errorf("eval: batch scenario size %d must be >= 1", q)
	}
	n := batchWidth * q
	return &Batch{
		model: model, lifo: lifo, q: q,
		c: make([]float64, n), d: make([]float64, n), w: make([]float64, n),
		cw: make([]float64, n), wd: make([]float64, n), g: make([]float64, n),
		dc: make([]float64, n), invCW: make([]float64, n), invWD: make([]float64, n),
		invCWD: make([]float64, n),
		chP:    make([]float64, n), chU: make([]float64, n), chV: make([]float64, n),
		sp: make([]float64, batchWidth), sc: make([]float64, batchWidth),
		sd: make([]float64, batchWidth), pu: make([]float64, batchWidth),
		pv: make([]float64, batchWidth), t: make([]float64, batchWidth),
		denom:  make([]float64, batchWidth),
		laneOK: make([]bool, batchWidth),
	}, nil
}

// Len returns the number of scenarios added so far.
func (b *Batch) Len() int { return len(b.plats) }

// Reset drops all added scenarios, keeping the allocated columns.
func (b *Batch) Reset() {
	b.sends = b.sends[:0]
	b.plats = b.plats[:0]
	b.rho = b.rho[:0]
	b.ok = b.ok[:0]
	b.loads = b.loads[:0]
}

// Add appends one scenario lane: the given send order (copied) over the
// given platform. The order must enroll exactly q distinct workers of p.
func (b *Batch) Add(p *platform.Platform, send platform.Order) error {
	if len(send) != b.q {
		return fmt.Errorf("eval: batch of size-%d scenarios got a %d-worker send order", b.q, len(send))
	}
	n := p.P()
	if cap(b.stamp) < n {
		b.stamp = make([]int, n)
		b.stampGen = 0
	}
	b.stamp = b.stamp[:n]
	b.stampGen++
	for _, i := range send {
		if i < 0 || i >= n {
			return fmt.Errorf("eval: order references worker %d outside platform of %d workers", i, n)
		}
		if b.stamp[i] == b.stampGen {
			return fmt.Errorf("eval: worker %d appears twice in send order", i)
		}
		b.stamp[i] = b.stampGen
	}
	b.sends = append(b.sends, send...)
	b.plats = append(b.plats, p)
	return nil
}

// Run evaluates every added lane, chunked batchWidth wide. Results are
// available through Throughput, Loads and Schedule.
func (b *Batch) Run() {
	lanes := len(b.plats)
	b.rho = append(b.rho[:0], make([]float64, lanes)...)
	b.ok = append(b.ok[:0], make([]bool, lanes)...)
	b.loads = append(b.loads[:0], make([]float64, lanes*b.q)...)
	for base := 0; base < lanes; base += batchWidth {
		wch := lanes - base
		if wch > batchWidth {
			wch = batchWidth
		}
		b.runChunk(base, wch)
	}
}

// runChunk gathers the SoA columns of lanes [base, base+wch) and runs the
// chains in lockstep.
func (b *Batch) runChunk(base, wch int) {
	q, W := b.q, batchWidth
	// Gather: one row of per-lane worker constants per send position.
	for l := 0; l < wch; l++ {
		wcs := b.platformCosts(b.plats[base+l])
		send := b.sends[(base+l)*q : (base+l+1)*q]
		for pos, i := range send {
			wc := wcs[i]
			at := pos*W + l
			b.c[at], b.d[at], b.w[at] = wc.c, wc.d, wc.w
			b.cw[at], b.wd[at], b.g[at], b.dc[at] = wc.cw, wc.wd, wc.g, wc.dc
			b.invCW[at], b.invWD[at], b.invCWD[at] = wc.invCW, wc.invWD, wc.invCWD
		}
	}
	if b.lifo {
		b.runLIFO(base, wch)
	} else {
		b.runFIFO(base, wch)
	}
}

func (b *Batch) runFIFO(base, wch int) {
	q, W := b.q, batchWidth
	tol := numeric.CertTol
	P, u, v := b.chP, b.chU, b.chV
	// Load and dual chains across all lanes per position step. The kernels
	// always run the full chunk width; lanes past wch hold stale columns
	// whose outputs are never read.
	kern.FIFOChain(q, P, b.c, b.d, b.wd, b.invCW, b.sp, b.sc, b.sd)
	kern.FIFODual(q, b.c, b.dc, b.invWD, u, v, b.pu, b.pv)
	// Closures and certificates per lane.
	for l := 0; l < wch; l++ {
		denom := b.cw[l] + b.sd[l]
		rho := b.sp[l] / denom
		ok := denom > 0 && !math.IsNaN(rho) && !math.IsInf(rho, 0)
		lim := (1 + tol) * denom
		if b.model == schedule.TwoPort {
			ok = ok && b.sc[l] <= lim && b.sd[l] <= lim
		} else {
			ok = ok && b.sc[l]+b.sd[l] <= lim
		}
		onemv := 1 - b.pv[l]
		ok = ok && (onemv >= 1e-12 || onemv <= -1e-12)
		b.denom[l] = denom
		b.t[l] = b.pu[l] / onemv
		b.laneOK[l] = ok
		b.rho[base+l] = rho
	}
	// λ scan, position-major again so the hot loop stays lane-parallel.
	okMask := kern.FIFOLambdaOK(q, u, v, b.t, tol)
	for l := 0; l < wch; l++ {
		if okMask&(1<<l) == 0 {
			b.laneOK[l] = false
		}
	}
	for l := 0; l < wch; l++ {
		b.ok[base+l] = b.laneOK[l]
		if !b.laneOK[l] {
			continue
		}
		inv := 1 / b.denom[l]
		dst := b.loads[(base+l)*q : (base+l+1)*q]
		for pos := 0; pos < q; pos++ {
			dst[pos] = P[pos*W+l] * inv
		}
	}
}

func (b *Batch) runLIFO(base, wch int) {
	q, W := b.q, batchWidth
	tol := numeric.CertTol
	P := b.chP
	// Lower-triangular load chain (loads are already normalised), then the
	// backward dual chain with its per-lane certificate mask.
	kern.LIFOChain(q, P, b.w, b.invCWD, b.sp)
	okMask := kern.LIFODualOK(q, b.g, b.invCWD, b.pu, tol)
	for l := 0; l < wch; l++ {
		b.laneOK[l] = okMask&(1<<l) != 0
	}
	for l := 0; l < wch; l++ {
		rho := b.sp[l]
		ok := b.laneOK[l] && !math.IsNaN(rho) && !math.IsInf(rho, 0) && rho > 0
		b.rho[base+l] = rho
		b.ok[base+l] = ok
		if !ok {
			continue
		}
		dst := b.loads[(base+l)*q : (base+l+1)*q]
		for pos := 0; pos < q; pos++ {
			dst[pos] = P[pos*W+l]
		}
	}
}

// Throughput returns lane i's optimal throughput and whether its chain
// certificate held (false means the lane needs a full re-evaluation).
func (b *Batch) Throughput(i int) (float64, bool) {
	if !b.ok[i] {
		return 0, false
	}
	return b.rho[i], true
}

// Loads returns lane i's normalised loads by send position (a view into
// the batch's buffers, valid until the next Run/Reset) and whether the
// lane certified.
func (b *Batch) Loads(i int) ([]float64, bool) {
	if !b.ok[i] {
		return nil, false
	}
	return b.loads[i*b.q : (i+1)*b.q], true
}

// Scenario reconstructs lane i's scenario (the LIFO return order is
// allocated on each call).
func (b *Batch) Scenario(i int) Scenario {
	send := platform.Order(b.sends[i*b.q : (i+1)*b.q])
	ret := send
	if b.lifo {
		ret = send.Reverse()
	}
	return Scenario{Platform: b.plats[i], Send: send, Return: ret, Model: b.model}
}

// Schedule builds the verified schedule of a certified lane, applying the
// same degenerate-optimum canonicalisation as Session.Evaluate so batch
// results are indistinguishable from individually evaluated ones. It
// reports an error for uncertified lanes.
func (b *Batch) Schedule(i int) (*schedule.Schedule, error) {
	alpha, ok := b.Loads(i)
	if !ok {
		return nil, fmt.Errorf("eval: batch lane %d did not certify; evaluate it through the full pipeline", i)
	}
	sc := b.Scenario(i)
	s := GetSession()
	defer s.Release()
	return buildSchedule(sc, s.canonicalLoads(sc, alpha))
}
