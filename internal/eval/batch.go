package eval

import (
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// batchWidth is the lane count of one lockstep chunk. Eight float64 lanes
// fill two AVX2 registers (or one AVX-512 register); the chain loops below
// are written position-major, lane-minor so the compiler can keep each
// position step branch-free across the whole chunk.
const batchWidth = 8

// Batch evaluates many same-size FIFO or LIFO scenarios in lockstep. The
// scenarios' platform columns are laid out structure-of-arrays — for every
// send position one contiguous row of per-lane worker constants — and the
// closed-form load and dual chains run across all lanes of a chunk at each
// position step (auto-chunked batchWidth wide). Each lane carries the full
// KKT certificate of the all-rows-tight chain candidate, so a certified
// lane's throughput and loads are exactly the scenario's LP optimum (the
// value the tiered Auto pipeline produces); uncertified lanes — port
// overruns, resource selection, degenerate closures — must be re-evaluated
// individually through the full pipeline.
//
// The exhaustive pair search uses a Batch to seed its incumbent (the
// FIFO/LIFO return orders of every send permutation, evaluated up front),
// and dls.SolveBatch uses one to collapse chain-shaped requests of the same
// size into lockstep sweeps. A Batch is not safe for concurrent use.
type Batch struct {
	model schedule.Model
	lifo  bool
	q     int

	sends []int // lane-major: lane l's send order at [l*q : (l+1)*q]
	plats []*platform.Platform

	// Per-lane outputs, filled by Run.
	rho   []float64
	ok    []bool
	loads []float64 // lane-major normalised loads by send position

	// Chunk scratch: position-major, lane-minor columns of width batchWidth.
	c, d, w, cw, wd, g, dc, invCW, invWD, invCWD []float64
	chP, chU, chV                                []float64
	sp, sc, sd, pu, pv, t, denom                 []float64
	laneOK                                       []bool

	stamp    []int // duplicate-detection scratch for Add
	stampGen int
}

// NewBatch prepares a batch of scenarios enrolling q workers each: FIFO
// (σ2 = σ1) when lifo is false, LIFO (σ2 = reverse σ1) when true.
func NewBatch(model schedule.Model, lifo bool, q int) (*Batch, error) {
	if model != schedule.OnePort && model != schedule.TwoPort {
		return nil, fmt.Errorf("eval: unknown model %v", model)
	}
	if q < 1 {
		return nil, fmt.Errorf("eval: batch scenario size %d must be >= 1", q)
	}
	n := batchWidth * q
	return &Batch{
		model: model, lifo: lifo, q: q,
		c: make([]float64, n), d: make([]float64, n), w: make([]float64, n),
		cw: make([]float64, n), wd: make([]float64, n), g: make([]float64, n),
		dc: make([]float64, n), invCW: make([]float64, n), invWD: make([]float64, n),
		invCWD: make([]float64, n),
		chP:    make([]float64, n), chU: make([]float64, n), chV: make([]float64, n),
		sp: make([]float64, batchWidth), sc: make([]float64, batchWidth),
		sd: make([]float64, batchWidth), pu: make([]float64, batchWidth),
		pv: make([]float64, batchWidth), t: make([]float64, batchWidth),
		denom:  make([]float64, batchWidth),
		laneOK: make([]bool, batchWidth),
	}, nil
}

// Len returns the number of scenarios added so far.
func (b *Batch) Len() int { return len(b.plats) }

// Reset drops all added scenarios, keeping the allocated columns.
func (b *Batch) Reset() {
	b.sends = b.sends[:0]
	b.plats = b.plats[:0]
	b.rho = b.rho[:0]
	b.ok = b.ok[:0]
	b.loads = b.loads[:0]
}

// Add appends one scenario lane: the given send order (copied) over the
// given platform. The order must enroll exactly q distinct workers of p.
func (b *Batch) Add(p *platform.Platform, send platform.Order) error {
	if len(send) != b.q {
		return fmt.Errorf("eval: batch of size-%d scenarios got a %d-worker send order", b.q, len(send))
	}
	n := p.P()
	if cap(b.stamp) < n {
		b.stamp = make([]int, n)
		b.stampGen = 0
	}
	b.stamp = b.stamp[:n]
	b.stampGen++
	for _, i := range send {
		if i < 0 || i >= n {
			return fmt.Errorf("eval: order references worker %d outside platform of %d workers", i, n)
		}
		if b.stamp[i] == b.stampGen {
			return fmt.Errorf("eval: worker %d appears twice in send order", i)
		}
		b.stamp[i] = b.stampGen
	}
	b.sends = append(b.sends, send...)
	b.plats = append(b.plats, p)
	return nil
}

// Run evaluates every added lane, chunked batchWidth wide. Results are
// available through Throughput, Loads and Schedule.
func (b *Batch) Run() {
	lanes := len(b.plats)
	b.rho = append(b.rho[:0], make([]float64, lanes)...)
	b.ok = append(b.ok[:0], make([]bool, lanes)...)
	b.loads = append(b.loads[:0], make([]float64, lanes*b.q)...)
	for base := 0; base < lanes; base += batchWidth {
		wch := lanes - base
		if wch > batchWidth {
			wch = batchWidth
		}
		b.runChunk(base, wch)
	}
}

// runChunk gathers the SoA columns of lanes [base, base+wch) and runs the
// chains in lockstep.
func (b *Batch) runChunk(base, wch int) {
	q, W := b.q, batchWidth
	// Gather: one row of per-lane worker constants per send position.
	for l := 0; l < wch; l++ {
		p := b.plats[base+l]
		send := b.sends[(base+l)*q : (base+l+1)*q]
		for pos, i := range send {
			wc := deriveCosts(p.Workers[i])
			at := pos*W + l
			b.c[at], b.d[at], b.w[at] = wc.c, wc.d, wc.w
			b.cw[at], b.wd[at], b.g[at], b.dc[at] = wc.cw, wc.wd, wc.g, wc.dc
			b.invCW[at], b.invWD[at], b.invCWD[at] = wc.invCW, wc.invWD, wc.invCWD
		}
	}
	if b.lifo {
		b.runLIFO(base, wch)
	} else {
		b.runFIFO(base, wch)
	}
}

func (b *Batch) runFIFO(base, wch int) {
	q, W := b.q, batchWidth
	tol := numeric.CertTol
	P, u, v := b.chP, b.chU, b.chV
	// Load chain P and its sums, all lanes per position step.
	for l := 0; l < wch; l++ {
		P[l] = 1
		b.sp[l], b.sc[l], b.sd[l] = 1, b.c[l], b.d[l]
	}
	for pos := 1; pos < q; pos++ {
		row, prev := pos*W, (pos-1)*W
		for l := 0; l < wch; l++ {
			pk := P[prev+l] * b.wd[prev+l] * b.invCW[row+l]
			P[row+l] = pk
			b.sp[l] += pk
			b.sc[l] += pk * b.c[row+l]
			b.sd[l] += pk * b.d[row+l]
		}
	}
	// Dual chain prefixes.
	for l := 0; l < wch; l++ {
		b.pu[l], b.pv[l] = 0, 0
	}
	for pos := 0; pos < q; pos++ {
		row := pos * W
		for l := 0; l < wch; l++ {
			uk := (1 - b.dc[row+l]*b.pu[l]) * b.invWD[row+l]
			vk := (-b.c[row+l] - b.dc[row+l]*b.pv[l]) * b.invWD[row+l]
			u[row+l], v[row+l] = uk, vk
			b.pu[l] += uk
			b.pv[l] += vk
		}
	}
	// Closures and certificates per lane.
	for l := 0; l < wch; l++ {
		denom := b.cw[l] + b.sd[l]
		rho := b.sp[l] / denom
		ok := denom > 0 && !math.IsNaN(rho) && !math.IsInf(rho, 0)
		lim := (1 + tol) * denom
		if b.model == schedule.TwoPort {
			ok = ok && b.sc[l] <= lim && b.sd[l] <= lim
		} else {
			ok = ok && b.sc[l]+b.sd[l] <= lim
		}
		onemv := 1 - b.pv[l]
		ok = ok && (onemv >= 1e-12 || onemv <= -1e-12)
		b.denom[l] = denom
		b.t[l] = b.pu[l] / onemv
		b.laneOK[l] = ok
		b.rho[base+l] = rho
	}
	// λ scan, position-major again so the hot loop stays lane-parallel.
	for pos := 0; pos < q; pos++ {
		row := pos * W
		for l := 0; l < wch; l++ {
			if !(u[row+l]+b.t[l]*v[row+l] >= -tol) {
				b.laneOK[l] = false
			}
		}
	}
	for l := 0; l < wch; l++ {
		b.ok[base+l] = b.laneOK[l]
		if !b.laneOK[l] {
			continue
		}
		inv := 1 / b.denom[l]
		dst := b.loads[(base+l)*q : (base+l+1)*q]
		for pos := 0; pos < q; pos++ {
			dst[pos] = P[pos*W+l] * inv
		}
	}
}

func (b *Batch) runLIFO(base, wch int) {
	q, W := b.q, batchWidth
	tol := numeric.CertTol
	P := b.chP
	// Lower-triangular load chain; loads are already normalised.
	for l := 0; l < wch; l++ {
		P[l] = b.invCWD[l]
		b.sp[l] = P[l]
	}
	for pos := 1; pos < q; pos++ {
		row, prev := pos*W, (pos-1)*W
		for l := 0; l < wch; l++ {
			pk := P[prev+l] * b.w[prev+l] * b.invCWD[row+l]
			P[row+l] = pk
			b.sp[l] += pk
		}
	}
	// Backward dual chain; pu doubles as the suffix sum, laneOK as the
	// running certificate.
	for l := 0; l < wch; l++ {
		b.pu[l] = 0
		b.laneOK[l] = true
	}
	for pos := q - 1; pos >= 0; pos-- {
		row := pos * W
		for l := 0; l < wch; l++ {
			lam := (1 - b.g[row+l]*b.pu[l]) * b.invCWD[row+l]
			b.pu[l] += lam
			if !(lam >= -tol) {
				b.laneOK[l] = false
			}
		}
	}
	for l := 0; l < wch; l++ {
		rho := b.sp[l]
		ok := b.laneOK[l] && !math.IsNaN(rho) && !math.IsInf(rho, 0) && rho > 0
		b.rho[base+l] = rho
		b.ok[base+l] = ok
		if !ok {
			continue
		}
		dst := b.loads[(base+l)*q : (base+l+1)*q]
		for pos := 0; pos < q; pos++ {
			dst[pos] = P[pos*W+l]
		}
	}
}

// Throughput returns lane i's optimal throughput and whether its chain
// certificate held (false means the lane needs a full re-evaluation).
func (b *Batch) Throughput(i int) (float64, bool) {
	if !b.ok[i] {
		return 0, false
	}
	return b.rho[i], true
}

// Loads returns lane i's normalised loads by send position (a view into
// the batch's buffers, valid until the next Run/Reset) and whether the
// lane certified.
func (b *Batch) Loads(i int) ([]float64, bool) {
	if !b.ok[i] {
		return nil, false
	}
	return b.loads[i*b.q : (i+1)*b.q], true
}

// Scenario reconstructs lane i's scenario (the LIFO return order is
// allocated on each call).
func (b *Batch) Scenario(i int) Scenario {
	send := platform.Order(b.sends[i*b.q : (i+1)*b.q])
	ret := send
	if b.lifo {
		ret = send.Reverse()
	}
	return Scenario{Platform: b.plats[i], Send: send, Return: ret, Model: b.model}
}

// Schedule builds the verified schedule of a certified lane, applying the
// same degenerate-optimum canonicalisation as Session.Evaluate so batch
// results are indistinguishable from individually evaluated ones. It
// reports an error for uncertified lanes.
func (b *Batch) Schedule(i int) (*schedule.Schedule, error) {
	alpha, ok := b.Loads(i)
	if !ok {
		return nil, fmt.Errorf("eval: batch lane %d did not certify; evaluate it through the full pipeline", i)
	}
	sc := b.Scenario(i)
	s := GetSession()
	defer s.Release()
	return buildSchedule(sc, s.canonicalLoads(sc, alpha))
}
