package eval

import (
	"math"

	"repro/internal/numeric"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// This file implements the tight-system backends: the O(p) FIFO and LIFO
// load/dual chains (closed form), the Theorem 2 bus construction, and the
// general p×p Gaussian elimination with its transpose solve.
//
// Throughout, A is the matrix of per-worker constraints in send-position
// space: row s is the constraint of the worker at send position s, column
// t the load of the worker at send position t. The tight candidate solves
// A·α = 1; the optimality certificate additionally solves Aᵀ·λ = 1 and
// demands α ≥ 0, λ ≥ 0 and slack port rows (see the package comment).

// certOK reports whether v is acceptable as a "non-negative" certificate
// component: at worst CertTol below zero, and finite.
func certOK(v float64) bool {
	return v >= -numeric.CertTol && !math.IsNaN(v) && !math.IsInf(v, 0)
}

// clampLoads zeroes the tiny negative loads admitted by certOK so the
// downstream schedule checker sees α ≥ 0 exactly.
func clampLoads(alpha []float64) {
	for k, a := range alpha {
		if a < 0 {
			alpha[k] = 0
		}
	}
}

// portFeasible verifies the port constraint(s) at the candidate loads.
func portFeasible(p *platform.Platform, send platform.Order, alpha []float64, model schedule.Model) bool {
	sumC, sumD := 0.0, 0.0
	for k, i := range send {
		sumC += alpha[k] * p.Workers[i].C
		sumD += alpha[k] * p.Workers[i].D
	}
	lim := 1 + numeric.CertTol
	if model == schedule.TwoPort {
		return sumC <= lim && sumD <= lim
	}
	return sumC+sumD <= lim
}

// --- FIFO chain -----------------------------------------------------------

// fifoTight computes the all-constraints-tight FIFO loads in O(p).
// Subtracting consecutive tight rows gives the two-term recurrence
//
//	α_{k} = α_{k-1} · (w_{k-1} + d_{k-1}) / (c_k + w_k),
//
// and the first row fixes the overall scale. The chain loads are positive
// by construction (all costs are positive), so only the port constraint
// and the dual certificate can reject the candidate.
func (s *Session) fifoTight(p *platform.Platform, send platform.Order) ([]float64, bool) {
	wc := s.derivedCosts(p)
	q := len(send)
	alpha := grow(&s.alpha, q)
	alpha[0] = 1
	// First row: α_0·(c_0 + w_0) + Σ_j α_j·d_j = 1.
	denom := wc[send[0]].cw + wc[send[0]].d
	for k := 1; k < q; k++ {
		a := alpha[k-1] * wc[send[k-1]].wd * wc[send[k]].invCW
		alpha[k] = a
		denom += a * wc[send[k]].d
	}
	if denom <= 0 || math.IsNaN(denom) || math.IsInf(denom, 0) {
		return nil, false
	}
	t := 1 / denom
	for k := range alpha {
		alpha[k] *= t
		if math.IsNaN(alpha[k]) || math.IsInf(alpha[k], 0) {
			return nil, false
		}
	}
	return alpha, true
}

// --- LIFO chain -----------------------------------------------------------

// lifoTight computes the all-constraints-tight LIFO loads in O(p). For
// σ2 = reverse(σ1) the per-worker constraint of the worker at send
// position k involves only positions ≤ k, so A is lower triangular and the
// tight system collapses to
//
//	α_0 = 1/(c_0 + w_0 + d_0),   α_k = α_{k-1}·w_{k-1}/(c_k + w_k + d_k).
//
// The chain loads are positive, and the port constraints hold
// automatically: the last row gives Σα·(c+d) = 1 − α_{q-1}·w_{q-1} < 1.
// Only the dual certificate can reject the candidate.
func (s *Session) lifoTight(p *platform.Platform, send platform.Order) ([]float64, bool) {
	wc := s.derivedCosts(p)
	q := len(send)
	alpha := grow(&s.alpha, q)
	for k, i := range send {
		if k == 0 {
			alpha[0] = wc[i].invCWD
		} else {
			alpha[k] = alpha[k-1] * wc[send[k-1]].w * wc[i].invCWD
		}
		if math.IsNaN(alpha[k]) || math.IsInf(alpha[k], 0) {
			return nil, false
		}
	}
	return alpha, true
}

// --- Theorem 2 bus construction ------------------------------------------

// busFIFO evaluates a one-port FIFO scenario on a bus platform via the
// closed form of Theorem 2, including the port-bound regime the tight
// chain cannot certify: start from the two-port tight loads
// α_i = u_i/(1 + d·Σu) with u_i = 1/(d+w_i)·Π_{j≤i}(d+w_j)/(c+w_j) and,
// when their throughput exceeds the one-port bound 1/(c+d), scale every
// load by 1/(ρ̃·(c+d)); the scaled schedule saturates the port and is
// optimal by the constructive proof of Theorem 2.
func (s *Session) busFIFO(p *platform.Platform, send platform.Order) ([]float64, bool) {
	c, d := p.Workers[send[0]].C, p.Workers[send[0]].D
	for _, i := range send {
		w := p.Workers[i]
		if math.Abs(w.C-c) > numeric.RatioTol*(1+c) || math.Abs(w.D-d) > numeric.RatioTol*(1+d) {
			return nil, false // links of the enrolled workers are not identical
		}
	}
	q := len(send)
	alpha := grow(&s.alpha, q)
	prod, sum := 1.0, 0.0
	for k, i := range send {
		w := p.Workers[i].W
		prod *= (d + w) / (c + w)
		alpha[k] = prod / (d + w) // u_k
		sum += alpha[k]
	}
	scale := 1 / (1 + d*sum)
	if rho2 := sum * scale; rho2 > 1/(c+d) {
		scale /= rho2 * (c + d)
	}
	for k := range alpha {
		alpha[k] *= scale
	}
	return alpha, true
}

// --- General (σ1, σ2) tight system ---------------------------------------

// buildTightBase fills dst (q×q, row-major) with the return-order-
// independent half of the tight system: the send-prefix c terms and the
// diagonal w terms. The FixedSend pair-search path shares one base across
// every return order of a send permutation.
func buildTightBase(dst []float64, p *platform.Platform, send platform.Order) {
	q := len(send)
	for s := 0; s < q; s++ {
		row := dst[s*q : (s+1)*q]
		for t := 0; t < q; t++ {
			if t <= s {
				row[t] = p.Workers[send[t]].C
			} else {
				row[t] = 0
			}
		}
		row[s] += p.Workers[send[s]].W
	}
}

// addReturnTerms adds the d terms of the given return order onto a copied
// base: row s (worker i) gains d_j for every j returning at or after i.
func (s *Session) addReturnTerms(a []float64, p *platform.Platform, send, ret platform.Order) {
	q := len(send)
	retPos := growInt(&s.retPos, p.P())
	for k, i := range ret {
		retPos[i] = k
	}
	for si := 0; si < q; si++ {
		row := a[si*q : (si+1)*q]
		ri := retPos[send[si]]
		for t := 0; t < q; t++ {
			if retPos[send[t]] >= ri {
				row[t] += p.Workers[send[t]].D
			}
		}
	}
}

// luFactor factorises the q×q matrix a in place (Doolittle LU with partial
// pivoting, row swaps recorded in piv). It reports false when a pivot is
// numerically zero (singular or hopelessly ill-conditioned system).
func luFactor(a []float64, piv []int, q int) bool {
	for k := 0; k < q; k++ {
		// Pivot search in column k.
		p, best := k, math.Abs(a[k*q+k])
		for i := k + 1; i < q; i++ {
			if v := math.Abs(a[i*q+k]); v > best {
				p, best = i, v
			}
		}
		if best < 1e-12 {
			return false
		}
		piv[k] = p
		if p != k {
			for j := 0; j < q; j++ {
				a[k*q+j], a[p*q+j] = a[p*q+j], a[k*q+j]
			}
		}
		inv := 1 / a[k*q+k]
		for i := k + 1; i < q; i++ {
			f := a[i*q+k] * inv
			a[i*q+k] = f
			if f == 0 {
				continue
			}
			for j := k + 1; j < q; j++ {
				a[i*q+j] -= f * a[k*q+j]
			}
		}
	}
	return true
}

// luSolve solves A·x = b in place using the factorisation (PA = LU).
func luSolve(a []float64, piv []int, q int, b []float64) {
	for k := 0; k < q; k++ {
		if piv[k] != k {
			b[k], b[piv[k]] = b[piv[k]], b[k]
		}
	}
	for i := 1; i < q; i++ { // forward: L·y = Pb
		for j := 0; j < i; j++ {
			b[i] -= a[i*q+j] * b[j]
		}
	}
	for i := q - 1; i >= 0; i-- { // backward: U·x = y
		for j := i + 1; j < q; j++ {
			b[i] -= a[i*q+j] * b[j]
		}
		b[i] /= a[i*q+i]
	}
}

// luSolveTranspose solves Aᵀ·x = b in place using the same factorisation:
// Aᵀ = Uᵀ·Lᵀ·P, so solve Uᵀy = b (forward), Lᵀz = y (backward), then
// x = Pᵀz by applying the recorded row swaps in reverse.
func luSolveTranspose(a []float64, piv []int, q int, b []float64) {
	for i := 0; i < q; i++ { // forward: Uᵀ is lower triangular
		for j := 0; j < i; j++ {
			b[i] -= a[j*q+i] * b[j]
		}
		b[i] /= a[i*q+i]
	}
	for i := q - 2; i >= 0; i-- { // backward: Lᵀ is unit upper triangular
		for j := i + 1; j < q; j++ {
			b[i] -= a[j*q+i] * b[j]
		}
	}
	for k := q - 1; k >= 0; k-- {
		if piv[k] != k {
			b[k], b[piv[k]] = b[piv[k]], b[k]
		}
	}
}

// slackKind selects which tight row stands in for a slack worker row in an
// active-set candidate.
type slackKind uint8

const (
	slackPortRow    slackKind = iota // the tight one-port row Σ α·(c+d) = 1
	slackDroppedRow                  // a dropped worker's tight constraint row
)

// slackSpec names one slack worker row of a candidate: row (an index
// within the enrolled set E) is replaced by a different tight row — the
// one-port row (slackPortRow), or the constraint row of a dropped worker
// (slackDroppedRow; dpos is that worker's send position).
//
// The two-port model contributes no port-row specs, because neither of its
// port rows can ever be tight at an optimum with positive loads: the last
// enrolled sender's worker row contains the full send prefix Σ α·c plus
// its own strictly positive w and d terms, so it dominates the send row,
// and symmetrically the first enrolled returner's row contains the full
// Σ α·d and dominates the receive row. What the two-port model does admit
// — with no port row available to absorb a slack worker row — are
// degenerate vertices where an enrolled worker idles while a DROPPED
// worker's row is tight; slackDroppedRow covers exactly those.
type slackSpec struct {
	row  int
	kind slackKind
	dpos int // slackDroppedRow only: send position of the standing-in row
}

// slackAt reports whether enrolled row r is a slack row of the candidate,
// and which tight row stands in for it.
func slackAt(slacks []slackSpec, r int) (slackSpec, bool) {
	for _, sp := range slacks {
		if sp.row == r {
			return sp, true
		}
	}
	return slackSpec{}, false
}

// disableTwoPortRescue switches off the two-port rescue passes of the
// active-set search (the dual-first re-descent and the dropped-row vertex
// enumeration), reverting the two-port descent to the single one-port-style
// greedy pass. Test hook only: the regression test compares simplex
// fallbacks with and without the rescues.
var disableTwoPortRescue bool

// tightReject explains why a tight candidate was refused, steering the
// next tier: port overruns move on to the port-bound vertices, anything
// else (negative load, negative dual, singular system) indicates resource
// selection or degeneracy and goes straight to the simplex.
type tightReject int

const (
	rejectNone tightReject = iota
	rejectPort             // candidate violates a port constraint
	rejectOther
)

// fullTightMatrix assembles the complete all-tight system of the scenario
// into dst (and fills s.retPos as a side effect).
func (s *Session) fullTightMatrix(dst []float64, sc Scenario) {
	buildTightBase(dst, sc.Platform, sc.Send)
	s.addReturnTerms(dst, sc.Platform, sc.Send, sc.Return)
}

// tightSearch is the guided active-set solver behind the direct backend.
//
// Every optimal vertex of a scenario LP has a simple structure dictated by
// the paper's lemmas: the enrolled workers E (positive loads — resource
// selection may drop the rest, Proposition 1) have all their constraint
// rows tight, except that a worker row may be slack — a worker may have
// idle time (Lemma 1) — only when a port row is tight instead. Under the
// one-port model that means at most one slack row (the single port row);
// under the two-port model the independent send and receive rows admit up
// to two, one per saturated port. The search walks that vertex space
// greedily:
//
//	for E = all workers, then ever smaller subsets:
//	    try the all-rows-tight system on E
//	    try, for each slack row k (last send position first, Lemma 2),
//	        the system with row k replaced by a tight port row — the
//	        one-port row, or the send/receive row under two-port
//	    try (two-port) each pair of slack rows replaced by the tight
//	        send row and the tight receive row
//	    if a candidate passes the full-LP KKT certificate, done
//	    otherwise drop the worker whose candidate load came out most
//	    negative and descend
//
// Each candidate is an m×m linear solve plus a certificate: primal
// feasibility (loads ≥ 0; the slack rows, the dropped workers' rows and
// the untight port constraints hold as inequalities), dual feasibility
// (multipliers of the tight rows ≥ 0 via the transpose solve) and, for
// every dropped worker j, the dual inequality
// Σ λ_i·A_{ij} + Σ μ_k·portCoeff_k(j) ≥ 1 that makes α_j = 0 optimal. A
// certified candidate is the LP optimum by strong duality; if the greedy
// path certifies nothing, the caller falls back to the simplex, so the
// search can only ever be fast, never wrong.
//
// skipFullTight skips the top-level all-tight candidate (used when the
// caller already refuted it via the O(p) chains); topHint optionally
// carries the chain's dual-failure position as a first-level descent hint
// (-1 for none).
func (s *Session) tightSearch(sc Scenario, skipFullTight bool, topHint int) ([]float64, bool) {
	q := len(sc.Send)
	full := grow(&s.work, q*q)
	s.fullTightMatrix(full, sc)
	return s.tightSearchOn(sc, full, skipFullTight, topHint)
}

// vertexHints carries the descent signals of a failed candidate: the most
// negative candidate load and the most negative worker-row multiplier
// (send positions; -1 when absent). A negative load names a worker the
// candidate wants at zero; a negative multiplier names a row that should
// not be tight — for candidates where the port row already accounts for
// the one allowed slack row, that too means "drop this worker".
type vertexHints struct {
	loadPos, dualPos int
	loadVal, dualVal float64
}

// tightSearchOn runs the active-set search on a pre-assembled full tight
// matrix (s.retPos must describe sc.Return, as fullTightMatrix leaves it).
//
// The first pass is the greedy descent guided by load hints. Under the
// two-port model two further failure modes appear that the one-port lemmas
// rule out, and each gets a rescue pass before the caller resorts to the
// simplex: pair optima whose enrolled set is all-tight but whose descent
// path the load hints misname (the dual hints usually name it — re-descend
// preferring them), and degenerate vertices where an enrolled worker idles
// against a tight dropped-worker row (re-descend with the slackDroppedRow
// candidates enabled). Each pass costs at most one failed descent, against
// the full simplex solve it replaces; a certificate from any pass is the
// LP optimum, so pass order cannot affect results.
func (s *Session) tightSearchOn(sc Scenario, full []float64, skipFullTight bool, topHint int) ([]float64, bool) {
	if alpha, ok := s.tightDescend(sc, full, skipFullTight, topHint, false, false); ok {
		return alpha, true
	}
	if sc.Model != schedule.TwoPort || disableTwoPortRescue {
		return nil, false
	}
	if alpha, ok := s.tightDescend(sc, full, skipFullTight, topHint, true, false); ok {
		s.twoPortDualCerts++
		return alpha, true
	}
	if alpha, ok := s.tightDescend(sc, full, skipFullTight, topHint, false, true); ok {
		s.twoPortDroppedCerts++
		return alpha, true
	}
	if alpha, ok := s.tightDescend(sc, full, skipFullTight, topHint, true, true); ok {
		s.twoPortDroppedCerts++
		return alpha, true
	}
	return nil, false
}

// tightDescend is one greedy active-set descent. dualFirst flips the drop
// priority from load hints to dual hints; droppedRescue enables the
// slackDroppedRow candidates at every level.
func (s *Session) tightDescend(sc Scenario, full []float64, skipFullTight bool, topHint int, dualFirst, droppedRescue bool) ([]float64, bool) {
	q := len(sc.Send)
	enrolled := growInt(&s.enrolled, q)
	for i := range enrolled {
		enrolled[i] = i
	}
	for m := q; m >= 1; m-- {
		E := enrolled[:m]
		// Descent hints, by reliability: the all-tight candidate respects
		// the minimal-slack structure of an optimal vertex, so its signals
		// outrank the port-tight candidates'; within a class, the candidate
		// closest to feasibility (least negative value) sits nearest the
		// optimum, and its negative position names the worker resource
		// selection wants to drop.
		var allTight, slackBest vertexHints
		allTight.loadPos, allTight.dualPos = -1, -1
		slackBest.loadPos, slackBest.dualPos = -1, -1
		slackBest.loadVal, slackBest.dualVal = math.Inf(-1), math.Inf(-1)
		if !(m == q && skipFullTight) {
			if out, ok := s.tryCand(sc, full, E, s.slackBuf[:0], &allTight, &slackBest); ok {
				return out, true
			}
		}
		if sc.Model == schedule.OnePort {
			// At most one worker row may be slack (Lemma 1), and only when
			// the one-port row is tight instead; last send position first
			// (Lemma 2). The two-port model gets no port-row candidates:
			// its port rows are dominated by worker rows (see slackSpec).
			for k := m - 1; k >= 0; k-- {
				spec := append(s.slackBuf[:0], slackSpec{row: k, kind: slackPortRow})
				if out, ok := s.tryCand(sc, full, E, spec, &allTight, &slackBest); ok {
					return out, true
				}
			}
		}
		if droppedRescue && m < q {
			// Degenerate-vertex rescue: one enrolled row goes slack against
			// a tight dropped-worker row. E is kept sorted by the descent,
			// so the dropped send positions are its complement.
			for k := m - 1; k >= 0; k-- {
				e := 0
				for dpos := 0; dpos < q; dpos++ {
					if e < m && E[e] == dpos {
						e++
						continue
					}
					spec := append(s.slackBuf[:0], slackSpec{row: k, kind: slackDroppedRow, dpos: dpos})
					if out, ok := s.tryCand(sc, full, E, spec, &allTight, &slackBest); ok {
						return out, true
					}
				}
			}
		}
		if m == 1 {
			break
		}
		drop := -1
		order := [...]int{allTight.loadPos, allTight.dualPos, slackBest.loadPos, slackBest.dualPos, topHint}
		if dualFirst {
			order = [...]int{allTight.dualPos, allTight.loadPos, slackBest.dualPos, slackBest.loadPos, topHint}
		}
		for _, cand := range order {
			if cand >= 0 {
				drop = cand
				break
			}
		}
		topHint = -1 // the chain hint applies to the first descent only
		if drop < 0 {
			drop = E[m-1]
		}
		w := 0
		for _, pos := range E {
			if pos != drop {
				enrolled[w] = pos
				w++
			}
		}
	}
	return nil, false
}

// tryCand runs one active-set candidate and folds its outcome into the
// level's descent hints; on success it returns the certified loads expanded
// back to all send positions.
func (s *Session) tryCand(sc Scenario, full []float64, E []int, slacks []slackSpec, allTight, slackBest *vertexHints) ([]float64, bool) {
	alpha, ok, h := s.tryVertex(sc, full, E, slacks)
	if ok {
		q := len(sc.Send)
		out := grow(&s.u, q)
		for t := range out {
			out[t] = 0
		}
		for r, pos := range E {
			out[pos] = alpha[r]
		}
		return out, true
	}
	if len(slacks) == 0 {
		*allTight = h
		return nil, false
	}
	if h.loadPos >= 0 && h.loadVal > slackBest.loadVal {
		slackBest.loadPos, slackBest.loadVal = h.loadPos, h.loadVal
	}
	if h.dualPos >= 0 && h.dualVal > slackBest.dualVal {
		slackBest.dualPos, slackBest.dualVal = h.dualPos, h.dualVal
	}
	return nil, false
}

// tryVertex solves and certifies one active-set candidate: enrolled
// positions E, with each slack row E[sp.row] replaced by the tight port row
// of kind sp.kind. On failure it reports descent hints (see vertexHints).
func (s *Session) tryVertex(sc Scenario, full []float64, E []int, slacks []slackSpec) (alpha []float64, ok bool, h vertexHints) {
	p, send := sc.Platform, sc.Send
	q := len(send)
	m := len(E)
	tol := numeric.CertTol
	// Assemble the m×m candidate system.
	a := grow(&s.a, m*m)
	for r, pos := range E {
		row := a[r*m : (r+1)*m]
		src := full[pos*q:]
		if sp, isSlack := slackAt(slacks, r); isSlack {
			if sp.kind == slackPortRow {
				for t, cpos := range E {
					w := p.Workers[send[cpos]]
					row[t] = w.C + w.D
				}
				continue
			}
			src = full[sp.dpos*q:] // the dropped worker's row stands in
		}
		for t, cpos := range E {
			row[t] = src[cpos]
		}
	}
	piv := growInt(&s.piv, m)
	h.loadPos, h.dualPos = -1, -1
	if !luFactor(a, piv, m) {
		return nil, false, h
	}
	alpha = grow(&s.alpha, m)
	for r := range alpha {
		alpha[r] = 1
	}
	luSolve(a, piv, m, alpha)
	for r, v := range alpha {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, false, h
		}
		if v < h.loadVal {
			h.loadPos, h.loadVal = E[r], v
		}
	}
	feasible := h.loadVal >= -tol
	if feasible {
		h.loadPos = -1
		h.loadVal = 0
		clampLoads(alpha)
	}
	// Dual multipliers of the tight rows (λ for worker rows, μ at the
	// slack indices for the port rows); computed before the feasibility
	// verdict because a negative λ is the resource-selection hint even
	// when the primal side already failed.
	lam := grow(&s.lam, m)
	for r := range lam {
		lam[r] = 1
	}
	luSolveTranspose(a, piv, m, lam)
	dualOK := true
	for r, l := range lam {
		if !certOK(l) {
			dualOK = false
			if _, isSlack := slackAt(slacks, r); !isSlack && l < h.dualVal {
				h.dualPos, h.dualVal = E[r], l
			}
		}
	}
	if !feasible {
		return nil, false, h
	}
	// Primal feasibility of the rows outside the tight set: the slack
	// rows, every dropped worker's row, and the port constraint(s).
	rowLHS := func(pos int) float64 {
		src := full[pos*q:]
		lhs := 0.0
		for t, cpos := range E {
			lhs += src[cpos] * alpha[t]
		}
		return lhs
	}
	for _, sp := range slacks {
		if rowLHS(E[sp.row]) > 1+tol {
			return nil, false, h
		}
	}
	inE := growInt(&s.mask, q)
	for t := range inE {
		inE[t] = -1
	}
	for r, pos := range E {
		inE[pos] = r
	}
	for pos := 0; pos < q; pos++ {
		if inE[pos] < 0 && rowLHS(pos) > 1+tol {
			return nil, false, h
		}
	}
	// Port constraints not in the tight set must hold as inequalities.
	hasPortRow := false
	for _, sp := range slacks {
		if sp.kind == slackPortRow {
			hasPortRow = true
		}
	}
	if !hasPortRow {
		sumC, sumD := 0.0, 0.0
		for r, pos := range E {
			w := p.Workers[send[pos]]
			sumC += alpha[r] * w.C
			sumD += alpha[r] * w.D
		}
		if sc.Model == schedule.TwoPort {
			if sumC > 1+tol || sumD > 1+tol {
				return nil, false, h
			}
		} else if sumC+sumD > 1+tol {
			return nil, false, h
		}
	}
	if !dualOK {
		return nil, false, h
	}
	// Dropped-variable optimality: for every dropped worker j the dual
	// constraint Σ λ_r·A_{rj} ≥ 1 must hold over the tight rows, where a
	// worker row contributes A_{ij} = c_j·[σ1: j before i] + d_j·[σ2: j
	// after i], the one-port row contributes c_j + d_j (its λ is μ), and a
	// standing-in dropped row its own coefficient on α_j.
	for pos := 0; pos < q; pos++ {
		if inE[pos] >= 0 {
			continue
		}
		j := send[pos]
		wj := p.Workers[j]
		rj := s.retPos[j]
		val := 0.0
		for r, ipos := range E {
			if sp, isSlack := slackAt(slacks, r); isSlack {
				if sp.kind == slackPortRow {
					val += lam[r] * (wj.C + wj.D) // μ · g_j
				} else {
					val += lam[r] * full[sp.dpos*q+pos]
				}
				continue
			}
			i := send[ipos]
			if pos <= ipos {
				val += lam[r] * wj.C
			}
			if rj >= s.retPos[i] {
				val += lam[r] * wj.D
			}
		}
		if val < 1-tol {
			return nil, false, h
		}
	}
	return alpha, true, h
}

// generalTight assembles and certifies the tight system of an arbitrary
// (σ1, σ2) scenario through the active-set search.
func (s *Session) generalTight(sc Scenario) ([]float64, bool) {
	return s.tightSearch(sc, false, -1)
}

// fifoTightCertified runs the closed-form FIFO pipeline: chain loads, port
// check, dual chain. A port overrun is reported as rejectPort so the Auto
// and Direct tiers can cascade to the port-bound LU vertices (and the
// ClosedForm tier to the Theorem 2 bus construction).
func (s *Session) fifoTightCertified(sc Scenario) ([]float64, tightReject) {
	alpha, ok := s.fifoTight(sc.Platform, sc.Send)
	if !ok {
		return nil, rejectOther
	}
	if !portFeasible(sc.Platform, sc.Send, alpha, sc.Model) {
		return nil, rejectPort
	}
	if _, ok := s.fifoDualHint(sc.Platform, sc.Send); !ok {
		return nil, rejectOther
	}
	return alpha, rejectNone
}

// lifoTightCertified runs the closed-form LIFO pipeline: chain loads (port
// feasibility is automatic — the last tight row caps Σα·(c+d) below 1),
// dual back substitution.
func (s *Session) lifoTightCertified(sc Scenario) ([]float64, bool) {
	alpha, ok := s.lifoTight(sc.Platform, sc.Send)
	if !ok {
		return nil, false
	}
	if _, ok := s.lifoDualHint(sc.Platform, sc.Send); !ok {
		return nil, false
	}
	return alpha, true
}
