package eval

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/schedule"
)

// The return-prefix bound property test: on 240 random platforms across
// every shape family, the bound must be admissible — it never understates
// the true optimum of ANY completion of the committed prefix
// (equivalently, the implied makespan lower bound load/ρ never exceeds a
// completion's true makespan) — monotone non-increasing in prefix length,
// and equal to the scenario optimum at a full prefix. Admissibility is
// what makes the branch-and-bound sound: a subtree is discarded only when
// its bound cannot beat the incumbent, which the property guarantees no
// completion inside the subtree could have done either.
func TestReturnPrefixBoundAdmissibleAndMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(31415))
	fresh := NewSession()
	sess := NewSession()
	const trials = 240
	for trial := 0; trial < trials; {
		p := randomAgreementPlatform(rng)
		n := p.P()
		if n > 5 {
			continue // keep the per-prefix completion sweeps cheap
		}
		trial++
		send := platform.Order(rng.Perm(n))
		model := schedule.OnePort
		if trial%5 == 0 {
			model = schedule.TwoPort
		}
		// Walk one random root-leaf commitment path; at every prefix along
		// it, check the bound against random (and at full depth, the exact)
		// completions.
		tail := make([]int, 0, n)
		openPos := make([]int, n)
		for i := range openPos {
			openPos[i] = i
		}
		prev := math.Inf(1)
		for depth := 0; depth <= n; depth++ {
			bound, err := sess.ReturnPrefixBound(p, send, model, tail)
			if err != nil {
				t.Fatal(err)
			}
			if bound > prev*(1+1e-9) {
				t.Fatalf("trial %d depth %d: bound %.12g exceeds its parent %.12g — not monotone\nσ1=%v tail=%v\n%s",
					trial, depth, bound, prev, send, tail, p)
			}
			prev = bound
			// Admissibility against completions consistent with the prefix:
			// the committed workers occupy the LAST return positions (in
			// commitment order), the open workers fill the front.
			checks := 3
			if depth == n {
				checks = 1
			}
			for k := 0; k < checks; k++ {
				ret := make(platform.Order, n)
				for i, pos := range tail {
					ret[n-1-i] = send[pos]
				}
				perm := rng.Perm(len(openPos))
				for i, oi := range perm {
					ret[i] = send[openPos[oi]]
				}
				sc := Scenario{Platform: p, Send: send, Return: ret, Model: model}
				rho, err := fresh.Throughput(sc, Simplex)
				if err != nil {
					t.Fatal(err)
				}
				if rho > bound*(1+1e-9) {
					t.Fatalf("trial %d depth %d: completion σ2=%v achieves %.12g above the bound %.12g\nσ1=%v tail=%v\n%s",
						trial, depth, ret, rho, bound, send, tail, p)
				}
				if depth == n {
					// A full prefix admits exactly one completion: the bound
					// must collapse to its optimum.
					if d := bound - rho; d > 1e-9*(1+rho) || d < -1e-9*(1+rho) {
						t.Fatalf("trial %d: full-prefix bound %.12g != scenario optimum %.12g", trial, bound, rho)
					}
				}
			}
			if depth == n {
				break
			}
			// Commit one more random open worker.
			k := rng.Intn(len(openPos))
			tail = append(tail, openPos[k])
			openPos = append(openPos[:k], openPos[k+1:]...)
		}
	}
}

// TestReturnPrefixBoundMatchesSendBound pins the root of the prefix
// relaxation to the existing send-order relaxation: with nothing
// committed, both relax each worker row to its send prefix, own
// processing and own return message, so the two bounds must coincide.
func TestReturnPrefixBoundMatchesSendBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	sess := NewSession()
	for trial := 0; trial < 40; trial++ {
		p := randomAgreementPlatform(rng)
		if p.P() > 6 {
			continue
		}
		send := platform.Order(rng.Perm(p.P()))
		root, err := sess.ReturnPrefixBound(p, send, schedule.OnePort, nil)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := sess.SendBound(p, send, schedule.OnePort)
		if err != nil {
			t.Fatal(err)
		}
		if !agreeEq(root, sb) {
			t.Fatalf("trial %d: empty-prefix bound %.12g != SendBound %.12g (σ1=%v)\n%s", trial, root, sb, send, p)
		}
	}
}

// TestReturnPrefixIncrementalMatchesOneShot walks random Push/Pop
// sequences and checks the incremental Bound against the from-scratch
// one-shot: a certified (exact) bound must equal the relaxation optimum,
// and an uncertified one may only be looser — the one-shot optimum is its
// floor, never its ceiling.
func TestReturnPrefixIncrementalMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(1618))
	sess := NewSession()
	oneShot := NewSession()
	for trial := 0; trial < 60; trial++ {
		p := randomAgreementPlatform(rng)
		n := p.P()
		if n > 5 {
			continue
		}
		send := platform.Order(rng.Perm(n))
		rp, err := sess.NewReturnPrefix(p, schedule.OnePort, Auto)
		if err != nil {
			t.Fatal(err)
		}
		if err := rp.Reset(send); err != nil {
			t.Fatal(err)
		}
		var tail []int
		for step := 0; step < 12; step++ {
			// Random walk: push an open position, or pop.
			var open []int
			for pos := 0; pos < n; pos++ {
				if rp.Open(pos) {
					open = append(open, pos)
				}
			}
			if len(open) > 0 && (len(tail) == 0 || rng.Intn(3) > 0) {
				pos := open[rng.Intn(len(open))]
				rp.Push(pos)
				tail = append(tail, pos)
			} else if len(tail) > 0 {
				rp.Pop()
				tail = tail[:len(tail)-1]
			}
			got, exact, ok := rp.Bound()
			if !ok {
				continue
			}
			want, err := oneShot.ReturnPrefixBound(p, send, schedule.OnePort, tail)
			if err != nil {
				t.Fatal(err)
			}
			if exact {
				if !agreeEq(got, want) {
					t.Fatalf("trial %d tail %v: certified incremental bound %.12g != relaxation optimum %.12g", trial, tail, got, want)
				}
			} else if got < want*(1-1e-9) {
				t.Fatalf("trial %d tail %v: incremental bound %.12g undershoots the relaxation optimum %.12g", trial, tail, got, want)
			}
		}
	}
}

// TestReturnPrefixUpdateMatchesRefactor pins the Sherman–Morrison bound
// path to the from-scratch one: two ReturnPrefix instances walk the SAME
// random Push/Pop trajectory — one on the maintained-inverse path, one
// with SetIncremental(false) so every Bound refactorises — and at every
// node their bounds must agree to 1e-12 relative with identical exact/ok
// flags. 5000+ walk steps across platforms up to p = 8 drive the inverse
// through long update chains (well past refactorPeriod on no trial, so
// the per-call refinement alone must hold the agreement).
func TestReturnPrefixUpdateMatchesRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	sess := NewSession()
	steps := 0
	for trial := 0; steps < 5000; trial++ {
		p := randomAgreementPlatform(rng)
		n := p.P()
		send := platform.Order(rng.Perm(n))
		model := schedule.OnePort
		if trial%4 == 0 {
			model = schedule.TwoPort
		}
		inc, err := sess.NewReturnPrefix(p, model, Auto)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := sess.NewReturnPrefix(p, model, Auto)
		if err != nil {
			t.Fatal(err)
		}
		ref.SetIncremental(false)
		if err := inc.Reset(send); err != nil {
			t.Fatal(err)
		}
		if err := ref.Reset(send); err != nil {
			t.Fatal(err)
		}
		depth := 0
		for step := 0; step < 60; step++ {
			var open []int
			for pos := 0; pos < n; pos++ {
				if inc.Open(pos) {
					open = append(open, pos)
				}
			}
			if len(open) > 0 && (depth == 0 || rng.Intn(3) > 0) {
				pos := open[rng.Intn(len(open))]
				inc.Push(pos)
				ref.Push(pos)
				depth++
			} else if depth > 0 {
				inc.Pop()
				ref.Pop()
				depth--
			} else {
				continue
			}
			steps++
			gb, gx, gok := inc.Bound()
			wb, wx, wok := ref.Bound()
			if gok != wok || gx != wx {
				t.Fatalf("trial %d step %d depth %d: incremental flags (exact=%v ok=%v) != from-scratch (exact=%v ok=%v)\nσ1=%v\n%s",
					trial, step, depth, gx, gok, wx, wok, send, p)
			}
			if !gok {
				continue
			}
			if d := math.Abs(gb - wb); d > 1e-12*(1+math.Abs(wb)) {
				t.Fatalf("trial %d step %d depth %d: incremental bound %.17g vs from-scratch %.17g (diff %.3g)\nσ1=%v\n%s",
					trial, step, depth, gb, wb, d, send, p)
			}
		}
	}
}
