//go:build purego

package kern

// The purego tag forces the pure-Go reference path: no assembly is
// assembled and no alternative variant is offered.

func available() []*impl { return []*impl{refImpl} }

func pick() *impl { return refImpl }
