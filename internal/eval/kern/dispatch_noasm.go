//go:build !purego && !amd64

package kern

// Architectures without an assembly backend dispatch to the unrolled
// pure-Go variant.

func available() []*impl { return []*impl{refImpl, unrollImpl} }

func pick() *impl { return unrollImpl }
