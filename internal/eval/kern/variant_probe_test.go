package kern

import (
	"os"
	"testing"
)

// TestVariantProbe logs the dispatched variant so CI output records which
// path each matrix leg exercised, and asserts the GODEBUG override held.
func TestVariantProbe(t *testing.T) {
	t.Logf("variant=%s available=%v", Variant(), Variants())
	if godebugOffWanted() && Variant() == "avx2" {
		t.Fatal("GODEBUG=cpu.avx2=off did not demote the avx2 variant")
	}
}

func godebugOffWanted() bool {
	for _, tok := range []string{"cpu.avx2=off", "cpu.all=off"} {
		s := os.Getenv("GODEBUG")
		for s != "" {
			i := len(s)
			for j := 0; j < len(s); j++ {
				if s[j] == ',' {
					i = j
					break
				}
			}
			if s[:i] == tok {
				return true
			}
			if i == len(s) {
				break
			}
			s = s[i+1:]
		}
	}
	return false
}
