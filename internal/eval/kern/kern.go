// Package kern holds the position-major, lane-minor inner loops of
// eval.Batch: the FIFO/LIFO load chains, the FIFO dual chain, and the
// certificate scans, each over one lockstep chunk of Width lanes.
//
// Three variants exist and are required to be bitwise identical:
//
//   - "purego"   — the straight-line reference loops (always present; the
//     only variant when building with the purego tag);
//   - "unrolled" — hand-unrolled 8-lane pure-Go bodies that keep the lane
//     accumulators in locals;
//   - "avx2"     — Plan9 amd64 assembly over two YMM registers per row
//     (only on amd64 without the purego tag, when the CPU supports AVX2
//     and GODEBUG does not carry cpu.avx2=off).
//
// Identity holds because every variant performs the same IEEE-754 double
// operations in the same order: the assembly uses only VMULPD/VADDPD/
// VSUBPD (lane-wise identical to scalar MULSD/ADDSD/SUBSD) and never a
// fused multiply-add, and the Go bodies keep each product and sum in a
// separate statement so the compiler cannot contract them either. The
// conformance suite in the eval package pins all available variants
// bitwise equal on rho, loads and certificates.
//
// Dispatch is decided once at init; SetVariant overrides it (tests,
// diagnostics). All kernels assume slices hold q*Width elements laid out
// position-major (row pos*Width+lane) except the Width-sized per-lane
// prefix buffers.
package kern

import "sync/atomic"

// Width is the lane count of one lockstep chunk. Eight float64 lanes fill
// two AVX2 registers; eval.Batch's batchWidth must equal it.
const Width = 8

// impl is one complete kernel variant.
type impl struct {
	name      string
	fifoChain func(q int, p, c, d, wd, invCW, sp, sc, sd []float64)
	fifoDual  func(q int, c, dc, invWD, u, v, pu, pv []float64)
	fifoOK    func(q int, u, v, t []float64, tol float64) uint8
	lifoChain func(q int, p, w, invCWD, sp []float64)
	lifoDual  func(q int, g, invCWD, pu []float64, tol float64) uint8
}

var active atomic.Pointer[impl]

func init() {
	active.Store(pick())
}

// Variant reports the name of the kernel variant currently dispatched.
func Variant() string { return active.Load().name }

// Variants lists every variant available in this build on this CPU, the
// default dispatch choice first.
func Variants() []string {
	out := []string{pick().name}
	for _, im := range available() {
		if im.name != out[0] {
			out = append(out, im.name)
		}
	}
	return out
}

// SetVariant forces dispatch to the named variant. It reports false if the
// variant is not available in this build on this CPU. Intended for tests
// and diagnostics; safe for concurrent use with running kernels.
func SetVariant(name string) bool {
	for _, im := range available() {
		if im.name == name {
			active.Store(im)
			return true
		}
	}
	return false
}

// FIFOChain runs the FIFO load chain over all Width lanes: row 0 holds
// P=1 with prefix sums seeded from that row's c and d, and each later row
// applies the closed-form factor wd[prev]*invCW[row]. On return p holds
// the unnormalised loads and sp, sc, sd the per-lane sums of P, P·c, P·d.
func FIFOChain(q int, p, c, d, wd, invCW, sp, sc, sd []float64) {
	checkRows(q, p, c, d, wd, invCW)
	checkLanes(sp, sc, sd)
	active.Load().fifoChain(q, p, c, d, wd, invCW, sp, sc, sd)
}

// FIFODual runs the forward FIFO dual chain: u and v receive the
// (T, μ)-closure coefficients per row, pu and pv their per-lane sums.
func FIFODual(q int, c, dc, invWD, u, v, pu, pv []float64) {
	checkRows(q, c, dc, invWD, u, v)
	checkLanes(pu, pv)
	active.Load().fifoDual(q, c, dc, invWD, u, v, pu, pv)
}

// FIFOLambdaOK scans the closed dual λ = u + t·v over every row and
// returns a bitmask with bit l set iff lane l satisfied λ >= -tol at every
// position (NaN anywhere fails the lane).
func FIFOLambdaOK(q int, u, v, t []float64, tol float64) uint8 {
	checkRows(q, u, v)
	checkLanes(t)
	return active.Load().fifoOK(q, u, v, t, tol)
}

// LIFOChain runs the lower-triangular LIFO load chain; loads land in p
// already normalised, their per-lane sum (the throughput) in sp.
func LIFOChain(q int, p, w, invCWD, sp []float64) {
	checkRows(q, p, w, invCWD)
	checkLanes(sp)
	active.Load().lifoChain(q, p, w, invCWD, sp)
}

// LIFODualOK runs the backward LIFO dual chain, accumulating the suffix
// sum into pu (zeroed on entry), and returns a bitmask with bit l set iff
// lane l kept λ >= -tol at every position (NaN anywhere fails the lane).
func LIFODualOK(q int, g, invCWD, pu []float64, tol float64) uint8 {
	checkRows(q, g, invCWD)
	checkLanes(pu)
	return active.Load().lifoDual(q, g, invCWD, pu, tol)
}

func checkRows(q int, bufs ...[]float64) {
	if q < 1 {
		panic("kern: chunk must hold at least one position")
	}
	for _, b := range bufs {
		if len(b) < q*Width {
			panic("kern: row buffer shorter than q*Width")
		}
	}
}

func checkLanes(bufs ...[]float64) {
	for _, b := range bufs {
		if len(b) < Width {
			panic("kern: lane buffer shorter than Width")
		}
	}
}
