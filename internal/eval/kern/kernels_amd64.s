//go:build amd64 && !purego

#include "textflag.h"

// AVX2 bodies of the chunk kernels: two YMM registers cover one
// Width(=8)-lane row. Only VMULPD/VADDPD/VSUBPD/VXORPD are used for the
// arithmetic — each is lane-wise identical to the scalar IEEE-754 double
// operation, and no fused multiply-add ever appears — so every output bit
// matches the pure-Go reference in ref.go. Certificate scans compare with
// VCMPPD GE_OS (predicate 13): ordered, so a NaN anywhere fails the lane,
// matching the reference's !(lam >= -tol).

DATA one<>+0(SB)/8, $0x3ff0000000000000 // 1.0
GLOBL one<>(SB), RODATA, $8

DATA negzero<>+0(SB)/8, $0x8000000000000000 // -0.0 (sign mask)
GLOBL negzero<>(SB), RODATA, $8

// func fifoChainAVX2(q int, p, c, d, wd, invCW, sp, sc, sd *float64)
TEXT ·fifoChainAVX2(SB), NOSPLIT, $0-72
	MOVQ q+0(FP), CX
	MOVQ p+8(FP), DI
	MOVQ c+16(FP), SI
	MOVQ d+24(FP), DX
	MOVQ wd+32(FP), R8
	MOVQ invCW+40(FP), R9
	MOVQ sp+48(FP), R10
	MOVQ sc+56(FP), R11
	MOVQ sd+64(FP), R12

	// Row 0: P = 1, sp = 1, sc = c, sd = d.
	VBROADCASTSD one<>+0(SB), Y0
	VMOVAPD      Y0, Y1
	VMOVUPD      Y0, (DI)
	VMOVUPD      Y1, 32(DI)
	VMOVAPD      Y0, Y2
	VMOVAPD      Y1, Y3
	VMOVUPD      (SI), Y4
	VMOVUPD      32(SI), Y5
	VMOVUPD      (DX), Y6
	VMOVUPD      32(DX), Y7

	MOVQ $1, AX
	XORQ BX, BX // byte offset of the previous row

fifochain_loop:
	CMPQ AX, CX
	JGE  fifochain_done

	// pk = (P_prev * wd[prev]) * invCW[row]
	VMULPD  (R8)(BX*1), Y0, Y0
	VMULPD  32(R8)(BX*1), Y1, Y1
	VMULPD  64(R9)(BX*1), Y0, Y0
	VMULPD  96(R9)(BX*1), Y1, Y1
	VMOVUPD Y0, 64(DI)(BX*1)
	VMOVUPD Y1, 96(DI)(BX*1)

	// sp += pk; sc += pk*c[row]; sd += pk*d[row]
	VADDPD Y0, Y2, Y2
	VADDPD Y1, Y3, Y3
	VMULPD 64(SI)(BX*1), Y0, Y8
	VMULPD 96(SI)(BX*1), Y1, Y9
	VADDPD Y8, Y4, Y4
	VADDPD Y9, Y5, Y5
	VMULPD 64(DX)(BX*1), Y0, Y8
	VMULPD 96(DX)(BX*1), Y1, Y9
	VADDPD Y8, Y6, Y6
	VADDPD Y9, Y7, Y7

	ADDQ $64, BX
	INCQ AX
	JMP  fifochain_loop

fifochain_done:
	VMOVUPD Y2, (R10)
	VMOVUPD Y3, 32(R10)
	VMOVUPD Y4, (R11)
	VMOVUPD Y5, 32(R11)
	VMOVUPD Y6, (R12)
	VMOVUPD Y7, 32(R12)
	VZEROUPPER
	RET

// func fifoDualAVX2(q int, c, dc, invWD, u, v, pu, pv *float64)
TEXT ·fifoDualAVX2(SB), NOSPLIT, $0-64
	MOVQ q+0(FP), CX
	MOVQ c+8(FP), SI
	MOVQ dc+16(FP), R8
	MOVQ invWD+24(FP), R9
	MOVQ u+32(FP), DI
	MOVQ v+40(FP), DX
	MOVQ pu+48(FP), R10
	MOVQ pv+56(FP), R11

	VBROADCASTSD one<>+0(SB), Y10
	VBROADCASTSD negzero<>+0(SB), Y11
	VXORPD       Y2, Y2, Y2 // pu
	VXORPD       Y3, Y3, Y3
	VXORPD       Y4, Y4, Y4 // pv
	VXORPD       Y5, Y5, Y5

	XORQ AX, AX
	XORQ BX, BX

fifodual_loop:
	CMPQ AX, CX
	JGE  fifodual_done

	VMOVUPD (R8)(BX*1), Y12    // dc row
	VMOVUPD 32(R8)(BX*1), Y13

	// uk = (1 - dc*pu) * invWD
	VMULPD  Y2, Y12, Y0
	VMULPD  Y3, Y13, Y1
	VSUBPD  Y0, Y10, Y0
	VSUBPD  Y1, Y10, Y1
	VMULPD  (R9)(BX*1), Y0, Y0
	VMULPD  32(R9)(BX*1), Y1, Y1
	VMOVUPD Y0, (DI)(BX*1)
	VMOVUPD Y1, 32(DI)(BX*1)
	VADDPD  Y0, Y2, Y2
	VADDPD  Y1, Y3, Y3

	// vk = (-c - dc*pv) * invWD, computed as -(c + dc*pv) * invWD:
	// negation is exact and round-to-nearest is sign-symmetric, so the
	// bits match the reference's (-c) - dc*pv.
	VMULPD  Y4, Y12, Y8
	VMULPD  Y5, Y13, Y9
	VADDPD  (SI)(BX*1), Y8, Y8
	VADDPD  32(SI)(BX*1), Y9, Y9
	VXORPD  Y11, Y8, Y8
	VXORPD  Y11, Y9, Y9
	VMULPD  (R9)(BX*1), Y8, Y8
	VMULPD  32(R9)(BX*1), Y9, Y9
	VMOVUPD Y8, (DX)(BX*1)
	VMOVUPD Y9, 32(DX)(BX*1)
	VADDPD  Y8, Y4, Y4
	VADDPD  Y9, Y5, Y5

	ADDQ $64, BX
	INCQ AX
	JMP  fifodual_loop

fifodual_done:
	VMOVUPD Y2, (R10)
	VMOVUPD Y3, 32(R10)
	VMOVUPD Y4, (R11)
	VMOVUPD Y5, 32(R11)
	VZEROUPPER
	RET

// func fifoLambdaOKAVX2(q int, u, v, t *float64, negTol float64) uint8
TEXT ·fifoLambdaOKAVX2(SB), NOSPLIT, $0-41
	MOVQ         q+0(FP), CX
	MOVQ         u+8(FP), DI
	MOVQ         v+16(FP), SI
	MOVQ         t+24(FP), DX
	VBROADCASTSD negTol+32(FP), Y11

	VMOVUPD  (DX), Y12  // t lanes 0-3
	VMOVUPD  32(DX), Y13
	VPCMPEQD Y14, Y14, Y14 // ok accumulators: all ones
	VPCMPEQD Y15, Y15, Y15

	XORQ AX, AX
	XORQ BX, BX

fifolambda_loop:
	CMPQ AX, CX
	JGE  fifolambda_done

	// lam = u + t*v ; ok &= (lam >= -tol)
	VMULPD (SI)(BX*1), Y12, Y0
	VMULPD 32(SI)(BX*1), Y13, Y1
	VADDPD (DI)(BX*1), Y0, Y0
	VADDPD 32(DI)(BX*1), Y1, Y1
	VCMPPD $13, Y11, Y0, Y0
	VCMPPD $13, Y11, Y1, Y1
	VANDPD Y0, Y14, Y14
	VANDPD Y1, Y15, Y15

	ADDQ $64, BX
	INCQ AX
	JMP  fifolambda_loop

fifolambda_done:
	VMOVMSKPD Y14, AX
	VMOVMSKPD Y15, BX
	SHLQ      $4, BX
	ORQ       BX, AX
	MOVB      AX, ret+40(FP)
	VZEROUPPER
	RET

// func lifoChainAVX2(q int, p, w, invCWD, sp *float64)
TEXT ·lifoChainAVX2(SB), NOSPLIT, $0-40
	MOVQ q+0(FP), CX
	MOVQ p+8(FP), DI
	MOVQ w+16(FP), R8
	MOVQ invCWD+24(FP), R9
	MOVQ sp+32(FP), R10

	// Row 0: P = invCWD, sp = P.
	VMOVUPD (R9), Y0
	VMOVUPD 32(R9), Y1
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVAPD Y0, Y2
	VMOVAPD Y1, Y3

	MOVQ $1, AX
	XORQ BX, BX

lifochain_loop:
	CMPQ AX, CX
	JGE  lifochain_done

	// pk = (P_prev * w[prev]) * invCWD[row]
	VMULPD  (R8)(BX*1), Y0, Y0
	VMULPD  32(R8)(BX*1), Y1, Y1
	VMULPD  64(R9)(BX*1), Y0, Y0
	VMULPD  96(R9)(BX*1), Y1, Y1
	VMOVUPD Y0, 64(DI)(BX*1)
	VMOVUPD Y1, 96(DI)(BX*1)
	VADDPD  Y0, Y2, Y2
	VADDPD  Y1, Y3, Y3

	ADDQ $64, BX
	INCQ AX
	JMP  lifochain_loop

lifochain_done:
	VMOVUPD Y2, (R10)
	VMOVUPD Y3, 32(R10)
	VZEROUPPER
	RET

// func lifoDualOKAVX2(q int, gcol, invCWD, pu *float64, negTol float64) uint8
TEXT ·lifoDualOKAVX2(SB), NOSPLIT, $0-41
	MOVQ         q+0(FP), CX
	MOVQ         gcol+8(FP), R8
	MOVQ         invCWD+16(FP), R9
	MOVQ         pu+24(FP), R10
	VBROADCASTSD negTol+32(FP), Y11

	VBROADCASTSD one<>+0(SB), Y10
	VXORPD       Y2, Y2, Y2 // pu suffix sums
	VXORPD       Y3, Y3, Y3
	VPCMPEQD     Y14, Y14, Y14 // ok accumulators
	VPCMPEQD     Y15, Y15, Y15

	// Walk rows backwards from q-1.
	MOVQ CX, BX
	DECQ BX
	SHLQ $6, BX

lifodual_loop:
	CMPQ BX, $0
	JLT  lifodual_done

	// lam = (1 - g*pu) * invCWD ; pu += lam ; ok &= (lam >= -tol)
	VMULPD (R8)(BX*1), Y2, Y0
	VMULPD 32(R8)(BX*1), Y3, Y1
	VSUBPD Y0, Y10, Y0
	VSUBPD Y1, Y10, Y1
	VMULPD (R9)(BX*1), Y0, Y0
	VMULPD 32(R9)(BX*1), Y1, Y1
	VADDPD Y0, Y2, Y2
	VADDPD Y1, Y3, Y3
	VCMPPD $13, Y11, Y0, Y0
	VCMPPD $13, Y11, Y1, Y1
	VANDPD Y0, Y14, Y14
	VANDPD Y1, Y15, Y15

	SUBQ $64, BX
	JMP  lifodual_loop

lifodual_done:
	VMOVUPD   Y2, (R10)
	VMOVUPD   Y3, 32(R10)
	VMOVMSKPD Y14, AX
	VMOVMSKPD Y15, BX
	SHLQ      $4, BX
	ORQ       BX, AX
	MOVB      AX, ret+40(FP)
	VZEROUPPER
	RET
