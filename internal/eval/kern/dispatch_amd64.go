//go:build amd64 && !purego

package kern

// Assembly entry points (kernels_amd64.s). The wrappers re-expose them
// over slices so the dispatch table stays uniform; length validation
// already happened in the exported front doors.

//go:noescape
func fifoChainAVX2(q int, p, c, d, wd, invCW, sp, sc, sd *float64)

//go:noescape
func fifoDualAVX2(q int, c, dc, invWD, u, v, pu, pv *float64)

//go:noescape
func fifoLambdaOKAVX2(q int, u, v, t *float64, negTol float64) uint8

//go:noescape
func lifoChainAVX2(q int, p, w, invCWD, sp *float64)

//go:noescape
func lifoDualOKAVX2(q int, gcol, invCWD, pu *float64, negTol float64) uint8

var avx2Impl = &impl{
	name: "avx2",
	fifoChain: func(q int, p, c, d, wd, invCW, sp, sc, sd []float64) {
		fifoChainAVX2(q, &p[0], &c[0], &d[0], &wd[0], &invCW[0], &sp[0], &sc[0], &sd[0])
	},
	fifoDual: func(q int, c, dc, invWD, u, v, pu, pv []float64) {
		fifoDualAVX2(q, &c[0], &dc[0], &invWD[0], &u[0], &v[0], &pu[0], &pv[0])
	},
	fifoOK: func(q int, u, v, t []float64, tol float64) uint8 {
		return fifoLambdaOKAVX2(q, &u[0], &v[0], &t[0], -tol)
	},
	lifoChain: func(q int, p, w, invCWD, sp []float64) {
		lifoChainAVX2(q, &p[0], &w[0], &invCWD[0], &sp[0])
	},
	lifoDual: func(q int, g, invCWD, pu []float64, tol float64) uint8 {
		return lifoDualOKAVX2(q, &g[0], &invCWD[0], &pu[0], -tol)
	},
}

func available() []*impl {
	out := []*impl{refImpl, unrollImpl}
	if hasAVX2 {
		out = append(out, avx2Impl)
	}
	return out
}

func pick() *impl {
	if hasAVX2 {
		return avx2Impl
	}
	return unrollImpl
}
