//go:build amd64 && !purego

package kern

import (
	"os"
	"strings"
)

// hasAVX2 reports whether the CPU and OS support AVX2 and the user has not
// disabled it. Detection is done by hand (CPUID + XGETBV) because the repo
// carries no external dependencies; GODEBUG=cpu.avx2=off (or cpu.all=off)
// is honoured the same way the runtime's internal/cpu does.
var hasAVX2 = detectAVX2()

func detectAVX2() bool {
	if godebugOff("cpu.avx2") || godebugOff("cpu.all") {
		return false
	}
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		osxsaveBit = 1 << 27 // CPUID.1:ECX
		avxBit     = 1 << 28 // CPUID.1:ECX
		avx2Bit    = 1 << 5  // CPUID.7.0:EBX
		ymmState   = 0x6     // XCR0 XMM+YMM state enabled
	)
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&ymmState != ymmState {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&avx2Bit != 0
}

func godebugOff(flag string) bool {
	s := os.Getenv("GODEBUG")
	for s != "" {
		var tok string
		if i := strings.IndexByte(s, ','); i >= 0 {
			tok, s = s[:i], s[i+1:]
		} else {
			tok, s = s, ""
		}
		if tok == flag+"=off" {
			return true
		}
	}
	return false
}

// cpuid and xgetbv0 are implemented in cpuid_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)
