package kern

import "testing"

// BenchmarkChains times one lockstep chunk's worth of every dispatched
// kernel — the FIFO load chain, the FIFO dual chain and its certificate
// scan, the LIFO chain and its dual scan — per variant at q = 16. Unlike
// eval's BenchmarkBatchChainEval, which runs whole batch evaluations and
// so dilutes the kernels with per-scenario bookkeeping, this measures
// only the loops the dispatch actually switches; the CI AVX2 gate
// (avx2 >= 1.3x purego) reads this benchmark.
func BenchmarkChains(b *testing.B) {
	const q = 16
	r := lcg(4242)
	p, c, d, wd, invCW := buf(q), buf(q), buf(q), buf(q), buf(q)
	dc, invWD, u, v := buf(q), buf(q), buf(q), buf(q)
	w, invCWD, g := buf(q), buf(q), buf(q)
	tt := buf(1)
	fillColumns(&r, q, c, d, wd, invCW, dc, invWD, w, invCWD, g)
	fillColumns(&r, 1, tt)
	sp, sc, sd, pu, pv := buf(1), buf(1), buf(1), buf(1), buf(1)
	def := Variant()
	defer SetVariant(def)
	for _, name := range Variants() {
		b.Run(name, func(b *testing.B) {
			if !SetVariant(name) {
				b.Fatalf("SetVariant(%q) refused a listed variant", name)
			}
			for i := 0; i < b.N; i++ {
				FIFOChain(q, p, c, d, wd, invCW, sp, sc, sd)
				FIFODual(q, c, dc, invWD, u, v, pu, pv)
				FIFOLambdaOK(q, u, v, tt, 1e-10)
				LIFOChain(q, p, w, invCWD, sp)
				for l := 0; l < Width; l++ {
					pu[l] = 0
				}
				LIFODualOK(q, g, invCWD, pu, 1e-10)
			}
		})
	}
}
