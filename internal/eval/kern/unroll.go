package kern

// The hand-unrolled variant: each position step is written as eight
// explicit lane statements over local accumulator arrays, with one bounds
// check per row via full-width subslices. Operation order and the
// explicit float64 roundings match ref.go exactly, so the outputs are
// bitwise identical; only the scheduling differs.

var unrollImpl = &impl{
	name:      "unrolled",
	fifoChain: unrollFIFOChain,
	fifoDual:  unrollFIFODual,
	fifoOK:    unrollFIFOLambdaOK,
	lifoChain: unrollLIFOChain,
	lifoDual:  unrollLIFODualOK,
}

func row8(s []float64, row int) *[8]float64 {
	return (*[8]float64)(s[row : row+8])
}

func unrollFIFOChain(q int, p, c, d, wd, invCW, sp, sc, sd []float64) {
	var ap, asp, asc, asd [8]float64
	c0, d0 := row8(c, 0), row8(d, 0)
	for l := 0; l < 8; l++ {
		ap[l] = 1
		asp[l], asc[l], asd[l] = 1, c0[l], d0[l]
	}
	*row8(p, 0) = ap
	for pos := 1; pos < q; pos++ {
		row := pos * Width
		wr, ir := row8(wd, row-Width), row8(invCW, row)
		cr, dr, pr := row8(c, row), row8(d, row), row8(p, row)
		for l := 0; l < 8; l++ {
			pk := ap[l] * wr[l]
			pk = float64(pk * ir[l])
			ap[l] = pk
			asp[l] += pk
			asc[l] += float64(pk * cr[l])
			asd[l] += float64(pk * dr[l])
		}
		*pr = ap
	}
	*row8(sp, 0), *row8(sc, 0), *row8(sd, 0) = asp, asc, asd
}

func unrollFIFODual(q int, c, dc, invWD, u, v, pu, pv []float64) {
	var apu, apv [8]float64
	for pos := 0; pos < q; pos++ {
		row := pos * Width
		cr, gr, ir := row8(c, row), row8(dc, row), row8(invWD, row)
		ur, vr := row8(u, row), row8(v, row)
		for l := 0; l < 8; l++ {
			tu := float64(gr[l] * apu[l])
			tu = 1 - tu
			uk := float64(tu * ir[l])
			tv := float64(gr[l] * apv[l])
			tv = -cr[l] - tv
			vk := float64(tv * ir[l])
			ur[l], vr[l] = uk, vk
			apu[l] += uk
			apv[l] += vk
		}
	}
	*row8(pu, 0), *row8(pv, 0) = apu, apv
}

func unrollFIFOLambdaOK(q int, u, v, t []float64, tol float64) uint8 {
	at := *row8(t, 0)
	neg := -tol
	ok := uint8(0xff)
	for pos := 0; pos < q; pos++ {
		row := pos * Width
		ur, vr := row8(u, row), row8(v, row)
		for l := 0; l < 8; l++ {
			lam := float64(at[l] * vr[l])
			lam = ur[l] + lam
			if !(lam >= neg) {
				ok &^= 1 << l
			}
		}
	}
	return ok
}

func unrollLIFOChain(q int, p, w, invCWD, sp []float64) {
	var ap, asp [8]float64
	i0 := row8(invCWD, 0)
	for l := 0; l < 8; l++ {
		ap[l] = i0[l]
		asp[l] = ap[l]
	}
	*row8(p, 0) = ap
	for pos := 1; pos < q; pos++ {
		row := pos * Width
		wr, ir, pr := row8(w, row-Width), row8(invCWD, row), row8(p, row)
		for l := 0; l < 8; l++ {
			pk := ap[l] * wr[l]
			pk = float64(pk * ir[l])
			ap[l] = pk
			asp[l] += pk
		}
		*pr = ap
	}
	*row8(sp, 0) = asp
}

func unrollLIFODualOK(q int, g, invCWD, pu []float64, tol float64) uint8 {
	var apu [8]float64
	neg := -tol
	ok := uint8(0xff)
	for pos := q - 1; pos >= 0; pos-- {
		row := pos * Width
		gr, ir := row8(g, row), row8(invCWD, row)
		for l := 0; l < 8; l++ {
			lam := float64(gr[l] * apu[l])
			lam = 1 - lam
			lam = float64(lam * ir[l])
			apu[l] += lam
			if !(lam >= neg) {
				ok &^= 1 << l
			}
		}
	}
	*row8(pu, 0) = apu
	return ok
}
