package kern

// The pure-Go reference kernels: the batch.go loops, run across all Width
// lanes. Every product that feeds an addition or subtraction is wrapped in
// an explicit float64 conversion — the Go spec lets the compiler contract
// mul+add into a fused multiply-add even across statements (GOAMD64=v3
// does), and only an explicit conversion forces the intermediate rounding
// that keeps these loops bitwise identical to the assembly variants.

var refImpl = &impl{
	name:      "purego",
	fifoChain: refFIFOChain,
	fifoDual:  refFIFODual,
	fifoOK:    refFIFOLambdaOK,
	lifoChain: refLIFOChain,
	lifoDual:  refLIFODualOK,
}

func refFIFOChain(q int, p, c, d, wd, invCW, sp, sc, sd []float64) {
	for l := 0; l < Width; l++ {
		p[l] = 1
		sp[l], sc[l], sd[l] = 1, c[l], d[l]
	}
	for pos := 1; pos < q; pos++ {
		row, prev := pos*Width, (pos-1)*Width
		for l := 0; l < Width; l++ {
			pk := p[prev+l] * wd[prev+l]
			pk = float64(pk * invCW[row+l])
			p[row+l] = pk
			sp[l] += pk
			sc[l] += float64(pk * c[row+l])
			sd[l] += float64(pk * d[row+l])
		}
	}
}

func refFIFODual(q int, c, dc, invWD, u, v, pu, pv []float64) {
	for l := 0; l < Width; l++ {
		pu[l], pv[l] = 0, 0
	}
	for pos := 0; pos < q; pos++ {
		row := pos * Width
		for l := 0; l < Width; l++ {
			tu := float64(dc[row+l] * pu[l])
			tu = 1 - tu
			uk := float64(tu * invWD[row+l])
			tv := float64(dc[row+l] * pv[l])
			tv = -c[row+l] - tv
			vk := float64(tv * invWD[row+l])
			u[row+l], v[row+l] = uk, vk
			pu[l] += uk
			pv[l] += vk
		}
	}
}

func refFIFOLambdaOK(q int, u, v, t []float64, tol float64) uint8 {
	ok := uint8(0xff)
	for pos := 0; pos < q; pos++ {
		row := pos * Width
		for l := 0; l < Width; l++ {
			lam := float64(t[l] * v[row+l])
			lam = u[row+l] + lam
			if !(lam >= -tol) {
				ok &^= 1 << l
			}
		}
	}
	return ok
}

func refLIFOChain(q int, p, w, invCWD, sp []float64) {
	for l := 0; l < Width; l++ {
		p[l] = invCWD[l]
		sp[l] = p[l]
	}
	for pos := 1; pos < q; pos++ {
		row, prev := pos*Width, (pos-1)*Width
		for l := 0; l < Width; l++ {
			pk := p[prev+l] * w[prev+l]
			pk = float64(pk * invCWD[row+l])
			p[row+l] = pk
			sp[l] += pk
		}
	}
}

func refLIFODualOK(q int, g, invCWD, pu []float64, tol float64) uint8 {
	for l := 0; l < Width; l++ {
		pu[l] = 0
	}
	ok := uint8(0xff)
	for pos := q - 1; pos >= 0; pos-- {
		row := pos * Width
		for l := 0; l < Width; l++ {
			lam := float64(g[row+l] * pu[l])
			lam = 1 - lam
			lam = float64(lam * invCWD[row+l])
			pu[l] += lam
			if !(lam >= -tol) {
				ok &^= 1 << l
			}
		}
	}
	return ok
}
