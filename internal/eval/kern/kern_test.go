package kern

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic generator so the golden vectors are stable
// across Go releases (unlike math/rand stream details, its output is
// pinned here by construction).
type lcg uint64

func (r *lcg) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64(uint32(*r>>33)) / float64(1<<32)
}

func (r *lcg) pos(lo, hi float64) float64 { return lo + (hi-lo)*r.next() }

// fill populates q rows of per-lane columns with strictly positive costs
// in the regimes the chains see in practice.
func fillColumns(r *lcg, q int, cols ...[]float64) {
	for _, col := range cols {
		for i := 0; i < q*Width; i++ {
			col[i] = r.pos(0.01, 1.5)
		}
	}
}

func buf(q int) []float64 { return make([]float64, q*Width) }

// forEachVariant runs fn once per available variant, restoring the default
// dispatch afterwards.
func forEachVariant(t *testing.T, fn func(t *testing.T, name string)) {
	t.Helper()
	def := Variant()
	defer SetVariant(def)
	for _, name := range Variants() {
		if !SetVariant(name) {
			t.Fatalf("SetVariant(%q) refused a listed variant", name)
		}
		fn(t, name)
	}
}

func bitsEq(t *testing.T, variant, what string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: %s[%d] = %x (%v), reference has %x (%v)",
				variant, what, i, math.Float64bits(got[i]), got[i],
				math.Float64bits(want[i]), want[i])
		}
	}
}

func TestVariantDispatch(t *testing.T) {
	vs := Variants()
	if len(vs) == 0 || vs[0] != Variant() {
		t.Fatalf("default variant %q not first in %v", Variant(), vs)
	}
	if SetVariant("no-such-variant") {
		t.Fatal("SetVariant accepted an unknown variant")
	}
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v] {
			t.Fatalf("variant %q listed twice in %v", v, vs)
		}
		seen[v] = true
	}
	if !seen["purego"] {
		t.Fatalf("reference variant missing from %v", vs)
	}
}

// TestGoldenFIFOChain anchors the reference on a hand-computed vector and
// then pins every variant to the reference bitwise on random columns.
func TestGoldenFIFOChain(t *testing.T) {
	// Hand-checked q=2 vector: uniform lanes with wd[row0]=0.6 and
	// invCW[row1]=0.5 give P1 = (1*0.6)*0.5 and the sums follow by one
	// rounded multiply-and-add each (computed here from the slice values so
	// no compile-time constant folding sneaks in).
	q := 2
	p, c, d, wd, invCW := buf(q), buf(q), buf(q), buf(q), buf(q)
	sp, sc, sd := buf(1), buf(1), buf(1)
	for l := 0; l < Width; l++ {
		c[l], d[l] = 0.4, 0.8
		wd[l], invCW[Width+l] = 0.6, 0.5
		c[Width+l], d[Width+l] = 0.2, 0.1
	}
	forEachVariant(t, func(t *testing.T, name string) {
		FIFOChain(q, p, c, d, wd, invCW, sp, sc, sd)
		for l := 0; l < Width; l++ {
			pk := p[0] * wd[l]
			pk = float64(pk * invCW[Width+l])
			expSp := 1 + pk
			expSc := c[l] + float64(pk*c[Width+l])
			expSd := d[l] + float64(pk*d[Width+l])
			if p[l] != 1 || p[Width+l] != pk {
				t.Fatalf("%s: chain rows = %v, %v; want 1, %v", name, p[l], p[Width+l], pk)
			}
			if sp[l] != expSp || sc[l] != expSc || sd[l] != expSd {
				t.Fatalf("%s: sums = %v %v %v; want %v %v %v", name, sp[l], sc[l], sd[l], expSp, expSc, expSd)
			}
		}
	})

	for _, q := range []int{1, 2, 3, 5, 9} {
		r := lcg(uint64(q) * 977)
		p, c, d, wd, invCW := buf(q), buf(q), buf(q), buf(q), buf(q)
		fillColumns(&r, q, c, d, wd, invCW)
		refP, refSp, refSc, refSd := buf(q), buf(1), buf(1), buf(1)
		refFIFOChain(q, refP, c, d, wd, invCW, refSp, refSc, refSd)
		sp, sc, sd := buf(1), buf(1), buf(1)
		forEachVariant(t, func(t *testing.T, name string) {
			FIFOChain(q, p, c, d, wd, invCW, sp, sc, sd)
			bitsEq(t, name, "P", p, refP)
			bitsEq(t, name, "sp", sp[:Width], refSp[:Width])
			bitsEq(t, name, "sc", sc[:Width], refSc[:Width])
			bitsEq(t, name, "sd", sd[:Width], refSd[:Width])
		})
	}
}

func TestGoldenFIFODual(t *testing.T) {
	for _, q := range []int{1, 2, 4, 7, 9} {
		r := lcg(uint64(q)*31 + 7)
		c, dc, invWD := buf(q), buf(q), buf(q)
		fillColumns(&r, q, c, dc, invWD)
		refU, refV, refPu, refPv := buf(q), buf(q), buf(1), buf(1)
		refFIFODual(q, c, dc, invWD, refU, refV, refPu, refPv)
		u, v, pu, pv := buf(q), buf(q), buf(1), buf(1)
		forEachVariant(t, func(t *testing.T, name string) {
			FIFODual(q, c, dc, invWD, u, v, pu, pv)
			bitsEq(t, name, "u", u, refU)
			bitsEq(t, name, "v", v, refV)
			bitsEq(t, name, "pu", pu[:Width], refPu[:Width])
			bitsEq(t, name, "pv", pv[:Width], refPv[:Width])
		})
	}
}

func TestGoldenFIFOLambdaOK(t *testing.T) {
	const tol = 1e-10
	for _, q := range []int{1, 3, 6, 9} {
		r := lcg(uint64(q) * 1009)
		u, v, tt := buf(q), buf(q), buf(1)
		fillColumns(&r, q, u, v)
		fillColumns(&r, 1, tt)
		// Mix in negatives, exact-boundary values and NaN/Inf lanes so the
		// comparison semantics (ordered, NaN fails) are pinned too.
		for i := 0; i < q*Width; i += 3 {
			u[i] = -u[i]
		}
		u[0] = -tol // boundary: passes >= -tol exactly
		v[Width-1] = math.NaN()
		if q > 1 {
			u[Width+1] = math.Inf(-1)
			v[Width+2] = math.Inf(1)
		}
		want := refFIFOLambdaOK(q, u, v, tt, tol)
		forEachVariant(t, func(t *testing.T, name string) {
			if got := FIFOLambdaOK(q, u, v, tt, tol); got != want {
				t.Fatalf("%s: mask %08b, reference %08b", name, got, want)
			}
		})
	}
}

func TestGoldenLIFOChain(t *testing.T) {
	for _, q := range []int{1, 2, 5, 8, 9} {
		r := lcg(uint64(q)*577 + 3)
		p, w, invCWD := buf(q), buf(q), buf(q)
		fillColumns(&r, q, w, invCWD)
		refP, refSp := buf(q), buf(1)
		refLIFOChain(q, refP, w, invCWD, refSp)
		sp := buf(1)
		forEachVariant(t, func(t *testing.T, name string) {
			LIFOChain(q, p, w, invCWD, sp)
			bitsEq(t, name, "P", p, refP)
			bitsEq(t, name, "sp", sp[:Width], refSp[:Width])
		})
	}
}

func TestGoldenLIFODualOK(t *testing.T) {
	const tol = 1e-10
	for _, q := range []int{1, 2, 4, 9} {
		r := lcg(uint64(q)*13 + 29)
		g, invCWD := buf(q), buf(q)
		fillColumns(&r, q, g, invCWD)
		// Large g values drive some λ negative; poison one lane with NaN.
		for i := Width; i < q*Width; i += 5 {
			g[i] *= 40
		}
		g[(q-1)*Width+3] = math.NaN()
		refPu := buf(1)
		want := refLIFODualOK(q, g, invCWD, refPu, tol)
		pu := buf(1)
		forEachVariant(t, func(t *testing.T, name string) {
			got := LIFODualOK(q, g, invCWD, pu, tol)
			if got != want {
				t.Fatalf("%s: mask %08b, reference %08b", name, got, want)
			}
			bitsEq(t, name, "pu", pu[:Width], refPu[:Width])
		})
	}
}

// TestGoldenExtremes pushes denormal and overflow magnitudes through the
// chains: products that underflow to subnormals or overflow to +Inf must
// round identically in every variant.
func TestGoldenExtremes(t *testing.T) {
	q := 6
	p, c, d, wd, invCW := buf(q), buf(q), buf(q), buf(q), buf(q)
	r := lcg(99)
	fillColumns(&r, q, c, d, wd, invCW)
	for l := 0; l < Width; l++ {
		for pos := 0; pos < q; pos++ {
			switch l % 4 {
			case 0: // drive P toward underflow
				wd[pos*Width+l] = 1e-80
			case 1: // drive P toward overflow
				invCW[pos*Width+l] = 1e80
			case 2: // exact powers of two keep products exact
				wd[pos*Width+l], invCW[pos*Width+l] = 0.5, 2
			}
		}
	}
	refP, refSp, refSc, refSd := buf(q), buf(1), buf(1), buf(1)
	refFIFOChain(q, refP, c, d, wd, invCW, refSp, refSc, refSd)
	sp, sc, sd := buf(1), buf(1), buf(1)
	forEachVariant(t, func(t *testing.T, name string) {
		FIFOChain(q, p, c, d, wd, invCW, sp, sc, sd)
		bitsEq(t, name, "P", p, refP)
		bitsEq(t, name, "sp", sp[:Width], refSp[:Width])
		bitsEq(t, name, "sc", sc[:Width], refSc[:Width])
		bitsEq(t, name, "sd", sd[:Width], refSd[:Width])
	})
}
