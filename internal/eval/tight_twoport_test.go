package eval

import (
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/schedule"
)

// The two-port rescue regression suite. Under the two-port model the port
// rows are dominated by worker rows (see slackSpec in tight.go), so the
// one-port port-tight vertex machinery never applies; instead, general
// (σ1, σ2) pair optima fail the single greedy descent in two ways — load
// hints that misname the drop where the dual hints name it, and degenerate
// vertices balancing a slack enrolled row against a tight dropped-worker
// row. Before the rescue passes both shapes fell through to the simplex.

// twoPortPairTrials evaluates a fixed family of random two-port scenarios
// (fast workers, heterogeneous links — the regime where resource selection
// drops several workers and the descent has the most room to guess wrong)
// under Auto with the rescue passes toggled, checks every throughput
// against the simplex, and returns the diagnostic counters.
func twoPortPairTrials(t *testing.T, disable bool) (fallbacks, dualCerts, droppedCerts uint64) {
	t.Helper()
	disableTwoPortRescue = disable
	defer func() { disableTwoPortRescue = false }()
	sess := NewSession()
	ref := NewSession()
	for _, seed := range []int64{1, 2, 3, 5, 7, 11, 13} {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 60; trial++ {
			n := 5 + rng.Intn(3)
			ws := make([]platform.Worker, n)
			for i := range ws {
				ws[i] = platform.Worker{
					C: 0.05 + 0.30*rng.Float64(),
					D: 0.05 + 0.30*rng.Float64(),
					W: 0.01 + 0.05*rng.Float64(),
				}
			}
			p := platform.New(ws...)
			send := platform.Order(rng.Perm(n))
			var ret platform.Order
			switch trial % 3 {
			case 0:
				ret = send
			case 1:
				ret = send.Reverse()
			default:
				ret = platform.Order(rng.Perm(n))
			}
			sc := Scenario{Platform: p, Send: send, Return: ret, Model: schedule.TwoPort}
			rho, err := sess.Throughput(sc, Auto)
			if err != nil {
				t.Fatalf("seed %d trial %d: auto: %v", seed, trial, err)
			}
			want, err := ref.Throughput(sc, Simplex)
			if err != nil {
				t.Fatalf("seed %d trial %d: simplex: %v", seed, trial, err)
			}
			if !agreeEq(rho, want) {
				t.Fatalf("seed %d trial %d: auto %.12g != simplex %.12g (rescue disabled=%v)",
					seed, trial, rho, want, disable)
			}
		}
	}
	return sess.simplexFallbacks, sess.twoPortDualCerts, sess.twoPortDroppedCerts
}

// TestTwoPortRescueCutsSimplexFallbacks is the regression test of the
// two-port rescue passes: on the pair-heavy scenario family the dual-first
// re-descent plus the dropped-row vertex enumeration must cut the simplex
// fallbacks at least in half (in practice near zero), with every
// throughput in agreement with the simplex either way, and both rescue
// mechanisms must fire — a dead mechanism means the family no longer
// exercises it and the test needs a new seed set.
func TestTwoPortRescueCutsSimplexFallbacks(t *testing.T) {
	slow, _, _ := twoPortPairTrials(t, true)
	fast, dualCerts, droppedCerts := twoPortPairTrials(t, false)
	if slow == 0 {
		t.Fatal("the scenario family no longer defeats the plain descent; pick new seeds")
	}
	if dualCerts == 0 {
		t.Fatal("the dual-first re-descent certified nothing; the rescue pass is dead code on its regression family")
	}
	if droppedCerts == 0 {
		t.Fatal("the dropped-row enumeration certified nothing; the rescue pass is dead code on its regression family")
	}
	if 2*fast > slow {
		t.Fatalf("rescue passes cut simplex fallbacks %d -> %d: less than the required 50%%", slow, fast)
	}
	t.Logf("simplex fallbacks %d -> %d over 420 two-port scenarios (%d dual-first certs, %d dropped-row certs)",
		slow, fast, dualCerts, droppedCerts)
}

// TestTwoPortRescueAgreesOnLoads pins the load vectors, not just the
// throughput: the rescue certificates are full KKT optima, so Auto and the
// simplex must return the same canonicalised loads on the shapes the
// rescues handle.
func TestTwoPortRescueAgreesOnLoads(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 80; trial++ {
		n := 5 + rng.Intn(3)
		ws := make([]platform.Worker, n)
		for i := range ws {
			ws[i] = platform.Worker{
				C: 0.05 + 0.30*rng.Float64(),
				D: 0.05 + 0.30*rng.Float64(),
				W: 0.01 + 0.05*rng.Float64(),
			}
		}
		p := platform.New(ws...)
		send := platform.Order(rng.Perm(n))
		ret := platform.Order(rng.Perm(n))
		sc := Scenario{Platform: p, Send: send, Return: ret, Model: schedule.TwoPort}
		auto, err := Evaluate(sc, Auto)
		if err != nil {
			t.Fatalf("trial %d: auto: %v", trial, err)
		}
		simplex, err := Evaluate(sc, Simplex)
		if err != nil {
			t.Fatalf("trial %d: simplex: %v", trial, err)
		}
		for i := range auto.Alpha {
			if !agreeEq(auto.Alpha[i], simplex.Alpha[i]) {
				t.Errorf("trial %d: load of worker %d: auto %.12g != simplex %.12g\nσ1=%v σ2=%v\n%s",
					trial, i, auto.Alpha[i], simplex.Alpha[i], send, ret, p)
			}
		}
	}
}
