package eval

import (
	"math"

	"repro/internal/platform"
	"repro/internal/schedule"
)

// This file is the sweep's port-vertex fast path. When an adjacent
// transposition swaps two enrolled workers of a cached port-tight optimum,
// resolveCachedShape re-tries only the same slack worker; on port-bound
// platforms the slack row routinely shifts to a neighbouring rank instead,
// and the sweep used to pay a full active-set descent to rediscover an
// optimum whose enrolled set had not changed at all. portVertexScan closes
// that gap: it re-examines every port-tight vertex of the cached enrolled
// subsequence, using the same prefix factorisation as the load chains to
// screen each candidate slack row in O(1) before paying the exact O(m)
// solve, so a slack-row shift costs O(m + hits·m) instead of a descent.
//
// The screen re-derives fifoPortVertex's closure in factored form. Writing
// P_r for the subsequence's all-tight chain (P_0 = 1,
// P_r = P_{r−1}·(w+d)_{r−1}/(c+w)_r), the vertex's load directions are
// scalar multiples of P on each side of the slack row k:
//
//	X_r = P_r (r < k),  X_r = ρ·P_r (r > k),  ρ = (c+w)_k/(w+d)_k
//	Y_r = η·P_r (r > k),                      η = (d−c)_k/((w+d)_k·P_k)
//
// so the 2×2 closure coefficients — and with them the candidate's t, s,
// its load signs and its slack-row inequality — collapse onto three prefix
// sums Σ P·c, Σ P·d, Σ P·(c+d) shared by every k. A row that fails the
// screen cannot pass fifoPortVertex's primal checks (the screen computes
// the same quantities, up to rounding); a row that passes is re-solved and
// re-certified exactly, so the fast path inherits the descent's soundness:
// wide screen margins mean a false positive only costs one O(m) exact
// solve and a false negative only costs the descent fallback.
type SweepStats struct {
	// PortScans counts portVertexScan invocations (cached-shape re-solves
	// that failed and would previously have descended immediately).
	PortScans uint64
	// PortHits counts scans that re-certified an optimum on the cached
	// enrolled set, saving a full active-set descent.
	PortHits uint64
	// PortScreened counts candidate slack rows eliminated by the O(1)
	// screen without an exact solve.
	PortScreened uint64
	// Fallbacks counts full chain-search descents — the expensive path the
	// fast paths exist to avoid.
	Fallbacks uint64
}

// Stats returns the sweep's resolution-path counters.
func (sw *Sweep) Stats() SweepStats { return sw.stats }

// disablePortFastPath switches off the port-vertex fast path. Test hook
// only: the regression test compares descent fallbacks with and without
// the scan on the repeated-cost platform.
var disablePortFastPath bool

// portVertexScan tries to certify an optimum on the enrolled send
// positions pos, covering the shape changes a transposition most often
// causes on a port-bound platform: the slack row moved to another rank, or
// the port went slack entirely. It runs one descent level on the
// subsequence — the all-tight candidate, then every port-tight vertex
// k = m−1 down to 0 — with the O(1) screen above in place of the exact
// per-row solve. skipAllTight and skipWorker exclude candidates the caller
// has already refuted (the cached shape re-solve, a failed dropped check).
// A certified answer carries the full KKT certificate and is recorded
// exactly like a descent optimum.
func (sw *Sweep) portVertexScan(sc Scenario, pos []int, skipAllTight bool, skipWorker int) (float64, bool) {
	m := len(pos)
	if disablePortFastPath || sw.lifo || sw.model != schedule.OnePort || m < 2 {
		return 0, false
	}
	sw.stats.PortScans++
	s := sw.sess
	sub := sw.sub[:m]
	slackRank := -1
	for r, p := range pos {
		sub[r] = sw.order[p]
		if sub[r] == skipWorker {
			slackRank = r
		}
	}
	subOrder := platform.Order(sub)
	if !skipAllTight {
		// The port may have gone slack: try the all-tight candidate first,
		// mirroring the descent's per-level order.
		if alpha, ok := s.fifoTight(sw.p, subOrder); ok && portFeasible(sw.p, subOrder, alpha, sw.model) {
			if _, ok := s.fifoDualHint(sw.p, subOrder); ok &&
				s.chainDroppedOK(sc, pos, alpha, s.lam[:m], 0, false) {
				sw.recordScanOpt(pos, alpha, s.lam[:m], 0, -1)
				return sw.opt.rho, true
			}
		}
	}
	wc := s.derivedCosts(sw.p)
	// The subsequence's all-tight chain and its prefix sums Σ P·c, Σ P·d,
	// Σ P·(c+d): one O(m) pass shared by every candidate row's screen.
	P, SC, SD, SG := sw.pvP[:m], sw.pvSC[:m], sw.pvSD[:m], sw.pvSG[:m]
	for r := 0; r < m; r++ {
		w := &wc[sub[r]]
		pk := 1.0
		if r > 0 {
			pk = P[r-1] * wc[sub[r-1]].wd * w.invCW
		}
		if math.IsNaN(pk) || math.IsInf(pk, 0) || pk <= 0 {
			// Degenerate chain: the factorisation (and the screen's P > 0
			// sign argument) breaks down; let the descent sort it out.
			return 0, false
		}
		P[r] = pk
		if r == 0 {
			SC[0], SD[0], SG[0] = pk*w.c, pk*w.d, pk*w.g
		} else {
			SC[r] = SC[r-1] + pk*w.c
			SD[r] = SD[r-1] + pk*w.d
			SG[r] = SG[r-1] + pk*w.g
		}
	}
	const eps = 1e-6
	SDtot, SGtot := SD[m-1], SG[m-1]
	for k := m - 1; k >= 0; k-- {
		if k == slackRank {
			continue // the caller already refuted this exact vertex
		}
		w := &wc[sub[k]]
		var t, sv, tail, slackLHS float64
		if k == 0 {
			// The tight chain restarts at row 1 (X_r = P_r/P_1, Y = e_0) and
			// row 1 closes with the port row.
			inv := 1 / P[1]
			a11 := wc[sub[1]].cw + (SDtot-SD[0])*inv
			a12 := w.c
			a21 := (SGtot - SG[0]) * inv
			a22 := w.g
			det := a11*a22 - a12*a21
			if det < 1e-300 && det > -1e-300 {
				continue
			}
			t = (a22 - a12) / det
			sv = (a11 - a21) / det
			tail = t // every non-slack load is a positive multiple of t
			slackLHS = sv*(w.cw+w.d) + t*(SDtot-SD[0])*inv
		} else {
			rho := w.cw * w.invWD
			eta := w.dc * w.invWD / P[k]
			SDtail := SDtot - SD[k]
			SGtail := SGtot - SG[k]
			a11 := wc[sub[0]].cw + SD[k-1] + rho*SDtail
			a12 := w.d + eta*SDtail
			a21 := SG[k-1] + rho*SGtail
			a22 := w.g + eta*SGtail
			det := a11*a22 - a12*a21
			if det < 1e-300 && det > -1e-300 {
				continue
			}
			t = (a22 - a12) / det
			sv = (a11 - a21) / det
			tail = t*rho + sv*eta // sign of the loads past the slack row
			if k == m-1 {
				tail = 0 // no rows past the slack row
			}
			slackLHS = t*SC[k-1] + sv*(w.cw+w.d) + tail*SDtail
		}
		// O(1) screen: load signs on each side of the slack row plus the
		// slack row's idle-time inequality, with margins wide enough that
		// rounding differences against the exact solve cannot screen a
		// certifiable vertex. The positive-form checks also reject NaNs.
		if !(t >= -eps) || !(sv >= -eps) || !(tail >= -eps) || !(slackLHS <= 1+eps) {
			sw.stats.PortScreened++
			continue
		}
		va, mu, ok, _, _ := s.fifoPortVertex(sw.p, subOrder, k)
		if !ok || !s.chainDroppedOK(sc, pos, va, s.lam[:m], mu, false) {
			continue
		}
		sw.recordScanOpt(pos, va, s.lam[:m], mu, subOrder[k])
		return sw.opt.rho, true
	}
	return 0, false
}

// recordScanOpt records a scan-certified optimum (possibly on a different
// enrolled set than the cached one) and clears the revalidation flags.
func (sw *Sweep) recordScanOpt(pos []int, alpha, lam []float64, mu float64, slackWorker int) {
	sw.opt.set(pos, alpha, lam, mu, slackWorker)
	for k := range sw.optIn {
		sw.optIn[k] = false
	}
	for _, p := range sw.opt.pos {
		sw.optIn[p] = true
	}
	sw.haveOpt = true
	sw.needChains, sw.needDropped = false, false
	sw.stats.PortHits++
}

// twinSubstituteScan is the repeated-cost rescue: on platforms where
// several workers share a (c, d) link pair, a transposition that demotes
// an enrolled worker's rank routinely makes the optimum evict it in favour
// of a currently dropped twin — the duplicate-cost tie the descent's
// branch-and-certify pass exists for, surfacing at sweep level. For every
// enrolled worker with a dropped exact-(c, d) twin, scan the substituted
// set (evict the worker, enroll the twin at its own send position). The
// same-set scan has already failed when this runs, and each substituted
// set costs one O(m)-plus-screens pass, against the full descent — with
// its full-enrollment retry when the subset start fails — that these
// rescues replace.
func (sw *Sweep) twinSubstituteScan(sc Scenario) (float64, bool) {
	m := len(sw.opt.pos)
	if !sw.hasTwins || m == 0 || m >= sw.q {
		return 0, false // full enrollment leaves no dropped twin to enroll
	}
	wc := sw.sess.derivedCosts(sw.p)
	for _, ePos := range sw.opt.pos {
		e := &wc[sw.order[ePos]]
		for dPos := 0; dPos < sw.q; dPos++ {
			if sw.optIn[dPos] {
				continue
			}
			d := &wc[sw.order[dPos]]
			if d.c != e.c || d.d != e.d {
				continue
			}
			pos := sw.subPos[:0]
			inserted := false
			for _, p := range sw.opt.pos {
				if p == ePos {
					continue
				}
				if !inserted && dPos < p {
					pos = append(pos, dPos)
					inserted = true
				}
				pos = append(pos, p)
			}
			if !inserted {
				pos = append(pos, dPos)
			}
			if rho, ok := sw.portVertexScan(sc, pos, false, -1); ok {
				return rho, true
			}
		}
	}
	return 0, false
}
