package eval

import (
	"math"

	"repro/internal/numeric"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// This file implements the transposition-aware incremental evaluator behind
// the exhaustive order searches. The Steinhaus–Johnson–Trotter enumeration
// used by internal/core emits successive send orders differing by exactly
// one adjacent transposition; a Sweep exploits that in two layers.
//
// Layer 1 — prefix-factorised chains. The FIFO/LIFO load and dual chains
// are kept as per-position prefix state so the swap of positions (i, i+1)
// re-derives only the chain tail instead of the whole O(p) recurrences:
//
//   - the load chain is a running product P_k = Π f_j of per-adjacent-pair
//     factors, kept with the prefix sums Σ P, Σ P·c, Σ P·d that close the
//     first-row normalisation and the port check — a swap at i only
//     changes the factors f_i, f_{i+1}, f_{i+2}, so positions < i are
//     reused verbatim and positions ≥ i rebuilt in one O(p−i) pass;
//   - the FIFO dual chain is a forward affine recurrence in the prefix
//     sums (pu, pv), factorised the same way; the final λ_k = u_k + t·v_k
//     certificate scan stays O(p) because the closure scale t couples
//     every position, but it runs branch-free on materialised columns;
//   - the LIFO dual chain runs backward (λ_k closes on the suffix sum of
//     the later multipliers), so a swap at i instead reuses the suffix
//     state of positions ≥ i+2 and rebuilds positions ≤ i+1, with a
//     running suffix minimum making its certificate check O(1).
//
// When the all-rows-tight full-enrollment candidate certifies, its value
// is exactly what the tiered Auto pipeline would return, at O(p−i)
// incremental cost.
//
// Layer 2 — active-set reuse. On port-bound or resource-selecting
// platforms the optimum is not the full-enrollment chain but a certified
// active-set vertex (an enrolled subsequence, all-tight or port-tight with
// one slack row). An adjacent transposition usually leaves that structure
// intact, and the certificate pieces it can invalidate are cheap to
// re-verify:
//
//   - both swapped positions dropped: every certificate component is
//     provably unchanged (the two zero-load workers only crossed each
//     other), so the cached optimum is returned in O(1);
//   - one dropped, one enrolled: the enrolled subsequence — and with it
//     the loads, multipliers and tight-row values — is unchanged; only the
//     crossed dropped worker's primal row and dual column moved, so the
//     O(p) dropped-worker prefix scan re-certifies the cached optimum;
//   - both enrolled: the subsequence changed, so the cached candidate
//     shape (same enrolled set, same slack worker) is re-solved by its
//     O(p) chain and re-certified in full.
//
// Only when the warm candidate fails does the sweep fall back to the full
// active-set descent (recording the new optimum's structure), and only
// when that fails — degenerate chains — does the caller pay a simplex
// solve. Every certified answer carries the complete KKT certificate, so
// the sweep is exactly as sound as the from-scratch pipeline: a certified
// value IS the scenario's LP optimum, never an approximation.
type Sweep struct {
	p     *platform.Platform
	model schedule.Model
	lifo  bool
	q     int
	order []int // current send order: worker index by send position
	rev   []int // reversed order (the LIFO return order), kept in lockstep

	sess *Session // private scratch for chain solves and the descent

	// Worker-derived columns by send position, swapped alongside order so
	// the recurrences never chase the Workers slice.
	c, d, w              []float64
	cw, wd, g, dc, cwd   []float64
	invCW, invWD, invCWD []float64

	// Load chain: P is the (unnormalised) tight chain product, SP/SC/SD its
	// prefix sums Σ P, Σ P·c, Σ P·d.
	P, SP, SC, SD []float64

	// FIFO dual chain: λ_k = u_k + t·v_k with t closed on the prefix sums
	// pu, pv (see fifoDualHint).
	u, v, pu, pv []float64

	// LIFO dual chain: λ_k closed on the suffix sum sufLam, with minLam the
	// running suffix minimum that makes the certificate check O(1).
	lam, sufLam, minLam []float64

	// Lazy chain watermarks: the load-chain prefixes are valid for
	// positions < chainValid, the FIFO dual prefixes for positions
	// < fifoDualValid, the LIFO dual suffixes for positions
	// ≥ lifoDualValid. Delta only shrinks validity; the certificate code
	// re-derives the missing ranges on demand, so on platforms whose warm
	// active-set path answers every permutation the full-enrollment chains
	// are never maintained at all.
	chainValid    int
	fifoDualValid int
	lifoDualValid int

	// Cached optimum structure (layer 2). needDropped/needChains classify
	// what the transpositions since the last certificate invalidated.
	haveOpt     bool
	needDropped bool
	needChains  bool
	opt         chainOptRecord
	optIn       []bool // by send position: enrolled in the cached optimum
	sub         []int  // scratch: enrolled subsequence as worker indices

	// Port-vertex fast-path scratch (FIFO only): the candidate
	// subsequence's all-tight chain and its prefix sums (see sweepport.go),
	// a position buffer for substituted sets, and whether any two workers
	// share an exact (c, d) pair (gates the twin-substitution rescue).
	pvP, pvSC, pvSD, pvSG []float64
	subPos                []int
	hasTwins              bool

	stats SweepStats // resolution-path counters
}

// NewSweep starts an incremental sweep over send orders of the given
// scenario shape: FIFO (σ2 = σ1) when lifo is false, LIFO (σ2 = reverse
// σ1) when true. The initial send order is copied; advance the sweep with
// Delta as the enumeration applies adjacent transpositions.
func NewSweep(p *platform.Platform, send platform.Order, model schedule.Model, lifo bool) (*Sweep, error) {
	if err := validate(Scenario{Platform: p, Send: send, Return: send, Model: model}); err != nil {
		return nil, err
	}
	q := len(send)
	sw := &Sweep{
		p: p, model: model, lifo: lifo, q: q,
		sess:  NewSession(),
		order: append([]int(nil), send...),
		c:     make([]float64, q), d: make([]float64, q), w: make([]float64, q),
		cw: make([]float64, q), wd: make([]float64, q), g: make([]float64, q),
		dc: make([]float64, q), cwd: make([]float64, q),
		invCW: make([]float64, q), invWD: make([]float64, q), invCWD: make([]float64, q),
		P: make([]float64, q), SP: make([]float64, q), SC: make([]float64, q), SD: make([]float64, q),
		optIn: make([]bool, q),
		sub:   make([]int, q),
	}
	sw.rev = make([]int, q)
	for k, v := range sw.order {
		sw.rev[q-1-k] = v
	}
	if lifo {
		sw.lam = make([]float64, q)
		sw.sufLam = make([]float64, q)
		sw.minLam = make([]float64, q)
	} else {
		sw.u = make([]float64, q)
		sw.v = make([]float64, q)
		sw.pu = make([]float64, q)
		sw.pv = make([]float64, q)
		sw.pvP = make([]float64, q)
		sw.pvSC = make([]float64, q)
		sw.pvSD = make([]float64, q)
		sw.pvSG = make([]float64, q)
		sw.subPos = make([]int, 0, q)
	outer:
		for i := 0; i < q; i++ {
			for j := i + 1; j < q; j++ {
				wi, wj := p.Workers[sw.order[i]], p.Workers[sw.order[j]]
				if wi.C == wj.C && wi.D == wj.D {
					sw.hasTwins = true
					break outer
				}
			}
		}
	}
	for k := 0; k < q; k++ {
		sw.gather(k)
	}
	sw.chainValid = 0
	sw.fifoDualValid = 0
	sw.lifoDualValid = q
	return sw, nil
}

// gather refreshes the worker-derived columns of position k.
func (sw *Sweep) gather(k int) {
	wc := deriveCosts(sw.p.Workers[sw.order[k]])
	sw.c[k], sw.d[k], sw.w[k] = wc.c, wc.d, wc.w
	sw.cw[k], sw.wd[k], sw.g[k], sw.dc[k] = wc.cw, wc.wd, wc.g, wc.dc
	sw.cwd[k] = wc.c + wc.w + wc.d
	sw.invCW[k], sw.invWD[k], sw.invCWD[k] = wc.invCW, wc.invWD, wc.invCWD
}

// Order returns the sweep's current send order. The slice is live — it
// mutates on every Delta — and must not be modified by the caller.
func (sw *Sweep) Order() platform.Order { return sw.order }

// Delta applies the adjacent transposition of send positions (i, i+1) and
// re-derives the invalidated chain state: positions ≥ i of the load (and
// FIFO dual) prefixes, positions ≤ i+1 of the LIFO dual suffixes. The
// cached optimum structure is reclassified rather than recomputed — the
// work it still needs happens in the next Throughput call.
func (sw *Sweep) Delta(i int) {
	sw.order[i], sw.order[i+1] = sw.order[i+1], sw.order[i]
	j := sw.q - 2 - i
	sw.rev[j], sw.rev[j+1] = sw.rev[j+1], sw.rev[j]
	sw.swapCols(i, i+1)
	if i < sw.chainValid {
		sw.chainValid = i
	}
	if sw.lifo {
		if v := i + 2; v > sw.lifoDualValid {
			sw.lifoDualValid = v
		}
	} else if i < sw.fifoDualValid {
		sw.fifoDualValid = i
	}
	if !sw.haveOpt {
		return
	}
	ei, ej := sw.optIn[i], sw.optIn[i+1]
	switch {
	case !ei && !ej:
		// Two dropped workers crossed: the cached certificate is intact.
	case ei && ej:
		// Two enrolled workers swapped ranks: re-solve the candidate shape.
		// Their cached loads and multipliers swap ranks with them (the dual
		// screen reuses the multipliers worker-attached).
		for r := 0; r+1 < len(sw.opt.pos); r++ {
			if sw.opt.pos[r] == i {
				if len(sw.opt.alpha) > r+1 {
					sw.opt.alpha[r], sw.opt.alpha[r+1] = sw.opt.alpha[r+1], sw.opt.alpha[r]
					sw.opt.lam[r], sw.opt.lam[r+1] = sw.opt.lam[r+1], sw.opt.lam[r]
				}
				break
			}
		}
		sw.needChains = true
	default:
		// An enrolled worker crossed a dropped one: the subsequence (and
		// with it loads, multipliers, tight rows) is unchanged, but the
		// crossed worker's dropped checks moved.
		sw.optIn[i], sw.optIn[i+1] = ej, ei
		// The enrolled position list swaps i ↔ i+1 (sortedness is
		// preserved: the replaced neighbour was not enrolled).
		for r, pos := range sw.opt.pos {
			if pos == i {
				sw.opt.pos[r] = i + 1
				break
			}
			if pos == i+1 {
				sw.opt.pos[r] = i
				break
			}
		}
		sw.needDropped = true
	}
}

func (sw *Sweep) swapCols(a, b int) {
	for _, col := range [...][]float64{sw.c, sw.d, sw.w, sw.cw, sw.wd, sw.g, sw.dc, sw.cwd, sw.invCW, sw.invWD, sw.invCWD} {
		col[a], col[b] = col[b], col[a]
	}
}

// ensureChain extends the load chain and its prefix sums to the full
// order.
func (sw *Sweep) ensureChain() {
	q := sw.q
	for k := sw.chainValid; k < q; k++ {
		var pk float64
		switch {
		case k == 0 && sw.lifo:
			pk = sw.invCWD[0]
		case k == 0:
			pk = 1
		case sw.lifo:
			pk = sw.P[k-1] * sw.w[k-1] * sw.invCWD[k]
		default:
			pk = sw.P[k-1] * sw.wd[k-1] * sw.invCW[k]
		}
		sw.P[k] = pk
		if k == 0 {
			sw.SP[0], sw.SC[0], sw.SD[0] = pk, pk*sw.c[0], pk*sw.d[0]
		} else {
			sw.SP[k] = sw.SP[k-1] + pk
			sw.SC[k] = sw.SC[k-1] + pk*sw.c[k]
			sw.SD[k] = sw.SD[k-1] + pk*sw.d[k]
		}
	}
	sw.chainValid = q
}

// ensureFIFODual extends the forward FIFO dual prefixes to the full order
// (the λ scan itself happens in fullTight, where the closure scale t is
// known).
func (sw *Sweep) ensureFIFODual() {
	q := sw.q
	for k := sw.fifoDualValid; k < q; k++ {
		var ppu, ppv float64
		if k > 0 {
			ppu, ppv = sw.pu[k-1], sw.pv[k-1]
		}
		uk := (1 - sw.dc[k]*ppu) * sw.invWD[k]
		vk := (-sw.c[k] - sw.dc[k]*ppv) * sw.invWD[k]
		sw.u[k], sw.v[k] = uk, vk
		sw.pu[k], sw.pv[k] = ppu+uk, ppv+vk
	}
	sw.fifoDualValid = q
}

// ensureLIFODual extends the backward LIFO dual suffixes down to 0:
// λ_k = (1 − g_k·Σ_{j>k} λ_j)/(c_k+w_k+d_k), with the running suffix
// minimum for the O(1) certificate check.
func (sw *Sweep) ensureLIFODual() {
	q := sw.q
	for k := sw.lifoDualValid - 1; k >= 0; k-- {
		var suf float64
		if k+1 < q {
			suf = sw.sufLam[k+1]
		}
		l := (1 - sw.g[k]*suf) * sw.invCWD[k]
		sw.lam[k] = l
		sw.sufLam[k] = suf + l
		if k+1 < q && sw.minLam[k+1] < l {
			l = sw.minLam[k+1]
		}
		sw.minLam[k] = l
	}
	sw.lifoDualValid = 0
}

// scenario materialises the sweep's current scenario (shares the live
// order slices).
func (sw *Sweep) scenario() Scenario {
	ret := sw.order
	if sw.lifo {
		ret = sw.rev
	}
	return Scenario{Platform: sw.p, Send: sw.order, Return: ret, Model: sw.model}
}

// Throughput returns the optimal throughput of the current send order
// (identical to what the tiered Auto pipeline computes), or ok == false in
// the rare degenerate cases where no chain candidate certifies and the
// caller must fall back to the simplex. It tries, in order: the cached
// active-set optimum (re-verified to the extent the transpositions since
// the last call invalidated it), the incrementally maintained
// full-enrollment chain certificate, and the full active-set descent.
func (sw *Sweep) Throughput() (float64, bool) {
	return sw.throughput(-1)
}

// ThroughputBound is Throughput for search loops carrying an incumbent: it
// may return early — with a value that is a certified upper bound on the
// current order's optimum, at most the incumbent — when the cached dual
// multipliers prove the order cannot beat the incumbent. The early-out
// costs one division-free O(p) pass instead of a candidate re-solve, and
// is what lets a sweep skim past the bulk of a port-bound platform's
// permutations. Callers that track a running maximum can use the returned
// value exactly like Throughput's (a pruned order never updates the
// maximum, since its bound is at most the incumbent).
func (sw *Sweep) ThroughputBound(incumbent float64) (float64, bool) {
	return sw.throughput(incumbent)
}

func (sw *Sweep) throughput(incumbent float64) (float64, bool) {
	if sw.haveOpt && len(sw.opt.alpha) > 0 {
		// A strict-subset optimum is cached: the warm path answers without
		// touching the full-enrollment chains (if the structure changed,
		// the descent below covers full enrollment anyway).
		if incumbent > 0 && (sw.needChains || sw.needDropped) {
			if bound, pruned := sw.dualScreen(incumbent); pruned {
				return bound, true
			}
		}
		sc := sw.scenario()
		m := len(sw.opt.pos)
		if sw.needChains {
			if rho, ok := sw.resolveCachedShape(sc, m); ok {
				return rho, true
			}
			// The candidate shape no longer certifies. On a port-bound
			// platform the slack row usually just shifted rank: rescan this
			// enrolled set's port-tight vertices (O(1)-screened per row)
			// before paying a descent. resolveCachedShape already refuted
			// the cached shape itself, so it is excluded from the scan.
			if rho, ok := sw.portVertexScan(sc, sw.opt.pos, sw.opt.slackWorker < 0, sw.opt.slackWorker); ok {
				return rho, true
			}
			// On repeated-cost platforms the set change is usually a twin
			// swap — try those sets before conceding the descent.
			if rho, ok := sw.twinSubstituteScan(sc); ok {
				return rho, true
			}
			// The optimal active set itself moved: resume the descent from
			// the cached enrolled set (falling back to full enrollment
			// inside descendFrom).
			return sw.descendFrom(sw.opt.pos)
		}
		if sw.needDropped {
			// Subsequence unchanged; only the dropped-worker checks moved.
			if sw.sess.chainDroppedOK(sc, sw.opt.pos, sw.opt.alpha, sw.opt.lam, sw.opt.mu, sw.lifo) {
				sw.needDropped = false
				return sw.opt.rho, true
			}
			// A dropped check broke. The optimum is often still a vertex of
			// the same enrolled set — the moved row/column changes which
			// slack row's duals close feasibly — or, on repeated-cost
			// platforms, the set with the crossed pair's membership swapped.
			// Scan both before the descent, which must also consider other
			// enrollment changes. The cached shape's own dropped check just
			// failed, so it is excluded from the same-set scan.
			if rho, ok := sw.portVertexScan(sc, sw.opt.pos, sw.opt.slackWorker < 0, sw.opt.slackWorker); ok {
				return rho, true
			}
			if rho, ok := sw.twinSubstituteScan(sc); ok {
				return rho, true
			}
			return sw.descend()
		}
		// Only dropped workers crossed since the last certificate: the
		// cached optimum is provably intact.
		return sw.opt.rho, true
	}
	if rho, ok := sw.fullTight(); ok {
		// Cache the structure so the next transposition is classified
		// against the full-enrollment all-tight optimum.
		sw.cacheFullEnrollment(rho)
		return rho, true
	}
	// A refuted full-enrollment all-tight candidate usually failed its
	// port check: scan the full-enrollment port-tight vertices before
	// descending (the scan's screen shares the chain factorisation).
	if sw.haveOpt && len(sw.opt.pos) == sw.q {
		if rho, ok := sw.portVertexScan(sw.scenario(), sw.opt.pos, true, -1); ok {
			return rho, true
		}
	}
	// No usable cache (or the cached full-enrollment candidate was just
	// refuted): run the full descent.
	sw.haveOpt = false
	return sw.descend()
}

// fullTight evaluates the full-enrollment all-rows-tight candidate from
// the incrementally maintained prefix state.
func (sw *Sweep) fullTight() (float64, bool) {
	q := sw.q
	tol := numeric.CertTol
	sw.ensureChain()
	if sw.lifo {
		rho := sw.SP[q-1]
		if math.IsNaN(rho) || math.IsInf(rho, 0) || rho <= 0 {
			return 0, false
		}
		// Port feasibility is automatic for LIFO (the last tight row caps
		// Σα·(c+d) below 1 under either model); only the dual certifies.
		sw.ensureLIFODual()
		if !(sw.minLam[0] >= -tol) {
			return 0, false
		}
		return rho, true
	}
	denom := sw.cw[0] + sw.SD[q-1]
	rho := sw.SP[q-1] / denom
	if !(denom > 0) || math.IsNaN(rho) || math.IsInf(rho, 0) {
		return 0, false
	}
	// Port constraint(s) at the chain loads α_k = P_k/denom.
	lim := (1 + tol) * denom
	if sw.model == schedule.TwoPort {
		if sw.SC[q-1] > lim || sw.SD[q-1] > lim {
			return 0, false
		}
	} else if sw.SC[q-1]+sw.SD[q-1] > lim {
		return 0, false
	}
	// Dual closure and certificate scan (same guards as fifoDualHint).
	sw.ensureFIFODual()
	onemv := 1 - sw.pv[q-1]
	if onemv < 1e-12 && onemv > -1e-12 {
		return 0, false
	}
	t := sw.pu[q-1] / onemv
	for k := 0; k < q; k++ {
		if !(sw.u[k]+t*sw.v[k] >= -tol) { // also catches NaN
			return 0, false
		}
	}
	return rho, true
}

// cacheFullEnrollment records the full-enrollment all-tight optimum. Its
// loads and multipliers are not copied: with every worker enrolled there
// are no dropped checks to re-verify, and any transposition within it is
// re-evaluated by the incremental certificate itself.
func (sw *Sweep) cacheFullEnrollment(rho float64) {
	sw.opt.pos = sw.opt.pos[:0]
	for k := 0; k < sw.q; k++ {
		sw.opt.pos = append(sw.opt.pos, k)
		sw.optIn[k] = true
	}
	sw.opt.alpha = sw.opt.alpha[:0]
	sw.opt.lam = sw.opt.lam[:0]
	sw.opt.mu = 0
	sw.opt.slackWorker = -1
	sw.opt.rho = rho
	sw.haveOpt = true
	sw.needDropped, sw.needChains = false, false
}

// dualScreen decides whether the current order can be skipped against an
// incumbent throughput without re-solving anything: the cached multipliers
// (λ by enrolled rank, worker-attached across transpositions; μ for the
// port row) are clamped to ≥ 0 and re-checked as a dual-feasible point of
// the CURRENT scenario LP in one division-free O(p) pass. Any dual
// feasible point's value bounds the primal optimum from above (weak
// duality), so when that bound cannot beat the incumbent the order is
// certifiably prunable — regardless of how stale the cached structure is.
// The 1e-12 relative margin mirrors the pair search's pruning margin.
func (sw *Sweep) dualScreen(incumbent float64) (bound float64, pruned bool) {
	if len(sw.opt.alpha) == 0 {
		return 0, false // full-enrollment cache carries no multipliers
	}
	tol := numeric.CertTol
	mu := sw.opt.mu
	if mu < 0 {
		mu = 0
	}
	lamTot := 0.0
	for _, l := range sw.opt.lam {
		if l > 0 {
			lamTot += l
		}
	}
	bound = (lamTot + mu) / (1 - tol)
	if bound > incumbent*(1+1e-12) {
		return 0, false
	}
	if bound > incumbent {
		// The margin admits bounds a hair above the incumbent; cap the
		// reported value so a pruned order can never be promoted to the
		// running maximum (its exact optimum was never computed).
		bound = incumbent
	}
	// Dual feasibility of the clamped point against every column of the
	// current scenario: for FIFO, column j needs
	//   c_j·Λ_{≥j} + w_j·λ_j + d_j·Λ_{≤j} + μ·g_j ≥ 1,
	// for LIFO (σ2 = reverse σ1) the c and d terms both select Λ_{≥j};
	// Λ_{≤j}/Λ_{≥j} are inclusive prefix/suffix sums of the clamped row
	// multipliers by send position (zero on dropped rows).
	ei := 0
	pre := 0.0
	m := len(sw.opt.pos)
	for pos := 0; pos < sw.q; pos++ {
		lj := 0.0
		if ei < m && sw.opt.pos[ei] == pos {
			if lj = sw.opt.lam[ei]; lj < 0 {
				lj = 0
			}
			ei++
		}
		pre += lj
		suf := lamTot - pre + lj
		var val float64
		if sw.lifo {
			val = sw.g[pos]*suf + sw.w[pos]*lj + mu*sw.g[pos]
		} else {
			val = sw.c[pos]*suf + sw.w[pos]*lj + sw.d[pos]*pre + mu*sw.g[pos]
		}
		if !(val >= 1-tol) {
			return 0, false
		}
	}
	return bound, true
}

// resolveCachedShape re-solves the cached candidate shape — same enrolled
// set, same slack worker — on the current subsequence and re-certifies it
// in full.
func (sw *Sweep) resolveCachedShape(sc Scenario, m int) (float64, bool) {
	s := sw.sess
	sub := sw.sub[:m]
	for r, pos := range sw.opt.pos {
		sub[r] = sw.order[pos]
	}
	subOrder := platform.Order(sub)
	if sw.opt.slackWorker >= 0 {
		// Port-tight vertex: same slack worker, possibly at a new rank.
		k := -1
		for r, i := range sub {
			if i == sw.opt.slackWorker {
				k = r
				break
			}
		}
		if k < 0 {
			return 0, false
		}
		va, mu, ok, _, _ := s.fifoPortVertex(sw.p, subOrder, k)
		if !ok || !s.chainDroppedOK(sc, sw.opt.pos, va, s.lam[:m], mu, sw.lifo) {
			return 0, false
		}
		sw.opt.set(sw.opt.pos, va, s.lam[:m], mu, sw.opt.slackWorker)
		sw.needChains, sw.needDropped = false, false
		return sw.opt.rho, true
	}
	var alpha []float64
	var chainOK, dualOK bool
	if sw.lifo {
		alpha, chainOK = s.lifoTight(sw.p, subOrder)
		if chainOK {
			_, dualOK = s.lifoDualHint(sw.p, subOrder)
		}
	} else {
		alpha, chainOK = s.fifoTight(sw.p, subOrder)
		if chainOK && !portFeasible(sw.p, subOrder, alpha, sw.model) {
			return 0, false
		}
		if chainOK {
			_, dualOK = s.fifoDualHint(sw.p, subOrder)
		}
	}
	if !chainOK || !dualOK || !s.chainDroppedOK(sc, sw.opt.pos, alpha, s.lam[:m], 0, sw.lifo) {
		return 0, false
	}
	sw.opt.set(sw.opt.pos, alpha, s.lam[:m], 0, -1)
	sw.needChains, sw.needDropped = false, false
	return sw.opt.rho, true
}

// descend runs the full active-set descent and records the new optimum's
// structure for subsequent warm starts.
func (sw *Sweep) descend() (float64, bool) {
	return sw.descendFrom(nil)
}

// descendFrom runs the active-set descent starting from the given enrolled
// positions (nil: full enrollment) and records the optimum it certifies.
func (sw *Sweep) descendFrom(initE []int) (float64, bool) {
	sw.stats.Fallbacks++
	sc := sw.scenario()
	_, ok := sw.sess.chainSearch(sc, sw.lifo, &sw.opt, initE)
	if !ok && initE != nil {
		// Nothing below the cached set certified; the optimum may have
		// re-enrolled a worker — retry from full enrollment.
		_, ok = sw.sess.chainSearch(sc, sw.lifo, &sw.opt, nil)
	}
	if !ok {
		sw.haveOpt = false
		return 0, false
	}
	for k := range sw.optIn {
		sw.optIn[k] = false
	}
	for _, pos := range sw.opt.pos {
		sw.optIn[pos] = true
	}
	sw.haveOpt = true
	sw.needDropped, sw.needChains = false, false
	return sw.opt.rho, true
}
