package eval

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/schedule"
)

func testStar() *platform.Platform {
	return platform.New(
		platform.Worker{C: 0.05, W: 0.3, D: 0.025},
		platform.Worker{C: 0.08, W: 0.2, D: 0.04},
		platform.Worker{C: 0.10, W: 0.5, D: 0.05},
	)
}

func TestModeParseAndString(t *testing.T) {
	for _, m := range []Mode{Auto, ClosedForm, Direct, Simplex, ExactRational} {
		if !m.Valid() {
			t.Errorf("%v must be valid", m)
		}
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = (%v, %v), want %v", m.String(), got, err, m)
		}
	}
	if Mode(42).Valid() {
		t.Error("Mode(42) must be invalid")
	}
	if Mode(42).String() == "" {
		t.Error("unknown mode must still render")
	}
	if _, err := ParseMode("nope"); err == nil {
		t.Error("ParseMode must reject unknown names")
	}
	if !strings.Contains(ModeNames(), "closed-form") {
		t.Errorf("ModeNames() = %q", ModeNames())
	}
}

func TestEvaluatorInterface(t *testing.T) {
	p := testStar()
	order := p.ByC()
	sc := Scenario{Platform: p, Send: order, Return: order, Model: schedule.OnePort}
	var ref float64
	for _, mode := range []Mode{Auto, ClosedForm, Direct, Simplex, ExactRational} {
		ev, err := New(mode)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Name() != mode.String() {
			t.Errorf("Name() = %q, want %q", ev.Name(), mode.String())
		}
		s, err := ev.Evaluate(sc)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if ref == 0 {
			ref = s.Throughput()
		} else if !agreeEq(s.Throughput(), ref) {
			t.Errorf("%v: throughput %g != %g", mode, s.Throughput(), ref)
		}
		if err := s.Check(p, schedule.OnePort); err != nil {
			t.Errorf("%v: schedule fails verification: %v", mode, err)
		}
	}
	if _, err := New(Mode(42)); err == nil {
		t.Error("New must reject unknown modes")
	}
}

func TestScenarioValidation(t *testing.T) {
	p := testStar()
	id := platform.Identity(3)
	cases := []Scenario{
		{Platform: nil, Send: id, Return: id},
		{Platform: p, Send: platform.Order{}, Return: platform.Order{}},
		{Platform: p, Send: platform.Order{0, 0, 1}, Return: id},
		{Platform: p, Send: id, Return: platform.Order{0, 0, 1}},
		{Platform: p, Send: platform.Order{0, 1, 7}, Return: id},
		{Platform: p, Send: platform.Order{0, 1}, Return: id},
		{Platform: p, Send: platform.Order{0, 1}, Return: platform.Order{0, 2}},
		{Platform: p, Send: id, Return: id, Model: schedule.Model(9)},
	}
	for i, sc := range cases {
		if _, err := Evaluate(sc, Auto); err == nil {
			t.Errorf("case %d: invalid scenario accepted", i)
		}
	}
	if _, err := Evaluate(Scenario{Platform: p, Send: id, Return: id}, Mode(42)); err == nil {
		t.Error("unknown mode must be rejected")
	}
}

func TestClosedFormStrictErrors(t *testing.T) {
	p := testStar()
	send := platform.Identity(3)
	general := platform.Order{1, 0, 2} // neither σ1 nor its reverse
	if _, err := Evaluate(Scenario{Platform: p, Send: send, Return: general, Model: schedule.OnePort}, ClosedForm); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("general pair: want ErrNotApplicable, got %v", err)
	}
	// A port-bound non-bus FIFO optimum has no closed form.
	hard := platform.New(
		platform.Worker{C: 0.3, W: 1e-6, D: 0.15},
		platform.Worker{C: 0.4, W: 1e-6, D: 0.2},
	)
	if _, err := Evaluate(Scenario{Platform: hard, Send: platform.Identity(2), Return: platform.Identity(2), Model: schedule.OnePort}, ClosedForm); !errors.Is(err, ErrNotTight) {
		t.Errorf("port-bound star: want ErrNotTight, got %v", err)
	}
}

func TestClosedFormBusPortBound(t *testing.T) {
	// On a bus the closed form covers the port-bound regime via Theorem 2:
	// with negligible compute ρ = 1/(c+d).
	p := platform.NewBus(0.3, 0.15, 1e-9, 1e-9, 1e-9)
	order := platform.Identity(3)
	s, err := Evaluate(Scenario{Platform: p, Send: order, Return: order, Model: schedule.OnePort}, ClosedForm)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 / 0.45; !agreeEq(s.Throughput(), want) {
		t.Errorf("throughput %g, want %g", s.Throughput(), want)
	}
}

func TestLUSolveAndTranspose(t *testing.T) {
	// The LU primal and transpose solves against straightforward
	// evaluation on random well-conditioned systems.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(7)
		a := make([]float64, n*n)
		orig := make([]float64, n*n)
		for i := range a {
			a[i] = rng.Float64() + 0.1
		}
		for i := 0; i < n; i++ {
			a[i*n+i] += float64(n) // diagonally dominant
		}
		copy(orig, a)
		piv := make([]int, n)
		if !luFactor(a, piv, n) {
			t.Fatalf("trial %d: unexpected singular", trial)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = 1
		}
		luSolve(a, piv, n, x)
		for i := 0; i < n; i++ {
			dot := 0.0
			for j := 0; j < n; j++ {
				dot += orig[i*n+j] * x[j]
			}
			if math.Abs(dot-1) > 1e-9 {
				t.Fatalf("trial %d: A·x row %d = %g, want 1", trial, i, dot)
			}
		}
		y := make([]float64, n)
		for i := range y {
			y[i] = 1
		}
		luSolveTranspose(a, piv, n, y)
		for j := 0; j < n; j++ {
			dot := 0.0
			for i := 0; i < n; i++ {
				dot += orig[i*n+j] * y[i]
			}
			if math.Abs(dot-1) > 1e-9 {
				t.Fatalf("trial %d: Aᵀ·y col %d = %g, want 1", trial, j, dot)
			}
		}
	}
	// Singular matrices must be refused.
	sing := []float64{1, 2, 2, 4}
	if luFactor(sing, make([]int, 2), 2) {
		t.Error("singular matrix not detected")
	}
}

func TestSessionPoolReuse(t *testing.T) {
	p := testStar()
	order := p.ByC()
	sc := Scenario{Platform: p, Send: order, Return: order, Model: schedule.OnePort}
	s := GetSession()
	r1, err := s.Evaluate(sc, Auto)
	if err != nil {
		t.Fatal(err)
	}
	// Reuse across differently-sized scenarios must not leak state.
	small := platform.New(platform.Worker{C: 0.2, W: 0.5, D: 0.1})
	if _, err := s.Evaluate(Scenario{Platform: small, Send: platform.Identity(1), Return: platform.Identity(1), Model: schedule.OnePort}, Auto); err != nil {
		t.Fatal(err)
	}
	r2, err := s.Evaluate(sc, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if !agreeEq(r1.Throughput(), r2.Throughput()) {
		t.Errorf("session reuse changed the result: %g != %g", r1.Throughput(), r2.Throughput())
	}
	s.Release()
}

func TestThroughputMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := NewSession()
	for trial := 0; trial < 40; trial++ {
		p := randomAgreementPlatform(rng)
		sc := randomScenario(rng, p)
		rho, err := s.Throughput(sc, Auto)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := s.Evaluate(sc, Auto)
		if err != nil {
			t.Fatal(err)
		}
		if !agreeEq(rho, sched.Throughput()) {
			t.Errorf("trial %d: Throughput %.12g != Evaluate %.12g", trial, rho, sched.Throughput())
		}
	}
}

func TestZeroLoadWorkersPruned(t *testing.T) {
	// A worker with absurd communication cost must be pruned from the
	// orders by every backend.
	p := platform.New(
		platform.Worker{C: 0.05, W: 0.1, D: 0.025},
		platform.Worker{C: 1e6, W: 0.1, D: 5e5},
	)
	order := p.ByC()
	for _, mode := range []Mode{Auto, Direct, Simplex} {
		s, err := Evaluate(Scenario{Platform: p, Send: order, Return: order, Model: schedule.OnePort}, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(s.SendOrder) != 1 || s.SendOrder[0] != 0 {
			t.Errorf("%v: send order %v, want [0]", mode, s.SendOrder)
		}
	}
}

func TestScenarioLPShape(t *testing.T) {
	p := testStar()
	order := p.ByC()
	prob, err := ScenarioLP(Scenario{Platform: p, Send: order, Return: order, Model: schedule.OnePort})
	if err != nil {
		t.Fatal(err)
	}
	if prob.NumVars() != 3 || prob.NumRows() != 4 {
		t.Errorf("one-port LP: %d vars × %d rows, want 3 × 4", prob.NumVars(), prob.NumRows())
	}
	prob2, err := ScenarioLP(Scenario{Platform: p, Send: order, Return: order, Model: schedule.TwoPort})
	if err != nil {
		t.Fatal(err)
	}
	if prob2.NumRows() != 5 {
		t.Errorf("two-port LP: %d rows, want 5", prob2.NumRows())
	}
}

func TestExactObjective(t *testing.T) {
	p := platform.New(platform.Worker{C: 0.25, W: 0.5, D: 0.25})
	o := platform.Identity(1)
	f, s, err := ExactObjective(Scenario{Platform: p, Send: o, Return: o, Model: schedule.OnePort})
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 || s != "1" {
		t.Errorf("ExactObjective = (%g, %q), want (1, \"1\")", f, s)
	}
}
