package eval

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/schedule"
)

// sjtWalk mirrors core.forEachPermutation (Steinhaus–Johnson–Trotter):
// every emitted order differs from its predecessor by one adjacent
// transposition, whose left index is reported. Reimplemented here because
// the core generator is unexported and eval cannot import core (cycle).
func sjtWalk(n, maxSteps int, fn func(perm []int, swapped int)) {
	perm := make([]int, n)
	pos := make([]int, n)
	dir := make([]int, n)
	for i := range perm {
		perm[i], pos[i], dir[i] = i, i, -1
	}
	fn(perm, -1)
	for step := 1; step < maxSteps; step++ {
		v := -1
		for val := n - 1; val >= 0; val-- {
			k := pos[val]
			if t := k + dir[val]; t >= 0 && t < n && perm[t] < val {
				v = val
				break
			}
		}
		if v < 0 {
			return
		}
		k := pos[v]
		t := k + dir[v]
		perm[k], perm[t] = perm[t], perm[k]
		pos[v], pos[perm[k]] = t, k
		for val := v + 1; val < n; val++ {
			dir[val] = -dir[val]
		}
		left := k
		if t < k {
			left = t
		}
		fn(perm, left)
	}
}

// TestSweepMatchesFromScratch is the incremental half of the extended
// agreement property test: walking adjacent transpositions, every
// certified Sweep throughput must equal the from-scratch tiered pipeline
// and the simplex to 1e-9, on 240 random platforms across all shape
// families, FIFO and LIFO, with the exact-rational backend confirming
// every 10th trial.
func TestSweepMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	const trials = 240
	for trial := 0; trial < trials; trial++ {
		p := randomAgreementPlatform(rng)
		lifo := trial%2 == 1
		n := p.P()
		var sw *Sweep
		fresh := NewSession()
		steps := 40
		sjtWalk(n, steps, func(perm []int, swapped int) {
			if swapped < 0 {
				var err error
				if sw, err = NewSweep(p, perm, schedule.OnePort, lifo); err != nil {
					t.Fatal(err)
				}
			} else {
				sw.Delta(swapped)
			}
			sc := Scenario{Platform: p, Send: perm, Return: perm, Model: schedule.OnePort}
			rev := platform.Order(perm).Reverse()
			if lifo {
				sc.Return = rev
			}
			rho, ok := sw.Throughput()
			if !ok {
				return // degenerate chains: the search falls back to the simplex
			}
			auto, err := fresh.Throughput(sc, Auto)
			if err != nil {
				t.Fatal(err)
			}
			if !agreeEq(rho, auto) {
				t.Fatalf("trial %d perm %v (lifo=%v): sweep %.12g != auto %.12g", trial, perm, lifo, rho, auto)
			}
			simplex, err := fresh.Throughput(sc, Simplex)
			if err != nil {
				t.Fatal(err)
			}
			if !agreeEq(rho, simplex) {
				t.Fatalf("trial %d perm %v (lifo=%v): sweep %.12g != simplex %.12g", trial, perm, lifo, rho, simplex)
			}
			if trial%10 == 0 {
				exact, err := fresh.Throughput(sc, ExactRational)
				if err != nil {
					t.Fatal(err)
				}
				if !agreeEq(rho, exact) {
					t.Fatalf("trial %d perm %v (lifo=%v): sweep %.12g != exact %.12g", trial, perm, lifo, rho, exact)
				}
			}
		})
	}
}

// TestSweepBoundSoundness pins the dual-screen contract of
// ThroughputBound: whatever it returns, the running maximum it produces
// must match the maximum of the exact per-permutation optima — a pruned
// permutation may report any value, but only when its true optimum cannot
// beat the incumbent.
func TestSweepBoundSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(1717))
	for trial := 0; trial < 60; trial++ {
		p := randomAgreementPlatform(rng)
		n := p.P()
		if n > 6 {
			continue
		}
		var sw *Sweep
		fresh := NewSession()
		incumbent := -1.0
		exactBest := -1.0
		sjtWalk(n, 1<<31-1, func(perm []int, swapped int) {
			if swapped < 0 {
				var err error
				if sw, err = NewSweep(p, perm, schedule.OnePort, false); err != nil {
					t.Fatal(err)
				}
			} else {
				sw.Delta(swapped)
			}
			sc := Scenario{Platform: p, Send: perm, Return: perm, Model: schedule.OnePort}
			exact, err := fresh.Throughput(sc, Auto)
			if err != nil {
				t.Fatal(err)
			}
			if exact > exactBest {
				exactBest = exact
			}
			v, ok := sw.ThroughputBound(incumbent)
			if !ok {
				v = exact // the search would fall back to the full pipeline
			}
			if v > exact*(1+1e-9) && exact > incumbent*(1+1e-9) {
				t.Fatalf("trial %d perm %v: bound %.12g overstates a winning optimum %.12g (incumbent %.12g)",
					trial, perm, v, exact, incumbent)
			}
			if exact > incumbent*(1+1e-9) && v < exact*(1-1e-9) {
				t.Fatalf("trial %d perm %v: pruned a permutation (%.12g) that beats the incumbent %.12g",
					trial, perm, exact, incumbent)
			}
			if v > incumbent {
				incumbent = v
			}
		})
		if math.Abs(incumbent-exactBest) > 1e-9*(1+incumbent+exactBest) {
			t.Fatalf("trial %d: incremental search max %.12g != exact max %.12g", trial, incumbent, exactBest)
		}
	}
}
