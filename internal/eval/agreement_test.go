package eval

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/schedule"
)

// The backend-agreement property test of the scenario-evaluation pipeline:
// on randomized platforms spanning every regime the backends specialise on
// (common z below and above 1, no common z, buses, compute-bound and
// port-bound mixes), the direct tight-system backend and the simplex
// backend must agree on throughput/makespan and on every load to 1e-9, and
// the exact-rational backend must confirm the float64 optima.

const agreeTol = 1e-9

func agreeEq(a, b float64) bool {
	return math.Abs(a-b) <= agreeTol*(1+math.Abs(a)+math.Abs(b))
}

// randomAgreementPlatform draws a platform from one of the paper's shape
// families, mixing sizes p ≤ 8 and cost regimes. On a bus (identical
// links) a port-bound optimum is a degenerate face of the LP, but the
// degenerate-optimum canonicalisation (canonical.go) pins every float64
// backend to the lexicographically smallest optimal loads, so loads are
// comparable across backends on every family — no carve-out needed.
func randomAgreementPlatform(rng *rand.Rand) *platform.Platform {
	p := 1 + rng.Intn(8)
	family := rng.Intn(4)
	ws := make([]platform.Worker, p)
	switch family {
	case 0: // common z < 1
		z := 0.1 + 0.8*rng.Float64()
		for i := range ws {
			c := 0.02 + 0.2*rng.Float64()
			ws[i] = platform.Worker{C: c, W: 0.05 + 0.5*rng.Float64(), D: z * c}
		}
	case 1: // common z > 1
		z := 1.1 + 2*rng.Float64()
		for i := range ws {
			c := 0.02 + 0.2*rng.Float64()
			ws[i] = platform.Worker{C: c, W: 0.05 + 0.5*rng.Float64(), D: z * c}
		}
	case 2: // no common z: fully independent costs
		for i := range ws {
			ws[i] = platform.Worker{
				C: 0.02 + 0.2*rng.Float64(),
				W: 0.05 + 0.5*rng.Float64(),
				D: 0.01 + 0.3*rng.Float64(),
			}
		}
	default: // bus (identical links), heterogeneous compute
		c := 0.02 + 0.2*rng.Float64()
		d := c * (0.1 + 1.5*rng.Float64())
		for i := range ws {
			ws[i] = platform.Worker{C: c, W: 0.05 + 0.5*rng.Float64(), D: d}
		}
	}
	return platform.New(ws...)
}

// randomScenario draws a scenario shape: FIFO, LIFO or a general pair,
// one-port mostly, two-port sometimes.
func randomScenario(rng *rand.Rand, p *platform.Platform) Scenario {
	n := p.P()
	send := platform.Order(rng.Perm(n))
	var ret platform.Order
	switch rng.Intn(3) {
	case 0:
		ret = send
	case 1:
		ret = send.Reverse()
	default:
		ret = platform.Order(rng.Perm(n))
	}
	model := schedule.OnePort
	if rng.Intn(5) == 0 {
		model = schedule.TwoPort
	}
	return Scenario{Platform: p, Send: send, Return: ret, Model: model}
}

func TestDirectAgreesWithSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(7331))
	const trials = 240
	const load = 1000.0
	for trial := 0; trial < trials; trial++ {
		p := randomAgreementPlatform(rng)
		sc := randomScenario(rng, p)
		direct, err := Evaluate(sc, Direct)
		if err != nil {
			t.Fatalf("trial %d: direct: %v\n%s", trial, err, p)
		}
		simplex, err := Evaluate(sc, Simplex)
		if err != nil {
			t.Fatalf("trial %d: simplex: %v\n%s", trial, err, p)
		}
		if !agreeEq(direct.Throughput(), simplex.Throughput()) {
			t.Errorf("trial %d: throughput direct %.12g != simplex %.12g\nscenario σ1=%v σ2=%v model=%v\n%s",
				trial, direct.Throughput(), simplex.Throughput(), sc.Send, sc.Return, sc.Model, p)
		}
		// Makespan for a fixed load is load/ρ — agreement transfers, but
		// assert it explicitly since it is the user-facing number.
		if !agreeEq(load/direct.Throughput(), load/simplex.Throughput()) {
			t.Errorf("trial %d: makespan disagreement", trial)
		}
		for i := range direct.Alpha {
			if !agreeEq(direct.Alpha[i], simplex.Alpha[i]) {
				t.Errorf("trial %d: load of worker %d: direct %.12g != simplex %.12g\nscenario σ1=%v σ2=%v model=%v\n%s",
					trial, i, direct.Alpha[i], simplex.Alpha[i], sc.Send, sc.Return, sc.Model, p)
			}
		}
		// Auto must tier to the same optimum as well.
		auto, err := Evaluate(sc, Auto)
		if err != nil {
			t.Fatalf("trial %d: auto: %v", trial, err)
		}
		if !agreeEq(auto.Throughput(), simplex.Throughput()) {
			t.Errorf("trial %d: auto throughput %.12g != simplex %.12g", trial, auto.Throughput(), simplex.Throughput())
		}
		// Every 10th trial: the exact-rational backend confirms the tie.
		if trial%10 == 0 {
			exact, err := Evaluate(sc, ExactRational)
			if err != nil {
				t.Fatalf("trial %d: exact: %v", trial, err)
			}
			if !agreeEq(exact.Throughput(), simplex.Throughput()) {
				t.Errorf("trial %d: exact %.12g != simplex %.12g (float64 simplex off the true optimum)",
					trial, exact.Throughput(), simplex.Throughput())
			}
			if !agreeEq(exact.Throughput(), direct.Throughput()) {
				t.Errorf("trial %d: exact %.12g != direct %.12g (tight certificate off the true optimum)",
					trial, exact.Throughput(), direct.Throughput())
			}
		}
	}
}

// TestExhaustiveSearchBackendAgreement pins the acceptance criterion of
// the pipeline at the strategy level: the full FIFO order search must
// produce the same optimal order and loads (within 1e-9) whether scenarios
// are evaluated by the tiered pipeline or by the simplex alone.
func TestExhaustiveSearchBackendAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 6; trial++ {
		p := randomAgreementPlatform(rng)
		if p.P() > 6 {
			continue // keep the factorial sweep fast
		}
		sess := NewSession()
		n := p.P()
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var bestAuto, bestSimplex float64
		var rec func(k int)
		rec = func(k int) {
			if k == n {
				sc := Scenario{
					Platform: p,
					Send:     append(platform.Order(nil), perm...),
					Return:   append(platform.Order(nil), perm...),
					Model:    schedule.OnePort,
				}
				ra, err := sess.Throughput(sc, Auto)
				if err != nil {
					t.Fatal(err)
				}
				rs, err := sess.Throughput(sc, Simplex)
				if err != nil {
					t.Fatal(err)
				}
				if !agreeEq(ra, rs) {
					t.Errorf("trial %d order %v: auto %.12g != simplex %.12g", trial, perm, ra, rs)
				}
				if ra > bestAuto {
					bestAuto = ra
				}
				if rs > bestSimplex {
					bestSimplex = rs
				}
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
		if !agreeEq(bestAuto, bestSimplex) {
			t.Errorf("trial %d: best throughput auto %.12g != simplex %.12g", trial, bestAuto, bestSimplex)
		}
	}
}

// TestPairSearchPrefixReuseAgreement checks the FixedSend fast path (the
// pair search's per-prefix reuse) against fresh evaluations.
func TestPairSearchPrefixReuseAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		p := randomAgreementPlatform(rng)
		if p.P() > 5 {
			continue
		}
		n := p.P()
		send := platform.Order(rng.Perm(n))
		sess := NewSession()
		fixed, err := sess.FixedSend(p, send, schedule.OnePort, Auto)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 6; k++ {
			ret := platform.Order(rng.Perm(n))
			got, err := fixed.Throughput(ret)
			if err != nil {
				t.Fatal(err)
			}
			want, err := NewSession().Throughput(Scenario{Platform: p, Send: send, Return: ret, Model: schedule.OnePort}, Simplex)
			if err != nil {
				t.Fatal(err)
			}
			if !agreeEq(got, want) {
				t.Errorf("trial %d σ2=%v: FixedSend %.12g != simplex %.12g", trial, ret, got, want)
			}
		}
	}
}

// TestSendBoundIsUpperBound validates the pair-search pruning bound: for
// every return order the bound must dominate the scenario optimum.
func TestSendBoundIsUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 30; trial++ {
		p := randomAgreementPlatform(rng)
		if p.P() > 5 {
			continue
		}
		n := p.P()
		send := platform.Order(rng.Perm(n))
		sess := NewSession()
		bound, err := sess.SendBound(p, send, schedule.OnePort)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 8; k++ {
			ret := platform.Order(rng.Perm(n))
			rho, err := sess.Throughput(Scenario{Platform: p, Send: send, Return: ret, Model: schedule.OnePort}, Auto)
			if err != nil {
				t.Fatal(err)
			}
			if rho > bound*(1+1e-9) {
				t.Errorf("trial %d: scenario σ2=%v beats its send bound: %.12g > %.12g", trial, ret, rho, bound)
			}
		}
	}
}
