package eval

import (
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/schedule"
)

// repeatedCostPlatform builds the duplicate-cost regression platform: four
// distinct (c, d) link pairs, each shared by two workers that differ only
// in computation speed, with d-heavy links so the port binds and the
// port-greedy drop criterion (largest c+d) ties exactly between twins.
// Seed 2 is pinned because its descent failures are fully attributable to
// the tie: without the duplicate branch the two-policy retry strands on
// the wrong twin for ~60% of send orders, with it every order certifies.
func repeatedCostPlatform(seed int64) *platform.Platform {
	rng := rand.New(rand.NewSource(seed))
	base := make([]platform.Worker, 4)
	for i := range base {
		base[i] = platform.Worker{
			C: 0.05 + 0.15*rng.Float64(),
			D: 0.05 + 0.2*rng.Float64(),
		}
	}
	ws := make([]platform.Worker, 8)
	for i := range ws {
		ws[i] = base[i%4]
		ws[i].W = 0.05 + 0.4*rng.Float64()
	}
	return platform.New(ws...)
}

// TestChainSearchDuplicateCostBranch is the regression test of the
// duplicate-cost descent gap (ROADMAP): on a repeated-(c, d) platform the
// branch-and-certify must strictly reduce descent failures versus the
// two-policy retry alone, never lose a case the old policies certified,
// and every rescued certificate must agree with the simplex to 1e-9.
func TestChainSearchDuplicateCostBranch(t *testing.T) {
	p := repeatedCostPlatform(2)
	sess := NewSession()
	fresh := NewSession()
	oldFail, newFail, rescued := 0, 0, 0
	sjtWalk(8, 5000, func(perm []int, _ int) {
		send := append(platform.Order(nil), perm...)
		sc := Scenario{Platform: p, Send: send, Return: send, Model: schedule.OnePort}
		disableDupBranch = true
		_, okOld := sess.chainSearch(sc, false, nil, nil)
		disableDupBranch = false
		alpha, okNew := sess.chainSearch(sc, false, nil, nil)
		if okOld && !okNew {
			t.Fatalf("perm %v: the duplicate branch lost a certificate the two-policy retry had", perm)
		}
		if !okOld {
			oldFail++
		}
		if !okNew {
			newFail++
			return
		}
		if !okOld {
			rescued++
			// Rescued certificates must be the LP optimum, not merely
			// feasible: compare against the simplex.
			got := sum(alpha)
			want, err := fresh.Throughput(sc, Simplex)
			if err != nil {
				t.Fatal(err)
			}
			if !agreeEq(got, want) {
				t.Fatalf("perm %v: rescued certificate %.12g != simplex %.12g", perm, got, want)
			}
		}
	})
	if oldFail == 0 {
		t.Fatal("the pinned platform no longer defeats the two-policy retry; pick a new regression seed")
	}
	if rescued == 0 {
		t.Fatalf("the duplicate branch rescued nothing (%d old failures)", oldFail)
	}
	if newFail >= oldFail {
		t.Fatalf("the duplicate branch did not reduce descent failures: %d -> %d", oldFail, newFail)
	}
	t.Logf("descent failures %d -> %d (%d rescued) over 5000 permutations", oldFail, newFail, rescued)
}

// TestSweepRepeatedCostAllocationFree pins the allocation discipline of
// the p = 8 sweep on the duplicate-cost platform: with the branch closing
// every descent miss, no permutation falls back to the allocating simplex,
// so the full 40320-permutation sweep — beyond its setup — allocates
// nothing. A reappearing simplex fallback would blow the budget by orders
// of magnitude (each scenario LP build allocates dozens of times).
func TestSweepRepeatedCostAllocationFree(t *testing.T) {
	p := repeatedCostPlatform(2)
	fallbacks := 0
	allocs := testing.AllocsPerRun(1, func() {
		var sw *Sweep
		sjtWalk(8, 1<<30, func(perm []int, swapped int) {
			if swapped < 0 {
				var err error
				if sw, err = NewSweep(p, perm, schedule.OnePort, false); err != nil {
					t.Fatal(err)
				}
				return
			}
			sw.Delta(swapped)
			if _, ok := sw.Throughput(); !ok {
				fallbacks++
			}
		})
	})
	if fallbacks > 0 {
		t.Fatalf("%d of 40320 permutations fell back past the chain search on the repeated-cost platform", fallbacks)
	}
	// The budget covers sweep construction and the descent's amortised
	// buffer growth only — far below one allocation per permutation.
	if allocs > 200 {
		t.Fatalf("p = 8 sweep allocated %.0f times (> 200): a per-permutation allocation crept in", allocs)
	}
}
