package eval

import (
	"math"

	"repro/internal/numeric"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// This file implements the fast FIFO/LIFO variants of the active-set
// descent. For those scenario shapes every candidate vertex — all rows
// tight on an enrolled subsequence, or port-tight with one slack row — is
// a chain system solvable in O(m), so the whole search runs without any
// Gaussian elimination:
//
//   - the all-tight candidate is the two-term load recurrence of tight.go;
//   - the port-tight candidate with slack row k parameterises the loads as
//     α = t·X + s·Y (t the chain scale, s = α_k) and closes with the first
//     tight row and the port row — a 2×2 solve;
//   - the duals are chain recurrences parameterised by the total T (and,
//     for port-tight vertices, the port multiplier μ), closed by Σλ = T
//     and the stationarity equation of the slack column — another 2×2;
//   - the dropped-worker checks reduce to prefix sums over send positions.
//
// The dual chains double as descent hints: the most negative multiplier
// names the worker that resource selection wants to drop (Proposition 1),
// which is what lets the descent walk straight to the optimal enrolled
// subset instead of enumerating subsets.

// fifoDualHint runs the O(m) FIFO dual chain and reports both whether the
// multipliers certify (all ≥ -CertTol) and the index (into send) of the
// most negative multiplier — the resource-selection descent hint. On
// success s.lam holds the multipliers.
func (s *Session) fifoDualHint(p *platform.Platform, send platform.Order) (hint int, ok bool) {
	q := len(send)
	u := grow(&s.u, q)
	v := grow(&s.v, q)
	pu, pv := 0.0, 0.0
	for k, i := range send {
		w := p.Workers[i]
		den := w.W + w.D
		u[k] = (1 - (w.D-w.C)*pu) / den
		v[k] = (-w.C - (w.D-w.C)*pv) / den
		pu += u[k]
		pv += v[k]
	}
	if d := 1 - pv; d < 1e-12 && d > -1e-12 {
		return -1, false // closure degenerate; let the simplex decide
	}
	t := pu / (1 - pv)
	lam := grow(&s.lam, q)
	hint, ok = -1, true
	worst := 0.0
	for k := range u {
		lam[k] = u[k] + t*v[k]
		if !certOK(lam[k]) {
			ok = false
			if lam[k] < worst {
				worst, hint = lam[k], k
			}
		}
	}
	return hint, ok
}

// lifoDualHint is the LIFO counterpart of fifoDualHint (back substitution
// on the upper-triangular transpose); s.lam holds the multipliers.
func (s *Session) lifoDualHint(p *platform.Platform, send platform.Order) (hint int, ok bool) {
	lam := grow(&s.lam, len(send))
	suffix := 0.0
	hint, ok = -1, true
	worst := 0.0
	for k := len(send) - 1; k >= 0; k-- {
		w := p.Workers[send[k]]
		lam[k] = (1 - (w.C+w.D)*suffix) / (w.C + w.W + w.D)
		if !certOK(lam[k]) {
			ok = false
			if lam[k] < worst {
				worst, hint = lam[k], k
			}
		}
		suffix += lam[k]
	}
	return hint, ok
}

// fifoPortVertex solves, in O(m), the one-port FIFO vertex over the
// enrolled workers sub in which every worker row except row k is tight and
// the port row is tight instead (worker k is the one allowed idle worker,
// Lemma 1). It certifies the candidate completely except for the
// dropped-worker checks, which the caller runs with the returned λ and μ.
//
// Loads: subtracting consecutive tight rows chains α as α = t·X + s·Y with
// s = α_k; rows k−1 and k+1 are linked by
//
//	α_{k+1}·(c_{k+1}+w_{k+1}) = α_{k−1}·(w_{k−1}+d_{k−1}) + α_k·(d_k−c_k),
//
// and (t, s) close on the first tight row and the tight port row.
//
// Duals: λ_j = (1 − μ·g_j − c_j·T − (d_j−c_j)·P_{j−1})/(w_j+d_j) with
// λ_k = 0, parameterised affinely in (T, μ); the closures are Σλ = T and
// the stationarity equation of column k.
//
// On success the loads are in s.alpha (by enrolled index), the worker-row
// multipliers in s.lam, and the port multiplier is returned as mu. On
// failure loadHint names the most negative load's enrolled index (-1 if
// none).
func (s *Session) fifoPortVertex(p *platform.Platform, sub platform.Order, k int) (alpha []float64, mu float64, ok bool, loadHint int) {
	m := len(sub)
	if m < 2 {
		// A single enrolled worker has no tight worker row left once its
		// own row goes slack; the all-tight candidate covers m = 1.
		return nil, 0, false, -1
	}
	tol := numeric.CertTol
	X := grow(&s.u, m)
	Y := grow(&s.v, m)
	for r := 0; r < m; r++ {
		w := p.Workers[sub[r]]
		switch {
		case r == k:
			X[r], Y[r] = 0, 1
		case r == 0:
			X[r], Y[r] = 1, 0
		case r == k+1 && k > 0:
			prev := p.Workers[sub[k-1]]
			wk := p.Workers[sub[k]]
			X[r] = X[k-1] * (prev.W + prev.D) / (w.C + w.W)
			Y[r] = (wk.D - wk.C) / (w.C + w.W)
		case r == k+1: // k == 0: the tight chain restarts at row 1
			X[r], Y[r] = 1, 0
		default: // rows r-1 and r both tight
			prev := p.Workers[sub[r-1]]
			f := (prev.W + prev.D) / (w.C + w.W)
			X[r] = X[r-1] * f
			Y[r] = Y[r-1] * f
		}
	}
	// Closure 1: the first tight row f.
	f := 0
	if k == 0 {
		f = 1
	}
	rowCoef := func(vec []float64) float64 {
		lhs := 0.0
		for j := 0; j <= f; j++ {
			lhs += vec[j] * p.Workers[sub[j]].C
		}
		lhs += vec[f] * p.Workers[sub[f]].W
		for j := f; j < m; j++ {
			lhs += vec[j] * p.Workers[sub[j]].D
		}
		return lhs
	}
	a11, a12 := rowCoef(X), rowCoef(Y)
	// Closure 2: the tight port row.
	a21, a22 := 0.0, 0.0
	for j := 0; j < m; j++ {
		g := p.Workers[sub[j]].C + p.Workers[sub[j]].D
		a21 += X[j] * g
		a22 += Y[j] * g
	}
	det := a11*a22 - a12*a21
	if det < 1e-300 && det > -1e-300 {
		return nil, 0, false, -1
	}
	t := (a22 - a12) / det
	sv := (a11 - a21) / det
	alpha = grow(&s.alpha, m)
	loadHint = -1
	worst := 0.0
	for r := 0; r < m; r++ {
		alpha[r] = t*X[r] + sv*Y[r]
		if math.IsNaN(alpha[r]) || math.IsInf(alpha[r], 0) {
			return nil, 0, false, -1
		}
		if alpha[r] < worst {
			worst, loadHint = alpha[r], r
		}
	}
	if worst < -tol {
		return nil, 0, false, loadHint
	}
	clampLoads(alpha)
	// The slack row must hold as an inequality (worker k's idle time ≥ 0).
	lhs := 0.0
	for j := 0; j <= k; j++ {
		lhs += alpha[j] * p.Workers[sub[j]].C
	}
	lhs += alpha[k] * p.Workers[sub[k]].W
	for j := k; j < m; j++ {
		lhs += alpha[j] * p.Workers[sub[j]].D
	}
	if lhs > 1+tol {
		return nil, 0, false, -1
	}
	// Dual chain in (T, μ): λ_j = l0[j] + T·lT[j] + μ·lM[j], λ_k = 0.
	l0 := grow(&s.d0, m)
	lT := grow(&s.dT, m)
	lM := grow(&s.dM, m)
	p0, pT, pM := 0.0, 0.0, 0.0 // prefix sums P_{j-1} of the three parts
	k0, kT, kM := 0.0, 0.0, 0.0 // prefix sums at column k
	for j := 0; j < m; j++ {
		if j == k {
			l0[j], lT[j], lM[j] = 0, 0, 0
			k0, kT, kM = p0, pT, pM
			continue
		}
		w := p.Workers[sub[j]]
		den := w.W + w.D
		dc := w.D - w.C
		g := w.C + w.D
		l0[j] = (1 - dc*p0) / den
		lT[j] = (-w.C - dc*pT) / den
		lM[j] = (-g - dc*pM) / den
		p0 += l0[j]
		pT += lT[j]
		pM += lM[j]
	}
	// Closure A: stationarity at column k:
	//   c_k·(T − P_{k−1}) + d_k·P_{k−1} + μ·g_k = 1
	// with P_{k−1} = k0 + T·kT + μ·kM.
	wk := p.Workers[sub[k]]
	dck := wk.D - wk.C
	gk := wk.C + wk.D
	// (c_k + dck·kT)·T + (g_k + dck·kM)·μ = 1 − dck·k0
	b11 := wk.C + dck*kT
	b12 := gk + dck*kM
	r1 := 1 - dck*k0
	// Closure B: Σλ = T → (ΣlT − 1)·T + ΣlM·μ = −Σl0.
	b21 := pT - 1
	b22 := pM
	r2 := -p0
	det = b11*b22 - b12*b21
	if det < 1e-300 && det > -1e-300 {
		return nil, 0, false, -1
	}
	T := (r1*b22 - b12*r2) / det
	mu = (b11*r2 - r1*b21) / det
	if !certOK(mu) {
		return nil, 0, false, -1
	}
	lam := grow(&s.lam, m)
	for j := 0; j < m; j++ {
		lam[j] = l0[j] + T*lT[j] + mu*lM[j]
		if !certOK(lam[j]) {
			return nil, 0, false, -1
		}
	}
	return alpha, mu, true, -1
}

// chainSearch runs the active-set descent for FIFO and LIFO scenarios
// using the O(m) chains for every candidate. Per level, over the enrolled
// subsequence:
//
//  1. solve the all-tight chain; if its loads, port check, dual chain and
//     the dropped-worker checks all certify, done;
//  2. on a port overrun (one-port FIFO only — LIFO never saturates the
//     port): scan the port-tight vertices, slack row k = m−1 down to 0;
//  3. otherwise drop the dual chain's most negative position (falling back
//     to the vertices' load hints, then the last position) and descend.
//
// Returns loads by send position of the full scenario.
func (s *Session) chainSearch(sc Scenario, lifo bool) ([]float64, bool) {
	p := sc.Platform
	q := len(sc.Send)
	enrolled := growInt(&s.enrolled, q)
	for i := range enrolled {
		enrolled[i] = i
	}
	sub := growInt(&s.sub, q)
	expand := func(E []int, alpha []float64) []float64 {
		out := grow(&s.work, q)
		for t := range out {
			out[t] = 0
		}
		for r, pos := range E {
			out[pos] = alpha[r]
		}
		return out
	}
	for m := q; m >= 1; m-- {
		E := enrolled[:m]
		// The enrolled subsequence as an order (worker indices).
		for r, pos := range E {
			sub[r] = sc.Send[pos]
		}
		subOrder := platform.Order(sub[:m])
		var alpha []float64
		var chainOK bool
		if lifo {
			alpha, chainOK = s.lifoTight(p, subOrder)
		} else {
			alpha, chainOK = s.fifoTight(p, subOrder)
		}
		if !chainOK {
			return nil, false // degenerate chain; let the simplex decide
		}
		portOK := lifo || portFeasible(p, subOrder, alpha, sc.Model)
		var hint int
		var dualOK bool
		if lifo {
			hint, dualOK = s.lifoDualHint(p, subOrder)
		} else {
			hint, dualOK = s.fifoDualHint(p, subOrder)
		}
		if portOK && dualOK && s.chainDroppedOK(sc, E, alpha, s.lam[:m], 0, lifo) {
			return expand(E, alpha), true
		}
		// Port-bound vertices: one-port FIFO only, and only when the dual
		// chain is clean — a negative chain multiplier means resource
		// selection wants a drop first, so scanning the port vertices of
		// the current (too large) enrolled set would be wasted work.
		if dualOK && !portOK && !lifo && sc.Model == schedule.OnePort {
			loadHint := -1
			for k := m - 1; k >= 0; k-- {
				va, mu, ok, lh := s.fifoPortVertex(p, subOrder, k)
				if ok && s.chainDroppedOK(sc, E, va, s.lam[:m], mu, lifo) {
					return expand(E, va), true
				}
				if lh >= 0 && loadHint < 0 {
					loadHint = lh
				}
			}
			if hint < 0 {
				hint = loadHint
			}
		}
		if m == 1 {
			break
		}
		drop := m - 1
		if hint >= 0 {
			drop = hint
		}
		copy(enrolled[drop:], enrolled[drop+1:m])
	}
	return nil, false
}

// chainDroppedOK verifies the full-LP certificate parts that concern the
// dropped workers of a chain candidate, in O(q) via prefix sums:
//
//   - primal: every dropped worker's row must hold as an inequality,
//     LHS_j = Σ_{i∈E, before j in σ1} α_i·c_i + Σ_{i∈E, after j in σ2} α_i·d_i ≤ 1
//     (the dropped worker's own terms vanish with α_j = 0);
//   - dual: Σ_{i∈E} λ_i·A_{ij} + μ·(c_j+d_j) ≥ 1 with
//     A_{ij} = c_j·[j before i in σ1] + d_j·[j after i in σ2].
//
// For FIFO both conditions reduce to prefix/suffix sums over send
// positions; for LIFO "after in σ2" is "before in σ1". alpha and lam are
// indexed by enrolled index; mu is the port multiplier of the candidate
// (zero for all-tight candidates).
func (s *Session) chainDroppedOK(sc Scenario, E []int, alpha, lam []float64, mu float64, lifo bool) bool {
	q := len(sc.Send)
	m := len(E)
	if m == q {
		return true
	}
	p := sc.Platform
	tol := numeric.CertTol
	ei := 0 // enrolled index of the next enrolled position ≥ cursor
	preAC, preAD, preLam := 0.0, 0.0, 0.0
	totAD, totLam := 0.0, 0.0
	for r := 0; r < m; r++ {
		totAD += alpha[r] * p.Workers[sc.Send[E[r]]].D
		totLam += lam[r]
	}
	for pos := 0; pos < q; pos++ {
		if ei < m && E[ei] == pos {
			preAC += alpha[ei] * p.Workers[sc.Send[pos]].C
			preAD += alpha[ei] * p.Workers[sc.Send[pos]].D
			preLam += lam[ei]
			ei++
			continue
		}
		// Dropped worker at this send position.
		j := sc.Send[pos]
		wj := p.Workers[j]
		var rowLHS, dualLHS float64
		if lifo {
			// σ2 = reverse σ1: "after j in σ2" = "before j in σ1", so both
			// the c and d terms of A_{ij} select enrolled rows after pos.
			rowLHS = preAC + preAD
			dualLHS = (wj.C + wj.D) * (totLam - preLam)
		} else {
			// FIFO: "after j in σ2" = "at or after j in σ1".
			rowLHS = preAC + (totAD - preAD)
			dualLHS = wj.C*(totLam-preLam) + wj.D*preLam
		}
		dualLHS += mu * (wj.C + wj.D)
		if rowLHS > 1+tol || dualLHS < 1-tol {
			return false
		}
	}
	return true
}
