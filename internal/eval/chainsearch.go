package eval

import (
	"math"

	"repro/internal/numeric"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// This file implements the fast FIFO/LIFO variants of the active-set
// descent. For those scenario shapes every candidate vertex — all rows
// tight on an enrolled subsequence, or port-tight with one slack row — is
// a chain system solvable in O(m), so the whole search runs without any
// Gaussian elimination:
//
//   - the all-tight candidate is the two-term load recurrence of tight.go;
//   - the port-tight candidate with slack row k parameterises the loads as
//     α = t·X + s·Y (t the chain scale, s = α_k) and closes with the first
//     tight row and the port row — a 2×2 solve;
//   - the duals are chain recurrences parameterised by the total T (and,
//     for port-tight vertices, the port multiplier μ), closed by Σλ = T
//     and the stationarity equation of the slack column — another 2×2;
//   - the dropped-worker checks reduce to prefix sums over send positions.
//
// The dual chains double as descent hints: the most negative multiplier
// names the worker that resource selection wants to drop (Proposition 1),
// which is what lets the descent walk straight to the optimal enrolled
// subset instead of enumerating subsets.

// fifoDualHint runs the O(m) FIFO dual chain and reports both whether the
// multipliers certify (all ≥ -CertTol) and the index (into send) of the
// most negative multiplier — the resource-selection descent hint. On
// success s.lam holds the multipliers.
func (s *Session) fifoDualHint(p *platform.Platform, send platform.Order) (hint int, ok bool) {
	wc := s.derivedCosts(p)
	q := len(send)
	u := grow(&s.u, q)
	v := grow(&s.v, q)
	pu, pv := 0.0, 0.0
	for k, i := range send {
		w := &wc[i]
		u[k] = (1 - w.dc*pu) * w.invWD
		v[k] = (-w.c - w.dc*pv) * w.invWD
		pu += u[k]
		pv += v[k]
	}
	if d := 1 - pv; d < 1e-12 && d > -1e-12 {
		return -1, false // closure degenerate; let the simplex decide
	}
	t := pu / (1 - pv)
	lam := grow(&s.lam, q)
	hint, ok = -1, true
	worst := 0.0
	for k := range u {
		lam[k] = u[k] + t*v[k]
		if !certOK(lam[k]) {
			ok = false
			if lam[k] < worst {
				worst, hint = lam[k], k
			}
		}
	}
	return hint, ok
}

// lifoDualHint is the LIFO counterpart of fifoDualHint (back substitution
// on the upper-triangular transpose); s.lam holds the multipliers.
func (s *Session) lifoDualHint(p *platform.Platform, send platform.Order) (hint int, ok bool) {
	wc := s.derivedCosts(p)
	lam := grow(&s.lam, len(send))
	suffix := 0.0
	hint, ok = -1, true
	worst := 0.0
	for k := len(send) - 1; k >= 0; k-- {
		w := &wc[send[k]]
		lam[k] = (1 - w.g*suffix) * w.invCWD
		if !certOK(lam[k]) {
			ok = false
			if lam[k] < worst {
				worst, hint = lam[k], k
			}
		}
		suffix += lam[k]
	}
	return hint, ok
}

// fifoPortVertex solves, in O(m), the one-port FIFO vertex over the
// enrolled workers sub in which every worker row except row k is tight and
// the port row is tight instead (worker k is the one allowed idle worker,
// Lemma 1). It certifies the candidate completely except for the
// dropped-worker checks, which the caller runs with the returned λ and μ.
//
// Loads: subtracting consecutive tight rows chains α as α = t·X + s·Y with
// s = α_k; rows k−1 and k+1 are linked by
//
//	α_{k+1}·(c_{k+1}+w_{k+1}) = α_{k−1}·(w_{k−1}+d_{k−1}) + α_k·(d_k−c_k),
//
// and (t, s) close on the first tight row and the tight port row.
//
// Duals: λ_j = (1 − μ·g_j − c_j·T − (d_j−c_j)·P_{j−1})/(w_j+d_j) with
// λ_k = 0, parameterised affinely in (T, μ); the closures are Σλ = T and
// the stationarity equation of column k.
//
// On success the loads are in s.alpha (by enrolled index), the worker-row
// multipliers in s.lam, and the port multiplier is returned as mu. On
// failure loadHint names the most negative load's enrolled index (-1 if
// none) and loadWorst that load's value — the descent prefers the hint of
// the least infeasible vertex, whose structure sits closest to the
// optimum's.
func (s *Session) fifoPortVertex(p *platform.Platform, sub platform.Order, k int) (alpha []float64, mu float64, ok bool, loadHint int, loadWorst float64) {
	m := len(sub)
	if m < 2 {
		// A single enrolled worker has no tight worker row left once its
		// own row goes slack; the all-tight candidate covers m = 1.
		return nil, 0, false, -1, 0
	}
	wc := s.derivedCosts(p)
	tol := numeric.CertTol
	X := grow(&s.u, m)
	Y := grow(&s.v, m)
	// The first tight row f closes (t, s) together with the port row; its
	// coefficients (a11, a12) and the port row's (a21, a22) accumulate in
	// the same pass that chains X and Y.
	f := 0
	if k == 0 {
		f = 1
	}
	a11, a12 := 0.0, 0.0
	a21, a22 := 0.0, 0.0
	for r := 0; r < m; r++ {
		w := &wc[sub[r]]
		switch {
		case r == k:
			X[r], Y[r] = 0, 1
		case r == 0:
			X[r], Y[r] = 1, 0
		case r == k+1 && k > 0:
			X[r] = X[k-1] * wc[sub[k-1]].wd * w.invCW
			Y[r] = wc[sub[k]].dc * w.invCW
		case r == k+1: // k == 0: the tight chain restarts at row 1
			X[r], Y[r] = 1, 0
		default: // rows r-1 and r both tight
			fct := wc[sub[r-1]].wd * w.invCW
			X[r] = X[r-1] * fct
			Y[r] = Y[r-1] * fct
		}
		a21 += X[r] * w.g
		a22 += Y[r] * w.g
		if r >= f { // row f's return suffix Σ_{j≥f} d_j·α_j
			a11 += X[r] * w.d
			a12 += Y[r] * w.d
		}
	}
	for j := 0; j <= f; j++ { // row f's send prefix Σ_{j≤f} c_j·α_j
		cj := wc[sub[j]].c
		a11 += X[j] * cj
		a12 += Y[j] * cj
	}
	wf := wc[sub[f]].w
	a11 += X[f] * wf
	a12 += Y[f] * wf
	det := a11*a22 - a12*a21
	if det < 1e-300 && det > -1e-300 {
		return nil, 0, false, -1, 0
	}
	t := (a22 - a12) / det
	sv := (a11 - a21) / det
	alpha = grow(&s.alpha, m)
	loadHint = -1
	worst := 0.0
	// Loads, the slack row's inequality (worker k's idle time ≥ 0) and the
	// NaN guard share one pass; the slack row's send prefix stops at k.
	slackLHS := 0.0
	for r := 0; r < m; r++ {
		w := &wc[sub[r]]
		a := t*X[r] + sv*Y[r]
		alpha[r] = a
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return nil, 0, false, -1, 0
		}
		if a < worst {
			worst, loadHint = a, r
		}
		if r <= k {
			slackLHS += a * w.c
		}
		if r >= k {
			slackLHS += a * w.d
		}
	}
	if worst < -tol {
		return nil, 0, false, loadHint, worst
	}
	clampLoads(alpha)
	slackLHS += alpha[k] * wc[sub[k]].w
	if slackLHS > 1+tol {
		return nil, 0, false, -1, 0
	}
	// Dual chain in (T, μ): λ_j = l0[j] + T·lT[j] + μ·lM[j], λ_k = 0.
	l0 := grow(&s.d0, m)
	lT := grow(&s.dT, m)
	lM := grow(&s.dM, m)
	p0, pT, pM := 0.0, 0.0, 0.0 // prefix sums P_{j-1} of the three parts
	k0, kT, kM := 0.0, 0.0, 0.0 // prefix sums at column k
	for j := 0; j < m; j++ {
		if j == k {
			l0[j], lT[j], lM[j] = 0, 0, 0
			k0, kT, kM = p0, pT, pM
			continue
		}
		w := &wc[sub[j]]
		l0[j] = (1 - w.dc*p0) * w.invWD
		lT[j] = (-w.c - w.dc*pT) * w.invWD
		lM[j] = (-w.g - w.dc*pM) * w.invWD
		p0 += l0[j]
		pT += lT[j]
		pM += lM[j]
	}
	// Closure A: stationarity at column k:
	//   c_k·(T − P_{k−1}) + d_k·P_{k−1} + μ·g_k = 1
	// with P_{k−1} = k0 + T·kT + μ·kM.
	wk := &wc[sub[k]]
	// (c_k + dc_k·kT)·T + (g_k + dc_k·kM)·μ = 1 − dc_k·k0
	b11 := wk.c + wk.dc*kT
	b12 := wk.g + wk.dc*kM
	r1 := 1 - wk.dc*k0
	// Closure B: Σλ = T → (ΣlT − 1)·T + ΣlM·μ = −Σl0.
	b21 := pT - 1
	b22 := pM
	r2 := -p0
	det = b11*b22 - b12*b21
	if det < 1e-300 && det > -1e-300 {
		return nil, 0, false, -1, 0
	}
	T := (r1*b22 - b12*r2) / det
	mu = (b11*r2 - r1*b21) / det
	if !certOK(mu) {
		return nil, 0, false, -1, 0
	}
	lam := grow(&s.lam, m)
	for j := 0; j < m; j++ {
		lam[j] = l0[j] + T*lT[j] + mu*lM[j]
		if !certOK(lam[j]) {
			return nil, 0, false, -1, 0
		}
	}
	return alpha, mu, true, -1, 0
}

// chainOptRecord captures the structure of a certified chain-search
// optimum for the incremental sweep's warm start: which send positions are
// enrolled, the candidate shape (all-tight, or port-tight with a slack
// worker), and the certificate pieces needed to re-verify the candidate
// after an adjacent transposition. Slices are appended in place so a
// long-lived record allocates only on growth.
type chainOptRecord struct {
	rho         float64
	pos         []int     // enrolled send positions, ascending
	alpha       []float64 // loads by enrolled rank
	lam         []float64 // worker-row multipliers by enrolled rank
	mu          float64   // port multiplier (0 for all-tight candidates)
	slackWorker int       // worker index of the slack row, -1 if all tight
}

func (r *chainOptRecord) set(E []int, alpha, lam []float64, mu float64, slackWorker int) {
	r.pos = append(r.pos[:0], E...)
	r.alpha = append(r.alpha[:0], alpha...)
	r.lam = append(r.lam[:0], lam...)
	r.mu = mu
	r.slackWorker = slackWorker
	r.rho = sum(alpha)
}

// disableDupBranch switches off the duplicate-cost branch-and-certify of
// chainSearch. Test hook only: the regression test compares descent
// failures with and without the branch on repeated-cost platforms.
var disableDupBranch bool

// chainSearch runs the active-set descent for FIFO and LIFO scenarios
// using the O(m) chains for every candidate. Per level, over the enrolled
// subsequence:
//
//  1. solve the all-tight chain; if its loads, port check, dual chain and
//     the dropped-worker checks all certify, done;
//  2. on a port overrun (one-port FIFO only — LIFO never saturates the
//     port): scan the port-tight vertices, slack row k = m−1 down to 0;
//  3. otherwise drop the dual chain's most negative position (falling back
//     to the vertices' load hints, then the last position) and descend.
//
// Returns loads by send position of the full scenario. When rec is non-nil
// the certified optimum's structure is recorded into it. initE optionally
// restricts the top of the descent to a subset of enrolled send positions
// (ascending; nil enrolls everything) — the incremental sweep uses it to
// resume from the previous permutation's optimal active set.
func (s *Session) chainSearch(sc Scenario, lifo bool, rec *chainOptRecord, initE []int) ([]float64, bool) {
	// The drop policy at a port-bound level with a clean relaxed dual is
	// heuristic (certificates make a wrong drop slow, never wrong): the
	// first attempt sheds the most port-hungry worker, and if that descent
	// bottoms out uncertified a second attempt follows the port vertices'
	// load hints instead, with each retry running only when the policies
	// actually diverged. Platforms with repeated (c, d) pairs add a third
	// axis: the "most port-hungry" criterion ties exactly between
	// duplicates, and the arbitrary first-index pick can strand the descent
	// on the wrong twin — when a tie was seen, the branch-and-certify
	// passes re-run the descent preferring the OTHER duplicate, closing the
	// gap that used to fall back to the simplex.
	alpha, ok, ambiguous, dupTie := s.chainDescent(sc, lifo, rec, initE, false, false)
	if !ok && ambiguous {
		var dup2 bool
		alpha, ok, _, dup2 = s.chainDescent(sc, lifo, rec, initE, true, false)
		dupTie = dupTie || dup2
	}
	if !ok && dupTie && !disableDupBranch {
		var amb3 bool
		alpha, ok, amb3, _ = s.chainDescent(sc, lifo, rec, initE, false, true)
		if !ok && (ambiguous || amb3) {
			alpha, ok, _, _ = s.chainDescent(sc, lifo, rec, initE, true, true)
		}
	}
	return alpha, ok
}

// chainDescent is one greedy descent pass; see chainSearch. It reports
// whether any level's drop choice was policy-dependent (ambiguous) and
// whether a port-greedy drop tied between workers with identical (c, d)
// pairs (dupTie); dupAlt resolves such ties towards the second duplicate
// instead of the first.
func (s *Session) chainDescent(sc Scenario, lifo bool, rec *chainOptRecord, initE []int, preferLoadHint, dupAlt bool) ([]float64, bool, bool, bool) {
	p := sc.Platform
	q := len(sc.Send)
	top := q
	ambiguous, dupTie := false, false
	enrolled := growInt(&s.enrolled, q)
	if initE == nil {
		for i := range enrolled {
			enrolled[i] = i
		}
	} else {
		top = copy(enrolled, initE)
	}
	sub := growInt(&s.sub, q)
	expand := func(E []int, alpha []float64) []float64 {
		out := grow(&s.work, q)
		for t := range out {
			out[t] = 0
		}
		for r, pos := range E {
			out[pos] = alpha[r]
		}
		return out
	}
	for m := top; m >= 1; m-- {
		E := enrolled[:m]
		// The enrolled subsequence as an order (worker indices).
		for r, pos := range E {
			sub[r] = sc.Send[pos]
		}
		subOrder := platform.Order(sub[:m])
		var alpha []float64
		var chainOK bool
		if lifo {
			alpha, chainOK = s.lifoTight(p, subOrder)
		} else {
			alpha, chainOK = s.fifoTight(p, subOrder)
		}
		if !chainOK {
			return nil, false, ambiguous, dupTie // degenerate chain; let the simplex decide
		}
		portOK := lifo || portFeasible(p, subOrder, alpha, sc.Model)
		var hint int
		var dualOK bool
		if lifo {
			hint, dualOK = s.lifoDualHint(p, subOrder)
		} else {
			hint, dualOK = s.fifoDualHint(p, subOrder)
		}
		if portOK && dualOK && s.chainDroppedOK(sc, E, alpha, s.lam[:m], 0, lifo) {
			if rec != nil {
				rec.set(E, alpha, s.lam[:m], 0, -1)
			}
			return expand(E, alpha), true, ambiguous, dupTie
		}
		// Port-bound vertices: one-port FIFO only, and only when the dual
		// chain is clean — a negative chain multiplier means resource
		// selection wants a drop first, so scanning the port vertices of
		// the current (too large) enrolled set would be wasted work.
		loadHint := -1
		if dualOK && !portOK && !lifo && sc.Model == schedule.OnePort {
			loadBest := math.Inf(-1)
			for k := m - 1; k >= 0; k-- {
				va, mu, ok, lh, lw := s.fifoPortVertex(p, subOrder, k)
				if ok && s.chainDroppedOK(sc, E, va, s.lam[:m], mu, lifo) {
					if rec != nil {
						rec.set(E, va, s.lam[:m], mu, subOrder[k])
					}
					return expand(E, va), true, ambiguous, dupTie
				}
				// Prefer the hint of the least infeasible vertex: its
				// structure sits closest to the optimum's.
				if lh >= 0 && lw > loadBest {
					loadBest, loadHint = lw, lh
				}
			}
		}
		if m == 1 {
			break
		}
		drop := m - 1
		switch {
		case hint >= 0:
			drop = hint
		case !portOK:
			// Port-bound level with a clean relaxed dual: the port vertices'
			// load hints conflate the slack row with the drop candidate (the
			// most negative load sits at the slack row itself), so resource
			// selection at a saturated port prefers shedding the worker that
			// consumes the most port time per unit load (largest c+d); the
			// retry pass trusts the vertices' load hints instead.
			wc := s.derivedCosts(p)
			worstG := -1.0
			greedy := drop
			for r, i := range subOrder {
				if g := wc[i].g; g > worstG {
					worstG, greedy = g, r
				}
			}
			if loadHint >= 0 && loadHint != greedy {
				ambiguous = true
			}
			drop = greedy
			if preferLoadHint && loadHint >= 0 {
				drop = loadHint
			}
			// Repeated (c, d) pairs tie the drop criteria exactly; the
			// duplicates differ only in w and send rank, either of which
			// can be the one resource selection wants gone. Whatever
			// candidate the pass's policy chose, record whether it has a
			// twin and, on the branch-and-certify passes, divert the drop
			// to that twin — applied after the load-hint override so the
			// (loadHint, dupAlt) pass explores a genuinely different path
			// from the loadHint one.
			dw := &wc[subOrder[drop]]
			for r, i := range subOrder {
				if r != drop && wc[i].c == dw.c && wc[i].d == dw.d {
					dupTie = true
					if dupAlt {
						drop = r
					}
					break
				}
			}
		case loadHint >= 0:
			drop = loadHint
		}
		copy(enrolled[drop:], enrolled[drop+1:m])
	}
	return nil, false, ambiguous, dupTie
}

// chainDroppedOK verifies the full-LP certificate parts that concern the
// dropped workers of a chain candidate, in O(q) via prefix sums:
//
//   - primal: every dropped worker's row must hold as an inequality,
//     LHS_j = Σ_{i∈E, before j in σ1} α_i·c_i + Σ_{i∈E, after j in σ2} α_i·d_i ≤ 1
//     (the dropped worker's own terms vanish with α_j = 0);
//   - dual: Σ_{i∈E} λ_i·A_{ij} + μ·(c_j+d_j) ≥ 1 with
//     A_{ij} = c_j·[j before i in σ1] + d_j·[j after i in σ2].
//
// For FIFO both conditions reduce to prefix/suffix sums over send
// positions; for LIFO "after in σ2" is "before in σ1". alpha and lam are
// indexed by enrolled index; mu is the port multiplier of the candidate
// (zero for all-tight candidates).
func (s *Session) chainDroppedOK(sc Scenario, E []int, alpha, lam []float64, mu float64, lifo bool) bool {
	q := len(sc.Send)
	m := len(E)
	if m == q {
		return true
	}
	wc := s.derivedCosts(sc.Platform)
	tol := numeric.CertTol
	ei := 0 // enrolled index of the next enrolled position ≥ cursor
	preAC, preAD, preLam := 0.0, 0.0, 0.0
	totAD, totLam := 0.0, 0.0
	for r := 0; r < m; r++ {
		totAD += alpha[r] * wc[sc.Send[E[r]]].d
		totLam += lam[r]
	}
	for pos := 0; pos < q; pos++ {
		if ei < m && E[ei] == pos {
			w := &wc[sc.Send[pos]]
			preAC += alpha[ei] * w.c
			preAD += alpha[ei] * w.d
			preLam += lam[ei]
			ei++
			continue
		}
		// Dropped worker at this send position.
		wj := &wc[sc.Send[pos]]
		var rowLHS, dualLHS float64
		if lifo {
			// σ2 = reverse σ1: "after j in σ2" = "before j in σ1", so both
			// the c and d terms of A_{ij} select enrolled rows after pos.
			rowLHS = preAC + preAD
			dualLHS = wj.g * (totLam - preLam)
		} else {
			// FIFO: "after j in σ2" = "at or after j in σ1".
			rowLHS = preAC + (totAD - preAD)
			dualLHS = wj.c*(totLam-preLam) + wj.d*preLam
		}
		dualLHS += mu * wj.g
		if rowLHS > 1+tol || dualLHS < 1-tol {
			return false
		}
	}
	return true
}
