package eval

import (
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/numeric"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// This file implements the eval-layer state of the branch-and-bound search
// over return orders: the pair search fixes a send order σ1 and explores
// the space of return orders σ2 as a tree, committing one worker at a time
// to the DEEPEST open return position (the last returner first, then the
// second-to-last, ...). A ReturnPrefix maintains, across Push/Pop moves of
// that exploration, the q×q matrix of the node's prefix relaxation:
//
//   - a committed worker's constraint row is EXACT — every worker returning
//     at or after it is committed too (the committed set is a suffix of σ2),
//     so its return-message terms are fully determined;
//   - an uncommitted worker's row keeps the send prefix, its own w and d,
//     and the d terms of every committed worker (all of which provably
//     return after it) — a valid relaxation of its row under ANY completion
//     of the prefix, since completions only add d terms of other
//     uncommitted workers to the left-hand side.
//
// The relaxation therefore contains every completion's feasible region, so
// its optimal throughput is an admissible upper bound on the subtree (an
// admissible LOWER bound on the subtree's makespan, the branch-and-bound
// view): the search can discard a whole subtree of return orders the
// moment the bound cannot beat the incumbent. Committing one more worker
// only adds d terms to the uncommitted rows and leaves the newly committed
// row unchanged, so the bound is monotone non-increasing along a root-leaf
// path, and at a leaf (all workers committed) the relaxation IS the
// scenario's all-tight system — the bound collapses to the exact optimum
// whenever the tight candidate certifies, making most leaf evaluations
// free.
//
// With nothing committed the relaxation coincides with Session.SendBound's
// LP (each row keeps only the send prefix, w and the worker's own d), but
// it is solved here through the tight-system machinery of PR 2/3 instead
// of a fresh simplex per send order: the root system is lower triangular
// (a LIFO-shaped chain), deeper systems are one LU factorisation, and the
// transpose solve reuses the cached-dual certificate logic — any
// non-negative dual vector of the relaxation bounds the subtree by weak
// duality even when the primal candidate is infeasible.

// ReturnPrefix is the per-σ1 state of the return-order branch-and-bound.
// It owns its matrix and factorisation scratch (no aliasing with the
// Session buffers used by the leaf fallback), and is reused across send
// orders via Reset. Not safe for concurrent use.
type ReturnPrefix struct {
	sess  *Session
	p     *platform.Platform
	model schedule.Model
	mode  Mode
	q     int

	send platform.Order // fixed σ1 (copied by Reset)

	r     []float64 // q×q relaxed tight matrix of the current node
	lu    []float64 // factorisation scratch (copy of r, clobbered)
	piv   []int
	alpha []float64 // primal candidate of the relaxation
	lam   []float64 // dual candidate (transpose solve)

	// Dual-descent scratch (the bound-tightening loop of Bound).
	rows   []int     // active dual rows
	sub    []float64 // row/column-restricted system
	subLam []float64 // multipliers of the restricted system
	full   []float64 // restricted multipliers scattered back to all rows

	tail []int  // committed send positions, deepest return slot first
	open []bool // by send position: not yet committed
	ret  []int  // scratch: materialised return order (worker indices)
}

// NewReturnPrefix prepares a return-order branch-and-bound state for
// repeated use over send orders of the full platform (Reset fixes each
// σ1). The float64 tight-system bounds cannot certify exact-rational
// comparisons, so ExactRational is rejected.
func (s *Session) NewReturnPrefix(p *platform.Platform, model schedule.Model, mode Mode) (*ReturnPrefix, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if model != schedule.OnePort && model != schedule.TwoPort {
		return nil, fmt.Errorf("eval: unknown model %v", model)
	}
	if !mode.Valid() {
		return nil, fmt.Errorf("eval: unknown mode %d", int(mode))
	}
	if mode == ExactRational {
		return nil, fmt.Errorf("eval: return-prefix bounds are float64 computations and cannot certify exact-rational comparisons")
	}
	q := p.P()
	return &ReturnPrefix{
		sess: s, p: p, model: model, mode: mode, q: q,
		send:   make(platform.Order, q),
		r:      make([]float64, q*q),
		lu:     make([]float64, q*q),
		piv:    make([]int, q),
		alpha:  make([]float64, q),
		lam:    make([]float64, q),
		rows:   make([]int, q),
		sub:    make([]float64, q*q),
		subLam: make([]float64, q),
		full:   make([]float64, q),
		tail:   make([]int, 0, q),
		open:   make([]bool, q),
		ret:    make([]int, q),
	}, nil
}

// Reset fixes a new send order (copied; the branch-and-bound drivers pass
// the live permutation slice of the enumeration) and empties the committed
// tail. The root relaxation matrix — send-prefix c terms, diagonal w + d —
// is rebuilt in O(q²).
func (rp *ReturnPrefix) Reset(send platform.Order) error {
	if len(send) != rp.q {
		return fmt.Errorf("eval: return-prefix search enrolls all %d workers, got a %d-worker send order", rp.q, len(send))
	}
	copy(rp.send, send)
	buildTightBase(rp.r, rp.p, rp.send)
	for s := 0; s < rp.q; s++ {
		rp.r[s*rp.q+s] += rp.p.Workers[rp.send[s]].D
		rp.open[s] = true
	}
	rp.tail = rp.tail[:0]
	return nil
}

// Depth returns the number of committed return positions.
func (rp *ReturnPrefix) Depth() int { return len(rp.tail) }

// Open reports whether the worker at send position pos is still
// uncommitted.
func (rp *ReturnPrefix) Open(pos int) bool { return rp.open[pos] }

// Push commits the worker at send position pos to the deepest open return
// position. Its own row is already exact (it carries its own d and every
// previously committed worker's d); the other uncommitted rows each gain
// its d term, since that worker now provably returns after them. O(q).
func (rp *ReturnPrefix) Push(pos int) {
	d := rp.p.Workers[rp.send[pos]].D
	for s := 0; s < rp.q; s++ {
		if rp.open[s] && s != pos {
			rp.r[s*rp.q+pos] += d
		}
	}
	rp.open[pos] = false
	rp.tail = append(rp.tail, pos)
}

// Pop undoes the deepest Push.
func (rp *ReturnPrefix) Pop() {
	n := len(rp.tail) - 1
	pos := rp.tail[n]
	rp.tail = rp.tail[:n]
	rp.open[pos] = true
	d := rp.p.Workers[rp.send[pos]].D
	for s := 0; s < rp.q; s++ {
		if rp.open[s] && s != pos {
			rp.r[s*rp.q+pos] -= d
		}
	}
}

// Bound evaluates the current node's relaxation through its all-tight
// candidate: one LU factorisation, a primal solve α = A⁻¹·1 and a
// transpose solve λ = A⁻ᵀ·1.
//
//   - ok reports that a usable bound was computed at all (false on a
//     singular or numerically broken system — the caller keeps its parent
//     bound, which remains admissible by monotonicity);
//   - exact reports the full KKT certificate (α ≥ 0, port feasible,
//     λ ≥ 0): the bound then equals the relaxation's LP optimum — at a
//     leaf, the scenario's exact optimal throughput;
//   - otherwise dualDescentBound finds a tight dual-feasible point of the
//     relaxation; its value bounds the subtree from above by weak duality.
func (rp *ReturnPrefix) Bound() (bound float64, exact, ok bool) {
	q := rp.q
	copy(rp.lu, rp.r)
	if !luFactor(rp.lu, rp.piv, q) {
		return 0, false, false
	}
	for i := range rp.alpha {
		rp.alpha[i] = 1
		rp.lam[i] = 1
	}
	luSolve(rp.lu, rp.piv, q, rp.alpha)
	luSolveTranspose(rp.lu, rp.piv, q, rp.lam)
	tol := numeric.CertTol
	dualOK := true
	for _, l := range rp.lam {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			return 0, false, false
		}
		if l < -tol {
			dualOK = false
		}
	}
	primalOK := true
	for _, a := range rp.alpha {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return 0, false, false
		}
		if a < -tol {
			primalOK = false
		}
	}
	if primalOK && dualOK && portFeasible(rp.p, rp.send, rp.alpha, rp.model) {
		// Strong duality: all rows of the relaxation tight, duals
		// non-negative, port row slack with a zero multiplier — the
		// candidate is the relaxation's optimum.
		return sum(rp.alpha), true, true
	}
	return rp.dualDescentBound(dualOK)
}

// dualDescentBound constructs a tight dual-feasible point of the node's
// relaxation when the all-tight candidate failed its certificate, walking
// the dual active set instead of merely clamping:
//
//  1. while some multiplier is negative, zero the most negative row's
//     multiplier and re-solve stationarity on the remaining rows only
//     ((R_EE)ᵀ·λ_E = 1 — the relaxation's resource selection, seen from
//     the dual side);
//  2. clamp whatever negativity survives the capped descent to zero —
//     harmless for feasibility, since every matrix entry is non-negative;
//  3. repair the dual constraints of columns the reduced row set leaves
//     uncovered with the port-row multiplier: μ = max_j deficit_j/g_j
//     restores Σ_i λ_i·R_ij + μ·g_j ≥ 1 for every column at once.
//
// The result is dual feasible by construction, so Σλ + μ·(#port rows)
// bounds every completion of the prefix by weak duality; it is far tighter
// than clamping alone because re-solving redistributes the dropped rows'
// weight instead of keeping their inflated complements. rp.lam must hold
// the full-system transpose solve on entry.
func (rp *ReturnPrefix) dualDescentBound(dualOK bool) (bound float64, exact, ok bool) {
	q := rp.q
	tol := numeric.CertTol
	lam := rp.full[:q]
	copy(lam, rp.lam)
	if !dualOK {
		rows := rp.rows[:0]
		for i := 0; i < q; i++ {
			rows = append(rows, i)
		}
		// Each iteration drops one row and re-solves; q−1 drops would reach
		// a single row, so the loop is bounded without an explicit cap.
		for len(rows) > 1 {
			worst, at := -tol, -1
			for r, i := range rows {
				if lam[i] < worst {
					worst, at = lam[i], r
				}
			}
			if at < 0 {
				break // every remaining multiplier is (near) non-negative
			}
			rows[at] = rows[len(rows)-1]
			rows = rows[:len(rows)-1]
			m := len(rows)
			sub := rp.sub[:m*m]
			for r, i := range rows {
				for c, j := range rows {
					sub[r*m+c] = rp.r[i*q+j]
				}
			}
			if !luFactor(sub, rp.piv[:m], m) {
				// Singular restriction: keep the previous iterate (clamped
				// below), still feasible.
				break
			}
			subLam := rp.subLam[:m]
			for r := range subLam {
				subLam[r] = 1
			}
			luSolveTranspose(sub, rp.piv[:m], m, subLam)
			bad := false
			for _, l := range subLam {
				if math.IsNaN(l) || math.IsInf(l, 0) {
					bad = true
					break
				}
			}
			if bad {
				break
			}
			for i := range lam {
				lam[i] = 0
			}
			for r, i := range rows {
				lam[i] = subLam[r]
			}
		}
	}
	lamSum := 0.0
	for i, l := range lam {
		if l < 0 {
			lam[i] = 0
			l = 0
		}
		lamSum += l
	}
	// Column repair: μ lifts every uncovered dual constraint at once. The
	// deficit scan prices each column of the current matrix against the
	// clamped multipliers.
	deficit := 0.0
	for j := 0; j < q; j++ {
		col := 0.0
		for i := 0; i < q; i++ {
			col += lam[i] * rp.r[i*q+j]
		}
		w := rp.p.Workers[rp.send[j]]
		if short := 1 - col; short > 0 {
			if d := short / (w.C + w.D); d > deficit {
				deficit = d
			}
		}
	}
	bound = lamSum + deficit
	if rp.model == schedule.TwoPort {
		// μ on both port rows (coefficients c_j and d_j sum to g_j), each
		// contributing its right-hand side once.
		bound = lamSum + 2*deficit
	}
	if math.IsNaN(bound) || math.IsInf(bound, 0) {
		return 0, false, false
	}
	return bound / (1 - tol), false, true
}

// ReturnOrder materialises the committed return order (worker indices,
// first returner first). Valid only at full depth; the slice is reused
// across calls and must be cloned if retained.
func (rp *ReturnPrefix) ReturnOrder() platform.Order {
	for k, pos := range rp.tail {
		rp.ret[rp.q-1-k] = rp.send[pos]
	}
	return rp.ret
}

// LeafThroughput evaluates the fully committed return order exactly when
// Bound could not certify the leaf: the active-set descent over the
// already-assembled full tight matrix (port-bound and resource-selection
// vertices), then the simplex. Mirrors FixedSend.Throughput's tiers.
func (rp *ReturnPrefix) LeafThroughput() (float64, error) {
	if len(rp.tail) != rp.q {
		return 0, fmt.Errorf("eval: LeafThroughput on a partial return prefix (%d of %d committed)", len(rp.tail), rp.q)
	}
	s := rp.sess
	sc := Scenario{Platform: rp.p, Send: rp.send, Return: rp.ReturnOrder(), Model: rp.model}
	if rp.mode == Simplex {
		_, rho, err := s.simplexLoads(sc)
		return rho, err
	}
	// tightSearchOn reads the session's retPos table (worker → return
	// position) for the dropped-worker certificate terms.
	retPos := growInt(&s.retPos, rp.p.P())
	for k, i := range sc.Return {
		retPos[i] = k
	}
	if alpha, ok := s.tightSearchOn(sc, rp.r, true, -1); ok {
		return sum(alpha), nil
	}
	_, rho, err := s.simplexLoads(sc)
	return rho, err
}

// ReturnPrefixBound returns the exact optimum of the σ2-prefix relaxation:
// the best throughput achievable when the workers named by tail (send
// positions, in commitment order — the LAST returner first) occupy the
// last len(tail) return positions and every other row is relaxed to its
// send prefix, own processing, own return message and the committed
// returns. The bound dominates the true optimum of every completion of
// the prefix (equivalently, the implied makespan bound load/ρ never
// exceeds any completion's true makespan), it is monotone non-increasing
// as the prefix grows, and at a full prefix it equals the scenario's
// optimal throughput.
//
// The branch-and-bound search computes the same quantity incrementally
// through ReturnPrefix; this one-shot form exists for property tests and
// diagnostics, and falls back to solving the relaxation LP outright when
// the tight candidate does not certify, so the returned value is always
// the relaxation's exact optimum.
func (s *Session) ReturnPrefixBound(p *platform.Platform, send platform.Order, model schedule.Model, tail []int) (float64, error) {
	sc := Scenario{Platform: p, Send: send, Return: send, Model: model}
	if err := validate(sc); err != nil {
		return 0, err
	}
	if len(send) != p.P() {
		return 0, fmt.Errorf("eval: return-prefix bound enrolls all %d workers, got %d", p.P(), len(send))
	}
	rp, err := s.NewReturnPrefix(p, model, Auto)
	if err != nil {
		return 0, err
	}
	if err := rp.Reset(send); err != nil {
		return 0, err
	}
	for _, pos := range tail {
		if pos < 0 || pos >= rp.q {
			return 0, fmt.Errorf("eval: tail names send position %d outside [0, %d)", pos, rp.q)
		}
		if !rp.open[pos] {
			return 0, fmt.Errorf("eval: tail commits send position %d twice", pos)
		}
		rp.Push(pos)
	}
	if bound, exact, ok := rp.Bound(); ok && exact {
		return bound, nil
	}
	sol, err := rp.relaxationLP().Solve()
	if err != nil {
		return 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("eval: return-prefix relaxation LP terminated %v (internal error)", sol.Status)
	}
	return sol.Objective, nil
}

// relaxationLP builds the node's relaxation as an explicit LP (the
// always-correct fallback of the one-shot ReturnPrefixBound).
func (rp *ReturnPrefix) relaxationLP() *lp.Problem {
	q := rp.q
	prob := lp.NewMaximize()
	for range rp.send {
		prob.AddVar("", 1)
	}
	coefs := make([]lp.Coef, 0, q)
	for s := 0; s < q; s++ {
		coefs = coefs[:0]
		for t := 0; t < q; t++ {
			if v := rp.r[s*q+t]; v != 0 {
				coefs = append(coefs, lp.Coef{Var: t, Value: v})
			}
		}
		prob.AddConstraint("", coefs, lp.LE, 1)
	}
	port := make([]lp.Coef, 0, q)
	if rp.model == schedule.TwoPort {
		for t, j := range rp.send {
			port = append(port, lp.Coef{Var: t, Value: rp.p.Workers[j].C})
		}
		prob.AddConstraint("", port, lp.LE, 1)
		port = port[:0]
		for t, j := range rp.send {
			port = append(port, lp.Coef{Var: t, Value: rp.p.Workers[j].D})
		}
		prob.AddConstraint("", port, lp.LE, 1)
	} else {
		for t, j := range rp.send {
			port = append(port, lp.Coef{Var: t, Value: rp.p.Workers[j].C + rp.p.Workers[j].D})
		}
		prob.AddConstraint("", port, lp.LE, 1)
	}
	return prob
}
