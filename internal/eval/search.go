package eval

import (
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/numeric"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// This file implements the eval-layer state of the branch-and-bound search
// over return orders: the pair search fixes a send order σ1 and explores
// the space of return orders σ2 as a tree, committing one worker at a time
// to the DEEPEST open return position (the last returner first, then the
// second-to-last, ...). A ReturnPrefix maintains, across Push/Pop moves of
// that exploration, the q×q matrix of the node's prefix relaxation:
//
//   - a committed worker's constraint row is EXACT — every worker returning
//     at or after it is committed too (the committed set is a suffix of σ2),
//     so its return-message terms are fully determined;
//   - an uncommitted worker's row keeps the send prefix, its own w and d,
//     and the d terms of every committed worker (all of which provably
//     return after it) — a valid relaxation of its row under ANY completion
//     of the prefix, since completions only add d terms of other
//     uncommitted workers to the left-hand side.
//
// The relaxation therefore contains every completion's feasible region, so
// its optimal throughput is an admissible upper bound on the subtree (an
// admissible LOWER bound on the subtree's makespan, the branch-and-bound
// view): the search can discard a whole subtree of return orders the
// moment the bound cannot beat the incumbent. Committing one more worker
// only adds d terms to the uncommitted rows and leaves the newly committed
// row unchanged, so the bound is monotone non-increasing along a root-leaf
// path, and at a leaf (all workers committed) the relaxation IS the
// scenario's all-tight system — the bound collapses to the exact optimum
// whenever the tight candidate certifies, making most leaf evaluations
// free.
//
// With nothing committed the relaxation coincides with Session.SendBound's
// LP (each row keeps only the send prefix, w and the worker's own d), but
// it is solved here through the tight-system machinery of PR 2/3 instead
// of a fresh simplex per send order: the root system is lower triangular
// (a LIFO-shaped chain), deeper systems are one LU factorisation, and the
// transpose solve reuses the cached-dual certificate logic — any
// non-negative dual vector of the relaxation bounds the subtree by weak
// duality even when the primal candidate is infeasible.

// ReturnPrefix is the per-σ1 state of the return-order branch-and-bound.
// It owns its matrix and factorisation scratch (no aliasing with the
// Session buffers used by the leaf fallback), and is reused across send
// orders via Reset. Not safe for concurrent use.
type ReturnPrefix struct {
	sess  *Session
	p     *platform.Platform
	model schedule.Model
	mode  Mode
	q     int

	send platform.Order // fixed σ1 (copied by Reset)

	r     []float64 // q×q relaxed tight matrix of the current node
	base  []float64 // Reset-time matrix (the exact Pop restore target)
	lu    []float64 // factorisation scratch (copy of r, clobbered)
	piv   []int
	alpha []float64 // primal candidate of the relaxation
	lam   []float64 // dual candidate (transpose solve)

	// Incremental factorisation state (see Bound): the maintained inverse
	// M ≈ r⁻¹, its row sums α̃ = M·1 and column sums λ̃ = Mᵀ·1, all kept
	// current across Push/Pop by Sherman–Morrison rank-one updates. The
	// update to M itself is LAZY: a Push computes the rank-one factors
	// (y = M·c, δ) and updates only the O(q) candidate vectors; M absorbs
	// the factors (materialize) only when the child is expanded further.
	// A child that is pushed, bounded and popped — the overwhelming
	// majority of branch-and-bound nodes — therefore costs one M·c
	// product, not three full O(q²) matrix passes.
	m             []float64
	malpha, mlam  []float64
	my, mrow      []float64 // rank-one update scratch
	mcIdx         []int     // support of the column change (the open rows ≠ pos)
	mcD           float64   // its uniform value: +d on Push, −d on Pop
	mValid        bool
	incremental   bool
	sinceRefactor int

	// Per-depth lazy-update stacks, indexed by the tail level a Push
	// created: the rank-one factors (y, δ) and the parent's candidate
	// vectors, restored on Pop in O(q). msavedOK marks levels whose stack
	// entries are live; mmat marks levels whose factors were materialised
	// into M (their Pop reverses the update via M += y·(δ·M[pos,:])/δ,
	// using M'[pos,:] = M[pos,:]/δ). mPending is the single level (at most
	// one, the deepest) whose factors are not yet in M, or -1.
	myStack          [][]float64
	msavedA, msavedL [][]float64
	mden             []float64
	msavedOK, mmat   []bool
	mPending         int

	// Dual-descent scratch (the bound-tightening loop of Bound).
	rows   []int     // active dual rows
	sub    []float64 // row/column-restricted system
	subLam []float64 // multipliers of the restricted system
	full   []float64 // restricted multipliers scattered back to all rows

	tail []int  // committed send positions, deepest return slot first
	open []bool // by send position: not yet committed
	ret  []int  // scratch: materialised return order (worker indices)
}

// NewReturnPrefix prepares a return-order branch-and-bound state for
// repeated use over send orders of the full platform (Reset fixes each
// σ1). The float64 tight-system bounds cannot certify exact-rational
// comparisons, so ExactRational is rejected.
func (s *Session) NewReturnPrefix(p *platform.Platform, model schedule.Model, mode Mode) (*ReturnPrefix, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if model != schedule.OnePort && model != schedule.TwoPort {
		return nil, fmt.Errorf("eval: unknown model %v", model)
	}
	if !mode.Valid() {
		return nil, fmt.Errorf("eval: unknown mode %d", int(mode))
	}
	if mode == ExactRational {
		return nil, fmt.Errorf("eval: return-prefix bounds are float64 computations and cannot certify exact-rational comparisons")
	}
	q := p.P()
	stack := func() [][]float64 {
		backing := make([]float64, q*q)
		s := make([][]float64, q)
		for i := range s {
			s[i] = backing[i*q : (i+1)*q]
		}
		return s
	}
	return &ReturnPrefix{
		sess: s, p: p, model: model, mode: mode, q: q,
		send:        make(platform.Order, q),
		r:           make([]float64, q*q),
		base:        make([]float64, q*q),
		lu:          make([]float64, q*q),
		piv:         make([]int, q),
		alpha:       make([]float64, q),
		lam:         make([]float64, q),
		m:           make([]float64, q*q),
		malpha:      make([]float64, q),
		mlam:        make([]float64, q),
		mcIdx:       make([]int, 0, q),
		my:          make([]float64, q),
		mrow:        make([]float64, q),
		myStack:     stack(),
		msavedA:     stack(),
		msavedL:     stack(),
		mden:        make([]float64, q),
		msavedOK:    make([]bool, q),
		mmat:        make([]bool, q),
		mPending:    -1,
		rows:        make([]int, q),
		sub:         make([]float64, q*q),
		subLam:      make([]float64, q),
		full:        make([]float64, q),
		tail:        make([]int, 0, q),
		open:        make([]bool, q),
		ret:         make([]int, q),
		incremental: true,
	}, nil
}

// SetIncremental toggles the Sherman–Morrison update path of Bound
// (default on). Off, every Bound factorises the node matrix from scratch —
// the reference the update-vs-refactor agreement test and the
// node-throughput benchmark compare against.
func (rp *ReturnPrefix) SetIncremental(on bool) {
	rp.incremental = on
	rp.mValid = false
}

// Reset fixes a new send order (copied; the branch-and-bound drivers pass
// the live permutation slice of the enumeration) and empties the committed
// tail. The root relaxation matrix — send-prefix c terms, diagonal w + d —
// is rebuilt in O(q²).
func (rp *ReturnPrefix) Reset(send platform.Order) error {
	if len(send) != rp.q {
		return fmt.Errorf("eval: return-prefix search enrolls all %d workers, got a %d-worker send order", rp.q, len(send))
	}
	copy(rp.send, send)
	buildTightBase(rp.r, rp.p, rp.send)
	for s := 0; s < rp.q; s++ {
		rp.r[s*rp.q+s] += rp.p.Workers[rp.send[s]].D
		rp.open[s] = true
	}
	copy(rp.base, rp.r)
	rp.tail = rp.tail[:0]
	rp.mValid = false // lazily refactorised by the first Bound
	rp.mPending = -1
	return nil
}

// Depth returns the number of committed return positions.
func (rp *ReturnPrefix) Depth() int { return len(rp.tail) }

// Open reports whether the worker at send position pos is still
// uncommitted.
func (rp *ReturnPrefix) Open(pos int) bool { return rp.open[pos] }

// Push commits the worker at send position pos to the deepest open return
// position. Its own row is already exact (it carries its own d and every
// previously committed worker's d); the other uncommitted rows each gain
// its d term, since that worker now provably returns after them. The
// column change is mirrored into the maintained bound state as a lazy
// Sherman–Morrison rank-one update (see pushUpdate), so the whole move is
// O(q²) with a small constant — one M·c product.
func (rp *ReturnPrefix) Push(pos int) {
	d := rp.p.Workers[rp.send[pos]].D
	q := rp.q
	rp.mcIdx = rp.mcIdx[:0]
	for s := 0; s < q; s++ {
		if rp.open[s] && s != pos {
			rp.r[s*q+pos] += d
			rp.mcIdx = append(rp.mcIdx, s)
		}
	}
	// The update path treats the column change as the uniform d on the
	// support rows. The true applied deltas differ by at most one rounding
	// each ((x+d)−x ≠ d in general) — an O(ε) perturbation of M, far below
	// mResidTol and absorbed by the residual-gated refine/refactor cycle.
	rp.mcD = d
	rp.open[pos] = false
	rp.tail = append(rp.tail, pos)
	rp.pushUpdate(pos)
}

// Pop undoes the deepest Push by restoring column pos from the Reset-time
// base matrix rather than subtracting d: float addition is not exactly
// reversible ((x+d)−d ≠ x in general), but an open row's entry in an open
// column ALWAYS equals its base value — only committed columns carry
// d terms — so the assignment is the exact inverse and the node matrix
// stays a pure function of the committed prefix, independent of the
// exploration path that reached it. That purity is what makes leaf values
// (and with them the search winner) byte-identical across serial and
// parallel exploration.
func (rp *ReturnPrefix) Pop() {
	n := len(rp.tail) - 1
	pos := rp.tail[n]
	rp.tail = rp.tail[:n]
	rp.open[pos] = true
	q := rp.q
	rp.mcIdx = rp.mcIdx[:0]
	for s := 0; s < q; s++ {
		if rp.open[s] && s != pos {
			idx := s*q + pos
			rp.r[idx] = rp.base[idx]
			rp.mcIdx = append(rp.mcIdx, s)
		}
	}
	rp.mcD = -rp.p.Workers[rp.send[pos]].D
	rp.popUpdate(pos, n)
}

// pushUpdate records the rank-one change of the Push that just committed
// level len(tail)-1: it computes the Sherman–Morrison factors y = M·c and
// δ = 1 + y[pos], saves the parent's candidate vectors, and applies the
// O(q) vector updates
//
//	α̃' = α̃ − y·α̃[pos]/δ,   λ̃' = λ̃ − (Σy)·M[pos,:]/δ,
//
// but does NOT touch M: the factors wait on the level's stack entry and
// are folded into M (materialize) only if a deeper Push needs them. At
// most one level is ever pending — the deepest.
func (rp *ReturnPrefix) pushUpdate(pos int) {
	level := len(rp.tail) - 1
	if !rp.incremental || !rp.mValid {
		rp.msavedOK[level] = false
		return
	}
	if rp.mPending >= 0 {
		rp.materialize()
	}
	q := rp.q
	y := rp.myStack[level]
	d := rp.mcD
	idx := rp.mcIdx
	ysum := 0.0
	for i := 0; i < q; i++ {
		mi := rp.m[i*q : (i+1)*q]
		s := 0.0
		for _, j := range idx {
			s += mi[j]
		}
		s *= d
		y[i] = s
		ysum += s
	}
	den := 1 + y[pos]
	if math.IsNaN(den) || math.Abs(den) < 1e-12 {
		rp.mValid = false
		rp.msavedOK[level] = false
		return
	}
	copy(rp.msavedA[level], rp.malpha)
	copy(rp.msavedL[level], rp.mlam)
	f := rp.malpha[pos] / den
	for i := 0; i < q; i++ {
		rp.malpha[i] -= y[i] * f
	}
	g := ysum / den
	row := rp.m[pos*q : (pos+1)*q] // pre-update row: M is not yet materialised
	for j := 0; j < q; j++ {
		rp.mlam[j] -= g * row[j]
	}
	rp.mden[level] = den
	rp.msavedOK[level] = true
	rp.mmat[level] = false
	rp.mPending = level
}

// materialize folds the pending level's rank-one factors into M:
// M' = M − (y/δ)·M[pos,:].
func (rp *ReturnPrefix) materialize() {
	level := rp.mPending
	rp.mPending = -1
	q := rp.q
	y := rp.myStack[level]
	den := rp.mden[level]
	pos := rp.tail[level]
	row := rp.mrow
	copy(row, rp.m[pos*q:(pos+1)*q])
	for i := 0; i < q; i++ {
		f := y[i] / den
		if f == 0 {
			continue
		}
		mi := rp.m[i*q : (i+1)*q]
		for j := 0; j < q; j++ {
			mi[j] -= f * row[j]
		}
	}
	rp.mmat[level] = true
}

// popUpdate undoes level's pushUpdate. With a live stack entry the
// parent's candidate vectors restore by copy; M needs work only if the
// level's factors were materialised, and then the reverse update is free
// of new M·c products: from M' = M − (y/δ)·row with row = M[pos,:] comes
// M'[pos,:] = row/δ, so M = M' + y·M'[pos,:]. Levels without a live entry
// (pushed while invalid, or crossed by a refactor) fall back to the
// generic column update against the already-restored parent matrix.
func (rp *ReturnPrefix) popUpdate(pos, level int) {
	if !rp.incremental || !rp.mValid {
		return
	}
	if !rp.msavedOK[level] {
		rp.mColumnUpdate(pos)
		return
	}
	rp.msavedOK[level] = false
	if rp.mPending == level {
		rp.mPending = -1
	} else if rp.mmat[level] {
		q := rp.q
		y := rp.myStack[level]
		row := rp.mrow
		copy(row, rp.m[pos*q:(pos+1)*q])
		for i := 0; i < q; i++ {
			f := y[i]
			if f == 0 {
				continue
			}
			mi := rp.m[i*q : (i+1)*q]
			for j := 0; j < q; j++ {
				mi[j] += f * row[j]
			}
		}
	}
	copy(rp.malpha, rp.msavedA[level])
	copy(rp.mlam, rp.msavedL[level])
}

// mColumnUpdate folds the column change c = mcD·1_mcIdx (support: open rows,
// already applied to rp.r at column pos) into the maintained inverse by
// the Sherman–Morrison identity
//
//	(A + c·e_posᵀ)⁻¹ = M − (M·c)(e_posᵀ·M)/(1 + (M·c)_pos),
//
// updating the row sums α̃ and column sums λ̃ from the same rank-one
// factors in O(q). A vanishing denominator means the updated matrix is
// (numerically) singular through this update; the state is marked invalid
// and the next Bound refactorises from scratch.
func (rp *ReturnPrefix) mColumnUpdate(pos int) {
	if !rp.incremental || !rp.mValid {
		return
	}
	q := rp.q
	y := rp.my
	d := rp.mcD
	idx := rp.mcIdx
	ysum := 0.0
	for i := 0; i < q; i++ {
		mi := rp.m[i*q : (i+1)*q]
		s := 0.0
		for _, j := range idx {
			s += mi[j]
		}
		s *= d
		y[i] = s
		ysum += s
	}
	den := 1 + y[pos]
	if math.IsNaN(den) || math.Abs(den) < 1e-12 {
		rp.mValid = false
		return
	}
	row := rp.mrow
	copy(row, rp.m[pos*q:(pos+1)*q])
	apos := rp.malpha[pos]
	for i := 0; i < q; i++ {
		f := y[i] / den
		if f == 0 {
			continue
		}
		mi := rp.m[i*q : (i+1)*q]
		for j := 0; j < q; j++ {
			mi[j] -= f * row[j]
		}
		rp.malpha[i] -= f * apos
	}
	f := ysum / den
	for j := 0; j < q; j++ {
		rp.mlam[j] -= f * row[j]
	}
}

// refactorPeriod caps how many incremental Bound evaluations may ride one
// factorisation before a fresh one is forced, bounding inverse drift even
// when every periodic residual check passes.
const refactorPeriod = 256

// refineStride is the cadence (in Bound calls, a power of two) of the
// residual-checked refinement pass: between passes the maintained
// candidates are used as the rank-one updates left them. The stride
// bounds raw Sherman–Morrison drift to a handful of updates — orders of
// magnitude below both the 1e-12 agreement the eval tests pin and the
// 1e-9 pruning slack the search correctness rests on — while keeping the
// amortised refinement cost per node at 4q²/refineStride flops.
const refineStride = 16

// mResidTol gates the per-call residual of the maintained candidates
// (constraint right-hand sides are 1, so the tolerance is absolute): a
// larger residual means the rank-one trajectory degraded the inverse and
// the node is refactorised from scratch instead.
const mResidTol = 1e-8

// refactor rebuilds the maintained inverse, α̃ and λ̃ from a fresh LU of
// the current node matrix (O(q³), amortised over the O(q²) incremental
// moves between refactorisations).
func (rp *ReturnPrefix) refactor() bool {
	q := rp.q
	copy(rp.lu, rp.r)
	rp.mValid = false
	rp.sinceRefactor = 0
	// The fresh M belongs to the CURRENT node: every outstanding lazy
	// stack entry (factors relative to ancestors' M) is now void, so the
	// Pops crossing this node fall back to generic column updates.
	rp.mPending = -1
	for i := range rp.msavedOK {
		rp.msavedOK[i] = false
	}
	if !luFactor(rp.lu, rp.piv, q) {
		return false
	}
	col := rp.mrow
	for j := 0; j < q; j++ {
		for i := 0; i < q; i++ {
			col[i] = 0
		}
		col[j] = 1
		luSolve(rp.lu, rp.piv, q, col)
		for i := 0; i < q; i++ {
			v := col[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
			rp.m[i*q+j] = v
		}
	}
	for i := 0; i < q; i++ {
		rp.malpha[i] = 1
		rp.mlam[i] = 1
	}
	luSolve(rp.lu, rp.piv, q, rp.malpha)
	luSolveTranspose(rp.lu, rp.piv, q, rp.mlam)
	rp.mValid = true
	return true
}

// refine performs one step of iterative refinement on the maintained
// primal and dual candidates (α̃ += M·(1 − A·α̃), λ̃ += Mᵀ·(1 − Aᵀ·λ̃)),
// which pins them to the from-scratch solution to ~machine precision as
// long as M stays a reasonable approximate inverse — the property the
// update-vs-refactor agreement test relies on. Returns false (caller
// refactorises) when a pre-refinement residual exceeds mResidTol.
func (rp *ReturnPrefix) refine() bool {
	if rp.mPending >= 0 {
		rp.materialize() // the corrections below multiply by M
	}
	q := rp.q
	res := rp.my
	worst := 0.0
	for i := 0; i < q; i++ {
		ri := rp.r[i*q : (i+1)*q]
		s := 1.0
		for j := 0; j < q; j++ {
			s -= ri[j] * rp.malpha[j]
		}
		res[i] = s
		if a := math.Abs(s); !(a <= worst) {
			worst = a
		}
	}
	if !(worst <= mResidTol) {
		return false
	}
	for i := 0; i < q; i++ {
		mi := rp.m[i*q : (i+1)*q]
		s := 0.0
		for j := 0; j < q; j++ {
			s += mi[j] * res[j]
		}
		rp.malpha[i] += s
	}
	worst = 0.0
	for j := 0; j < q; j++ {
		s := 1.0
		for i := 0; i < q; i++ {
			s -= rp.r[i*q+j] * rp.mlam[i]
		}
		res[j] = s
		if a := math.Abs(s); !(a <= worst) {
			worst = a
		}
	}
	if !(worst <= mResidTol) {
		return false
	}
	for i := 0; i < q; i++ {
		s := 0.0
		for j := 0; j < q; j++ {
			s += rp.m[j*q+i] * res[j]
		}
		rp.mlam[i] += s
	}
	return true
}

// Bound evaluates the current node's relaxation through its all-tight
// candidate: one LU factorisation, a primal solve α = A⁻¹·1 and a
// transpose solve λ = A⁻ᵀ·1.
//
//   - ok reports that a usable bound was computed at all (false on a
//     singular or numerically broken system — the caller keeps its parent
//     bound, which remains admissible by monotonicity);
//   - exact reports the full KKT certificate (α ≥ 0, port feasible,
//     λ ≥ 0): the bound then equals the relaxation's LP optimum — at a
//     leaf, the scenario's exact optimal throughput;
//   - otherwise dualDescentBound finds a tight dual-feasible point of the
//     relaxation; its value bounds the subtree from above by weak duality.
//
// Two implementations share this contract. boundScratch is the O(q³)
// from-scratch path: LU of the node matrix, fresh solves. The incremental
// path reuses the Sherman–Morrison-maintained inverse and candidates
// (O(q²) per node: one refinement step plus certificate scans),
// refactorising when the maintained state is invalid, stale
// (refactorPeriod) or fails its residual gate. Leaves ALWAYS take the
// from-scratch path: a leaf value can become the search winner, and winner
// values must be pure functions of the orders — bit-for-bit independent of
// the Push/Pop trajectory — for the parallel searches to reproduce the
// serial result byte-identically.
func (rp *ReturnPrefix) Bound() (bound float64, exact, ok bool) {
	if !rp.incremental || len(rp.tail) == rp.q {
		return rp.boundScratch()
	}
	rp.sinceRefactor++
	if !rp.mValid || rp.sinceRefactor >= refactorPeriod {
		if !rp.refactor() {
			return 0, false, false
		}
	} else if rp.sinceRefactor%refineStride == 0 && !rp.refine() {
		if !rp.refactor() {
			return 0, false, false
		}
	}
	tol := numeric.CertTol
	dualOK := true
	for _, l := range rp.mlam {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			rp.mValid = false
			return 0, false, false
		}
		if l < -tol {
			dualOK = false
		}
	}
	primalOK := true
	for _, a := range rp.malpha {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			rp.mValid = false
			return 0, false, false
		}
		if a < -tol {
			primalOK = false
		}
	}
	if primalOK && dualOK && portFeasible(rp.p, rp.send, rp.malpha, rp.model) {
		return sum(rp.malpha), true, true
	}
	// dualDescentBound starts from rp.lam and is self-certifying against
	// the exact node matrix, so seeding it with the maintained (refined)
	// dual candidate is safe even if that candidate has drifted.
	copy(rp.lam, rp.mlam)
	return rp.dualDescentBound(dualOK)
}

func (rp *ReturnPrefix) boundScratch() (bound float64, exact, ok bool) {
	q := rp.q
	copy(rp.lu, rp.r)
	if !luFactor(rp.lu, rp.piv, q) {
		return 0, false, false
	}
	for i := range rp.alpha {
		rp.alpha[i] = 1
		rp.lam[i] = 1
	}
	luSolve(rp.lu, rp.piv, q, rp.alpha)
	luSolveTranspose(rp.lu, rp.piv, q, rp.lam)
	tol := numeric.CertTol
	dualOK := true
	for _, l := range rp.lam {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			return 0, false, false
		}
		if l < -tol {
			dualOK = false
		}
	}
	primalOK := true
	for _, a := range rp.alpha {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return 0, false, false
		}
		if a < -tol {
			primalOK = false
		}
	}
	if primalOK && dualOK && portFeasible(rp.p, rp.send, rp.alpha, rp.model) {
		// Strong duality: all rows of the relaxation tight, duals
		// non-negative, port row slack with a zero multiplier — the
		// candidate is the relaxation's optimum.
		return sum(rp.alpha), true, true
	}
	return rp.dualDescentBound(dualOK)
}

// dualDescentBound constructs a tight dual-feasible point of the node's
// relaxation when the all-tight candidate failed its certificate, walking
// the dual active set instead of merely clamping:
//
//  1. while some multiplier is negative, zero the most negative row's
//     multiplier and re-solve stationarity on the remaining rows only
//     ((R_EE)ᵀ·λ_E = 1 — the relaxation's resource selection, seen from
//     the dual side);
//  2. clamp whatever negativity survives the capped descent to zero —
//     harmless for feasibility, since every matrix entry is non-negative;
//  3. repair the dual constraints of columns the reduced row set leaves
//     uncovered with the port-row multiplier: μ = max_j deficit_j/g_j
//     restores Σ_i λ_i·R_ij + μ·g_j ≥ 1 for every column at once.
//
// The result is dual feasible by construction, so Σλ + μ·(#port rows)
// bounds every completion of the prefix by weak duality; it is far tighter
// than clamping alone because re-solving redistributes the dropped rows'
// weight instead of keeping their inflated complements. rp.lam must hold
// the full-system transpose solve on entry.
func (rp *ReturnPrefix) dualDescentBound(dualOK bool) (bound float64, exact, ok bool) {
	q := rp.q
	tol := numeric.CertTol
	lam := rp.full[:q]
	copy(lam, rp.lam)
	if !dualOK {
		rows := rp.rows[:0]
		for i := 0; i < q; i++ {
			rows = append(rows, i)
		}
		// Each iteration drops EVERY negative-multiplier row at once and
		// re-solves — one sub-factorisation prices the survivors together,
		// instead of one per dropped row. Still bounded: the row set
		// strictly shrinks, and any subset yields a dual-feasible point
		// after the clamp + column repair below.
		for len(rows) > 1 {
			worst, at := -tol, -1
			for r, i := range rows {
				if lam[i] < worst {
					worst, at = lam[i], r
				}
			}
			if at < 0 {
				break // every remaining multiplier is (near) non-negative
			}
			k := 0
			for _, i := range rows {
				if lam[i] >= -tol {
					rows[k] = i
					k++
				}
			}
			if k == 0 {
				// Every multiplier negative: keep all but the worst so the
				// restricted system stays non-empty.
				for r, i := range rows {
					if r != at {
						rows[k] = i
						k++
					}
				}
			}
			rows = rows[:k]
			m := len(rows)
			sub := rp.sub[:m*m]
			for r, i := range rows {
				for c, j := range rows {
					sub[r*m+c] = rp.r[i*q+j]
				}
			}
			if !luFactor(sub, rp.piv[:m], m) {
				// Singular restriction: keep the previous iterate (clamped
				// below), still feasible.
				break
			}
			subLam := rp.subLam[:m]
			for r := range subLam {
				subLam[r] = 1
			}
			luSolveTranspose(sub, rp.piv[:m], m, subLam)
			bad := false
			for _, l := range subLam {
				if math.IsNaN(l) || math.IsInf(l, 0) {
					bad = true
					break
				}
			}
			if bad {
				break
			}
			for i := range lam {
				lam[i] = 0
			}
			for r, i := range rows {
				lam[i] = subLam[r]
			}
		}
	}
	lamSum := 0.0
	for i, l := range lam {
		if l < 0 {
			lam[i] = 0
			l = 0
		}
		lamSum += l
	}
	// Column repair: μ lifts every uncovered dual constraint at once. The
	// deficit scan prices each column of the current matrix against the
	// clamped multipliers (row-major accumulation, skipping the rows the
	// descent zeroed).
	col := rp.sub[:q]
	for j := range col {
		col[j] = 0
	}
	for i := 0; i < q; i++ {
		l := lam[i]
		if l == 0 {
			continue
		}
		ri := rp.r[i*q : (i+1)*q]
		for j, v := range ri {
			col[j] += l * v
		}
	}
	deficit := 0.0
	for j := 0; j < q; j++ {
		w := rp.p.Workers[rp.send[j]]
		if short := 1 - col[j]; short > 0 {
			if d := short / (w.C + w.D); d > deficit {
				deficit = d
			}
		}
	}
	bound = lamSum + deficit
	if rp.model == schedule.TwoPort {
		// μ on both port rows (coefficients c_j and d_j sum to g_j), each
		// contributing its right-hand side once.
		bound = lamSum + 2*deficit
	}
	if math.IsNaN(bound) || math.IsInf(bound, 0) {
		return 0, false, false
	}
	return bound / (1 - tol), false, true
}

// ReturnOrder materialises the committed return order (worker indices,
// first returner first). Valid only at full depth; the slice is reused
// across calls and must be cloned if retained.
func (rp *ReturnPrefix) ReturnOrder() platform.Order {
	for k, pos := range rp.tail {
		rp.ret[rp.q-1-k] = rp.send[pos]
	}
	return rp.ret
}

// LeafThroughput evaluates the fully committed return order exactly when
// Bound could not certify the leaf: the active-set descent over the
// already-assembled full tight matrix (port-bound and resource-selection
// vertices), then the simplex. Mirrors FixedSend.Throughput's tiers.
func (rp *ReturnPrefix) LeafThroughput() (float64, error) {
	if len(rp.tail) != rp.q {
		return 0, fmt.Errorf("eval: LeafThroughput on a partial return prefix (%d of %d committed)", len(rp.tail), rp.q)
	}
	s := rp.sess
	sc := Scenario{Platform: rp.p, Send: rp.send, Return: rp.ReturnOrder(), Model: rp.model}
	if rp.mode == Simplex {
		_, rho, err := s.simplexLoads(sc)
		return rho, err
	}
	// tightSearchOn reads the session's retPos table (worker → return
	// position) for the dropped-worker certificate terms.
	retPos := growInt(&s.retPos, rp.p.P())
	for k, i := range sc.Return {
		retPos[i] = k
	}
	if alpha, ok := s.tightSearchOn(sc, rp.r, true, -1); ok {
		return sum(alpha), nil
	}
	_, rho, err := s.simplexLoads(sc)
	return rho, err
}

// ReturnPrefixBound returns the exact optimum of the σ2-prefix relaxation:
// the best throughput achievable when the workers named by tail (send
// positions, in commitment order — the LAST returner first) occupy the
// last len(tail) return positions and every other row is relaxed to its
// send prefix, own processing, own return message and the committed
// returns. The bound dominates the true optimum of every completion of
// the prefix (equivalently, the implied makespan bound load/ρ never
// exceeds any completion's true makespan), it is monotone non-increasing
// as the prefix grows, and at a full prefix it equals the scenario's
// optimal throughput.
//
// The branch-and-bound search computes the same quantity incrementally
// through ReturnPrefix; this one-shot form exists for property tests and
// diagnostics, and falls back to solving the relaxation LP outright when
// the tight candidate does not certify, so the returned value is always
// the relaxation's exact optimum.
func (s *Session) ReturnPrefixBound(p *platform.Platform, send platform.Order, model schedule.Model, tail []int) (float64, error) {
	sc := Scenario{Platform: p, Send: send, Return: send, Model: model}
	if err := validate(sc); err != nil {
		return 0, err
	}
	if len(send) != p.P() {
		return 0, fmt.Errorf("eval: return-prefix bound enrolls all %d workers, got %d", p.P(), len(send))
	}
	rp, err := s.NewReturnPrefix(p, model, Auto)
	if err != nil {
		return 0, err
	}
	if err := rp.Reset(send); err != nil {
		return 0, err
	}
	for _, pos := range tail {
		if pos < 0 || pos >= rp.q {
			return 0, fmt.Errorf("eval: tail names send position %d outside [0, %d)", pos, rp.q)
		}
		if !rp.open[pos] {
			return 0, fmt.Errorf("eval: tail commits send position %d twice", pos)
		}
		rp.Push(pos)
	}
	if bound, exact, ok := rp.Bound(); ok && exact {
		return bound, nil
	}
	sol, err := rp.relaxationLP().Solve()
	if err != nil {
		return 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("eval: return-prefix relaxation LP terminated %v (internal error)", sol.Status)
	}
	return sol.Objective, nil
}

// relaxationLP builds the node's relaxation as an explicit LP (the
// always-correct fallback of the one-shot ReturnPrefixBound).
func (rp *ReturnPrefix) relaxationLP() *lp.Problem {
	q := rp.q
	prob := lp.NewMaximize()
	for range rp.send {
		prob.AddVar("", 1)
	}
	coefs := make([]lp.Coef, 0, q)
	for s := 0; s < q; s++ {
		coefs = coefs[:0]
		for t := 0; t < q; t++ {
			if v := rp.r[s*q+t]; v != 0 {
				coefs = append(coefs, lp.Coef{Var: t, Value: v})
			}
		}
		prob.AddConstraint("", coefs, lp.LE, 1)
	}
	port := make([]lp.Coef, 0, q)
	if rp.model == schedule.TwoPort {
		for t, j := range rp.send {
			port = append(port, lp.Coef{Var: t, Value: rp.p.Workers[j].C})
		}
		prob.AddConstraint("", port, lp.LE, 1)
		port = port[:0]
		for t, j := range rp.send {
			port = append(port, lp.Coef{Var: t, Value: rp.p.Workers[j].D})
		}
		prob.AddConstraint("", port, lp.LE, 1)
	} else {
		for t, j := range rp.send {
			port = append(port, lp.Coef{Var: t, Value: rp.p.Workers[j].C + rp.p.Workers[j].D})
		}
		prob.AddConstraint("", port, lp.LE, 1)
	}
	return prob
}
