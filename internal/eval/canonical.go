package eval

import (
	"math"

	"repro/internal/lp"
	"repro/internal/numeric"
	"repro/internal/schedule"
)

// Degenerate-optimum canonicalisation. On platforms whose enrolled workers
// share identical links (buses), a port-bound optimum is a degenerate face
// of the scenario LP: with every link cost equal, any feasible point that
// saturates the tight port row carries the same total load, so many load
// vectors are simultaneously optimal and the backends would legitimately
// return different vertices (the Theorem 2 construction, an active-set
// port vertex, whatever vertex the simplex pivots into). Every schedule-
// producing float64 evaluation therefore funnels through canonicalLoads,
// which detects the degenerate regime and replaces the computed loads by
// the lexicographically smallest optimal load vector (by send position) —
// the same canonical vertex regardless of the backend that found the
// optimum, making results byte-identical across backends.

// degenTol is the port-row tightness threshold of the degeneracy
// detection. It is deliberately the loose CheckTol: a genuinely slack port
// sits far from 1, a genuinely tight one within LP noise of it, and a
// false positive is harmless — the lex-min programs are only feasible on
// the tight face, so a near-miss bails out and keeps the original loads.
const degenTol = numeric.CheckTol

// canonicalLoads returns alpha untouched unless the scenario's optimum is
// detected degenerate (identical links across the send workers and a tight
// port row at alpha), in which case it returns the lexicographically
// smallest optimal loads, computed by minimising each send position in
// turn over the tight-port face. Any failure along the way (an infeasible
// or non-optimal lex-min program) falls back to the original loads.
func (s *Session) canonicalLoads(sc Scenario, alpha []float64) []float64 {
	q := len(sc.Send)
	if q < 2 {
		return alpha
	}
	// Identical links across the enrolled workers (the busFIFO criterion).
	c0 := sc.Platform.Workers[sc.Send[0]].C
	d0 := sc.Platform.Workers[sc.Send[0]].D
	for _, i := range sc.Send {
		w := sc.Platform.Workers[i]
		if math.Abs(w.C-c0) > numeric.RatioTol*(1+c0) || math.Abs(w.D-d0) > numeric.RatioTol*(1+d0) {
			return alpha
		}
	}
	// A tight port row at the computed optimum.
	sumC, sumD := 0.0, 0.0
	for k, i := range sc.Send {
		sumC += alpha[k] * sc.Platform.Workers[i].C
		sumD += alpha[k] * sc.Platform.Workers[i].D
	}
	var tightSend, tightRecv bool
	if sc.Model == schedule.OnePort {
		tightSend = sumC+sumD >= 1-degenTol
		tightRecv = tightSend
	} else {
		tightSend = sumC >= 1-degenTol
		tightRecv = sumD >= 1-degenTol
	}
	if !tightSend && !tightRecv {
		return alpha
	}
	if canon, ok := s.lexMinLoads(sc, tightSend, tightRecv); ok {
		return canon
	}
	return alpha
}

// lexMinLoads computes the lexicographically smallest loads (by send
// position) on the tight-port optimal face: for k = 0..q−1 it minimises
// α_k subject to the scenario rows, the tight port row(s) as equalities
// and the already-minimised positions bounded above by their minima. The
// programs take no backend-derived inputs — only the scenario and the
// tight-row selection — so every backend that detects the same degeneracy
// solves the same sequence and lands on bit-identical loads.
func (s *Session) lexMinLoads(sc Scenario, tightSend, tightRecv bool) ([]float64, bool) {
	q := len(sc.Send)
	fixed := make([]float64, 0, q)
	var best []float64
	for k := 0; k < q; k++ {
		sol, err := buildLexMinLP(sc, k, tightSend, tightRecv, fixed).Solve()
		if err != nil || sol.Status != lp.Optimal {
			return nil, false
		}
		v := sol.X[k]
		if v < 0 {
			v = 0
		}
		fixed = append(fixed, v)
		best = sol.X
	}
	clampLoads(best)
	return best, true
}

// buildLexMinLP assembles the k-th lex-min program: maximise −α_k under
// the Section 2.3 per-worker rows, the port row(s) — tight ones as
// equalities — and α_t ≤ fixed_t (plus float slack) for t < k.
func buildLexMinLP(sc Scenario, k int, tightSend, tightRecv bool, fixed []float64) *lp.Problem {
	p, send, ret := sc.Platform, sc.Send, sc.Return
	q := len(send)
	prob := lp.NewMaximize()
	for t := 0; t < q; t++ {
		obj := 0.0
		if t == k {
			obj = -1
		}
		prob.AddVar("", obj)
	}
	varOf := make(map[int]int, q)
	for t, i := range send {
		varOf[i] = t
	}
	retPos := make(map[int]int, q)
	for t, i := range ret {
		retPos[i] = t
	}
	for t, i := range send {
		coefs := make([]lp.Coef, 0, 2*q)
		for _, j := range send[:t+1] {
			coefs = append(coefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].C})
		}
		coefs = append(coefs, lp.Coef{Var: varOf[i], Value: p.Workers[i].W})
		for _, j := range ret[retPos[i]:] {
			coefs = append(coefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].D})
		}
		prob.AddConstraint("", coefs, lp.LE, 1)
	}
	switch sc.Model {
	case schedule.OnePort:
		coefs := make([]lp.Coef, 0, 2*q)
		for _, j := range send {
			coefs = append(coefs,
				lp.Coef{Var: varOf[j], Value: p.Workers[j].C},
				lp.Coef{Var: varOf[j], Value: p.Workers[j].D})
		}
		sense := lp.LE
		if tightSend {
			sense = lp.EQ
		}
		prob.AddConstraint("", coefs, sense, 1)
	default: // two-port
		sendCoefs := make([]lp.Coef, 0, q)
		retCoefs := make([]lp.Coef, 0, q)
		for _, j := range send {
			sendCoefs = append(sendCoefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].C})
			retCoefs = append(retCoefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].D})
		}
		sendSense, retSense := lp.LE, lp.LE
		if tightSend {
			sendSense = lp.EQ
		}
		if tightRecv {
			retSense = lp.EQ
		}
		prob.AddConstraint("", sendCoefs, sendSense, 1)
		prob.AddConstraint("", retCoefs, retSense, 1)
	}
	for t, v := range fixed {
		prob.AddConstraint("", []lp.Coef{{Var: t, Value: 1}}, lp.LE, v+1e-12*(1+v))
	}
	return prob
}
