package eval

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/eval/kern"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// TestBatchKernelConformance pins every available kernel variant (purego,
// unrolled, and avx2 where the CPU offers it) bitwise equal at the Batch
// level: same rho bits, same certificate verdicts, same load bits, on 240
// random platforms spanning the agreement families, FIFO and LIFO, both
// port models, including partial trailing chunks.
func TestBatchKernelConformance(t *testing.T) {
	variants := kern.Variants()
	if len(variants) < 2 {
		t.Logf("only %v available; conformance degenerates to self-comparison", variants)
	}
	def := kern.Variant()
	defer kern.SetVariant(def)

	rng := rand.New(rand.NewSource(4096))
	const platforms = 240
	for pi := 0; pi < platforms; pi++ {
		p := randomAgreementPlatform(rng)
		lifo := pi%2 == 1
		model := schedule.OnePort
		if pi%5 == 0 {
			model = schedule.TwoPort
		}
		b, err := NewBatch(model, lifo, p.P())
		if err != nil {
			t.Fatal(err)
		}
		// 1–11 lanes so the last chunk is usually partial.
		lanes := 1 + rng.Intn(11)
		for i := 0; i < lanes; i++ {
			if err := b.Add(p, platform.Order(rng.Perm(p.P()))); err != nil {
				t.Fatal(err)
			}
		}

		type laneBits struct {
			rho   uint64
			ok    bool
			loads []uint64
		}
		var want []laneBits
		for vi, name := range variants {
			if !kern.SetVariant(name) {
				t.Fatalf("SetVariant(%q) refused", name)
			}
			b.Run()
			got := make([]laneBits, lanes)
			for l := 0; l < lanes; l++ {
				rho, ok := b.Throughput(l)
				lb := laneBits{rho: math.Float64bits(rho), ok: ok}
				if loads, lok := b.Loads(l); lok {
					for _, x := range loads {
						lb.loads = append(lb.loads, math.Float64bits(x))
					}
				}
				got[l] = lb
			}
			if vi == 0 {
				want = got
				continue
			}
			for l := 0; l < lanes; l++ {
				if got[l].ok != want[l].ok {
					t.Fatalf("platform %d lane %d: %s certified=%v, %s certified=%v",
						pi, l, name, got[l].ok, variants[0], want[l].ok)
				}
				if got[l].ok && got[l].rho != want[l].rho {
					t.Fatalf("platform %d lane %d: %s rho bits %x != %s rho bits %x",
						pi, l, name, got[l].rho, variants[0], want[l].rho)
				}
				for k := range want[l].loads {
					if got[l].loads[k] != want[l].loads[k] {
						t.Fatalf("platform %d lane %d load %d: %s bits %x != %s bits %x",
							pi, l, k, name, got[l].loads[k], variants[0], want[l].loads[k])
					}
				}
			}
		}
	}
}
