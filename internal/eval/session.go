package eval

import (
	"fmt"
	"sync"

	"repro/internal/lp"
	"repro/internal/numeric"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// Session holds the scratch buffers of one evaluation pipeline: the tight
// system matrix, pivot indices, load/dual vectors and the cached send base
// of a FixedSend. Sessions make batch and exhaustive evaluation allocate
// O(1) per scenario. A Session is NOT safe for concurrent use; obtain one
// per goroutine via NewSession or the pool-backed GetSession/Release pair.
type Session struct {
	alpha      []float64    // candidate loads, by enrolled position
	lam        []float64    // dual multipliers
	u, v       []float64    // FIFO dual chain decomposition / expanded loads
	a          []float64    // candidate system / LU factors (clobbered by solves)
	work       []float64    // q×q assembled system kept intact across candidates
	base       []float64    // FixedSend: return-order-independent half of the system
	piv        []int        // LU row swaps
	retPos     []int        // worker index → return position
	mask       []int        // send position → enrolled index (active-set search)
	enrolled   []int        // active-set descent: enrolled send positions
	sub        []int        // enrolled subsequence as worker indices (chain search)
	d0, dT, dM []float64    // (T, μ)-parameterised dual chain of a port vertex
	slackBuf   [1]slackSpec // active-set descent: slack row of the current candidate

	// simplexFallbacks counts loadsResolved calls that exhausted every
	// tight-system tier and fell back to the simplex; twoPortDualCerts and
	// twoPortDroppedCerts count certificates produced by the two-port
	// rescue passes (dual-first re-descent / dropped-row stand-ins).
	// Unexported diagnostics for the two-port regression tests.
	simplexFallbacks    uint64
	twoPortDualCerts    uint64
	twoPortDroppedCerts uint64

	// lastBackend names the tier that actually produced the most recent
	// loadsResolved answer ("closed-form", "direct", "simplex", "exact");
	// lastFallback reports that the answer came from the end-of-pipeline
	// simplex fallback rather than a requested or certified tier. The
	// serving layer's tracing reads both to attribute each request's
	// eval-backend stage.
	lastBackend  string
	lastFallback bool

	// costs caches per-worker derived constants (sums, differences and
	// reciprocals of the cost triple) for the platform costsOf, so the hot
	// chain kernels run division-free. Keyed by pointer identity: Platforms
	// are immutable by convention throughout the repository (every
	// transformation returns a fresh value).
	costs   []workerCosts
	costsOf *platform.Platform
}

// workerCosts are the per-worker constants of the chain recurrences.
type workerCosts struct {
	c, d, w              float64
	cw, wd, g, dc        float64 // c+w, w+d, c+d, d−c
	invCW, invWD, invCWD float64 // 1/(c+w), 1/(w+d), 1/(c+w+d)
}

// deriveCosts is the single definition of the chain recurrences' derived
// constants; every consumer (Session.derivedCosts, Batch.runChunk's
// gather, Sweep.gather) goes through it so the formulas cannot drift
// apart.
func deriveCosts(w platform.Worker) workerCosts {
	return workerCosts{
		c: w.C, d: w.D, w: w.W,
		cw: w.C + w.W, wd: w.W + w.D, g: w.C + w.D, dc: w.D - w.C,
		invCW: 1 / (w.C + w.W), invWD: 1 / (w.W + w.D), invCWD: 1 / (w.C + w.W + w.D),
	}
}

// derivedCosts returns the derived-constant table of p, rebuilding it only
// when the session last evaluated a different platform.
func (s *Session) derivedCosts(p *platform.Platform) []workerCosts {
	if s.costsOf == p && len(s.costs) == len(p.Workers) {
		return s.costs
	}
	if cap(s.costs) < len(p.Workers) {
		s.costs = make([]workerCosts, len(p.Workers))
	}
	s.costs = s.costs[:len(p.Workers)]
	for i, w := range p.Workers {
		s.costs[i] = deriveCosts(w)
	}
	s.costsOf = p
	return s.costs
}

// NewSession returns a fresh, unpooled session.
func NewSession() *Session { return &Session{} }

var sessionPool = sync.Pool{New: func() any { return NewSession() }}

// GetSession returns a pooled session; pair it with Release.
func GetSession() *Session { return sessionPool.Get().(*Session) }

// Release returns the session to the pool. The session must not be used
// afterwards (nor any FixedSend derived from it).
func (s *Session) Release() { sessionPool.Put(s) }

// grow returns *buf resized to n, reusing its capacity when possible.
func grow(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growInt(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// Evaluate solves the scenario with the given mode and returns the
// resulting schedule with horizon T = 1, zero-load workers pruned from the
// orders (resource selection, Proposition 1), verified against the
// independent feasibility checker. Degenerate optima (tight-port bus
// scenarios, where many load vectors tie) are canonicalised to the
// lexicographically smallest optimal loads, so every float64 backend
// returns the same vertex; the exact-rational mode reports its own vertex
// untouched.
func (s *Session) Evaluate(sc Scenario, mode Mode) (*schedule.Schedule, error) {
	alpha, _, err := s.loads(sc, mode)
	if err != nil {
		return nil, err
	}
	if mode != ExactRational {
		alpha = s.canonicalLoads(sc, alpha)
	}
	return buildSchedule(sc, alpha)
}

// Throughput is the raw fast path for search loops: it returns only the
// optimal throughput ρ of the scenario, skipping schedule construction and
// the feasibility checker. Searches re-evaluate their winner through
// Evaluate, which verifies it.
func (s *Session) Throughput(sc Scenario, mode Mode) (float64, error) {
	_, rho, err := s.loads(sc, mode)
	return rho, err
}

// ThroughputTrusted is Throughput minus the per-call scenario validation,
// for search loops that enumerate (σ1, σ2) programmatically over an
// already-validated platform. Validation allocates; skipping it keeps the
// per-scenario cost allocation-free on the tight path.
func (s *Session) ThroughputTrusted(sc Scenario, mode Mode) (float64, error) {
	_, rho, err := s.loadsResolved(sc, mode)
	return rho, err
}

// loads validates the scenario and dispatches it.
func (s *Session) loads(sc Scenario, mode Mode) ([]float64, float64, error) {
	if err := validate(sc); err != nil {
		return nil, 0, err
	}
	return s.loadsResolved(sc, mode)
}

// loadsResolved dispatches the scenario to the backend(s) selected by mode
// and returns the optimal loads by send position (session-owned; valid
// until the next call) together with their sum ρ.
func (s *Session) loadsResolved(sc Scenario, mode Mode) ([]float64, float64, error) {
	s.lastBackend, s.lastFallback = "", false
	switch mode {
	case Simplex:
		s.lastBackend = "simplex"
		return s.simplexLoads(sc)
	case ExactRational:
		s.lastBackend = "exact"
		return s.exactLoads(sc)
	case Auto, ClosedForm, Direct:
		// Tight-system tiers below.
	default:
		return nil, 0, fmt.Errorf("eval: unknown mode %d", int(mode))
	}
	kind := kindOf(sc.Send, sc.Return)
	switch mode {
	case ClosedForm:
		s.lastBackend = "closed-form"
		switch kind {
		case kindFIFO:
			alpha, rej := s.fifoTightCertified(sc)
			if rej == rejectNone {
				return alpha, sum(alpha), nil
			}
			// Port-bound FIFO optimum: a closed form exists on buses only
			// (Theorem 2's constructive proof).
			if rej == rejectPort && sc.Model == schedule.OnePort {
				if alpha, ok := s.busFIFO(sc.Platform, sc.Send); ok {
					return alpha, sum(alpha), nil
				}
			}
			return nil, 0, ErrNotTight
		case kindLIFO:
			if alpha, ok := s.lifoTightCertified(sc); ok {
				return alpha, sum(alpha), nil
			}
			return nil, 0, ErrNotTight
		default:
			return nil, 0, ErrNotApplicable
		}
	case Direct:
		if alpha, ok := s.generalTight(sc); ok {
			s.lastBackend = "direct"
			return alpha, sum(alpha), nil
		}
	case Auto:
		// Tiering: the chain-based active-set descent where the shape
		// admits it (O(p) per level, at most one LU candidate), the
		// full-scan LU search for general pairs, the simplex whenever no
		// certificate holds (degeneracy, a descent that guessed wrong).
		switch kind {
		case kindFIFO:
			if alpha, ok := s.chainSearch(sc, false, nil, nil); ok {
				s.lastBackend = "closed-form"
				return alpha, sum(alpha), nil
			}
			// The chain search scans port-bound vertices under the one-port
			// model only; two-port port-bound optima need the LU vertex
			// enumeration before the simplex is warranted.
			if sc.Model == schedule.TwoPort {
				if alpha, ok := s.generalTight(sc); ok {
					s.lastBackend = "direct"
					return alpha, sum(alpha), nil
				}
			}
		case kindLIFO:
			if alpha, ok := s.chainSearch(sc, true, nil, nil); ok {
				s.lastBackend = "closed-form"
				return alpha, sum(alpha), nil
			}
			if sc.Model == schedule.TwoPort {
				if alpha, ok := s.generalTight(sc); ok {
					s.lastBackend = "direct"
					return alpha, sum(alpha), nil
				}
			}
		default:
			if alpha, ok := s.generalTight(sc); ok {
				s.lastBackend = "direct"
				return alpha, sum(alpha), nil
			}
		}
	}
	s.simplexFallbacks++
	s.lastBackend, s.lastFallback = "simplex", true
	return s.simplexLoads(sc)
}

// Backend reports which evaluation tier produced the session's most
// recent answer ("closed-form", "direct", "simplex", "exact"; "" before
// the first evaluation) and whether it was the end-of-pipeline simplex
// fallback rather than a certified or requested tier. Single-goroutine
// like the rest of the session; callers read it immediately after the
// evaluation they want attributed.
func (s *Session) Backend() (backend string, fallback bool) {
	return s.lastBackend, s.lastFallback
}

func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// simplexLoads solves the full scenario LP with the float64 simplex.
func (s *Session) simplexLoads(sc Scenario) ([]float64, float64, error) {
	sol, err := buildLP(sc, false).Solve()
	if err != nil {
		return nil, 0, err
	}
	if sol.Status != lp.Optimal {
		// The scheduling LPs are always feasible (α = 0) and bounded (the
		// port constraint caps Σα), so any other status is an internal bug.
		return nil, 0, fmt.Errorf("eval: scenario LP terminated %v (internal error)", sol.Status)
	}
	return sol.X, sol.Objective, nil
}

// exactLoads solves the full scenario LP in exact rational arithmetic and
// returns the float64 view of the optimum.
func (s *Session) exactLoads(sc Scenario) ([]float64, float64, error) {
	sol, err := buildLP(sc, true).SolveExact()
	if err != nil {
		return nil, 0, err
	}
	if sol.Status != lp.Optimal {
		return nil, 0, fmt.Errorf("eval: scenario LP terminated %v (internal error)", sol.Status)
	}
	obj, x := sol.Float()
	return x, obj, nil
}

// buildSchedule converts loads (by send position) into a verified
// canonical schedule, pruning zero-load workers from both orders.
func buildSchedule(sc Scenario, alpha []float64) (*schedule.Schedule, error) {
	p := sc.Platform
	out := &schedule.Schedule{
		Alpha: make([]float64, p.P()),
		T:     1,
	}
	for k, i := range sc.Send {
		out.Alpha[i] = alpha[k]
	}
	// Prune zero-load workers from both orders (resource selection).
	for _, i := range sc.Send {
		if out.Alpha[i] <= numeric.LoadEps {
			out.Alpha[i] = 0
			continue
		}
		out.SendOrder = append(out.SendOrder, i)
	}
	for _, i := range sc.Return {
		if out.Alpha[i] > 0 {
			out.ReturnOrder = append(out.ReturnOrder, i)
		}
	}
	if len(out.SendOrder) == 0 {
		return nil, fmt.Errorf("eval: LP assigned zero load to every worker (degenerate platform?)")
	}
	if err := out.Check(p, sc.Model); err != nil {
		return nil, fmt.Errorf("eval: internal error: computed schedule fails verification: %w", err)
	}
	return out, nil
}

// --- Pair-search support --------------------------------------------------

// FixedSend evaluates many return orders against one fixed send order,
// reusing the send-prefix half of the tight system across calls (the
// (p!)² pair search re-derives nothing it shares between return orders).
// A Session supports one active FixedSend at a time; creating a new one
// invalidates the previous.
type FixedSend struct {
	sess  *Session
	sc    Scenario // Return is set per Throughput call
	exact bool
}

// FixedSend prepares repeated evaluations sharing a send order. The mode
// tiers like loads: tight system first (from the cached base), simplex
// fallback; Simplex and ExactRational modes skip the tight attempt.
func (s *Session) FixedSend(p *platform.Platform, send platform.Order, model schedule.Model, mode Mode) (*FixedSend, error) {
	sc := Scenario{Platform: p, Send: send, Return: send, Model: model}
	if err := validate(sc); err != nil {
		return nil, err
	}
	if !mode.Valid() {
		return nil, fmt.Errorf("eval: unknown mode %d", int(mode))
	}
	f := &FixedSend{sess: s, sc: sc, exact: mode == ExactRational}
	if mode == Simplex || mode == ExactRational {
		s.base = s.base[:0] // mark "no tight base": Throughput goes to the LP
	} else {
		q := len(send)
		buildTightBase(grow(&s.base, q*q), p, send)
	}
	return f, nil
}

// Throughput evaluates one return order against the fixed send order. The
// return order must be a permutation of the send order (checked without
// allocating); the tight path reuses the cached send base, cascades to the
// port-bound vertices, and falls back to the simplex.
func (f *FixedSend) Throughput(ret platform.Order) (float64, error) {
	sc := f.sc
	sc.Return = ret
	s := f.sess
	if f.exact {
		return s.Throughput(sc, ExactRational)
	}
	if len(s.base) == 0 {
		return s.Throughput(sc, Simplex)
	}
	if err := s.checkReturnOrder(sc.Platform.P(), sc.Send, ret); err != nil {
		return 0, err
	}
	q := len(sc.Send)
	full := grow(&s.work, q*q)
	copy(full, s.base)
	s.addReturnTerms(full, sc.Platform, sc.Send, ret)
	if alpha, ok := s.tightSearchOn(sc, full, false, -1); ok {
		return sum(alpha), nil
	}
	_, rho, err := s.simplexLoads(sc)
	return rho, err
}

// checkReturnOrder verifies that ret is a permutation of send using the
// session's position scratch (no allocation): every send worker must
// appear in ret exactly once.
func (s *Session) checkReturnOrder(n int, send, ret platform.Order) error {
	if len(ret) != len(send) {
		return fmt.Errorf("eval: send order has %d workers, return order %d", len(send), len(ret))
	}
	pos := growInt(&s.retPos, n)
	for i := range pos {
		pos[i] = -1
	}
	for k, i := range ret {
		if i < 0 || i >= n {
			return fmt.Errorf("eval: order references worker %d outside platform of %d workers", i, n)
		}
		if pos[i] >= 0 {
			return fmt.Errorf("eval: worker %d appears twice in return order", i)
		}
		pos[i] = k
	}
	for _, i := range send {
		if pos[i] < 0 {
			return fmt.Errorf("eval: worker %d in send order but not in return order", i)
		}
	}
	return nil
}

// SendBound returns an upper bound on the optimal throughput over EVERY
// return order sharing the given send order: the optimum of the relaxed LP
// whose per-worker rows keep only the send prefix, the computation term
// and the worker's own return message,
//
//	Σ_{send pos ≤ s} α_j·c_j + α_i·(w_i + d_i) ≤ 1,
//
// with the port constraint(s) unchanged. Any σ2's per-worker constraint
// only adds further d terms on the left, so the relaxation is valid for
// all σ2 simultaneously. The pair-exhaustive search uses it to skip whole
// p!-sized inner loops whose bound cannot beat the incumbent.
func (s *Session) SendBound(p *platform.Platform, send platform.Order, model schedule.Model) (float64, error) {
	sc := Scenario{Platform: p, Send: send, Return: send, Model: model}
	if err := validate(sc); err != nil {
		return 0, err
	}
	q := len(send)
	prob := lp.NewMaximize()
	for range send {
		prob.AddVar("", 1)
	}
	coefs := make([]lp.Coef, 0, q+1)
	for si, i := range send {
		coefs = coefs[:0]
		for t, j := range send[:si+1] {
			coefs = append(coefs, lp.Coef{Var: t, Value: p.Workers[j].C})
		}
		w := p.Workers[i]
		coefs = append(coefs, lp.Coef{Var: si, Value: w.W + w.D})
		prob.AddConstraint("", coefs, lp.LE, 1)
	}
	port := make([]lp.Coef, 0, 2*q)
	switch model {
	case schedule.TwoPort:
		for t, j := range send {
			port = append(port, lp.Coef{Var: t, Value: p.Workers[j].C})
		}
		prob.AddConstraint("", port, lp.LE, 1)
		port = port[:0]
		for t, j := range send {
			port = append(port, lp.Coef{Var: t, Value: p.Workers[j].D})
		}
		prob.AddConstraint("", port, lp.LE, 1)
	default:
		for t, j := range send {
			port = append(port, lp.Coef{Var: t, Value: p.Workers[j].C + p.Workers[j].D})
		}
		prob.AddConstraint("", port, lp.LE, 1)
	}
	sol, err := prob.Solve()
	if err != nil {
		return 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("eval: send-bound LP terminated %v (internal error)", sol.Status)
	}
	return sol.Objective, nil
}

// ExactObjective solves the scenario LP in exact rational arithmetic and
// returns the optimal throughput as an exact rational string together with
// its float64 value (used by the theory tests to verify closed forms as
// identities).
func ExactObjective(sc Scenario) (float64, string, error) {
	prob, err := ScenarioLP(sc)
	if err != nil {
		return 0, "", err
	}
	sol, err := prob.SolveExact()
	if err != nil {
		return 0, "", err
	}
	if sol.Status != lp.Optimal {
		return 0, "", fmt.Errorf("eval: scenario LP terminated %v", sol.Status)
	}
	f, _ := sol.Objective.Float64()
	return f, sol.Objective.RatString(), nil
}
