// Package eval is the scenario-evaluation pipeline: every fixed
// communication scenario of the paper (Section 2.3 of RR-5738 — workers
// enrolled in a send order σ1 and a return order σ2, loads chosen to
// maximise throughput) is evaluated by this package and nowhere else.
//
// # Backends
//
// A single [Evaluator] interface is implemented by three tiered backends:
//
//   - closed form — O(p) load recurrences for FIFO (σ2 = σ1) and LIFO
//     (σ2 = reverse σ1) scenarios. These are the all-constraints-tight
//     chains underlying Theorems 1 and 2: subtracting consecutive
//     per-worker constraints collapses the p×p system to a two-term
//     recurrence. On bus platforms the FIFO case additionally covers the
//     port-bound regime via the constructive proof of Theorem 2.
//   - direct — Gaussian elimination (LU with partial pivoting) on the p×p
//     all-constraints-tight linear system of a general (σ1, σ2) scenario,
//     in the spirit of the tight-constraint derivations of Gallet, Robert
//     & Vivien for linear processor networks.
//   - simplex — the full Section 2.3 linear program solved by the float64
//     two-phase simplex (or its exact rational twin), the always-correct
//     general fallback.
//
// # Soundness
//
// The tight-system backends are sound, not merely fast: a tight candidate
// α = A⁻¹·1 is accepted only together with a complete KKT certificate —
// primal feasibility (α ≥ 0 and the port constraint(s) hold) plus a dual
// solution λ = A⁻ᵀ·1 with λ ≥ 0. All per-worker rows being tight and the
// port multiplier being zero on a slack port row, complementary slackness
// holds by construction, so by strong duality the certificate proves the
// tight point optimal for the LP. Any scenario whose certificate fails
// (negative load, port overrun, negative multiplier, ill-conditioned
// system) silently falls back to the simplex, which handles resource
// selection and port-bound optima exactly as before.
//
// Every schedule returned by [Evaluate] (and [Session.Evaluate]) is
// verified post hoc by the independent feasibility checker of package
// schedule; the raw [Session.Throughput] fast path used inside the
// exhaustive searches skips that construction, and the search winner is
// re-evaluated through the verified path.
package eval

import (
	"errors"
	"fmt"

	"repro/internal/lp"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// Mode selects the evaluation backend (or the tiered composition).
type Mode int

// Evaluation modes. The zero value Auto is the default everywhere: closed
// forms when the scenario shape admits them, the direct tight-system solver
// for general permutation pairs, the simplex as fallback.
const (
	// Auto tiers the backends: closed form → direct → simplex.
	Auto Mode = iota
	// ClosedForm uses only the closed-form backend and fails on scenarios
	// it cannot certify (general permutation pairs, port-bound non-bus
	// FIFO optima).
	ClosedForm
	// Direct uses the tight-system Gaussian elimination for every scenario
	// shape, falling back to the simplex when the certificate fails.
	Direct
	// Simplex always solves the full linear program in float64.
	Simplex
	// ExactRational always solves the full linear program in exact
	// rational arithmetic (math/big.Rat).
	ExactRational
)

// modeNames maps modes to their canonical spellings (CLI flags, Request
// knobs).
var modeNames = map[Mode]string{
	Auto:          "auto",
	ClosedForm:    "closed-form",
	Direct:        "direct",
	Simplex:       "simplex",
	ExactRational: "exact",
}

// String returns the canonical name of the mode.
func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Valid reports whether m is a defined mode.
func (m Mode) Valid() bool {
	_, ok := modeNames[m]
	return ok
}

// ParseMode parses a canonical mode name ("auto", "closed-form", "direct",
// "simplex", "exact").
func ParseMode(s string) (Mode, error) {
	for m, name := range modeNames {
		if s == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("eval: unknown mode %q (known: %s)", s, ModeNames())
}

// ModeNames returns the canonical mode names, in tier order.
func ModeNames() string {
	return "auto, closed-form, direct, simplex, exact"
}

// Scenario is one fixed-communication-scenario evaluation problem: the
// workers listed in Send are enrolled, initial messages go out back-to-back
// in Send order from t = 0, result messages come back back-to-back in
// Return order ending at t = 1, and the loads maximise the throughput
// ρ = Σα under the given communication model.
type Scenario struct {
	Platform *platform.Platform
	Send     platform.Order
	Return   platform.Order
	Model    schedule.Model
}

// Errors reported by the strict backends. Auto and Direct never surface
// these — they fall back to the simplex instead.
var (
	// ErrNotApplicable is returned by the ClosedForm mode when the scenario
	// has no closed form (a general permutation pair).
	ErrNotApplicable = errors.New("eval: no closed form for this scenario shape")
	// ErrNotTight is returned by the ClosedForm mode when the
	// all-constraints-tight candidate exists but fails its optimality
	// certificate (resource selection or a binding port constraint).
	ErrNotTight = errors.New("eval: tight closed-form candidate is not the LP optimum")
)

// Evaluator evaluates fixed scenarios. The pipeline values returned by
// New are cheap to create, reuse internal scratch buffers across calls and
// are NOT safe for concurrent use; use one per goroutine, or the
// pool-backed package-level Evaluate.
type Evaluator interface {
	// Name identifies the backend ("auto", "closed-form", ...).
	Name() string
	// Evaluate computes the optimal loads of the scenario and returns the
	// resulting schedule with horizon T = 1, zero-load workers pruned from
	// the orders (resource selection) and the result verified against the
	// independent feasibility checker.
	Evaluate(sc Scenario) (*schedule.Schedule, error)
}

// pipeline binds a mode to a scratch session, implementing Evaluator.
type pipeline struct {
	mode Mode
	sess *Session
}

// New returns an Evaluator for the given mode. New(ClosedForm),
// New(Direct) and New(Simplex) expose the three backends individually;
// New(Auto) is their tiered composition.
func New(mode Mode) (Evaluator, error) {
	if !mode.Valid() {
		return nil, fmt.Errorf("eval: unknown mode %d", int(mode))
	}
	return &pipeline{mode: mode, sess: NewSession()}, nil
}

func (p *pipeline) Name() string { return p.mode.String() }

func (p *pipeline) Evaluate(sc Scenario) (*schedule.Schedule, error) {
	return p.sess.Evaluate(sc, p.mode)
}

// Evaluate solves one scenario with the given mode using a pooled scratch
// session. It is safe for concurrent use.
func Evaluate(sc Scenario, mode Mode) (*schedule.Schedule, error) {
	s := GetSession()
	defer s.Release()
	return s.Evaluate(sc, mode)
}

// validate checks the scenario: a valid platform, Send a duplicate-free
// non-empty list of worker indices, Return a permutation of the same set.
func validate(sc Scenario) error {
	if sc.Platform == nil {
		return fmt.Errorf("eval: scenario has no platform")
	}
	if err := sc.Platform.Validate(); err != nil {
		return err
	}
	if sc.Model != schedule.OnePort && sc.Model != schedule.TwoPort {
		return fmt.Errorf("eval: unknown model %v", sc.Model)
	}
	return ValidOrderPair(sc.Platform.P(), sc.Send, sc.Return)
}

// ValidOrderPair checks that send is a duplicate-free non-empty list of
// worker indices in [0, n) and ret a permutation of the same set. It is
// the shared order validation of every scenario-shaped problem (the
// affine LP builder in internal/core reuses it).
func ValidOrderPair(n int, send, ret platform.Order) error {
	inSend := make(map[int]bool, len(send))
	for _, i := range send {
		if i < 0 || i >= n {
			return fmt.Errorf("eval: order references worker %d outside platform of %d workers", i, n)
		}
		if inSend[i] {
			return fmt.Errorf("eval: worker %d appears twice in send order", i)
		}
		inSend[i] = true
	}
	if len(send) == 0 {
		return fmt.Errorf("eval: empty send order")
	}
	if len(ret) != len(send) {
		return fmt.Errorf("eval: send order has %d workers, return order %d", len(send), len(ret))
	}
	seen := make(map[int]bool, len(ret))
	for _, i := range ret {
		if seen[i] {
			return fmt.Errorf("eval: worker %d appears twice in return order", i)
		}
		seen[i] = true
		if !inSend[i] {
			return fmt.Errorf("eval: worker %d in return order but not in send order", i)
		}
	}
	return nil
}

// scenarioKind classifies the (σ1, σ2) shape.
type scenarioKind int

const (
	kindGeneral scenarioKind = iota
	kindFIFO                 // σ2 == σ1
	kindLIFO                 // σ2 == reverse(σ1)
)

func kindOf(send, ret platform.Order) scenarioKind {
	n := len(send)
	fifo, lifo := true, true
	for k := 0; k < n && (fifo || lifo); k++ {
		if ret[k] != send[k] {
			fifo = false
		}
		if ret[k] != send[n-1-k] {
			lifo = false
		}
	}
	switch {
	case fifo:
		return kindFIFO
	case lifo:
		return kindLIFO
	default:
		return kindGeneral
	}
}

// ScenarioLP builds the Section 2.3 linear program for the scenario. The
// per-worker constraint of the enrolled worker at send position s and
// return position r reads
//
//	Σ_{send pos ≤ s} α_j·c_j  +  α_i·w_i  +  Σ_{ret pos ≥ r} α_j·d_j  ≤  1,
//
// the idle time x_i being the slack of the row; the port constraints are
// Σ α_j·(c_j + d_j) ≤ 1 under the one-port model, Σ α_j·c_j ≤ 1 and
// Σ α_j·d_j ≤ 1 under the two-port model; the objective maximises ρ = Σα.
//
// This is the only constructor of that program in the repository: the
// simplex and exact backends solve it, and callers that need the raw LP
// (exact identity tests, diagnostics) obtain it here.
func ScenarioLP(sc Scenario) (*lp.Problem, error) {
	if err := validate(sc); err != nil {
		return nil, err
	}
	return buildLP(sc, true), nil
}

// buildLP constructs the scenario LP. When named is false the variables
// and rows carry empty names, skipping the fmt.Sprintf cost on the hot
// fallback path (names are only used in diagnostics).
func buildLP(sc Scenario, named bool) *lp.Problem {
	p, send, ret := sc.Platform, sc.Send, sc.Return
	q := len(send)
	prob := lp.NewMaximize()
	// varOf[workerIndex] = LP variable of that worker's load.
	varOf := make(map[int]int, q)
	for _, i := range send {
		name := ""
		if named {
			name = fmt.Sprintf("alpha_%s", p.Workers[i].Name)
		}
		varOf[i] = prob.AddVar(name, 1)
	}
	retPos := make(map[int]int, q)
	for k, i := range ret {
		retPos[i] = k
	}
	// Per-worker constraints.
	for s, i := range send {
		coefs := make([]lp.Coef, 0, 2*q)
		for _, j := range send[:s+1] {
			coefs = append(coefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].C})
		}
		coefs = append(coefs, lp.Coef{Var: varOf[i], Value: p.Workers[i].W})
		for _, j := range ret[retPos[i]:] {
			coefs = append(coefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].D})
		}
		name := ""
		if named {
			name = fmt.Sprintf("worker_%s", p.Workers[i].Name)
		}
		prob.AddConstraint(name, coefs, lp.LE, 1)
	}
	// Port constraints.
	switch sc.Model {
	case schedule.OnePort:
		// C and D stay separate terms so the exact solver accumulates the
		// row without float64 rounding of c+d.
		coefs := make([]lp.Coef, 0, 2*q)
		for _, j := range send {
			coefs = append(coefs,
				lp.Coef{Var: varOf[j], Value: p.Workers[j].C},
				lp.Coef{Var: varOf[j], Value: p.Workers[j].D})
		}
		prob.AddConstraint("one_port", coefs, lp.LE, 1)
	case schedule.TwoPort:
		sendCoefs := make([]lp.Coef, 0, q)
		retCoefs := make([]lp.Coef, 0, q)
		for _, j := range send {
			sendCoefs = append(sendCoefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].C})
			retCoefs = append(retCoefs, lp.Coef{Var: varOf[j], Value: p.Workers[j].D})
		}
		prob.AddConstraint("send_port", sendCoefs, lp.LE, 1)
		prob.AddConstraint("recv_port", retCoefs, lp.LE, 1)
	}
	return prob
}
