package eval

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/schedule"
)

// TestBatchMatchesFromScratch is the structure-of-arrays half of the
// extended agreement property test: certified batch lanes must reproduce
// the from-scratch tiered pipeline's throughput and loads to 1e-9 on 240
// random platforms (FIFO and LIFO, one-port and two-port), with the
// exact-rational backend confirming every 10th trial.
func TestBatchMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(9009))
	const trials = 240
	sess := NewSession()
	for trial := 0; trial < trials; trial++ {
		p := randomAgreementPlatform(rng)
		n := p.P()
		lifo := trial%2 == 1
		model := schedule.OnePort
		if trial%5 == 0 {
			model = schedule.TwoPort
		}
		b, err := NewBatch(model, lifo, n)
		if err != nil {
			t.Fatal(err)
		}
		const lanes = 10
		orders := make([]platform.Order, 0, lanes)
		for l := 0; l < lanes; l++ {
			o := platform.Order(rng.Perm(n))
			orders = append(orders, o)
			if err := b.Add(p, o); err != nil {
				t.Fatal(err)
			}
		}
		b.Run()
		for l, o := range orders {
			rho, ok := b.Throughput(l)
			if !ok {
				continue // uncertified lanes are re-evaluated individually by callers
			}
			sc := Scenario{Platform: p, Send: o, Return: o, Model: model}
			if lifo {
				sc.Return = o.Reverse()
			}
			want, err := sess.Throughput(sc, Auto)
			if err != nil {
				t.Fatal(err)
			}
			if !agreeEq(rho, want) {
				t.Fatalf("trial %d lane %d (lifo=%v, %v): batch %.12g != auto %.12g", trial, l, lifo, model, rho, want)
			}
			loads, _ := b.Loads(l)
			total := 0.0
			for _, a := range loads {
				total += a
			}
			if !agreeEq(total, rho) {
				t.Fatalf("trial %d lane %d: loads sum %.12g != rho %.12g", trial, l, total, rho)
			}
			// The certified lane must survive the independent feasibility
			// checker (Schedule canonicalises and verifies).
			s, err := b.Schedule(l)
			if err != nil {
				t.Fatalf("trial %d lane %d: %v", trial, l, err)
			}
			if !agreeEq(s.Throughput(), rho) {
				t.Fatalf("trial %d lane %d: schedule throughput %.12g != %.12g", trial, l, s.Throughput(), rho)
			}
			if trial%10 == 0 {
				exact, err := sess.Throughput(sc, ExactRational)
				if err != nil {
					t.Fatal(err)
				}
				if !agreeEq(rho, exact) {
					t.Fatalf("trial %d lane %d: batch %.12g != exact %.12g", trial, l, rho, exact)
				}
			}
		}
	}
}

// TestBatchCertifiesComputeBound: on a compute-bound platform every FIFO
// order's optimum is the all-tight chain, so every lane must certify (the
// batch fast path actually fires where it should).
func TestBatchCertifiesComputeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ws := make([]platform.Worker, 6)
	for i := range ws {
		ws[i] = platform.Worker{C: 0.01 + 0.02*rng.Float64(), W: 1 + rng.Float64(), D: 0.01 + 0.02*rng.Float64()}
	}
	p := platform.New(ws...)
	for _, lifo := range []bool{false, true} {
		b, err := NewBatch(schedule.OnePort, lifo, p.P())
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l < 20; l++ {
			if err := b.Add(p, platform.Order(rng.Perm(p.P()))); err != nil {
				t.Fatal(err)
			}
		}
		b.Run()
		for l := 0; l < b.Len(); l++ {
			if _, ok := b.Throughput(l); !ok {
				t.Fatalf("lifo=%v lane %d failed to certify on a compute-bound platform", lifo, l)
			}
		}
	}
}

// TestBatchChunking crosses the chunk boundary (batchWidth lanes) and
// checks lane independence: the same order added at different lane
// positions yields bit-identical results.
func TestBatchChunking(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	p := randomAgreementPlatform(rng)
	n := p.P()
	ref := platform.Order(rng.Perm(n))
	b, err := NewBatch(schedule.OnePort, false, n)
	if err != nil {
		t.Fatal(err)
	}
	const lanes = 3*batchWidth + 5
	for l := 0; l < lanes; l++ {
		if err := b.Add(p, ref); err != nil {
			t.Fatal(err)
		}
	}
	b.Run()
	rho0, ok0 := b.Throughput(0)
	for l := 1; l < lanes; l++ {
		rho, ok := b.Throughput(l)
		if ok != ok0 || (ok && rho != rho0) {
			t.Fatalf("lane %d (%v, %.17g) differs from lane 0 (%v, %.17g)", l, ok, rho, ok0, rho0)
		}
	}
}

// TestBatchRejectsBadOrders pins Add's validation.
func TestBatchRejectsBadOrders(t *testing.T) {
	p := platform.New(
		platform.Worker{C: 0.1, W: 0.5, D: 0.05},
		platform.Worker{C: 0.2, W: 0.4, D: 0.1},
	)
	b, err := NewBatch(schedule.OnePort, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []platform.Order{{0}, {0, 0}, {0, 5}, {-1, 0}} {
		if err := b.Add(p, bad); err == nil {
			t.Errorf("Add(%v) accepted an invalid order", bad)
		}
	}
	if _, err := NewBatch(schedule.OnePort, false, 0); err == nil {
		t.Error("NewBatch accepted size 0")
	}
	if math.IsNaN(0) { // silence unused import on future edits
		t.Fatal()
	}
}
