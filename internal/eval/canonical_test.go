package eval

import (
	"math"
	"testing"

	"repro/internal/platform"
	"repro/internal/schedule"
)

// portBoundBus returns a bus platform whose FIFO optimum saturates the
// one-port (fast computation, slow identical links): the degenerate
// regime the canonicalisation exists for.
func portBoundBus() *platform.Platform {
	ws := make([]platform.Worker, 5)
	for i := range ws {
		ws[i] = platform.Worker{C: 0.2, W: 0.05 + 0.01*float64(i), D: 0.3}
	}
	return platform.New(ws...)
}

// TestCanonicalLoadsByteIdentical: on a port-bound bus every float64
// backend must return the exact same optimal vertex — bit for bit — even
// though the optimal face contains many load vectors. The lex-min
// programs take no backend-derived inputs, which is what makes the
// results identical rather than merely close.
func TestCanonicalLoadsByteIdentical(t *testing.T) {
	p := portBoundBus()
	send := platform.Identity(p.P())
	sc := Scenario{Platform: p, Send: send, Return: send, Model: schedule.OnePort}
	var ref *schedule.Schedule
	for _, mode := range []Mode{ClosedForm, Direct, Simplex, Auto} {
		s, err := Evaluate(sc, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		// The optimum saturates the port: ρ = 1/(c+d) exactly.
		if want := 1 / (0.2 + 0.3); math.Abs(s.Throughput()-want) > 1e-9*want {
			t.Fatalf("%v: throughput %.12g != port bound %.12g", mode, s.Throughput(), want)
		}
		if ref == nil {
			ref = s
			continue
		}
		for i := range s.Alpha {
			if s.Alpha[i] != ref.Alpha[i] {
				t.Errorf("%v: load of worker %d = %.17g differs from closed-form's %.17g",
					mode, i, s.Alpha[i], ref.Alpha[i])
			}
		}
	}
	// The canonical vertex is the lexicographically smallest: no feasible
	// optimal point can carry less load on the first send position.
	sess := NewSession()
	alpha, _, err := sess.loads(sc, Simplex)
	if err != nil {
		t.Fatal(err)
	}
	raw := append([]float64(nil), alpha...)
	canon := sess.canonicalLoads(sc, raw)
	for k := range canon {
		if canon[k] > raw[k]+1e-9 {
			break // lex-min may raise later positions to compensate earlier cuts
		}
		if k == 0 && canon[0] > raw[0]+1e-9 {
			t.Errorf("canonical first load %.12g exceeds the raw vertex's %.12g", canon[0], raw[0])
		}
	}
}

// TestCanonicalLeavesUniqueOptimaAlone: on a compute-bound bus the tight
// chain optimum is unique (port slack), so canonicalisation must be a
// no-op and the closed-form loads survive untouched.
func TestCanonicalLeavesUniqueOptimaAlone(t *testing.T) {
	ws := make([]platform.Worker, 4)
	for i := range ws {
		ws[i] = platform.Worker{C: 0.01, W: 1 + 0.1*float64(i), D: 0.02}
	}
	p := platform.New(ws...)
	send := platform.Identity(p.P())
	sc := Scenario{Platform: p, Send: send, Return: send, Model: schedule.OnePort}
	sess := NewSession()
	alpha, _, err := sess.loads(sc, Auto)
	if err != nil {
		t.Fatal(err)
	}
	raw := append([]float64(nil), alpha...)
	canon := sess.canonicalLoads(sc, raw)
	for k := range raw {
		if canon[k] != raw[k] {
			t.Fatalf("canonicalisation modified a unique optimum at position %d: %.17g != %.17g", k, canon[k], raw[k])
		}
	}
}

// TestCanonicalHeterogeneousLinksUntouched: the detection requires
// identical links; a heterogeneous platform must never be canonicalised
// even when its port row happens to be tight.
func TestCanonicalHeterogeneousLinksUntouched(t *testing.T) {
	p := platform.New(
		platform.Worker{C: 0.2, W: 0.05, D: 0.3},
		platform.Worker{C: 0.15, W: 0.06, D: 0.25},
		platform.Worker{C: 0.25, W: 0.07, D: 0.35},
	)
	send := platform.Identity(p.P())
	sc := Scenario{Platform: p, Send: send, Return: send, Model: schedule.OnePort}
	sess := NewSession()
	alpha, _, err := sess.loads(sc, Auto)
	if err != nil {
		t.Fatal(err)
	}
	raw := append([]float64(nil), alpha...)
	canon := sess.canonicalLoads(sc, raw)
	for k := range raw {
		if canon[k] != raw[k] {
			t.Fatalf("heterogeneous platform canonicalised at position %d", k)
		}
	}
}
