package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/dls"
	"repro/internal/mmapp"
	"repro/internal/platform"
	"repro/internal/vcluster"
)

// Fig8Linearity reproduces Figure 8: the linearity test. Messages of
// 0.5-5 MB are sent to five workers simulating communication speeds 1-5;
// the reported transfer times must lie on lines through the origin with
// slope inversely proportional to the speed, confirming the linear cost
// model (no latency by default; setting cfg.Latency shows the affine
// deviation instead).
func Fig8Linearity(cfg Config) (*Result, error) {
	const workers = 5
	sizesMB := []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}

	res := &Result{
		ID:     "8",
		Title:  "Linearity test with different message sizes, simulated heterogeneous workers",
		XLabel: "megabytes",
	}
	for w := 1; w <= workers; w++ {
		res.Series = append(res.Series, Series{Name: fmt.Sprintf("worker %d (speed %d)", w, w)})
	}
	cl := vcluster.Config{
		Workers: make([]vcluster.WorkerSpec, workers),
		Latency: cfg.Latency,
	}
	for w := 0; w < workers; w++ {
		cl.Workers[w] = vcluster.WorkerSpec{
			Name:      fmt.Sprintf("P%d", w+1),
			Bandwidth: platform.DefaultBandwidth * float64(w+1),
			FlopRate:  platform.DefaultFlopRate,
		}
	}
	for _, mb := range sizesMB {
		bytes := mb * 1e6
		r, err := vcluster.Run(cl, func(p *vcluster.Proc) {
			if p.IsMaster() {
				for w := 1; w <= workers; w++ {
					p.Send(w, 0, bytes)
				}
			} else {
				p.Recv(vcluster.MasterRank, 0)
			}
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig 8: %w", err)
		}
		res.X = append(res.X, mb)
		// Per-worker transfer duration, measured on the master side: the
		// master's send event spans exactly the wire time (the workers are
		// all ready at t = 0), whereas a worker-side reception event also
		// includes queueing behind the earlier sends.
		durs := make([]float64, workers)
		for _, e := range r.Trace.Events() {
			if e.Proc == vcluster.MasterRank && e.Peer >= 1 {
				durs[e.Peer-1] = e.End - e.Start
			}
		}
		for w := 0; w < workers; w++ {
			res.Series[w].Y = append(res.Series[w].Y, durs[w])
		}
	}
	res.Notes = append(res.Notes,
		"paper shape: time vs size is linear through the origin, slope proportional to 1/speed")
	return res, nil
}

// fig9Speeds is the 5-worker heterogeneous platform used for the trace
// visualization: mixed communication and computation speeds chosen (like
// the paper's run) so that only a strict subset of the workers is enrolled.
func fig9Speeds() platform.Speeds {
	return platform.Speeds{
		Comm: []float64{10, 8, 6, 1, 1},
		Comp: []float64{8, 9, 7, 2, 1},
	}
}

// Fig9Trace reproduces Figure 9: one execution of the FIFO (INC_C)
// schedule on a heterogeneous 5-worker platform, rendered as an ASCII Gantt
// chart. The returned result carries the chart in Gantt and the enrolled
// worker count in a note.
func Fig9Trace(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sp := fig9Speeds()
	size := 100
	app := platform.DefaultApp(size)
	plat := sp.Platform(app)
	solved, err := dls.Solve(context.Background(), dls.Request{Platform: plat, Strategy: dls.StrategyIncC, Eval: cfg.Eval})
	if err != nil {
		return nil, err
	}
	sched := solved.Schedule
	scaled := sched.ScaledToLoad(float64(cfg.M))
	run, err := mmapp.Run(mmapp.Params{
		App:         app,
		Speeds:      sp,
		Loads:       scaled.Alpha,
		SendOrder:   scaled.SendOrder,
		ReturnOrder: scaled.ReturnOrder,
		Latency:     cfg.Latency,
		Jitter:      cfg.Jitter,
		Seed:        cfg.Seed,
		CacheFactor: cfg.CacheFactor,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "9",
		Title:  "Visualizing an execution on a heterogeneous platform (FIFO = INC_C)",
		XLabel: "virtual time",
		Gantt:  run.Trace.Gantt(sp.P()+1, 100, run.ProcNames),
		SVG:    run.Trace.SVG(sp.P()+1, run.ProcNames),
	}
	parts := sched.Participants()
	res.Notes = append(res.Notes,
		fmt.Sprintf("enrolled %d of %d workers: %v (paper: only the fast workers compute)", len(parts), sp.P(), parts),
		fmt.Sprintf("simulated makespan %.4g s for M=%d size-%d products", run.Makespan, cfg.M, size))
	return res, nil
}

// Fig14Participation reproduces Figure 14: the resource-selection study on
// the Section 5.3.4 four-worker platform. For each number of available
// workers 1..4 (prefixes of the table), it reports the LP-predicted time,
// the measured time and the number of workers actually enrolled. x is the
// communication speed of the slow fourth worker: the paper shows x = 1
// (never used) and x = 3 (used when available).
func Fig14Participation(cfg Config, x float64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	full := platform.Fig14Speeds(x)
	size := 400
	app := platform.DefaultApp(size)

	res := &Result{
		ID:     fmt.Sprintf("14(x=%g)", x),
		Title:  fmt.Sprintf("Participating workers, INC_C, matrix size %d, x=%g", size, x),
		XLabel: "number of available workers",
		Series: []Series{
			{Name: "lp time (s)"},
			{Name: "real time (s)"},
			{Name: "nb of workers"},
		},
	}
	// One engine batch over the availability prefixes.
	speedSets := make([]platform.Speeds, full.P())
	reqs := make([]dls.Request, full.P())
	for avail := 1; avail <= full.P(); avail++ {
		sp := platform.Speeds{Comm: full.Comm[:avail], Comp: full.Comp[:avail]}
		speedSets[avail-1] = sp
		reqs[avail-1] = dls.Request{
			Platform: sp.Platform(app),
			Strategy: dls.StrategyIncC,
			Eval:     cfg.Eval,
			Load:     float64(cfg.M),
		}
	}
	solver, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	solved, err := solver.SolveBatch(context.Background(), reqs)
	if err != nil {
		return nil, err
	}
	for avail := 1; avail <= full.P(); avail++ {
		sched := solved[avail-1].Schedule
		seed := cfg.Seed + int64(avail)
		real, err := runReal(cfg, app, speedSets[avail-1], sched, seed)
		if err != nil {
			return nil, err
		}
		res.X = append(res.X, float64(avail))
		res.Series[0].Y = append(res.Series[0].Y, solved[avail-1].Makespan)
		res.Series[1].Y = append(res.Series[1].Y, real)
		res.Series[2].Y = append(res.Series[2].Y, float64(len(sched.Participants())))
	}
	if x <= 1 {
		res.Notes = append(res.Notes, "paper shape: the slow fourth worker is never used; time plateaus at 3 workers")
	} else {
		res.Notes = append(res.Notes, "paper shape: the fourth worker is used and yields a slight improvement")
	}
	return res, nil
}

// FigPairGap probes the paper's open complexity question (Section 5): how
// far the optimal FIFO and LIFO disciplines sit from the unrestricted
// (σ1, σ2) optimum, measured exhaustively on small heterogeneous star
// platforms. For each worker count p the figure averages, over random
// platforms, the ratio of the optimal-FIFO and optimal-LIFO throughputs to
// the best permutation pair's. The pair searches run through the engine
// strategy named by cfg.PairStrategy, making the figure double as an
// agreement workload for the branch-and-bound versus flat search
// algorithms (identical output expected at any setting, like the
// parallelism knob).
func FigPairGap(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pairStrategy := cfg.PairStrategy
	if pairStrategy == "" {
		pairStrategy = dls.StrategyPairExhaustive
	}
	// Worker counts stay at pair-search scale: p = 5 already means 120
	// send orders over up to 120 return orders per platform. Platform
	// count follows cfg.Platforms, capped so the default 50-platform
	// protocol stays interactive.
	ps := []int{3, 4, 5}
	platforms := cfg.Platforms
	if platforms > 20 {
		platforms = 20
	}
	res := &Result{
		ID:     "pair",
		Title:  "Distance of the FIFO/LIFO disciplines from the unrestricted (σ1, σ2) optimum",
		XLabel: "workers",
		Series: []Series{
			{Name: "best-pair rho"},
			{Name: "FIFO-opt/pair"},
			{Name: "LIFO-opt/pair"},
		},
	}
	solver, err := newEngine(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: pair: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	app := platform.DefaultApp(100)
	for _, p := range ps {
		reqs := make([]dls.Request, 0, 3*platforms)
		for i := 0; i < platforms; i++ {
			plat := platform.RandomSpeeds(rng, p, platform.Heterogeneous).Platform(app)
			for _, strat := range []string{pairStrategy, dls.StrategyFIFOExhaustive, dls.StrategyLIFOExhaustive} {
				reqs = append(reqs, dls.Request{Platform: plat, Strategy: strat, Eval: cfg.Eval})
			}
		}
		solved, err := solver.SolveBatch(context.Background(), reqs)
		if err != nil {
			return nil, fmt.Errorf("experiments: pair figure at p=%d: %w", p, err)
		}
		var pairRho, fifoRatio, lifoRatio float64
		for i := 0; i < platforms; i++ {
			pair := solved[3*i].Throughput
			pairRho += pair
			fifoRatio += solved[3*i+1].Throughput / pair
			lifoRatio += solved[3*i+2].Throughput / pair
		}
		res.X = append(res.X, float64(p))
		res.Series[0].Y = append(res.Series[0].Y, pairRho/float64(platforms))
		res.Series[1].Y = append(res.Series[1].Y, fifoRatio/float64(platforms))
		res.Series[2].Y = append(res.Series[2].Y, lifoRatio/float64(platforms))
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("pair search strategy: %s (averages over %d random heterogeneous platforms per point)", pairStrategy, platforms),
		"the ratios measure the paper's open question: neither discipline is optimal in general,",
		"  but both stay within a few percent of the unrestricted optimum on random platforms")
	return res, nil
}

// Runner is the common signature of all figure reproductions.
type Runner func(Config) (*Result, error)

// Registry maps figure identifiers to their reproduction functions, for
// the CLI and the benchmark harness.
func Registry() map[string]Runner {
	return map[string]Runner{
		"8":   Fig8Linearity,
		"9":   Fig9Trace,
		"10":  Fig10HomogeneousBus,
		"11":  Fig11HeteroComp,
		"12":  Fig12HeteroStar,
		"13a": Fig13aComputeX10,
		"13b": Fig13bCommX10,
		"14a": func(cfg Config) (*Result, error) { return Fig14Participation(cfg, 1) },
		"14b": func(cfg Config) (*Result, error) { return Fig14Participation(cfg, 3) },
		// Beyond the paper's figures: the Section 5 open-question probe.
		"pair": FigPairGap,
	}
}

// FigureIDs returns the registry keys in display order.
func FigureIDs() []string {
	ids := make([]string, 0, len(Registry()))
	for id := range Registry() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Table renders the result as an aligned text table, one row per X value.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", r.ID, r.Title)
	if len(r.X) > 0 {
		fmt.Fprintf(&b, "%-14s", r.XLabel)
		for _, s := range r.Series {
			fmt.Fprintf(&b, "  %22s", s.Name)
		}
		b.WriteString("\n")
		for i, x := range r.X {
			fmt.Fprintf(&b, "%-14.6g", x)
			for _, s := range r.Series {
				fmt.Fprintf(&b, "  %22.6g", s.Y[i])
			}
			b.WriteString("\n")
		}
	}
	if r.Gantt != "" {
		b.WriteString(r.Gantt)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the result as comma-separated values with a header row.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(r.XLabel))
	for _, s := range r.Series {
		b.WriteString(",")
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteString("\n")
	for i, x := range r.X {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range r.Series {
			fmt.Fprintf(&b, ",%g", s.Y[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
