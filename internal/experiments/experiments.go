// Package experiments reproduces the evaluation section of RR-5738
// (Section 5): the linearity test (Figure 8), the execution trace
// visualization (Figure 9), the heuristic comparisons over 50 random
// platforms (Figures 10-13) and the resource-selection study (Figure 14).
//
// Every experiment follows the paper's protocol: for each random platform
// the INC_C, INC_W and LIFO heuristics are evaluated twice — "lp", the
// theoretical makespan predicted by the linear program, and "real", the
// makespan measured by executing the rounded integer schedule as a real
// message-passing program on the virtual cluster (with the configured
// latency, jitter and cache-model knobs standing in for the paper's
// hardware effects). All series are normalised by the INC_C lp prediction
// of the same platform, exactly like the paper's plots.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"

	"repro/dls"
	"repro/internal/mmapp"
	"repro/internal/platform"
	"repro/internal/rounding"
	"repro/internal/schedule"
	"repro/internal/stats"
)

// Config parameterises an experiment run. DefaultConfig reproduces the
// paper's settings; tests and benchmarks shrink Platforms and Sizes.
type Config struct {
	// Platforms is the number of random platforms averaged (paper: 50).
	Platforms int
	// Workers is the number of workers per platform (paper: 11, one master
	// and 11 workers on the 12-node cluster).
	Workers int
	// Sizes are the matrix sizes swept (paper: 40..200).
	Sizes []int
	// M is the total number of matrix products (paper: 1000).
	M int
	// Seed drives platform generation and simulation noise.
	Seed int64
	// Latency is the per-message start-up time of the simulated cluster.
	Latency float64
	// Jitter is the simulated performance-variation amplitude.
	Jitter float64
	// CacheFactor models super-cubic real matrix multiplication
	// (see mmapp.Params.CacheFactor); it is what makes the "real"
	// measurements drift from the linear model as matrices grow.
	CacheFactor float64
	// ReportSpread adds one "(sd)" series per averaged series, holding the
	// sample standard deviation across the random platforms — the spread
	// hidden behind the paper's averaged curves.
	ReportSpread bool
	// Parallelism is the engine worker-pool size used for the per-size LP
	// batches; 0 means GOMAXPROCS. Results are deterministic regardless.
	Parallelism int
	// Eval selects the scenario-evaluation backend for every engine
	// request of the run. The zero value (EvalAuto) tiers the closed-form
	// and tight-system backends over the simplex; the agreement between
	// backends is itself covered by the internal/eval property tests.
	Eval dls.EvalMode
	// PairStrategy names the engine strategy driving the pair-search
	// figure ("pair"): StrategyPairExhaustive when empty (the default
	// algorithm — branch-and-bound for float64 backends), or
	// StrategyPairBB / StrategyPairFlat to pin one algorithm for
	// agreement runs (the CLI's -pair-search knob).
	PairStrategy string
	// SearchParallelism is the intra-request worker count of the
	// exhaustive order-space searches (the "pair" figure): 0 uses one
	// worker per CPU, 1 the serial search. Results are byte-identical at
	// every setting. The experiment default is 1: the per-size batches
	// already saturate the CPU across requests, so nesting intra-search
	// workers inside them only adds scheduling noise.
	SearchParallelism int
}

// newEngine builds the dls solver every experiment runs on: a worker pool
// for the LP batches plus a result cache (random families draw duplicate
// platforms, homogeneous ones especially, which the cache and batch
// deduplication then serve without re-solving).
func newEngine(cfg Config) (*dls.Solver, error) {
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	return dls.NewSolver(dls.WithParallelism(par), dls.WithCache(512),
		dls.WithSearchParallelism(cfg.SearchParallelism))
}

// DefaultConfig returns the paper's experimental setup with the simulator
// realism knobs documented in DESIGN.md.
func DefaultConfig() Config {
	return Config{
		Platforms:         50,
		Workers:           11,
		Sizes:             []int{40, 60, 80, 100, 120, 140, 160, 180, 200},
		M:                 1000,
		Seed:              2006,
		Latency:           5e-5,
		Jitter:            0.05,
		CacheFactor:       0.002,
		SearchParallelism: 1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Platforms <= 0 || c.Workers <= 0 || c.M <= 0 {
		return fmt.Errorf("experiments: Platforms, Workers and M must be positive (%d, %d, %d)", c.Platforms, c.Workers, c.M)
	}
	if len(c.Sizes) == 0 {
		return fmt.Errorf("experiments: no matrix sizes")
	}
	for _, s := range c.Sizes {
		if s <= 0 {
			return fmt.Errorf("experiments: matrix size %d must be positive", s)
		}
	}
	return nil
}

// Series is one named curve of a figure.
type Series struct {
	Name string
	Y    []float64
}

// Result is the reproduced data of one figure: X values and the same
// series the paper plots, plus free-form notes (and, for the trace figure,
// an ASCII Gantt chart and an SVG rendering).
type Result struct {
	ID     string
	Title  string
	XLabel string
	X      []float64
	Series []Series
	Notes  []string
	Gantt  string
	SVG    string
}

// runReal executes one heuristic schedule as a rounded integer workload on
// the virtual cluster and returns the measured makespan.
func runReal(cfg Config, app platform.App, sp platform.Speeds, sched *schedule.Schedule, seed int64) (float64, error) {
	counts, err := rounding.Distribute(sched.Alpha, sched.SendOrder, cfg.M)
	if err != nil {
		return 0, err
	}
	loads := make([]float64, len(counts))
	for i, n := range counts {
		loads[i] = float64(n)
	}
	res, err := mmapp.Run(mmapp.Params{
		App:         app,
		Speeds:      sp,
		Loads:       loads,
		SendOrder:   sched.SendOrder,
		ReturnOrder: sched.ReturnOrder,
		Latency:     cfg.Latency,
		Jitter:      cfg.Jitter,
		Seed:        seed,
		CacheFactor: cfg.CacheFactor,
	})
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

// heuristic identifies one scheduling policy compared in Section 5.3 by
// its display name and its engine strategy.
type heuristic struct {
	name     string
	strategy string
}

func heuristics(includeIncW bool) []heuristic {
	hs := []heuristic{{"INC_C", dls.StrategyIncC}}
	if includeIncW {
		hs = append(hs, heuristic{"INC_W", dls.StrategyIncW})
	}
	hs = append(hs, heuristic{"LIFO", dls.StrategyLIFO})
	return hs
}

// comparison runs the Figures 10-13 protocol: for each matrix size, average
// over cfg.Platforms random platforms of the given family (with optional
// speed modification) the normalised lp and real times of each heuristic.
func comparison(cfg Config, id, title string, family platform.Family, mod func(platform.Speeds) platform.Speeds, includeIncW bool) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	speedSets := make([]platform.Speeds, cfg.Platforms)
	for i := range speedSets {
		speedSets[i] = platform.RandomSpeeds(rng, cfg.Workers, family)
		if mod != nil {
			speedSets[i] = mod(speedSets[i])
		}
	}
	hs := heuristics(includeIncW)
	solver, err := newEngine(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}

	res := &Result{
		ID:     id,
		Title:  title,
		XLabel: "matrix size",
	}
	names := []string{"INC_C lp (s)"}
	for _, h := range hs {
		names = append(names, h.name+" real/INC_C lp")
		if h.name != "INC_C" {
			names = append(names, h.name+" lp/INC_C lp")
		}
	}
	for _, n := range names {
		res.Series = append(res.Series, Series{Name: n})
	}
	if cfg.ReportSpread {
		for _, n := range names {
			res.Series = append(res.Series, Series{Name: n + " (sd)"})
		}
	}
	seriesIdx := make(map[string]int, len(res.Series))
	for i, s := range res.Series {
		seriesIdx[s.Name] = i
	}

	for _, size := range cfg.Sizes {
		app := platform.DefaultApp(size)
		samples := make([][]float64, len(names))
		record := func(name string, v float64) {
			samples[seriesIdx[name]] = append(samples[seriesIdx[name]], v)
		}
		// All LP solves of this size — every (platform, heuristic) pair —
		// go through the engine as one deduplicated, concurrent batch.
		reqs := make([]dls.Request, 0, len(speedSets)*len(hs))
		for _, sp := range speedSets {
			plat := sp.Platform(app)
			for _, h := range hs {
				reqs = append(reqs, dls.Request{
					Platform: plat,
					Strategy: h.strategy,
					Eval:     cfg.Eval,
					Load:     float64(cfg.M),
				})
			}
		}
		lp, err := solver.SolveBatch(context.Background(), reqs)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s LP batch at size %d: %w", id, size, err)
		}
		for pi, sp := range speedSets {
			// Reference: INC_C lp prediction for this platform (hs[0]).
			refLP := lp[pi*len(hs)].Makespan
			record("INC_C lp (s)", refLP)
			for hi, h := range hs {
				r := lp[pi*len(hs)+hi]
				if h.name != "INC_C" {
					record(h.name+" lp/INC_C lp", r.Makespan/refLP)
				}
				seed := cfg.Seed*1_000_003 + int64(pi)*1009 + int64(size)
				real, err := runReal(cfg, app, sp, r.Schedule, seed)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s %s real run on platform %d: %w", id, h.name, pi, err)
				}
				record(h.name+" real/INC_C lp", real/refLP)
			}
		}
		res.X = append(res.X, float64(size))
		for i, n := range names {
			sum := stats.Summarize(samples[i])
			res.Series[seriesIdx[n]].Y = append(res.Series[seriesIdx[n]].Y, sum.Mean)
			if cfg.ReportSpread {
				res.Series[seriesIdx[n+" (sd)"]].Y = append(res.Series[seriesIdx[n+" (sd)"]].Y, sum.Std)
			}
		}
	}
	return res, nil
}

// Fig10HomogeneousBus reproduces Figure 10: 50 homogeneous random
// platforms. INC_W is omitted because all FIFO strategies coincide on
// homogeneous platforms, as in the paper.
func Fig10HomogeneousBus(cfg Config) (*Result, error) {
	r, err := comparison(cfg, "10", "Average execution times, homogeneous random platforms", platform.Homogeneous, nil, false)
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes,
		"paper prose: LIFO better than FIFO on homogeneous platforms",
		"model deviation: on a bus the exact LP gives FIFO >= LIFO (consistent with the",
		"  Adler-Gong-Rosenberg theorem the paper cites: FIFO is optimal among all protocols",
		"  on a bus); our LIFO/INC_C lp ratio therefore sits slightly above 1 — see EXPERIMENTS.md",
		"INC_W omitted: all FIFO strategies coincide on homogeneous platforms")
	return r, nil
}

// Fig11HeteroComp reproduces Figure 11: homogeneous communication,
// heterogeneous computation (the Theorem 2 platform family).
func Fig11HeteroComp(cfg Config) (*Result, error) {
	r, err := comparison(cfg, "11", "Average execution times, homogeneous communication / heterogeneous computation", platform.HomCommHeteroComp, nil, true)
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes,
		"with homogeneous links every FIFO order shares the same LP optimum (bus property),",
		"  so INC_W lp/INC_C lp = 1 exactly; the heuristics separate only in the real runs",
		"paper prose also ranks LIFO < INC_C; with homogeneous links the platform is a bus,",
		"  where the exact LP gives FIFO >= LIFO (see Figure 10 note)")
	return r, nil
}

// Fig12HeteroStar reproduces Figure 12: fully heterogeneous star
// platforms.
func Fig12HeteroStar(cfg Config) (*Result, error) {
	r, err := comparison(cfg, "12", "Average execution times, heterogeneous random platforms", platform.Heterogeneous, nil, true)
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes,
		"paper shape: INC_C best FIFO (Theorem 1); LIFO overtakes the FIFO strategies as",
		"  matrices grow (compute-heavier regime); real within ~20% of lp")
	return r, nil
}

// Fig13aComputeX10 reproduces Figure 13(a): heterogeneous platforms with
// computation ten times faster.
func Fig13aComputeX10(cfg Config) (*Result, error) {
	r, err := comparison(cfg, "13a", "Heterogeneous random platforms, calculation power x10", platform.Heterogeneous,
		func(s platform.Speeds) platform.Speeds { return s.ScaleComp(10) }, true)
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes, "paper shape: LIFO real degrades at small sizes; the FIFO strategies get close to each other")
	return r, nil
}

// Fig13bCommX10 reproduces Figure 13(b): heterogeneous platforms with
// communication ten times faster — the regime where the linear cost model
// reaches its limits.
func Fig13bCommX10(cfg Config) (*Result, error) {
	r, err := comparison(cfg, "13b", "Heterogeneous random platforms, communication power x10", platform.Heterogeneous,
		func(s platform.Speeds) platform.Speeds { return s.ScaleComm(10) }, true)
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes, "paper shape: real/lp grows roughly linearly with matrix size (limits of the linear cost model)")
	return r, nil
}
