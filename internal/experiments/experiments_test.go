package experiments

import (
	"math"
	"strings"
	"testing"
)

// smallConfig keeps the sweeps quick while preserving the protocol.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Platforms = 6
	cfg.Workers = 5
	cfg.Sizes = []int{40, 120, 200}
	cfg.M = 200
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Platforms: 0, Workers: 1, M: 1, Sizes: []int{10}},
		{Platforms: 1, Workers: 0, M: 1, Sizes: []int{10}},
		{Platforms: 1, Workers: 1, M: 0, Sizes: []int{10}},
		{Platforms: 1, Workers: 1, M: 1, Sizes: nil},
		{Platforms: 1, Workers: 1, M: 1, Sizes: []int{0}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func seriesByName(t *testing.T, r *Result, name string) []float64 {
	t.Helper()
	for _, s := range r.Series {
		if s.Name == name {
			return s.Y
		}
	}
	t.Fatalf("series %q not found in %v", name, r.Series)
	return nil
}

func TestFig8LinearityShape(t *testing.T) {
	res, err := Fig8Linearity(Config{Platforms: 1, Workers: 1, M: 1, Sizes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 || len(res.X) != 10 {
		t.Fatalf("series=%d points=%d", len(res.Series), len(res.X))
	}
	// Linearity: time(5MB) == 10 × time(0.5MB) for every worker; and the
	// slowest worker (speed 1) is exactly 5× slower than speed 5.
	for w, s := range res.Series {
		ratio := s.Y[len(s.Y)-1] / s.Y[0]
		if math.Abs(ratio-10) > 1e-9 {
			t.Errorf("worker %d: time(5MB)/time(0.5MB) = %g, want 10 (linear)", w+1, ratio)
		}
	}
	slow, fast := res.Series[0].Y[0], res.Series[4].Y[0]
	if math.Abs(slow/fast-5) > 1e-9 {
		t.Errorf("speed-1 vs speed-5 slope ratio = %g, want 5", slow/fast)
	}
}

func TestFig8WithLatencyBreaksProportionality(t *testing.T) {
	cfg := Config{Platforms: 1, Workers: 1, M: 1, Sizes: []int{1}, Latency: 0.05}
	res, err := Fig8Linearity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.Series[0].Y[len(res.Series[0].Y)-1] / res.Series[0].Y[0]
	if ratio >= 10 {
		t.Errorf("with latency the time ratio %g must fall below the size ratio 10", ratio)
	}
}

func TestFig9TraceEnrollsSubset(t *testing.T) {
	cfg := smallConfig()
	res, err := Fig9Trace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gantt == "" {
		t.Fatal("no Gantt chart")
	}
	for _, want := range []string{"master", "P1", "legend"} {
		if !strings.Contains(res.Gantt, want) {
			t.Errorf("Gantt missing %q", want)
		}
	}
	// The fig-9 platform has two hopeless workers; the note must report a
	// strict subset enrolled.
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "enrolled 3 of 5") || strings.Contains(n, "enrolled 4 of 5") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a strict subset of workers enrolled; notes: %v", res.Notes)
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10HomogeneousBus(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Homogeneous platforms: no INC_W series.
	for _, s := range res.Series {
		if strings.Contains(s.Name, "INC_W") {
			t.Errorf("INC_W must be omitted on homogeneous platforms")
		}
	}
	// Homogeneous platforms are buses: the exact LP gives FIFO >= LIFO
	// (Adler-Gong-Rosenberg; see EXPERIMENTS.md for the deviation from the
	// paper's prose), so the LIFO ratio sits in [1, ~1.1].
	for i, v := range seriesByName(t, res, "LIFO lp/INC_C lp") {
		if v < 1-1e-9 {
			t.Errorf("size %g: LIFO lp ratio %g < 1 — LIFO beat optimal FIFO on a bus, contradicting the pair-exhaustive theorem", res.X[i], v)
		}
		if v > 1.15 {
			t.Errorf("size %g: LIFO lp ratio %g implausibly large", res.X[i], v)
		}
	}
	// Real measurements stay within a sane band of the prediction.
	for i, v := range seriesByName(t, res, "INC_C real/INC_C lp") {
		if v < 0.9 || v > 2.5 {
			t.Errorf("size %g: INC_C real/lp = %g outside sanity band", res.X[i], v)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	res, err := Fig11HeteroComp(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	lifoLP := seriesByName(t, res, "LIFO lp/INC_C lp")
	incwLP := seriesByName(t, res, "INC_W lp/INC_C lp")
	for i := range res.X {
		// Theorem: INC_C optimal among FIFO orders → INC_W never predicts
		// a faster run.
		if incwLP[i] < 1-1e-9 {
			t.Errorf("size %g: INC_W lp ratio %g < 1 contradicts Theorem 1", res.X[i], incwLP[i])
		}
		// Homogeneous-communication platforms are buses, where FIFO >= LIFO
		// holds exactly; the LIFO ratio stays in a narrow band above 1.
		if lifoLP[i] < 1-1e-9 || lifoLP[i] > 1.15 {
			t.Errorf("size %g: LIFO lp ratio %g outside [1, 1.15]", res.X[i], lifoLP[i])
		}
	}
}

func TestFig12Shape(t *testing.T) {
	res, err := Fig12HeteroStar(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	incwLP := seriesByName(t, res, "INC_W lp/INC_C lp")
	for i := range res.X {
		if incwLP[i] < 1-1e-9 {
			t.Errorf("size %g: INC_W lp ratio %g < 1 contradicts Theorem 1", res.X[i], incwLP[i])
		}
	}
	// Heterogeneous platforms: INC_W should be strictly worse somewhere.
	worse := false
	for _, v := range incwLP {
		if v > 1+1e-6 {
			worse = true
		}
	}
	if !worse {
		t.Error("INC_W never worse than INC_C on heterogeneous platforms — suspicious")
	}
}

func TestFig13bLinearModelLimit(t *testing.T) {
	cfg := smallConfig()
	res, err := Fig13bCommX10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With fast communication the runs are compute-bound and the cache
	// factor makes real/lp grow with the matrix size in the tail of the
	// sweep (at the smallest sizes the per-message latency adds its own
	// bump, as in the paper's small-size anomalies).
	ratios := seriesByName(t, res, "INC_C real/INC_C lp")
	mid, last := ratios[len(ratios)/2], ratios[len(ratios)-1]
	if last <= mid {
		t.Errorf("real/lp must grow with size in the comm-x10 regime: mid %g, last %g", mid, last)
	}
	if last < 1.05 {
		t.Errorf("real/lp = %g at the largest size; expected a visible departure from the linear model", last)
	}
}

func TestFig13aComputeX10Runs(t *testing.T) {
	res, err := Fig13aComputeX10(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.X) != 3 {
		t.Fatalf("points = %d", len(res.X))
	}
	for _, s := range res.Series {
		for i, v := range s.Y {
			if v <= 0 || math.IsNaN(v) {
				t.Errorf("series %q point %d = %g", s.Name, i, v)
			}
		}
	}
}

func TestFig14ParticipationX1(t *testing.T) {
	cfg := smallConfig()
	res, err := Fig14Participation(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	nb := seriesByName(t, res, "nb of workers")
	if len(nb) != 4 {
		t.Fatalf("available-worker sweep has %d points", len(nb))
	}
	// Figure 14(a): the slow fourth worker never participates.
	if nb[3] != 3 {
		t.Errorf("with 4 available and x=1, %g workers used; paper uses 3", nb[3])
	}
	// Monotone improvement until the plateau.
	lp := seriesByName(t, res, "lp time (s)")
	if !(lp[0] > lp[1] && lp[1] > lp[2]) {
		t.Errorf("lp time must strictly improve up to 3 workers: %v", lp)
	}
	if math.Abs(lp[3]-lp[2]) > 1e-9 {
		t.Errorf("lp time must plateau at 3 workers (x=1): %v", lp)
	}
}

func TestFig14ParticipationX3(t *testing.T) {
	cfg := smallConfig()
	res, err := Fig14Participation(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	nb := seriesByName(t, res, "nb of workers")
	if nb[3] != 4 {
		t.Errorf("with 4 available and x=3, %g workers used; paper uses 4", nb[3])
	}
	lp := seriesByName(t, res, "lp time (s)")
	if lp[3] >= lp[2] {
		t.Errorf("the fourth worker (x=3) must improve the lp time: %v", lp)
	}
}

// TestFigPairGap pins the open-question probe: the FIFO and LIFO optima
// can never beat the unrestricted pair optimum (ratios ≤ 1 up to LP
// noise), and the figure's output is identical whichever pair-search
// algorithm computes it — the bb/flat knob changes exploration, never
// results.
func TestFigPairGap(t *testing.T) {
	cfg := smallConfig()
	cfg.Platforms = 4
	run := func(strategy string) *Result {
		c := cfg
		c.PairStrategy = strategy
		res, err := FigPairGap(c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bb := run("pair-bb")
	for _, name := range []string{"FIFO-opt/pair", "LIFO-opt/pair"} {
		for i, v := range seriesByName(t, bb, name) {
			if v > 1+1e-9 {
				t.Errorf("%s at p=%g is %g > 1: a discipline beat the unrestricted optimum", name, bb.X[i], v)
			}
			if v < 0.5 {
				t.Errorf("%s at p=%g is %g — implausibly far from the optimum", name, bb.X[i], v)
			}
		}
	}
	flat := run("pair-flat")
	for si := range bb.Series {
		for i := range bb.Series[si].Y {
			a, b := bb.Series[si].Y[i], flat.Series[si].Y[i]
			if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
				t.Errorf("series %q point %d: bb %g != flat %g", bb.Series[si].Name, i, a, b)
			}
		}
	}
}

func TestRegistryCoversAllFigures(t *testing.T) {
	ids := FigureIDs()
	want := []string{"8", "9", "10", "11", "12", "13a", "13b", "14a", "14b", "pair"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("registry order %v, want %v", ids, want)
			break
		}
	}
	reg := Registry()
	cfg := smallConfig()
	// Every runner must execute (cheap figures only; the sweep figures are
	// covered individually above).
	for _, id := range []string{"9", "14a"} {
		if _, err := reg[id](cfg); err != nil {
			t.Errorf("figure %s: %v", id, err)
		}
	}
}

func TestTableAndCSVRendering(t *testing.T) {
	res := &Result{
		ID:     "t",
		Title:  "test, with comma",
		XLabel: "x",
		X:      []float64{1, 2},
		Series: []Series{{Name: "a,b", Y: []float64{3, 4}}},
		Notes:  []string{"hello"},
		Gantt:  "GANTT",
	}
	tab := res.Table()
	for _, want := range []string{"Figure t", "a,b", "hello", "GANTT", "3", "4"} {
		if !strings.Contains(tab, want) {
			t.Errorf("Table missing %q:\n%s", want, tab)
		}
	}
	csv := res.CSV()
	if !strings.Contains(csv, `"a,b"`) {
		t.Errorf("CSV must quote names with commas:\n%s", csv)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Errorf("CSV has %d lines, want 3:\n%s", len(lines), csv)
	}
	if !strings.Contains(csv, `"esc""aped"`) {
		if csvEscape(`esc"aped`) != `"esc""aped"` {
			t.Error("csvEscape must double quotes")
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := smallConfig()
	a, err := Fig12HeteroStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig12HeteroStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Series {
		for i := range a.Series[si].Y {
			if a.Series[si].Y[i] != b.Series[si].Y[i] {
				t.Fatalf("series %q point %d differs across identical runs", a.Series[si].Name, i)
			}
		}
	}
}

func BenchmarkFig12SmallSweep(b *testing.B) {
	cfg := smallConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fig12HeteroStar(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestReportSpreadAddsSdSeries(t *testing.T) {
	cfg := smallConfig()
	cfg.ReportSpread = true
	res, err := Fig12HeteroStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sd := seriesByName(t, res, "INC_C real/INC_C lp (sd)")
	if len(sd) != len(res.X) {
		t.Fatalf("sd series has %d points for %d sizes", len(sd), len(res.X))
	}
	for i, v := range sd {
		if v < 0 {
			t.Errorf("negative standard deviation %g at size %g", v, res.X[i])
		}
	}
	// Spread must be non-trivial across random platforms but far below the
	// mean (the paper plots averages for a reason).
	mean := seriesByName(t, res, "INC_C real/INC_C lp")
	for i := range sd {
		if sd[i] > mean[i] {
			t.Errorf("sd %g exceeds mean %g at size %g", sd[i], mean[i], res.X[i])
		}
	}
	// Without the flag no sd series exists.
	plain, err := Fig12HeteroStar(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plain.Series {
		if strings.HasSuffix(s.Name, "(sd)") {
			t.Errorf("unexpected sd series %q without ReportSpread", s.Name)
		}
	}
}
