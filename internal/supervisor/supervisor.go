// Package supervisor manages the lifecycle of a local fleet of dlsd
// replicas: it spawns one process per slot with a per-replica port,
// probes /healthz on the injected dls.Clock, restarts crashes with
// jittered exponential backoff, detects crash loops (giving a slot up
// after too many rapid failures), drains gracefully on shutdown
// (SIGTERM, then SIGKILL after a budget), and performs rolling restarts
// that only kill a predecessor once its successor is healthy.
//
// Everything time-shaped — probe intervals, backoff, drain budgets —
// runs on a dls.Clock, so the whole state machine is testable on the
// virtual clock without sleeping.
package supervisor

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"syscall"
	"time"

	"repro/dls"
)

// Prober checks one replica's health: nil means healthy. The supervisor
// bounds each call with Config.ProbeTimeout via ctx. addr is
// "host:port".
type Prober func(ctx context.Context, addr string) error

// State is a replica slot's position in the supervision state machine.
type State int

const (
	// StateStarting: process launched, waiting for the first healthy
	// probe.
	StateStarting State = iota
	// StateHealthy: probes are passing.
	StateHealthy
	// StateBackoff: the process died (or never got healthy); the slot is
	// waiting out its restart backoff.
	StateBackoff
	// StateDraining: SIGTERM sent, waiting for exit.
	StateDraining
	// StateStopped: the supervisor shut the slot down (context
	// cancelled).
	StateStopped
	// StateGivenUp: crash-loop detection fired; the slot will not be
	// restarted.
	StateGivenUp
)

// String names the state for status endpoints and logs.
func (s State) String() string {
	switch s {
	case StateStarting:
		return "starting"
	case StateHealthy:
		return "healthy"
	case StateBackoff:
		return "backoff"
	case StateDraining:
		return "draining"
	case StateStopped:
		return "stopped"
	case StateGivenUp:
		return "given-up"
	}
	return "unknown"
}

// EventKind discriminates supervision events.
type EventKind int

const (
	// EventStarted: a process was launched for the slot.
	EventStarted EventKind = iota
	// EventHealthy: the slot's first passing probe after a start.
	EventHealthy
	// EventProbeFailed: one failed health probe (not yet fatal).
	EventProbeFailed
	// EventUnhealthy: consecutive probe failures crossed the threshold;
	// the process will be drained and restarted.
	EventUnhealthy
	// EventExited: the process exited on its own.
	EventExited
	// EventBackingOff: the slot sleeps Event.Delay before restarting.
	EventBackingOff
	// EventGaveUp: crash-loop detection retired the slot.
	EventGaveUp
	// EventDraining: SIGTERM sent.
	EventDraining
	// EventKilled: the drain budget lapsed; SIGKILL sent.
	EventKilled
	// EventReplaced: a rolling restart swapped in a healthy successor.
	EventReplaced
	// EventReplaceFailed: the successor never became healthy; the
	// predecessor keeps serving.
	EventReplaceFailed
	// EventStopped: the slot shut down because the supervisor is
	// stopping.
	EventStopped
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventStarted:
		return "started"
	case EventHealthy:
		return "healthy"
	case EventProbeFailed:
		return "probe-failed"
	case EventUnhealthy:
		return "unhealthy"
	case EventExited:
		return "exited"
	case EventBackingOff:
		return "backing-off"
	case EventGaveUp:
		return "gave-up"
	case EventDraining:
		return "draining"
	case EventKilled:
		return "killed"
	case EventReplaced:
		return "replaced"
	case EventReplaceFailed:
		return "replace-failed"
	case EventStopped:
		return "stopped"
	}
	return "unknown"
}

// Event is one supervision occurrence, delivered to Config.OnEvent.
type Event struct {
	Slot  int
	Kind  EventKind
	Addr  string
	Delay time.Duration // EventBackingOff: the chosen backoff
	Err   error         // probe/exit error when there is one
}

// Config parameterises a Supervisor.
type Config struct {
	// Replicas is the fleet size (required, >= 1). BasePort is the first
	// data port; slot i serves on BasePort+i, with BasePort+Replicas+i as
	// its alternate for rolling restarts. Host defaults to 127.0.0.1.
	Replicas int
	BasePort int
	Host     string
	// Start launches a slot's process (required). Probe checks health
	// (required).
	Start Starter
	Probe Prober
	// Clock drives every delay (default: system clock).
	Clock dls.Clock
	// ProbeInterval is the health-check period (default 500ms);
	// ProbeTimeout bounds each probe (default 2s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// StartupTimeout bounds the wait for a fresh process's first healthy
	// probe; past it the process is killed and the restart path taken
	// (default 15s). ReplaceTimeout is the same budget for a rolling
	// restart's successor (default: StartupTimeout).
	StartupTimeout time.Duration
	ReplaceTimeout time.Duration
	// UnhealthyAfter is the consecutive-probe-failure threshold that
	// restarts a healthy replica (default 3).
	UnhealthyAfter int
	// BackoffBase/BackoffMax shape the restart backoff: base doubles per
	// consecutive failure up to max (defaults 200ms / 10s), scaled by
	// +-Jitter (default 0.2; negative disables). Seed fixes the jitter
	// sequence.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	Jitter      float64
	Seed        int64
	// CrashLoopWindow/CrashLoopMax: when a slot fails CrashLoopMax times
	// within CrashLoopWindow, the supervisor gives it up instead of
	// restarting forever (defaults: 1min / 5).
	CrashLoopWindow time.Duration
	CrashLoopMax    int
	// DrainTimeout is the SIGTERM -> SIGKILL budget (default 10s).
	DrainTimeout time.Duration
	// OnEvent observes every supervision event (optional; called from
	// replica goroutines, must not block).
	OnEvent func(Event)
}

func (cfg Config) withDefaults() (Config, error) {
	if cfg.Replicas < 1 {
		return cfg, errors.New("supervisor: Replicas must be >= 1")
	}
	if cfg.Start == nil {
		return cfg, errors.New("supervisor: Start is required")
	}
	if cfg.Probe == nil {
		return cfg, errors.New("supervisor: Probe is required")
	}
	if cfg.Host == "" {
		cfg.Host = "127.0.0.1"
	}
	if cfg.Clock == nil {
		cfg.Clock = dls.SystemClock()
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.StartupTimeout <= 0 {
		cfg.StartupTimeout = 15 * time.Second
	}
	if cfg.ReplaceTimeout <= 0 {
		cfg.ReplaceTimeout = cfg.StartupTimeout
	}
	if cfg.UnhealthyAfter <= 0 {
		cfg.UnhealthyAfter = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 200 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 10 * time.Second
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.2
	} else if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.CrashLoopWindow <= 0 {
		cfg.CrashLoopWindow = time.Minute
	}
	if cfg.CrashLoopMax <= 0 {
		cfg.CrashLoopMax = 5
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	return cfg, nil
}

// ReplicaStatus is one slot's externally visible state.
type ReplicaStatus struct {
	Slot     int    `json:"slot"`
	Addr     string `json:"addr"`
	State    string `json:"state"`
	Restarts int    `json:"restarts"`
	LastErr  string `json:"last_err,omitempty"`
}

// Supervisor runs the fleet. Build with New, drive with Run.
type Supervisor struct {
	cfg      Config
	clock    dls.Clock
	replicas []*replica
	wg       sync.WaitGroup

	rngMu sync.Mutex
	rng   *rand.Rand
}

// New validates cfg and builds the supervisor (processes start in Run).
func New(cfg Config) (*Supervisor, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Supervisor{
		cfg:   cfg,
		clock: cfg.Clock,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	s.replicas = make([]*replica, cfg.Replicas)
	for i := range s.replicas {
		s.replicas[i] = &replica{
			sup:       s,
			slot:      i,
			ports:     [2]int{cfg.BasePort + i, cfg.BasePort + cfg.Replicas + i},
			replaceCh: make(chan *replaceReq),
		}
	}
	return s, nil
}

// Run spawns and supervises every slot until ctx is cancelled, then
// drains the fleet and returns. The returned error joins the give-up
// errors of slots retired by crash-loop detection.
func (s *Supervisor) Run(ctx context.Context) error {
	for _, r := range s.replicas {
		s.wg.Add(1)
		go func(r *replica) {
			defer s.wg.Done()
			r.loop(ctx)
		}(r)
	}
	s.wg.Wait()
	var errs []error
	for _, r := range s.replicas {
		r.mu.Lock()
		if r.state == StateGivenUp {
			errs = append(errs, fmt.Errorf("supervisor: slot %d gave up after %d rapid failures: %w",
				r.slot, s.cfg.CrashLoopMax, r.lastErr))
		}
		r.mu.Unlock()
	}
	return errors.Join(errs...)
}

// Addresses returns every slot's current serving address (fleet wiring
// for load generators; breakers deal with unhealthy entries).
func (s *Supervisor) Addresses() []string {
	addrs := make([]string, len(s.replicas))
	for i, r := range s.replicas {
		addrs[i] = r.addr()
	}
	return addrs
}

// Snapshot returns every slot's status.
func (s *Supervisor) Snapshot() []ReplicaStatus {
	out := make([]ReplicaStatus, len(s.replicas))
	for i, r := range s.replicas {
		r.mu.Lock()
		out[i] = ReplicaStatus{
			Slot:     r.slot,
			Addr:     fmt.Sprintf("%s:%d", s.cfg.Host, r.ports[r.active]),
			State:    r.state.String(),
			Restarts: r.restarts,
		}
		if r.lastErr != nil {
			out[i].LastErr = r.lastErr.Error()
		}
		r.mu.Unlock()
	}
	return out
}

// HealthyCount returns how many slots are currently healthy.
func (s *Supervisor) HealthyCount() int {
	n := 0
	for _, r := range s.replicas {
		r.mu.Lock()
		if r.state == StateHealthy {
			n++
		}
		r.mu.Unlock()
	}
	return n
}

// RollingRestart replaces every healthy slot in order: each slot starts
// a successor on its alternate port, waits for it to become healthy,
// drains the predecessor, and only then moves to the next slot — the
// fleet never loses more than the slot being replaced. Slots that are
// not healthy are skipped (they are already restarting). The returned
// error joins per-slot replacement failures; a failed slot keeps its
// predecessor serving.
func (s *Supervisor) RollingRestart(ctx context.Context) error {
	var errs []error
	for _, r := range s.replicas {
		r.mu.Lock()
		healthy := r.state == StateHealthy
		r.mu.Unlock()
		if !healthy {
			continue
		}
		req := &replaceReq{done: make(chan error, 1)}
		select {
		case r.replaceCh <- req:
		case <-ctx.Done():
			return errors.Join(append(errs, ctx.Err())...)
		}
		select {
		case err := <-req.done:
			if err != nil {
				errs = append(errs, fmt.Errorf("supervisor: slot %d: %w", r.slot, err))
			}
		case <-ctx.Done():
			return errors.Join(append(errs, ctx.Err())...)
		}
	}
	return errors.Join(errs...)
}

// backoff computes the jittered exponential delay for consecutive
// failure number exp (0-based).
func (s *Supervisor) backoff(exp int) time.Duration {
	d := s.cfg.BackoffBase
	for i := 0; i < exp && d < s.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	if j := s.cfg.Jitter; j > 0 {
		s.rngMu.Lock()
		f := 1 + j*(2*s.rng.Float64()-1)
		s.rngMu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// replaceReq asks a replica loop to perform its slice of a rolling
// restart.
type replaceReq struct {
	done chan error
}

// replica is one supervised fleet slot.
type replica struct {
	sup       *Supervisor
	slot      int
	ports     [2]int
	replaceCh chan *replaceReq

	mu       sync.Mutex
	active   int // index into ports
	state    State
	restarts int
	lastErr  error
}

// superviseOutcome says why supervise returned.
type superviseOutcome int

const (
	// outCrashed: the process exited, failed to start, or never became
	// healthy.
	outCrashed superviseOutcome = iota
	// outUnhealthy: probes failed past the threshold; the process was
	// drained.
	outUnhealthy
	// outStopped: the supervisor is shutting down; the process was
	// drained.
	outStopped
)

func (r *replica) addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("%s:%d", r.sup.cfg.Host, r.ports[r.active])
}

func (r *replica) port() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ports[r.active]
}

func (r *replica) setState(st State) {
	r.mu.Lock()
	r.state = st
	r.mu.Unlock()
}

func (r *replica) setErr(err error) {
	r.mu.Lock()
	r.lastErr = err
	r.mu.Unlock()
}

func (r *replica) event(kind EventKind, err error, delay time.Duration) {
	if err != nil {
		r.setErr(err)
	}
	if fn := r.sup.cfg.OnEvent; fn != nil {
		fn(Event{Slot: r.slot, Kind: kind, Addr: r.addr(), Delay: delay, Err: err})
	}
}

// loop is the slot's restart loop: start, supervise to death, apply
// crash-loop detection and backoff, repeat.
func (r *replica) loop(ctx context.Context) {
	cfg := r.sup.cfg
	clock := r.sup.clock
	var failures []time.Time
	exp := 0
	for {
		if ctx.Err() != nil {
			r.setState(StateStopped)
			r.event(EventStopped, nil, 0)
			return
		}
		r.setState(StateStarting)
		var (
			o          superviseOutcome
			wasHealthy bool
		)
		proc, err := cfg.Start(r.slot, r.port())
		if err != nil {
			r.event(EventExited, err, 0)
			o = outCrashed
		} else {
			r.event(EventStarted, nil, 0)
			o, wasHealthy = r.supervise(ctx, proc)
		}
		switch o {
		case outStopped:
			r.setState(StateStopped)
			r.event(EventStopped, nil, 0)
			return
		case outCrashed, outUnhealthy:
		}
		if wasHealthy {
			// A healthy stint resets the exponential schedule; the
			// crash-loop window still catches rapid flapping.
			exp = 0
		}
		now := clock.Now()
		failures = append(failures, now)
		pruned := failures[:0]
		for _, ts := range failures {
			if now.Sub(ts) <= cfg.CrashLoopWindow {
				pruned = append(pruned, ts)
			}
		}
		failures = pruned
		if len(failures) >= cfg.CrashLoopMax {
			r.setState(StateGivenUp)
			r.event(EventGaveUp, nil, 0)
			return
		}
		delay := r.sup.backoff(exp)
		exp++
		r.setState(StateBackoff)
		r.event(EventBackingOff, nil, delay)
		if !r.sleep(ctx, delay) {
			r.setState(StateStopped)
			r.event(EventStopped, nil, 0)
			return
		}
	}
}

// sleep waits d on the clock; false means ctx was cancelled first.
func (r *replica) sleep(ctx context.Context, d time.Duration) bool {
	t := r.sup.clock.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C():
		return true
	case <-ctx.Done():
		return false
	}
}

// probe checks the given address once, bounded by ProbeTimeout.
func (r *replica) probe(ctx context.Context, addr string) error {
	cfg := r.sup.cfg
	pctx, cancel := r.sup.clock.ContextWithDeadline(ctx, r.sup.clock.Now().Add(cfg.ProbeTimeout))
	defer cancel()
	return cfg.Probe(pctx, addr)
}

// supervise runs one process from launch to death: waits for first
// health (StartupTimeout), then probes steadily, serving rolling-restart
// requests. wasHealthy reports whether the process ever passed a probe.
func (r *replica) supervise(ctx context.Context, proc Process) (superviseOutcome, bool) {
	cfg := r.sup.cfg
	clock := r.sup.clock

	// Phase 1: birth to first health.
	startupT := clock.NewTimer(cfg.StartupTimeout)
	probeT := clock.NewTimer(cfg.ProbeInterval)
	defer func() {
		startupT.Stop()
		probeT.Stop()
	}()
	for healthy := false; !healthy; {
		select {
		case <-ctx.Done():
			r.drain(proc)
			return outStopped, false
		case <-proc.Done():
			r.event(EventExited, proc.Err(), 0)
			return outCrashed, false
		case <-startupT.C():
			r.event(EventUnhealthy, fmt.Errorf("supervisor: no healthy probe within %v of start", cfg.StartupTimeout), 0)
			r.drain(proc)
			return outCrashed, false
		case <-probeT.C():
			probeT = clock.NewTimer(cfg.ProbeInterval)
			if err := r.probe(ctx, r.addr()); err != nil {
				r.event(EventProbeFailed, err, 0)
			} else {
				healthy = true
			}
		}
	}
	startupT.Stop()
	r.setState(StateHealthy)
	r.event(EventHealthy, nil, 0)

	// Phase 2: steady state.
	fails := 0
	for {
		select {
		case <-ctx.Done():
			r.drain(proc)
			return outStopped, true
		case <-proc.Done():
			r.event(EventExited, proc.Err(), 0)
			return outCrashed, true
		case req := <-r.replaceCh:
			succ, err := r.replace(ctx, proc)
			req.done <- err
			if err == nil {
				proc = succ
				fails = 0
				r.event(EventReplaced, nil, 0)
			} else {
				r.event(EventReplaceFailed, err, 0)
			}
		case <-probeT.C():
			probeT = clock.NewTimer(cfg.ProbeInterval)
			if err := r.probe(ctx, r.addr()); err != nil {
				fails++
				r.event(EventProbeFailed, err, 0)
				if fails >= cfg.UnhealthyAfter {
					r.event(EventUnhealthy, err, 0)
					r.drain(proc)
					return outUnhealthy, true
				}
			} else {
				fails = 0
			}
		}
	}
}

// drain shuts proc down gracefully: SIGTERM, wait DrainTimeout, then
// SIGKILL.
func (r *replica) drain(proc Process) {
	cfg := r.sup.cfg
	r.setState(StateDraining)
	r.event(EventDraining, nil, 0)
	if err := proc.Signal(syscall.SIGTERM); err != nil {
		_ = proc.Kill()
		<-proc.Done()
		return
	}
	t := r.sup.clock.NewTimer(cfg.DrainTimeout)
	defer t.Stop()
	select {
	case <-proc.Done():
	case <-t.C():
		r.event(EventKilled, nil, 0)
		_ = proc.Kill()
		<-proc.Done()
	}
}

// replace performs one slot's rolling restart: start a successor on the
// alternate port, probe it to health within ReplaceTimeout, then drain
// the predecessor and swap the active port. On any failure the
// predecessor is left untouched and keeps serving.
func (r *replica) replace(ctx context.Context, old Process) (Process, error) {
	cfg := r.sup.cfg
	clock := r.sup.clock
	r.mu.Lock()
	nextIdx := 1 - r.active
	port := r.ports[nextIdx]
	r.mu.Unlock()
	addr := fmt.Sprintf("%s:%d", cfg.Host, port)

	succ, err := cfg.Start(r.slot, port)
	if err != nil {
		return nil, fmt.Errorf("start successor on %s: %w", addr, err)
	}
	deadlineT := clock.NewTimer(cfg.ReplaceTimeout)
	probeT := clock.NewTimer(cfg.ProbeInterval)
	defer func() {
		deadlineT.Stop()
		probeT.Stop()
	}()
	for {
		select {
		case <-ctx.Done():
			r.drainProc(succ)
			return nil, ctx.Err()
		case <-succ.Done():
			return nil, fmt.Errorf("successor on %s exited before becoming healthy: %w", addr, succ.Err())
		case <-deadlineT.C():
			_ = succ.Kill()
			<-succ.Done()
			return nil, fmt.Errorf("successor on %s not healthy within %v", addr, cfg.ReplaceTimeout)
		case <-probeT.C():
			probeT = clock.NewTimer(cfg.ProbeInterval)
			if err := r.probe(ctx, addr); err != nil {
				continue
			}
			// Successor healthy: retire the predecessor, then swap the
			// active port so the slot's address points at the successor.
			r.drainProc(old)
			r.mu.Lock()
			r.active = nextIdx
			r.restarts++
			r.state = StateHealthy
			r.mu.Unlock()
			return succ, nil
		}
	}
}

// drainProc is drain without the slot-state bookkeeping (used for
// processes that never owned the slot: predecessors being replaced and
// failed successors).
func (r *replica) drainProc(proc Process) {
	cfg := r.sup.cfg
	if err := proc.Signal(syscall.SIGTERM); err != nil {
		_ = proc.Kill()
		<-proc.Done()
		return
	}
	t := r.sup.clock.NewTimer(cfg.DrainTimeout)
	defer t.Stop()
	select {
	case <-proc.Done():
	case <-t.C():
		_ = proc.Kill()
		<-proc.Done()
	}
}
