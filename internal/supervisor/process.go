package supervisor

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/exec"
	"strings"
	"sync"
)

// Process is one running replica as the supervisor sees it: a handle it
// can signal for graceful drain, kill outright, and wait on.
// Implementations must make Done's channel close exactly once, after
// which Err reports the exit error (nil for a clean exit).
type Process interface {
	// Signal delivers sig to the process (SIGTERM starts a graceful
	// drain in dlsd).
	Signal(sig os.Signal) error
	// Kill terminates the process immediately.
	Kill() error
	// Done is closed when the process has exited.
	Done() <-chan struct{}
	// Err returns the exit error once Done is closed.
	Err() error
}

// Starter launches the replica of one fleet slot on the given port and
// returns its handle. The supervisor calls it again after every crash or
// rolling replacement (with the slot's alternate port).
type Starter func(slot, port int) (Process, error)

// execProcess wraps an *exec.Cmd as a Process.
type execProcess struct {
	cmd  *exec.Cmd
	done chan struct{}
	err  error
}

func (p *execProcess) Signal(sig os.Signal) error { return p.cmd.Process.Signal(sig) }
func (p *execProcess) Kill() error                { return p.cmd.Process.Kill() }
func (p *execProcess) Done() <-chan struct{}      { return p.done }
func (p *execProcess) Err() error {
	<-p.done
	return p.err
}

// ExecStarter returns a Starter that runs binary with args plus
// "-addr host:port", capturing interleaved stdout/stderr into logs with
// a "[slot-N:port] " line prefix so a fleet's logs stay attributable.
// logs may be nil to discard replica output.
func ExecStarter(binary string, args []string, host string, logs io.Writer) Starter {
	var mu sync.Mutex // one writer mutex across all replicas
	return func(slot, port int) (Process, error) {
		full := append(append([]string(nil), args...), "-addr", fmt.Sprintf("%s:%d", host, port))
		cmd := exec.Command(binary, full...)
		if logs != nil {
			w := &prefixWriter{
				mu:     &mu,
				out:    logs,
				prefix: []byte(fmt.Sprintf("[slot-%d:%d] ", slot, port)),
			}
			cmd.Stdout = w
			cmd.Stderr = w
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("supervisor: start slot %d on port %d: %w", slot, port, err)
		}
		p := &execProcess{cmd: cmd, done: make(chan struct{})}
		go func() {
			p.err = cmd.Wait()
			close(p.done)
		}()
		return p, nil
	}
}

// ExecStarterLog is ExecStarter with the per-replica capture routed into
// a structured logger instead of a raw writer: every replica output line
// becomes one record carrying slot and port attrs — the structured
// analogue of the "[slot-N:port] " prefix, so JSON fleet logs stay
// machine-attributable. lg may be nil to discard replica output.
func ExecStarterLog(binary string, args []string, host string, lg *slog.Logger) Starter {
	var mu sync.Mutex // one writer mutex across all replicas
	return func(slot, port int) (Process, error) {
		full := append(append([]string(nil), args...), "-addr", fmt.Sprintf("%s:%d", host, port))
		cmd := exec.Command(binary, full...)
		if lg != nil {
			w := &slogWriter{
				mu: &mu,
				lg: lg.With(slog.Int("slot", slot), slog.Int("port", port)),
			}
			cmd.Stdout = w
			cmd.Stderr = w
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("supervisor: start slot %d on port %d: %w", slot, port, err)
		}
		p := &execProcess{cmd: cmd, done: make(chan struct{})}
		go func() {
			p.err = cmd.Wait()
			close(p.done)
		}()
		return p, nil
	}
}

// slogWriter emits each complete replica output line as one log record,
// buffering partial lines between writes (same discipline as
// prefixWriter; one mutex across the fleet keeps records whole).
type slogWriter struct {
	mu  *sync.Mutex
	lg  *slog.Logger
	buf bytes.Buffer
}

func (w *slogWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	for {
		line, err := w.buf.ReadBytes('\n')
		if err != nil {
			// Partial line: keep it buffered for the next write.
			w.buf.Write(line)
			break
		}
		w.lg.LogAttrs(context.Background(), slog.LevelInfo, strings.TrimRight(string(line), "\n"))
	}
	return len(p), nil
}

// prefixWriter prepends a per-replica prefix to every output line,
// buffering partial lines between writes. All replicas share one mutex
// so interleaved fleet output never tears mid-line.
type prefixWriter struct {
	mu     *sync.Mutex
	out    io.Writer
	prefix []byte
	buf    bytes.Buffer
}

func (w *prefixWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	for {
		line, err := w.buf.ReadBytes('\n')
		if err != nil {
			// Partial line: keep it buffered for the next write.
			w.buf.Write(line)
			break
		}
		if _, err := w.out.Write(append(append([]byte(nil), w.prefix...), line...)); err != nil {
			return len(p), nil // log loss is not a replica failure
		}
	}
	return len(p), nil
}
