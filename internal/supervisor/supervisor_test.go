package supervisor

// State-machine tests on the virtual clock: every delay in the
// supervisor (probe intervals, startup budgets, backoff, drain) runs on
// internal/sim.Clock, so these tests drive crashes, flapping health and
// rolling restarts deterministically, without sleeping, and race-clean.
//
// The pump helper advances the clock to the next armed timer until the
// awaited event arrives; fake processes and probers flip behaviour
// through atomics.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/sim"
)

// fakeProc is an in-memory Process whose exit is driven by the test.
type fakeProc struct {
	mu       sync.Mutex
	done     chan struct{}
	err      error
	sigs     []os.Signal
	killed   bool
	exitOn   os.Signal // exit immediately when this signal arrives (0: ignore signals)
	stubborn bool      // ignore SIGTERM (exercises the SIGKILL path)
}

func newFakeProc() *fakeProc { return &fakeProc{done: make(chan struct{})} }

func (p *fakeProc) Signal(sig os.Signal) error {
	p.mu.Lock()
	p.sigs = append(p.sigs, sig)
	exit := !p.stubborn && sig == syscall.SIGTERM
	p.mu.Unlock()
	if exit {
		p.exit(nil)
	}
	return nil
}

func (p *fakeProc) Kill() error {
	p.mu.Lock()
	p.killed = true
	p.mu.Unlock()
	p.exit(errors.New("killed"))
	return nil
}

func (p *fakeProc) Done() <-chan struct{} { return p.done }

func (p *fakeProc) Err() error {
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

func (p *fakeProc) exit(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.done:
		return
	default:
	}
	p.err = err
	close(p.done)
}

func (p *fakeProc) signals() []os.Signal {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]os.Signal(nil), p.sigs...)
}

func (p *fakeProc) wasKilled() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.killed
}

// fleet tracks every process a test Starter launched.
type fleet struct {
	mu    sync.Mutex
	procs []*fakeProc
	ports []int
}

func (f *fleet) add(p *fakeProc, port int) {
	f.mu.Lock()
	f.procs = append(f.procs, p)
	f.ports = append(f.ports, port)
	f.mu.Unlock()
}

func (f *fleet) proc(i int) *fakeProc {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.procs[i]
}

func (f *fleet) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.procs)
}

func (f *fleet) portOf(i int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ports[i]
}

// testRig wires a supervisor over fake processes, an always-healthy
// prober (overridable), the virtual clock and an event channel.
type testRig struct {
	clk     *sim.Clock
	fleet   *fleet
	events  chan Event
	pending []Event     // received but not yet matched by pump
	health  atomic.Bool // prober answer (true = healthy)
	cfg     Config
}

func newRig(replicas int) *testRig {
	rig := &testRig{
		clk:    sim.NewClock(),
		fleet:  &fleet{},
		events: make(chan Event, 1024),
	}
	rig.health.Store(true)
	rig.cfg = Config{
		Replicas:        replicas,
		BasePort:        9000,
		Start:           func(slot, port int) (Process, error) { p := newFakeProc(); rig.fleet.add(p, port); return p, nil },
		Probe:           func(ctx context.Context, addr string) error { return rig.probe(ctx, addr) },
		Clock:           rig.clk,
		ProbeInterval:   100 * time.Millisecond,
		ProbeTimeout:    50 * time.Millisecond,
		StartupTimeout:  time.Second,
		UnhealthyAfter:  3,
		BackoffBase:     200 * time.Millisecond,
		BackoffMax:      5 * time.Second,
		Jitter:          -1, // deterministic backoff schedule
		CrashLoopWindow: 10 * time.Second,
		CrashLoopMax:    3,
		DrainTimeout:    time.Second,
		OnEvent:         func(ev Event) { rig.events <- ev },
	}
	return rig
}

func (rig *testRig) probe(_ context.Context, _ string) error {
	if rig.health.Load() {
		return nil
	}
	return errors.New("probe: unhealthy")
}

// pump advances the virtual clock timer by timer until an event of the
// wanted kind (for the wanted slot; slot -1 matches any) arrives.
// Unmatched events are buffered, not dropped: with several replicas, a
// later pump may be waiting for an event that arrived early.
func (rig *testRig) pump(t *testing.T, slot int, want EventKind) Event {
	t.Helper()
	match := func(ev Event) bool { return ev.Kind == want && (slot < 0 || ev.Slot == slot) }
	for i, ev := range rig.pending {
		if match(ev) {
			rig.pending = append(rig.pending[:i], rig.pending[i+1:]...)
			return ev
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case ev := <-rig.events:
			if match(ev) {
				return ev
			}
			rig.pending = append(rig.pending, ev)
			continue
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %v (slot %d); pending: %v", want, slot, rig.pending)
		}
		if next, ok := rig.clk.NextTimer(); ok {
			rig.clk.AdvanceTo(next)
		} else {
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// drainEvents empties the event buffer.
func (rig *testRig) drainEvents() {
	rig.pending = nil
	for {
		select {
		case <-rig.events:
		default:
			return
		}
	}
}

func TestSupervisorStartsAndProbesToHealth(t *testing.T) {
	rig := newRig(2)
	sup, err := New(rig.cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sup.Run(ctx) }()

	rig.pump(t, 0, EventHealthy)
	rig.pump(t, 1, EventHealthy)
	if n := sup.HealthyCount(); n != 2 {
		t.Fatalf("HealthyCount = %d, want 2", n)
	}
	addrs := sup.Addresses()
	if len(addrs) != 2 || addrs[0] != "127.0.0.1:9000" || addrs[1] != "127.0.0.1:9001" {
		t.Fatalf("Addresses = %v, want per-slot base ports", addrs)
	}

	cancel()
	rig.pump(t, 0, EventStopped)
	rig.pump(t, 1, EventStopped)
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Shutdown drained via SIGTERM, no SIGKILL needed.
	for i := 0; i < rig.fleet.count(); i++ {
		p := rig.fleet.proc(i)
		sigs := p.signals()
		if len(sigs) == 0 || sigs[0] != syscall.SIGTERM {
			t.Fatalf("proc %d signals = %v, want SIGTERM first", i, sigs)
		}
		if p.wasKilled() {
			t.Fatalf("proc %d was SIGKILLed despite honoring SIGTERM", i)
		}
	}
}

func TestSupervisorBackoffScheduleAndRestart(t *testing.T) {
	rig := newRig(1)
	rig.cfg.CrashLoopMax = 10 // stay clear of give-up
	sup, err := New(rig.cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = sup.Run(ctx) }()

	rig.pump(t, 0, EventHealthy)

	// Crash the process repeatedly before it gets healthy again: the
	// backoff must follow base * 2^i, capped. The first crash happened
	// after a healthy stint, so exp restarts at 0.
	rig.health.Store(false) // probes fail -> processes never re-reach health
	rig.fleet.proc(0).exit(errors.New("crash"))
	want := []time.Duration{
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		3200 * time.Millisecond,
		5 * time.Second, // capped at BackoffMax
		5 * time.Second,
	}
	for i, wantDelay := range want {
		ev := rig.pump(t, 0, EventBackingOff)
		if ev.Delay != wantDelay {
			t.Fatalf("backoff %d = %v, want %v", i, ev.Delay, wantDelay)
		}
		// Let it restart, then crash the new process immediately.
		rig.pump(t, 0, EventStarted)
		rig.fleet.proc(rig.fleet.count() - 1).exit(errors.New("crash"))
	}
}

func TestSupervisorHealthyStintResetsBackoff(t *testing.T) {
	rig := newRig(1)
	rig.cfg.CrashLoopMax = 100
	rig.cfg.CrashLoopWindow = time.Hour
	sup, err := New(rig.cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = sup.Run(ctx) }()

	rig.pump(t, 0, EventHealthy)
	// Two rapid crashes escalate the backoff...
	rig.health.Store(false)
	rig.fleet.proc(0).exit(errors.New("crash"))
	if ev := rig.pump(t, 0, EventBackingOff); ev.Delay != 200*time.Millisecond {
		t.Fatalf("backoff 0 = %v, want 200ms", ev.Delay)
	}
	rig.pump(t, 0, EventStarted)
	rig.fleet.proc(rig.fleet.count() - 1).exit(errors.New("crash"))
	if ev := rig.pump(t, 0, EventBackingOff); ev.Delay != 400*time.Millisecond {
		t.Fatalf("backoff 1 = %v, want 400ms", ev.Delay)
	}
	// ...but a healthy stint resets the schedule to base.
	rig.health.Store(true)
	rig.pump(t, 0, EventHealthy)
	rig.health.Store(false)
	rig.fleet.proc(rig.fleet.count() - 1).exit(errors.New("crash"))
	if ev := rig.pump(t, 0, EventBackingOff); ev.Delay != 200*time.Millisecond {
		t.Fatalf("backoff after healthy stint = %v, want reset to 200ms", ev.Delay)
	}
}

func TestSupervisorCrashLoopGivesUp(t *testing.T) {
	rig := newRig(1)
	rig.cfg.CrashLoopMax = 3
	rig.health.Store(false) // never healthy: pure crash loop
	sup, err := New(rig.cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- sup.Run(context.Background()) }()

	// Each started process crashes instantly; after CrashLoopMax rapid
	// failures the slot is retired.
	for i := 0; i < 3; i++ {
		rig.pump(t, 0, EventStarted)
		rig.fleet.proc(rig.fleet.count() - 1).exit(fmt.Errorf("crash %d", i))
	}
	rig.pump(t, 0, EventGaveUp)

	err = <-done
	if err == nil {
		t.Fatal("Run returned nil after a slot gave up")
	}
	if got := rig.fleet.count(); got != 3 {
		t.Fatalf("started %d processes, want exactly CrashLoopMax=3 (no restart after give-up)", got)
	}
	snap := sup.Snapshot()
	if snap[0].State != "given-up" {
		t.Fatalf("slot state = %q, want given-up", snap[0].State)
	}
}

func TestSupervisorUnhealthyRestarts(t *testing.T) {
	rig := newRig(1)
	sup, err := New(rig.cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = sup.Run(ctx) }()

	rig.pump(t, 0, EventHealthy)
	// Fail probes: after UnhealthyAfter consecutive failures the process
	// is drained and the slot restarts.
	rig.health.Store(false)
	rig.pump(t, 0, EventUnhealthy)
	rig.pump(t, 0, EventDraining)
	rig.pump(t, 0, EventBackingOff)
	rig.health.Store(true)
	rig.pump(t, 0, EventStarted)
	rig.pump(t, 0, EventHealthy)
	if rig.fleet.count() != 2 {
		t.Fatalf("started %d processes, want 2 (original + restart)", rig.fleet.count())
	}
	// The unhealthy process was drained with SIGTERM.
	if sigs := rig.fleet.proc(0).signals(); len(sigs) == 0 || sigs[0] != syscall.SIGTERM {
		t.Fatalf("unhealthy proc signals = %v, want SIGTERM", sigs)
	}
}

func TestSupervisorDrainKillsStubbornProcess(t *testing.T) {
	rig := newRig(1)
	stubbornStart := func(slot, port int) (Process, error) {
		p := newFakeProc()
		p.stubborn = true
		rig.fleet.add(p, port)
		return p, nil
	}
	rig.cfg.Start = stubbornStart
	sup, err := New(rig.cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sup.Run(ctx) }()

	rig.pump(t, 0, EventHealthy)
	cancel()
	rig.pump(t, 0, EventDraining)
	// The process ignores SIGTERM; after DrainTimeout it is killed.
	rig.pump(t, 0, EventKilled)
	rig.pump(t, 0, EventStopped)
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rig.fleet.proc(0).wasKilled() {
		t.Fatal("stubborn process was not SIGKILLed")
	}
}

func TestSupervisorRollingRestartOrdering(t *testing.T) {
	rig := newRig(2)
	sup, err := New(rig.cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = sup.Run(ctx) }()
	rig.pump(t, 0, EventHealthy)
	rig.pump(t, 1, EventHealthy)
	rig.drainEvents()

	rrDone := make(chan error, 1)
	go func() { rrDone <- sup.RollingRestart(ctx) }()

	// Slot 0 replaces first: successor starts on the alternate port,
	// becomes healthy, and only then is the predecessor drained.
	rig.pump(t, 0, EventReplaced)
	rig.pump(t, 1, EventReplaced)
	if err := <-rrDone; err != nil {
		t.Fatalf("RollingRestart: %v", err)
	}

	// Four processes total: 2 original + 2 successors.
	if rig.fleet.count() != 4 {
		t.Fatalf("started %d processes, want 4", rig.fleet.count())
	}
	// Successors run on the alternate ports; addresses follow.
	addrs := sup.Addresses()
	if addrs[0] != "127.0.0.1:9002" || addrs[1] != "127.0.0.1:9003" {
		t.Fatalf("post-restart addresses = %v, want alternate ports 9002/9003", addrs)
	}
	// Ordering per slot: the successor was STARTED and probed healthy
	// BEFORE the predecessor got its SIGTERM. The predecessor exited
	// (via SIGTERM) only after the successor existed.
	for slot := 0; slot < 2; slot++ {
		pred := rig.fleet.proc(slot)
		succIdx := -1
		for i := 2; i < 4; i++ {
			if rig.fleet.portOf(i) == 9002+slot {
				succIdx = i
			}
		}
		if succIdx < 0 {
			t.Fatalf("no successor found for slot %d", slot)
		}
		select {
		case <-pred.Done():
		default:
			t.Fatalf("slot %d predecessor still running after replacement", slot)
		}
		if sigs := pred.signals(); len(sigs) == 0 || sigs[0] != syscall.SIGTERM {
			t.Fatalf("slot %d predecessor signals = %v, want SIGTERM drain", slot, sigs)
		}
		select {
		case <-rig.fleet.proc(succIdx).Done():
			t.Fatalf("slot %d successor died during rolling restart", slot)
		default:
		}
	}
	// Restart counters advanced.
	for _, st := range sup.Snapshot() {
		if st.Restarts != 1 {
			t.Fatalf("slot %d restarts = %d, want 1", st.Slot, st.Restarts)
		}
		if st.State != "healthy" {
			t.Fatalf("slot %d state = %q, want healthy", st.Slot, st.State)
		}
	}
}

func TestSupervisorRollingRestartKeepsPredecessorOnFailure(t *testing.T) {
	rig := newRig(1)
	var failSuccessor atomic.Bool
	// The successor (second process) never probes healthy.
	baseProbe := rig.cfg.Probe
	rig.cfg.Probe = func(ctx context.Context, addr string) error {
		if failSuccessor.Load() && addr == "127.0.0.1:9001" {
			return errors.New("successor refuses to get healthy")
		}
		return baseProbe(ctx, addr)
	}
	rig.cfg.ReplaceTimeout = 500 * time.Millisecond
	sup, err := New(rig.cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = sup.Run(ctx) }()
	rig.pump(t, 0, EventHealthy)
	failSuccessor.Store(true)

	rrDone := make(chan error, 1)
	go func() { rrDone <- sup.RollingRestart(ctx) }()
	rig.pump(t, 0, EventReplaceFailed)
	if err := <-rrDone; err == nil {
		t.Fatal("RollingRestart reported success despite unhealthy successor")
	}

	// The predecessor keeps serving on its original port.
	select {
	case <-rig.fleet.proc(0).Done():
		t.Fatal("predecessor was killed although the successor never got healthy")
	default:
	}
	if addrs := sup.Addresses(); addrs[0] != "127.0.0.1:9000" {
		t.Fatalf("address = %v, want original port kept", addrs)
	}
	// The failed successor was cleaned up.
	select {
	case <-rig.fleet.proc(1).Done():
	default:
		t.Fatal("failed successor still running")
	}
	// The slot is still healthy and supervisable.
	if sup.HealthyCount() != 1 {
		t.Fatalf("HealthyCount = %d, want 1", sup.HealthyCount())
	}
}
