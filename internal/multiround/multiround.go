// Package multiround extends the one-round framework of RR-5738 with
// uniform multi-round FIFO distribution, the regime the paper's related
// work discusses: multi-round strategies pipeline communication with
// computation, but under a purely linear cost model they degenerate
// (infinitely many infinitely small messages), so per-message latencies
// are required to make the round count a real trade-off.
//
// The model: the per-worker total loads and the FIFO order are fixed (for
// example taken from the one-round optimum); each worker's load is split
// into R equal chunks. The master sends chunks round-major
// (chunk 1 to every worker in order, then chunk 2, ...), each message
// paying a start-up latency; workers may receive a chunk while computing
// an earlier one (the standard multi-round DLT assumption) but compute
// chunks sequentially; after all sends the master collects result chunks
// round-major in the same order, each return also paying the latency.
// The master port serializes everything (one-port model).
//
// Makespan computes the resulting schedule length analytically in
// O(R·p) — no simulation involved — and BestRounds sweeps R. With zero
// latency the makespan is non-increasing in R (pipelining can only help);
// with positive latency an interior optimum appears, reproducing the
// textbook trade-off.
package multiround

import (
	"fmt"
	"math"

	"repro/internal/platform"
	"repro/internal/schedule"
)

// Params configures a multi-round evaluation.
type Params struct {
	// Platform provides the per-unit costs.
	Platform *platform.Platform
	// Loads are the per-worker totals, indexed like the platform workers.
	Loads []float64
	// Order is the FIFO order over the workers with positive load.
	Order platform.Order
	// Rounds is the number of uniform rounds R ≥ 1.
	Rounds int
	// Latency is the per-message start-up time (both directions).
	Latency float64
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Platform == nil {
		return fmt.Errorf("multiround: nil platform")
	}
	if err := p.Platform.Validate(); err != nil {
		return err
	}
	if len(p.Loads) != p.Platform.P() {
		return fmt.Errorf("multiround: %d loads for %d workers", len(p.Loads), p.Platform.P())
	}
	for i, l := range p.Loads {
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return fmt.Errorf("multiround: load %g of worker %d must be finite and >= 0", l, i)
		}
	}
	if p.Rounds < 1 {
		return fmt.Errorf("multiround: rounds %d must be >= 1", p.Rounds)
	}
	if p.Latency < 0 || math.IsNaN(p.Latency) {
		return fmt.Errorf("multiround: latency %g must be >= 0", p.Latency)
	}
	seen := make(map[int]bool, len(p.Order))
	for _, i := range p.Order {
		if i < 0 || i >= p.Platform.P() {
			return fmt.Errorf("multiround: order references worker %d outside platform", i)
		}
		if seen[i] {
			return fmt.Errorf("multiround: worker %d appears twice in order", i)
		}
		seen[i] = true
	}
	for i, l := range p.Loads {
		if l > 0 && !seen[i] {
			return fmt.Errorf("multiround: worker %d has load %g but is not in the order", i, l)
		}
	}
	return nil
}

// Makespan computes the multi-round FIFO makespan analytically.
func Makespan(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	// Active workers in order.
	var act []int
	for _, i := range p.Order {
		if p.Loads[i] > 0 {
			act = append(act, i)
		}
	}
	if len(act) == 0 {
		return 0, nil
	}
	R := p.Rounds
	L := p.Latency

	// Send phase: the master port processes chunk messages round-major.
	// chunkRecv[k][i] = time the i-th active worker holds its k-th chunk.
	port := 0.0
	chunkRecv := make([][]float64, R)
	for k := 0; k < R; k++ {
		chunkRecv[k] = make([]float64, len(act))
		for ai, i := range act {
			dur := L + p.Loads[i]/float64(R)*p.Platform.Workers[i].C
			port += dur
			chunkRecv[k][ai] = port
		}
	}

	// Compute phase per worker: chunks sequential, each after its data.
	compEnd := make([]float64, len(act))
	for ai, i := range act {
		t := 0.0
		w := p.Loads[i] / float64(R) * p.Platform.Workers[i].W
		for k := 0; k < R; k++ {
			start := math.Max(t, chunkRecv[k][ai])
			t = start + w
		}
		compEnd[ai] = t
	}

	// Return phase: the master port collects result chunks round-major,
	// after all sends. A worker's k-th result is ready once its (k+1)-th
	// chunk is computed, i.e. after (k+1)/R of its computation pattern;
	// with sequential chunk computation that is the end of chunk k. For
	// uniform chunks the k-th chunk (0-based) completes no later than
	// compEnd - (R-1-k)·w... computing exactly:
	chunkDone := make([][]float64, R)
	for k := 0; k < R; k++ {
		chunkDone[k] = make([]float64, len(act))
	}
	for ai, i := range act {
		t := 0.0
		w := p.Loads[i] / float64(R) * p.Platform.Workers[i].W
		for k := 0; k < R; k++ {
			start := math.Max(t, chunkRecv[k][ai])
			t = start + w
			chunkDone[k][ai] = t
		}
	}
	for k := 0; k < R; k++ {
		for ai, i := range act {
			dur := L + p.Loads[i]/float64(R)*p.Platform.Workers[i].D
			start := math.Max(port, chunkDone[k][ai])
			port = start + dur
		}
	}
	return port, nil
}

// FromSchedule builds multi-round parameters from a one-round schedule, as
// produced by the scenario-evaluation pipeline: the schedule's loads and
// send order seed the per-worker totals and FIFO order. This is the bridge
// from the one-round optimum (this paper's setting) to the multi-round
// extension — evaluate once, then sweep round counts over the same load
// split.
func FromSchedule(p *platform.Platform, s *schedule.Schedule, latency float64) Params {
	return Params{
		Platform: p,
		Loads:    append([]float64(nil), s.Alpha...),
		Order:    s.SendOrder.Clone(),
		Rounds:   1,
		Latency:  latency,
	}
}

// Sweep returns the makespan for every round count 1..maxRounds.
func Sweep(p Params, maxRounds int) ([]float64, error) {
	if maxRounds < 1 {
		return nil, fmt.Errorf("multiround: maxRounds %d must be >= 1", maxRounds)
	}
	out := make([]float64, maxRounds)
	for r := 1; r <= maxRounds; r++ {
		p.Rounds = r
		m, err := Makespan(p)
		if err != nil {
			return nil, err
		}
		out[r-1] = m
	}
	return out, nil
}

// BestRounds returns the round count in 1..maxRounds with the smallest
// makespan, together with that makespan.
func BestRounds(p Params, maxRounds int) (int, float64, error) {
	sweep, err := Sweep(p, maxRounds)
	if err != nil {
		return 0, 0, err
	}
	best, bestR := math.Inf(1), 1
	for r, m := range sweep {
		if m < best {
			best, bestR = m, r+1
		}
	}
	return bestR, best, nil
}
