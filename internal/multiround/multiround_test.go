package multiround

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mmapp"
	"repro/internal/platform"
	"repro/internal/schedule"
)

func randomStar(rng *rand.Rand, p int) *platform.Platform {
	ws := make([]platform.Worker, p)
	for i := range ws {
		c := 0.02 + 0.2*rng.Float64()
		ws[i] = platform.Worker{C: c, W: 0.05 + 0.5*rng.Float64(), D: 0.5 * c}
	}
	return platform.New(ws...)
}

func TestValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	plat := randomStar(rng, 3)
	ok := Params{Platform: plat, Loads: []float64{1, 2, 3}, Order: platform.Order{0, 1, 2}, Rounds: 2}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"nil platform", func(p *Params) { p.Platform = nil }},
		{"bad platform", func(p *Params) { p.Platform = platform.New() }},
		{"loads length", func(p *Params) { p.Loads = []float64{1} }},
		{"negative load", func(p *Params) { p.Loads[0] = -1 }},
		{"nan load", func(p *Params) { p.Loads[0] = math.NaN() }},
		{"zero rounds", func(p *Params) { p.Rounds = 0 }},
		{"negative latency", func(p *Params) { p.Latency = -1 }},
		{"order range", func(p *Params) { p.Order = platform.Order{0, 1, 9} }},
		{"order dup", func(p *Params) { p.Order = platform.Order{0, 0, 1} }},
		{"loaded not ordered", func(p *Params) { p.Order = platform.Order{0, 1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := ok
			p.Loads = append([]float64(nil), ok.Loads...)
			p.Order = ok.Order.Clone()
			tc.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("want error")
			}
			if _, err := Makespan(p); err == nil {
				t.Error("Makespan must reject invalid params")
			}
		})
	}
}

func TestZeroLoadIsZeroMakespan(t *testing.T) {
	plat := randomStar(rand.New(rand.NewSource(2)), 2)
	m, err := Makespan(Params{Platform: plat, Loads: []float64{0, 0}, Order: platform.Order{}, Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m != 0 {
		t.Errorf("makespan = %g, want 0", m)
	}
}

// TestOneRoundMatchesSimulator: with R = 1 and no latency the analytical
// makespan must equal the eager virtual-cluster execution of the same
// schedule — the two independent implementations of the same semantics.
func TestOneRoundMatchesSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		size := 60 + 30*trial
		app := platform.DefaultApp(size)
		sp := platform.RandomSpeeds(rng, 5, platform.Heterogeneous)
		plat := sp.Platform(app)
		sched, err := core.OptimalFIFO(plat, core.Float64)
		if err != nil {
			t.Fatal(err)
		}
		scaled := sched.ScaledToLoad(300)
		analytic, err := Makespan(Params{
			Platform: plat,
			Loads:    scaled.Alpha,
			Order:    scaled.SendOrder,
			Rounds:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := mmapp.Run(mmapp.Params{
			App:         app,
			Speeds:      sp,
			Loads:       scaled.Alpha,
			SendOrder:   scaled.SendOrder,
			ReturnOrder: scaled.ReturnOrder,
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(analytic-sim.Makespan) > 1e-9*(1+sim.Makespan) {
			t.Errorf("trial %d: analytic %g vs simulated %g", trial, analytic, sim.Makespan)
		}
	}
}

func TestMoreRoundsHelpWithoutLatency(t *testing.T) {
	// Pure linear model: splitting into more rounds can only improve the
	// pipeline (monotone non-increasing makespan).
	rng := rand.New(rand.NewSource(4))
	plat := randomStar(rng, 4)
	loads := []float64{3, 2, 2.5, 1}
	sweep, err := Sweep(Params{
		Platform: plat,
		Loads:    loads,
		Order:    plat.ByC(),
		Rounds:   1,
	}, 12)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < len(sweep); r++ {
		if sweep[r] > sweep[r-1]+1e-9 {
			t.Errorf("makespan increased from R=%d (%g) to R=%d (%g) without latency",
				r, sweep[r-1], r+1, sweep[r])
		}
	}
}

func TestLatencyCreatesInteriorOptimum(t *testing.T) {
	// With a per-message latency, many rounds pay R·p extra start-ups: the
	// sweep must turn upward, and the best round count must beat both
	// extremes for a suitable latency.
	rng := rand.New(rand.NewSource(5))
	plat := randomStar(rng, 4)
	loads := []float64{3, 2, 2.5, 1}
	p := Params{
		Platform: plat,
		Loads:    loads,
		Order:    plat.ByC(),
		Latency:  0.02,
	}
	const maxR = 40
	bestR, bestM, err := BestRounds(p, maxR)
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := Sweep(p, maxR)
	if err != nil {
		t.Fatal(err)
	}
	if bestM > sweep[0]+1e-12 || bestM > sweep[maxR-1]+1e-12 {
		t.Errorf("best %g at R=%d does not beat extremes %g / %g", bestM, bestR, sweep[0], sweep[maxR-1])
	}
	if sweep[maxR-1] <= sweep[0] {
		t.Skipf("latency too small to turn the sweep upward on this instance")
	}
	if bestR <= 1 || bestR >= maxR {
		t.Errorf("expected an interior optimum, got R* = %d", bestR)
	}
}

func TestHighLatencyFavorsOneRound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	plat := randomStar(rng, 3)
	p := Params{
		Platform: plat,
		Loads:    []float64{1, 1, 1},
		Order:    plat.ByC(),
		Latency:  5, // absurdly expensive messages
	}
	bestR, _, err := BestRounds(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if bestR != 1 {
		t.Errorf("with dominant latency R* = %d, want 1", bestR)
	}
}

func TestSweepErrors(t *testing.T) {
	plat := randomStar(rand.New(rand.NewSource(7)), 2)
	p := Params{Platform: plat, Loads: []float64{1, 1}, Order: platform.Order{0, 1}}
	if _, err := Sweep(p, 0); err == nil {
		t.Error("maxRounds 0 must fail")
	}
	if _, _, err := BestRounds(Params{}, 3); err == nil {
		t.Error("invalid params must fail")
	}
}

// TestQuickMakespanLowerBounds: the multi-round makespan can never beat
// the port occupation bound Σα(c+d) + 2·R·q·L nor any single worker's own
// chain c·α/R + w·α + d·α/R (first chunk in, all compute, last chunk out).
func TestQuickMakespanLowerBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		plat := randomStar(rng, n)
		loads := make([]float64, n)
		var order platform.Order
		for i := range loads {
			loads[i] = rng.Float64() * 4
			if loads[i] > 0 {
				order = append(order, i)
			}
		}
		R := 1 + rng.Intn(8)
		L := rng.Float64() * 0.01
		m, err := Makespan(Params{Platform: plat, Loads: loads, Order: order, Rounds: R, Latency: L})
		if err != nil {
			return false
		}
		port := 0.0
		q := 0
		for i, a := range loads {
			if a == 0 {
				continue
			}
			q++
			port += a * (plat.Workers[i].C + plat.Workers[i].D)
		}
		port += 2 * float64(R) * float64(q) * L
		if m < port-1e-9 {
			t.Logf("seed %d: makespan %g below port bound %g", seed, m, port)
			return false
		}
		for i, a := range loads {
			if a == 0 {
				continue
			}
			w := plat.Workers[i]
			chain := a/float64(R)*w.C + a*w.W + a/float64(R)*w.D + 2*L
			if m < chain-1e-9 {
				t.Logf("seed %d: makespan %g below worker %d chain %g", seed, m, i, chain)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSweep16Rounds(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	plat := randomStar(rng, 11)
	loads := make([]float64, 11)
	for i := range loads {
		loads[i] = 1 + rng.Float64()
	}
	p := Params{Platform: plat, Loads: loads, Order: plat.ByC(), Latency: 0.001}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(p, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFromSchedule(t *testing.T) {
	p := platform.New(
		platform.Worker{C: 0.05, W: 0.3, D: 0.025},
		platform.Worker{C: 0.08, W: 0.2, D: 0.04},
	)
	s := &schedule.Schedule{
		SendOrder:   platform.Order{0, 1},
		ReturnOrder: platform.Order{0, 1},
		Alpha:       []float64{600, 400},
		T:           100,
	}
	params := FromSchedule(p, s, 0.01)
	if err := params.Validate(); err != nil {
		t.Fatalf("FromSchedule produced invalid params: %v", err)
	}
	if params.Rounds != 1 || params.Latency != 0.01 {
		t.Errorf("params = %+v", params)
	}
	// The seed data is copied, not aliased.
	params.Loads[0] = -1
	params.Order[0] = 9
	if s.Alpha[0] == -1 || s.SendOrder[0] == 9 {
		t.Error("FromSchedule aliases the schedule's slices")
	}
	// One round of the schedule's own loads must be evaluable.
	params = FromSchedule(p, s, 0)
	m, err := Makespan(params)
	if err != nil || m <= 0 {
		t.Fatalf("Makespan = (%g, %v)", m, err)
	}
}
