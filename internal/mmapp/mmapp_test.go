package mmapp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/rounding"
)

func relErr(a, b float64) float64 { return math.Abs(a-b) / math.Max(math.Abs(b), 1e-300) }

func baseParams(size, workers int) Params {
	sp := platform.Speeds{Comm: make([]float64, workers), Comp: make([]float64, workers)}
	for i := range sp.Comm {
		sp.Comm[i], sp.Comp[i] = float64(1+i), float64(workers-i)
	}
	return Params{
		App:         platform.DefaultApp(size),
		Speeds:      sp,
		Loads:       make([]float64, workers),
		SendOrder:   platform.Identity(workers),
		ReturnOrder: platform.Identity(workers),
	}
}

func TestValidate(t *testing.T) {
	ok := baseParams(100, 3)
	ok.Loads = []float64{1, 2, 3}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"bad app", func(p *Params) { p.App.MatrixSize = 0 }},
		{"speeds mismatch", func(p *Params) { p.Speeds.Comp = p.Speeds.Comp[:1] }},
		{"loads mismatch", func(p *Params) { p.Loads = p.Loads[:1] }},
		{"negative load", func(p *Params) { p.Loads[0] = -1 }},
		{"order length", func(p *Params) { p.ReturnOrder = p.ReturnOrder[:1] }},
		{"order range", func(p *Params) { p.SendOrder[0] = 9 }},
		{"dup send", func(p *Params) { p.SendOrder = platform.Order{0, 0, 1} }},
		{"dup return", func(p *Params) { p.ReturnOrder = platform.Order{0, 0, 1} }},
		{"return not sent", func(p *Params) {
			p.SendOrder = platform.Order{0, 1}
			p.ReturnOrder = platform.Order{0, 2}
		}},
		{"loaded not enrolled", func(p *Params) {
			p.Loads[2] = 5
			p.SendOrder = platform.Order{0, 1}
			p.ReturnOrder = platform.Order{0, 1}
		}},
		{"negative cache factor", func(p *Params) { p.CacheFactor = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := baseParams(100, 3)
			p.Loads = []float64{1, 2, 3}
			tc.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("want validation error")
			}
			if _, err := Run(p); err == nil {
				t.Error("Run must reject invalid params")
			}
		})
	}
}

// TestMatchesLPPredictionExactly is the central integration test between
// the theory and the simulator: running the optimal FIFO schedule's exact
// fractional loads on the noise-free virtual cluster must reproduce the
// LP-predicted makespan M/ρ to float accuracy.
func TestMatchesLPPredictionExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		size := 40 + 40*trial
		workers := 3 + rng.Intn(6)
		sp := platform.RandomSpeeds(rng, workers, platform.Heterogeneous)
		app := platform.DefaultApp(size)
		plat := sp.Platform(app)

		sched, err := core.OptimalFIFO(plat, core.Float64)
		if err != nil {
			t.Fatal(err)
		}
		const M = 1000.0
		scaled := sched.ScaledToLoad(M)

		params := Params{
			App:         app,
			Speeds:      sp,
			Loads:       scaled.Alpha,
			SendOrder:   scaled.SendOrder,
			ReturnOrder: scaled.ReturnOrder,
		}
		res, err := Run(params)
		if err != nil {
			t.Fatal(err)
		}
		predicted := core.MakespanForLoad(sched, M)
		if re := relErr(res.Makespan, predicted); re > 1e-9 {
			t.Errorf("trial %d (S=%d, p=%d): simulated %g vs predicted %g (rel err %g)",
				trial, size, workers, res.Makespan, predicted, re)
		}
	}
}

// TestLIFOMatchesLPPrediction repeats the integration check for the LIFO
// discipline, whose return order stresses the master-side receive sequence.
func TestLIFOMatchesLPPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	sp := platform.RandomSpeeds(rng, 6, platform.Heterogeneous)
	app := platform.DefaultApp(120)
	plat := sp.Platform(app)
	sched, err := core.OptimalLIFO(plat, core.Float64)
	if err != nil {
		t.Fatal(err)
	}
	const M = 500.0
	scaled := sched.ScaledToLoad(M)
	res, err := Run(Params{
		App:         app,
		Speeds:      sp,
		Loads:       scaled.Alpha,
		SendOrder:   scaled.SendOrder,
		ReturnOrder: scaled.ReturnOrder,
	})
	if err != nil {
		t.Fatal(err)
	}
	predicted := core.MakespanForLoad(sched, M)
	if re := relErr(res.Makespan, predicted); re > 1e-9 {
		t.Errorf("simulated %g vs predicted %g (rel err %g)", res.Makespan, predicted, re)
	}
}

// TestRoundedLoadsCloseToPrediction: with integer loads the measured time
// deviates only by rounding effects (well under 5% for M = 1000).
func TestRoundedLoadsCloseToPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	sp := platform.RandomSpeeds(rng, 5, platform.Heterogeneous)
	app := platform.DefaultApp(100)
	plat := sp.Platform(app)
	sched, err := core.OptimalFIFO(plat, core.Float64)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := rounding.Distribute(sched.Alpha, sched.SendOrder, 1000)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, len(counts))
	for i, c := range counts {
		loads[i] = float64(c)
	}
	res, err := Run(Params{
		App:         app,
		Speeds:      sp,
		Loads:       loads,
		SendOrder:   sched.SendOrder,
		ReturnOrder: sched.ReturnOrder,
	})
	if err != nil {
		t.Fatal(err)
	}
	predicted := core.MakespanForLoad(sched, 1000)
	if re := relErr(res.Makespan, predicted); re > 0.05 {
		t.Errorf("rounded run %g too far from predicted %g (rel err %g)", res.Makespan, predicted, re)
	}
	// Rounding can only slow the schedule down or keep it equal — it
	// perturbs the optimal fractional solution.
	if res.Makespan < predicted*(1-1e-9) {
		t.Errorf("rounded run %g faster than LP optimum %g", res.Makespan, predicted)
	}
}

func TestZeroLoadWorkersSkipped(t *testing.T) {
	p := baseParams(80, 4)
	p.Loads = []float64{10, 0, 5, 0}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Trace.Events() {
		if e.Proc == 2 || e.Proc == 4 { // ranks of zero-load workers
			t.Errorf("zero-load worker has event %+v", e)
		}
	}
}

func TestCacheFactorSlowsComputation(t *testing.T) {
	p := baseParams(200, 2)
	p.Loads = []float64{10, 10}
	base, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.CacheFactor = 0.002
	slow, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Makespan <= base.Makespan {
		t.Errorf("cache factor did not slow the run: %g vs %g", slow.Makespan, base.Makespan)
	}
}

func TestJitterAndLatencyDeterministic(t *testing.T) {
	p := baseParams(100, 3)
	p.Loads = []float64{5, 7, 9}
	p.Jitter = 0.1
	p.Latency = 1e-4
	p.Seed = 7
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Errorf("non-deterministic: %g vs %g", a.Makespan, b.Makespan)
	}
}

func TestTraceShape(t *testing.T) {
	p := baseParams(60, 2)
	p.Loads = []float64{3, 4}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ProcNames) != 3 || res.ProcNames[0] != "master" {
		t.Errorf("proc names = %v", res.ProcNames)
	}
	// Each loaded worker contributes recv+compute+send on its row and
	// send+recv on the master's row: 4 transfers ×2 + 2 computes = 10.
	if res.Trace.Len() != 10 {
		t.Errorf("trace has %d events, want 10", res.Trace.Len())
	}
	// The simulated schedule must satisfy the one-port property; check via
	// master-row disjointness.
	var iv [][2]float64
	for _, e := range res.Trace.Events() {
		if e.Proc == 0 {
			iv = append(iv, [2]float64{e.Start, e.End})
		}
	}
	for i := range iv {
		for j := i + 1; j < len(iv); j++ {
			if iv[i][0] < iv[j][1]-1e-12 && iv[j][0] < iv[i][1]-1e-12 {
				t.Errorf("master port overlap: %v %v", iv[i], iv[j])
			}
		}
	}
}

func BenchmarkRun11Workers(b *testing.B) {
	rng := rand.New(rand.NewSource(45))
	sp := platform.RandomSpeeds(rng, 11, platform.Heterogeneous)
	app := platform.DefaultApp(100)
	plat := sp.Platform(app)
	sched, err := core.OptimalFIFO(plat, core.Float64)
	if err != nil {
		b.Fatal(err)
	}
	scaled := sched.ScaledToLoad(1000)
	p := Params{
		App:         app,
		Speeds:      sp,
		Loads:       scaled.Alpha,
		SendOrder:   scaled.SendOrder,
		ReturnOrder: scaled.ReturnOrder,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p); err != nil {
			b.Fatal(err)
		}
	}
}
