// Package mmapp is the paper's test application: a master distributing
// matrix products to workers over a star network and collecting the result
// matrices, implemented as real message-passing programs on the virtual
// cluster of package vcluster.
//
// One load unit is one product of two S×S float64 matrices: the master
// ships 2·S²·8 bytes per unit, the worker multiplies (2·S³ flops) and ships
// S²·8 bytes back, so the return/forward ratio is z = 1/2 exactly as in
// Section 5. Heterogeneity comes from per-worker link bandwidth and compute
// rate multipliers, mirroring the paper's technique of scaling message and
// computation sizes.
package mmapp

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/vcluster"
)

// Message tags used by the application.
const (
	// TagData marks master→worker input-data messages.
	TagData = 1
	// TagResult marks worker→master result messages.
	TagResult = 2
)

// Params configures one run of the matrix-product application.
type Params struct {
	// App fixes the matrix size and the reference bandwidth and flop rate.
	App platform.App
	// Speeds are the per-worker communication and computation speed
	// multipliers (the paper's 1..10 values).
	Speeds platform.Speeds
	// Loads[i] is the number of matrix products assigned to worker i.
	// Fractional values are allowed (they exercise the linear model
	// exactly and are used by the validation tests); production runs pass
	// integers from rounding.Distribute.
	Loads []float64
	// SendOrder is σ1 (worker indices, 0-based); ReturnOrder is σ2.
	// Workers with zero load may be omitted; enrolled zero-load workers
	// are skipped.
	SendOrder, ReturnOrder platform.Order
	// Latency is the per-message start-up time in seconds (0 = pure linear
	// model).
	Latency float64
	// Jitter is the amplitude of deterministic multiplicative noise
	// (see vcluster.Config).
	Jitter float64
	// Seed selects the noise stream.
	Seed int64
	// CacheFactor models the super-cubic growth of real matrix
	// multiplication beyond cache capacity: the computation time per unit
	// is multiplied by 1 + CacheFactor·S. Zero reproduces the pure linear
	// model; the Section 5.3.3 communication-×10 experiment uses it to
	// exhibit the limits of the linear cost model.
	CacheFactor float64
}

// Result of one application run.
type Result struct {
	// Makespan is the total execution time (virtual seconds).
	Makespan float64
	// Trace holds every communication and computation event.
	Trace *trace.Trace
	// ProcNames labels ranks (master first) for Gantt rendering.
	ProcNames []string
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.App.MatrixSize <= 0 || p.App.Bandwidth <= 0 || p.App.FlopRate <= 0 {
		return fmt.Errorf("mmapp: invalid application %+v", p.App)
	}
	n := p.Speeds.P()
	if len(p.Speeds.Comp) != n {
		return fmt.Errorf("mmapp: speeds have %d comm and %d comp entries", n, len(p.Speeds.Comp))
	}
	if len(p.Loads) != n {
		return fmt.Errorf("mmapp: %d loads for %d workers", len(p.Loads), n)
	}
	for i, l := range p.Loads {
		if l < 0 {
			return fmt.Errorf("mmapp: load %g of worker %d is negative", l, i)
		}
	}
	if len(p.SendOrder) != len(p.ReturnOrder) {
		return fmt.Errorf("mmapp: send order has %d workers, return order %d", len(p.SendOrder), len(p.ReturnOrder))
	}
	enrolled := make(map[int]bool, len(p.SendOrder))
	for _, i := range p.SendOrder {
		if i < 0 || i >= n {
			return fmt.Errorf("mmapp: send order references worker %d outside platform", i)
		}
		if enrolled[i] {
			return fmt.Errorf("mmapp: worker %d appears twice in send order", i)
		}
		enrolled[i] = true
	}
	seen := make(map[int]bool, len(p.ReturnOrder))
	for _, i := range p.ReturnOrder {
		if seen[i] {
			return fmt.Errorf("mmapp: worker %d appears twice in return order", i)
		}
		seen[i] = true
		if !enrolled[i] {
			return fmt.Errorf("mmapp: worker %d returns but never receives", i)
		}
	}
	for i, l := range p.Loads {
		if l > 0 && !enrolled[i] {
			return fmt.Errorf("mmapp: worker %d has load %g but is not in the send order", i, l)
		}
	}
	if p.CacheFactor < 0 {
		return fmt.Errorf("mmapp: cache factor %g must be >= 0", p.CacheFactor)
	}
	return nil
}

// Run executes the application on the virtual cluster and returns the
// measured makespan and trace.
func Run(p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.Speeds.P()
	cfg := vcluster.Config{
		Workers: make([]vcluster.WorkerSpec, n),
		Latency: p.Latency,
		Jitter:  p.Jitter,
		Seed:    p.Seed,
	}
	names := make([]string, n+1)
	names[0] = "master"
	for i := 0; i < n; i++ {
		cfg.Workers[i] = vcluster.WorkerSpec{
			Name:      fmt.Sprintf("P%d", i+1),
			Bandwidth: p.App.Bandwidth * p.Speeds.Comm[i],
			FlopRate:  p.App.FlopRate * p.Speeds.Comp[i],
		}
		names[i+1] = cfg.Workers[i].Name
	}
	bytesIn, bytesOut, flops := p.App.BytesIn(), p.App.BytesOut(), p.App.Flops()
	computeScale := 1 + p.CacheFactor*float64(p.App.MatrixSize)

	res, err := vcluster.Run(cfg, func(proc *vcluster.Proc) {
		if proc.IsMaster() {
			for _, i := range p.SendOrder {
				if p.Loads[i] == 0 {
					continue
				}
				proc.Send(i+1, TagData, p.Loads[i]*bytesIn)
			}
			for _, i := range p.ReturnOrder {
				if p.Loads[i] == 0 {
					continue
				}
				proc.Recv(i+1, TagResult)
			}
			return
		}
		i := proc.Rank() - 1
		if p.Loads[i] == 0 {
			return
		}
		proc.Recv(vcluster.MasterRank, TagData)
		proc.Compute(p.Loads[i] * flops * computeScale)
		proc.Send(vcluster.MasterRank, TagResult, p.Loads[i]*bytesOut)
	})
	if err != nil {
		return nil, err
	}
	return &Result{Makespan: res.Makespan, Trace: res.Trace, ProcNames: names}, nil
}
