// Package trace records timed activity of simulated processes and renders
// ASCII Gantt charts in the style of the paper's Figure 9, where each row
// shows one processor's data receptions, computations and result
// transmissions over time.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies one activity interval.
type Kind int

// Activity kinds.
const (
	// Recv is an incoming transfer (data reception).
	Recv Kind = iota
	// Compute is local computation.
	Compute
	// Send is an outgoing transfer (result transmission for workers).
	Send
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Recv:
		return "recv"
	case Compute:
		return "compute"
	case Send:
		return "send"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// glyph is the fill character used in Gantt rows. The mapping mirrors the
// paper's figure: data transfers pale, computation dark, output transfers
// medium.
func (k Kind) glyph() byte {
	switch k {
	case Recv:
		return '.'
	case Compute:
		return '#'
	case Send:
		return '='
	}
	return '?'
}

// Event is one recorded activity interval of one process.
type Event struct {
	Proc  int     // process rank
	Kind  Kind    // what the process was doing
	Start float64 // start time
	End   float64 // end time (>= Start)
	Peer  int     // other side for transfers, -1 for computation
	Bytes float64 // transfer size, 0 for computation
	Note  string  // free-form label
}

// Trace is a concurrency-safe collection of events.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// New returns an empty trace.
func New() *Trace { return &Trace{} }

// Add records one event. Safe for concurrent use.
func (t *Trace) Add(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, e)
}

// Events returns a copy of all events sorted by (start, proc, kind).
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Makespan returns the largest event end time (0 for an empty trace).
func (t *Trace) Makespan() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := 0.0
	for _, e := range t.events {
		if e.End > m {
			m = e.End
		}
	}
	return m
}

// BusyTime returns the total busy time of a process (sum of its event
// durations; transfers and computation both count as busy).
func (t *Trace) BusyTime(proc int) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	busy := 0.0
	for _, e := range t.events {
		if e.Proc == proc {
			busy += e.End - e.Start
		}
	}
	return busy
}

// Utilization returns BusyTime/Makespan for a process, 0 if the trace is
// empty.
func (t *Trace) Utilization(proc int) float64 {
	m := t.Makespan()
	if m == 0 {
		return 0
	}
	return t.BusyTime(proc) / m
}

// Gantt renders an ASCII Gantt chart of the trace: one row per process rank
// in [0, procs), `width` columns spanning [0, makespan]. Overlapping events
// on the same row (which a correct one-port master never produces) are
// rendered with the later event overwriting. Legend: '.' incoming transfer,
// '#' computation, '=' outgoing transfer.
func (t *Trace) Gantt(procs, width int, names []string) string {
	if width < 10 {
		width = 10
	}
	makespan := t.Makespan()
	var b strings.Builder
	fmt.Fprintf(&b, "time 0 %s %.6g\n", strings.Repeat("-", maxInt(0, width-12)), makespan)
	rows := make([][]byte, procs)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", width))
	}
	if makespan > 0 {
		for _, e := range t.Events() {
			if e.Proc < 0 || e.Proc >= procs {
				continue
			}
			s := int(e.Start / makespan * float64(width))
			en := int(e.End / makespan * float64(width))
			if en >= width {
				en = width - 1
			}
			if en < s {
				en = s
			}
			g := e.Kind.glyph()
			for x := s; x <= en && x < width; x++ {
				rows[e.Proc][x] = g
			}
		}
	}
	for i, r := range rows {
		name := fmt.Sprintf("P%d", i)
		if i < len(names) && names[i] != "" {
			name = names[i]
		}
		fmt.Fprintf(&b, "%-8s|%s|\n", name, string(r))
	}
	b.WriteString("legend: '.' data in   '#' compute   '=' data out\n")
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
