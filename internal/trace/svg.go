package trace

import (
	"fmt"
	"sort"
	"strings"
)

// SVG colors per activity kind, mirroring the paper's Figure 9 palette:
// data transfers in white/light, computation in dark gray, output
// transfers in pale gray.
func (k Kind) svgColor() string {
	switch k {
	case Recv:
		return "#f2f2f2"
	case Compute:
		return "#4d4d4d"
	case Send:
		return "#b8b8b8"
	}
	return "#ff00ff"
}

// SVG renders the trace as a standalone SVG Gantt chart: one horizontal
// lane per process rank in [0, procs), time on the x axis over
// [0, makespan]. It is self-contained (no external CSS) and suitable for
// embedding in reports; the paper's Figure 9 was produced by an equivalent
// MPI trace visualizer.
func (t *Trace) SVG(procs int, names []string) string {
	const (
		laneH    = 28.0
		laneGap  = 8.0
		leftPad  = 90.0
		rightPad = 20.0
		topPad   = 34.0
		plotW    = 880.0
	)
	makespan := t.Makespan()
	height := topPad + float64(procs)*(laneH+laneGap) + 40
	width := leftPad + plotW + rightPad

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect x="0" y="0" width="%g" height="%g" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%g" y="20" font-family="sans-serif" font-size="13">execution trace, makespan %.6g</text>`+"\n",
		leftPad, makespan)

	xOf := func(tm float64) float64 {
		if makespan == 0 {
			return leftPad
		}
		return leftPad + tm/makespan*plotW
	}
	yOf := func(proc int) float64 { return topPad + float64(proc)*(laneH+laneGap) }

	// Lane backgrounds and labels.
	for p := 0; p < procs; p++ {
		name := fmt.Sprintf("P%d", p)
		if p < len(names) && names[p] != "" {
			name = names[p]
		}
		fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%g" fill="#fbfbfb" stroke="#dddddd"/>`+"\n",
			leftPad, yOf(p), plotW, laneH)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="end">%s</text>`+"\n",
			leftPad-8, yOf(p)+laneH/2+4, xmlEscape(name))
	}

	// Events, longest first so short ones stay visible on top.
	evs := t.Events()
	sort.SliceStable(evs, func(i, j int) bool {
		return evs[i].End-evs[i].Start > evs[j].End-evs[j].Start
	})
	for _, e := range evs {
		if e.Proc < 0 || e.Proc >= procs || makespan == 0 {
			continue
		}
		x := xOf(e.Start)
		w := xOf(e.End) - x
		if w < 0.5 {
			w = 0.5
		}
		title := fmt.Sprintf("%s [%.6g, %.6g]", e.Kind, e.Start, e.End)
		if e.Kind != Compute {
			title += fmt.Sprintf(" peer P%d, %.4g bytes", e.Peer, e.Bytes)
		}
		fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%g" fill="%s" stroke="#888888" stroke-width="0.5"><title>%s</title></rect>`+"\n",
			x, yOf(e.Proc)+3, w, laneH-6, e.Kind.svgColor(), xmlEscape(title))
	}

	// Legend.
	ly := topPad + float64(procs)*(laneH+laneGap) + 14
	lx := leftPad
	for _, k := range []Kind{Recv, Compute, Send} {
		fmt.Fprintf(&b, `<rect x="%g" y="%g" width="14" height="12" fill="%s" stroke="#888888" stroke-width="0.5"/>`+"\n",
			lx, ly-10, k.svgColor())
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			lx+20, ly, k)
		lx += 110
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
