package trace

import (
	"strings"
	"sync"
	"testing"
)

func sampleTrace() *Trace {
	t := New()
	t.Add(Event{Proc: 0, Kind: Send, Start: 0, End: 1, Peer: 1, Bytes: 100})
	t.Add(Event{Proc: 1, Kind: Recv, Start: 0, End: 1, Peer: 0, Bytes: 100})
	t.Add(Event{Proc: 1, Kind: Compute, Start: 1, End: 3, Peer: -1})
	t.Add(Event{Proc: 1, Kind: Send, Start: 3, End: 4, Peer: 0, Bytes: 50})
	t.Add(Event{Proc: 0, Kind: Recv, Start: 3, End: 4, Peer: 1, Bytes: 50})
	return t
}

func TestEventsSorted(t *testing.T) {
	tr := sampleTrace()
	evs := tr.Events()
	if len(evs) != 5 || tr.Len() != 5 {
		t.Fatalf("len = %d / %d", len(evs), tr.Len())
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Start < evs[i-1].Start {
			t.Errorf("events not sorted by start: %v after %v", evs[i], evs[i-1])
		}
	}
	// Events returns a copy.
	evs[0].Start = 999
	if tr.Events()[0].Start == 999 {
		t.Error("Events aliases internal storage")
	}
}

func TestMakespanBusyUtilization(t *testing.T) {
	tr := sampleTrace()
	if got := tr.Makespan(); got != 4 {
		t.Errorf("Makespan = %g, want 4", got)
	}
	if got := tr.BusyTime(1); got != 4 { // 1 recv + 2 compute + 1 send
		t.Errorf("BusyTime(1) = %g, want 4", got)
	}
	if got := tr.BusyTime(0); got != 2 {
		t.Errorf("BusyTime(0) = %g, want 2", got)
	}
	if got := tr.Utilization(1); got != 1 {
		t.Errorf("Utilization(1) = %g, want 1", got)
	}
	if got := tr.Utilization(0); got != 0.5 {
		t.Errorf("Utilization(0) = %g, want 0.5", got)
	}
	empty := New()
	if empty.Makespan() != 0 || empty.Utilization(0) != 0 {
		t.Error("empty trace must have zero makespan and utilization")
	}
}

func TestGanttRendering(t *testing.T) {
	tr := sampleTrace()
	g := tr.Gantt(2, 40, []string{"master", "w1"})
	if !strings.Contains(g, "master") || !strings.Contains(g, "w1") {
		t.Errorf("Gantt missing row names:\n%s", g)
	}
	for _, glyph := range []string{".", "#", "=", "legend"} {
		if !strings.Contains(g, glyph) {
			t.Errorf("Gantt missing %q:\n%s", glyph, g)
		}
	}
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	// header + 2 rows + legend
	if len(lines) != 4 {
		t.Errorf("Gantt has %d lines, want 4:\n%s", len(lines), g)
	}
	// Narrow widths are clamped, names default to Pn; out-of-range procs
	// are skipped without panic.
	tr.Add(Event{Proc: 99, Kind: Send, Start: 0, End: 1})
	small := tr.Gantt(1, 1, nil)
	if !strings.Contains(small, "P0") {
		t.Errorf("default name missing:\n%s", small)
	}
}

func TestGanttEmptyTrace(t *testing.T) {
	g := New().Gantt(1, 20, nil)
	if !strings.Contains(g, "P0") {
		t.Errorf("empty gantt should still render rows:\n%s", g)
	}
}

func TestKindString(t *testing.T) {
	if Recv.String() != "recv" || Compute.String() != "compute" || Send.String() != "send" {
		t.Error("Kind.String mismatch")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind must not be empty")
	}
	if Kind(9).glyph() != '?' {
		t.Error("unknown kind glyph")
	}
}

func TestConcurrentAdd(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Add(Event{Proc: g, Kind: Compute, Start: float64(i), End: float64(i + 1)})
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Errorf("Len = %d, want 800", tr.Len())
	}
}

func TestGanttRowOrdering(t *testing.T) {
	// Rows must appear in process-rank order regardless of the order (or
	// interleaving) in which events were recorded.
	tr := New()
	tr.Add(Event{Proc: 2, Kind: Compute, Start: 0, End: 2})
	tr.Add(Event{Proc: 0, Kind: Send, Start: 1, End: 2})
	tr.Add(Event{Proc: 1, Kind: Recv, Start: 0, End: 1})
	g := tr.Gantt(3, 30, []string{"alpha", "beta", "gamma"})
	ia := strings.Index(g, "alpha")
	ib := strings.Index(g, "beta")
	ic := strings.Index(g, "gamma")
	if ia < 0 || ib < 0 || ic < 0 || !(ia < ib && ib < ic) {
		t.Errorf("rows out of order (alpha@%d beta@%d gamma@%d):\n%s", ia, ib, ic, g)
	}
}

func TestGanttGlyphMapping(t *testing.T) {
	// One event per kind, in disjoint time ranges on separate rows: each
	// row must be filled with exactly its kind's glyph.
	tr := New()
	tr.Add(Event{Proc: 0, Kind: Recv, Start: 0, End: 3})
	tr.Add(Event{Proc: 1, Kind: Compute, Start: 0, End: 3})
	tr.Add(Event{Proc: 2, Kind: Send, Start: 0, End: 3})
	g := tr.Gantt(3, 20, nil)
	lines := strings.Split(g, "\n")
	// lines[0] is the time header; rows follow.
	for i, want := range []struct {
		glyph byte
		wrong string
	}{{'.', "#="}, {'#', ".="}, {'=', ".#"}} {
		row := lines[1+i]
		if !strings.ContainsRune(row, rune(want.glyph)) {
			t.Errorf("row %d missing glyph %q:\n%s", i, want.glyph, g)
		}
		if strings.ContainsAny(row, want.wrong) {
			t.Errorf("row %d contains foreign glyphs:\n%s", i, g)
		}
	}
	if !strings.Contains(lines[len(lines)-2], "legend") {
		t.Errorf("legend missing:\n%s", g)
	}
}

func TestGanttOverlappingIntervals(t *testing.T) {
	// Overlapping events on one row: the later event (in Events() order,
	// sorted by start) overwrites the earlier one where they overlap.
	tr := New()
	tr.Add(Event{Proc: 0, Kind: Recv, Start: 0, End: 10})
	tr.Add(Event{Proc: 0, Kind: Compute, Start: 5, End: 10})
	g := tr.Gantt(1, 20, nil)
	row := strings.Split(g, "\n")[1]
	cells := row[strings.Index(row, "|")+1:]
	first := cells[:10]
	second := cells[10:20]
	if strings.Contains(first, "#") {
		t.Errorf("computation glyph leaked before its start:\n%s", g)
	}
	if strings.Contains(second, ".") {
		t.Errorf("overlap not overwritten by the later event:\n%s", g)
	}
	if !strings.Contains(second, "#") {
		t.Errorf("later event missing from overlap region:\n%s", g)
	}
}

func TestConcurrentAddDeterministicGantt(t *testing.T) {
	// The same event set recorded from concurrent goroutines must render
	// byte-identically every time: Events() sorts, so arrival order (which
	// the scheduler scrambles) cannot leak into the Gantt output.
	render := func() string {
		tr := New()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					tr.Add(Event{
						Proc:  g % 4,
						Kind:  Kind(i % 3),
						Start: float64((i*7 + g) % 40),
						End:   float64((i*7+g)%40 + 2),
					})
				}
			}(g)
		}
		wg.Wait()
		return tr.Gantt(4, 60, nil)
	}
	ref := render()
	for round := 0; round < 5; round++ {
		if got := render(); got != ref {
			t.Fatalf("round %d: concurrent recording changed the rendering:\n%s\nvs\n%s", round, got, ref)
		}
	}
}

func TestSVGRendering(t *testing.T) {
	tr := sampleTrace()
	svg := tr.SVG(2, []string{"master", "w<1>"})
	for _, want := range []string{
		"<svg", "</svg>", "master", "w&lt;1&gt;", // names escaped
		"#4d4d4d",                 // compute color
		"recv", "compute", "send", // legend
		"<title>", "bytes",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Out-of-range events are skipped without panicking.
	tr.Add(Event{Proc: 42, Kind: Send, Start: 0, End: 1})
	_ = tr.SVG(2, nil)
	// Empty traces render a valid document.
	empty := New().SVG(1, nil)
	if !strings.Contains(empty, "</svg>") {
		t.Error("empty SVG truncated")
	}
}

func TestSVGDegenerateDurations(t *testing.T) {
	tr := New()
	tr.Add(Event{Proc: 0, Kind: Compute, Start: 1, End: 1}) // zero width
	tr.Add(Event{Proc: 0, Kind: Send, Start: 0, End: 2, Peer: 1})
	svg := tr.SVG(1, nil)
	// The zero-duration event must still appear (minimum width).
	if got := strings.Count(svg, "<rect"); got < 3 { // bg + 2 events (+legend)
		t.Errorf("SVG has %d rects, want at least 3", got)
	}
}
