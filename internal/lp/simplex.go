package lp

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/numeric"
)

// Numerical tolerances for the float64 simplex. The divisible-load LPs are
// tiny and well scaled (coefficients are platform costs of comparable
// magnitude, right-hand sides are 1), so the repository-wide fixed
// tolerance is adequate.
const (
	eps = numeric.LPEps
	// blandAfter is the pivot count after which the solver abandons Dantzig
	// pricing for Bland's rule, which cannot cycle.
	blandAfter = 10_000
	// maxPivots bounds the total number of pivots; with Bland's rule the
	// simplex terminates, so hitting this indicates a bug rather than a hard
	// problem, and the solver reports it as an error.
	maxPivots = 1_000_000
)

// Solve runs the two-phase primal simplex in float64 arithmetic and returns
// the solution. The problem itself is not modified. An error is returned
// only for malformed input or an internal failure; Infeasible and Unbounded
// are reported through Solution.Status.
func (p *Problem) Solve() (*Solution, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	t := newTableau(p)
	defer t.release()
	status, iters, err := t.run()
	if err != nil {
		return nil, err
	}
	sol := &Solution{Status: status, Iterations: iters}
	if status != Optimal {
		return sol, nil
	}
	x := t.primal()
	obj := 0.0
	for j, c := range p.obj {
		obj += c * x[j]
	}
	sol.X = x
	sol.Objective = obj
	sol.Slack = p.computeSlacks(x)
	return sol, nil
}

// tableau is the dense full-tableau working state of the float64 simplex.
// Column layout: [0, nVars) original variables, then one slack/surplus
// column per inequality row, then one artificial column per row that needs
// one. The right-hand side is held separately in b.
//
// Tableaus are pooled: newTableau draws one from a sync.Pool and reuses
// its backing buffers, so repeated solves (batch fan-out, exhaustive
// search fallbacks) allocate O(1) amortised per solve.
type tableau struct {
	m, n     int         // rows, total columns
	nVars    int         // original variables
	buf      []float64   // m×n backing storage of a
	a        [][]float64 // m row headers into buf
	b        []float64   // m
	basis    []int       // m, column index basic in each row
	cost     []float64   // n, current phase cost vector
	cbar     []float64   // n, reduced costs (maintained incrementally)
	objVal   float64     // current phase objective value
	artStart int         // first artificial column, == n if none
	minimize []float64   // phase-2 cost vector (minimization form)
	phase1   []float64   // phase-1 cost vector
	pivots   int
}

var tableauPool = sync.Pool{New: func() any { return &tableau{} }}

// release returns the tableau's buffers to the pool.
func (t *tableau) release() { tableauPool.Put(t) }

// growFloats resizes *buf to n entries, reusing capacity; contents are
// unspecified.
func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func newTableau(p *Problem) *tableau {
	m := len(p.rows)
	nVars := len(p.varNames)

	// First pass: count auxiliary columns. Rows are normalised to
	// non-negative RHS, which may flip the sense.
	nSlack, nArt := 0, 0
	for _, r := range p.rows {
		sense := r.sense
		if r.rhs < 0 {
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		switch sense {
		case LE:
			nSlack++ // slack becomes the initial basic variable
		case GE:
			nSlack++ // surplus
			nArt++
		case EQ:
			nArt++
		}
	}

	n := nVars + nSlack + nArt
	t := tableauPool.Get().(*tableau)
	t.m, t.n, t.nVars = m, n, nVars
	t.artStart = nVars + nSlack
	t.pivots = 0
	t.objVal = 0
	buf := growFloats(&t.buf, m*n)
	for i := range buf {
		buf[i] = 0
	}
	if cap(t.a) < m {
		t.a = make([][]float64, m)
	}
	t.a = t.a[:m]
	for i := 0; i < m; i++ {
		t.a[i] = buf[i*n : (i+1)*n]
	}
	t.b = growFloats(&t.b, m)
	t.basis = growInts(&t.basis, m)

	// Second pass: fill rows and install the initial basis.
	slackCol := nVars
	artCol := t.artStart
	for i, r := range p.rows {
		row := t.a[i]
		sense, rhs := r.sense, r.rhs
		if rhs < 0 {
			for j, c := range r.coefs {
				row[j] = -c
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		} else {
			copy(row, r.coefs)
		}
		t.b[i] = rhs
		switch sense {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
	}

	// Phase-2 cost vector in minimization form.
	t.minimize = growFloats(&t.minimize, n)
	for j := 0; j < n; j++ {
		t.minimize[j] = 0
	}
	for j := 0; j < nVars; j++ {
		if p.maximize {
			t.minimize[j] = -p.obj[j]
		} else {
			t.minimize[j] = p.obj[j]
		}
	}
	return t
}

// run executes both phases and returns the final status.
func (t *tableau) run() (Status, int, error) {
	if t.artStart < t.n {
		// Phase 1: minimise the sum of artificial variables.
		phase1 := growFloats(&t.phase1, t.n)
		for j := range phase1 {
			phase1[j] = 0
		}
		for j := t.artStart; j < t.n; j++ {
			phase1[j] = 1
		}
		t.loadCost(phase1)
		st, err := t.iterate(false)
		if err != nil {
			return 0, t.pivots, err
		}
		if st == Unbounded {
			return 0, t.pivots, fmt.Errorf("lp: phase-1 objective unbounded (internal error)")
		}
		if t.objVal > 1e-7 {
			return Infeasible, t.pivots, nil
		}
		if err := t.evictArtificials(); err != nil {
			return 0, t.pivots, err
		}
	}
	// Phase 2.
	t.loadCost(t.minimize)
	st, err := t.iterate(true)
	if err != nil {
		return 0, t.pivots, err
	}
	return st, t.pivots, nil
}

// loadCost installs a cost vector and recomputes reduced costs and the
// objective value from the current basis.
func (t *tableau) loadCost(cost []float64) {
	t.cost = cost
	t.cbar = growFloats(&t.cbar, t.n)
	copy(t.cbar, cost)
	t.objVal = 0
	for i := 0; i < t.m; i++ {
		cb := cost[t.basis[i]]
		if cb == 0 {
			continue
		}
		t.objVal += cb * t.b[i]
		for j := 0; j < t.n; j++ {
			t.cbar[j] -= cb * t.a[i][j]
		}
	}
}

// iterate pivots until optimality or unboundedness. When excludeArtificials
// is true, artificial columns may not enter the basis (phase 2).
func (t *tableau) iterate(excludeArtificials bool) (Status, error) {
	limit := t.n
	if excludeArtificials {
		limit = t.artStart
	}
	for {
		if t.pivots > maxPivots {
			return 0, fmt.Errorf("lp: pivot limit exceeded (%d); possible numerical cycling", maxPivots)
		}
		bland := t.pivots > blandAfter
		enter := -1
		best := -eps
		for j := 0; j < limit; j++ {
			if t.isBasic(j) {
				continue
			}
			if t.cbar[j] < -eps {
				if bland {
					enter = j
					break
				}
				if t.cbar[j] < best {
					best = t.cbar[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			return Optimal, nil
		}
		leave := -1
		var minRatio float64
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij <= eps {
				continue
			}
			ratio := t.b[i] / aij
			if leave < 0 || ratio < minRatio-eps ||
				(math.Abs(ratio-minRatio) <= eps && t.basis[i] < t.basis[leave]) {
				leave = i
				minRatio = ratio
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		t.pivot(leave, enter)
	}
}

func (t *tableau) isBasic(col int) bool {
	for i := 0; i < t.m; i++ {
		if t.basis[i] == col {
			return true
		}
	}
	return false
}

// pivot performs the Gauss-Jordan elimination step making column c basic in
// row r, updating the reduced-cost row and objective value in the same pass.
func (t *tableau) pivot(r, c int) {
	t.pivots++
	piv := t.a[r][c]
	inv := 1.0 / piv
	for j := 0; j < t.n; j++ {
		t.a[r][j] *= inv
	}
	t.b[r] *= inv
	t.a[r][c] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == r {
			continue
		}
		f := t.a[i][c]
		if f == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.a[i][j] -= f * t.a[r][j]
		}
		t.a[i][c] = 0 // exact
		t.b[i] -= f * t.b[r]
		if t.b[i] < 0 && t.b[i] > -eps {
			t.b[i] = 0
		}
	}
	if f := t.cbar[c]; f != 0 {
		for j := 0; j < t.n; j++ {
			t.cbar[j] -= f * t.a[r][j]
		}
		t.cbar[c] = 0
	}
	t.basis[r] = c
	// The phase objective is Σ cost[basis[i]]·b[i]. The problems in this
	// module are tiny, so recomputing it directly is cheaper to maintain
	// (and more robust) than a rank-one update.
	t.objVal = 0
	for i := 0; i < t.m; i++ {
		if cb := t.cost[t.basis[i]]; cb != 0 {
			t.objVal += cb * t.b[i]
		}
	}
}

// evictArtificials pivots out any artificial variable that remained basic at
// level zero after phase 1, or verifies its row is redundant.
func (t *tableau) evictArtificials() error {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		if t.b[i] > 1e-7 {
			return fmt.Errorf("lp: artificial variable basic at positive level after feasible phase 1")
		}
		// Try to pivot in any non-artificial column with a nonzero entry.
		done := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > 1e-7 && !t.isBasic(j) {
				t.pivot(i, j)
				done = true
				break
			}
		}
		if !done {
			// Redundant row: the artificial stays basic at level 0 and is
			// simply never allowed to enter elsewhere; the row is inert.
			t.b[i] = 0
		}
	}
	return nil
}

// primal extracts the values of the original variables.
func (t *tableau) primal() []float64 {
	x := make([]float64, t.nVars)
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.nVars {
			v := t.b[i]
			if v < 0 && v > -eps {
				v = 0
			}
			x[t.basis[i]] = v
		}
	}
	return x
}
