// Package lp implements a small dense linear-programming solver used as the
// substrate for the divisible-load scheduling linear programs of Beaumont,
// Marchal, Rehn and Robert (RR-5738). The paper's experiments used the
// external lp_solve package; this package replaces it with a self-contained
// two-phase primal simplex available in two arithmetic flavours:
//
//   - a float64 tableau simplex (Solve), fast and suitable for benchmarks,
//     with Dantzig pricing and an automatic switch to Bland's rule to
//     guarantee termination on degenerate problems; and
//   - an exact rational simplex over math/big.Rat (SolveExact), used by the
//     theory tests to verify optimality statements as identities rather
//     than approximations.
//
// The modelled problems are of the form
//
//	max (or min)  objᵀ·x
//	subject to    aᵢᵀ·x  {≤,=,≥}  bᵢ     for every row i
//	              x ≥ 0
//
// All variables are non-negative; this is sufficient for every program in
// the divisible-load framework (loads and idle times are non-negative by
// definition). Free variables are deliberately not supported.
package lp

import (
	"fmt"
	"math"
	"strings"
)

// Sense is the relational operator of a constraint row.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // aᵀx ≤ b
	GE              // aᵀx ≥ b
	EQ              // aᵀx = b
)

// String returns the conventional symbol for the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Status reports the outcome of a solve.
type Status int

// Solver outcomes.
const (
	// Optimal means a finite optimal solution was found.
	Optimal Status = iota
	// Infeasible means the constraint set is empty.
	Infeasible
	// Unbounded means the objective can be improved without limit.
	Unbounded
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Coef is a single (variable, coefficient) entry of a constraint row.
type Coef struct {
	Var   int
	Value float64
}

// row is one stored constraint. Both a dense float64 view and the raw term
// list are kept: the float solver uses the dense view, while the exact
// solver re-accumulates the raw terms in rational arithmetic so that sums
// of coefficients (e.g. c+w+d in the scheduling LPs) carry no float64
// rounding.
type row struct {
	name  string
	coefs []float64 // dense, length == number of variables at solve time
	terms []Coef    // raw terms as given to AddConstraint/AddDense
	sense Sense
	rhs   float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create instances with NewMaximize or NewMinimize. Problems are not
// safe for concurrent mutation, but a fully built Problem may be solved from
// several goroutines concurrently (Solve and SolveExact do not mutate it).
type Problem struct {
	maximize bool
	obj      []float64
	varNames []string
	rows     []row
}

// NewMaximize returns an empty maximization problem.
func NewMaximize() *Problem { return &Problem{maximize: true} }

// NewMinimize returns an empty minimization problem.
func NewMinimize() *Problem { return &Problem{maximize: false} }

// IsMaximize reports whether the problem maximizes its objective.
func (p *Problem) IsMaximize() bool { return p.maximize }

// AddVar appends a non-negative variable with the given name and objective
// coefficient, returning its index. Names are only used for diagnostics and
// need not be unique.
func (p *Problem) AddVar(name string, objCoef float64) int {
	p.varNames = append(p.varNames, name)
	p.obj = append(p.obj, objCoef)
	for i := range p.rows {
		p.rows[i].coefs = append(p.rows[i].coefs, 0)
	}
	return len(p.varNames) - 1
}

// SetObj overwrites the objective coefficient of variable v.
func (p *Problem) SetObj(v int, coef float64) {
	p.obj[v] = coef
}

// AddConstraint appends the row  Σ coefs  sense  rhs. Entries referencing
// the same variable accumulate. It panics if a variable index is out of
// range, mirroring slice indexing semantics.
func (p *Problem) AddConstraint(name string, coefs []Coef, sense Sense, rhs float64) {
	dense := make([]float64, len(p.varNames))
	terms := make([]Coef, len(coefs))
	copy(terms, coefs)
	for _, c := range coefs {
		dense[c.Var] += c.Value
	}
	p.rows = append(p.rows, row{name: name, coefs: dense, terms: terms, sense: sense, rhs: rhs})
}

// AddDense appends a constraint given as a dense coefficient vector. The
// slice is copied; it must have exactly NumVars entries.
func (p *Problem) AddDense(name string, coefs []float64, sense Sense, rhs float64) {
	if len(coefs) != len(p.varNames) {
		panic(fmt.Sprintf("lp: AddDense row %q has %d coefficients, problem has %d variables",
			name, len(coefs), len(p.varNames)))
	}
	dense := make([]float64, len(coefs))
	copy(dense, coefs)
	var terms []Coef
	for v, c := range coefs {
		if c != 0 {
			terms = append(terms, Coef{Var: v, Value: c})
		}
	}
	p.rows = append(p.rows, row{name: name, coefs: dense, terms: terms, sense: sense, rhs: rhs})
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.varNames) }

// NumRows returns the number of constraints added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// VarName returns the name given to variable v.
func (p *Problem) VarName(v int) string { return p.varNames[v] }

// String renders the whole program in a readable algebraic form, useful in
// test failures and debug logs.
func (p *Problem) String() string {
	var b strings.Builder
	if p.maximize {
		b.WriteString("maximize ")
	} else {
		b.WriteString("minimize ")
	}
	b.WriteString(renderRow(p.obj, p.varNames))
	b.WriteString("\nsubject to\n")
	for _, r := range p.rows {
		fmt.Fprintf(&b, "  %-14s %s %s %g\n", r.name+":", renderRow(r.coefs, p.varNames), r.sense, r.rhs)
	}
	b.WriteString("  x >= 0\n")
	return b.String()
}

func renderRow(coefs []float64, names []string) string {
	var parts []string
	for i, c := range coefs {
		if c == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%+g·%s", c, names[i]))
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " ")
}

// Solution is the result of a float64 solve.
type Solution struct {
	Status     Status
	Objective  float64   // meaningful only when Status == Optimal
	X          []float64 // variable values, length NumVars; only when Optimal
	Slack      []float64 // per-row slack (rhs - aᵀx for ≤, aᵀx - rhs for ≥, 0 for =)
	Iterations int       // total simplex pivots across both phases
}

// Value returns the value of variable v in the solution.
func (s *Solution) Value(v int) float64 { return s.X[v] }

// validate performs cheap sanity checks shared by both solvers.
func (p *Problem) validate() error {
	if len(p.varNames) == 0 {
		return fmt.Errorf("lp: problem has no variables")
	}
	for _, r := range p.rows {
		if math.IsNaN(r.rhs) || math.IsInf(r.rhs, 0) {
			return fmt.Errorf("lp: row %q has non-finite right-hand side %v", r.name, r.rhs)
		}
		for j, c := range r.coefs {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("lp: row %q has non-finite coefficient %v for %s", r.name, c, p.varNames[j])
			}
		}
	}
	for j, c := range p.obj {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("lp: objective has non-finite coefficient %v for %s", c, p.varNames[j])
		}
	}
	return nil
}

// computeSlacks fills Solution.Slack from primal values.
func (p *Problem) computeSlacks(x []float64) []float64 {
	slack := make([]float64, len(p.rows))
	for i, r := range p.rows {
		dot := 0.0
		for j, c := range r.coefs {
			dot += c * x[j]
		}
		switch r.sense {
		case LE:
			slack[i] = r.rhs - dot
		case GE:
			slack[i] = dot - r.rhs
		case EQ:
			slack[i] = 0
		}
	}
	return slack
}
