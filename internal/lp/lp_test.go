package lp

import (
	"math"
	"math/big"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const tol = 1e-7

func approxEq(a, b float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

// solveBoth runs the float and the exact solver and checks they agree on
// status and (when optimal) objective value.
func solveBoth(t *testing.T, p *Problem) (*Solution, *ExactSolution) {
	t.Helper()
	fs, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v\nproblem:\n%s", err, p)
	}
	es, err := p.SolveExact()
	if err != nil {
		t.Fatalf("SolveExact: %v\nproblem:\n%s", err, p)
	}
	if fs.Status != es.Status {
		t.Fatalf("status mismatch: float=%v exact=%v\nproblem:\n%s", fs.Status, es.Status, p)
	}
	if fs.Status == Optimal {
		eobj, _ := es.Objective.Float64()
		if !approxEq(fs.Objective, eobj) {
			t.Fatalf("objective mismatch: float=%.12g exact=%.12g\nproblem:\n%s", fs.Objective, eobj, p)
		}
	}
	return fs, es
}

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (classic Dantzig
	// example; optimum 36 at x=2, y=6).
	p := NewMaximize()
	x := p.AddVar("x", 3)
	y := p.AddVar("y", 5)
	p.AddConstraint("c1", []Coef{{x, 1}}, LE, 4)
	p.AddConstraint("c2", []Coef{{y, 2}}, LE, 12)
	p.AddConstraint("c3", []Coef{{x, 3}, {y, 2}}, LE, 18)
	s, _ := solveBoth(t, p)
	if !approxEq(s.Objective, 36) {
		t.Errorf("objective = %g, want 36", s.Objective)
	}
	if !approxEq(s.Value(x), 2) || !approxEq(s.Value(y), 6) {
		t.Errorf("solution = (%g, %g), want (2, 6)", s.Value(x), s.Value(y))
	}
}

func TestSimpleMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3. Optimum at x=7, y=3 → 23.
	p := NewMinimize()
	x := p.AddVar("x", 2)
	y := p.AddVar("y", 3)
	p.AddConstraint("sum", []Coef{{x, 1}, {y, 1}}, GE, 10)
	p.AddConstraint("xmin", []Coef{{x, 1}}, GE, 2)
	p.AddConstraint("ymin", []Coef{{y, 1}}, GE, 3)
	s, _ := solveBoth(t, p)
	if !approxEq(s.Objective, 23) {
		t.Errorf("objective = %g, want 23", s.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// max x + y s.t. x + y = 5, x <= 3 → objective 5.
	p := NewMaximize()
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	p.AddConstraint("eq", []Coef{{x, 1}, {y, 1}}, EQ, 5)
	p.AddConstraint("cap", []Coef{{x, 1}}, LE, 3)
	s, _ := solveBoth(t, p)
	if !approxEq(s.Objective, 5) {
		t.Errorf("objective = %g, want 5", s.Objective)
	}
	if !approxEq(s.Value(x)+s.Value(y), 5) {
		t.Errorf("x+y = %g, want 5", s.Value(x)+s.Value(y))
	}
}

func TestInfeasible(t *testing.T) {
	p := NewMaximize()
	x := p.AddVar("x", 1)
	p.AddConstraint("lo", []Coef{{x, 1}}, GE, 5)
	p.AddConstraint("hi", []Coef{{x, 1}}, LE, 3)
	s, _ := solveBoth(t, p)
	if s.Status != Infeasible {
		t.Errorf("status = %v, want Infeasible", s.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	p := NewMinimize()
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	p.AddConstraint("e1", []Coef{{x, 1}, {y, 1}}, EQ, 1)
	p.AddConstraint("e2", []Coef{{x, 1}, {y, 1}}, EQ, 2)
	s, _ := solveBoth(t, p)
	if s.Status != Infeasible {
		t.Errorf("status = %v, want Infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewMaximize()
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 0)
	p.AddConstraint("c", []Coef{{x, 1}, {y, -1}}, LE, 1)
	s, _ := solveBoth(t, p)
	if s.Status != Unbounded {
		t.Errorf("status = %v, want Unbounded", s.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// max -x s.t. -x <= -2  (i.e. x >= 2) → objective -2.
	p := NewMaximize()
	x := p.AddVar("x", -1)
	p.AddConstraint("c", []Coef{{x, -1}}, LE, -2)
	s, _ := solveBoth(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v, want Optimal", s.Status)
	}
	if !approxEq(s.Objective, -2) {
		t.Errorf("objective = %g, want -2", s.Objective)
	}
}

func TestDegenerateBeale(t *testing.T) {
	// Beale's classic cycling example. With Bland's rule (exact) and the
	// Dantzig→Bland fallback (float) both must terminate at optimum 0.05.
	p := NewMinimize()
	x1 := p.AddVar("x1", -0.75)
	x2 := p.AddVar("x2", 150)
	x3 := p.AddVar("x3", -0.02)
	x4 := p.AddVar("x4", 6)
	p.AddConstraint("r1", []Coef{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	p.AddConstraint("r2", []Coef{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	p.AddConstraint("r3", []Coef{{x3, 1}}, LE, 1)
	s, _ := solveBoth(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v, want Optimal", s.Status)
	}
	if !approxEq(s.Objective, -0.05) {
		t.Errorf("objective = %g, want -0.05", s.Objective)
	}
}

func TestZeroObjective(t *testing.T) {
	// Pure feasibility problem.
	p := NewMaximize()
	x := p.AddVar("x", 0)
	p.AddConstraint("c", []Coef{{x, 1}}, EQ, 7)
	s, _ := solveBoth(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approxEq(s.Value(x), 7) {
		t.Errorf("x = %g, want 7", s.Value(x))
	}
}

func TestNoVariables(t *testing.T) {
	p := NewMaximize()
	if _, err := p.Solve(); err == nil {
		t.Error("Solve on empty problem: want error, got nil")
	}
	if _, err := p.SolveExact(); err == nil {
		t.Error("SolveExact on empty problem: want error, got nil")
	}
}

func TestNonFiniteInput(t *testing.T) {
	p := NewMaximize()
	x := p.AddVar("x", 1)
	p.AddConstraint("bad", []Coef{{x, math.NaN()}}, LE, 1)
	if _, err := p.Solve(); err == nil {
		t.Error("want error for NaN coefficient")
	}
	p2 := NewMaximize()
	y := p2.AddVar("y", math.Inf(1))
	_ = y
	if _, err := p2.Solve(); err == nil {
		t.Error("want error for Inf objective coefficient")
	}
}

func TestAddDense(t *testing.T) {
	p := NewMaximize()
	p.AddVar("a", 1)
	p.AddVar("b", 1)
	p.AddDense("cap", []float64{1, 2}, LE, 4)
	s, _ := solveBoth(t, p)
	if !approxEq(s.Objective, 4) { // a=4, b=0
		t.Errorf("objective = %g, want 4", s.Objective)
	}
}

func TestAddDenseWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddDense with wrong length: want panic")
		}
	}()
	p := NewMaximize()
	p.AddVar("a", 1)
	p.AddDense("bad", []float64{1, 2}, LE, 4)
}

func TestAddVarAfterConstraint(t *testing.T) {
	// Adding a variable after constraints extends existing rows with zeros.
	p := NewMaximize()
	x := p.AddVar("x", 1)
	p.AddConstraint("c1", []Coef{{x, 1}}, LE, 3)
	y := p.AddVar("y", 2)
	p.AddConstraint("c2", []Coef{{y, 1}}, LE, 5)
	s, _ := solveBoth(t, p)
	if !approxEq(s.Objective, 13) { // x=3, y=5
		t.Errorf("objective = %g, want 13", s.Objective)
	}
}

func TestSlackValues(t *testing.T) {
	p := NewMaximize()
	x := p.AddVar("x", 1)
	p.AddConstraint("tight", []Coef{{x, 1}}, LE, 2)
	p.AddConstraint("loose", []Coef{{x, 1}}, LE, 10)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(s.Slack[0], 0) {
		t.Errorf("tight slack = %g, want 0", s.Slack[0])
	}
	if !approxEq(s.Slack[1], 8) {
		t.Errorf("loose slack = %g, want 8", s.Slack[1])
	}
}

func TestStringRendering(t *testing.T) {
	p := NewMaximize()
	x := p.AddVar("alpha", 1)
	p.AddConstraint("row", []Coef{{x, 2}}, LE, 1)
	out := p.String()
	for _, want := range []string{"maximize", "alpha", "<=", "row"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q in:\n%s", want, out)
		}
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Sense.String mismatch")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("Status.String mismatch")
	}
	if Sense(42).String() == "" || Status(42).String() == "" {
		t.Error("out-of-range String must not be empty")
	}
}

// randomFeasibleLP builds a random bounded LP of the "scheduling" shape used
// throughout this repository: maximize a non-negative objective subject to
// non-negative coefficients and positive capacities, which is always
// feasible (x = 0) and bounded.
func randomFeasibleLP(rng *rand.Rand, nVars, nRows int) *Problem {
	p := NewMaximize()
	for v := 0; v < nVars; v++ {
		p.AddVar("x", 0.1+rng.Float64())
	}
	for r := 0; r < nRows; r++ {
		coefs := make([]Coef, 0, nVars)
		nonzero := false
		for v := 0; v < nVars; v++ {
			c := rng.Float64() * 3
			if rng.Intn(3) == 0 {
				c = 0
			}
			if c != 0 {
				nonzero = true
			}
			coefs = append(coefs, Coef{v, c})
		}
		if !nonzero {
			coefs[rng.Intn(nVars)] = Coef{rng.Intn(nVars), 1 + rng.Float64()}
		}
		p.AddConstraint("r", coefs, LE, 0.5+rng.Float64()*2)
	}
	// Cap every variable so the LP is bounded even if some column is absent
	// from all random rows.
	for v := 0; v < nVars; v++ {
		p.AddConstraint("cap", []Coef{{v, 1}}, LE, 10)
	}
	return p
}

// TestQuickFloatMatchesExact cross-checks the float solver against the exact
// solver on random bounded-feasible LPs.
func TestQuickFloatMatchesExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nVars := 1 + r.Intn(6)
		nRows := 1 + r.Intn(6)
		p := randomFeasibleLP(r, nVars, nRows)
		fs, err := p.Solve()
		if err != nil {
			t.Logf("float error: %v", err)
			return false
		}
		es, err := p.SolveExact()
		if err != nil {
			t.Logf("exact error: %v", err)
			return false
		}
		if fs.Status != Optimal || es.Status != Optimal {
			t.Logf("unexpected status: float=%v exact=%v", fs.Status, es.Status)
			return false
		}
		eobj, _ := es.Objective.Float64()
		if !approxEq(fs.Objective, eobj) {
			t.Logf("objective mismatch: float=%.12g exact=%.12g\n%s", fs.Objective, eobj, p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickSolutionFeasibility checks primal feasibility of float solutions
// on random LPs: every constraint satisfied within tolerance, variables
// non-negative.
func TestQuickSolutionFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomFeasibleLP(r, 1+r.Intn(7), 1+r.Intn(7))
		s, err := p.Solve()
		if err != nil || s.Status != Optimal {
			return false
		}
		for _, x := range s.X {
			if x < -tol {
				return false
			}
		}
		for i, sl := range s.Slack {
			if sl < -1e-6 {
				t.Logf("row %d violated by %g", i, -sl)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestExactRationalValues verifies the exact solver returns true rationals:
// for an LP with integer data, the optimum must be exactly representable.
func TestExactRationalValues(t *testing.T) {
	// max x s.t. 3x <= 1  → x = 1/3 exactly.
	p := NewMaximize()
	x := p.AddVar("x", 1)
	p.AddConstraint("c", []Coef{{x, 3}}, LE, 1)
	s, err := p.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	want := big.NewRat(1, 3)
	if s.Value(x).Cmp(want) != 0 {
		t.Errorf("x = %v, want exactly 1/3", s.Value(x))
	}
	if s.Objective.Cmp(want) != 0 {
		t.Errorf("objective = %v, want exactly 1/3", s.Objective)
	}
}

func TestExactFloatView(t *testing.T) {
	p := NewMaximize()
	x := p.AddVar("x", 2)
	p.AddConstraint("c", []Coef{{x, 1}}, LE, 5)
	s, err := p.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	obj, xs := s.Float()
	if !approxEq(obj, 10) || !approxEq(xs[0], 5) {
		t.Errorf("Float() = (%g, %v), want (10, [5])", obj, xs)
	}
	// Non-optimal solutions yield zero values.
	p2 := NewMaximize()
	y := p2.AddVar("y", 1)
	p2.AddConstraint("lo", []Coef{{y, 1}}, GE, 5)
	p2.AddConstraint("hi", []Coef{{y, 1}}, LE, 3)
	s2, err := p2.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	if obj2, xs2 := s2.Float(); obj2 != 0 || xs2 != nil {
		t.Errorf("Float() on infeasible = (%g, %v), want (0, nil)", obj2, xs2)
	}
}

// TestManyVariables exercises a larger instance for pivoting robustness: a
// transportation-like LP with 40 variables.
func TestManyVariables(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomFeasibleLP(rng, 40, 25)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	es, err := p.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	eobj, _ := es.Objective.Float64()
	if !approxEq(s.Objective, eobj) {
		t.Errorf("float %.12g vs exact %.12g", s.Objective, eobj)
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicate equality rows leave a zero-level artificial basic after
	// phase 1; the solver must handle the redundancy.
	p := NewMaximize()
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	p.AddConstraint("e1", []Coef{{x, 1}, {y, 1}}, EQ, 4)
	p.AddConstraint("e2", []Coef{{x, 2}, {y, 2}}, EQ, 8) // same hyperplane
	p.AddConstraint("cap", []Coef{{x, 1}}, LE, 1)
	s, _ := solveBoth(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v, want Optimal", s.Status)
	}
	if !approxEq(s.Objective, 4) {
		t.Errorf("objective = %g, want 4", s.Objective)
	}
}

func BenchmarkSolveFloatSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randomFeasibleLP(rng, 12, 14) // the size of an 11-worker FIFO LP
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveExactSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randomFeasibleLP(rng, 12, 14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveExact(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveFloatLarge(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	p := randomFeasibleLP(rng, 80, 60)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSetObjAndIsMaximize(t *testing.T) {
	p := NewMaximize()
	if !p.IsMaximize() {
		t.Error("NewMaximize must maximize")
	}
	if NewMinimize().IsMaximize() {
		t.Error("NewMinimize must not maximize")
	}
	x := p.AddVar("x", 0)
	p.AddConstraint("cap", []Coef{{x, 1}}, LE, 7)
	p.SetObj(x, 3)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(s.Objective, 21) {
		t.Errorf("objective = %g, want 21 after SetObj", s.Objective)
	}
	if p.NumVars() != 1 || p.NumRows() != 1 || p.VarName(x) != "x" {
		t.Error("accessor mismatch")
	}
}
