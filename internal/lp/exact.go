package lp

import (
	"fmt"
	"math/big"
)

// ExactSolution is the result of an exact rational solve. The primal values
// are big.Rat numbers; Float returns float64 views for callers that do not
// need exactness.
type ExactSolution struct {
	Status     Status
	Objective  *big.Rat
	X          []*big.Rat
	Iterations int
}

// Value returns the exact value of variable v.
func (s *ExactSolution) Value(v int) *big.Rat { return s.X[v] }

// Float converts the exact primal vector and objective to float64.
func (s *ExactSolution) Float() (obj float64, x []float64) {
	if s.Status != Optimal {
		return 0, nil
	}
	obj, _ = s.Objective.Float64()
	x = make([]float64, len(s.X))
	for i, r := range s.X {
		x[i], _ = r.Float64()
	}
	return obj, x
}

// SolveExact runs the two-phase primal simplex in exact rational arithmetic
// (math/big.Rat) with Bland's rule throughout, which guarantees termination.
// Float64 problem data is converted to rationals exactly (every float64 is a
// rational number), so the result is the true optimum of the stated problem.
// This is slower than Solve by a large factor and intended for verification
// and for small scheduling programs where exact ties matter.
func (p *Problem) SolveExact() (*ExactSolution, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	t := newRatTableau(p)
	status, iters, err := t.run()
	if err != nil {
		return nil, err
	}
	sol := &ExactSolution{Status: status, Iterations: iters}
	if status != Optimal {
		return sol, nil
	}
	x := t.primal()
	obj := new(big.Rat)
	tmp := new(big.Rat)
	for j := range p.obj {
		if p.obj[j] == 0 {
			continue
		}
		tmp.SetFloat64(p.obj[j])
		tmp.Mul(tmp, x[j])
		obj.Add(obj, tmp)
	}
	sol.X = x
	sol.Objective = obj
	return sol, nil
}

// ratTableau mirrors tableau with exact arithmetic. Column layout is
// identical: original variables, slack/surplus columns, artificial columns.
type ratTableau struct {
	m, n     int
	nVars    int
	a        [][]*big.Rat
	b        []*big.Rat
	basis    []int
	cost     []*big.Rat
	cbar     []*big.Rat
	objVal   *big.Rat
	artStart int
	minimize []*big.Rat
	pivots   int
}

func ratFromFloat(f float64) *big.Rat {
	r := new(big.Rat)
	r.SetFloat64(f)
	return r
}

func newRatTableau(p *Problem) *ratTableau {
	m := len(p.rows)
	nVars := len(p.varNames)

	type normRow struct {
		coefs []*big.Rat
		sense Sense
		rhs   *big.Rat
	}
	rows := make([]normRow, m)
	nSlack, nArt := 0, 0
	tmp := new(big.Rat)
	for i, r := range p.rows {
		nr := normRow{coefs: make([]*big.Rat, nVars), sense: r.sense, rhs: ratFromFloat(r.rhs)}
		for j := range nr.coefs {
			nr.coefs[j] = new(big.Rat)
		}
		// Accumulate the raw terms in rational arithmetic: each float64
		// term converts exactly, and the sum of several terms on the same
		// variable (c+w+d in the scheduling LPs) stays exact.
		for _, term := range r.terms {
			tmp.SetFloat64(term.Value)
			nr.coefs[term.Var].Add(nr.coefs[term.Var], tmp)
		}
		if nr.rhs.Sign() < 0 {
			for j := range nr.coefs {
				nr.coefs[j].Neg(nr.coefs[j])
			}
			nr.rhs.Neg(nr.rhs)
			switch nr.sense {
			case LE:
				nr.sense = GE
			case GE:
				nr.sense = LE
			}
		}
		switch nr.sense {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
		rows[i] = nr
	}

	n := nVars + nSlack + nArt
	t := &ratTableau{
		m: m, n: n, nVars: nVars,
		a:        make([][]*big.Rat, m),
		b:        make([]*big.Rat, m),
		basis:    make([]int, m),
		artStart: nVars + nSlack,
		objVal:   new(big.Rat),
	}
	slackCol := nVars
	artCol := t.artStart
	zero := func() *big.Rat { return new(big.Rat) }
	for i, nr := range rows {
		t.a[i] = make([]*big.Rat, n)
		for j := 0; j < n; j++ {
			if j < nVars {
				t.a[i][j] = nr.coefs[j]
			} else {
				t.a[i][j] = zero()
			}
		}
		t.b[i] = nr.rhs
		switch nr.sense {
		case LE:
			t.a[i][slackCol].SetInt64(1)
			t.basis[i] = slackCol
			slackCol++
		case GE:
			t.a[i][slackCol].SetInt64(-1)
			slackCol++
			t.a[i][artCol].SetInt64(1)
			t.basis[i] = artCol
			artCol++
		case EQ:
			t.a[i][artCol].SetInt64(1)
			t.basis[i] = artCol
			artCol++
		}
	}

	t.minimize = make([]*big.Rat, n)
	for j := 0; j < n; j++ {
		t.minimize[j] = zero()
	}
	for j := 0; j < nVars; j++ {
		t.minimize[j].SetFloat64(p.obj[j])
		if p.maximize {
			t.minimize[j].Neg(t.minimize[j])
		}
	}
	return t
}

func (t *ratTableau) run() (Status, int, error) {
	if t.artStart < t.n {
		phase1 := make([]*big.Rat, t.n)
		for j := range phase1 {
			phase1[j] = new(big.Rat)
			if j >= t.artStart {
				phase1[j].SetInt64(1)
			}
		}
		t.loadCost(phase1)
		st, err := t.iterate(false)
		if err != nil {
			return 0, t.pivots, err
		}
		if st == Unbounded {
			return 0, t.pivots, fmt.Errorf("lp: exact phase-1 objective unbounded (internal error)")
		}
		if t.objVal.Sign() > 0 {
			return Infeasible, t.pivots, nil
		}
		if err := t.evictArtificials(); err != nil {
			return 0, t.pivots, err
		}
	}
	t.loadCost(t.minimize)
	st, err := t.iterate(true)
	if err != nil {
		return 0, t.pivots, err
	}
	return st, t.pivots, nil
}

func (t *ratTableau) loadCost(cost []*big.Rat) {
	t.cost = cost
	t.cbar = make([]*big.Rat, t.n)
	for j := 0; j < t.n; j++ {
		t.cbar[j] = new(big.Rat).Set(cost[j])
	}
	t.objVal.SetInt64(0)
	tmp := new(big.Rat)
	for i := 0; i < t.m; i++ {
		cb := cost[t.basis[i]]
		if cb.Sign() == 0 {
			continue
		}
		tmp.Mul(cb, t.b[i])
		t.objVal.Add(t.objVal, tmp)
		for j := 0; j < t.n; j++ {
			if t.a[i][j].Sign() == 0 {
				continue
			}
			tmp.Mul(cb, t.a[i][j])
			t.cbar[j].Sub(t.cbar[j], tmp)
		}
	}
}

// iterate uses Bland's rule (smallest eligible index for both the entering
// and the leaving variable), which cannot cycle, so exact termination is
// guaranteed.
func (t *ratTableau) iterate(excludeArtificials bool) (Status, error) {
	limit := t.n
	if excludeArtificials {
		limit = t.artStart
	}
	ratio := new(big.Rat)
	for {
		if t.pivots > maxPivots {
			return 0, fmt.Errorf("lp: exact pivot limit exceeded (%d)", maxPivots)
		}
		enter := -1
		for j := 0; j < limit; j++ {
			if t.cbar[j].Sign() < 0 && !t.isBasic(j) {
				enter = j
				break
			}
		}
		if enter < 0 {
			return Optimal, nil
		}
		leave := -1
		minRatio := new(big.Rat)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter].Sign() <= 0 {
				continue
			}
			ratio.Quo(t.b[i], t.a[i][enter])
			if leave < 0 || ratio.Cmp(minRatio) < 0 ||
				(ratio.Cmp(minRatio) == 0 && t.basis[i] < t.basis[leave]) {
				leave = i
				minRatio.Set(ratio)
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		t.pivot(leave, enter)
	}
}

func (t *ratTableau) isBasic(col int) bool {
	for i := 0; i < t.m; i++ {
		if t.basis[i] == col {
			return true
		}
	}
	return false
}

func (t *ratTableau) pivot(r, c int) {
	t.pivots++
	inv := new(big.Rat).Inv(t.a[r][c])
	for j := 0; j < t.n; j++ {
		if t.a[r][j].Sign() != 0 {
			t.a[r][j].Mul(t.a[r][j], inv)
		}
	}
	t.b[r].Mul(t.b[r], inv)
	t.a[r][c].SetInt64(1)
	tmp := new(big.Rat)
	for i := 0; i < t.m; i++ {
		if i == r {
			continue
		}
		f := t.a[i][c]
		if f.Sign() == 0 {
			continue
		}
		fcopy := new(big.Rat).Set(f)
		for j := 0; j < t.n; j++ {
			if t.a[r][j].Sign() == 0 {
				continue
			}
			tmp.Mul(fcopy, t.a[r][j])
			t.a[i][j].Sub(t.a[i][j], tmp)
		}
		tmp.Mul(fcopy, t.b[r])
		t.b[i].Sub(t.b[i], tmp)
		t.a[i][c].SetInt64(0)
	}
	if f := t.cbar[c]; f.Sign() != 0 {
		fcopy := new(big.Rat).Set(f)
		for j := 0; j < t.n; j++ {
			if t.a[r][j].Sign() == 0 {
				continue
			}
			tmp.Mul(fcopy, t.a[r][j])
			t.cbar[j].Sub(t.cbar[j], tmp)
		}
		t.cbar[c].SetInt64(0)
	}
	t.basis[r] = c
	t.objVal.SetInt64(0)
	for i := 0; i < t.m; i++ {
		if cb := t.cost[t.basis[i]]; cb.Sign() != 0 {
			tmp.Mul(cb, t.b[i])
			t.objVal.Add(t.objVal, tmp)
		}
	}
}

func (t *ratTableau) evictArtificials() error {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		if t.b[i].Sign() > 0 {
			return fmt.Errorf("lp: exact artificial variable basic at positive level after feasible phase 1")
		}
		done := false
		for j := 0; j < t.artStart; j++ {
			if t.a[i][j].Sign() != 0 && !t.isBasic(j) {
				t.pivot(i, j)
				done = true
				break
			}
		}
		if !done {
			t.b[i].SetInt64(0)
		}
	}
	return nil
}

func (t *ratTableau) primal() []*big.Rat {
	x := make([]*big.Rat, t.nVars)
	for j := range x {
		x[j] = new(big.Rat)
	}
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.nVars {
			x[t.basis[i]].Set(t.b[i])
		}
	}
	return x
}
