package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestOnlyGEConstraints forces a full phase-1 with artificials on every
// row.
func TestOnlyGEConstraints(t *testing.T) {
	// min x + y s.t. x + 2y >= 4, 3x + y >= 6 → optimum at intersection
	// (8/5, 6/5), objective 14/5.
	p := NewMinimize()
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	p.AddConstraint("r1", []Coef{{x, 1}, {y, 2}}, GE, 4)
	p.AddConstraint("r2", []Coef{{x, 3}, {y, 1}}, GE, 6)
	s, _ := solveBoth(t, p)
	if !approxEq(s.Objective, 14.0/5) {
		t.Errorf("objective = %g, want 2.8", s.Objective)
	}
}

// TestMixedSenseSystem combines all three senses in one program.
func TestMixedSenseSystem(t *testing.T) {
	// max 2x + y s.t. x + y = 10, x - y <= 4, x >= 2 → x = 7, y = 3 → 17.
	p := NewMaximize()
	x := p.AddVar("x", 2)
	y := p.AddVar("y", 1)
	p.AddConstraint("sum", []Coef{{x, 1}, {y, 1}}, EQ, 10)
	p.AddConstraint("gap", []Coef{{x, 1}, {y, -1}}, LE, 4)
	p.AddConstraint("floor", []Coef{{x, 1}}, GE, 2)
	s, _ := solveBoth(t, p)
	if !approxEq(s.Objective, 17) {
		t.Errorf("objective = %g, want 17", s.Objective)
	}
	if !approxEq(s.Value(x), 7) || !approxEq(s.Value(y), 3) {
		t.Errorf("solution (%g, %g), want (7, 3)", s.Value(x), s.Value(y))
	}
}

// TestHighlyDegenerateTies stresses Bland fallback: many identical rows
// create massive degeneracy.
func TestHighlyDegenerateTies(t *testing.T) {
	p := NewMaximize()
	n := 6
	vars := make([]int, n)
	for i := range vars {
		vars[i] = p.AddVar("x", 1)
	}
	// 20 copies of the same budget row plus per-variable caps at the same
	// level: every vertex is massively degenerate.
	for r := 0; r < 20; r++ {
		coefs := make([]Coef, n)
		for i := range coefs {
			coefs[i] = Coef{vars[i], 1}
		}
		p.AddConstraint("budget", coefs, LE, 3)
	}
	for i := range vars {
		p.AddConstraint("cap", []Coef{{vars[i], 1}}, LE, 0.5)
	}
	s, _ := solveBoth(t, p)
	if !approxEq(s.Objective, 3) {
		t.Errorf("objective = %g, want 3", s.Objective)
	}
}

// TestBadlyScaledCoefficients checks the float solver survives coefficient
// ranges far beyond the scheduling programs' (and still matches exact).
func TestBadlyScaledCoefficients(t *testing.T) {
	p := NewMaximize()
	x := p.AddVar("x", 1e-6)
	y := p.AddVar("y", 1e6)
	p.AddConstraint("r1", []Coef{{x, 1e-4}, {y, 1e4}}, LE, 1)
	p.AddConstraint("r2", []Coef{{x, 1}, {y, 1}}, LE, 1000)
	fs, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	es, err := p.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	eobj, _ := es.Objective.Float64()
	if math.Abs(fs.Objective-eobj) > 1e-6*(1+math.Abs(eobj)) {
		t.Errorf("float %g vs exact %g", fs.Objective, eobj)
	}
}

// TestFIFOShapedProgram solves a program with the exact structure of the
// paper's equation (2) and checks the idle-slack interpretation: summing
// the slack of a worker row equals the idle the timeline would derive.
func TestFIFOShapedProgram(t *testing.T) {
	// 3 workers, c = (1,2,3)/10, w = (5,4,6)/10, d = c/2.
	c := []float64{0.1, 0.2, 0.3}
	w := []float64{0.5, 0.4, 0.6}
	d := []float64{0.05, 0.1, 0.15}
	p := NewMaximize()
	alpha := make([]int, 3)
	for i := range alpha {
		alpha[i] = p.AddVar("alpha", 1)
	}
	for i := 0; i < 3; i++ {
		var coefs []Coef
		for j := 0; j <= i; j++ {
			coefs = append(coefs, Coef{alpha[j], c[j]})
		}
		coefs = append(coefs, Coef{alpha[i], w[i]})
		for j := i; j < 3; j++ {
			coefs = append(coefs, Coef{alpha[j], d[j]})
		}
		p.AddConstraint("worker", coefs, LE, 1)
	}
	var port []Coef
	for j := 0; j < 3; j++ {
		port = append(port, Coef{alpha[j], c[j] + d[j]})
	}
	p.AddConstraint("one_port", port, LE, 1)
	s, _ := solveBoth(t, p)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	// All loads positive on this balanced instance.
	for i, v := range s.X {
		if v <= 0 {
			t.Errorf("alpha[%d] = %g, want > 0", i, v)
		}
	}
	// At most one worker row slack (Lemma 1 shape; the port row may also
	// be slack).
	slackRows := 0
	for i := 0; i < 3; i++ {
		if s.Slack[i] > 1e-7 {
			slackRows++
		}
	}
	if slackRows > 1 {
		t.Errorf("%d worker rows slack; Lemma 1 allows 1", slackRows)
	}
}

// TestRandomMinimizationAgainstExact broadens the cross-check to
// minimization problems with GE rows (always feasible by construction:
// x = large works; bounded below by x >= 0 ... the GE rows keep it away
// from zero).
func TestRandomMinimizationAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(4)
		p := NewMinimize()
		for v := 0; v < n; v++ {
			p.AddVar("x", 0.1+rng.Float64())
		}
		for r := 0; r < m; r++ {
			coefs := make([]Coef, 0, n)
			// Guarantee at least one strictly positive coefficient so the
			// row is satisfiable with x >= 0.
			forced := rng.Intn(n)
			for v := 0; v < n; v++ {
				val := rng.Float64()
				if v == forced && val < 0.1 {
					val = 0.1 + val
				}
				coefs = append(coefs, Coef{v, val})
			}
			p.AddConstraint("r", coefs, GE, rng.Float64()*2)
		}
		fs, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		es, err := p.SolveExact()
		if err != nil {
			t.Fatal(err)
		}
		if fs.Status != es.Status {
			t.Fatalf("trial %d: status %v vs %v\n%s", trial, fs.Status, es.Status, p)
		}
		if fs.Status == Optimal {
			eobj, _ := es.Objective.Float64()
			if !approxEq(fs.Objective, eobj) {
				t.Errorf("trial %d: float %g vs exact %g", trial, fs.Objective, eobj)
			}
		}
	}
}

// TestIterationsReported sanity-checks the pivot counter.
func TestIterationsReported(t *testing.T) {
	p := NewMaximize()
	x := p.AddVar("x", 1)
	p.AddConstraint("c", []Coef{{x, 1}}, LE, 5)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Iterations < 1 {
		t.Errorf("iterations = %d, want >= 1", s.Iterations)
	}
	es, err := p.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	if es.Iterations < 1 {
		t.Errorf("exact iterations = %d, want >= 1", es.Iterations)
	}
}
