// Package numeric is the single home of the repository's floating-point
// tolerances. Every package that compares float64 quantities derived from
// the scheduling linear programs — the simplex, the tight-system evaluator,
// the schedule feasibility checker, the platform shape detectors — pulls
// its constant from here, so the tolerances stay mutually consistent and
// the rationale lives in one place.
//
// The scheduling problems are tiny and well scaled: platform costs are
// O(0.01..1), right-hand sides are exactly 1, loads come out O(1..10).
// Absolute and relative tolerances are therefore interchangeable up to a
// small factor, and the constants below are chosen on a simple ladder:
//
//	LoadEps (1e-12)  «  LPEps/CertTol (1e-9)  «  CheckTol (1e-7)
//
// i.e. load pruning is stricter than solver optimality tests, which are in
// turn stricter than the independent feasibility checker, so a solution
// accepted by a solver is never rejected downstream by a tighter check.
package numeric

const (
	// LPEps is the float64 simplex tolerance: reduced costs above -LPEps
	// count as optimal, pivot candidates below LPEps count as zero. The LPs
	// solved here have O(10) rows with coefficients of comparable magnitude,
	// so a fixed 1e-9 keeps ~6 digits of headroom above the ~1e-15 rounding
	// noise of a handful of eliminations.
	LPEps = 1e-9

	// CertTol bounds the negativity accepted in the tight-system evaluator's
	// KKT certificate: primal loads, port-constraint slack and dual
	// multipliers may undershoot zero by at most CertTol before the
	// evaluator refuses the certificate and falls back to the simplex.
	// Matching LPEps keeps the direct and simplex backends agreeing to well
	// within the 1e-9 the property tests demand.
	CertTol = 1e-9

	// LoadEps is the threshold below which an LP load is treated as exactly
	// zero and its worker pruned from the schedule (resource selection,
	// Proposition 1). It sits far below CertTol/LPEps so pruning never
	// disagrees with the solvers about which loads are "really" positive.
	LoadEps = 1e-12

	// CheckTol is the relative tolerance of the independent schedule
	// feasibility checker. It is deliberately the loosest constant: the
	// checker re-derives event dates from float64 LP output, accumulating a
	// few more roundings than the solvers themselves, and a verifier must
	// accept everything an (honest) solver emits.
	CheckTol = 1e-7

	// RatioTol is the relative tolerance used by the platform shape
	// detectors (common ratio z = d/c, bus detection). Platform parameters
	// typically come from measured or generated float data, where 1e-9
	// separates "equal by construction" from "coincidentally close".
	RatioTol = 1e-9
)
