package vcluster

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/trace"
)

func twoWorkerConfig() Config {
	return Config{
		Workers: []WorkerSpec{
			{Name: "w1", Bandwidth: 100, FlopRate: 1000},
			{Name: "w2", Bandwidth: 50, FlopRate: 500},
		},
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"ok", twoWorkerConfig(), true},
		{"empty", Config{}, false},
		{"zero bw", Config{Workers: []WorkerSpec{{Bandwidth: 0, FlopRate: 1}}}, false},
		{"zero flops", Config{Workers: []WorkerSpec{{Bandwidth: 1, FlopRate: 0}}}, false},
		{"nan bw", Config{Workers: []WorkerSpec{{Bandwidth: math.NaN(), FlopRate: 1}}}, false},
		{"neg latency", Config{Workers: []WorkerSpec{{Bandwidth: 1, FlopRate: 1}}, Latency: -1}, false},
		{"neg jitter", Config{Workers: []WorkerSpec{{Bandwidth: 1, FlopRate: 1}}, Jitter: -0.1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if (err == nil) != tc.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestRendezvousTiming(t *testing.T) {
	// Master sends 100 bytes to w1 (bw 100 → 1s), w1 computes 1000 flops
	// (1s), sends back 50 bytes (0.5s). Expected makespan 2.5.
	res, err := Run(twoWorkerConfig(), func(p *Proc) {
		switch p.Rank() {
		case MasterRank:
			p.Send(1, 0, 100)
			p.Recv(1, 1)
		case 1:
			p.Recv(0, 0)
			p.Compute(1000)
			p.Send(0, 1, 50)
		case 2:
			// idle worker
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-2.5) > 1e-12 {
		t.Errorf("makespan = %g, want 2.5", res.Makespan)
	}
	if math.Abs(res.Clocks[0]-2.5) > 1e-12 || math.Abs(res.Clocks[1]-2.5) > 1e-12 {
		t.Errorf("clocks = %v", res.Clocks)
	}
	if res.Clocks[2] != 0 {
		t.Errorf("idle worker clock = %g, want 0", res.Clocks[2])
	}
}

func TestReceiverLaterThanSender(t *testing.T) {
	// The transfer starts when the later party is ready.
	res, err := Run(twoWorkerConfig(), func(p *Proc) {
		switch p.Rank() {
		case MasterRank:
			p.Send(1, 0, 100) // ready at 0
		case 1:
			p.Compute(2000) // busy until 2s
			p.Recv(0, 0)    // transfer [2, 3]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-3) > 1e-12 {
		t.Errorf("makespan = %g, want 3", res.Makespan)
	}
	// The master's clock also advances to the transfer end (blocking send).
	if math.Abs(res.Clocks[0]-3) > 1e-12 {
		t.Errorf("master clock = %g, want 3", res.Clocks[0])
	}
}

func TestOnePortSerialization(t *testing.T) {
	// The master's two sends serialize: second transfer cannot start
	// before the first ends even though workers are both ready at 0.
	res, err := Run(twoWorkerConfig(), func(p *Proc) {
		switch p.Rank() {
		case MasterRank:
			p.Send(1, 0, 100) // [0,1] at bw 100
			p.Send(2, 0, 100) // [1,3] at bw 50
		default:
			p.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Clocks[2]-3) > 1e-12 {
		t.Errorf("worker 2 clock = %g, want 3 (serialized sends)", res.Clocks[2])
	}
	// Master transfer intervals must be disjoint in the trace.
	var intervals [][2]float64
	for _, e := range res.Trace.Events() {
		if e.Proc == MasterRank {
			intervals = append(intervals, [2]float64{e.Start, e.End})
		}
	}
	if len(intervals) != 2 {
		t.Fatalf("master has %d events, want 2", len(intervals))
	}
	for i := 0; i < len(intervals); i++ {
		for j := i + 1; j < len(intervals); j++ {
			a, b := intervals[i], intervals[j]
			if a[0] < b[1]-1e-12 && b[0] < a[1]-1e-12 {
				t.Errorf("master port overlap: %v and %v", a, b)
			}
		}
	}
}

func TestTagMatching(t *testing.T) {
	// Messages with different tags match their own receives, in order.
	res, err := Run(twoWorkerConfig(), func(p *Proc) {
		switch p.Rank() {
		case MasterRank:
			p.Send(1, 7, 100)
			p.Send(1, 8, 200)
		case 1:
			if got := p.Recv(0, 7); got != 100 {
				t.Errorf("tag 7 got %g bytes", got)
			}
			if got := p.Recv(0, 8); got != 200 {
				t.Errorf("tag 8 got %g bytes", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-3) > 1e-12 { // 1s + 2s on bw 100
		t.Errorf("makespan = %g, want 3", res.Makespan)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := Run(Config{
			Workers: []WorkerSpec{
				{Bandwidth: 100, FlopRate: 1000},
				{Bandwidth: 70, FlopRate: 700},
				{Bandwidth: 30, FlopRate: 300},
			},
			Latency: 0.01,
			Jitter:  0.2,
			Seed:    99,
		}, func(p *Proc) {
			if p.IsMaster() {
				for w := 1; w <= p.Workers(); w++ {
					p.Send(w, 0, float64(100*w))
				}
				for w := 1; w <= p.Workers(); w++ {
					p.Recv(w, 1)
				}
			} else {
				p.Recv(0, 0)
				p.Compute(500)
				p.Send(0, 1, 50)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Errorf("non-deterministic makespan: %g vs %g", a.Makespan, b.Makespan)
	}
	for i := range a.Clocks {
		if a.Clocks[i] != b.Clocks[i] {
			t.Errorf("clock %d differs: %g vs %g", i, a.Clocks[i], b.Clocks[i])
		}
	}
}

func TestJitterOnlyDelays(t *testing.T) {
	base, err := Run(twoWorkerConfig(), func(p *Proc) {
		switch p.Rank() {
		case MasterRank:
			p.Send(1, 0, 100)
		case 1:
			p.Recv(0, 0)
			p.Compute(1000)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := twoWorkerConfig()
	cfg.Jitter = 0.3
	cfg.Seed = 5
	noisy, err := Run(cfg, func(p *Proc) {
		switch p.Rank() {
		case MasterRank:
			p.Send(1, 0, 100)
		case 1:
			p.Recv(0, 0)
			p.Compute(1000)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Makespan < base.Makespan {
		t.Errorf("jitter sped the run up: %g < %g", noisy.Makespan, base.Makespan)
	}
	if noisy.Makespan > base.Makespan*(1+2*0.3)+1e-9 {
		t.Errorf("jitter beyond bound: %g", noisy.Makespan)
	}
}

func TestLatencyAffine(t *testing.T) {
	cfg := twoWorkerConfig()
	cfg.Latency = 0.5
	res, err := Run(cfg, func(p *Proc) {
		switch p.Rank() {
		case MasterRank:
			p.Send(1, 0, 100)
		case 1:
			p.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-1.5) > 1e-12 {
		t.Errorf("makespan = %g, want 1.5 (latency + bytes/bw)", res.Makespan)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Both sides receive first: classic deadlock.
	_, err := Run(twoWorkerConfig(), func(p *Proc) {
		switch p.Rank() {
		case MasterRank:
			p.Recv(1, 0)
			p.Send(1, 0, 1)
		case 1:
			p.Recv(0, 0)
			p.Send(0, 0, 1)
		}
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("want ErrDeadlock, got %v", err)
	}
}

func TestDeadlockUnmatchedSend(t *testing.T) {
	// A send with no receiver ever: the sender blocks forever while other
	// processes finish — deadlock must be detected when it is the last one.
	_, err := Run(twoWorkerConfig(), func(p *Proc) {
		if p.Rank() == MasterRank {
			p.Send(1, 42, 10) // worker never posts tag 42
		}
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("want ErrDeadlock, got %v", err)
	}
}

func TestDeadlockMismatchedTag(t *testing.T) {
	_, err := Run(twoWorkerConfig(), func(p *Proc) {
		switch p.Rank() {
		case MasterRank:
			p.Send(1, 1, 10)
		case 1:
			p.Recv(0, 2) // wrong tag
		}
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("want ErrDeadlock, got %v", err)
	}
}

func TestProgramPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "boom") {
			t.Errorf("want propagated panic, got %v", r)
		}
	}()
	_, _ = Run(twoWorkerConfig(), func(p *Proc) {
		if p.Rank() == 1 {
			panic("boom")
		}
	})
}

func TestAPIGuards(t *testing.T) {
	for name, prog := range map[string]func(p *Proc){
		"self send":        func(p *Proc) { p.Send(p.Rank(), 0, 1) },
		"negative bytes":   func(p *Proc) { p.Send((p.Rank()+1)%3, 0, -1) },
		"master compute":   func(p *Proc) { p.Compute(10) },
		"negative flops":   func(p *Proc) { p.Compute(-1) },
		"negative seconds": func(p *Proc) { p.ComputeSeconds(-1) },
		"master seconds":   func(p *Proc) { p.ComputeSeconds(1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			_, _ = Run(twoWorkerConfig(), func(p *Proc) {
				if p.IsMaster() {
					prog(p)
				} else if strings.HasPrefix(name, "negative flops") || strings.HasPrefix(name, "negative seconds") {
					prog(p)
				}
			})
		})
	}
}

func TestComputeSecondsAndAdvanceTo(t *testing.T) {
	res, err := Run(twoWorkerConfig(), func(p *Proc) {
		if p.Rank() == 1 {
			p.ComputeSeconds(1.25)
			p.AdvanceTo(5)
			p.AdvanceTo(2) // no-op
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clocks[1] != 5 {
		t.Errorf("clock = %g, want 5", res.Clocks[1])
	}
}

func TestTraceEventsRecorded(t *testing.T) {
	res, err := Run(twoWorkerConfig(), func(p *Proc) {
		switch p.Rank() {
		case MasterRank:
			p.Send(1, 0, 100)
			p.Recv(1, 1)
		case 1:
			p.Recv(0, 0)
			p.Compute(1000)
			p.Send(0, 1, 50)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[trace.Kind]int{}
	for _, e := range res.Trace.Events() {
		kinds[e.Kind]++
	}
	// 2 transfers × 2 endpoints + 1 compute = 5 events.
	if kinds[trace.Send] != 2 || kinds[trace.Recv] != 2 || kinds[trace.Compute] != 1 {
		t.Errorf("event counts = %v", kinds)
	}
}

func BenchmarkPingPong(b *testing.B) {
	cfg := twoWorkerConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := Run(cfg, func(p *Proc) {
			switch p.Rank() {
			case MasterRank:
				for k := 0; k < 10; k++ {
					p.Send(1, 0, 100)
					p.Recv(1, 1)
				}
			case 1:
				for k := 0; k < 10; k++ {
					p.Recv(0, 0)
					p.Send(0, 1, 10)
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestWorkerToWorkerTransferRejected(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "worker-to-worker") {
			t.Errorf("want star-topology panic, got %v", r)
		}
	}()
	_, _ = Run(twoWorkerConfig(), func(p *Proc) {
		switch p.Rank() {
		case 1:
			p.Send(2, 0, 10)
		case 2:
			p.Recv(1, 0)
		}
	})
}

func TestSameKeyMessagesMatchInOrder(t *testing.T) {
	// Two messages on the same (src, dst, tag) must match FIFO: the first
	// send pairs with the first recv.
	res, err := Run(twoWorkerConfig(), func(p *Proc) {
		switch p.Rank() {
		case MasterRank:
			p.Send(1, 0, 100) // 1s on bw 100
			p.Send(1, 0, 200) // 2s
		case 1:
			first := p.Recv(0, 0)
			second := p.Recv(0, 0)
			if first != 100 || second != 200 {
				t.Errorf("out-of-order match: %g then %g", first, second)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-3) > 1e-12 {
		t.Errorf("makespan = %g, want 3", res.Makespan)
	}
}

func TestAdvanceToDelaysRendezvous(t *testing.T) {
	// A worker that advances its clock before receiving delays the
	// transfer start accordingly.
	res, err := Run(twoWorkerConfig(), func(p *Proc) {
		switch p.Rank() {
		case MasterRank:
			p.Send(1, 0, 100)
		case 1:
			p.AdvanceTo(4)
			p.Recv(0, 0) // starts at 4, ends at 5
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-5) > 1e-12 {
		t.Errorf("makespan = %g, want 5", res.Makespan)
	}
}

func TestManyWorkersStress(t *testing.T) {
	// 32 workers, several rounds of traffic: exercises queue bookkeeping
	// and the blocked-count accounting under real contention.
	const workers = 32
	cfg := Config{Workers: make([]WorkerSpec, workers)}
	for i := range cfg.Workers {
		cfg.Workers[i] = WorkerSpec{Bandwidth: 100 * float64(i+1), FlopRate: 1000}
	}
	// Round-interleaved protocol: the master must collect round r before
	// distributing round r+1. Deferring every receive past every send
	// would genuinely deadlock under rendezvous semantics (workers block
	// sending results and never post the next receive) — the detector
	// correctly reports that variant.
	res, err := Run(cfg, func(p *Proc) {
		if p.IsMaster() {
			for round := 0; round < 3; round++ {
				for w := 1; w <= workers; w++ {
					p.Send(w, round, 50)
				}
				for w := 1; w <= workers; w++ {
					p.Recv(w, 100+round)
				}
			}
			return
		}
		for round := 0; round < 3; round++ {
			p.Recv(0, round)
			p.Compute(100)
			p.Send(0, 100+round, 25)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
	// 3 rounds × 32 workers × 2 transfers × 2 endpoints + 96 computes.
	if got := res.Trace.Len(); got != 3*32*2*2+96 {
		t.Errorf("trace has %d events, want %d", got, 3*32*2*2+96)
	}
}
