// Package vcluster is a virtual-time message-passing cluster: the
// substitute for the paper's MPI testbed (the gdsdmi cluster at LIP run
// under MPICH). Each process of a star platform — one master, p workers —
// runs as a goroutine executing an ordinary sequential program against an
// MPI-like blocking point-to-point API (Send, Recv, Compute). Time is
// virtual: every process carries its own clock, and a transfer between two
// processes is a rendezvous that starts when both sides are ready,
//
//	start = max(sender ready, receiver ready)
//	end   = start + latency + bytes/bandwidth,
//
// after which both clocks advance to end — exactly the behaviour the paper
// describes for its trace bars ("starts when the receiver is ready …
// ends when it has received all data").
//
// The one-port model is enforced structurally, as in a single-threaded MPI
// master: the master process is sequential, so it can be engaged in only
// one communication at a time, and each communication occupies its clock
// until completion.
//
// Determinism: matching is per (source, destination, tag) in program order,
// and optional noise is derived from a counter-based hash of the endpoints
// rather than from a shared generator, so results are bit-for-bit
// reproducible regardless of goroutine interleaving.
package vcluster

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/trace"
)

// MasterRank is the rank of the master process.
const MasterRank = 0

// WorkerSpec describes one worker of the star.
type WorkerSpec struct {
	// Name labels the worker in traces.
	Name string
	// Bandwidth of the master↔worker link in bytes per second.
	Bandwidth float64
	// FlopRate of the worker in floating-point operations per second.
	FlopRate float64
}

// Config describes the virtual cluster.
type Config struct {
	// Workers are the p workers; ranks 1..p. Rank 0 is the master.
	Workers []WorkerSpec
	// Latency is a fixed per-message start-up time in seconds (the affine
	// term; zero reproduces the paper's pure linear model).
	Latency float64
	// Jitter is the amplitude of multiplicative noise on transfer and
	// computation durations: each duration is scaled by a deterministic
	// pseudo-random factor in [1, 1+2·Jitter] (delays only, like real
	// interference). Zero disables noise.
	Jitter float64
	// Seed selects the deterministic noise stream.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Workers) == 0 {
		return errors.New("vcluster: no workers")
	}
	for i, w := range c.Workers {
		if !(w.Bandwidth > 0) || math.IsInf(w.Bandwidth, 0) {
			return fmt.Errorf("vcluster: worker %d bandwidth %g must be positive and finite", i, w.Bandwidth)
		}
		if !(w.FlopRate > 0) || math.IsInf(w.FlopRate, 0) {
			return fmt.Errorf("vcluster: worker %d flop rate %g must be positive and finite", i, w.FlopRate)
		}
	}
	if c.Latency < 0 || math.IsNaN(c.Latency) {
		return fmt.Errorf("vcluster: latency %g must be >= 0", c.Latency)
	}
	if c.Jitter < 0 || math.IsNaN(c.Jitter) {
		return fmt.Errorf("vcluster: jitter %g must be >= 0", c.Jitter)
	}
	return nil
}

// ErrDeadlock is returned by Run when every live process is blocked on a
// communication that can never match.
var ErrDeadlock = errors.New("vcluster: deadlock: all live processes blocked on unmatched communications")

// deadlockPanic unwinds a blocked process goroutine when deadlock is
// detected.
type deadlockPanic struct{}

// Result summarises a run.
type Result struct {
	// Makespan is the largest process clock at termination.
	Makespan float64
	// Clocks holds every process's final clock, indexed by rank.
	Clocks []float64
	// Trace holds all recorded events.
	Trace *trace.Trace
}

type qkey struct {
	src, dst, tag int
}

// pendingSend is a sender parked in a rendezvous queue.
type pendingSend struct {
	bytes   float64
	readyAt float64
	endCh   chan float64 // receives the transfer end time
	seq     uint64
}

type cluster struct {
	cfg   Config
	trace *trace.Trace

	mu          sync.Mutex
	cond        *sync.Cond
	queues      map[qkey][]*pendingSend
	seqs        map[qkey]uint64
	waitingRecv map[qkey]int // parked receivers per key
	live        int          // processes still running
	blocked     int          // processes blocked in Send or Recv
	dead        bool
}

// Proc is the handle a process program uses to interact with the cluster.
// Each process runs in its own goroutine; a Proc must not be shared between
// goroutines.
type Proc struct {
	rank  int
	clock float64
	cl    *cluster
	nComp uint64 // per-proc computation counter for deterministic noise
}

// Rank returns the process rank (0 = master).
func (p *Proc) Rank() int { return p.rank }

// IsMaster reports whether this process is the master.
func (p *Proc) IsMaster() bool { return p.rank == MasterRank }

// Time returns the process's current virtual clock.
func (p *Proc) Time() float64 { return p.clock }

// Workers returns the number of workers in the cluster.
func (p *Proc) Workers() int { return len(p.cl.cfg.Workers) }

// AdvanceTo moves the clock forward to at least t (no-op if already past).
func (p *Proc) AdvanceTo(t float64) {
	if t > p.clock {
		p.clock = t
	}
}

// checkStarEndpoints panics when a transfer does not involve the master.
// The platform is a star; worker-to-worker messages are a programming
// error. It MUST be called before acquiring the engine mutex: panicking
// with the lock held would hang every other process.
func checkStarEndpoints(a, b int) {
	if a != MasterRank && b != MasterRank {
		panic(fmt.Sprintf("vcluster: transfer between workers %d and %d: the star platform has no worker-to-worker links", a, b))
	}
}

// linkBandwidth returns the bandwidth of the master↔worker link used by a
// transfer between ranks a and b (one of them is the master; enforced by
// checkStarEndpoints at the API boundary).
func (c *cluster) linkBandwidth(a, b int) float64 {
	w := a
	if a == MasterRank {
		w = b
	}
	return c.cfg.Workers[w-1].Bandwidth
}

// jitterFactor derives a deterministic multiplicative factor in
// [1, 1+2·Jitter] from the endpoint identities and a sequence number, using
// a splitmix64-style hash so the factor does not depend on goroutine
// scheduling.
func (c *cluster) jitterFactor(a, b, tag int, seq uint64) float64 {
	if c.cfg.Jitter == 0 {
		return 1
	}
	x := uint64(c.cfg.Seed)
	for _, v := range []uint64{uint64(a), uint64(b), uint64(tag), seq} {
		x ^= v + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	u := float64(x>>11) / float64(1<<53) // uniform in [0,1)
	return 1 + 2*c.cfg.Jitter*u
}

// Send transmits bytes to the process dst with the given tag and blocks
// until the transfer completes (rendezvous semantics, like a long MPI_Send
// over TCP). On return the sender's clock is the transfer end time.
func (p *Proc) Send(dst, tag int, bytes float64) {
	if bytes < 0 {
		panic(fmt.Sprintf("vcluster: negative message size %g", bytes))
	}
	if dst == p.rank {
		panic("vcluster: self-send")
	}
	checkStarEndpoints(p.rank, dst)
	c := p.cl
	c.mu.Lock()
	key := qkey{p.rank, dst, tag}
	seq := c.seqs[key]
	c.seqs[key] = seq + 1
	ps := &pendingSend{bytes: bytes, readyAt: p.clock, endCh: make(chan float64, 1), seq: seq}
	c.queues[key] = append(c.queues[key], ps)
	c.cond.Broadcast()
	// The sender counts as blocked from enqueue until the *receiver pops*
	// the message (the pop decrements on the sender's behalf, atomically
	// under mu). Decrementing here after waking would leave a window where
	// a satisfied sender still looks blocked and the deadlock detector
	// could fire spuriously.
	c.blocked++
	c.maybeDeadlock()
	c.mu.Unlock()

	end, ok := <-ps.endCh
	if !ok {
		panic(deadlockPanic{})
	}
	p.clock = end
	c.trace.Add(trace.Event{Proc: p.rank, Kind: trace.Send, Start: ps.readyAt, End: end, Peer: dst, Bytes: bytes})
}

// Recv blocks until a message with the given tag from src is fully
// received; it returns the message size. On return the receiver's clock is
// the transfer end time.
func (p *Proc) Recv(src, tag int) float64 {
	checkStarEndpoints(src, p.rank)
	c := p.cl
	key := qkey{src, p.rank, tag}
	c.mu.Lock()
	// Only count as blocked while actually waiting: a Recv whose message is
	// already queued is about to make progress and must not trip the
	// deadlock detector.
	for len(c.queues[key]) == 0 {
		if c.dead {
			c.mu.Unlock()
			panic(deadlockPanic{})
		}
		c.waitingRecv[key]++
		c.blocked++
		c.maybeDeadlock()
		if c.dead {
			// This receiver completed the deadlock itself; its own
			// broadcast fired before it waited, so it must not park.
			c.waitingRecv[key]--
			c.blocked--
			c.mu.Unlock()
			panic(deadlockPanic{})
		}
		c.cond.Wait()
		c.waitingRecv[key]--
		c.blocked--
	}
	ps := c.queues[key][0]
	c.queues[key] = c.queues[key][1:]
	c.blocked-- // on behalf of the sender, which is now being served
	recvReady := p.clock
	start := math.Max(ps.readyAt, recvReady)
	bw := c.linkBandwidth(src, p.rank)
	dur := (c.cfg.Latency + ps.bytes/bw) * c.jitterFactor(src, p.rank, tag, ps.seq)
	end := start + dur
	c.mu.Unlock()

	ps.endCh <- end
	p.clock = end
	c.trace.Add(trace.Event{Proc: p.rank, Kind: trace.Recv, Start: recvReady, End: end, Peer: src, Bytes: ps.bytes})
	return ps.bytes
}

// Compute advances the process clock by flops/FlopRate (with jitter).
// Calling Compute on the master panics: the paper's master has no
// processing capability.
func (p *Proc) Compute(flops float64) {
	if p.IsMaster() {
		panic("vcluster: the master has no processing capability (add a zero-cost worker instead)")
	}
	if flops < 0 {
		panic(fmt.Sprintf("vcluster: negative computation %g", flops))
	}
	rate := p.cl.cfg.Workers[p.rank-1].FlopRate
	p.nComp++
	dur := flops / rate * p.cl.jitterFactor(p.rank, p.rank, 0, p.nComp)
	start := p.clock
	p.clock += dur
	p.cl.trace.Add(trace.Event{Proc: p.rank, Kind: trace.Compute, Start: start, End: p.clock, Peer: -1})
}

// ComputeSeconds advances the clock by a raw duration (no rate conversion,
// still jittered). Useful for non-flop workloads.
func (p *Proc) ComputeSeconds(seconds float64) {
	if p.IsMaster() {
		panic("vcluster: the master has no processing capability")
	}
	if seconds < 0 {
		panic(fmt.Sprintf("vcluster: negative duration %g", seconds))
	}
	p.nComp++
	dur := seconds * p.cl.jitterFactor(p.rank, p.rank, 0, p.nComp)
	start := p.clock
	p.clock += dur
	p.cl.trace.Add(trace.Event{Proc: p.rank, Kind: trace.Compute, Start: start, End: p.clock, Peer: -1})
}

// maybeDeadlock declares deadlock when every live process is blocked *and*
// no parked receiver has a matching message queued (such a receiver has a
// pending wake-up and will make progress). Callers hold mu.
func (c *cluster) maybeDeadlock() {
	if c.dead || c.live == 0 || c.blocked != c.live {
		return
	}
	for key, n := range c.waitingRecv {
		if n > 0 && len(c.queues[key]) > 0 {
			return
		}
	}
	c.dead = true
	// Wake every parked receiver and release every parked sender.
	for _, q := range c.queues {
		for _, ps := range q {
			close(ps.endCh)
		}
	}
	c.cond.Broadcast()
}

// Run executes program once per process (ranks 0..len(cfg.Workers)) on the
// virtual cluster and returns the clocks, makespan and trace. A program
// panic is propagated; a deadlock is reported as ErrDeadlock.
func Run(cfg Config, program func(p *Proc)) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(cfg.Workers) + 1
	c := &cluster{
		cfg:         cfg,
		trace:       trace.New(),
		queues:      make(map[qkey][]*pendingSend),
		seqs:        make(map[qkey]uint64),
		waitingRecv: make(map[qkey]int),
		live:        n,
	}
	c.cond = sync.NewCond(&c.mu)

	procs := make([]*Proc, n)
	panics := make([]any, n)
	deadlocked := make([]bool, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		procs[rank] = &Proc{rank: rank, cl: c}
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(deadlockPanic); ok {
						deadlocked[rank] = true
					} else {
						panics[rank] = r
					}
				}
				c.mu.Lock()
				c.live--
				// A process exiting may leave the remaining ones all
				// blocked: re-evaluate deadlock.
				c.maybeDeadlock()
				c.mu.Unlock()
			}()
			program(procs[rank])
		}(rank)
	}
	wg.Wait()

	for rank, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("vcluster: process %d panicked: %v", rank, p))
		}
	}
	for _, d := range deadlocked {
		if d {
			return nil, ErrDeadlock
		}
	}

	res := &Result{Clocks: make([]float64, n), Trace: c.trace}
	for rank, p := range procs {
		res.Clocks[rank] = p.clock
		if p.clock > res.Makespan {
			res.Makespan = p.clock
		}
	}
	return res, nil
}
