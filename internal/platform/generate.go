package platform

import (
	"fmt"
	"math/rand"
)

// App describes the matrix-product application of Section 5 and converts
// worker speeds into linear per-load-unit costs. One load unit is one
// product of two dense MatrixSize×MatrixSize float64 matrices:
//
//	input message:  2·S²·8 bytes (the two operand matrices)
//	output message:   S²·8 bytes (the result matrix) ⇒ z = 1/2
//	computation:    2·S³ floating-point operations
//
// Bandwidth and FlopRate are the capabilities of a speed-1 (reference) link
// and node; a worker of communication speed s has an effective bandwidth of
// s·Bandwidth, following the paper's "simulate a faster worker by scaling
// the work" methodology.
type App struct {
	// MatrixSize is the dimension S of the square matrices.
	MatrixSize int
	// Bandwidth is the reference link bandwidth in bytes per second.
	Bandwidth float64
	// FlopRate is the reference node compute rate in flops per second.
	FlopRate float64
}

// Reference capabilities used by DefaultApp. They are calibrated so that
// absolute times are in the same range as the paper's cluster (2.4 GHz P4
// nodes running a straightforward matrix product at roughly 4 cycles per
// flop, on a switched gigabit-class network). The calibration jointly
// reproduces the paper's observable behaviours: the Figure 14 participation
// boundary falls between x = 1 and x = 3, the Figure 9 trace enrolls a
// strict subset of the workers, and LIFO overtakes INC_C on heterogeneous
// platforms as matrices grow.
const (
	DefaultBandwidth = 1.25e8 // bytes/s
	DefaultFlopRate  = 6e8    // flops/s
)

// DefaultApp returns the matrix-product application for matrices of the
// given size with the reference capabilities.
func DefaultApp(size int) App {
	return App{MatrixSize: size, Bandwidth: DefaultBandwidth, FlopRate: DefaultFlopRate}
}

// BytesIn returns the input-message size of one load unit in bytes.
func (a App) BytesIn() float64 { s := float64(a.MatrixSize); return 2 * 8 * s * s }

// BytesOut returns the output-message size of one load unit in bytes.
func (a App) BytesOut() float64 { s := float64(a.MatrixSize); return 8 * s * s }

// Flops returns the computation amount of one load unit.
func (a App) Flops() float64 { s := float64(a.MatrixSize); return 2 * s * s * s }

// Z returns the application's result/input size ratio; 1/2 for matrix
// products.
func (a App) Z() float64 { return a.BytesOut() / a.BytesIn() }

// Costs converts a (communication speed, computation speed) pair into the
// worker's linear costs for this application.
func (a App) Costs(commSpeed, compSpeed float64, name string) Worker {
	return Worker{
		Name: name,
		C:    a.BytesIn() / (a.Bandwidth * commSpeed),
		W:    a.Flops() / (a.FlopRate * compSpeed),
		D:    a.BytesOut() / (a.Bandwidth * commSpeed),
	}
}

// Speeds is a speed description of a platform, independent of the
// application: one communication and one computation speed multiplier per
// worker, each ≥ 1 with 1 the reference speed (the paper draws them from
// {1..10}).
type Speeds struct {
	Comm []float64
	Comp []float64
}

// P returns the number of workers described.
func (s Speeds) P() int { return len(s.Comm) }

// Platform converts the speeds into a cost platform for application a.
func (s Speeds) Platform(a App) *Platform {
	if len(s.Comm) != len(s.Comp) {
		panic(fmt.Sprintf("platform: speeds have %d comm and %d comp entries", len(s.Comm), len(s.Comp)))
	}
	ws := make([]Worker, len(s.Comm))
	for i := range ws {
		ws[i] = a.Costs(s.Comm[i], s.Comp[i], fmt.Sprintf("P%d", i+1))
	}
	return New(ws...)
}

// ScaleComp returns a copy with every computation speed multiplied by f
// (Section 5.3.3's "calculation power ×10" experiment uses f = 10).
func (s Speeds) ScaleComp(f float64) Speeds {
	out := Speeds{Comm: append([]float64(nil), s.Comm...), Comp: make([]float64, len(s.Comp))}
	for i, v := range s.Comp {
		out.Comp[i] = v * f
	}
	return out
}

// ScaleComm returns a copy with every communication speed multiplied by f.
func (s Speeds) ScaleComm(f float64) Speeds {
	out := Speeds{Comm: make([]float64, len(s.Comm)), Comp: append([]float64(nil), s.Comp...)}
	for i, v := range s.Comm {
		out.Comm[i] = v * f
	}
	return out
}

// Family selects one of the random platform families of Section 5.3.
type Family int

// Platform families used in the paper's experiments.
const (
	// Homogeneous: all workers share one random communication speed and one
	// random computation speed (Figure 10).
	Homogeneous Family = iota
	// HomCommHeteroComp: a single random communication speed, individual
	// random computation speeds (Figure 11).
	HomCommHeteroComp
	// Heterogeneous: individual random communication and computation speeds
	// (Figure 12).
	Heterogeneous
)

// String names the family.
func (f Family) String() string {
	switch f {
	case Homogeneous:
		return "homogeneous"
	case HomCommHeteroComp:
		return "homogeneous-comm/heterogeneous-comp"
	case Heterogeneous:
		return "heterogeneous"
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// speedRange draws an integer speed from {1..10} as in Section 5.3.2.
func speedDraw(rng *rand.Rand) float64 { return float64(1 + rng.Intn(10)) }

// RandomSpeeds draws a platform of p workers from the given family using
// rng. The caller owns the generator; passing generators seeded explicitly
// keeps every experiment reproducible.
func RandomSpeeds(rng *rand.Rand, p int, family Family) Speeds {
	s := Speeds{Comm: make([]float64, p), Comp: make([]float64, p)}
	switch family {
	case Homogeneous:
		comm, comp := speedDraw(rng), speedDraw(rng)
		for i := 0; i < p; i++ {
			s.Comm[i], s.Comp[i] = comm, comp
		}
	case HomCommHeteroComp:
		comm := speedDraw(rng)
		for i := 0; i < p; i++ {
			s.Comm[i], s.Comp[i] = comm, speedDraw(rng)
		}
	case Heterogeneous:
		for i := 0; i < p; i++ {
			s.Comm[i], s.Comp[i] = speedDraw(rng), speedDraw(rng)
		}
	default:
		panic(fmt.Sprintf("platform: unknown family %d", int(family)))
	}
	return s
}

// Fig14Speeds returns the 4-worker platform of the participation study
// (Section 5.3.4): three workers fast in both communication and
// computation, and a fourth slow worker whose communication speed x is the
// study's free parameter.
//
//	worker:             1   2   3   4
//	communication speed 10  8   8   x
//	computation speed   9   9   10  1
func Fig14Speeds(x float64) Speeds {
	return Speeds{
		Comm: []float64{10, 8, 8, x},
		Comp: []float64{9, 9, 10, 1},
	}
}
