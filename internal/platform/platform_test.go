package platform

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAssignsNames(t *testing.T) {
	p := New(Worker{C: 1, W: 2, D: 0.5}, Worker{Name: "fast", C: 1, W: 1, D: 0.5})
	if p.Workers[0].Name != "P1" {
		t.Errorf("worker 0 name = %q, want P1", p.Workers[0].Name)
	}
	if p.Workers[1].Name != "fast" {
		t.Errorf("worker 1 name = %q, want fast (explicit names preserved)", p.Workers[1].Name)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		p       *Platform
		wantErr bool
	}{
		{"ok", New(Worker{C: 1, W: 1, D: 1}), false},
		{"empty", New(), true},
		{"zero c", New(Worker{C: 0, W: 1, D: 1}), true},
		{"negative w", New(Worker{C: 1, W: -1, D: 1}), true},
		{"zero d", New(Worker{C: 1, W: 1, D: 0}), true},
		{"nan", New(Worker{C: math.NaN(), W: 1, D: 1}), true},
		{"inf", New(Worker{C: 1, W: math.Inf(1), D: 1}), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestZDetection(t *testing.T) {
	p := New(
		Worker{C: 2, W: 1, D: 1},
		Worker{C: 4, W: 3, D: 2},
		Worker{C: 10, W: 2, D: 5},
	)
	z, ok := p.Z()
	if !ok || math.Abs(z-0.5) > 1e-12 {
		t.Errorf("Z() = %g, %v; want 0.5, true", z, ok)
	}
	p.Workers[1].D = 3 // breaks the common ratio
	if _, ok := p.Z(); ok {
		t.Error("Z() should not exist after perturbation")
	}
	empty := &Platform{}
	if _, ok := empty.Z(); ok {
		t.Error("Z() on empty platform must report false")
	}
}

func TestIsBus(t *testing.T) {
	bus := NewBus(2, 1, 1, 5, 3)
	if !bus.IsBus() {
		t.Error("NewBus platform must be a bus")
	}
	star := New(Worker{C: 1, W: 1, D: 0.5}, Worker{C: 2, W: 1, D: 1})
	if star.IsBus() {
		t.Error("star with distinct links must not be a bus")
	}
	if (&Platform{}).IsBus() {
		t.Error("empty platform must not be a bus")
	}
}

func TestMirrorInvolution(t *testing.T) {
	p := New(Worker{C: 1, W: 2, D: 3}, Worker{C: 4, W: 5, D: 6})
	m := p.Mirror()
	if m.Workers[0].C != 3 || m.Workers[0].D != 1 {
		t.Errorf("Mirror swapped wrong: %+v", m.Workers[0])
	}
	mm := m.Mirror()
	for i := range p.Workers {
		if mm.Workers[i] != p.Workers[i] {
			t.Errorf("Mirror∘Mirror changed worker %d: %+v != %+v", i, mm.Workers[i], p.Workers[i])
		}
	}
	// Mirror must not alias the original.
	m.Workers[0].W = 99
	if p.Workers[0].W == 99 {
		t.Error("Mirror aliases the original platform")
	}
}

func TestOrders(t *testing.T) {
	p := New(
		Worker{C: 3, W: 1, D: 1.5},
		Worker{C: 1, W: 3, D: 0.5},
		Worker{C: 2, W: 2, D: 1},
	)
	if got := p.ByC(); got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Errorf("ByC() = %v, want [1 2 0]", got)
	}
	if got := p.ByCDesc(); got[0] != 0 || got[1] != 2 || got[2] != 1 {
		t.Errorf("ByCDesc() = %v, want [0 2 1]", got)
	}
	if got := p.ByW(); got[0] != 0 || got[1] != 2 || got[2] != 1 {
		t.Errorf("ByW() = %v, want [0 2 1]", got)
	}
}

func TestOrderHelpers(t *testing.T) {
	o := Identity(4)
	if !o.Valid(4) {
		t.Error("identity must be valid")
	}
	r := o.Reverse()
	if r[0] != 3 || r[3] != 0 {
		t.Errorf("Reverse() = %v", r)
	}
	if o.Valid(3) || (Order{0, 0, 1}).Valid(3) || (Order{0, 1, 5}).Valid(3) {
		t.Error("Valid accepted an invalid order")
	}
	c := o.Clone()
	c[0] = 9
	if o[0] == 9 {
		t.Error("Clone aliases")
	}
}

func TestPermuted(t *testing.T) {
	p := New(Worker{C: 1, W: 1, D: 1}, Worker{C: 2, W: 2, D: 2})
	q := p.Permuted(Order{1, 0})
	if q.Workers[0].C != 2 || q.Workers[1].C != 1 {
		t.Errorf("Permuted wrong: %v", q)
	}
	defer func() {
		if recover() == nil {
			t.Error("Permuted with invalid order must panic")
		}
	}()
	p.Permuted(Order{0, 0})
}

func TestScaling(t *testing.T) {
	p := New(Worker{C: 2, W: 4, D: 1})
	q := p.ScaleComputation(0.1)
	if q.Workers[0].W != 0.4 || q.Workers[0].C != 2 {
		t.Errorf("ScaleComputation: %+v", q.Workers[0])
	}
	r := p.ScaleCommunication(0.1)
	if r.Workers[0].C != 0.2 || r.Workers[0].D != 0.1 || r.Workers[0].W != 4 {
		t.Errorf("ScaleCommunication: %+v", r.Workers[0])
	}
	if p.Workers[0].W != 4 || p.Workers[0].C != 2 {
		t.Error("scaling mutated the receiver")
	}
}

func TestStringContainsEssentials(t *testing.T) {
	p := NewBus(2, 1, 3)
	s := p.String()
	for _, want := range []string{"1 workers", "c=2", "w=3", "d=1", "z = d/c = 0.5", "(bus)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := New(Worker{Name: "a", C: 1.5, W: 2.25, D: 0.75})
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Platform
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q.Workers[0] != p.Workers[0] {
		t.Errorf("round trip changed worker: %+v != %+v", q.Workers[0], p.Workers[0])
	}
	// Unmarshal validates.
	if err := json.Unmarshal([]byte(`{"workers":[{"c":0,"w":1,"d":1}]}`), &q); err == nil {
		t.Error("Unmarshal of invalid platform must fail validation")
	}
	// Missing names are filled in (fresh destination: Unmarshal merges into
	// pre-existing slice elements otherwise).
	var fresh Platform
	if err := json.Unmarshal([]byte(`{"workers":[{"c":1,"w":1,"d":1}]}`), &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Workers[0].Name != "P1" {
		t.Errorf("name not defaulted: %q", fresh.Workers[0].Name)
	}
}

func TestAppCosts(t *testing.T) {
	a := DefaultApp(100)
	if a.BytesIn() != 160000 || a.BytesOut() != 80000 {
		t.Errorf("message sizes: in=%g out=%g", a.BytesIn(), a.BytesOut())
	}
	if a.Flops() != 2e6 {
		t.Errorf("flops = %g, want 2e6", a.Flops())
	}
	if a.Z() != 0.5 {
		t.Errorf("Z = %g, want 0.5 (matrix product)", a.Z())
	}
	w := a.Costs(2, 4, "x")
	if math.Abs(w.C-160000/(2*DefaultBandwidth)) > 1e-15 {
		t.Errorf("C = %g", w.C)
	}
	if math.Abs(w.W-2e6/(4*DefaultFlopRate)) > 1e-15 {
		t.Errorf("W = %g", w.W)
	}
	if math.Abs(w.D/w.C-0.5) > 1e-12 {
		t.Errorf("per-worker z = %g, want 0.5", w.D/w.C)
	}
}

func TestSpeedsPlatform(t *testing.T) {
	s := Speeds{Comm: []float64{1, 2}, Comp: []float64{1, 4}}
	p := s.Platform(DefaultApp(50))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Workers[0].C <= p.Workers[1].C {
		t.Error("faster comm speed must give lower cost")
	}
	if z, ok := p.Z(); !ok || math.Abs(z-0.5) > 1e-12 {
		t.Errorf("z = %g, %v", z, ok)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched speeds must panic")
		}
	}()
	Speeds{Comm: []float64{1}, Comp: []float64{1, 2}}.Platform(DefaultApp(50))
}

func TestSpeedsScaling(t *testing.T) {
	s := Speeds{Comm: []float64{1, 2}, Comp: []float64{3, 4}}
	sc := s.ScaleComp(10)
	if sc.Comp[0] != 30 || sc.Comp[1] != 40 || sc.Comm[0] != 1 {
		t.Errorf("ScaleComp: %+v", sc)
	}
	sm := s.ScaleComm(10)
	if sm.Comm[0] != 10 || sm.Comm[1] != 20 || sm.Comp[0] != 3 {
		t.Errorf("ScaleComm: %+v", sm)
	}
	if s.Comp[0] != 3 || s.Comm[0] != 1 {
		t.Error("scaling mutated the receiver")
	}
}

func TestRandomSpeedsFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const p = 11

	hom := RandomSpeeds(rng, p, Homogeneous)
	for i := 1; i < p; i++ {
		if hom.Comm[i] != hom.Comm[0] || hom.Comp[i] != hom.Comp[0] {
			t.Fatalf("homogeneous family must share speeds: %+v", hom)
		}
	}

	hc := RandomSpeeds(rng, p, HomCommHeteroComp)
	for i := 1; i < p; i++ {
		if hc.Comm[i] != hc.Comm[0] {
			t.Fatalf("hom-comm family must share comm speed: %+v", hc)
		}
	}

	het := RandomSpeeds(rng, p, Heterogeneous)
	if het.P() != p {
		t.Fatalf("P() = %d", het.P())
	}
	for i := 0; i < p; i++ {
		for _, v := range []float64{het.Comm[i], het.Comp[i]} {
			if v < 1 || v > 10 || v != math.Trunc(v) {
				t.Fatalf("speed %g outside integer range 1..10", v)
			}
		}
	}
}

func TestRandomSpeedsDeterministic(t *testing.T) {
	a := RandomSpeeds(rand.New(rand.NewSource(7)), 5, Heterogeneous)
	b := RandomSpeeds(rand.New(rand.NewSource(7)), 5, Heterogeneous)
	for i := range a.Comm {
		if a.Comm[i] != b.Comm[i] || a.Comp[i] != b.Comp[i] {
			t.Fatal("same seed must give same speeds")
		}
	}
}

func TestRandomSpeedsUnknownFamily(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown family must panic")
		}
	}()
	RandomSpeeds(rand.New(rand.NewSource(1)), 3, Family(99))
}

func TestFamilyString(t *testing.T) {
	if Homogeneous.String() == "" || HomCommHeteroComp.String() == "" ||
		Heterogeneous.String() == "" || Family(9).String() == "" {
		t.Error("Family.String must never be empty")
	}
}

func TestFig14Speeds(t *testing.T) {
	s := Fig14Speeds(3)
	if s.P() != 4 {
		t.Fatalf("P() = %d, want 4", s.P())
	}
	want := Speeds{Comm: []float64{10, 8, 8, 3}, Comp: []float64{9, 9, 10, 1}}
	for i := 0; i < 4; i++ {
		if s.Comm[i] != want.Comm[i] || s.Comp[i] != want.Comp[i] {
			t.Errorf("worker %d: got (%g,%g), want (%g,%g)", i, s.Comm[i], s.Comp[i], want.Comm[i], want.Comp[i])
		}
	}
}

// TestQuickGeneratedPlatformsValid: every generated platform must validate
// and carry the application's z.
func TestQuickGeneratedPlatformsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fam := Family(rng.Intn(3))
		sp := RandomSpeeds(rng, 1+rng.Intn(12), fam)
		p := sp.Platform(DefaultApp(40 + rng.Intn(160)))
		if err := p.Validate(); err != nil {
			t.Logf("invalid platform: %v", err)
			return false
		}
		z, ok := p.Z()
		return ok && math.Abs(z-0.5) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickByCSorted: ByC must always return a valid permutation sorted by C.
func TestQuickByCSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := RandomSpeeds(rng, 1+rng.Intn(12), Heterogeneous)
		p := sp.Platform(DefaultApp(100))
		o := p.ByC()
		if !o.Valid(p.P()) {
			return false
		}
		for i := 1; i < len(o); i++ {
			if p.Workers[o[i-1]].C > p.Workers[o[i]].C {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFingerprint: equal costs share a fingerprint (names ignored); any
// cost change, reorder, or resize produces a distinct one.
func TestFingerprint(t *testing.T) {
	a := New(Worker{Name: "x", C: 0.1, W: 0.5, D: 0.05}, Worker{Name: "y", C: 0.2, W: 0.3, D: 0.1})
	b := New(Worker{Name: "other", C: 0.1, W: 0.5, D: 0.05}, Worker{C: 0.2, W: 0.3, D: 0.1})
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint must ignore worker names")
	}
	variants := []*Platform{
		New(Worker{C: 0.1, W: 0.5, D: 0.05}, Worker{C: 0.2, W: 0.3, D: 0.10000001}),
		New(Worker{C: 0.2, W: 0.3, D: 0.1}, Worker{C: 0.1, W: 0.5, D: 0.05}), // reordered
		New(Worker{C: 0.1, W: 0.5, D: 0.05}),                                 // shorter
	}
	for i, v := range variants {
		if v.Fingerprint() == a.Fingerprint() {
			t.Errorf("variant %d collides with the base fingerprint", i)
		}
	}
}
