// Package platform models the heterogeneous master-worker star platforms of
// the divisible-load scheduling framework (RR-5738, Section 2.1).
//
// A platform is a master P0 and p workers P1..Pp. In the linear cost model
// each worker Pi is described by three per-load-unit costs:
//
//	C — time to send one load unit of input data from the master to Pi,
//	W — time for Pi to process one load unit,
//	D — time to send one load unit of results from Pi back to the master.
//
// The paper assumes D = z·C for an application-wide constant z (the ratio of
// result size to input size); the package detects whether a platform honours
// that relation. A bus platform is a star whose links are identical (all C
// equal, all D equal).
//
// The package also provides the random platform generators used by the
// paper's experimental section: speeds are drawn uniformly from {1..10}
// (1 = the speed of the reference node, 10 = ten times faster) and converted
// to costs by dividing reference costs by the speed, reproducing the
// "simulate heterogeneity by speeding up" methodology of Section 5.2.
package platform

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"repro/internal/numeric"
)

// Worker holds the linear per-load-unit costs of one worker.
type Worker struct {
	// Name is an optional label used in traces and error messages.
	Name string `json:"name,omitempty"`
	// C is the forward communication cost: time per load unit of the
	// initial message from the master.
	C float64 `json:"c"`
	// W is the computation cost: time per load unit of processing.
	W float64 `json:"w"`
	// D is the return communication cost: time per load unit of the result
	// message back to the master.
	D float64 `json:"d"`
}

// Platform is a star network: a master (implicit, with no processing
// capability, per the paper's normalization) and a list of workers.
type Platform struct {
	Workers []Worker `json:"workers"`
}

// New builds a platform from explicit worker cost triples.
func New(workers ...Worker) *Platform {
	p := &Platform{Workers: make([]Worker, len(workers))}
	copy(p.Workers, workers)
	for i := range p.Workers {
		if p.Workers[i].Name == "" {
			p.Workers[i].Name = fmt.Sprintf("P%d", i+1)
		}
	}
	return p
}

// NewBus builds a bus platform: all workers share the communication costs c
// (forward) and d (return) but have individual computation costs ws.
func NewBus(c, d float64, ws ...float64) *Platform {
	workers := make([]Worker, len(ws))
	for i, w := range ws {
		workers[i] = Worker{C: c, D: d, W: w}
	}
	return New(workers...)
}

// P returns the number of workers.
func (p *Platform) P() int { return len(p.Workers) }

// Clone returns a deep copy.
func (p *Platform) Clone() *Platform {
	return New(p.Workers...)
}

// Validate checks that the platform is well formed: at least one worker and
// strictly positive, finite costs everywhere. The linear model degenerates
// when any cost is zero or negative (a zero C would let the LP ship load for
// free), so those are rejected.
func (p *Platform) Validate() error {
	if len(p.Workers) == 0 {
		return fmt.Errorf("platform: no workers")
	}
	for i, w := range p.Workers {
		for _, v := range []struct {
			name string
			val  float64
		}{{"c", w.C}, {"w", w.W}, {"d", w.D}} {
			if math.IsNaN(v.val) || math.IsInf(v.val, 0) {
				return fmt.Errorf("platform: worker %d (%s): %s is not finite", i, w.Name, v.name)
			}
			if v.val <= 0 {
				return fmt.Errorf("platform: worker %d (%s): %s = %g must be > 0", i, w.Name, v.name, v.val)
			}
		}
	}
	return nil
}

// zTolerance is the relative tolerance used when checking D = z·C across
// workers; platform parameters typically come from measured or generated
// float data. It is the repository-wide shape-detection tolerance of
// internal/numeric.
const zTolerance = numeric.RatioTol

// Z returns the common return/forward ratio z = D/C if it is shared (within
// a relative tolerance) by all workers, and reports whether it exists. Many
// results of the paper require a common z.
func (p *Platform) Z() (float64, bool) {
	if len(p.Workers) == 0 {
		return 0, false
	}
	z := p.Workers[0].D / p.Workers[0].C
	for _, w := range p.Workers[1:] {
		zi := w.D / w.C
		if math.Abs(zi-z) > zTolerance*(1+math.Abs(z)) {
			return 0, false
		}
	}
	return z, true
}

// IsBus reports whether all workers share both communication costs, i.e.
// the star degenerates to a bus.
func (p *Platform) IsBus() bool {
	if len(p.Workers) == 0 {
		return false
	}
	c0, d0 := p.Workers[0].C, p.Workers[0].D
	for _, w := range p.Workers[1:] {
		if math.Abs(w.C-c0) > zTolerance*(1+c0) || math.Abs(w.D-d0) > zTolerance*(1+d0) {
			return false
		}
	}
	return true
}

// HashFloats returns an FNV-1a hash over the exact float64 bit patterns of
// the given slices, each prefixed with its length. It is the one place the
// cost-hashing scheme lives: Fingerprint and the dls engine's cache keys
// (which also hash affine cost slices) both build on it.
func HashFloats(slices ...[]float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, vs := range slices {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(vs)))
		h.Write(buf[:])
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// Fingerprint returns a stable identifier of the platform's cost structure:
// a hash over every worker's (C, W, D) costs, prefixed with the worker
// count. Worker names are excluded — they never influence scheduling
// mathematics — so two platforms that differ only in labels share a
// fingerprint. Used as a cache key component by the dls engine.
func (p *Platform) Fingerprint() string {
	cs := make([]float64, len(p.Workers))
	ws := make([]float64, len(p.Workers))
	ds := make([]float64, len(p.Workers))
	for i, w := range p.Workers {
		cs[i], ws[i], ds[i] = w.C, w.W, w.D
	}
	return fmt.Sprintf("p%d-%016x", len(p.Workers), HashFloats(cs, ws, ds))
}

// Mirror returns the platform with forward and return costs swapped
// (C↔D). Solving the mirrored problem and flipping the schedule in time is
// how the z > 1 regime reduces to z < 1 (Section 3).
func (p *Platform) Mirror() *Platform {
	m := p.Clone()
	for i := range m.Workers {
		m.Workers[i].C, m.Workers[i].D = m.Workers[i].D, m.Workers[i].C
	}
	return m
}

// Order is a permutation of worker indices (0-based into Workers).
type Order []int

// Identity returns the identity order of length n.
func Identity(n int) Order {
	o := make(Order, n)
	for i := range o {
		o[i] = i
	}
	return o
}

// Reverse returns the reversed order.
func (o Order) Reverse() Order {
	r := make(Order, len(o))
	for i, v := range o {
		r[len(o)-1-i] = v
	}
	return r
}

// Clone returns a copy of the order.
func (o Order) Clone() Order {
	r := make(Order, len(o))
	copy(r, o)
	return r
}

// Valid reports whether o is a permutation of {0..n-1}.
func (o Order) Valid(n int) bool {
	if len(o) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range o {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// ByC returns worker indices sorted by non-decreasing C (ties broken by
// index for determinism). Theorem 1: this is the optimal FIFO order for
// z < 1.
func (p *Platform) ByC() Order {
	o := Identity(p.P())
	sort.SliceStable(o, func(a, b int) bool { return p.Workers[o[a]].C < p.Workers[o[b]].C })
	return o
}

// ByCDesc returns worker indices sorted by non-increasing C, the optimal
// FIFO send order when z > 1.
func (p *Platform) ByCDesc() Order {
	o := Identity(p.P())
	sort.SliceStable(o, func(a, b int) bool { return p.Workers[o[a]].C > p.Workers[o[b]].C })
	return o
}

// ByW returns worker indices sorted by non-decreasing W (the INC_W
// heuristic's order: fastest-computing workers first).
func (p *Platform) ByW() Order {
	o := Identity(p.P())
	sort.SliceStable(o, func(a, b int) bool { return p.Workers[o[a]].W < p.Workers[o[b]].W })
	return o
}

// Permuted returns a new platform whose workers are reordered according to
// ord: worker i of the result is Workers[ord[i]].
func (p *Platform) Permuted(ord Order) *Platform {
	if !ord.Valid(p.P()) {
		panic(fmt.Sprintf("platform: invalid order %v for %d workers", ord, p.P()))
	}
	ws := make([]Worker, len(ord))
	for i, idx := range ord {
		ws[i] = p.Workers[idx]
	}
	return New(ws...)
}

// ScaleComputation multiplies every computation cost by f (f < 1 speeds
// computation up). Used by the Section 5.3.3 ratio experiments.
func (p *Platform) ScaleComputation(f float64) *Platform {
	q := p.Clone()
	for i := range q.Workers {
		q.Workers[i].W *= f
	}
	return q
}

// ScaleCommunication multiplies every communication cost (both directions)
// by f.
func (p *Platform) ScaleCommunication(f float64) *Platform {
	q := p.Clone()
	for i := range q.Workers {
		q.Workers[i].C *= f
		q.Workers[i].D *= f
	}
	return q
}

// String renders a compact table of the platform.
func (p *Platform) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "platform with %d workers:\n", p.P())
	for i, w := range p.Workers {
		fmt.Fprintf(&b, "  %-6s c=%-10.6g w=%-10.6g d=%-10.6g\n", fmt.Sprintf("%s(%d)", w.Name, i), w.C, w.W, w.D)
	}
	if z, ok := p.Z(); ok {
		fmt.Fprintf(&b, "  common z = d/c = %.6g", z)
		if p.IsBus() {
			b.WriteString(" (bus)")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// MarshalJSON implements json.Marshaler (value receiver would copy; the
// default struct marshalling is sufficient, this exists for symmetry and
// stability of the wire format).
func (p *Platform) MarshalJSON() ([]byte, error) {
	type alias Platform
	return json.Marshal((*alias)(p))
}

// UnmarshalJSON implements json.Unmarshaler and validates the result.
func (p *Platform) UnmarshalJSON(data []byte) error {
	type alias Platform
	if err := json.Unmarshal(data, (*alias)(p)); err != nil {
		return err
	}
	for i := range p.Workers {
		if p.Workers[i].Name == "" {
			p.Workers[i].Name = fmt.Sprintf("P%d", i+1)
		}
	}
	return p.Validate()
}
