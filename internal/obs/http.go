package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// DebugResponse is the JSON body of GET /debug/requests.
type DebugResponse struct {
	// Total counts every trace finished into the recorder since start
	// (the ring holds only the most recent ones).
	Total uint64 `json:"total"`
	// Recent lists recent traces, newest first, after filtering.
	Recent []TraceData `json:"recent"`
	// Slowest lists the slowest exemplars per route (filters applied).
	Slowest map[string][]TraceData `json:"slowest"`
}

// Handler serves the recorder's stores as the /debug/requests endpoint.
// Query parameters:
//
//	n=32            cap on the recent list (default 32)
//	route=/v1/solve exact route filter
//	strategy=fifo   keep traces whose "strategy" attribute matches
//	degraded=true   keep traces whose "degraded" attribute matches
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		n := 32
		if v, err := strconv.Atoi(q.Get("n")); err == nil && v > 0 {
			n = v
		}
		route := q.Get("route")
		match := func(d TraceData) bool {
			if route != "" && d.Route != route {
				return false
			}
			if s := q.Get("strategy"); s != "" && d.Attr("strategy") != s {
				return false
			}
			if dg := q.Get("degraded"); dg != "" && d.Attr("degraded") != dg {
				return false
			}
			return true
		}
		resp := DebugResponse{Total: r.Total(), Slowest: make(map[string][]TraceData)}
		for _, d := range r.Recent(0) {
			if len(resp.Recent) >= n {
				break
			}
			if match(d) {
				resp.Recent = append(resp.Recent, d)
			}
		}
		if resp.Recent == nil {
			resp.Recent = []TraceData{}
		}
		for rt, list := range r.Slowest(route) {
			kept := make([]TraceData, 0, len(list))
			for _, d := range list {
				if match(d) {
					kept = append(kept, d)
				}
			}
			if len(kept) > 0 {
				resp.Slowest[rt] = kept
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp) //nolint:errcheck // client gone = nothing to do
	})
}
