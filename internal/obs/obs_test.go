package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-cranked time source so stage durations are exact.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestTraceStagesAndStageSum(t *testing.T) {
	clk := newFakeClock()
	tr := NewTrace("id-1", "/v1/solve", clk.Now)

	s0 := clk.Now()
	clk.advance(10 * time.Millisecond)
	s1 := clk.Now()
	tr.StageAt(0, "queue_wait", s0, s1)

	clk.advance(5 * time.Millisecond)
	s2 := clk.Now()
	tr.StageAt(0, "solve", s1, s2)
	// Nested stage inside solve: attributed, but not part of the
	// depth-0 partition.
	tr.StageAt(1, "eval-backend", s1, s2, String("backend", "closed-form"))

	tr.Annotate(String("strategy", "fifo"), String("cache", "miss"))
	tr.Annotate(String("cache", "hit")) // latest value wins
	tr.Finish()

	d := tr.Snapshot()
	if d.ID != "id-1" || d.Route != "/v1/solve" {
		t.Fatalf("snapshot identity = %q %q", d.ID, d.Route)
	}
	if got, want := d.DurationNS, int64(15*time.Millisecond); got != want {
		t.Fatalf("DurationNS = %d, want %d", got, want)
	}
	if got, want := d.StageSum(), 15*time.Millisecond; got != want {
		t.Fatalf("StageSum = %v, want %v (depth-0 only)", got, want)
	}
	if len(d.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(d.Stages))
	}
	// Sorted by offset, then depth: queue_wait, solve, eval-backend.
	wantOrder := []string{"queue_wait", "solve", "eval-backend"}
	for i, name := range wantOrder {
		if d.Stages[i].Name != name {
			t.Fatalf("stage[%d] = %q, want %q", i, d.Stages[i].Name, name)
		}
	}
	if got := d.Attr("cache"); got != "hit" {
		t.Fatalf("Attr(cache) = %q, want hit (latest wins)", got)
	}
	if got := d.Attr("absent"); got != "" {
		t.Fatalf("Attr(absent) = %q, want empty", got)
	}

	// Recording after Finish is dropped.
	tr.StageAt(0, "late", s2, s2.Add(time.Second))
	tr.Annotate(String("late", "true"))
	if d2 := tr.Snapshot(); len(d2.Stages) != 3 || d2.Attr("late") != "" {
		t.Fatalf("post-Finish writes mutated the trace: %+v", d2)
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.StageAt(0, "x", time.Time{}, time.Time{})
	tr.Annotate(String("k", "v"))
	tr.Finish()
	if tr.ID() != "" || !tr.Now().IsZero() {
		t.Fatal("nil trace leaked state")
	}
	if d := tr.Snapshot(); d.ID != "" || len(d.Stages) != 0 {
		t.Fatalf("nil snapshot = %+v", d)
	}
}

func TestContextFanout(t *testing.T) {
	clk := newFakeClock()
	ctx := context.Background()
	if Enabled(ctx) || !Now(ctx).IsZero() {
		t.Fatal("empty context reports tracing enabled")
	}
	a := NewTrace("a", "r", clk.Now)
	b := NewTrace("b", "r", clk.Now)
	ctx = ContextWithTrace(ctx, a)
	ctx = ContextWithTrace(ctx, b) // joins
	if got := Traces(ctx); len(got) != 2 {
		t.Fatalf("joined traces = %d, want 2", len(got))
	}
	s0 := clk.Now()
	clk.advance(time.Millisecond)
	StageAt(ctx, 0, "solve", s0, clk.Now())
	Annotate(ctx, String("k", "v"))
	for _, tr := range []*Trace{a, b} {
		d := tr.Snapshot()
		if len(d.Stages) != 1 || d.Attr("k") != "v" {
			t.Fatalf("trace %s missed the fan-out: %+v", d.ID, d)
		}
	}

	c := NewTrace("c", "r", clk.Now)
	rctx := ContextWithTraces(context.Background(), []*Trace{c}) // replaces
	if got := Traces(rctx); len(got) != 1 || got[0].ID() != "c" {
		t.Fatalf("ContextWithTraces = %v", got)
	}
}

func TestRecorderRingRollover(t *testing.T) {
	clk := newFakeClock()
	rec := NewRecorder(RecorderConfig{Ring: 4, SlowestPerRoute: 8, Now: clk.Now})
	for i := 0; i < 6; i++ {
		tr := rec.StartTrace("/v1/solve", fmt.Sprintf("t%d", i), "")
		clk.advance(time.Millisecond)
		rec.Finish(tr)
	}
	if got := rec.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	recent := rec.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("Recent = %d traces, want ring size 4", len(recent))
	}
	// Newest first: t5, t4, t3, t2 — t0/t1 rolled out.
	for i, want := range []string{"t5", "t4", "t3", "t2"} {
		if recent[i].ID != want {
			t.Fatalf("recent[%d] = %q, want %q", i, recent[i].ID, want)
		}
	}
	if got := rec.Recent(2); len(got) != 2 || got[0].ID != "t5" {
		t.Fatalf("Recent(2) = %v", got)
	}
}

func TestRecorderSlowestExemplars(t *testing.T) {
	clk := newFakeClock()
	rec := NewRecorder(RecorderConfig{Ring: 8, SlowestPerRoute: 2, Now: clk.Now})
	durations := []time.Duration{3 * time.Millisecond, time.Millisecond, 7 * time.Millisecond, 5 * time.Millisecond}
	for i, d := range durations {
		tr := rec.StartTrace("/v1/solve", fmt.Sprintf("t%d", i), "")
		clk.advance(d)
		rec.Finish(tr)
	}
	slow := rec.Slowest("/v1/solve")["/v1/solve"]
	if len(slow) != 2 {
		t.Fatalf("slowest = %d exemplars, want cap 2", len(slow))
	}
	if slow[0].ID != "t2" || slow[1].ID != "t3" {
		t.Fatalf("slowest order = %s, %s; want t2, t3", slow[0].ID, slow[1].ID)
	}
	if m := rec.Slowest("/other"); len(m) != 0 {
		t.Fatalf("Slowest(/other) = %v, want empty", m)
	}
}

// TestRecorderConcurrent exercises the race-sensitive surfaces under the
// race detector: stage writers racing Finish, and readers racing both.
func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Ring: 16, SlowestPerRoute: 4})
	const traces = 32
	var wg sync.WaitGroup
	for i := 0; i < traces; i++ {
		tr := rec.StartTrace("/v1/solve", "", "")
		wg.Add(3)
		go func() { // a drain worker still recording
			defer wg.Done()
			now := tr.Now()
			for j := 0; j < 50; j++ {
				tr.StageAt(1, "search", now, now)
				tr.Annotate(Int("j", j))
			}
		}()
		go func() { // the handler finishing
			defer wg.Done()
			rec.Finish(tr)
		}()
		go func() { // a /debug/requests reader
			defer wg.Done()
			rec.Recent(8)
			rec.Slowest("")
			rec.Total()
		}()
	}
	wg.Wait()
	if got := rec.Total(); got != traces {
		t.Fatalf("Total = %d, want %d", got, traces)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	id, span := NewTraceID(), NewSpanID()
	if len(id) != 32 || len(span) != 16 {
		t.Fatalf("id lengths = %d/%d, want 32/16", len(id), len(span))
	}
	gotID, gotSpan, ok := ParseTraceparent(FormatTraceparent(id, span))
	if !ok || gotID != id || gotSpan != span {
		t.Fatalf("round trip = (%q, %q, %v), want (%q, %q, true)", gotID, gotSpan, ok, id, span)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"00-abc-def-01",                    // wrong lengths
		"00-" + NewTraceID() + "-short-01", // short span
		"00-00000000000000000000000000000000-0000000000000000-01", // all-zero trace id
		"00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-0000000000000001-01", // non-hex
		FormatTraceparent(NewTraceID(), NewSpanID()) + "-extra",
	}
	for _, v := range bad {
		if _, _, ok := ParseTraceparent(v); ok {
			t.Fatalf("ParseTraceparent(%q) accepted malformed input", v)
		}
	}
}

func TestOutgoingTraceparent(t *testing.T) {
	if _, ok := OutgoingTraceparent(context.Background()); ok {
		t.Fatal("untraced context produced a traceparent")
	}
	tr := NewTrace(NewTraceID(), "r", nil)
	ctx := ContextWithTrace(context.Background(), tr)
	v1, ok := OutgoingTraceparent(ctx)
	if !ok {
		t.Fatal("traced context produced no traceparent")
	}
	id1, span1, ok := ParseTraceparent(v1)
	if !ok || id1 != tr.ID() {
		t.Fatalf("outgoing trace id = %q, want %q", id1, tr.ID())
	}
	// A second hop keeps the trace id but mints a fresh span id.
	v2, _ := OutgoingTraceparent(ctx)
	id2, span2, _ := ParseTraceparent(v2)
	if id2 != id1 {
		t.Fatalf("trace id changed across attempts: %q vs %q", id1, id2)
	}
	if span1 == span2 {
		t.Fatal("span id not refreshed per attempt")
	}
}

func TestDebugHandler(t *testing.T) {
	clk := newFakeClock()
	rec := NewRecorder(RecorderConfig{Ring: 16, SlowestPerRoute: 4, Now: clk.Now})
	mk := func(id, route, strategy, degraded string, d time.Duration) {
		tr := rec.StartTrace(route, id, "")
		tr.Annotate(String("strategy", strategy))
		if degraded != "" {
			tr.Annotate(String("degraded", degraded))
		}
		clk.advance(d)
		rec.Finish(tr)
	}
	mk("t0", "/v1/solve", "fifo", "", time.Millisecond)
	mk("t1", "/v1/solve", "fifo-exhaustive", "true", 4*time.Millisecond)
	mk("t2", "/v1/solve/batch", "lifo", "", 2*time.Millisecond)

	get := func(query string) DebugResponse {
		t.Helper()
		req := httptest.NewRequest("GET", "/debug/requests"+query, nil)
		w := httptest.NewRecorder()
		rec.Handler().ServeHTTP(w, req)
		if w.Code != 200 {
			t.Fatalf("GET %s = %d", query, w.Code)
		}
		var resp DebugResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
		return resp
	}

	all := get("")
	if all.Total != 3 || len(all.Recent) != 3 {
		t.Fatalf("unfiltered = total %d, recent %d; want 3, 3", all.Total, len(all.Recent))
	}
	if all.Recent[0].ID != "t2" {
		t.Fatalf("recent[0] = %s, want newest t2", all.Recent[0].ID)
	}

	byRoute := get("?route=/v1/solve")
	if len(byRoute.Recent) != 2 || len(byRoute.Slowest) != 1 {
		t.Fatalf("route filter = %d recent, %d slowest routes; want 2, 1", len(byRoute.Recent), len(byRoute.Slowest))
	}
	byStrategy := get("?strategy=fifo-exhaustive")
	if len(byStrategy.Recent) != 1 || byStrategy.Recent[0].ID != "t1" {
		t.Fatalf("strategy filter = %+v", byStrategy.Recent)
	}
	byDegraded := get("?degraded=true")
	if len(byDegraded.Recent) != 1 || byDegraded.Recent[0].ID != "t1" {
		t.Fatalf("degraded filter = %+v", byDegraded.Recent)
	}
	capped := get("?n=1")
	if len(capped.Recent) != 1 {
		t.Fatalf("n=1 returned %d recent", len(capped.Recent))
	}
}
