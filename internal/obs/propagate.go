package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
	"sync/atomic"
)

// Traceparent propagation, following the W3C trace-context wire shape:
//
//	traceparent: 00-<32 hex trace id>-<16 hex span id>-01
//
// A dlsctl fleet client stamps the header on every attempt (a fresh span
// id per attempt, the shared trace id of the caller's trace), and dlsd
// adopts the incoming trace id — so retries and breaker hops across the
// fleet chain into one trace on both sides of the wire.

// TraceparentHeader is the canonical header name.
const TraceparentHeader = "Traceparent"

// fallbackCounter feeds ids when crypto/rand fails (it practically
// cannot; the counter keeps ids unique rather than crashing a request).
var fallbackCounter atomic.Uint64

func randomHex(n int) string {
	buf := make([]byte, n)
	if _, err := rand.Read(buf); err != nil {
		c := fallbackCounter.Add(1)
		for i := range buf {
			buf[i] = byte(c >> (8 * (uint(i) % 8)))
		}
	}
	return hex.EncodeToString(buf)
}

// NewTraceID returns a random 32-hex-digit trace id.
func NewTraceID() string { return randomHex(16) }

// NewSpanID returns a random 16-hex-digit span id.
func NewSpanID() string { return randomHex(8) }

// FormatTraceparent renders a traceparent header value for the given
// trace and span ids.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceparent extracts the trace and span ids from a traceparent
// header value. Malformed or absent headers return ("", "", false);
// callers then mint a fresh trace id.
func ParseTraceparent(v string) (traceID, spanID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) != 4 {
		return "", "", false
	}
	if len(parts[1]) != 32 || len(parts[2]) != 16 {
		return "", "", false
	}
	if !isHex(parts[1]) || !isHex(parts[2]) || allZero(parts[1]) {
		return "", "", false
	}
	return parts[1], parts[2], true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// OutgoingTraceparent builds the header value an outbound hop should
// carry: the context's trace id with a fresh span id per call (one span
// per attempt). ok is false when no trace rides ctx.
func OutgoingTraceparent(ctx context.Context) (string, bool) {
	ts := Traces(ctx)
	if len(ts) == 0 || ts[0].ID() == "" {
		return "", false
	}
	return FormatTraceparent(ts[0].ID(), NewSpanID()), true
}
