package obs

import (
	"sort"
	"sync"
	"time"
)

// RecorderConfig sizes a Recorder. Zero values take the defaults.
type RecorderConfig struct {
	// Ring is the capacity of the recent-traces ring buffer (default 256).
	Ring int
	// SlowestPerRoute is how many slowest exemplars are kept per route
	// (default 8).
	SlowestPerRoute int
	// Now is the time source handed to StartTrace'd traces (default
	// time.Now; the simulator injects its virtual clock).
	Now func() time.Time
}

// Recorder owns the completed-trace stores behind /debug/requests: a
// fixed-size ring of recent traces and a slowest-N exemplar list per
// route. Storage is bounded at construction — Finish never allocates
// beyond the snapshot it stores — and all methods are safe for
// concurrent use.
type Recorder struct {
	now     func() time.Time
	slowCap int

	mu      sync.Mutex
	ring    []TraceData
	head    int
	filled  int
	total   uint64
	slowest map[string][]TraceData // per route, sorted slowest-first
}

// NewRecorder builds a Recorder.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Ring <= 0 {
		cfg.Ring = 256
	}
	if cfg.SlowestPerRoute <= 0 {
		cfg.SlowestPerRoute = 8
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Recorder{
		now:     cfg.Now,
		slowCap: cfg.SlowestPerRoute,
		ring:    make([]TraceData, cfg.Ring),
		slowest: make(map[string][]TraceData),
	}
}

// StartTrace begins a trace for route on the recorder's time source. An
// empty id mints a random one (live serving); the simulator passes its
// own sequential ids to stay deterministic. parentSpan, when non-empty,
// links the trace to the upstream hop of a traceparent header.
func (r *Recorder) StartTrace(route, id, parentSpan string) *Trace {
	if r == nil {
		return nil
	}
	if id == "" {
		id = NewTraceID()
	}
	t := NewTrace(id, route, r.now)
	if parentSpan != "" {
		t.SetParent(parentSpan)
	}
	return t
}

// Finish seals the trace, snapshots it, and files the snapshot into the
// ring and the per-route slowest store. Returns the stored snapshot. Safe
// on a nil recorder or trace (returns the zero TraceData).
func (r *Recorder) Finish(t *Trace) TraceData {
	if r == nil || t == nil {
		return TraceData{}
	}
	t.Finish()
	d := t.Snapshot()
	r.mu.Lock()
	r.total++
	r.ring[r.head] = d
	r.head = (r.head + 1) % len(r.ring)
	if r.filled < len(r.ring) {
		r.filled++
	}
	slow := r.slowest[d.Route]
	if len(slow) < r.slowCap || d.DurationNS > slow[len(slow)-1].DurationNS {
		slow = append(slow, d)
		sort.SliceStable(slow, func(i, j int) bool { return slow[i].DurationNS > slow[j].DurationNS })
		if len(slow) > r.slowCap {
			slow = slow[:r.slowCap]
		}
		r.slowest[d.Route] = slow
	}
	r.mu.Unlock()
	return d
}

// Total returns how many traces have been finished into the recorder.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Recent returns up to n recent traces, newest first.
func (r *Recorder) Recent(n int) []TraceData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.filled {
		n = r.filled
	}
	out := make([]TraceData, 0, n)
	for i := 0; i < n; i++ {
		idx := (r.head - 1 - i + len(r.ring)) % len(r.ring)
		out = append(out, r.ring[idx])
	}
	return out
}

// Slowest returns the slowest exemplars: for route != "" that route's
// list, otherwise every route's, keyed by route. Lists are slowest-first
// copies.
func (r *Recorder) Slowest(route string) map[string][]TraceData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]TraceData)
	for rt, list := range r.slowest {
		if route != "" && rt != route {
			continue
		}
		out[rt] = append([]TraceData(nil), list...)
	}
	return out
}
