// Package obs is the in-process tracing layer of the serving stack: a
// context-carried span recorder that decomposes one request's latency into
// named stages (queue_wait, window_wait, solve, eval-backend, search, ...)
// with key/value annotations, a fixed-size ring buffer of completed traces
// and a slowest-N-per-route exemplar store behind /debug/requests.
//
// The package is dependency-free (standard library only) so every layer —
// dls, internal/core, internal/eval, internal/resilience, internal/sim —
// can record into a trace without import cycles. Time never comes from
// time.Now directly: each Trace carries its own `now` function, which is
// the system clock under dlsd and the virtual clock under internal/sim,
// keeping traced simulation runs byte-deterministic.
//
// Everything is a no-op when no trace rides the context: the helpers cost
// one context lookup and return. Recording is race-safe — a batcher drain
// worker may still be writing stages while the submitter's context has
// expired and the handler is finishing the trace — and allocation-bounded
// on the hot path (stage storage is pre-sized, the ring never grows).
package obs

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value annotation on a trace or stage. Values are
// strings: deterministic to serialize (the simulator compares reports
// byte-for-byte) and cheap to filter on.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// String builds a string-valued attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer-valued attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Int64 builds an int64-valued attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// Uint64 builds a uint64-valued attribute.
func Uint64(k string, v uint64) Attr { return Attr{Key: k, Value: strconv.FormatUint(v, 10)} }

// Bool builds a boolean-valued attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// Stage is one named span inside a trace. Depth is display nesting:
// depth-0 stages partition the request timeline (queue_wait, window_wait,
// solve), deeper stages attribute slices of their parent (strategy,
// eval-backend, search) and are excluded from top-level sums.
type Stage struct {
	Name  string
	Depth int
	Start time.Time
	End   time.Time
	Attrs []Attr
}

// initialStageCap pre-sizes a trace's stage storage so the request hot
// path appends without reallocating (a fully decorated solve records
// about six stages).
const initialStageCap = 8

// Trace is one in-flight request's span recorder. It is safe for
// concurrent use: the admission batcher's collector, a drain worker and
// the HTTP handler may all record into it.
type Trace struct {
	mu       sync.Mutex
	id       string
	parent   string // upstream span id from a traceparent header, if any
	route    string
	start    time.Time
	end      time.Time
	now      func() time.Time
	stages   []Stage
	attrs    []Attr
	finished bool
}

// NewTrace starts a trace on the given time source (nil: time.Now). The
// id is caller-chosen — random for live serving, sequential under the
// simulator — so determinism stays in the caller's hands.
func NewTrace(id, route string, now func() time.Time) *Trace {
	if now == nil {
		now = time.Now
	}
	return &Trace{
		id:     id,
		route:  route,
		start:  now(),
		now:    now,
		stages: make([]Stage, 0, initialStageCap),
	}
}

// ID returns the trace id. Safe on a nil trace.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SetParent records the upstream span id this trace continues (from a
// traceparent header).
func (t *Trace) SetParent(span string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.parent = span
	t.mu.Unlock()
}

// Now reads the trace's time source (zero time on a nil trace).
func (t *Trace) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.now()
}

// StageAt records one completed stage. Recording after Finish is dropped:
// the trace has already been snapshotted into the recorder, and a late
// drain-worker write must not mutate what readers saw.
func (t *Trace) StageAt(depth int, name string, start, end time.Time, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.finished {
		t.stages = append(t.stages, Stage{Name: name, Depth: depth, Start: start, End: end, Attrs: attrs})
	}
	t.mu.Unlock()
}

// Annotate attaches key/value attributes to the trace itself (strategy,
// cache disposition, degraded-to, ...). Duplicate keys keep the latest
// value at snapshot time.
func (t *Trace) Annotate(attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.finished {
		t.attrs = append(t.attrs, attrs...)
	}
	t.mu.Unlock()
}

// Finish seals the trace at the current time source reading. Idempotent;
// later StageAt/Annotate calls are dropped.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.finished {
		t.finished = true
		t.end = t.now()
	}
	t.mu.Unlock()
}

// StageData is the immutable JSON view of one recorded stage.
type StageData struct {
	Name       string `json:"name"`
	Depth      int    `json:"depth"`
	OffsetNS   int64  `json:"offset_ns"`
	DurationNS int64  `json:"duration_ns"`
	Attrs      []Attr `json:"attrs,omitempty"`
}

// TraceData is the immutable snapshot of one completed (or in-flight)
// trace, as served by /debug/requests.
type TraceData struct {
	ID         string      `json:"id"`
	Parent     string      `json:"parent,omitempty"`
	Route      string      `json:"route"`
	Start      time.Time   `json:"start"`
	DurationNS int64       `json:"duration_ns"`
	Attrs      []Attr      `json:"attrs,omitempty"`
	Stages     []StageData `json:"stages"`
}

// Attr returns the latest value recorded for key ("" when absent).
func (d TraceData) Attr(key string) string {
	for i := len(d.Attrs) - 1; i >= 0; i-- {
		if d.Attrs[i].Key == key {
			return d.Attrs[i].Value
		}
	}
	return ""
}

// StageSum returns the summed duration of the depth-0 stages — the
// partition of the request timeline that should reproduce the end-to-end
// latency to within the handler's decode/encode overhead.
func (d TraceData) StageSum() time.Duration {
	var sum time.Duration
	for _, st := range d.Stages {
		if st.Depth == 0 {
			sum += time.Duration(st.DurationNS)
		}
	}
	return sum
}

// Snapshot deep-copies the trace into its JSON view. Stages are sorted by
// offset (recording order across goroutines is not deterministic; offsets
// are), so snapshots of deterministic virtual-time runs are byte-stable.
func (t *Trace) Snapshot() TraceData {
	if t == nil {
		return TraceData{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if !t.finished {
		end = t.now()
	}
	d := TraceData{
		ID:         t.id,
		Parent:     t.parent,
		Route:      t.route,
		Start:      t.start,
		DurationNS: end.Sub(t.start).Nanoseconds(),
	}
	if len(t.attrs) > 0 {
		d.Attrs = append(make([]Attr, 0, len(t.attrs)), t.attrs...)
	}
	d.Stages = make([]StageData, len(t.stages))
	for i, st := range t.stages {
		sd := StageData{
			Name:       st.Name,
			Depth:      st.Depth,
			OffsetNS:   st.Start.Sub(t.start).Nanoseconds(),
			DurationNS: st.End.Sub(st.Start).Nanoseconds(),
		}
		if len(st.Attrs) > 0 {
			sd.Attrs = append(make([]Attr, 0, len(st.Attrs)), st.Attrs...)
		}
		d.Stages[i] = sd
	}
	sort.SliceStable(d.Stages, func(i, j int) bool {
		if d.Stages[i].OffsetNS != d.Stages[j].OffsetNS {
			return d.Stages[i].OffsetNS < d.Stages[j].OffsetNS
		}
		return d.Stages[i].Depth < d.Stages[j].Depth
	})
	return d
}
