package obs

import (
	"context"
	"time"
)

// traceKey carries the live traces of a request context. The value is a
// SLICE of traces: an admission window that merges several submissions
// into one batch context fans every stage recorded under that context out
// to all of the requests it answers.
type traceKey struct{}

// ContextWithTrace attaches one trace to ctx, joining any traces already
// present. A nil trace returns ctx unchanged, so disabled recorders cost
// nothing at call sites.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	existing := Traces(ctx)
	if len(existing) == 0 {
		return context.WithValue(ctx, traceKey{}, []*Trace{t})
	}
	joined := make([]*Trace, 0, len(existing)+1)
	joined = append(joined, existing...)
	joined = append(joined, t)
	return context.WithValue(ctx, traceKey{}, joined)
}

// ContextWithTraces attaches a trace set to ctx, replacing any existing
// set (the batch-window fan-out path: the merged window context carries
// exactly the traces of the submissions a group answers).
func ContextWithTraces(ctx context.Context, ts []*Trace) context.Context {
	if len(ts) == 0 {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, ts)
}

// Traces returns the traces riding ctx (nil when tracing is off).
func Traces(ctx context.Context) []*Trace {
	ts, _ := ctx.Value(traceKey{}).([]*Trace)
	return ts
}

// Enabled reports whether any trace rides ctx.
func Enabled(ctx context.Context) bool { return len(Traces(ctx)) > 0 }

// Now reads the time source of the context's traces — the system clock in
// dlsd, the virtual clock under the simulator — and the zero time when no
// trace rides ctx. Callers bracket work with two Now calls and hand the
// pair to StageAt; with tracing off the pair is (0, 0) and StageAt is a
// no-op, so the hot path never touches a clock it does not need.
func Now(ctx context.Context) time.Time {
	ts := Traces(ctx)
	if len(ts) == 0 {
		return time.Time{}
	}
	return ts[0].Now()
}

// StageAt records one completed stage on every trace riding ctx.
func StageAt(ctx context.Context, depth int, name string, start, end time.Time, attrs ...Attr) {
	for _, t := range Traces(ctx) {
		t.StageAt(depth, name, start, end, attrs...)
	}
}

// Annotate attaches attributes to every trace riding ctx.
func Annotate(ctx context.Context, attrs ...Attr) {
	for _, t := range Traces(ctx) {
		t.Annotate(attrs...)
	}
}
