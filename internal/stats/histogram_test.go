package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-106) > 1e-12 {
		t.Errorf("sum = %g, want 106", h.Sum())
	}
	buckets := h.Buckets()
	wantCum := []uint64{2, 3, 4, 5} // <=1: {0.5, 1}; <=2: +1.5; <=4: +3; +Inf: +100
	for i, w := range wantCum {
		if buckets[i].Count != w {
			t.Errorf("bucket %d (le %g): %d, want %d", i, buckets[i].UpperBound, buckets[i].Count, w)
		}
	}
	if !math.IsInf(buckets[3].UpperBound, 1) {
		t.Errorf("last bucket bound = %g, want +Inf", buckets[3].UpperBound)
	}
	h.Observe(math.NaN())
	if h.Count() != 5 {
		t.Error("NaN observation was counted")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10, 20, 30, 40)
	for v := 1.0; v <= 40; v++ {
		h.Observe(v)
	}
	// Uniform 1..40: the median interpolates to the middle of the range.
	if q := h.Quantile(0.5); math.Abs(q-20) > 1 {
		t.Errorf("p50 = %g, want ~20", q)
	}
	if q := h.Quantile(1); q != 40 {
		t.Errorf("p100 = %g, want 40", q)
	}
	if q := h.Quantile(0.05); q <= 0 || q > 10 {
		t.Errorf("p5 = %g, want in (0, 10]", q)
	}
	empty := NewHistogram(1)
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	inf := NewHistogram(1)
	inf.Observe(5) // lands in +Inf bucket
	if q := inf.Quantile(0.99); q != 1 {
		t.Errorf("overflow quantile = %g, want clamp to largest bound 1", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBounds()...)
	var wg sync.WaitGroup
	const workers, per = 16, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) * 1e-4)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
	want := float64(workers) * 1e-4 * (99 * 100 / 2) * (per / 100)
	if math.Abs(h.Sum()-want) > 1e-6*want {
		t.Errorf("sum = %g, want %g: concurrent float accumulation lost updates", h.Sum(), want)
	}
}

func TestMetricWriter(t *testing.T) {
	var b strings.Builder
	m := NewMetricWriter(&b)
	m.Counter("dlsd_requests_total", "Requests.", 7, Label{"code", "200"})
	m.Counter("dlsd_requests_total", "Requests.", 2, Label{"code", "429"})
	m.Gauge("dlsd_queue_depth", "Depth.", 3)
	h := NewHistogram(0.1, 1)
	h.Observe(0.05)
	h.Observe(5)
	m.Histogram("dlsd_latency_seconds", "Latency.", h)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dlsd_requests_total counter",
		`dlsd_requests_total{code="200"} 7`,
		`dlsd_requests_total{code="429"} 2`,
		"# TYPE dlsd_queue_depth gauge",
		"dlsd_queue_depth 3",
		"# TYPE dlsd_latency_seconds histogram",
		`dlsd_latency_seconds_bucket{le="0.1"} 1`,
		`dlsd_latency_seconds_bucket{le="1"} 1`,
		`dlsd_latency_seconds_bucket{le="+Inf"} 2`,
		"dlsd_latency_seconds_sum 5.05",
		"dlsd_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
	// The HELP/TYPE preamble appears once per metric even with several
	// labelled samples.
	if strings.Count(out, "# TYPE dlsd_requests_total counter") != 1 {
		t.Error("TYPE header repeated for labelled samples")
	}
}
