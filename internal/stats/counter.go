package stats

import (
	"sync"
	"sync/atomic"
)

// CounterMap is a concurrent map of monotonically increasing counters
// keyed by K — per-strategy solve counts, per-status-code responses.
// Add is lock-free after a key's first use; Snapshot is consistent only
// up to in-flight increments, like every counter read.
type CounterMap[K comparable] struct {
	m sync.Map // K -> *atomic.Uint64
}

// Add increments the counter for key by n.
func (c *CounterMap[K]) Add(key K, n uint64) {
	v, ok := c.m.Load(key)
	if !ok {
		v, _ = c.m.LoadOrStore(key, new(atomic.Uint64))
	}
	v.(*atomic.Uint64).Add(n)
}

// Snapshot returns the non-zero counters as a plain map (nil when there
// are none).
func (c *CounterMap[K]) Snapshot() map[K]uint64 {
	var out map[K]uint64
	c.m.Range(func(k, v any) bool {
		if n := v.(*atomic.Uint64).Load(); n > 0 {
			if out == nil {
				out = make(map[K]uint64)
			}
			out[k.(K)] = n
		}
		return true
	})
	return out
}
