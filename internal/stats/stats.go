// Package stats provides the small set of summary statistics used by the
// experiment harness: the paper's figures average 50 random platforms per
// point, and honest reproduction requires knowing the spread behind each
// average.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes the summary of xs. An empty sample yields a zero
// Summary with N = 0; NaN inputs propagate to the moments (callers are
// expected to feed measured, finite data).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := s.N / 2
	if s.N%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.6g std=%.3g min=%.6g median=%.6g max=%.6g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// Welford accumulates mean and variance in one pass without storing the
// sample, for long-running sweeps.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add feeds one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Std returns the running sample standard deviation.
func (w *Welford) Std() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// MeanOf is a convenience for the plain average.
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of strictly positive samples (0 when
// the sample is empty or contains non-positive values). Ratios such as
// real/lp are more faithfully averaged geometrically.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
