package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !approx(s.Mean, 5) {
		t.Errorf("mean = %g, want 5", s.Mean)
	}
	// Sample std of this classic dataset: sqrt(32/7).
	if !approx(s.Std, math.Sqrt(32.0/7)) {
		t.Errorf("std = %g, want %g", s.Std, math.Sqrt(32.0/7))
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %g/%g", s.Min, s.Max)
	}
	if !approx(s.Median, 4.5) {
		t.Errorf("median = %g, want 4.5", s.Median)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	empty := Summarize(nil)
	if empty.N != 0 || empty.String() != "n=0" {
		t.Errorf("empty summary = %+v %q", empty, empty.String())
	}
	one := Summarize([]float64{3})
	if one.Mean != 3 || one.Std != 0 || one.Median != 3 {
		t.Errorf("singleton summary = %+v", one)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Errorf("odd median = %g", odd.Median)
	}
	if !strings.Contains(Summarize([]float64{1, 2}).String(), "mean=1.5") {
		t.Error("String missing mean")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Summarize mutated its input")
	}
}

func TestWelfordMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	s := Summarize(xs)
	if w.N() != s.N {
		t.Errorf("N = %d vs %d", w.N(), s.N)
	}
	if !approx(w.Mean(), s.Mean) {
		t.Errorf("mean = %g vs %g", w.Mean(), s.Mean)
	}
	if math.Abs(w.Std()-s.Std) > 1e-9 {
		t.Errorf("std = %g vs %g", w.Std(), s.Std)
	}
	var fresh Welford
	if fresh.Std() != 0 || fresh.Mean() != 0 {
		t.Error("empty Welford must be zero")
	}
}

func TestMeanOfAndGeoMean(t *testing.T) {
	if MeanOf(nil) != 0 {
		t.Error("MeanOf(nil) != 0")
	}
	if !approx(MeanOf([]float64{1, 2, 3}), 2) {
		t.Error("MeanOf wrong")
	}
	if !approx(GeoMean([]float64{1, 4}), 2) {
		t.Errorf("GeoMean = %g, want 2", GeoMean([]float64{1, 4}))
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, 0}) != 0 || GeoMean([]float64{-1}) != 0 {
		t.Error("GeoMean degenerate cases")
	}
}

// TestQuickSummaryInvariants: min ≤ median ≤ max, mean within [min, max],
// std ≥ 0, and geometric mean ≤ arithmetic mean (AM-GM).
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(64))
		for i := range xs {
			xs[i] = rng.Float64()*100 + 0.001
		}
		s := Summarize(xs)
		if !(s.Min <= s.Median+1e-12 && s.Median <= s.Max+1e-12) {
			return false
		}
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		if s.Std < 0 {
			return false
		}
		return GeoMean(xs) <= s.Mean+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
