package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// This file adds the serving-side observability primitives: a lock-free
// fixed-bucket histogram and a Prometheus-text-format writer, used by the
// dlsd /metrics endpoint. Only atomic counters are touched on the hot
// path, so Observe is safe (and cheap) to call from every request.

// Histogram counts observations into fixed buckets with atomic counters.
// Buckets are cumulative-upper-bound style, as in Prometheus: bucket i
// counts observations <= bounds[i], plus one implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds) + 1; last = +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given strictly increasing,
// finite upper bounds. Panics on invalid bounds (a construction bug, not
// a runtime condition).
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("stats: histogram bounds must be finite")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly increasing")
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// LatencyBounds are the default solve-latency bucket bounds in seconds:
// log-spaced from 50 µs to 10 s, bracketing everything from a cached
// chain solve to a p = 7 pair search.
func LatencyBounds() []float64 {
	return []float64{
		50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
		1, 2.5, 5, 10,
	}
}

// SizeBounds are the default batch/window-size bucket bounds.
func SizeBounds() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
}

// Observe records one observation. NaN observations are dropped (they
// would poison the sum without being countable in any bucket).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bucket is one cumulative histogram bucket: Count observations were
// <= UpperBound (UpperBound is +Inf for the last bucket).
type Bucket struct {
	UpperBound float64
	Count      uint64
}

// Buckets returns the cumulative bucket counts, ending with the +Inf
// bucket (whose count equals Count up to concurrent observations).
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, len(h.counts))
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		out[i] = Bucket{UpperBound: bound, Count: cum}
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the owning bucket, the standard Prometheus histogram_quantile
// estimate. Returns 0 for an empty histogram; observations in the +Inf
// bucket clamp to the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if float64(cum+c) >= rank && c > 0 {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (h.bounds[i]-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Label is one metric label pair.
type Label struct {
	Key, Value string
}

// MetricWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4), enough for any Prometheus-compatible scraper without
// importing a client library.
type MetricWriter struct {
	w     io.Writer
	err   error
	typed map[string]bool
}

// NewMetricWriter wraps w. Errors are sticky; check Err once at the end.
func NewMetricWriter(w io.Writer) *MetricWriter {
	return &MetricWriter{w: w, typed: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (m *MetricWriter) Err() error { return m.err }

func (m *MetricWriter) printf(format string, args ...any) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, format, args...)
}

// header emits the HELP/TYPE preamble once per metric name.
func (m *MetricWriter) header(name, help, typ string) {
	if m.typed[name] {
		return
	}
	m.typed[name] = true
	m.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// labelString renders {k="v",...} or the empty string.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, escapeLabel(l.Value))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return fmt.Sprintf("%g", v)
	}
}

// Counter emits one counter sample.
func (m *MetricWriter) Counter(name, help string, value uint64, labels ...Label) {
	m.header(name, help, "counter")
	m.printf("%s%s %d\n", name, labelString(labels), value)
}

// Gauge emits one gauge sample.
func (m *MetricWriter) Gauge(name, help string, value float64, labels ...Label) {
	m.header(name, help, "gauge")
	m.printf("%s%s %s\n", name, labelString(labels), formatValue(value))
}

// Histogram emits the cumulative buckets, sum and count of h.
func (m *MetricWriter) Histogram(name, help string, h *Histogram, labels ...Label) {
	m.header(name, help, "histogram")
	for _, b := range h.Buckets() {
		bl := append(append([]Label(nil), labels...), Label{"le", formatValue(b.UpperBound)})
		m.printf("%s_bucket%s %d\n", name, labelString(bl), b.Count)
	}
	m.printf("%s_sum%s %s\n", name, labelString(labels), formatValue(h.Sum()))
	m.printf("%s_count%s %d\n", name, labelString(labels), h.Count())
}
