// Command dlsfifo computes divisible-load schedules on star platforms with
// return messages under the one-port model (Beaumont, Marchal, Rehn,
// Robert, RR-5738).
//
// Usage:
//
//	dlsfifo schedule -platform file.json [-discipline fifo|lifo|incw|<strategy>] [-model one-port|two-port] [-exact] [-eval auto|closed-form|direct|simplex|exact] [-load M] [-gantt]
//	dlsfifo bus -c 0.1 -d 0.05 -w 0.4,0.6,0.8
//	dlsfifo brute -platform file.json [-exact] [-eval direct] [-timeout 30s] [-search auto|bb|flat]
//	dlsfifo random -p 11 -family heterogeneous -size 100 -seed 42
//	dlsfifo strategies
//
// Every scheduling subcommand is a front-end to the dls engine: it builds a
// dls.Request naming a strategy from the registry and solves it. The
// schedule subcommand prints the optimal loads, throughput and per-worker
// timeline; bus evaluates the Theorem 2 closed form; brute searches all
// permutation pairs (small platforms, cancellable via -timeout); random
// emits a platform JSON drawn from the paper's generator families;
// strategies lists the registry.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/dls"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "schedule":
		err = cmdSchedule(os.Args[2:])
	case "bus":
		err = cmdBus(os.Args[2:])
	case "brute":
		err = cmdBrute(os.Args[2:])
	case "random":
		err = cmdRandom(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "strategies":
		err = cmdStrategies()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "dlsfifo: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlsfifo: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `dlsfifo — divisible-load scheduling with return messages (one-port model)

subcommands:
  schedule    compute an optimal schedule for a platform JSON
  bus         evaluate the Theorem 2 closed form for a bus platform
  brute       exhaustive search over all (σ1, σ2) permutation pairs
  random      generate a random platform JSON (paper generator families)
  verify      check a schedule JSON against a platform and model
  strategies  list the registered engine strategies

run "dlsfifo <subcommand> -h" for flags.
`)
}

func cmdStrategies() error {
	for _, name := range dls.Strategies() {
		fmt.Println(name)
	}
	return nil
}

func loadPlatform(path string) (*dls.Platform, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -platform file")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p dls.Platform
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &p, nil
}

func arithFlag(exact bool) dls.Arith {
	if exact {
		return dls.Exact
	}
	return dls.Float64
}

// newSolver builds the engine behind every scheduling subcommand.
// searchPar is the intra-request worker count of the exhaustive searches
// (0 = one worker per CPU, 1 = serial); the result is byte-identical for
// every setting.
func newSolver(timeout time.Duration, searchPar int) (*dls.Solver, error) {
	if timeout < 0 {
		return nil, fmt.Errorf("-timeout must be >= 0, got %v", timeout)
	}
	opts := []dls.Option{dls.WithCache(64), dls.WithSearchParallelism(searchPar)}
	if timeout > 0 {
		opts = append(opts, dls.WithTimeout(timeout))
	}
	return dls.NewSolver(opts...)
}

// strategyForDiscipline maps the historical discipline spellings onto
// engine strategies; any other value must name a registered strategy.
func strategyForDiscipline(disc string) (string, error) {
	switch disc {
	case "fifo":
		return dls.StrategyFIFO, nil
	case "lifo":
		return dls.StrategyLIFO, nil
	case "incw":
		return dls.StrategyIncW, nil
	case "incc":
		return dls.StrategyIncC, nil
	}
	for _, name := range dls.Strategies() {
		if name == disc {
			return name, nil
		}
	}
	return "", fmt.Errorf("unknown discipline %q (fifo, lifo, incw, incc, or a registered strategy: %s)",
		disc, strings.Join(dls.Strategies(), ", "))
}

func cmdSchedule(args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ExitOnError)
	platformPath := fs.String("platform", "", "platform JSON file")
	discipline := fs.String("discipline", "fifo", "fifo | lifo | incw | incc | any registered strategy (see dlsfifo strategies)")
	model := fs.String("model", "one-port", "one-port | two-port")
	exact := fs.Bool("exact", false, "use exact rational LP arithmetic")
	load := fs.Float64("load", 0, "total load units; prints the makespan and integer distribution")
	gantt := fs.Bool("gantt", false, "render the schedule timeline as a Gantt chart")
	out := fs.String("out", "", "write the computed schedule as JSON to this file")
	timeout := fs.Duration("timeout", 0, "abort the solve after this duration (0 = no limit)")
	evalName := fs.String("eval", "auto", "scenario-evaluation backend: auto | closed-form | direct | simplex | exact")
	searchPar := fs.Int("search-parallel", 0, "workers for the exhaustive searches (0 = one per CPU, 1 = serial; result is identical)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	evalMode, err := dls.ParseEvalMode(*evalName)
	if err != nil {
		return err
	}
	p, err := loadPlatform(*platformPath)
	if err != nil {
		return err
	}
	var m dls.Model
	switch *model {
	case "one-port":
		m = dls.OnePort
	case "two-port":
		m = dls.TwoPort
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	strategy, err := strategyForDiscipline(*discipline)
	if err != nil {
		return err
	}
	solver, err := newSolver(*timeout, *searchPar)
	if err != nil {
		return err
	}
	req := dls.Request{
		Platform: p,
		Strategy: strategy,
		Model:    m,
		Arith:    arithFlag(*exact),
		Eval:     evalMode,
		Load:     *load,
	}
	res, err := solver.Solve(context.Background(), req)
	if errors.Is(err, dls.ErrNoCommonZ) && strategy == dls.StrategyFIFO && m == dls.OnePort {
		fmt.Println("note: no common z; falling back to the sorted-by-c FIFO heuristic")
		req.Strategy = dls.StrategyIncC
		res, err = solver.Solve(context.Background(), req)
	}
	if err != nil {
		return err
	}
	s := res.Schedule
	if s == nil {
		return fmt.Errorf("strategy %q produced no canonical schedule (affine strategies are not supported here)", strategy)
	}

	fmt.Print(p)
	fmt.Printf("strategy=%s model=%s arithmetic=%s eval=%s\n", res.Strategy, res.Model, res.Arith, res.Eval)
	fmt.Printf("throughput ρ = %.9g load units per time unit\n", s.Throughput())
	fmt.Printf("send order σ1 = %v, return order σ2 = %v\n", s.SendOrder, s.ReturnOrder)
	fmt.Printf("%-8s %-12s %-12s %-12s %-12s\n", "worker", "alpha", "recv end", "comp end", "idle")
	for _, wt := range s.Timeline(p) {
		fmt.Printf("%-8s %-12.6g %-12.6g %-12.6g %-12.6g\n",
			p.Workers[wt.Worker].Name, s.Alpha[wt.Worker], wt.SendEnd, wt.CompEnd, wt.Idle)
	}
	if *load > 0 {
		fmt.Printf("makespan for %g units: %.6g\n", *load, res.Makespan)
		counts, err := dls.DistributeInteger(s.Alpha, s.SendOrder, int(*load))
		if err != nil {
			return err
		}
		fmt.Printf("integer distribution (Section 5 rounding): %v\n", counts)
	}
	if *gantt {
		fmt.Print(ganttOfSchedule(p, s))
	}
	if *out != "" {
		data, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("schedule written to %s\n", *out)
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	platformPath := fs.String("platform", "", "platform JSON file")
	schedulePath := fs.String("schedule", "", "schedule JSON file (as written by schedule -out)")
	model := fs.String("model", "one-port", "one-port | two-port")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := loadPlatform(*platformPath)
	if err != nil {
		return err
	}
	if *schedulePath == "" {
		return fmt.Errorf("missing -schedule file")
	}
	data, err := os.ReadFile(*schedulePath)
	if err != nil {
		return err
	}
	var s dls.Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("parsing %s: %w", *schedulePath, err)
	}
	var m dls.Model
	switch *model {
	case "one-port":
		m = dls.OnePort
	case "two-port":
		m = dls.TwoPort
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	if err := s.Check(p, m); err != nil {
		return fmt.Errorf("schedule INVALID under the %s model: %w", m, err)
	}
	fmt.Printf("schedule valid under the %s model: ρ = %.9g, %d participants\n",
		m, s.Throughput(), len(s.Participants()))
	return nil
}

// ganttOfSchedule renders the canonical timeline of a schedule as rows of
// the master and every enrolled worker.
func ganttOfSchedule(p *dls.Platform, s *dls.Schedule) string {
	const width = 100
	var b strings.Builder
	tl := s.Timeline(p)
	fmt.Fprintf(&b, "timeline over [0, %.6g]:\n", s.T)
	row := func(name string, spans [][3]float64) { // start, end, glyph index
		glyphs := []byte{'.', '#', '='}
		line := []byte(strings.Repeat(" ", width))
		for _, sp := range spans {
			a := int(sp[0] / s.T * width)
			z := int(sp[1] / s.T * width)
			if z >= width {
				z = width - 1
			}
			for x := a; x <= z && x < width; x++ {
				line[x] = glyphs[int(sp[2])]
			}
		}
		fmt.Fprintf(&b, "%-8s|%s|\n", name, string(line))
	}
	var masterSpans [][3]float64
	for _, wt := range tl {
		masterSpans = append(masterSpans,
			[3]float64{wt.SendStart, wt.SendEnd, 2},
			[3]float64{wt.ReturnStart, wt.ReturnEnd, 0})
	}
	row("master", masterSpans)
	for _, wt := range tl {
		row(p.Workers[wt.Worker].Name, [][3]float64{
			{wt.SendStart, wt.SendEnd, 0},
			{wt.SendEnd, wt.CompEnd, 1},
			{wt.ReturnStart, wt.ReturnEnd, 2},
		})
	}
	b.WriteString("legend: '.' data in   '#' compute   '=' data out\n")
	return b.String()
}

func cmdBus(args []string) error {
	fs := flag.NewFlagSet("bus", flag.ExitOnError)
	c := fs.Float64("c", 0, "forward communication cost per load unit")
	d := fs.Float64("d", 0, "return communication cost per load unit")
	wlist := fs.String("w", "", "comma-separated computation costs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *c <= 0 || *d <= 0 || *wlist == "" {
		return fmt.Errorf("bus requires -c, -d > 0 and -w w1,w2,...")
	}
	var ws []float64
	for _, tok := range strings.Split(*wlist, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return fmt.Errorf("parsing -w: %w", err)
		}
		ws = append(ws, v)
	}
	p := dls.NewBus(*c, *d, ws...)
	rho, err := dls.BusFIFOThroughput(p)
	if err != nil {
		return err
	}
	exact, err := dls.ExactBusFIFOThroughput(p)
	if err != nil {
		return err
	}
	two, err := dls.BusTwoPortFIFOThroughput(p)
	if err != nil {
		return err
	}
	lifo, err := dls.BusLIFOThroughput(p)
	if err != nil {
		return err
	}
	s, err := dls.BusFIFOSchedule(p)
	if err != nil {
		return err
	}
	fmt.Print(p)
	fmt.Printf("Theorem 2 optimal one-port FIFO throughput: %.9g (exact %s)\n", rho, exact.RatString())
	fmt.Printf("  one-port communication bound 1/(c+d):     %.9g\n", 1/(*c+*d))
	fmt.Printf("  two-port FIFO throughput ρ̃:               %.9g\n", two)
	fmt.Printf("  one-port LIFO throughput (closed form):   %.9g\n", lifo)
	fmt.Printf("constructive schedule loads: %v\n", s.Alpha)
	return nil
}

func cmdBrute(args []string) error {
	fs := flag.NewFlagSet("brute", flag.ExitOnError)
	platformPath := fs.String("platform", "", "platform JSON file")
	exact := fs.Bool("exact", false, "use exact rational LP arithmetic")
	timeout := fs.Duration("timeout", 0, "abort the (p!)² search after this duration (0 = no limit)")
	evalName := fs.String("eval", "auto", "scenario-evaluation backend: auto | closed-form | direct | simplex | exact")
	search := fs.String("search", "auto", "pair-search algorithm: auto (branch-and-bound for float64 backends) | bb | flat")
	searchPar := fs.Int("search-parallel", 0, "workers for the exhaustive searches (0 = one per CPU, 1 = serial; result is identical)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	evalMode, err := dls.ParseEvalMode(*evalName)
	if err != nil {
		return err
	}
	pairStrategy, err := dls.PairStrategyForSearch(*search)
	if err != nil {
		return err
	}
	p, err := loadPlatform(*platformPath)
	if err != nil {
		return err
	}
	solver, err := newSolver(*timeout, *searchPar)
	if err != nil {
		return err
	}
	arith := arithFlag(*exact)
	ctx := context.Background()
	// The pair search and the LIFO baseline run concurrently on the pool;
	// FIFO is solved separately because a star without a common z makes it
	// fail with ErrNoCommonZ, which only drops its comparison line.
	results, err := solver.SolveBatch(ctx, []dls.Request{
		{Platform: p, Strategy: pairStrategy, Arith: arith, Eval: evalMode},
		{Platform: p, Strategy: dls.StrategyLIFO, Arith: arith, Eval: evalMode},
	})
	if err != nil {
		return err
	}
	pair, lifo := results[0], results[1]
	fifo, err := solver.Solve(ctx, dls.Request{Platform: p, Strategy: dls.StrategyFIFO, Arith: arith, Eval: evalMode})
	if err != nil && !errors.Is(err, dls.ErrNoCommonZ) {
		return err
	}
	fmt.Print(p)
	fmt.Printf("best permutation pair: σ1=%v σ2=%v  ρ=%.9g\n",
		pair.Send, pair.Return, pair.Throughput)
	if fifo != nil {
		fmt.Printf("optimal FIFO:          ρ=%.9g (%.4f%% of best pair)\n",
			fifo.Throughput, 100*fifo.Throughput/pair.Throughput)
	}
	fmt.Printf("optimal LIFO:          ρ=%.9g (%.4f%% of best pair)\n",
		lifo.Throughput, 100*lifo.Throughput/pair.Throughput)
	return nil
}

func cmdRandom(args []string) error {
	fs := flag.NewFlagSet("random", flag.ExitOnError)
	p := fs.Int("p", 11, "number of workers")
	familyName := fs.String("family", "heterogeneous", "homogeneous | homcomm | heterogeneous")
	size := fs.Int("size", 100, "matrix size for the cost conversion")
	seed := fs.Int64("seed", 1, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var fam dls.Family
	switch *familyName {
	case "homogeneous":
		fam = dls.Homogeneous
	case "homcomm":
		fam = dls.HomCommHeteroComp
	case "heterogeneous":
		fam = dls.Heterogeneous
	default:
		return fmt.Errorf("unknown family %q", *familyName)
	}
	sp := dls.RandomSpeeds(rand.New(rand.NewSource(*seed)), *p, fam)
	plat := sp.Platform(dls.DefaultApp(*size))
	out, err := json.MarshalIndent(plat, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}
